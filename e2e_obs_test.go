package syslogdigest_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"syslogdigest"
	"syslogdigest/internal/collector"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

// TestLivePipelineObservability runs the whole online path — collector →
// streamer → digester — over a generated feed with every stage publishing
// into one obs registry and an HTTP exporter in front, then reconciles the
// books end to end: every line sent is either received or accounted for as
// dropped/oversized, everything received reaches the digester, and the
// /metrics and /healthz endpoints agree with the in-process counters.
//
// The run repeats with the serial engine and the router-sharded engine;
// in sharded mode the per-shard and merge-stage books must reconcile with
// the global stream counters at every worker count.
//
// The streamer runs with a provisional horizon, so the two-tier emission
// books (stream.provisional.*) reconcile too: finalized == stream.emitted,
// emitted == finalized + superseded (every identity that got a first signal
// either closed or was absorbed), and the delivered Update records match
// the counters tier for tier.
func TestLivePipelineObservability(t *testing.T) {
	ds, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 12, Seed: 11,
		Duration: 12 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := syslogdigest.NewLearner(syslogdigest.DefaultParams()).Learn(ds.Messages, ds.Net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			livePipelineRun(t, kb, ds, workers)
		})
	}
}

func livePipelineRun(t *testing.T, kb *syslogdigest.KnowledgeBase, ds *gen.Dataset, workers int) {
	reg := obs.NewRegistry()
	obs.PublishRuntime(reg)
	health := obs.NewHealth(0)
	srv, err := obs.Serve("127.0.0.1:0", reg, health)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Readiness flips only once the knowledge base is loaded and the
	// digester is built, mirroring the cmd wiring.
	if code, _ := httpGet(t, srv.Addr(), "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz before ready = %d, want 503", code)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	// Learning (and any previous run) warmed the match cache with this very
	// feed; flush so the run starts cold like the cmd wiring (which loads
	// the KB from JSON).
	kb.SetMatchCache(0)
	d.Instrument(reg)
	st := syslogdigest.NewStreamerWith(d, syslogdigest.StreamerOptions{
		StreamWorkers:      workers,
		ProvisionalHorizon: 30 * time.Second,
	})
	defer st.Close()
	st.Instrument(reg)
	health.SetReady(true)

	var (
		mu        sync.Mutex
		digested  int
		eventsOut int
		updSeen   [4]uint64 // delivered updates by Status
	)
	countUpdates := func(res *syslogdigest.DigestResult) {
		if res == nil {
			return
		}
		for i := range res.Updates {
			updSeen[res.Updates[i].Status]++
		}
	}
	col, err := collector.New(collector.Config{
		TCPAddr: "127.0.0.1:0", MaxLineBytes: 2048, Metrics: reg,
	}, func(m syslogmsg.Message) {
		mu.Lock()
		defer mu.Unlock()
		res, err := st.Push(m)
		if err != nil {
			t.Error(err)
			return
		}
		if res != nil {
			for _, e := range res.Events {
				digested += e.Size()
			}
			eventsOut += len(res.Events)
		}
		countUpdates(res)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// One connection carries the whole feed, with a garbage line and an
	// oversized line injected mid-stream: both must be absorbed without
	// losing any later message.
	conn, err := net.Dial("tcp", col.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	for i, m := range ds.Messages {
		if i == len(ds.Messages)/3 {
			fmt.Fprintf(conn, "not a syslog line at all\n")
			fmt.Fprintf(conn, "%s\n", strings.Repeat("x", 8000))
		}
		if _, err := fmt.Fprintf(conn, "%s\n", m.Format()); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	conn.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if col.Stats().Received == uint64(sent) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	res, err := st.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		for _, e := range res.Events {
			digested += e.Size()
		}
		eventsOut += len(res.Events)
	}
	countUpdates(res)
	mu.Unlock()

	// In-process reconciliation: received == digested, and every sent line
	// is accounted for.
	cst := col.Stats()
	if cst.Received != uint64(sent) {
		t.Fatalf("received %d != sent %d (dropped %d oversized %d)", cst.Received, sent, cst.Dropped, cst.Oversized)
	}
	if cst.Dropped != 1 || cst.Oversized != 1 {
		t.Fatalf("dropped %d oversized %d, want 1 and 1", cst.Dropped, cst.Oversized)
	}
	if uint64(digested) != cst.Received {
		t.Fatalf("digested %d != received %d", digested, cst.Received)
	}
	if eventsOut == 0 || eventsOut >= digested {
		t.Fatalf("events %d out of %d messages: no compression", eventsOut, digested)
	}

	// The exporter must tell the same story.
	code, body := httpGet(t, srv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	received := snap.Counter("collector.tcp.received")
	drops := snap.Counter("collector.tcp.dropped") + snap.Counter("collector.tcp.oversized")
	if received != uint64(sent) || drops != 2 {
		t.Fatalf("exporter: received %d drops %d, want %d and 2", received, drops, sent)
	}
	if got := snap.Counter("stream.pushed"); got != received {
		t.Fatalf("exporter: stream.pushed %d != received %d", got, received)
	}
	if got := snap.Counter("stream.dropped.late"); got != 0 {
		t.Fatalf("exporter: stream.dropped.late %d on an in-order feed", got)
	}
	if got := snap.Counter("stream.dropped.overflow"); got != 0 {
		t.Fatalf("exporter: stream.dropped.overflow %d on an in-order feed", got)
	}
	if got := snap.Counter("stream.emitted"); got != uint64(eventsOut) {
		t.Fatalf("exporter: stream.emitted %d != %d", got, eventsOut)
	}
	merges := snap.Counter("group.merges.temporal") + snap.Counter("group.merges.rule") + snap.Counter("group.merges.cross")
	if want := uint64(digested - eventsOut); merges != want {
		t.Fatalf("exporter: merge total %d != messages-events %d", merges, want)
	}
	// Candidate-scan books: the rule pass can only match pairs it scanned,
	// and can only merge groups whose pair it matched; likewise a cross
	// merge implies an examined cross candidate. A real feed exercises the
	// rule window, so a zero scan count means the counters came unwired.
	ruleScanned := snap.Counter("group.rule.candidates_scanned")
	rulePairs := snap.Counter("group.rule.pairs_matched")
	if rulePairs > ruleScanned {
		t.Fatalf("exporter: rule pairs matched %d > candidates scanned %d", rulePairs, ruleScanned)
	}
	if rm := snap.Counter("group.merges.rule"); rm > rulePairs {
		t.Fatalf("exporter: rule merges %d > pairs matched %d", rm, rulePairs)
	}
	if ruleScanned == 0 {
		t.Fatal("exporter: rule pass scanned no candidates on a real feed")
	}
	if cm := snap.Counter("group.merges.cross"); cm > snap.Counter("group.cross.candidates_scanned") {
		t.Fatalf("exporter: cross merges %d > candidates scanned %d", cm, snap.Counter("group.cross.candidates_scanned"))
	}
	// Match-cache books: every augmented message is exactly one cache hit or
	// miss, a real feed repeats itself (hits > 0), only misses run the
	// matcher (candidate scans), and evictions never exceed insertions.
	hits, misses := snap.Counter("digest.match.cache.hits"), snap.Counter("digest.match.cache.misses")
	if hits+misses != received {
		t.Fatalf("exporter: cache hits %d + misses %d != augmented %d", hits, misses, received)
	}
	if misses == 0 || hits == 0 {
		t.Fatalf("exporter: degenerate cache traffic: hits %d misses %d", hits, misses)
	}
	if ev := snap.Counter("digest.match.cache.evictions"); ev > misses {
		t.Fatalf("exporter: evictions %d > misses %d", ev, misses)
	}
	if got := snap.Counter("digest.match.candidates_scanned"); got == 0 {
		t.Fatal("exporter: matcher scanned no candidates")
	}
	if h := snap.Histogram("stream.emit_latency_seconds"); h == nil || h.Count != uint64(eventsOut) {
		t.Fatalf("exporter: emit latency observations %+v, want %d", h, eventsOut)
	}
	// Two-tier emission books. Every final event carries exactly one
	// finalized record; every first signal (revision 0) is eventually
	// resolved by exactly one finalized or superseded record — nothing
	// dangles after Flush.
	provEmitted := snap.Counter("stream.provisional.emitted")
	provRevised := snap.Counter("stream.provisional.revised")
	provSuperseded := snap.Counter("stream.provisional.superseded")
	provFinalized := snap.Counter("stream.provisional.finalized")
	if provFinalized != uint64(eventsOut) {
		t.Fatalf("exporter: provisional.finalized %d != stream.emitted %d", provFinalized, eventsOut)
	}
	if provEmitted != provFinalized+provSuperseded {
		t.Fatalf("exporter: provisional.emitted %d != finalized %d + superseded %d",
			provEmitted, provFinalized, provSuperseded)
	}
	if provEmitted == 0 || provSuperseded == 0 {
		t.Fatalf("exporter: degenerate provisional traffic: emitted %d superseded %d", provEmitted, provSuperseded)
	}
	// The delivered Update records must match the counters tier for tier.
	if updSeen[syslogdigest.StatusProvisional] != provEmitted ||
		updSeen[syslogdigest.StatusRevised] != provRevised ||
		updSeen[syslogdigest.StatusSuperseded] != provSuperseded ||
		updSeen[syslogdigest.StatusFinal] != provFinalized {
		t.Fatalf("delivered updates %v != counters [%d %d %d %d]",
			updSeen, provEmitted, provRevised, provSuperseded, provFinalized)
	}
	if h := snap.Histogram("stream.provisional.latency_seconds"); h == nil || h.Count != provEmitted {
		t.Fatalf("exporter: provisional latency observations %+v, want %d", h, provEmitted)
	}
	if h := snap.Histogram("stream.provisional.revision_churn"); h == nil || h.Count != provFinalized {
		t.Fatalf("exporter: revision churn observations %+v, want %d", h, provFinalized)
	}
	// Pending-pool books: every record handed out was either returned or is
	// still live (gets == puts + live), and after Flush force-closed every
	// group nothing is live — the pool recycled the entire run.
	poolGets := snap.Counter("stream.pool.pending.gets")
	poolPuts := snap.Counter("stream.pool.pending.puts")
	poolLive := snap.Gauge("stream.pool.pending.live")
	if poolGets == 0 {
		t.Fatal("exporter: pool handed out no records on a real feed")
	}
	if poolGets != poolPuts+uint64(poolLive) {
		t.Fatalf("exporter: pool gets %d != puts %d + live %v", poolGets, poolPuts, poolLive)
	}
	if poolLive != 0 {
		t.Fatalf("exporter: pool live %v after flush, want 0", poolLive)
	}
	if wm := snap.Gauge("stream.watermark_unix_seconds"); wm <= 0 {
		t.Fatalf("exporter: watermark gauge %v, want positive", wm)
	}
	// Runtime books (obs.PublishRuntime): refreshed by the snapshot-time
	// sampler, so the scrape must carry live allocator totals that obey
	// mallocs >= frees, with the live count being exactly the difference.
	rtMallocs := snap.Gauge("runtime.heap.mallocs")
	rtFrees := snap.Gauge("runtime.heap.frees")
	if rtMallocs <= 0 || rtFrees < 0 || rtMallocs < rtFrees {
		t.Fatalf("exporter: runtime heap books mallocs %v frees %v", rtMallocs, rtFrees)
	}
	if rtLive := snap.Gauge("runtime.heap.live_objects"); rtLive != rtMallocs-rtFrees {
		t.Fatalf("exporter: runtime live %v != mallocs %v - frees %v", rtLive, rtMallocs, rtFrees)
	}

	// Sharded-mode reconciliation: every released message was processed by
	// exactly one shard, and every emitted event passed through the merge
	// stage.
	if workers > 1 {
		var shardPushed uint64
		for k := 0; k < workers; k++ {
			shardPushed += snap.Counter(fmt.Sprintf("stream.shard.%d.pushed", k))
		}
		dropped := snap.Counter("stream.dropped.late") + snap.Counter("stream.dropped.overflow")
		if want := snap.Counter("stream.pushed") - dropped; shardPushed != want {
			t.Fatalf("exporter: sum(shard.pushed) %d != pushed-dropped %d", shardPushed, want)
		}
		if got := snap.Counter("stream.merge.emitted"); got != snap.Counter("stream.emitted") {
			t.Fatalf("exporter: stream.merge.emitted %d != stream.emitted %d", got, snap.Counter("stream.emitted"))
		}
	}

	code, body = httpGet(t, srv.Addr(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz after run = %d (%s)", code, body)
	}
	var hst obs.Status
	if err := json.Unmarshal(body, &hst); err != nil || !hst.Ready || !hst.Live {
		t.Fatalf("healthz body: %s (err %v)", body, err)
	}
}

func httpGet(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}
