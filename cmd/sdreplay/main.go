// Command sdreplay streams a serialized syslog file to a collector over the
// network, preserving relative message timing with optional compression —
// the testing companion to cmd/sdcollect.
//
// Usage:
//
//	sdreplay -syslog ds/syslog.log -udp 127.0.0.1:5514 -speed 600
//	sdreplay -syslog ds/syslog.log -tcp 127.0.0.1:5514 -format rfc3164
//
// -speed N plays N seconds of log time per wall-clock second (0 = as fast
// as possible). -format selects the wire framing: line (the repository
// format), rfc3164, or rfc5424.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"syslogdigest"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	var (
		syslogPath = flag.String("syslog", "", "syslog file to replay (required)")
		udpAddr    = flag.String("udp", "", "UDP destination (one datagram per message)")
		tcpAddr    = flag.String("tcp", "", "TCP destination (newline framed)")
		speed      = flag.Float64("speed", 0, "log seconds per wall second (0 = no pacing)")
		format     = flag.String("format", "line", "wire format: line, rfc3164, or rfc5424")
		pri        = flag.Int("pri", 189, "syslog <pri> value for RFC framings")
	)
	flag.Parse()
	if *syslogPath == "" || (*udpAddr == "") == (*tcpAddr == "") {
		fmt.Fprintln(os.Stderr, "sdreplay: need -syslog and exactly one of -udp/-tcp")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*syslogPath)
	if err != nil {
		fatalf("open: %v", err)
	}
	msgs, err := syslogdigest.ReadMessages(f)
	f.Close()
	if err != nil {
		fatalf("read: %v", err)
	}
	if len(msgs) == 0 {
		fatalf("empty stream")
	}

	var render func(m *syslogmsg.Message) string
	switch strings.ToLower(*format) {
	case "line":
		render = func(m *syslogmsg.Message) string { return m.Format() }
	case "rfc3164":
		render = func(m *syslogmsg.Message) string { return syslogmsg.FormatRFC3164(m, *pri) }
	case "rfc5424":
		render = func(m *syslogmsg.Message) string { return syslogmsg.FormatRFC5424(m, *pri) }
	default:
		fatalf("unknown -format %q", *format)
	}

	network, addr := "udp", *udpAddr
	if *tcpAddr != "" {
		network, addr = "tcp", *tcpAddr
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		fatalf("dial %s %s: %v", network, addr, err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)

	start := time.Now()
	logStart := msgs[0].Time
	sent := 0
	for i := range msgs {
		if *speed > 0 {
			due := start.Add(time.Duration(float64(msgs[i].Time.Sub(logStart)) / *speed))
			if d := time.Until(due); d > 0 {
				// Flush before sleeping so the receiver sees what's due.
				if err := w.Flush(); err != nil {
					fatalf("flush: %v", err)
				}
				time.Sleep(d)
			}
		}
		if _, err := w.WriteString(render(&msgs[i])); err != nil {
			fatalf("write: %v", err)
		}
		if err := w.WriteByte('\n'); err != nil {
			fatalf("write: %v", err)
		}
		if network == "udp" {
			// One datagram per message: flush each line.
			if err := w.Flush(); err != nil {
				fatalf("flush: %v", err)
			}
		}
		sent++
		if network == "udp" && sent%64 == 0 {
			time.Sleep(time.Millisecond) // don't overrun receiver buffers
		}
	}
	if err := w.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
	fmt.Fprintf(os.Stderr, "sdreplay: sent %d messages over %s in %s\n",
		sent, network, time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdreplay: "+format+"\n", args...)
	os.Exit(1)
}
