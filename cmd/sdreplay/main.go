// Command sdreplay streams a serialized syslog file to a collector over the
// network, preserving relative message timing with optional compression —
// the testing companion to cmd/sdcollect. With -kb and no destination it
// instead drives the incremental streaming engine in-process, printing each
// event at its closure time: a paced, local rehearsal of the live pipeline.
//
// Usage:
//
//	sdreplay -syslog ds/syslog.log -udp 127.0.0.1:5514 -speed 600
//	sdreplay -syslog ds/syslog.log -tcp 127.0.0.1:5514 -format rfc3164
//	sdreplay -syslog ds/syslog.log -kb kb.json -speed 3600
//
// -speed N plays N seconds of log time per wall-clock second (0 = as fast
// as possible). -format selects the wire framing: line (the repository
// format), rfc3164, or rfc5424.
//
// In local mode, -provisional turns on two-tier emission (tagged
// provisional/revised/superseded lines ahead of each final closure line),
// and -checkpoint makes the replay resumable: streaming state is
// snapshotted to the file periodically, and a restarted replay restores it
// and skips the prefix of the stream the previous run already pushed,
// printing each event exactly once across restarts.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"syslogdigest"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	var (
		syslogPath  = flag.String("syslog", "", "syslog file to replay (required)")
		udpAddr     = flag.String("udp", "", "UDP destination (one datagram per message)")
		tcpAddr     = flag.String("tcp", "", "TCP destination (newline framed)")
		speed       = flag.Float64("speed", 0, "log seconds per wall second (0 = no pacing)")
		format      = flag.String("format", "line", "wire format: line, rfc3164, or rfc5424")
		pri         = flag.Int("pri", 189, "syslog <pri> value for RFC framings")
		kbPath      = flag.String("kb", "", "knowledge base: replay into the in-process streaming engine instead of the network")
		streamWork  = flag.Int("stream-workers", 0, "shard workers for the local engine (<= 1 = serial, N > 1 = router-sharded; output is identical at any setting)")
		shardAddrs  = flag.String("shards", "", "comma-separated sdshard addresses (local mode): distribute the engine's shards across processes over the wire protocol (one shard per entry; output is identical at any setting; overrides -stream-workers)")
		provisional = flag.Duration("provisional", 0, "local mode: two-tier emission horizon — print provisional/revised/superseded lines this much log time after group birth (0 disables; the final stream is identical at any setting)")
		ckptPath    = flag.String("checkpoint", "", "local mode: restore streaming state from this file on start (skipping the messages the snapshotted run already pushed) and snapshot into it periodically")
		ckptEvery   = flag.Duration("checkpoint-interval", 30*time.Second, "how often to write the checkpoint (with -checkpoint)")
	)
	flag.Parse()
	local := *kbPath != "" && *udpAddr == "" && *tcpAddr == ""
	if *syslogPath == "" || (!local && (*udpAddr == "") == (*tcpAddr == "")) {
		fmt.Fprintln(os.Stderr, "sdreplay: need -syslog and exactly one of -udp/-tcp (or -kb alone)")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*syslogPath)
	if err != nil {
		fatalf("open: %v", err)
	}
	msgs, err := syslogdigest.ReadMessages(f)
	f.Close()
	if err != nil {
		fatalf("read: %v", err)
	}
	if len(msgs) == 0 {
		fatalf("empty stream")
	}
	if local {
		replayLocal(*kbPath, msgs, *speed, *streamWork, splitAddrs(*shardAddrs), *provisional, *ckptPath, *ckptEvery)
		return
	}
	if *provisional != 0 {
		fatalf("-provisional applies to local mode only (with -kb and no destination)")
	}

	var render func(m *syslogmsg.Message) string
	switch strings.ToLower(*format) {
	case "line":
		render = func(m *syslogmsg.Message) string { return m.Format() }
	case "rfc3164":
		render = func(m *syslogmsg.Message) string { return syslogmsg.FormatRFC3164(m, *pri) }
	case "rfc5424":
		render = func(m *syslogmsg.Message) string { return syslogmsg.FormatRFC5424(m, *pri) }
	default:
		fatalf("unknown -format %q", *format)
	}

	network, addr := "udp", *udpAddr
	if *tcpAddr != "" {
		network, addr = "tcp", *tcpAddr
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		fatalf("dial %s %s: %v", network, addr, err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)

	start := time.Now()
	logStart := msgs[0].Time
	sent := 0
	for i := range msgs {
		if *speed > 0 {
			due := start.Add(time.Duration(float64(msgs[i].Time.Sub(logStart)) / *speed))
			if d := time.Until(due); d > 0 {
				// Flush before sleeping so the receiver sees what's due.
				if err := w.Flush(); err != nil {
					fatalf("flush: %v", err)
				}
				time.Sleep(d)
			}
		}
		if _, err := w.WriteString(render(&msgs[i])); err != nil {
			fatalf("write: %v", err)
		}
		if err := w.WriteByte('\n'); err != nil {
			fatalf("write: %v", err)
		}
		if network == "udp" {
			// One datagram per message: flush each line.
			if err := w.Flush(); err != nil {
				fatalf("flush: %v", err)
			}
		}
		sent++
		if network == "udp" && sent%64 == 0 {
			time.Sleep(time.Millisecond) // don't overrun receiver buffers
		}
	}
	if err := w.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
	fmt.Fprintf(os.Stderr, "sdreplay: sent %d messages over %s in %s\n",
		sent, network, time.Since(start).Round(time.Millisecond))
}

// replayLocal paces the corpus into the incremental engine, printing each
// event when the watermark closes it — what a collector at the same feed
// rate would have printed, without the network. With a checkpoint file the
// replay is resumable: the restored streamer reports how many messages the
// snapshotted run already pushed, and the replay skips exactly that prefix,
// so a killed replay continues where it stopped with each event printed
// exactly once across the restarts.
func replayLocal(kbPath string, msgs []syslogmsg.Message, speed float64, streamWorkers int, shardAddrs []string, provisional time.Duration, ckptPath string, ckptEvery time.Duration) {
	kf, err := os.Open(kbPath)
	if err != nil {
		fatalf("open kb: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(kf)
	kf.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		fatalf("digester: %v", err)
	}
	opts := syslogdigest.StreamerOptions{
		StreamWorkers:      streamWorkers,
		ShardAddrs:         shardAddrs,
		ProvisionalHorizon: provisional,
	}
	var st *syslogdigest.Streamer
	skip := 0
	if ckptPath != "" {
		if snap, err := syslogdigest.ReadCheckpoint(ckptPath); err == nil {
			st, err = syslogdigest.RestoreStreamer(d, snap, opts)
			if err != nil {
				fatalf("restore checkpoint %s: %v", ckptPath, err)
			}
			if skip = int(st.Pushed()); skip > len(msgs) {
				fatalf("checkpoint %s is ahead of the stream: %d pushed, %d messages", ckptPath, skip, len(msgs))
			}
			fmt.Fprintf(os.Stderr, "sdreplay: restored checkpoint %s, resuming at message %d\n", ckptPath, skip)
		} else if !errors.Is(err, os.ErrNotExist) {
			fatalf("read checkpoint %s: %v", ckptPath, err)
		}
	}
	if st == nil {
		st = syslogdigest.NewStreamerWith(d, opts)
	}

	start := time.Now()
	logStart := msgs[0].Time
	events := 0
	print := func(res *syslogdigest.DigestResult) {
		if res == nil {
			return
		}
		for i := range res.Updates {
			if u := &res.Updates[i]; u.Status != syslogdigest.StatusFinal {
				fmt.Println(u.Digest())
			}
		}
		for _, e := range res.Events {
			events++
			fmt.Println(e.Digest())
		}
	}
	writeCkpt := func() {
		snap, err := st.Snapshot()
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		if err := syslogdigest.WriteCheckpoint(ckptPath, snap); err != nil {
			fatalf("checkpoint: %v", err)
		}
	}
	lastCkpt := time.Now()
	for i := skip; i < len(msgs); i++ {
		if speed > 0 {
			due := start.Add(time.Duration(float64(msgs[i].Time.Sub(logStart)) / speed))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		res, err := st.Push(msgs[i])
		print(res) // partial events accompany an error; they are final
		if err != nil {
			fatalf("stream: %v", err)
		}
		if ckptPath != "" && time.Since(lastCkpt) >= ckptEvery {
			writeCkpt()
			lastCkpt = time.Now()
		}
	}
	res, err := st.Flush()
	print(res)
	if err != nil {
		fatalf("stream flush: %v", err)
	}
	if ckptPath != "" {
		// Final write marks the replay complete: a restart skips the whole
		// stream instead of re-emitting it.
		writeCkpt()
	}
	st.Close()
	fmt.Fprintf(os.Stderr, "sdreplay: %d messages -> %d events in %s (local engine)\n",
		len(msgs)-skip, events, time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdreplay: "+format+"\n", args...)
	os.Exit(1)
}

// splitAddrs parses the -shards flag: comma-separated host:port entries,
// blanks ignored; nil when the flag is unset (in-process engine).
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
