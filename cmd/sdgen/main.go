// Command sdgen generates a synthetic dataset: router configs, a syslog
// stream, ground-truth conditions, and trouble tickets.
//
// Usage:
//
//	sdgen -kind A -routers 60 -days 7 -seed 42 -out ./dataset
//
// The output directory receives:
//
//	configs/<router>.cfg   one rendered config per router
//	syslog.log             the serialized message stream
//	conditions.tsv         ground-truth conditions (kind, span, routers, ...)
//	tickets.tsv            synthesized trouble tickets
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"syslogdigest/internal/gen"
	"syslogdigest/internal/netconf"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/tickets"
)

func main() {
	var (
		kindFlag = flag.String("kind", "A", "dataset kind: A (ISP/V1) or B (IPTV/V2)")
		routers  = flag.Int("routers", 60, "number of routers")
		days     = flag.Float64("days", 1, "simulated days of traffic")
		seed     = flag.Int64("seed", 42, "random seed")
		rate     = flag.Float64("rate", 1, "condition rate scale")
		start    = flag.String("start", "2009-09-01 00:00:00", "simulation start (UTC, '2006-01-02 15:04:05')")
		out      = flag.String("out", "dataset", "output directory")
	)
	flag.Parse()

	kind := gen.DatasetA
	switch strings.ToUpper(*kindFlag) {
	case "A":
	case "B":
		kind = gen.DatasetB
	default:
		fatalf("unknown -kind %q (want A or B)", *kindFlag)
	}
	startAt, err := time.Parse(syslogmsg.TimeLayout, *start)
	if err != nil {
		fatalf("bad -start: %v", err)
	}

	ds, err := gen.Generate(gen.Spec{
		Kind: kind, Routers: *routers, Seed: *seed,
		Start: startAt.UTC(), Duration: time.Duration(*days * 24 * float64(time.Hour)),
		RateScale: *rate,
	})
	if err != nil {
		fatalf("generate: %v", err)
	}

	cfgDir := filepath.Join(*out, "configs")
	if err := os.MkdirAll(cfgDir, 0o755); err != nil {
		fatalf("mkdir: %v", err)
	}
	for _, c := range ds.Net.Configs {
		path := filepath.Join(cfgDir, c.Hostname+".cfg")
		if err := os.WriteFile(path, []byte(netconf.Render(c)), 0o644); err != nil {
			fatalf("write %s: %v", path, err)
		}
	}

	logPath := filepath.Join(*out, "syslog.log")
	f, err := os.Create(logPath)
	if err != nil {
		fatalf("create %s: %v", logPath, err)
	}
	if err := syslogmsg.WriteAll(f, ds.Messages); err != nil {
		fatalf("write syslog: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("close syslog: %v", err)
	}

	var conds strings.Builder
	conds.WriteString("kind\tstart\tend\tregion\trouters\tmessages\tdetail\n")
	for _, c := range ds.Conditions {
		fmt.Fprintf(&conds, "%s\t%s\t%s\t%s\t%s\t%d\t%s\n",
			c.Kind, c.Start.Format(syslogmsg.TimeLayout), c.End.Format(syslogmsg.TimeLayout),
			c.Region, strings.Join(c.Routers, ","), c.Messages, c.Detail)
	}
	if err := os.WriteFile(filepath.Join(*out, "conditions.tsv"), []byte(conds.String()), 0o644); err != nil {
		fatalf("write conditions: %v", err)
	}

	tks := tickets.FromConditions(ds.Conditions, tickets.Options{Seed: *seed})
	tf, err := os.Create(filepath.Join(*out, "tickets.tsv"))
	if err != nil {
		fatalf("create tickets: %v", err)
	}
	if err := tickets.WriteTSV(tf, tks); err != nil {
		fatalf("write tickets: %v", err)
	}
	if err := tf.Close(); err != nil {
		fatalf("close tickets: %v", err)
	}

	fmt.Printf("dataset %s: %d routers, %d messages, %d conditions, %d tickets -> %s\n",
		kind, len(ds.Net.Configs), len(ds.Messages), len(ds.Conditions), len(tks), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdgen: "+format+"\n", args...)
	os.Exit(1)
}
