// Command sdcollect is a live syslog collector wired to the online
// digester: routers (or a replay tool) send syslog over UDP/TCP in RFC
// 3164, RFC 5424, or the repository line format; sdcollect feeds each
// message straight into the incremental streaming engine and prints every
// event the moment the engine's watermark proves it complete — no
// micro-batching, no flush-interval latency floor.
//
// Usage:
//
//	sdcollect -kb kb.json -udp :5514 -tcp :5514 [-reorder 2s] [-idle 30s]
//	          [-metrics 127.0.0.1:9090] [-checkpoint state.ckpt]
//
// -reorder sets the reorder-buffer tolerance: arrivals out of time order by
// less than this are sorted into place; older stragglers are dropped and
// counted (stream.dropped.late when the sender lagged beyond the tolerance,
// stream.dropped.overflow when an undersized buffer forced the frontier
// forward early). -idle bounds quiet-feed latency: when no message arrives
// for an interval and groups are still open, the engine is drained so the
// tail events print.
//
// -provisional turns on two-tier emission: besides the final closure lines,
// each open group prints a tagged provisional line once the given log-time
// horizon passes its birth, then revised/superseded lines as it grows or
// merges. First signal arrives in seconds instead of the hours-scale
// closure horizon; the final stream is unchanged.
//
// -checkpoint makes the streaming state durable: the file is written
// atomically every -checkpoint-interval and on shutdown, and restored on
// the next start, so a restarted collector resumes mid-stream — open
// groups, temporal models, and the reorder buffer survive, and each event
// is emitted exactly once across the restart.
//
// -metrics starts an HTTP exporter: /metrics serves every pipeline counter
// (collector.* per transport, stream.*, group.merges.*) as JSON; /healthz
// reports readiness (knowledge base loaded) and liveness (the idle loop
// has run within 3 intervals) — 503 otherwise.
//
// Try it against a generated dataset:
//
//	sdgen -kind A -out ds && sdlearn -syslog ds/syslog.log -configs ds/configs -kb kb.json
//	sdcollect -kb kb.json -udp 127.0.0.1:5514 &
//	# replay: while read l; do echo "$l" > /dev/udp/127.0.0.1/5514; done < ds/syslog.log
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"syslogdigest"
	"syslogdigest/internal/collector"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	var (
		kbPath      = flag.String("kb", "kb.json", "knowledge-base JSON from sdlearn")
		udpAddr     = flag.String("udp", "127.0.0.1:5514", "UDP listen address ('' disables)")
		tcpAddr     = flag.String("tcp", "", "TCP listen address ('' disables)")
		reorder     = flag.Duration("reorder", 0, "reorder-buffer tolerance (0 = default 2s, negative = strict arrival order)")
		idle        = flag.Duration("idle", 30*time.Second, "drain open groups after this much feed silence")
		year        = flag.Int("year", 0, "year for RFC3164 timestamps (0 = current)")
		verbose     = flag.Bool("v", false, "log parse errors to stderr")
		metricsAddr = flag.String("metrics", "", "serve /metrics and /healthz on this address ('' disables)")
		matchCache  = flag.Int("match-cache", 0, "match-cache entries (0 = default, negative = disabled; output is identical at any setting)")
		streamWorks = flag.Int("stream-workers", 0, "streaming-engine shard workers (<= 1 = serial engine, N > 1 = router-sharded engine; output is identical at any setting)")
		shardAddrs  = flag.String("shards", "", "comma-separated sdshard addresses: distribute the engine's shards across processes over the wire protocol (one shard per entry; repeat an address to host several shards in one process; output is identical at any setting; overrides -stream-workers)")
		provisional = flag.Duration("provisional", 0, "two-tier emission horizon: print provisional/revised/superseded lines this much log time after group birth (0 disables; the final stream is identical at any setting)")
		ckptPath    = flag.String("checkpoint", "", "checkpoint file: restore streaming state from it on start (if present) and snapshot into it periodically ('' disables)")
		ckptEvery   = flag.Duration("checkpoint-interval", time.Minute, "how often to write the checkpoint (with -checkpoint)")
	)
	flag.Parse()

	var (
		reg    *obs.Registry
		health *obs.Health
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		obs.PublishRuntime(reg)
		health = obs.NewHealth(3 * *idle)
		srv, err := obs.Serve(*metricsAddr, reg, health)
		if err != nil {
			fatalf("%v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sdcollect: metrics on http://%s/metrics\n", srv.Addr())
	}

	kf, err := os.Open(*kbPath)
	if err != nil {
		fatalf("open kb: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(kf)
	kf.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}
	if *matchCache != 0 {
		kb.SetMatchCache(*matchCache)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		fatalf("digester: %v", err)
	}
	d.Instrument(reg)
	health.SetReady(true)

	opts := syslogdigest.StreamerOptions{
		ReorderTolerance:   *reorder,
		StreamWorkers:      *streamWorks,
		ShardAddrs:         splitAddrs(*shardAddrs),
		ProvisionalHorizon: *provisional,
	}
	var st *syslogdigest.Streamer
	if *ckptPath != "" {
		if snap, err := syslogdigest.ReadCheckpoint(*ckptPath); err == nil {
			st, err = syslogdigest.RestoreStreamer(d, snap, opts)
			if err != nil {
				fatalf("restore checkpoint %s: %v", *ckptPath, err)
			}
			fmt.Fprintf(os.Stderr, "sdcollect: restored checkpoint %s (watermark %s)\n",
				*ckptPath, st.Watermark().Format(time.RFC3339))
		} else if !errors.Is(err, os.ErrNotExist) {
			fatalf("read checkpoint %s: %v", *ckptPath, err)
		}
	}
	if st == nil {
		st = syslogdigest.NewStreamerWith(d, opts)
	}
	st.Instrument(reg)

	var (
		mu      sync.Mutex
		lastMsg time.Time
	)
	printEvents := func(res *syslogdigest.DigestResult) {
		if res == nil {
			return
		}
		for i := range res.Updates {
			if u := &res.Updates[i]; u.Status != syslogdigest.StatusFinal {
				fmt.Println(u.Digest())
			}
		}
		for _, e := range res.Events {
			fmt.Println(e.Digest())
		}
	}
	cfg := collector.Config{UDPAddr: *udpAddr, TCPAddr: *tcpAddr, Year: *year, Metrics: reg}
	if *verbose {
		cfg.OnError = func(err error) { fmt.Fprintln(os.Stderr, "sdcollect:", err) }
	}
	col, err := collector.New(cfg, func(m syslogmsg.Message) {
		mu.Lock()
		defer mu.Unlock()
		lastMsg = time.Now()
		res, err := st.Push(m)
		if err != nil {
			// Events closed before the failure still arrive in res;
			// print them — they are already emitted, not retryable.
			fmt.Fprintln(os.Stderr, "sdcollect: stream:", err)
		}
		printEvents(res)
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := col.Start(); err != nil {
		fatalf("%v", err)
	}
	if a := col.UDPAddr(); a != nil {
		fmt.Fprintf(os.Stderr, "sdcollect: listening udp %s\n", a)
	}
	if a := col.TCPAddr(); a != nil {
		fmt.Fprintf(os.Stderr, "sdcollect: listening tcp %s\n", a)
	}

	drain := func() {
		mu.Lock()
		defer mu.Unlock()
		res, err := st.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdcollect: drain:", err)
		}
		printEvents(res)
	}

	// writeCkpt snapshots the streamer under the push mutex and writes the
	// checkpoint atomically; a failure is logged, never fatal — the feed
	// keeps flowing and the previous checkpoint stays intact.
	writeCkpt := func() {
		mu.Lock()
		snap, err := st.Snapshot()
		mu.Unlock()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdcollect: checkpoint:", err)
			return
		}
		if err := syslogdigest.WriteCheckpoint(*ckptPath, snap); err != nil {
			fmt.Fprintln(os.Stderr, "sdcollect: checkpoint:", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*idle)
	defer tick.Stop()
	var ckptTick <-chan time.Time
	if *ckptPath != "" {
		ct := time.NewTicker(*ckptEvery)
		defer ct.Stop()
		ckptTick = ct.C
	}
	for {
		select {
		case <-ckptTick:
			writeCkpt()
		case <-tick.C:
			// The idle loop running is this process's liveness signal.
			health.Progress()
			// Watermark-driven closure stalls when the feed does: drain
			// open groups once the feed has been silent for an interval.
			mu.Lock()
			quiet := !lastMsg.IsZero() && time.Since(lastMsg) >= *idle && st.Pending() > 0
			mu.Unlock()
			if quiet {
				drain()
			}
		case <-sig:
			col.Close()
			if *ckptPath != "" {
				// Preserve open groups for the next run instead of
				// force-closing them: the restored process resumes
				// mid-stream with exactly-once emission.
				writeCkpt()
			} else {
				drain()
			}
			st.Close()
			cst := col.Stats()
			fmt.Fprintf(os.Stderr, "sdcollect: received %d, dropped %d, truncated %d, oversized %d, conns %d\n",
				cst.Received, cst.Dropped, cst.Truncated, cst.Oversized, cst.Conns)
			return
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdcollect: "+format+"\n", args...)
	os.Exit(1)
}

// splitAddrs parses the -shards flag: comma-separated host:port entries,
// blanks ignored; nil when the flag is unset (in-process engine).
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
