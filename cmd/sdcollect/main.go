// Command sdcollect is a live syslog collector wired to the online
// digester: routers (or a replay tool) send syslog over UDP/TCP in RFC
// 3164, RFC 5424, or the repository line format; sdcollect micro-batches
// the feed and prints event digests as they form.
//
// Usage:
//
//	sdcollect -kb kb.json -udp :5514 -tcp :5514 [-flush 30s]
//	          [-metrics 127.0.0.1:9090]
//
// -metrics starts an HTTP exporter: /metrics serves every pipeline counter
// (collector.* per transport, stream.*, digest.*, group.merges.*) as JSON;
// /healthz reports readiness (knowledge base loaded) and liveness (the
// flush loop has run within 3 flush intervals) — 503 otherwise.
//
// Try it against a generated dataset:
//
//	sdgen -kind A -out ds && sdlearn -syslog ds/syslog.log -configs ds/configs -kb kb.json
//	sdcollect -kb kb.json -udp 127.0.0.1:5514 &
//	# replay: while read l; do echo "$l" > /dev/udp/127.0.0.1/5514; done < ds/syslog.log
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"syslogdigest"
	"syslogdigest/internal/collector"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	var (
		kbPath      = flag.String("kb", "kb.json", "knowledge-base JSON from sdlearn")
		udpAddr     = flag.String("udp", "127.0.0.1:5514", "UDP listen address ('' disables)")
		tcpAddr     = flag.String("tcp", "", "TCP listen address ('' disables)")
		flush       = flag.Duration("flush", 30*time.Second, "micro-batch flush interval")
		year        = flag.Int("year", 0, "year for RFC3164 timestamps (0 = current)")
		verbose     = flag.Bool("v", false, "log parse errors to stderr")
		metricsAddr = flag.String("metrics", "", "serve /metrics and /healthz on this address ('' disables)")
		matchCache  = flag.Int("match-cache", 0, "match-cache entries (0 = default, negative = disabled; output is identical at any setting)")
	)
	flag.Parse()

	var (
		reg    *obs.Registry
		health *obs.Health
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		health = obs.NewHealth(3 * *flush)
		srv, err := obs.Serve(*metricsAddr, reg, health)
		if err != nil {
			fatalf("%v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sdcollect: metrics on http://%s/metrics\n", srv.Addr())
	}

	kf, err := os.Open(*kbPath)
	if err != nil {
		fatalf("open kb: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(kf)
	kf.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}
	if *matchCache != 0 {
		kb.SetMatchCache(*matchCache)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		fatalf("digester: %v", err)
	}
	d.Instrument(reg)
	health.SetReady(true)

	var (
		mu    sync.Mutex
		batch []syslogdigest.Message
	)
	cfg := collector.Config{UDPAddr: *udpAddr, TCPAddr: *tcpAddr, Year: *year, Metrics: reg}
	if *verbose {
		cfg.OnError = func(err error) { fmt.Fprintln(os.Stderr, "sdcollect:", err) }
	}
	col, err := collector.New(cfg, func(m syslogmsg.Message) {
		mu.Lock()
		batch = append(batch, m)
		mu.Unlock()
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := col.Start(); err != nil {
		fatalf("%v", err)
	}
	if a := col.UDPAddr(); a != nil {
		fmt.Fprintf(os.Stderr, "sdcollect: listening udp %s\n", a)
	}
	if a := col.TCPAddr(); a != nil {
		fmt.Fprintf(os.Stderr, "sdcollect: listening tcp %s\n", a)
	}

	flushBatch := func() {
		mu.Lock()
		b := batch
		batch = nil
		mu.Unlock()
		// The flush loop running is this process's liveness signal — an
		// empty interval is healthy, a wedged loop is not.
		health.Progress()
		if len(b) == 0 {
			return
		}
		// Arrival order across routers is only approximately temporal;
		// micro-batching lets us sort before digesting.
		sort.SliceStable(b, func(i, j int) bool { return syslogmsg.SortByTime(&b[i], &b[j]) })
		res, err := d.Digest(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdcollect: digest:", err)
			return
		}
		for _, e := range res.Events {
			fmt.Println(e.Digest())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*flush)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			flushBatch()
		case <-sig:
			col.Close()
			flushBatch()
			st := col.Stats()
			fmt.Fprintf(os.Stderr, "sdcollect: received %d, dropped %d, truncated %d, oversized %d, conns %d\n",
				st.Received, st.Dropped, st.Truncated, st.Oversized, st.Conns)
			return
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdcollect: "+format+"\n", args...)
	os.Exit(1)
}
