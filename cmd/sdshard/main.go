// Command sdshard hosts remote shards of the cluster streaming engine: the
// worker-process half of the shard wire protocol. It loads the same learned
// knowledge base as the dispatcher (the fingerprints must match — the
// handshake rejects a stale copy), listens for shard sessions, and runs one
// grouping.RouterLocal per connection. The dispatcher (sdcollect, sdreplay,
// or sddigest with -shards) opens one connection per shard, so pointing
// several -shards entries at one sdshard hosts that many shards in this
// process.
//
// Usage:
//
//	sdshard -kb kb.json -listen 127.0.0.1:7600
//	sdshard -kb kb.json -listen :0 -metrics 127.0.0.1:9091
//
// The first stdout line is "listening ADDR" (useful with -listen :0, where
// the kernel picks the port). Session state lives and dies with its
// connection: a dispatcher that reconnects re-seeds the replacement session
// from its own replay log, so an sdshard restart loses nothing. -metrics
// serves /metrics, /healthz, and /debug/pprof/ for the shard process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"syslogdigest"
	"syslogdigest/internal/cluster"
	"syslogdigest/internal/obs"
)

func main() {
	var (
		kbPath      = flag.String("kb", "", "learned knowledge base (required; must match the dispatcher's)")
		listenAddr  = flag.String("listen", "127.0.0.1:0", "shard protocol listen address (port 0 = ephemeral, printed on stdout)")
		metricsAddr = flag.String("metrics", "", "serve /metrics, /healthz, and /debug/pprof/ on this address ('' disables)")
		quiet       = flag.Bool("quiet", false, "suppress session lifecycle log lines")
	)
	flag.Parse()
	if *kbPath == "" {
		fmt.Fprintln(os.Stderr, "sdshard: need -kb")
		flag.Usage()
		os.Exit(2)
	}

	kf, err := os.Open(*kbPath)
	if err != nil {
		fatalf("open: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(kf)
	kf.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}

	reg := obs.NewRegistry()
	cfg := cluster.ServerConfig{
		Dict:  kb.Dictionary(),
		Rules: kb.RuleBase,
		Metrics: cluster.ServerMetrics{
			Connections:    reg.Counter("shard.connections"),
			Batches:        reg.Counter("shard.batches"),
			Messages:       reg.Counter("shard.messages"),
			BytesIn:        reg.Counter("shard.bytes_in"),
			BytesOut:       reg.Counter("shard.bytes_out"),
			StateSnapshots: reg.Counter("shard.state_snapshots"),
			Restores:       reg.Counter("shard.restores"),
		},
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv, err := cluster.Serve(*listenAddr, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if *metricsAddr != "" {
		health := obs.NewHealth(0)
		health.SetReady(true)
		ms, err := obs.Serve(*metricsAddr, reg, health)
		if err != nil {
			fatalf("metrics: %v", err)
		}
		defer ms.Close()
		log.Printf("sdshard: metrics on http://%s/metrics", ms.Addr())
	}

	// The dispatcher discovers an ephemeral port from this line.
	fmt.Printf("listening %s\n", srv.Addr())
	log.Printf("sdshard: serving shards on %s (kb %s)", srv.Addr(), cluster.Fingerprint(kb.Dictionary(), kb.RuleBase))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("sdshard: shutting down")
	srv.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdshard: "+format+"\n", args...)
	os.Exit(1)
}
