// Command sdviz renders the Figures 14/15 comparison as an ASCII network
// health map: for a time window of a syslog stream, the per-router picture
// an events-based view gives versus the raw-message view.
//
// Usage:
//
//	sdviz -kb kb.json -syslog live.log [-at "2009-12-05 16:00:00"] [-window 10m]
//
// Without -at, the busiest window of the stream is chosen.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"syslogdigest"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	var (
		kbPath     = flag.String("kb", "kb.json", "knowledge-base JSON from sdlearn")
		syslogPath = flag.String("syslog", "", "syslog stream (required)")
		atFlag     = flag.String("at", "", "window start (UTC '2006-01-02 15:04:05'); empty = busiest window")
		window     = flag.Duration("window", 10*time.Minute, "window length")
	)
	flag.Parse()
	if *syslogPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	kf, err := os.Open(*kbPath)
	if err != nil {
		fatalf("open kb: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(kf)
	kf.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}
	sf, err := os.Open(*syslogPath)
	if err != nil {
		fatalf("open syslog: %v", err)
	}
	msgs, err := syslogdigest.ReadMessages(sf)
	sf.Close()
	if err != nil {
		fatalf("read syslog: %v", err)
	}
	if len(msgs) == 0 {
		fatalf("empty syslog stream")
	}

	var at time.Time
	if *atFlag != "" {
		at, err = time.Parse(syslogmsg.TimeLayout, *atFlag)
		if err != nil {
			fatalf("bad -at: %v", err)
		}
	} else {
		at = busiest(msgs, *window)
	}

	var batch []syslogdigest.Message
	for i := range msgs {
		if !msgs[i].Time.Before(at) && msgs[i].Time.Before(at.Add(*window)) {
			batch = append(batch, msgs[i])
		}
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		fatalf("digester: %v", err)
	}
	res, err := d.Digest(batch)
	if err != nil {
		fatalf("digest: %v", err)
	}

	msgCount := map[string]int{}
	for i := range batch {
		msgCount[batch[i].Router]++
	}
	evCount := map[string]int{}
	for _, e := range res.Events {
		for _, r := range e.Routers {
			evCount[r]++
		}
	}
	routers := make([]string, 0, len(msgCount))
	for r := range msgCount {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool {
		if msgCount[routers[i]] != msgCount[routers[j]] {
			return msgCount[routers[i]] > msgCount[routers[j]]
		}
		return routers[i] < routers[j]
	})

	fmt.Printf("network health map %s .. %s (%d messages, %d events)\n\n",
		at.Format(syslogmsg.TimeLayout), at.Add(*window).Format(syslogmsg.TimeLayout),
		len(batch), len(res.Events))
	fmt.Printf("%-10s %-22s %-30s\n", "router", "events view", "raw syslog view")
	for _, r := range routers {
		fmt.Printf("%-10s %-22s %-30s (%d msgs, %d events)\n",
			r, dots(evCount[r], 1, 20), dots(msgCount[r], 25, 30), msgCount[r], evCount[r])
	}
	fmt.Println("\ntop events in window:")
	n := len(res.Events)
	if n > 5 {
		n = 5
	}
	for _, e := range res.Events[:n] {
		fmt.Println("  " + e.Digest())
	}
}

// dots renders n (scaled down by per) as a bar capped at max.
func dots(n, per, max int) string {
	k := (n + per - 1) / per
	if k > max {
		k = max
	}
	if k < 0 {
		k = 0
	}
	return strings.Repeat("*", k)
}

func busiest(msgs []syslogdigest.Message, window time.Duration) time.Time {
	best, bestN := msgs[0].Time, 0
	j := 0
	for i := range msgs {
		if j < i {
			j = i
		}
		deadline := msgs[i].Time.Add(window)
		for j < len(msgs) && msgs[j].Time.Before(deadline) {
			j++
		}
		if n := j - i; n > bestN {
			best, bestN = msgs[i].Time, n
		}
	}
	return best
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdviz: "+format+"\n", args...)
	os.Exit(1)
}
