// Command sdviz renders the Figures 14/15 comparison as an ASCII network
// health map: for a time window of a syslog stream, the per-router picture
// an events-based view gives versus the raw-message view.
//
// Usage:
//
//	sdviz -kb kb.json -syslog live.log [-at "2009-12-05 16:00:00"] [-window 10m]
//	sdviz -kb kb.json -syslog live.log -live [-provisional 30s] [-speed 600]
//
// Without -at, the busiest window of the stream is chosen.
//
// -live replays the stream through the two-tier streaming engine and renders
// a live event board instead of the static map: a provisional event appears
// seconds (of log time) after its first message, updates in place as
// messages arrive, is folded into its absorbing event on a merge, and flips
// to final at closure. On a terminal the board redraws in place (ANSI);
// elsewhere each transition prints as one tagged line. -speed paces the
// replay in log seconds per wall second (0 = as fast as possible).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"syslogdigest"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	var (
		kbPath      = flag.String("kb", "kb.json", "knowledge-base JSON from sdlearn")
		syslogPath  = flag.String("syslog", "", "syslog stream (required)")
		atFlag      = flag.String("at", "", "window start (UTC '2006-01-02 15:04:05'); empty = busiest window")
		window      = flag.Duration("window", 10*time.Minute, "window length")
		live        = flag.Bool("live", false, "render a live two-tier event board instead of the static map")
		provisional = flag.Duration("provisional", 30*time.Second, "live mode: provisional horizon — an open group appears on the board this much log time after birth")
		speed       = flag.Float64("speed", 0, "live mode: log seconds per wall second (0 = no pacing)")
	)
	flag.Parse()
	if *syslogPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	kf, err := os.Open(*kbPath)
	if err != nil {
		fatalf("open kb: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(kf)
	kf.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}
	sf, err := os.Open(*syslogPath)
	if err != nil {
		fatalf("open syslog: %v", err)
	}
	msgs, err := syslogdigest.ReadMessages(sf)
	sf.Close()
	if err != nil {
		fatalf("read syslog: %v", err)
	}
	if len(msgs) == 0 {
		fatalf("empty syslog stream")
	}

	if *live {
		liveView(kb, msgs, *provisional, *speed)
		return
	}

	var at time.Time
	if *atFlag != "" {
		at, err = time.Parse(syslogmsg.TimeLayout, *atFlag)
		if err != nil {
			fatalf("bad -at: %v", err)
		}
	} else {
		at = busiest(msgs, *window)
	}

	var batch []syslogdigest.Message
	for i := range msgs {
		if !msgs[i].Time.Before(at) && msgs[i].Time.Before(at.Add(*window)) {
			batch = append(batch, msgs[i])
		}
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		fatalf("digester: %v", err)
	}
	res, err := d.Digest(batch)
	if err != nil {
		fatalf("digest: %v", err)
	}

	msgCount := map[string]int{}
	for i := range batch {
		msgCount[batch[i].Router]++
	}
	evCount := map[string]int{}
	for _, e := range res.Events {
		for _, r := range e.Routers {
			evCount[r]++
		}
	}
	routers := make([]string, 0, len(msgCount))
	for r := range msgCount {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool {
		if msgCount[routers[i]] != msgCount[routers[j]] {
			return msgCount[routers[i]] > msgCount[routers[j]]
		}
		return routers[i] < routers[j]
	})

	fmt.Printf("network health map %s .. %s (%d messages, %d events)\n\n",
		at.Format(syslogmsg.TimeLayout), at.Add(*window).Format(syslogmsg.TimeLayout),
		len(batch), len(res.Events))
	fmt.Printf("%-10s %-22s %-30s\n", "router", "events view", "raw syslog view")
	for _, r := range routers {
		fmt.Printf("%-10s %-22s %-30s (%d msgs, %d events)\n",
			r, dots(evCount[r], 1, 20), dots(msgCount[r], 25, 30), msgCount[r], evCount[r])
	}
	fmt.Println("\ntop events in window:")
	n := len(res.Events)
	if n > 5 {
		n = 5
	}
	for _, e := range res.Events[:n] {
		fmt.Println("  " + e.Digest())
	}
}

// liveView replays the stream through the streaming engine with two-tier
// emission and renders the event board: open provisional events as
// in-place-updating lines, finals printed permanently above them.
func liveView(kb *syslogdigest.KnowledgeBase, msgs []syslogdigest.Message, horizon time.Duration, speed float64) {
	if horizon <= 0 {
		fatalf("-live needs a positive -provisional horizon")
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		fatalf("digester: %v", err)
	}
	st := syslogdigest.NewStreamerWith(d, syslogdigest.StreamerOptions{ProvisionalHorizon: horizon})
	defer st.Close()

	b := newBoard(os.Stdout)
	apply := func(res *syslogdigest.DigestResult) {
		if res == nil {
			return
		}
		for i := range res.Updates {
			b.apply(&res.Updates[i])
		}
	}
	start := time.Now()
	logStart := msgs[0].Time
	for i := range msgs {
		if speed > 0 {
			due := start.Add(time.Duration(float64(msgs[i].Time.Sub(logStart)) / speed))
			if d := time.Until(due); d > 0 {
				b.redraw()
				time.Sleep(d)
			}
		}
		res, err := st.Push(msgs[i])
		if err != nil {
			fatalf("stream: %v", err)
		}
		apply(res)
	}
	res, err := st.Flush()
	if err != nil {
		fatalf("stream flush: %v", err)
	}
	apply(res)
	b.close()
}

// board is the live renderer. On a terminal it keeps one line per open
// provisional event and redraws them in place with ANSI cursor movement;
// finals scroll away permanently above the board. On a pipe it degrades to
// one tagged line per transition.
type board struct {
	out      *os.File
	tty      bool
	ids      []uint64 // board rows, in first-appearance order
	rows     map[uint64]string
	drawn    int // lines currently on screen
	lastDraw time.Time
	finals   int
}

func newBoard(out *os.File) *board {
	tty := false
	if fi, err := out.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		tty = true
	}
	return &board{out: out, tty: tty, rows: map[uint64]string{}}
}

// apply folds one update into the board.
func (b *board) apply(u *syslogdigest.Update) {
	if !b.tty {
		fmt.Fprintln(b.out, u.Digest())
		if u.Status == syslogdigest.StatusFinal {
			b.finals++
		}
		return
	}
	switch u.Status {
	case syslogdigest.StatusProvisional:
		b.ids = append(b.ids, u.EventID)
		b.rows[u.EventID] = fmt.Sprintf("~ #%-5d %s", u.EventID, u.Event.Digest())
	case syslogdigest.StatusRevised:
		b.rows[u.EventID] = fmt.Sprintf("~ #%-5d %s", u.EventID, u.Event.Digest())
	case syslogdigest.StatusSuperseded:
		b.drop(u.EventID)
	case syslogdigest.StatusFinal:
		b.drop(u.EventID)
		b.finals++
		// Print the final permanently above the board: erase, print, redraw.
		b.erase()
		fmt.Fprintf(b.out, "✔ %s\n", u.Event.Digest())
	}
	// Throttle in-place refreshes; transitions that changed the line count
	// (drop/erase above) redraw unconditionally via drawn mismatch.
	if time.Since(b.lastDraw) >= 50*time.Millisecond || b.drawn != len(b.ids) {
		b.redraw()
	}
}

func (b *board) drop(id uint64) {
	delete(b.rows, id)
	for i, v := range b.ids {
		if v == id {
			b.ids = append(b.ids[:i], b.ids[i+1:]...)
			break
		}
	}
}

// erase clears the board's lines from the screen.
func (b *board) erase() {
	if b.drawn > 0 {
		fmt.Fprintf(b.out, "\x1b[%dA\x1b[J", b.drawn)
		b.drawn = 0
	}
}

// redraw repaints the open-event lines in place.
func (b *board) redraw() {
	if !b.tty {
		return
	}
	b.erase()
	for _, id := range b.ids {
		fmt.Fprintln(b.out, b.rows[id])
	}
	b.drawn = len(b.ids)
	b.lastDraw = time.Now()
}

// close erases the (now empty — Flush finalized everything) board and
// prints the tally.
func (b *board) close() {
	if b.tty {
		b.erase()
	}
	fmt.Fprintf(os.Stderr, "sdviz: %d events finalized\n", b.finals)
}

// dots renders n (scaled down by per) as a bar capped at max.
func dots(n, per, max int) string {
	k := (n + per - 1) / per
	if k > max {
		k = max
	}
	if k < 0 {
		k = 0
	}
	return strings.Repeat("*", k)
}

func busiest(msgs []syslogdigest.Message, window time.Duration) time.Time {
	best, bestN := msgs[0].Time, 0
	j := 0
	for i := range msgs {
		if j < i {
			j = i
		}
		deadline := msgs[i].Time.Add(window)
		for j < len(msgs) && msgs[j].Time.Before(deadline) {
			j++
		}
		if n := j - i; n > bestN {
			best, bestN = msgs[i].Time, n
		}
	}
	return best
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdviz: "+format+"\n", args...)
	os.Exit(1)
}
