// Command sdlearn runs the offline domain-knowledge learning half of
// SyslogDigest: it reads historical syslog and router configs and writes a
// knowledge-base JSON for cmd/sddigest.
//
// Usage:
//
//	sdlearn -syslog dataset/syslog.log -configs dataset/configs -kb kb.json
//
// Flags mirror the paper's Table 6 parameters; -calibrate derives alpha and
// beta from the data by the §5.2.3 compression-ratio sweep instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"syslogdigest"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	var (
		syslogPath = flag.String("syslog", "", "historical syslog file or glob, e.g. 'logs/*.log' (required)")
		configDir  = flag.String("configs", "", "directory of router config files (required)")
		kbPath     = flag.String("kb", "kb.json", "output knowledge-base path")
		window     = flag.Duration("w", 120*time.Second, "association mining window W")
		spmin      = flag.Float64("spmin", 0.0005, "minimum item support SPmin")
		confmin    = flag.Float64("confmin", 0.8, "minimum rule confidence Confmin")
		alpha      = flag.Float64("alpha", 0.05, "temporal EWMA weight alpha")
		beta       = flag.Float64("beta", 5, "temporal tolerance beta")
		calibrate  = flag.Bool("calibrate", false, "derive alpha/beta from the data instead of -alpha/-beta")
		expertPath = flag.String("expert", "", "optional expert adjustments file (rule add/del, template names)")
		workers    = flag.Int("j", 0, "worker parallelism for learning stages (0 = GOMAXPROCS, 1 = serial; output is identical at any setting)")
	)
	flag.Parse()
	if *syslogPath == "" || *configDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	msgs, err := syslogmsg.ReadGlob(*syslogPath)
	if err != nil {
		fatalf("read syslog: %v", err)
	}

	entries, err := os.ReadDir(*configDir)
	if err != nil {
		fatalf("read configs: %v", err)
	}
	var configs []*syslogdigest.RouterConfig
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		text, err := os.ReadFile(filepath.Join(*configDir, e.Name()))
		if err != nil {
			fatalf("read %s: %v", e.Name(), err)
		}
		cfg, err := syslogdigest.ParseConfig(string(text))
		if err != nil {
			fatalf("parse %s: %v", e.Name(), err)
		}
		configs = append(configs, cfg)
	}
	if len(configs) == 0 {
		fatalf("no config files in %s", *configDir)
	}

	params := syslogdigest.DefaultParams()
	params.Rules.Window = *window
	params.Rules.SPmin = *spmin
	params.Rules.ConfMin = *confmin
	params.Temporal.Alpha = *alpha
	params.Temporal.Beta = *beta
	params.CalibrateTemporal = *calibrate
	params.Parallelism = *workers

	started := time.Now()
	kb, err := syslogdigest.NewLearner(params).Learn(msgs, configs)
	if err != nil {
		fatalf("learn: %v", err)
	}

	if *expertPath != "" {
		ef, err := os.Open(*expertPath)
		if err != nil {
			fatalf("open expert file: %v", err)
		}
		n, err := kb.ApplyExpert(ef)
		ef.Close()
		if err != nil {
			fatalf("expert adjustments: %v", err)
		}
		fmt.Printf("applied %d expert adjustment(s)\n", n)
	}

	out, err := os.Create(*kbPath)
	if err != nil {
		fatalf("create %s: %v", *kbPath, err)
	}
	if err := kb.Save(out); err != nil {
		fatalf("save: %v", err)
	}
	if err := out.Close(); err != nil {
		fatalf("close: %v", err)
	}

	fmt.Printf("learned %d templates, %d rules from %d messages and %d configs in %s -> %s\n",
		len(kb.Templates), kb.RuleBase.Len(), len(msgs), len(configs),
		time.Since(started).Round(time.Millisecond), *kbPath)
	if *calibrate {
		fmt.Printf("calibrated temporal parameters: alpha=%g beta=%g\n",
			kb.Params.Temporal.Alpha, kb.Params.Temporal.Beta)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdlearn: "+format+"\n", args...)
	os.Exit(1)
}
