// Command sddigest runs the online half of SyslogDigest: it reads a learned
// knowledge base and a syslog stream and prints prioritized event digests,
// one line per event:
//
//	start|end|locations|label|N msgs
//
// Usage:
//
//	sddigest -kb kb.json -syslog live.log [-top 20] [-stage T+R+C] [-raw]
//	         [-metrics 127.0.0.1:9090]
//
// -raw additionally prints each event's raw message indices so the original
// lines can be retrieved (the paper's index field).
//
// -stream pushes the messages through the incremental streaming engine one
// at a time and prints events in closure order — the order a live feed
// would have surfaced them — instead of batch rank order. The event set is
// identical to the batch digest (-top selects by rank either way).
//
// -provisional (with -stream) turns on two-tier emission: each group also
// prints a tagged provisional line shortly after the given log-time horizon
// passes its birth, then revised/superseded lines as it grows or merges,
// and a final line at closure. The untagged final stream is unchanged.
//
// -metrics starts an HTTP exporter serving /metrics (pipeline counters and
// stage-latency histograms as JSON) and /healthz (503 until the knowledge
// base is loaded). With -metrics set, sddigest keeps serving after the
// digest is printed until interrupted, so the final counters can be
// scraped.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"syslogdigest"
	"syslogdigest/internal/event"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	var (
		kbPath      = flag.String("kb", "kb.json", "knowledge-base JSON from sdlearn")
		syslogPath  = flag.String("syslog", "", "syslog file or glob to digest (required)")
		top         = flag.Int("top", 0, "print only the top N events (0 = all)")
		stageFlag   = flag.String("stage", "T+R+C", "grouping stages: T, T+R, or T+R+C")
		raw         = flag.Bool("raw", false, "print raw message indices per event")
		show        = flag.Int("show", 0, "print up to N raw syslog lines per event (drill-down)")
		asJSON      = flag.Bool("json", false, "emit newline-delimited JSON instead of digest lines")
		streaming   = flag.Bool("stream", false, "drive the incremental engine; print events in closure order")
		provisional = flag.Duration("provisional", 0, "two-tier emission horizon (with -stream): print provisional/revised/superseded lines this much log time after group birth (0 disables; the final stream is identical at any setting)")
		metricsAddr = flag.String("metrics", "", "serve /metrics and /healthz on this address ('' disables)")
		workers     = flag.Int("j", 0, "worker parallelism for augment/grouping (0 = GOMAXPROCS, 1 = serial; output is identical at any setting)")
		streamWorks = flag.Int("stream-workers", 0, "streaming-engine shard workers (<= 1 = serial engine, N > 1 = router-sharded engine; output is identical at any setting)")
		shardAddrs  = flag.String("shards", "", "comma-separated sdshard addresses (with -stream): distribute the engine's shards across processes over the wire protocol (one shard per entry; output is identical at any setting; overrides -stream-workers)")
		matchCache  = flag.Int("match-cache", 0, "match-cache entries (0 = default, negative = disabled; output is identical at any setting)")
	)
	flag.Parse()
	if *syslogPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var (
		reg    *obs.Registry
		health *obs.Health
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		obs.PublishRuntime(reg)
		health = obs.NewHealth(0)
		srv, err := obs.Serve(*metricsAddr, reg, health)
		if err != nil {
			fatalf("%v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sddigest: metrics on http://%s/metrics\n", srv.Addr())
	}

	kf, err := os.Open(*kbPath)
	if err != nil {
		fatalf("open kb: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(kf)
	kf.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}
	if *matchCache != 0 {
		kb.SetMatchCache(*matchCache)
	}
	health.SetReady(true)

	msgs, err := syslogmsg.ReadGlob(*syslogPath)
	if err != nil {
		fatalf("read syslog: %v", err)
	}

	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		fatalf("digester: %v", err)
	}
	d.SetParallelism(*workers)
	d.SetStreamWorkers(*streamWorks)
	if addrs := splitAddrs(*shardAddrs); len(addrs) > 0 {
		if !*streaming {
			fatalf("-shards requires -stream (a batch digest runs in-process)")
		}
		d.SetShardAddrs(addrs)
	}
	d.Instrument(reg)
	switch strings.ToUpper(*stageFlag) {
	case "T":
		d.SetStage(syslogdigest.StageTemporal)
	case "T+R":
		d.SetStage(syslogdigest.StageTemporalRules)
	case "T+R+C":
		d.SetStage(syslogdigest.StageFull)
	default:
		fatalf("unknown -stage %q (want T, T+R, or T+R+C)", *stageFlag)
	}

	if *provisional != 0 && !*streaming {
		fatalf("-provisional requires -stream (a batch digest is final by nature)")
	}
	d.SetProvisionalHorizon(*provisional)

	if *streaming {
		streamDigest(d, msgs, *raw, reg)
		waitIfServing(*metricsAddr)
		return
	}

	res, err := d.Digest(msgs)
	if err != nil {
		fatalf("digest: %v", err)
	}
	var store *syslogmsg.Store
	if *show > 0 {
		store, err = syslogmsg.NewStore(msgs)
		if err != nil {
			fatalf("index store: %v", err)
		}
	}
	n := len(res.Events)
	if *top > 0 && *top < n {
		n = *top
	}
	if *asJSON {
		if err := event.WriteJSON(os.Stdout, res.Events[:n]); err != nil {
			fatalf("write json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "%d messages -> %d events (compression ratio %.3e)\n",
			len(msgs), len(res.Events), res.CompressionRatio())
		waitIfServing(*metricsAddr)
		return
	}
	for _, e := range res.Events[:n] {
		fmt.Println(e.Digest())
		if *raw {
			fmt.Printf("  raw indices: %v\n", e.RawIndexes)
		}
		if store != nil {
			lines := store.GetAll(e.RawIndexes)
			for i, m := range lines {
				if i == *show {
					fmt.Printf("  ... %d more\n", len(lines)-*show)
					break
				}
				fmt.Printf("  %s\n", m.Format())
			}
		}
	}
	fmt.Fprintf(os.Stderr, "%d messages -> %d events (compression ratio %.3e)\n",
		len(msgs), len(res.Events), res.CompressionRatio())
	waitIfServing(*metricsAddr)
}

// streamDigest replays the corpus through the incremental engine, printing
// each event the moment the watermark closes it.
func streamDigest(d *syslogdigest.Digester, msgs []syslogmsg.Message, raw bool, reg *obs.Registry) {
	sorted := append([]syslogmsg.Message(nil), msgs...)
	sort.SliceStable(sorted, func(i, j int) bool { return syslogmsg.SortByTime(&sorted[i], &sorted[j]) })
	st := syslogdigest.NewStreamer(d, 0)
	st.Instrument(reg)
	events, updates := 0, 0
	print := func(res *syslogdigest.DigestResult) {
		if res == nil {
			return
		}
		// Tier-tagged lines first: in a live feed a provisional record
		// always precedes the final event it anticipates.
		for i := range res.Updates {
			u := &res.Updates[i]
			if u.Status == syslogdigest.StatusFinal {
				continue // the untagged closure line below is the final record
			}
			updates++
			fmt.Println(u.Digest())
		}
		for _, e := range res.Events {
			events++
			fmt.Println(e.Digest())
			if raw {
				fmt.Printf("  raw indices: %v\n", e.RawIndexes)
			}
		}
	}
	for i := range sorted {
		res, err := st.Push(sorted[i])
		if err != nil {
			fatalf("stream: %v", err)
		}
		print(res)
	}
	res, err := st.Flush()
	if err != nil {
		fatalf("stream flush: %v", err)
	}
	print(res)
	st.Close()
	if updates > 0 {
		fmt.Fprintf(os.Stderr, "%d messages -> %d events (streamed, closure order; %d provisional-tier lines)\n",
			len(msgs), events, updates)
		return
	}
	fmt.Fprintf(os.Stderr, "%d messages -> %d events (streamed, closure order)\n", len(msgs), events)
}

// waitIfServing blocks until interrupt when the metrics exporter is up, so
// the post-run counters remain scrapeable.
func waitIfServing(addr string) {
	if addr == "" {
		return
	}
	fmt.Fprintln(os.Stderr, "sddigest: digest done; serving metrics until interrupted (Ctrl-C to exit)")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sddigest: "+format+"\n", args...)
	os.Exit(1)
}

// splitAddrs parses the -shards flag: comma-separated host:port entries,
// blanks ignored; nil when the flag is unset (in-process engine).
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
