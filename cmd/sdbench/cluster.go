package main

// The cluster stage (schema v9): the same streamed pass the stream stage
// times, but dispatched over the shard wire protocol to sdshard worker
// processes on TCP loopback — the honest overhead figure for cluster mode,
// with bytes-on-wire, batch RTT percentiles, and the CPU split between the
// dispatcher/merge side and the shard processes.
//
// The stage builds cmd/sdshard once per run and spawns one worker process
// per dataset pass (all shard sessions share it — shard placement is a
// deployment choice, and one process keeps the child CPU accounting to a
// single ProcessState). If the build or spawn fails (no module context, no
// exec), the pass falls back to an in-process loopback server: the wire
// numbers stay honest, only the CPU split degenerates (one process holds
// both sides, recorded as transport "inprocess" with cpu share 0).

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"syslogdigest/internal/cluster"
	"syslogdigest/internal/core"
	"syslogdigest/internal/experiments"
	"syslogdigest/internal/obs"
)

// clusterSweep is the cluster stage's shard sweep, matching the make
// cluster-equiv gate.
var clusterSweep = []int{1, 2, 4}

// clusterStats is one streamed pass dispatched to remote shards.
type clusterStats struct {
	Dataset  string `json:"dataset"`
	Shards   int    `json:"shards"`
	Messages int    `json:"messages"`
	// Transport is "subprocess" (sdshard worker process) or "inprocess"
	// (loopback server in the bench process; CPU split unavailable).
	Transport  string  `json:"transport"`
	NsPerOp    int64   `json:"ns_per_op"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// Wire traffic for the whole pass, summed over shard connections.
	BytesOut uint64 `json:"bytes_out"`
	BytesIn  uint64 `json:"bytes_in"`
	// Batch round-trip time (dispatch write to decision read), upper bucket
	// bounds from the stream.cluster.rtt_seconds histogram.
	RTTP50Seconds float64 `json:"rtt_p50_seconds"`
	RTTP99Seconds float64 `json:"rtt_p99_seconds"`
	// MergerCPUShare is the dispatcher process's share of total CPU time
	// (dispatcher + shard processes) for the pass: the fraction of the
	// pipeline the local dispatch/encode/merge side keeps when the
	// router-local half moves out of process. Only meaningful for the
	// subprocess transport.
	MergerCPUShare float64 `json:"merger_cpu_share"`
}

// clusterWorker is a running shard host: either an sdshard subprocess or an
// in-process fallback server.
type clusterWorker struct {
	addr string
	cmd  *exec.Cmd       // subprocess transport, nil otherwise
	srv  *cluster.Server // in-process fallback, nil otherwise
}

func (w *clusterWorker) transport() string {
	if w.cmd != nil {
		return "subprocess"
	}
	return "inprocess"
}

// stop tears the worker down and returns its CPU time (user+system), or -1
// when unmeasurable (in-process transport).
func (w *clusterWorker) stop() time.Duration {
	if w.srv != nil {
		w.srv.Close()
		return -1
	}
	_ = w.cmd.Process.Signal(syscall.SIGTERM)
	_ = w.cmd.Wait() // exit status is the signal; CPU time is what matters
	if ps := w.cmd.ProcessState; ps != nil {
		return ps.UserTime() + ps.SystemTime()
	}
	return -1
}

// buildShardBinary compiles cmd/sdshard into dir; empty string on failure
// (the caller falls back to the in-process transport).
func buildShardBinary(dir string) string {
	bin := filepath.Join(dir, "sdshard")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/sdshard")
	if out, err := cmd.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "sdbench: cluster stage: building sdshard failed (%v); using in-process shards\n%s", err, out)
		return ""
	}
	return bin
}

// startClusterWorker launches the shard host for one pass: the sdshard
// binary when available (parsing its "listening ADDR" line for the
// ephemeral port), else an in-process server.
func startClusterWorker(c *experiments.Corpus, bin, kbPath string) (*clusterWorker, error) {
	if bin != "" && kbPath != "" {
		cmd := exec.Command(bin, "-kb", kbPath, "-listen", "127.0.0.1:0", "-quiet")
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err == nil {
			err = cmd.Start()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdbench: cluster stage: spawning sdshard failed (%v); using in-process shards\n", err)
		} else {
			line, rerr := bufio.NewReader(out).ReadString('\n')
			addr, ok := strings.CutPrefix(strings.TrimSpace(line), "listening ")
			if rerr != nil || !ok {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
				return nil, fmt.Errorf("sdshard did not announce its address (read %q, %v)", line, rerr)
			}
			return &clusterWorker{addr: addr, cmd: cmd}, nil
		}
	}
	srv, err := cluster.Serve("127.0.0.1:0", cluster.ServerConfig{
		Dict:  c.KB.Dictionary(),
		Rules: c.KB.RuleBase,
	})
	if err != nil {
		return nil, err
	}
	return &clusterWorker{addr: srv.Addr(), srv: srv}, nil
}

// saveKB writes the corpus knowledge base to a temp file for sdshard to
// load; empty string on failure.
func saveKB(c *experiments.Corpus, dir string) string {
	path := filepath.Join(dir, fmt.Sprintf("kb-%s.json", c.Kind))
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	err = c.KB.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return ""
	}
	return path
}

// histPercentile reads the p-th percentile from a snapshot histogram as the
// upper bound of the bucket the percentile lands in (+Inf clamps to the
// last finite bound) — bucket resolution, the standard scrape-side
// estimate.
func histPercentile(hv *obs.HistogramValue, p float64) float64 {
	if hv == nil || hv.Count == 0 {
		return 0
	}
	rank := uint64(p * float64(hv.Count))
	var cum uint64
	last := 0.0
	for _, b := range hv.Buckets {
		cum += b.Count
		if v, err := strconv.ParseFloat(b.LE, 64); err == nil {
			last = v
		}
		if cum > rank {
			break
		}
	}
	return last
}

// clusterBench runs one streamed pass over the online half with the engine
// distributed across `shards` remote shard sessions on one worker host.
func clusterBench(c *experiments.Corpus, bin, kbPath string, shards int) (clusterStats, error) {
	w, err := startClusterWorker(c, bin, kbPath)
	if err != nil {
		return clusterStats{}, err
	}
	out := clusterStats{
		Dataset: c.Kind.String(), Shards: shards,
		Messages:  len(c.Online.Messages),
		Transport: w.transport(),
	}

	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = w.addr
	}
	d, err := core.NewDigester(c.KB)
	if err != nil {
		w.stop()
		return clusterStats{}, err
	}
	reg := obs.NewRegistry()
	st := core.NewStreamerWith(d, core.StreamerOptions{ShardAddrs: addrs})
	st.Instrument(reg)

	var ru0, ru1 syscall.Rusage
	_ = syscall.Getrusage(syscall.RUSAGE_SELF, &ru0)
	start := time.Now()
	for i := range c.Online.Messages {
		if _, err := st.Push(c.Online.Messages[i]); err != nil {
			st.Close()
			w.stop()
			return clusterStats{}, err
		}
	}
	if _, err := st.Flush(); err != nil {
		st.Close()
		w.stop()
		return clusterStats{}, err
	}
	out.NsPerOp = time.Since(start).Nanoseconds()
	_ = syscall.Getrusage(syscall.RUSAGE_SELF, &ru1)
	st.Close() // drop the shard connections before stopping the worker

	snap := reg.Snapshot()
	out.BytesOut = snap.Counter("stream.cluster.bytes_out")
	out.BytesIn = snap.Counter("stream.cluster.bytes_in")
	rtt := snap.Histogram("stream.cluster.rtt_seconds")
	out.RTTP50Seconds = histPercentile(rtt, 0.50)
	out.RTTP99Seconds = histPercentile(rtt, 0.99)
	if out.NsPerOp > 0 {
		out.MsgsPerSec = round3(float64(out.Messages) / (float64(out.NsPerOp) / 1e9))
	}

	if shardCPU := w.stop(); shardCPU >= 0 {
		self := time.Duration(ru1.Utime.Nano()-ru0.Utime.Nano()) +
			time.Duration(ru1.Stime.Nano()-ru0.Stime.Nano())
		if total := self + shardCPU; total > 0 {
			out.MergerCPUShare = round3(float64(self) / float64(total))
		}
	}
	return out, nil
}

// clusterStage runs the full shard sweep for one corpus, reusing one
// compiled binary and saved knowledge base across passes.
func clusterStage(c *experiments.Corpus, bin, kbPath string) ([]clusterStats, error) {
	var out []clusterStats
	for _, shards := range clusterSweep {
		cs, err := clusterBench(c, bin, kbPath, shards)
		if err != nil {
			return nil, fmt.Errorf("cluster (shards=%d): %w", shards, err)
		}
		out = append(out, cs)
		fmt.Fprintf(os.Stderr, "sdbench: %s/cluster shards=%d %s (%s, %.1f MB out, rtt p50 %.1fms, merger cpu %.0f%%)\n",
			c.Kind, shards, time.Duration(cs.NsPerOp), cs.Transport,
			float64(cs.BytesOut)/1e6, cs.RTTP50Seconds*1e3, cs.MergerCPUShare*100)
	}
	return out, nil
}
