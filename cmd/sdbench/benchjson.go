package main

// Machine-readable benchmark snapshots (-json). The snapshot times each
// pipeline stage serially (workers=1) and at the requested fan-out over the
// same cached corpus, so the speedup column isolates the worker pool from
// data-generation noise. No timestamps or host identifiers are recorded:
// snapshots from the same machine diff cleanly.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"syslogdigest/internal/core"
	"syslogdigest/internal/event"
	"syslogdigest/internal/experiments"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/par"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/template"
	"syslogdigest/internal/temporal"
)

// benchReps runs per timing; the minimum is reported, the usual way to
// suppress scheduler noise in wall-clock benchmarks.
const benchReps = 3

type benchSnapshot struct {
	Schema     string            `json:"schema"`
	Profile    string            `json:"profile"`
	Workers    int               `json:"workers"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks []benchEntry      `json:"benchmarks"`
	Speedups   []speedupSummary  `json:"speedups"`
	MatchCache []matchCacheStats `json:"match_cache,omitempty"`
	// StreamLatency characterizes the streaming engine's event-emission
	// latency (message time to emitting watermark) per dataset, one entry
	// per stream worker count in the sweep (schema v3; per-worker since v4).
	StreamLatency []streamLatency `json:"stream_latency,omitempty"`
	// Checkpoint records snapshot/restore wall time and snapshot size at a
	// mid-stream cut, per dataset and stream worker count (schema v5).
	Checkpoint []checkpointStats `json:"checkpoint,omitempty"`
	// Storm records streamed passes over the flap-plus-noise storm corpus
	// with the template-indexed windows and with the linear reference
	// scans, including the candidate-scan counters — the index's honest
	// before/after on its worst-case input (schema v6). The indexed and
	// linear timings also appear in Benchmarks as storm_stream and
	// storm_stream_linear so future snapshots diff them.
	Storm []stormStats `json:"storm,omitempty"`
	// Provisional characterizes the two-tier emission's first-signal
	// latency per dataset and stream worker count (schema v8): for every
	// identity, the caller-visible watermark at its provisional (rev 0)
	// record minus the group's last message time at publication — the
	// operator's time-to-first-signal, sitting next to StreamLatency's
	// time-to-final for the same corpus. At workers=1 the serial engine
	// hands updates back synchronously, so this is the exact publication
	// latency (≈ the horizon); above it the measurement additionally
	// includes the dispatcher's batching delay before the caller sees the
	// record, the same caller-side semantics StreamLatency has always had.
	// The identity counts and churn columns are byte-deterministic and
	// identical at every worker count. Revision churn summarizes how many
	// publications each identity took to resolve.
	Provisional []provisionalStats `json:"provisional,omitempty"`
	// Cluster records streamed passes dispatched over the shard wire
	// protocol to sdshard processes on TCP loopback at 1/2/4 shards
	// (schema v9): wall time against the in-process stream stage, bytes on
	// the wire, batch RTT percentiles, and the dispatcher/merge side's
	// share of total CPU — the overhead and headroom of moving the
	// router-local half out of process (see cmd/sdbench/cluster.go).
	Cluster []clusterStats `json:"cluster,omitempty"`
}

// provisionalSweep is the two-tier sweep: the serial engine and the
// sharded engine's common fan-out (the update stream is byte-identical at
// any worker count; the sweep demonstrates the latency holds on both
// engine shapes).
var provisionalSweep = []int{1, 4}

// provisionalHorizon is the horizon the snapshot measures at — far below
// the closure horizon (hours), so first-signal latency should land near it.
const provisionalHorizon = 30 * time.Second

// provisionalStats is one streamed pass with two-tier emission on.
type provisionalStats struct {
	Dataset        string  `json:"dataset"`
	Workers        int     `json:"workers"`
	HorizonSeconds float64 `json:"horizon_seconds"`
	Finalized      int     `json:"finalized"`
	Superseded     int     `json:"superseded"`
	// First-signal latency over provisional (rev 0) records.
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// Publications per finalized identity (its final revision number):
	// 1 means one provisional then the final, nothing in between.
	MeanRevisions float64 `json:"mean_revisions"`
	MaxRevisions  int     `json:"max_revisions"`
}

// stormSweep is the storm pass's stream-worker sweep: the serial engine
// and the sharded engine's common fan-out.
var stormSweep = []int{1, 4}

// stormReps: the storm passes run tens of seconds each (the linear
// reference deliberately so), which makes scheduler noise proportionally
// irrelevant — one rep keeps make bench-compare affordable.
const stormReps = 1

// stormStats is one engine configuration's streamed pass over the storm
// corpus: minimum wall time over benchReps plus the (deterministic)
// candidate-scan counters.
type stormStats struct {
	Dataset         string  `json:"dataset"`
	Workers         int     `json:"workers"`
	Engine          string  `json:"engine"` // "indexed" or "linear"
	Messages        int     `json:"messages"`
	NsPerOp         int64   `json:"ns_per_op"`
	MsgsPerSec      float64 `json:"msgs_per_sec"`
	AllocsPerOp     uint64  `json:"allocs_per_op"` // schema v7, like benchEntry
	BytesPerOp      uint64  `json:"bytes_per_op"`
	RuleCandidates  uint64  `json:"rule_candidates_scanned"`
	RulePairs       uint64  `json:"rule_pairs_matched"`
	CrossCandidates uint64  `json:"cross_candidates_scanned"`
}

// checkpointSweep is the worker sweep for the checkpoint timings: the
// serial engine and the sharded engine's common fan-out.
var checkpointSweep = []int{1, 4}

// checkpointStats times Streamer.Snapshot and RestoreStreamer halfway
// through a streamed pass over the dataset's online half — the steady-state
// cost of making the pipeline durable (minimum of benchReps, like every
// other timing here).
type checkpointStats struct {
	Dataset    string `json:"dataset"`
	Workers    int    `json:"workers"`
	Bytes      int    `json:"bytes"`
	SnapshotNs int64  `json:"snapshot_ns"`
	RestoreNs  int64  `json:"restore_ns"`
}

// streamWorkerSweep is the stream-stage shard-worker sweep (schema v4):
// workers = 1 is the serial engine, above it the router-sharded engine.
var streamWorkerSweep = []int{1, 2, 4, 8}

// streamLatency is the emission-latency profile of one streamed pass over
// the dataset's online half: for every event, the engine watermark at
// emission minus the event's last message time (events still open at the
// final flush are measured against the final watermark).
type streamLatency struct {
	Dataset    string  `json:"dataset"`
	Workers    int     `json:"workers"`
	Events     int     `json:"events"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// matchCacheStats records the match-cache effectiveness of one cold
// single-worker augment pass over the dataset's online half (schema v2).
type matchCacheStats struct {
	Dataset           string  `json:"dataset"`
	Messages          int     `json:"messages"`
	Hits              uint64  `json:"hits"`
	Misses            uint64  `json:"misses"`
	Evictions         uint64  `json:"evictions"`
	HitRate           float64 `json:"hit_rate"`
	CandidatesScanned uint64  `json:"candidates_scanned"`
}

type benchEntry struct {
	Name       string  `json:"name"`
	Dataset    string  `json:"dataset"`
	Workers    int     `json:"workers"`
	NsPerOp    int64   `json:"ns_per_op"`
	MsgsPerOp  int     `json:"msgs_per_op"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// Heap traffic per op (schema v7): process-wide mallocs and bytes for
	// one stage run, minimum over benchReps — the figure the alloc gate in
	// -compare holds steady. Zero in pre-v7 snapshots.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

type speedupSummary struct {
	Name    string  `json:"name"`
	Dataset string  `json:"dataset"`
	Speedup float64 `json:"speedup"`
}

// benchStage is one timed pipeline stage: run executes it once with the
// given worker count over msgs input messages. A nil sweep times workers
// 1 and the resolved -j fan-out; an explicit sweep times every listed
// worker count (the stream stage sweeps shard workers this way).
type benchStage struct {
	name  string
	msgs  int
	sweep []int
	run   func(workers int) error
}

// writeBenchJSON runs the stage benchmark suite for each dataset and writes
// the snapshot to path.
func writeBenchJSON(path string, profile experiments.Profile, kinds []gen.DatasetKind, workers int) error {
	resolved := par.Workers(workers)
	snap := benchSnapshot{
		Schema:     "syslogdigest-bench/9",
		Profile:    profile.Name,
		Workers:    resolved,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	// Scratch space for the cluster stage: the sdshard binary (built once,
	// shared across datasets) and each dataset's saved knowledge base.
	clusterDir, err := os.MkdirTemp("", "sdbench-cluster")
	if err != nil {
		return err
	}
	defer os.RemoveAll(clusterDir)
	shardBin := buildShardBinary(clusterDir)
	for _, kind := range kinds {
		c, err := experiments.Load(kind, profile)
		if err != nil {
			return fmt.Errorf("load dataset %v: %w", kind, err)
		}
		stages, err := datasetStages(c)
		if err != nil {
			return err
		}
		for _, st := range stages {
			sweep := st.sweep
			if sweep == nil {
				sweep = []int{1}
				if resolved != 1 {
					// Skip the redundant second timing when -j resolves to 1,
					// so (dataset, name, workers) keys stay unique.
					sweep = append(sweep, resolved)
				}
			}
			serial, best := int64(0), int64(0)
			for _, w := range sweep {
				ns, allocs, bytes, err := timeStage(st, w)
				if err != nil {
					return fmt.Errorf("%s (workers=%d): %w", st.name, w, err)
				}
				snap.Benchmarks = append(snap.Benchmarks, entry(st, kind, w, ns, allocs, bytes))
				if w == 1 {
					serial = ns
				}
				if best == 0 || ns < best {
					best = ns
				}
				fmt.Fprintf(os.Stderr, "sdbench: %s/%s workers=%d %s\n",
					kind, st.name, w, time.Duration(ns))
			}
			snap.Speedups = append(snap.Speedups, speedupSummary{
				Name: st.name, Dataset: kind.String(),
				Speedup: round3(float64(serial) / float64(best)),
			})
		}
		// After the timed stages (so counter traffic never skews timings),
		// run one instrumented pass to record cache effectiveness, and one
		// streamed pass per stream worker count to record emission latency.
		snap.MatchCache = append(snap.MatchCache, cacheStats(c))
		for _, w := range streamWorkerSweep {
			lat, err := streamLatencyStats(c, w)
			if err != nil {
				return fmt.Errorf("stream latency %v (workers=%d): %w", kind, w, err)
			}
			snap.StreamLatency = append(snap.StreamLatency, lat)
		}
		for _, w := range provisionalSweep {
			ps, err := provisionalBench(c, w)
			if err != nil {
				return fmt.Errorf("provisional %v (workers=%d): %w", kind, w, err)
			}
			snap.Provisional = append(snap.Provisional, ps)
			fmt.Fprintf(os.Stderr, "sdbench: %s/provisional workers=%d first-signal p50 %.0fs p99 %.0fs (horizon %.0fs), mean %.1f revs\n",
				kind, w, ps.P50Seconds, ps.P99Seconds, ps.HorizonSeconds, ps.MeanRevisions)
		}
		for _, w := range checkpointSweep {
			cs, err := checkpointBench(c, w)
			if err != nil {
				return fmt.Errorf("checkpoint %v (workers=%d): %w", kind, w, err)
			}
			snap.Checkpoint = append(snap.Checkpoint, cs)
			fmt.Fprintf(os.Stderr, "sdbench: %s/checkpoint workers=%d snapshot %s restore %s (%d bytes)\n",
				kind, w, time.Duration(cs.SnapshotNs), time.Duration(cs.RestoreNs), cs.Bytes)
		}
		storm, err := c.Storm()
		if err != nil {
			return fmt.Errorf("storm corpus %v: %w", kind, err)
		}
		saved := c.KB.Params
		c.KB.Params = experiments.StormParams(saved)
		for _, w := range stormSweep {
			for _, engine := range []string{"indexed", "linear"} {
				ss, err := stormBench(c, storm, w, engine == "linear")
				if err != nil {
					c.KB.Params = saved
					return fmt.Errorf("storm %v (workers=%d, %s): %w", kind, w, engine, err)
				}
				snap.Storm = append(snap.Storm, ss)
				name := "storm_stream"
				if engine == "linear" {
					name += "_linear"
				}
				snap.Benchmarks = append(snap.Benchmarks, benchEntry{
					Name: name, Dataset: kind.String(), Workers: w,
					NsPerOp: ss.NsPerOp, MsgsPerOp: ss.Messages, MsgsPerSec: ss.MsgsPerSec,
					AllocsPerOp: ss.AllocsPerOp, BytesPerOp: ss.BytesPerOp,
				})
				fmt.Fprintf(os.Stderr, "sdbench: %s/%s workers=%d %s (rule cands %d, pairs %d)\n",
					kind, name, w, time.Duration(ss.NsPerOp), ss.RuleCandidates, ss.RulePairs)
			}
		}
		c.KB.Params = saved
		cls, err := clusterStage(c, shardBin, saveKB(c, clusterDir))
		if err != nil {
			return fmt.Errorf("cluster %v: %w", kind, err)
		}
		snap.Cluster = append(snap.Cluster, cls...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// datasetStages builds the timed stage list for one corpus. Each closure
// re-runs its stage from the cached inputs; outputs are discarded.
func datasetStages(c *experiments.Corpus) ([]benchStage, error) {
	params := experiments.ParamsFor(c.Kind)
	events := core.RuleEvents(c.LearnPlus)
	streams := core.TemporalStreams(c.LearnPlus)
	// The same grid Learner.Learn sweeps under CalibrateTemporal.
	alphas := []float64{0.01, 0.025, 0.05, 0.075, 0.1, 0.2, 0.3, 0.45, 0.6}
	betas := []float64{2, 3, 4, 5, 6, 7}

	return []benchStage{
		{
			name: "template_learn", msgs: len(c.Learn.Messages),
			run: func(workers int) error {
				topt := params.Template
				topt.Pool = par.New(workers)
				template.Learn(c.Learn.Messages, topt)
				return nil
			},
		},
		{
			name: "temporal_calibrate", msgs: len(c.LearnPlus),
			run: func(workers int) error {
				_, err := temporal.CalibrateWith(par.New(workers), streams, alphas, betas, params.Temporal)
				return err
			},
		},
		{
			name: "rule_mine", msgs: len(events),
			run: func(workers int) error {
				rcfg := params.Rules
				rcfg.Pool = par.New(workers)
				_, err := rules.Mine(events, rcfg)
				return err
			},
		},
		{
			// The uncached match path: every message is tokenized, matched
			// and location-parsed. Comparable with pre-cache baselines.
			name: "augment", msgs: len(c.Online.Messages),
			run: func(workers int) error {
				c.KB.SetMatchCache(-1)
				defer c.KB.SetMatchCache(0)
				c.KB.AugmentAllParallel(c.Online.Messages, workers)
				return nil
			},
		},
		{
			// Default match-cache configuration, flushed per rep so every
			// rep pays the same cold-start fills.
			name: "augment_cached", msgs: len(c.Online.Messages),
			run: func(workers int) error {
				c.KB.SetMatchCache(0)
				c.KB.AugmentAllParallel(c.Online.Messages, workers)
				return nil
			},
		},
		{
			name: "full_digest", msgs: len(c.Online.Messages),
			run: func(workers int) error {
				d, err := core.NewDigester(c.KB)
				if err != nil {
					return err
				}
				d.SetParallelism(workers)
				_, err = d.Digest(c.Online.Messages)
				return err
			},
		},
		{
			// The live path: one message at a time through the reorder
			// buffer and incremental engine, events at watermark closure.
			// Sweeps the streaming engine's shard workers (workers=1 is the
			// serial engine), not the augment pool.
			name: "stream", msgs: len(c.Online.Messages), sweep: streamWorkerSweep,
			run: func(workers int) error {
				d, err := core.NewDigester(c.KB)
				if err != nil {
					return err
				}
				st := core.NewStreamerWith(d, core.StreamerOptions{StreamWorkers: workers})
				defer st.Close()
				for i := range c.Online.Messages {
					if _, err := st.Push(c.Online.Messages[i]); err != nil {
						return err
					}
				}
				_, err = st.Flush()
				return err
			},
		},
	}, nil
}

// streamLatencyStats runs one streamed pass at the given stream worker
// count, recording, per emitted event, the watermark at emission minus the
// event's end time.
func streamLatencyStats(c *experiments.Corpus, workers int) (streamLatency, error) {
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return streamLatency{}, err
	}
	st := core.NewStreamerWith(d, core.StreamerOptions{StreamWorkers: workers})
	defer st.Close()
	var lats []float64
	record := func(res *core.DigestResult) {
		if res == nil {
			return
		}
		wm := st.Watermark()
		for i := range res.Events {
			lats = append(lats, wm.Sub(res.Events[i].End).Seconds())
		}
	}
	for i := range c.Online.Messages {
		res, err := st.Push(c.Online.Messages[i])
		if err != nil {
			return streamLatency{}, err
		}
		record(res)
	}
	res, err := st.Flush()
	if err != nil {
		return streamLatency{}, err
	}
	record(res)
	out := streamLatency{Dataset: c.Kind.String(), Workers: workers, Events: len(lats)}
	if len(lats) > 0 {
		sort.Float64s(lats)
		out.P50Seconds = round3(lats[len(lats)/2])
		out.P99Seconds = round3(lats[(len(lats)*99)/100])
	}
	return out, nil
}

// provisionalBench runs one streamed pass with the provisional tier on,
// recording first-signal latency (watermark at each rev 0 publication minus
// the group's last message time) and per-identity revision churn.
func provisionalBench(c *experiments.Corpus, workers int) (provisionalStats, error) {
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return provisionalStats{}, err
	}
	st := core.NewStreamerWith(d, core.StreamerOptions{
		StreamWorkers:      workers,
		ProvisionalHorizon: provisionalHorizon,
	})
	defer st.Close()
	out := provisionalStats{
		Dataset: c.Kind.String(), Workers: workers,
		HorizonSeconds: provisionalHorizon.Seconds(),
	}
	var lats []float64
	revs := 0
	record := func(res *core.DigestResult) {
		if res == nil {
			return
		}
		wm := st.Watermark()
		for i := range res.Updates {
			u := &res.Updates[i]
			switch u.Status {
			case event.StatusProvisional:
				lats = append(lats, wm.Sub(u.Event.End).Seconds())
			case event.StatusSuperseded:
				out.Superseded++
			case event.StatusFinal:
				out.Finalized++
				revs += u.Revision
				if u.Revision > out.MaxRevisions {
					out.MaxRevisions = u.Revision
				}
			}
		}
	}
	for i := range c.Online.Messages {
		res, err := st.Push(c.Online.Messages[i])
		if err != nil {
			return provisionalStats{}, err
		}
		record(res)
	}
	res, err := st.Flush()
	if err != nil {
		return provisionalStats{}, err
	}
	record(res)
	if len(lats) > 0 {
		sort.Float64s(lats)
		out.P50Seconds = round3(lats[len(lats)/2])
		out.P99Seconds = round3(lats[(len(lats)*99)/100])
	}
	if out.Finalized > 0 {
		out.MeanRevisions = round3(float64(revs) / float64(out.Finalized))
	}
	return out, nil
}

// checkpointBench streams the online half to its midpoint, then times
// Streamer.Snapshot and RestoreStreamer at that cut (minimum of benchReps;
// the first snapshot also pays the sharded engine's sync, which min-of-reps
// deliberately excludes — it is dispatch backlog, not serialization cost).
func checkpointBench(c *experiments.Corpus, workers int) (checkpointStats, error) {
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return checkpointStats{}, err
	}
	opts := core.StreamerOptions{StreamWorkers: workers}
	st := core.NewStreamerWith(d, opts)
	defer st.Close()
	for i := range c.Online.Messages[:len(c.Online.Messages)/2] {
		if _, err := st.Push(c.Online.Messages[i]); err != nil {
			return checkpointStats{}, err
		}
	}
	out := checkpointStats{Dataset: c.Kind.String(), Workers: workers}
	var snap []byte
	for r := 0; r < benchReps; r++ {
		start := time.Now()
		snap, err = st.Snapshot()
		if err != nil {
			return checkpointStats{}, err
		}
		if ns := time.Since(start).Nanoseconds(); out.SnapshotNs == 0 || ns < out.SnapshotNs {
			out.SnapshotNs = ns
		}
	}
	out.Bytes = len(snap)
	for r := 0; r < benchReps; r++ {
		d2, err := core.NewDigester(c.KB)
		if err != nil {
			return checkpointStats{}, err
		}
		start := time.Now()
		r2, err := core.RestoreStreamer(d2, snap, opts)
		if err != nil {
			return checkpointStats{}, err
		}
		if ns := time.Since(start).Nanoseconds(); out.RestoreNs == 0 || ns < out.RestoreNs {
			out.RestoreNs = ns
		}
		r2.Close()
	}
	return out, nil
}

// stormBench streams the storm corpus through one engine configuration:
// minimum wall time over stormReps, with the scan counters read from the
// last rep (they are deterministic, so every rep agrees).
func stormBench(c *experiments.Corpus, storm *gen.Dataset, workers int, linear bool) (stormStats, error) {
	out := stormStats{
		Dataset: c.Kind.String(), Workers: workers,
		Engine: "indexed", Messages: len(storm.Messages),
	}
	if linear {
		out.Engine = "linear"
	}
	var ms0, ms1 runtime.MemStats
	for r := 0; r < stormReps; r++ {
		d, err := core.NewDigester(c.KB)
		if err != nil {
			return stormStats{}, err
		}
		d.SetLinearScan(linear)
		reg := obs.NewRegistry()
		st := core.NewStreamerWith(d, core.StreamerOptions{StreamWorkers: workers})
		st.Instrument(reg)
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := range storm.Messages {
			if _, err := st.Push(storm.Messages[i]); err != nil {
				st.Close()
				return stormStats{}, err
			}
		}
		if _, err := st.Flush(); err != nil {
			st.Close()
			return stormStats{}, err
		}
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		st.Close()
		if a := ms1.Mallocs - ms0.Mallocs; r == 0 || a < out.AllocsPerOp {
			out.AllocsPerOp, out.BytesPerOp = a, ms1.TotalAlloc-ms0.TotalAlloc
		}
		if out.NsPerOp == 0 || ns < out.NsPerOp {
			out.NsPerOp = ns
		}
		snap := reg.Snapshot()
		out.RuleCandidates = snap.Counter("group.rule.candidates_scanned")
		out.RulePairs = snap.Counter("group.rule.pairs_matched")
		out.CrossCandidates = snap.Counter("group.cross.candidates_scanned")
	}
	if out.NsPerOp > 0 {
		out.MsgsPerSec = round3(float64(out.Messages) / (float64(out.NsPerOp) / 1e9))
	}
	return out, nil
}

// timeStage returns the minimum wall-clock nanoseconds over benchReps runs,
// plus the heap traffic (process-wide mallocs and allocated bytes, from
// runtime.MemStats deltas) of the cheapest-allocating rep — the minimum
// discards first-rep lazy initialization, the same way min ns discards
// scheduler noise.
func timeStage(st benchStage, workers int) (int64, uint64, uint64, error) {
	best := int64(0)
	var allocs, bytes uint64
	var ms0, ms1 runtime.MemStats
	for r := 0; r < benchReps; r++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := st.run(workers); err != nil {
			return 0, 0, 0, err
		}
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		if best == 0 || ns < best {
			best = ns
		}
		if a := ms1.Mallocs - ms0.Mallocs; r == 0 || a < allocs {
			allocs, bytes = a, ms1.TotalAlloc-ms0.TotalAlloc
		}
	}
	return best, allocs, bytes, nil
}

func entry(st benchStage, kind gen.DatasetKind, workers int, ns int64, allocs, bytes uint64) benchEntry {
	perSec := 0.0
	if ns > 0 {
		perSec = float64(st.msgs) / (float64(ns) / 1e9)
	}
	return benchEntry{
		Name: st.name, Dataset: kind.String(), Workers: workers,
		NsPerOp: ns, MsgsPerOp: st.msgs, MsgsPerSec: round3(perSec),
		AllocsPerOp: allocs, BytesPerOp: bytes,
	}
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

// cacheStats runs one cold single-worker augment pass with the knowledge
// base instrumented and returns the match-cache counter values. The cache is
// flushed first so the numbers describe a deterministic cold start over the
// online half, independent of whatever the timed stages left behind.
func cacheStats(c *experiments.Corpus) matchCacheStats {
	reg := obs.NewRegistry()
	c.KB.Instrument(reg)
	c.KB.SetMatchCache(0)
	c.KB.AugmentAllParallel(c.Online.Messages, 1)
	snap := reg.Snapshot()
	st := matchCacheStats{
		Dataset:           c.Kind.String(),
		Messages:          len(c.Online.Messages),
		Hits:              snap.Counter("digest.match.cache.hits"),
		Misses:            snap.Counter("digest.match.cache.misses"),
		Evictions:         snap.Counter("digest.match.cache.evictions"),
		CandidatesScanned: snap.Counter("digest.match.candidates_scanned"),
	}
	if n := st.Hits + st.Misses; n > 0 {
		st.HitRate = round3(float64(st.Hits) / float64(n))
	}
	return st
}
