// Command sdbench regenerates every table and figure of the paper's
// evaluation against the simulated datasets and prints them in the paper's
// layout. This is the human-facing face of the benchmark harness; the
// bench_test.go benchmarks run the same experiments under testing.B.
//
// Usage:
//
//	sdbench                  # small profile, both datasets
//	sdbench -profile full    # paper-scale profile (minutes)
//	sdbench -dataset A       # one dataset only
//	sdbench -out results.txt # also write the report to a file
//	sdbench -json bench.json # machine-readable stage-benchmark snapshot
//	sdbench -j 4             # worker parallelism (0 = GOMAXPROCS)
//
//	sdbench -compare old.json -tolerance 10 new.json
//	                         # diff two snapshots; non-zero exit on regression
//	                         # (-alloc-tolerance separately gates allocs/op)
//
// -json skips the report and instead times each pipeline stage serially and
// at the -j fan-out, writing a stable JSON snapshot (see benchjson.go).
// -compare diffs two such snapshots stage by stage (see compare.go).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"syslogdigest/internal/core"
	"syslogdigest/internal/experiments"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
)

func main() {
	var (
		profileFlag = flag.String("profile", "small", "experiment profile: small or full")
		datasetFlag = flag.String("dataset", "both", "dataset: A, B, or both")
		outPath     = flag.String("out", "", "also write the report to this file")
		jsonPath    = flag.String("json", "", "write a machine-readable stage-benchmark snapshot to this file instead of the report")
		workers     = flag.Int("j", 0, "worker parallelism for learning and digesting (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
		comparePath = flag.String("compare", "", "baseline -json snapshot; compare the snapshot given as the positional argument against it and exit non-zero on regression beyond -tolerance")
		tolerance   = flag.Float64("tolerance", 10, "with -compare, maximum allowed ns/op regression in percent")
		allocTol    = flag.Float64("alloc-tolerance", 15, "with -compare, maximum allowed allocs/op regression in percent (alloc counts are near-deterministic, so this can sit far below -tolerance)")
	)
	flag.Parse()

	if *comparePath != "" {
		if flag.NArg() != 1 {
			fatalf("-compare needs exactly one positional argument: the new snapshot (got %d)", flag.NArg())
		}
		if err := compareSnapshots(*comparePath, flag.Arg(0), *tolerance, *allocTol); err != nil {
			fatalf("compare: %v", err)
		}
		return
	}

	var profile experiments.Profile
	switch strings.ToLower(*profileFlag) {
	case "small":
		profile = experiments.SmallProfile()
	case "full":
		profile = experiments.FullProfile()
	default:
		fatalf("unknown -profile %q", *profileFlag)
	}

	var kinds []gen.DatasetKind
	switch strings.ToUpper(*datasetFlag) {
	case "A":
		kinds = []gen.DatasetKind{gen.DatasetA}
	case "B":
		kinds = []gen.DatasetKind{gen.DatasetB}
	case "BOTH":
		kinds = []gen.DatasetKind{gen.DatasetA, gen.DatasetB}
	default:
		fatalf("unknown -dataset %q", *datasetFlag)
	}
	profile.Parallelism = *workers

	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, profile, kinds, *workers); err != nil {
			fatalf("bench snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "sdbench: wrote %s\n", *jsonPath)
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("create %s: %v", *outPath, err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "SyslogDigest evaluation — profile %q (%d routers, learn %s, online %s)\n\n",
		profile.Name, profile.Routers, profile.LearnDuration, profile.OnlineDuration)

	var table6 []experiments.Table6Row
	for _, kind := range kinds {
		started := time.Now()
		c, err := experiments.Load(kind, profile)
		if err != nil {
			fatalf("load dataset %v: %v", kind, err)
		}
		fmt.Fprintf(out, "===== dataset %s: %d learning msgs, %d online msgs (prepared in %s) =====\n\n",
			kind, len(c.Learn.Messages), len(c.Online.Messages), time.Since(started).Round(time.Millisecond))

		section(out, "Template identification (§5.2.1)", func() string {
			return experiments.TemplateAccuracy(c).String() + "\n"
		})
		section(out, "", func() string {
			rows, err := experiments.Table5(c)
			check(err)
			return experiments.RenderTable5(kind.String(), rows)
		})
		if kind == gen.DatasetA {
			section(out, "", func() string {
				rows, err := experiments.Figure6(c)
				check(err)
				return experiments.RenderFigure6(rows)
			})
		}
		section(out, "", func() string {
			rows, err := experiments.Figure7(c)
			check(err)
			return experiments.RenderFigure7(kind.String(), rows)
		})
		section(out, "", func() string {
			rows, err := experiments.RuleEvolution(c)
			check(err)
			return experiments.RenderRuleEvolution(kind.String(), rows)
		})
		section(out, "", func() string {
			pts, err := experiments.Figure10(c)
			check(err)
			return experiments.RenderSweep(
				fmt.Sprintf("Figure 10 — compression ratio vs alpha (beta=2, dataset %s)", kind), "alpha", pts)
		})
		section(out, "", func() string {
			pts, err := experiments.Figure11(c)
			check(err)
			return experiments.RenderSweep(
				fmt.Sprintf("Figure 11 — compression ratio vs beta (dataset %s)", kind), "beta", pts)
		})
		section(out, "", func() string {
			row, err := experiments.Table6(c)
			check(err)
			table6 = append(table6, row)
			return fmt.Sprintf("Calibrated parameters (dataset %s): alpha=%g beta=%g\n", kind, row.Alpha, row.Beta)
		})
		section(out, "", func() string {
			rows, err := experiments.Table7(c)
			check(err)
			return experiments.RenderTable7(kind.String(), rows)
		})
		section(out, "", func() string {
			rows, err := experiments.Figure12(c)
			check(err)
			return experiments.RenderFigure12(kind.String(), rows)
		})
		section(out, "", func() string {
			rows, err := experiments.Figure13(c)
			check(err)
			return experiments.RenderFigure13(kind.String(), rows, 12)
		})
		section(out, "", func() string {
			exs, err := experiments.Figures4And5(c)
			check(err)
			return experiments.RenderExemplars(kind.String(), exs)
		})
		section(out, "", func() string {
			rows, err := experiments.HealthMap(c, 10*time.Minute)
			check(err)
			return experiments.RenderHealthMap(kind.String(), rows)
		})
		section(out, "Trouble-ticket validation (§5.3)", func() string {
			tv, err := experiments.TicketValidation(c)
			check(err)
			s := tv.Summary
			var b strings.Builder
			fmt.Fprintf(&b, "top %d tickets: %d matched, %d within top 5%% of events, worst rank pct %.1f%%\n",
				s.Tickets, s.Matched, s.WithinTopPct, s.WorstRankPct*100)
			for _, m := range tv.Matches {
				fmt.Fprintf(&b, "  %s %-18s updates=%-3d rank=%-4d pct=%.3f\n",
					m.Ticket.ID, m.Ticket.Kind, m.Ticket.Updates, m.EventRank, m.RankPct)
			}
			return b.String()
		})
		section(out, "Online pipeline metrics (internal/obs)", func() string {
			s, err := pipelineMetrics(c)
			check(err)
			return s
		})
		section(out, "Ablations", func() string {
			var b strings.Builder
			am := experiments.AblationMasking(c)
			fmt.Fprintf(&b, "location masking: accuracy %.1f%% with vs %.1f%% without\n",
				am.WithMasking*100, am.WithoutMasking*100)
			at, err := experiments.AblationTemporal(c)
			check(err)
			fmt.Fprintf(&b, "temporal model: EWMA ratio %.3e vs fixed windows", at.EWMARatio)
			for _, f := range at.Fixed {
				fmt.Fprintf(&b, " %v=%.3e", f.Window, f.Ratio)
			}
			b.WriteByte('\n')
			ad, err := experiments.AblationDeletion(c)
			check(err)
			n := len(ad.ConservativeTotals)
			fmt.Fprintf(&b, "rule deletion after %d weeks: conservative=%d aggressive=%d\n",
				n, ad.ConservativeTotals[n-1], ad.AggressiveTotals[n-1])
			sb, err := experiments.SeverityBaseline(c)
			check(err)
			fmt.Fprintf(&b, "severity baseline retention: sev<=1 %.3e, sev<=3 %.3e, sev<=5 %.3e (digest %.3e)\n",
				sb.Retention[1], sb.Retention[3], sb.Retention[5], sb.DigestRatio)
			if ta, err := experiments.TrendAudit(c); err == nil {
				fmt.Fprintf(&b, "trend auditing: %d level shifts on raw per-router counts vs %d on event counts\n",
					ta.RawShifts, ta.EventShifts)
			}
			return b.String()
		})
	}
	if len(table6) > 0 {
		fmt.Fprintln(out, experiments.RenderTable6(table6))
	}
}

// pipelineMetrics streams the dataset's online half through a fully
// instrumented Streamer + Digester and renders the final metric snapshot —
// the same counters a production deployment exports via -metrics.
func pipelineMetrics(c *experiments.Corpus) (string, error) {
	reg := obs.NewRegistry()
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return "", err
	}
	d.Instrument(reg)
	st := core.NewStreamer(d, 0)
	st.Instrument(reg)
	for _, m := range c.Online.Messages {
		if _, err := st.Push(m); err != nil {
			return "", err
		}
	}
	if _, err := st.Flush(); err != nil {
		return "", err
	}
	snap := reg.Snapshot()
	var b strings.Builder
	for _, cv := range snap.Counters {
		fmt.Fprintf(&b, "%-28s %d\n", cv.Name, cv.Value)
	}
	for _, gv := range snap.Gauges {
		fmt.Fprintf(&b, "%-28s %.4g\n", gv.Name, gv.Value)
	}
	for _, hv := range snap.Histograms {
		mean := 0.0
		if hv.Count > 0 {
			mean = hv.Sum / float64(hv.Count)
		}
		fmt.Fprintf(&b, "%-28s count=%d mean=%.4g sum=%.4g\n", hv.Name, hv.Count, mean, hv.Sum)
	}
	return b.String(), nil
}

func section(out io.Writer, title string, f func() string) {
	if title != "" {
		fmt.Fprintf(out, "-- %s --\n", title)
	}
	fmt.Fprintln(out, f())
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdbench: "+format+"\n", args...)
	os.Exit(1)
}
