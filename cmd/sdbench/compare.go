package main

// Benchmark snapshot comparison (-compare). Reads two -json snapshots and
// prints per-stage deltas, so a perf change can be judged against a committed
// baseline (e.g. BENCH_PR3.json) in CI or by hand:
//
//	sdbench -json new.json
//	sdbench -compare BENCH_PR3.json -tolerance 25 new.json
//
// Stages are matched on (dataset, name, workers); stages present in only one
// snapshot are listed but never fail the comparison, so baselines survive
// stage additions and renames. The exit status is non-zero when any matched
// stage's ns_per_op regressed by more than -tolerance percent, or — schema
// v7 onward — when its allocs_per_op regressed by more than
// -alloc-tolerance percent. Allocation counts are near-deterministic
// (minimum over reps, process-wide mallocs), so the alloc gate can be much
// tighter than the wall-clock one; entries without alloc data (pre-v7
// baselines, or either side zero) are timing-compared only.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

type benchKey struct {
	Dataset string
	Name    string
	Workers int
}

// compareSnapshots prints the delta report to stdout and returns an error
// when a matched stage's timing regressed beyond tolerancePct or its
// allocation count regressed beyond allocTolerancePct.
func compareSnapshots(oldPath, newPath string, tolerancePct, allocTolerancePct float64) error {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	if oldSnap.Schema != newSnap.Schema {
		fmt.Fprintf(os.Stderr, "sdbench: note: comparing schema %q against %q\n",
			oldSnap.Schema, newSnap.Schema)
	}

	oldBy := make(map[benchKey]benchEntry, len(oldSnap.Benchmarks))
	for _, e := range oldSnap.Benchmarks {
		oldBy[key(e)] = e
	}

	fmt.Printf("benchmark comparison: %s -> %s (tolerance %.1f%%, alloc tolerance %.1f%%)\n",
		oldPath, newPath, tolerancePct, allocTolerancePct)
	fmt.Printf("%-10s %-18s %3s  %14s %14s %8s  %12s %12s %8s\n",
		"dataset", "stage", "j", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "adelta")

	var worst, worstAlloc float64
	var worstKey, worstAllocKey benchKey
	matched, allocMatched := 0, 0
	seen := make(map[benchKey]bool, len(newSnap.Benchmarks))
	for _, ne := range newSnap.Benchmarks {
		k := key(ne)
		seen[k] = true
		oe, ok := oldBy[k]
		if !ok {
			fmt.Printf("%-10s %-18s %3d  %14s %14d %8s  (new stage, not compared)\n",
				ne.Dataset, ne.Name, ne.Workers, "-", ne.NsPerOp, "-")
			continue
		}
		matched++
		delta := pctDelta(oe.NsPerOp, ne.NsPerOp)
		if delta > worst {
			worst = delta
			worstKey = k
		}
		allocCol := fmt.Sprintf("%12s %12s %8s", "-", "-", "-")
		if oe.AllocsPerOp > 0 && ne.AllocsPerOp > 0 {
			allocMatched++
			adelta := pctDelta(int64(oe.AllocsPerOp), int64(ne.AllocsPerOp))
			if adelta > worstAlloc {
				worstAlloc = adelta
				worstAllocKey = k
			}
			allocCol = fmt.Sprintf("%12d %12d %+7.1f%%", oe.AllocsPerOp, ne.AllocsPerOp, adelta)
		}
		fmt.Printf("%-10s %-18s %3d  %14d %14d %+7.1f%%  %s\n",
			ne.Dataset, ne.Name, ne.Workers, oe.NsPerOp, ne.NsPerOp, delta, allocCol)
	}
	var dropped []benchKey
	for k := range oldBy {
		if !seen[k] {
			dropped = append(dropped, k)
		}
	}
	sort.Slice(dropped, func(i, j int) bool {
		a, b := dropped[i], dropped[j]
		if a.Dataset != b.Dataset {
			return a.Dataset < b.Dataset
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Workers < b.Workers
	})
	for _, k := range dropped {
		fmt.Printf("%-10s %-18s %3d  (only in %s, not compared)\n",
			k.Dataset, k.Name, k.Workers, oldPath)
	}

	if matched == 0 {
		return fmt.Errorf("no comparable stages between %s and %s", oldPath, newPath)
	}
	if worst > tolerancePct {
		return fmt.Errorf("%s/%s j=%d regressed %.1f%% > tolerance %.1f%%",
			worstKey.Dataset, worstKey.Name, worstKey.Workers, worst, tolerancePct)
	}
	if worstAlloc > allocTolerancePct {
		return fmt.Errorf("%s/%s j=%d allocs regressed %.1f%% > alloc tolerance %.1f%%",
			worstAllocKey.Dataset, worstAllocKey.Name, worstAllocKey.Workers, worstAlloc, allocTolerancePct)
	}
	fmt.Printf("ok: %d stages compared, worst regression %+.1f%% (tolerance %.1f%%); %d alloc-compared, worst %+.1f%% (tolerance %.1f%%)\n",
		matched, worst, tolerancePct, allocMatched, worstAlloc, allocTolerancePct)
	return nil
}

func key(e benchEntry) benchKey {
	return benchKey{Dataset: e.Dataset, Name: e.Name, Workers: e.Workers}
}

// pctDelta is the ns/op change in percent; positive means the new run is
// slower. Durations are minima over benchReps, so small positives are noise —
// that is what -tolerance absorbs.
func pctDelta(oldNs, newNs int64) float64 {
	if oldNs <= 0 {
		return 0
	}
	return (float64(newNs) - float64(oldNs)) / float64(oldNs) * 100
}

// readSnapshot decodes a -json snapshot, accepting any syslogdigest-bench
// schema version: comparison only relies on the benchmarks list, which is
// append-only across versions.
func readSnapshot(path string) (*benchSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap benchSnapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	if !strings.HasPrefix(snap.Schema, "syslogdigest-bench/") {
		return nil, fmt.Errorf("%s: unrecognized schema %q", path, snap.Schema)
	}
	return &snap, nil
}
