// Command sdkb inspects a learned knowledge base: parameters, templates
// (with expert names), the mined rule set, and the chattiest signatures —
// the audit surface the paper offers domain experts before they adjust
// anything.
//
// Usage:
//
//	sdkb -kb kb.json [-freq 20] [-pairs]
package main

import (
	"flag"
	"fmt"
	"os"

	"syslogdigest"
)

func main() {
	var (
		kbPath = flag.String("kb", "kb.json", "knowledge-base JSON from sdlearn")
		freq   = flag.Int("freq", 15, "show the top N signatures by historical frequency")
		pairs  = flag.Bool("pairs", false, "also list undirected rule pairs (the expert review view)")
	)
	flag.Parse()

	f, err := os.Open(*kbPath)
	if err != nil {
		fatalf("open kb: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(f)
	f.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}
	if err := kb.Report(os.Stdout, *freq); err != nil {
		fatalf("report: %v", err)
	}
	if *pairs {
		fmt.Println("\nundirected rule pairs:")
		for _, line := range kb.RulesNarrative() {
			fmt.Println("  " + line)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdkb: "+format+"\n", args...)
	os.Exit(1)
}
