// Command sdvalidate runs the paper's §5.3 validation as a standalone
// workflow: given a knowledge base, a syslog stream, and a trouble-ticket
// export, it digests the stream, matches the most-investigated tickets
// against the ranked events, and reports how high the matching events rank.
//
// Usage:
//
//	sdvalidate -kb kb.json -syslog ds/syslog.log -tickets ds/tickets.tsv [-top 30]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"syslogdigest"
	"syslogdigest/internal/tickets"
)

func main() {
	var (
		kbPath     = flag.String("kb", "kb.json", "knowledge-base JSON from sdlearn")
		syslogPath = flag.String("syslog", "", "syslog stream (required)")
		ticketPath = flag.String("tickets", "", "trouble-ticket TSV (required)")
		top        = flag.Int("top", 30, "number of most-investigated tickets to validate")
		slack      = flag.Duration("slack", 5*time.Minute, "event-span slack around ticket creation")
	)
	flag.Parse()
	if *syslogPath == "" || *ticketPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	kf, err := os.Open(*kbPath)
	if err != nil {
		fatalf("open kb: %v", err)
	}
	kb, err := syslogdigest.LoadKnowledgeBase(kf)
	kf.Close()
	if err != nil {
		fatalf("load kb: %v", err)
	}
	sf, err := os.Open(*syslogPath)
	if err != nil {
		fatalf("open syslog: %v", err)
	}
	msgs, err := syslogdigest.ReadMessages(sf)
	sf.Close()
	if err != nil {
		fatalf("read syslog: %v", err)
	}
	tf, err := os.Open(*ticketPath)
	if err != nil {
		fatalf("open tickets: %v", err)
	}
	tks, err := tickets.ReadTSV(tf)
	tf.Close()
	if err != nil {
		fatalf("read tickets: %v", err)
	}

	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		fatalf("digester: %v", err)
	}
	res, err := d.Digest(msgs)
	if err != nil {
		fatalf("digest: %v", err)
	}

	topTks := tickets.TopK(tks, *top)
	ms := tickets.MatchEvents(topTks, res.Events, tickets.DictRegionOf(kb.Dictionary()), *slack)
	s := tickets.Summarize(ms, 0.05)

	fmt.Printf("%d events from %d messages; validating top %d of %d tickets\n\n",
		len(res.Events), len(msgs), len(topTks), len(tks))
	fmt.Printf("%-10s %-22s %-8s %-7s %-8s\n", "ticket", "kind", "updates", "rank", "rank-pct")
	for _, m := range ms {
		rank := "-"
		pct := "-"
		if m.EventRank >= 0 {
			rank = fmt.Sprintf("%d", m.EventRank)
			pct = fmt.Sprintf("%.1f%%", m.RankPct*100)
		}
		fmt.Printf("%-10s %-22s %-8d %-7s %-8s\n", m.Ticket.ID, m.Ticket.Kind, m.Ticket.Updates, rank, pct)
	}
	fmt.Printf("\nmatched %d/%d; %d within the top 5%% of events; worst matched rank pct %.1f%%\n",
		s.Matched, s.Tickets, s.WithinTopPct, s.WorstRankPct*100)
	if s.Matched < s.Tickets {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdvalidate: "+format+"\n", args...)
	os.Exit(1)
}
