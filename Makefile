# Pre-merge gate: `make check` is the required bar for every change (see
# README "Install & test"). Each target is also usable on its own.

GO ?= go

.PHONY: check fmt vet test race build bench bench-smoke

check: fmt vet race bench-smoke

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# One iteration of every stage and micro benchmark: catches benchmarks that
# no longer compile or crash without paying for a full timed run.
bench-smoke:
	$(GO) test -run '^$$' -bench '^(BenchmarkStage|BenchmarkMicro)' -benchtime=1x .
