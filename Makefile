# Pre-merge gate: `make check` is the required bar for every change (see
# README "Install & test"). Each target is also usable on its own.

GO ?= go

.PHONY: check fmt vet test race build bench bench-smoke bench-compare stream-equiv checkpoint-equiv provisional-equiv cluster-equiv alloc-guard

check: fmt vet race stream-equiv checkpoint-equiv provisional-equiv cluster-equiv alloc-guard bench-smoke bench-compare

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The differential suites (stream/checkpoint/provisional equivalence) all
# live in internal/core and together exceed go test's default 10m package
# timeout under the race detector on small hosts; the explicit timeout is
# headroom, not a hang allowance.
race:
	$(GO) test -race -timeout 40m ./...

bench:
	$(GO) test -bench=. -benchmem

# One iteration of every stage and micro benchmark: catches benchmarks that
# no longer compile or crash without paying for a full timed run.
bench-smoke:
	$(GO) test -run '^$$' -bench '^(BenchmarkStage|BenchmarkMicro)' -benchtime=1x .

# Smoke-test the stage pipeline against the committed baseline snapshot. The
# tolerance is deliberately generous: this catches order-of-magnitude
# regressions and schema/stage drift on shared CI machines, not single-digit
# noise (use sdbench -compare with a tighter -tolerance by hand for that).
bench-compare:
	@tmp=$$(mktemp /tmp/sdbench.XXXXXX.json); \
	$(GO) run ./cmd/sdbench -dataset A -json $$tmp && \
	$(GO) run ./cmd/sdbench -compare BENCH_PR10.json -tolerance 150 -alloc-tolerance 25 $$tmp; \
	rc=$$?; rm -f $$tmp; exit $$rc

# The streaming-equivalence smoke: the incremental engine must reproduce the
# batch oracle's events on both vendor corpora at serial and parallel
# settings, and the router-sharded engine must reproduce the serial engine
# byte for byte at every worker count (the full differential suite runs
# under `make race`).
stream-equiv:
	$(GO) test -run 'TestStreamingMatchesBatch|TestShardedMatchesSerial' -count=1 ./internal/core

# The kill/restore differential under the race detector: a run snapshotted,
# torn down, and restored at 20 random points (both corpora, serial and
# sharded) must emit byte-for-byte what the uninterrupted run emits — each
# event exactly once.
checkpoint-equiv:
	$(GO) test -race -run 'TestCheckpointRestoreEquivalence|TestCheckpointRestoreAcrossWorkerCounts|TestCheckpointPoolIndependence' -count=1 ./internal/core

# The two-tier emission differentials: with the provisional tier on, the
# final event stream must stay byte-identical to the provisional-off run
# (both corpora, serial and sharded), and a run killed/restored at 20
# random points must deliver each (EventID, Revision) exactly once —
# byte-for-byte the uninterrupted run's update transcript. Run without
# -race here as the fast standalone smoke; the same tests run under the
# race detector in `make race` (both are in `make check`).
provisional-equiv:
	$(GO) test -run 'TestProvisionalFinalEquivalence|TestProvisionalCheckpointExactlyOnce|TestProvisionalSupersedeStorm' -count=1 ./internal/core

# The cluster differential under the race detector: the engine distributed
# over TCP-loopback shard servers at 1/2/4 shards — including 10 random
# shard-kill/reconnect points and checkpoint/restore across engine shapes —
# must emit byte-for-byte what the serial in-process engine emits on both
# corpora, final events and provisional update stream alike, with the wire
# metrics reconciling exactly (batches acked == punctuations applied per
# shard, reconnect counter == kills x shards).
cluster-equiv:
	$(GO) test -race -run 'TestClusterMatchesSerial|TestClusterStreamerMatchesSerial|TestClusterKillReconnect|TestClusterCheckpointRestore' -count=1 -timeout 20m ./internal/core

# The steady-state allocation gate: testing.AllocsPerRun over the vendor
# corpus (serial and sharded) and the storm corpus must stay at or under
# one heap allocation per pushed message, net of open-state growth (see
# internal/core/alloc_guard_test.go).
alloc-guard:
	$(GO) test -run 'TestStreamAllocs' -count=1 ./internal/core
