module syslogdigest

go 1.22
