// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus microbenchmarks of the pipeline stages. Each experiment
// benchmark regenerates the corresponding result and logs the rendered rows
// (visible with `go test -bench=. -v` or in -benchmem runs via -run=^$);
// cmd/sdbench prints the same tables without the timing harness.
//
// Profile: benches run the small profile by default so the whole suite
// finishes in minutes; set SD_BENCH_PROFILE=full for the paper-scale run
// (what EXPERIMENTS.md reports).
package syslogdigest_test

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"syslogdigest/internal/core"
	"syslogdigest/internal/experiments"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/par"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/template"
	"syslogdigest/internal/temporal"
)

func benchProfile() experiments.Profile {
	if os.Getenv("SD_BENCH_PROFILE") == "full" {
		return experiments.FullProfile()
	}
	return experiments.SmallProfile()
}

func mustCorpus(b *testing.B, kind gen.DatasetKind) *experiments.Corpus {
	b.Helper()
	c, err := experiments.Load(kind, benchProfile())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

var logOnce sync.Map

// logResult prints a rendered experiment result once per benchmark name.
func logResult(b *testing.B, text string) {
	if _, loaded := logOnce.LoadOrStore(b.Name(), true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

func BenchmarkTable5_SupportSensitivity(b *testing.B) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		b.Run("dataset"+kind.String(), func(b *testing.B) {
			c := mustCorpus(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table5(c)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logResult(b, experiments.RenderTable5(kind.String(), rows))
					b.ReportMetric(rows[1].CoveragePct*100, "coverage_pct@5e-4")
				}
			}
		})
	}
}

func BenchmarkFigure6_RulesVsConfidence(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logResult(b, experiments.RenderFigure6(rows))
			b.ReportMetric(float64(rows[0].Rules), "rules@conf0.5")
		}
	}
}

func BenchmarkFigure7_RulesVsWindow(b *testing.B) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		b.Run("dataset"+kind.String(), func(b *testing.B) {
			c := mustCorpus(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Figure7(c)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logResult(b, experiments.RenderFigure7(kind.String(), rows))
					b.ReportMetric(float64(rows[len(rows)-1].Rules), "rules@300s")
				}
			}
		})
	}
}

func BenchmarkFigures8And9_RuleEvolution(b *testing.B) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		b.Run("dataset"+kind.String(), func(b *testing.B) {
			c := mustCorpus(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RuleEvolution(c)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logResult(b, experiments.RenderRuleEvolution(kind.String(), rows))
					final := rows[len(rows)-1]
					b.ReportMetric(float64(final.Total), "final_rules")
					b.ReportMetric(float64(final.Added+final.Deleted), "final_churn")
				}
			}
		})
	}
}

func BenchmarkFigure10_AlphaSweep(b *testing.B) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		b.Run("dataset"+kind.String(), func(b *testing.B) {
			c := mustCorpus(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Figure10(c)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logResult(b, experiments.RenderSweep(
						"Figure 10 — compression ratio vs alpha (beta=2, dataset "+kind.String()+")", "alpha", pts))
					best := pts[0]
					for _, p := range pts {
						if p.Ratio < best.Ratio {
							best = p
						}
					}
					b.ReportMetric(best.Alpha, "best_alpha")
				}
			}
		})
	}
}

func BenchmarkFigure11_BetaSweep(b *testing.B) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		b.Run("dataset"+kind.String(), func(b *testing.B) {
			c := mustCorpus(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Figure11(c)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logResult(b, experiments.RenderSweep(
						"Figure 11 — compression ratio vs beta (dataset "+kind.String()+")", "beta", pts))
					b.ReportMetric(pts[len(pts)-1].Ratio*1e3, "ratio_milli@beta7")
				}
			}
		})
	}
}

func BenchmarkTable6_ChosenParameters(b *testing.B) {
	rows := make([]experiments.Table6Row, 0, 2)
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		c := mustCorpus(b, kind)
		b.ResetTimer()
		var row experiments.Table6Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = experiments.Table6(c)
			if err != nil {
				b.Fatal(err)
			}
		}
		rows = append(rows, row)
	}
	logResult(b, experiments.RenderTable6(rows))
}

func BenchmarkTable7_CompressionByStage(b *testing.B) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		b.Run("dataset"+kind.String(), func(b *testing.B) {
			c := mustCorpus(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table7(c)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logResult(b, experiments.RenderTable7(kind.String(), rows))
					b.ReportMetric(rows[2].Ratio*1e3, "ratio_milli_full")
				}
			}
		})
	}
}

func BenchmarkFigure12_DailyCounts(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure12(c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logResult(b, experiments.RenderFigure12("A", rows))
		}
	}
}

func BenchmarkFigure13_PerRouter(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure13(c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logResult(b, experiments.RenderFigure13("A", rows, 10))
		}
	}
}

func BenchmarkTemplateAccuracy(b *testing.B) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		b.Run("dataset"+kind.String(), func(b *testing.B) {
			c := mustCorpus(b, kind)
			b.ResetTimer()
			var r experiments.TemplateAccuracyResult
			for i := 0; i < b.N; i++ {
				r = experiments.TemplateAccuracy(c)
			}
			logResult(b, "Template accuracy (§5.2.1): "+r.String())
			b.ReportMetric(r.Accuracy*100, "accuracy_pct")
		})
	}
}

func BenchmarkTicketValidation(b *testing.B) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		b.Run("dataset"+kind.String(), func(b *testing.B) {
			c := mustCorpus(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tv, err := experiments.TicketValidation(c)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					s := tv.Summary
					logResult(b, fmt.Sprintf(
						"Ticket validation (§5.3, dataset %s): %d/%d top tickets matched, %d within top 5%%, worst rank pct %.1f%%",
						kind, s.Matched, s.Tickets, s.WithinTopPct, s.WorstRankPct*100))
					b.ReportMetric(float64(s.Matched), "matched")
					b.ReportMetric(s.WorstRankPct*100, "worst_rank_pct")
				}
			}
		})
	}
}

func BenchmarkFigures4And5_TemporalPatterns(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exs, err := experiments.Figures4And5(c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logResult(b, experiments.RenderExemplars("A", exs))
		}
	}
}

func BenchmarkFigures14And15_HealthMap(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.HealthMap(c, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logResult(b, experiments.RenderHealthMap("A", rows))
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationMasking(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	var r experiments.AblationMaskingResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationMasking(c)
	}
	logResult(b, fmt.Sprintf(
		"Ablation — location masking: accuracy %.1f%% with vs %.1f%% without (%d vs %d templates)",
		r.WithMasking*100, r.WithoutMasking*100, r.LearnedWith, r.LearnedWithout))
	b.ReportMetric(r.WithMasking*100, "with_pct")
	b.ReportMetric(r.WithoutMasking*100, "without_pct")
}

func BenchmarkAblationTemporalVsFixedWindow(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationTemporal(c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			text := fmt.Sprintf("Ablation — EWMA temporal grouping ratio %.3e vs fixed windows:", r.EWMARatio)
			for _, f := range r.Fixed {
				text += fmt.Sprintf(" %v=%.3e", f.Window, f.Ratio)
			}
			logResult(b, text)
			b.ReportMetric(r.EWMARatio*1e3, "ewma_ratio_milli")
		}
	}
}

func BenchmarkAblationRuleDeletionPolicy(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDeletion(c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			n := len(r.ConservativeTotals)
			logResult(b, fmt.Sprintf(
				"Ablation — rule deletion policy after %d weeks: conservative keeps %d rules, aggressive %d",
				n, r.ConservativeTotals[n-1], r.AggressiveTotals[n-1]))
		}
	}
}

func BenchmarkSeverityFilterBaseline(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.SeverityBaseline(c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logResult(b, fmt.Sprintf(
				"Baseline — vendor severity filter retention: sev<=1 %.3e, sev<=3 %.3e, sev<=5 %.3e; digest ratio %.3e",
				r.Retention[1], r.Retention[3], r.Retention[5], r.DigestRatio))
		}
	}
}

// Microbenchmarks: raw throughput of the pipeline stages.

func BenchmarkStageTemplateLearning(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			opt := template.Options{Pool: par.New(j)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := template.Learn(c.Learn.Messages, opt)
				if len(ts) == 0 {
					b.Fatal("no templates")
				}
			}
			b.ReportMetric(float64(len(c.Learn.Messages)), "msgs/op")
		})
	}
}

func BenchmarkStageAugment(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	msgs := c.Online.Messages
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		m := &msgs[n%len(msgs)]
		n++
		_ = c.KB.Augment(m)
	}
}

// BenchmarkMicroAugmentRepeated measures the augment hot path on the
// repeated-message profile — a small window of messages cycled so the
// match cache (when on) reaches steady-state hit rates, the workload shape
// operational syslog is dominated by. The nocache variant pins the
// uncached floor, which must stay within noise of the pre-cache engine.
func BenchmarkMicroAugmentRepeated(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	msgs := c.Online.Messages
	if len(msgs) > 256 {
		msgs = msgs[:256]
	}
	for _, mode := range []struct {
		name string
		size int
	}{{"cache", 0}, {"nocache", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			c.KB.SetMatchCache(mode.size)
			// The corpus (and its KB) is cached across benchmarks: restore
			// the default cache configuration on the way out.
			defer c.KB.SetMatchCache(0)
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				m := &msgs[n%len(msgs)]
				n++
				_ = c.KB.Augment(m)
			}
		})
	}
}

func BenchmarkStageRuleMining(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	events := core.RuleEvents(c.KB.AugmentAll(c.Learn.Messages))
	cfg := experiments.ParamsFor(gen.DatasetA).Rules
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rules.Mine(events, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events)), "msgs/op")
}

func BenchmarkStageFullDigest(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			d, err := core.NewDigester(c.KB)
			if err != nil {
				b.Fatal(err)
			}
			d.SetParallelism(j)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := d.Digest(c.Online.Messages)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(res.Events)), "events")
				}
			}
			b.ReportMetric(float64(len(c.Online.Messages)), "msgs/op")
		})
	}
}

// BenchmarkStageStream drives the live path — reorder buffer plus
// incremental engine, one message at a time, Flush at the end — over the
// same corpus as BenchmarkStageFullDigest, so the two msgs/op rates compare
// the streaming engine against the batch digest directly. Each op replays
// the corpus through a fresh Streamer (the late-drop frontier is
// monotonic); with -benchmem, allocs/op scales with open-window state, not
// corpus size — the per-push steady state is pinned by
// TestStreamerSteadyStateAllocs.
func BenchmarkStageStream(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	d, err := core.NewDigester(c.KB)
	if err != nil {
		b.Fatal(err)
	}
	// w1 is the serial engine; w>1 runs the router-sharded engine, whose
	// output is byte-identical, so events/op must not move across the sweep.
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			events := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := core.NewStreamerWith(d, core.StreamerOptions{StreamWorkers: w})
				events = 0
				for j := range c.Online.Messages {
					res, err := st.Push(c.Online.Messages[j])
					if err != nil {
						b.Fatal(err)
					}
					if res != nil {
						events += len(res.Events)
					}
				}
				res, err := st.Flush()
				if err != nil {
					b.Fatal(err)
				}
				if res != nil {
					events += len(res.Events)
				}
				st.Close()
			}
			b.ReportMetric(float64(events), "events")
			b.ReportMetric(float64(len(c.Online.Messages)), "msgs/op")
		})
	}
}

func BenchmarkTrendAudit(b *testing.B) {
	// Needs >= 6 online days; derive a week-long low-rate profile when the
	// small profile is active.
	p := benchProfile()
	if p.OnlineDuration < 6*24*time.Hour {
		p.Name = "trend"
		p.OnlineDuration = 7 * 24 * time.Hour
		p.RateScale = 0.25
	}
	c, err := experiments.Load(gen.DatasetA, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.TrendAudit(c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logResult(b, fmt.Sprintf(
				"Application — trend auditing (MERCURY-style): %d level shifts on raw per-router counts vs %d on event counts",
				r.RawShifts, r.EventShifts))
			b.ReportMetric(float64(r.RawShifts), "raw_shifts")
			b.ReportMetric(float64(r.EventShifts), "event_shifts")
		}
	}
}

func BenchmarkMicroTemplateMatch(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	m := c.KB.Matcher()
	detail := "Interface Serial1/0/1:0, changed state to down"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Match("LINK-3-UPDOWN", detail); !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkMicroSpatialMatch(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	dict := c.KB.Dictionary()
	a, x, ok := pickTwoLocations(c)
	if !ok {
		// Degrading to (a, RouterLoc) would silently benchmark the trivial
		// same-router fast path instead of a real hierarchy walk; the number
		// would look valid while measuring the wrong code.
		b.Skipf("corpus sample has no second location on router %s; cannot exercise SpatialMatch", a.Router)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dict.SpatialMatch(a, x)
	}
}

// pickTwoLocations finds two distinct locations on the same router in the
// first 200 online messages; ok is false when the sample has only one.
func pickTwoLocations(c *experiments.Corpus) (locdict.Location, locdict.Location, bool) {
	plus := c.KB.AugmentAll(c.Online.Messages[:200])
	a := plus[0].Loc
	for i := range plus {
		if plus[i].Loc.Router == a.Router && plus[i].Loc != a {
			return a, plus[i].Loc, true
		}
	}
	return a, locdict.Location{}, false
}

func BenchmarkMicroEWMAObserve(b *testing.B) {
	g, err := temporal.NewGrouper(temporal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Observe(t0.Add(time.Duration(i) * 10 * time.Second))
	}
}

func BenchmarkMicroKnowledgeBaseSaveLoad(b *testing.B) {
	c := mustCorpus(b, gen.DatasetA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := c.KB.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := core.LoadKnowledgeBase(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
