package syslogdigest_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"syslogdigest"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/syslogmsg"
)

// TestPublicAPIEndToEnd drives the whole public surface the way an adopter
// would: parse configs, learn from serialized history, save and reload the
// knowledge base, digest a live stream read from its serialized form, and
// drill back down from an event to its raw lines.
func TestPublicAPIEndToEnd(t *testing.T) {
	history, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 14, Seed: 77,
		Start:    time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC),
		Duration: 24 * time.Hour, RateScale: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	live, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 14, Seed: 78,
		Start:    time.Date(2009, 12, 1, 0, 0, 0, 0, time.UTC),
		Duration: 12 * time.Hour, RateScale: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Configs round trip through their textual form.
	var configs []*syslogdigest.RouterConfig
	for _, cfg := range history.Net.Configs {
		parsed, err := syslogdigest.ParseConfig(syslogdigest.RenderConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		configs = append(configs, parsed)
	}

	// History round trips through the serialized stream form.
	var buf bytes.Buffer
	if err := syslogdigest.WriteMessages(&buf, history.Messages); err != nil {
		t.Fatal(err)
	}
	histMsgs, err := syslogdigest.ReadMessages(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(histMsgs) != len(history.Messages) {
		t.Fatalf("history round trip lost messages: %d != %d", len(histMsgs), len(history.Messages))
	}

	kb, err := syslogdigest.NewLearner(syslogdigest.DefaultParams()).Learn(histMsgs, configs)
	if err != nil {
		t.Fatal(err)
	}

	// Knowledge base survives serialization.
	var kbBuf bytes.Buffer
	if err := kb.Save(&kbBuf); err != nil {
		t.Fatal(err)
	}
	kb2, err := syslogdigest.LoadKnowledgeBase(&kbBuf)
	if err != nil {
		t.Fatal(err)
	}

	d, err := syslogdigest.NewDigester(kb2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Digest(live.Messages)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events")
	}
	if res.CompressionRatio() > 0.2 {
		t.Fatalf("compression ratio %.3f too weak", res.CompressionRatio())
	}

	// Event drill-down: raw indices resolve back to original lines through
	// the store.
	store, err := syslogmsg.NewStore(live.Messages)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Events[0]
	raws := store.GetAll(top.RawIndexes)
	if len(raws) != top.Size() {
		t.Fatalf("drill-down resolved %d of %d messages", len(raws), top.Size())
	}
	for _, m := range raws {
		if m.Time.Before(top.Start) || m.Time.After(top.End) {
			t.Fatalf("raw message %d outside event span", m.Index)
		}
		found := false
		for _, r := range top.Routers {
			if r == m.Router {
				found = true
			}
		}
		if !found {
			t.Fatalf("raw message router %q not in event routers %v", m.Router, top.Routers)
		}
	}

	// Digest line format contract.
	for _, e := range res.Events[:3] {
		parts := strings.Split(e.Digest(), "|")
		if len(parts) != 5 {
			t.Fatalf("digest line has %d fields: %q", len(parts), e.Digest())
		}
	}
}

// TestStagesExported checks the stage constants select distinct behavior
// through the public API.
func TestStagesExported(t *testing.T) {
	history, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 10, Seed: 9,
		Duration: 12 * time.Hour, RateScale: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := syslogdigest.NewLearner(syslogdigest.DefaultParams()).Learn(history.Messages, history.Net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[syslogdigest.Stage]int{}
	for _, s := range []syslogdigest.Stage{syslogdigest.StageTemporal, syslogdigest.StageTemporalRules, syslogdigest.StageFull} {
		d.SetStage(s)
		res, err := d.Digest(history.Messages)
		if err != nil {
			t.Fatal(err)
		}
		counts[s] = len(res.Events)
	}
	if counts[syslogdigest.StageTemporal] < counts[syslogdigest.StageFull] {
		t.Fatalf("stage ordering violated: %v", counts)
	}
}
