package locdict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syslogdigest/internal/netconf"
	"syslogdigest/internal/syslogmsg"
)

// Property tests over generated topologies.

func randomNetworkDict(t *testing.T, seed int64, routers int) *Dictionary {
	t.Helper()
	net, err := netconf.Generate(netconf.Spec{
		Routers: routers, Seed: seed, Vendor: syslogmsg.VendorV1,
		MultilinkFraction: 0.3, TunnelPairs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// randomLocations samples dictionary-grounded and fabricated locations.
func randomLocations(rng *rand.Rand, d *Dictionary, n int) []Location {
	var names []string
	for r := range dictRouters(d) {
		names = append(names, r)
	}
	// dictRouters returns a map; sort for determinism.
	sortStrings(names)
	var out []Location
	for i := 0; i < n; i++ {
		router := names[rng.Intn(len(names))]
		switch rng.Intn(4) {
		case 0:
			out = append(out, RouterLoc(router))
		case 1:
			out = append(out, Location{Router: router, Level: LevelSlot, Name: itoa(1 + rng.Intn(4))})
		case 2:
			out = append(out, Location{Router: router, Level: LevelPort, Name: itoa(1+rng.Intn(4)) + "/" + itoa(rng.Intn(4))})
		default:
			ifs := d.Router(router).Interfaces()
			if len(ifs) > 0 {
				out = append(out, IntfLoc(router, ifs[rng.Intn(len(ifs))].Name))
			} else {
				out = append(out, RouterLoc(router))
			}
		}
	}
	return out
}

func dictRouters(d *Dictionary) map[string]bool {
	out := make(map[string]bool)
	for _, lk := range d.Links() {
		out[lk.A] = true
		out[lk.B] = true
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Property: SpatialMatch is reflexive and symmetric; Connected is symmetric
// and never true for same-router pairs; the two predicates are mutually
// exclusive.
func TestPredicatePropertiesQuick(t *testing.T) {
	d := randomNetworkDict(t, 99, 16)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		locs := randomLocations(rng, d, 12)
		for _, a := range locs {
			if !d.SpatialMatch(a, a) {
				return false
			}
			for _, b := range locs {
				sm := d.SpatialMatch(a, b)
				if sm != d.SpatialMatch(b, a) {
					return false
				}
				cn := d.Connected(a, b)
				if cn != d.Connected(b, a) {
					return false
				}
				if a.Router == b.Router && cn {
					return false
				}
				if a.Router != b.Router && sm {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ancestors always ends at the router and never increases in
// granularity along the chain.
func TestAncestorsChainQuick(t *testing.T) {
	d := randomNetworkDict(t, 100, 12)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, loc := range randomLocations(rng, d, 10) {
			chain := d.Ancestors(loc)
			if len(chain) == 0 || chain[0] != loc {
				return false
			}
			last := chain[len(chain)-1]
			if last.Level != LevelRouter || last.Router != loc.Router {
				return false
			}
			for i := 1; i < len(chain); i++ {
				if chain[i].Level <= chain[i-1].Level {
					return false
				}
				if chain[i].Router != loc.Router {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every link's two endpoint interfaces are Connected, and
// LinkPeer round trips.
func TestLinkEndpointsConnectedQuick(t *testing.T) {
	for _, seed := range []int64{1, 7, 21} {
		d := randomNetworkDict(t, seed, 14)
		for _, lk := range d.Links() {
			a := IntfLoc(lk.A, lk.AIntf)
			b := IntfLoc(lk.B, lk.BIntf)
			if !d.Connected(a, b) {
				t.Fatalf("seed %d: link %v not connected", seed, lk)
			}
			pr, pi, ok := d.LinkPeer(lk.A, lk.AIntf)
			if !ok || pr != lk.B || pi != lk.BIntf {
				t.Fatalf("seed %d: LinkPeer round trip failed for %v", seed, lk)
			}
		}
	}
}
