package locdict

import (
	"math/rand"
	"strings"
	"testing"

	"syslogdigest/internal/netconf"
	"syslogdigest/internal/syslogmsg"
)

// mangle returns location variants the intern table has never seen:
// case-flipped and truncated names. The fast path must hand these to the
// linear reference, not guess.
func mangle(rng *rand.Rand, loc Location) Location {
	switch rng.Intn(3) {
	case 0:
		loc.Name = strings.ToUpper(loc.Name)
	case 1:
		loc.Name = strings.ToLower(loc.Name)
	default:
		if len(loc.Name) > 2 {
			loc.Name = loc.Name[:len(loc.Name)-1]
		}
	}
	return loc
}

// TestSpatialMatchIndexedMatchesLinear is the differential test for the
// interned fast path: over random generated topologies, every pair of
// sampled locations — canonical, fabricated, and mangled — must match
// identically under SpatialMatch and SpatialMatchLinear.
func TestSpatialMatchIndexedMatchesLinear(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		d := randomNetworkDict(t, seed, 12)
		rng := rand.New(rand.NewSource(seed * 31))
		locs := randomLocations(rng, d, 60)
		for i, l := range locs {
			if rng.Intn(3) == 0 {
				locs[i] = mangle(rng, l)
			}
		}
		for _, a := range locs {
			for _, b := range locs {
				if got, want := d.SpatialMatch(a, b), d.SpatialMatchLinear(a, b); got != want {
					t.Fatalf("seed %d: SpatialMatch(%+v, %+v) = %v, linear = %v", seed, a, b, got, want)
				}
			}
		}
	}
}

// TestSpatialMatchBundleSiblings pins the bundle cases on the fast path:
// two members of one multilink bundle match each other and their parent.
func TestSpatialMatchBundleSiblings(t *testing.T) {
	d := randomNetworkDict(t, 3, 16)
	checked := 0
	for _, lk := range d.Links() {
		rd := d.Router(lk.A)
		info := rd.Intf(lk.AIntf)
		if info == nil || len(info.Members) < 2 {
			continue
		}
		m0 := IntfLoc(lk.A, info.Members[0])
		m1 := IntfLoc(lk.A, info.Members[1])
		parent := IntfLoc(lk.A, info.Name)
		for _, pair := range [][2]Location{{m0, m1}, {m0, parent}, {parent, m1}} {
			if !d.SpatialMatch(pair[0], pair[1]) {
				t.Fatalf("bundle pair %+v / %+v did not match", pair[0], pair[1])
			}
			if !d.SpatialMatchLinear(pair[0], pair[1]) {
				t.Fatalf("linear rejects bundle pair %+v / %+v", pair[0], pair[1])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("topology produced no multi-member bundles; raise MultilinkFraction")
	}
}

func BenchmarkMicroSpatialMatchIndexed(b *testing.B) {
	net := benchDict(b)
	a, c := pickTwo(b, net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SpatialMatch(a, c)
	}
}

func BenchmarkMicroSpatialMatchLinear(b *testing.B) {
	net := benchDict(b)
	a, c := pickTwo(b, net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SpatialMatchLinear(a, c)
	}
}

func benchDict(b *testing.B) *Dictionary {
	b.Helper()
	net, err := netconf.Generate(netconf.Spec{
		Routers: 16, Seed: 5, Vendor: syslogmsg.VendorV1,
		MultilinkFraction: 0.3, TunnelPairs: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	d, err := Build(net.Configs)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// pickTwo selects two interface locations on one router.
func pickTwo(b *testing.B, d *Dictionary) (Location, Location) {
	b.Helper()
	for _, lk := range d.Links() {
		rd := d.Router(lk.A)
		ifs := rd.Interfaces()
		if len(ifs) >= 2 {
			return IntfLoc(lk.A, ifs[0].Name), IntfLoc(lk.A, ifs[1].Name)
		}
	}
	b.Skip("no router with two interfaces")
	return Location{}, Location{}
}
