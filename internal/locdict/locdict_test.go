package locdict

import (
	"testing"

	"syslogdigest/internal/netconf"
	"syslogdigest/internal/syslogmsg"
)

// testConfigs builds a small two-router network by hand:
//
//	r1 Serial1/0/1:0 (10.0.0.1/30) <-> r2 Serial2/0/1:0 (10.0.0.2/30)
//	r1 Multilink1 (10.0.0.5/30, members Serial1/1/1:0, Serial1/2/1:0)
//	    <-> r2 Multilink1 (10.0.0.6/30, members Serial2/1/1:0, Serial2/2/1:0)
//	iBGP r1<->r2 over loopbacks, VRF 1000:1001
//	Tunnel1 r1->r2 via r3
func testConfigs() []*netconf.Config {
	r1 := &netconf.Config{
		Hostname: "r1", Vendor: syslogmsg.VendorV1, Region: "TX", LocalAS: 65000,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.1", PrefixLen: 32},
			{Name: "Serial1/0/1:0", IP: "10.0.0.1", PrefixLen: 30},
			{Name: "Serial1/1/1:0", Bundle: "Multilink1"},
			{Name: "Serial1/2/1:0", Bundle: "Multilink1"},
			{Name: "Multilink1", IP: "10.0.0.5", PrefixLen: 30},
		},
		Neighbors: []netconf.BGPNeighbor{{IP: "192.168.0.2", RemoteAS: 65000, VRF: "1000:1001"}},
		Tunnels:   []netconf.Tunnel{{Name: "Tunnel1", DestinationIP: "192.168.0.2", Hops: []string{"r3"}}},
	}
	r2 := &netconf.Config{
		Hostname: "r2", Vendor: syslogmsg.VendorV1, Region: "GA", LocalAS: 65000,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.2", PrefixLen: 32},
			{Name: "Serial2/0/1:0", IP: "10.0.0.2", PrefixLen: 30},
			{Name: "Serial2/1/1:0", Bundle: "Multilink1"},
			{Name: "Serial2/2/1:0", Bundle: "Multilink1"},
			{Name: "Multilink1", IP: "10.0.0.6", PrefixLen: 30},
		},
		Neighbors: []netconf.BGPNeighbor{{IP: "192.168.0.1", RemoteAS: 65000, VRF: "1000:1001"}},
	}
	r3 := &netconf.Config{
		Hostname: "r3", Vendor: syslogmsg.VendorV1, Region: "NY", LocalAS: 65000,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.3", PrefixLen: 32},
		},
	}
	r4 := &netconf.Config{
		Hostname: "r4", Vendor: syslogmsg.VendorV1, Region: "CA", LocalAS: 65000,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.4", PrefixLen: 32},
		},
	}
	return []*netconf.Config{r1, r2, r3, r4}
}

func build(t *testing.T) *Dictionary {
	t.Helper()
	d, err := Build(testConfigs())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLevelWeight(t *testing.T) {
	if LevelInterface.Weight() != 1 || LevelPort.Weight() != 10 ||
		LevelSlot.Weight() != 100 || LevelRouter.Weight() != 1000 {
		t.Fatal("level weights are not 10x per level")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelInterface: "interface", LevelPort: "port", LevelSlot: "slot", LevelRouter: "router",
	} {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestBuildBasics(t *testing.T) {
	d := build(t)
	if d.Routers() != 4 {
		t.Fatalf("Routers = %d", d.Routers())
	}
	if !d.HasRouter("r1") || d.HasRouter("r9") {
		t.Fatal("HasRouter wrong")
	}
	if d.Region("r1") != "TX" || d.Region("r9") != "" {
		t.Fatal("Region wrong")
	}
	r, i, ok := d.ResolveIP("10.0.0.2")
	if !ok || r != "r2" || i != "Serial2/0/1:0" {
		t.Fatalf("ResolveIP = (%q, %q, %v)", r, i, ok)
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	cfgs := testConfigs()
	cfgs = append(cfgs, &netconf.Config{Hostname: "r1"})
	if _, err := Build(cfgs); err == nil {
		t.Fatal("want error for duplicate router")
	}
	cfgs = testConfigs()
	cfgs[2].Interfaces = append(cfgs[2].Interfaces, netconf.Interface{Name: "Loopback1", IP: "192.168.0.1", PrefixLen: 32})
	if _, err := Build(cfgs); err == nil {
		t.Fatal("want error for duplicate IP")
	}
}

func TestLinkInference(t *testing.T) {
	d := build(t)
	if got := len(d.Links()); got != 2 {
		t.Fatalf("links = %d, want 2 (serial + multilink)", got)
	}
	pr, pi, ok := d.LinkPeer("r1", "Serial1/0/1:0")
	if !ok || pr != "r2" || pi != "Serial2/0/1:0" {
		t.Fatalf("LinkPeer = (%q, %q, %v)", pr, pi, ok)
	}
	// Bundle members inherit peering.
	pr, _, ok = d.LinkPeer("r1", "Serial1/1/1:0")
	if !ok || pr != "r2" {
		t.Fatalf("member LinkPeer = (%q, %v)", pr, ok)
	}
	// Case-insensitive lookup.
	if _, _, ok := d.LinkPeer("r1", "serial1/0/1:0"); !ok {
		t.Fatal("LinkPeer not case-insensitive")
	}
	if _, _, ok := d.LinkPeer("r1", "Loopback0"); ok {
		t.Fatal("loopback should not be a link endpoint")
	}
}

func TestSessionAndPathInference(t *testing.T) {
	d := build(t)
	if len(d.Sessions()) != 1 {
		t.Fatalf("sessions = %d, want 1 (deduplicated)", len(d.Sessions()))
	}
	s := d.Sessions()[0]
	if s.VRF != "1000:1001" {
		t.Fatalf("session VRF = %q", s.VRF)
	}
	peer, ok := d.SessionPeer("r1", "192.168.0.2")
	if !ok || peer != "r2" {
		t.Fatalf("SessionPeer = (%q, %v)", peer, ok)
	}
	peer, ok = d.SessionPeer("r2", "192.168.0.1")
	if !ok || peer != "r1" {
		t.Fatalf("reverse SessionPeer = (%q, %v)", peer, ok)
	}
	if len(d.Paths()) != 1 {
		t.Fatalf("paths = %d, want 1", len(d.Paths()))
	}
	if d.Paths()[0].Hops[0] != "r3" {
		t.Fatalf("path hops = %v", d.Paths()[0].Hops)
	}
}

func TestAncestors(t *testing.T) {
	d := build(t)
	chain := d.Ancestors(IntfLoc("r1", "Serial1/0/1:0"))
	want := []Location{
		IntfLoc("r1", "Serial1/0/1:0"),
		{Router: "r1", Level: LevelPort, Name: "1/0"},
		{Router: "r1", Level: LevelSlot, Name: "1"},
		RouterLoc("r1"),
	}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %v, want %v", i, chain[i], want[i])
		}
	}
	// Logical bundle resolves through its first member to hardware.
	chain = d.Ancestors(IntfLoc("r1", "Multilink1"))
	foundSlot := false
	for _, l := range chain {
		if l.Level == LevelSlot {
			foundSlot = true
		}
	}
	if !foundSlot {
		t.Fatalf("bundle ancestors missing slot: %v", chain)
	}
	// Router-level location is its own chain.
	chain = d.Ancestors(RouterLoc("r1"))
	if len(chain) != 1 {
		t.Fatalf("router chain = %v", chain)
	}
	// Unknown interface still parses positional ancestors from its name.
	chain = d.Ancestors(IntfLoc("r1", "Serial3/1/9:0"))
	if len(chain) != 4 {
		t.Fatalf("unknown intf chain = %v", chain)
	}
}

func TestSpatialMatch(t *testing.T) {
	d := build(t)
	intf := IntfLoc("r1", "Serial1/0/1:0")
	cases := []struct {
		a, b Location
		want bool
	}{
		{intf, intf, true},
		{intf, RouterLoc("r1"), true}, // router matches everything on it
		{RouterLoc("r1"), intf, true},
		{intf, Location{Router: "r1", Level: LevelSlot, Name: "1"}, true},
		{intf, Location{Router: "r1", Level: LevelSlot, Name: "2"}, false},
		{intf, Location{Router: "r1", Level: LevelPort, Name: "1/0"}, true},
		{intf, Location{Router: "r1", Level: LevelPort, Name: "1/1"}, false},
		{intf, IntfLoc("r2", "Serial2/0/1:0"), false}, // different routers never spatially match
		// Two different interfaces on the same slot do not match.
		{IntfLoc("r1", "Serial1/1/1:0"), IntfLoc("r1", "Serial1/0/1:0"), false},
		// Bundle member matches its bundle and its sibling member.
		{IntfLoc("r1", "Serial1/1/1:0"), IntfLoc("r1", "Multilink1"), true},
		{IntfLoc("r1", "Serial1/1/1:0"), IntfLoc("r1", "Serial1/2/1:0"), true},
	}
	for _, c := range cases {
		if got := d.SpatialMatch(c.a, c.b); got != c.want {
			t.Errorf("SpatialMatch(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got := d.SpatialMatch(c.b, c.a); got != c.want {
			t.Errorf("SpatialMatch(%v, %v) = %v, want %v (asymmetric!)", c.b, c.a, got, c.want)
		}
	}
}

func TestConnected(t *testing.T) {
	d := build(t)
	a := IntfLoc("r1", "Serial1/0/1:0")
	b := IntfLoc("r2", "Serial2/0/1:0")
	if !d.Connected(a, b) {
		t.Fatal("two ends of one link should be connected")
	}
	// Ends of *different* links between connected routers don't pair at
	// interface level.
	ml2 := IntfLoc("r2", "Multilink1")
	if d.Connected(a, ml2) {
		t.Fatal("ends of different links should not be connected")
	}
	// Bundle members connect to the far-end bundle.
	if !d.Connected(IntfLoc("r1", "Serial1/1/1:0"), ml2) {
		t.Fatal("bundle member should connect to far-end bundle")
	}
	// Router-level locations on linked routers are connected.
	if !d.Connected(RouterLoc("r1"), RouterLoc("r2")) {
		t.Fatal("linked routers should be connected at router level")
	}
	// Path intermediate hop connects to endpoints.
	if !d.Connected(RouterLoc("r1"), RouterLoc("r3")) {
		t.Fatal("tunnel hop should be connected to endpoint")
	}
	// Same router never "connected".
	if d.Connected(a, IntfLoc("r1", "Multilink1")) {
		t.Fatal("same-router locations must use SpatialMatch, not Connected")
	}
	// Hop routers connect to *both* path endpoints — the PIM scenario needs
	// a failure on the secondary-path hop to relate to the far endpoint.
	if !d.Connected(RouterLoc("r2"), RouterLoc("r3")) {
		t.Fatal("tunnel hop should be connected to the far endpoint too")
	}
	// Truly unrelated routers.
	if d.Connected(RouterLoc("r1"), RouterLoc("r4")) {
		t.Fatal("r1 and r4 share nothing")
	}
}

func TestNormalize(t *testing.T) {
	d := build(t)
	cases := []struct {
		router, token string
		want          Location
		ok            bool
	}{
		{"r1", "Serial1/0/1:0", IntfLoc("r1", "Serial1/0/1:0"), true},
		{"r1", "serial1/0/1:0", IntfLoc("r1", "Serial1/0/1:0"), true}, // case-insensitive
		{"r1", "10.0.0.1", IntfLoc("r1", "Serial1/0/1:0"), true},      // own IP
		{"r1", "10.0.0.2", Location{}, false},                         // neighbor's IP is not ours
		{"r1", "1", Location{Router: "r1", Level: LevelSlot, Name: "1"}, true},
		{"r1", "9", Location{}, false}, // no such slot
		{"r1", "1/0", Location{Router: "r1", Level: LevelPort, Name: "1/0"}, true},
		{"r1", "Multilink1", IntfLoc("r1", "Multilink1"), true},
		{"r1", "garbage", Location{}, false},
		{"r9", "Serial1/0/1:0", Location{}, false}, // unknown router
		// Channelized extension of a configured name.
		{"r1", "Serial1/0/1:0.100", IntfLoc("r1", "Serial1/0/1:0"), true},
	}
	for _, c := range cases {
		got, ok := d.Normalize(c.router, c.token)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Normalize(%q, %q) = (%v, %v), want (%v, %v)", c.router, c.token, got, ok, c.want, c.ok)
		}
	}
}

func TestCommonAncestor(t *testing.T) {
	d := build(t)
	a := IntfLoc("r1", "Serial1/0/1:0")
	slot := Location{Router: "r1", Level: LevelSlot, Name: "1"}
	got, ok := d.CommonAncestor(a, slot)
	if !ok || got != slot {
		t.Fatalf("CommonAncestor = (%v, %v), want slot 1", got, ok)
	}
	// Different interfaces on the same slot meet at the slot.
	b := IntfLoc("r1", "Serial1/1/1:0")
	got, ok = d.CommonAncestor(a, b)
	if !ok || got.Level != LevelSlot {
		t.Fatalf("CommonAncestor(%v, %v) = (%v, %v)", a, b, got, ok)
	}
	if _, ok := d.CommonAncestor(a, IntfLoc("r2", "Serial2/0/1:0")); ok {
		t.Fatal("cross-router CommonAncestor should fail")
	}
}

func TestHighestCommonLoc(t *testing.T) {
	locs := []Location{
		IntfLoc("r1", "Serial1/0/1:0"),
		RouterLoc("r1"),
		{Router: "r1", Level: LevelSlot, Name: "1"},
	}
	got, err := HighestCommonLoc(locs)
	if err != nil || got.Level != LevelRouter {
		t.Fatalf("HighestCommonLoc = (%v, %v)", got, err)
	}
	if _, err := HighestCommonLoc(nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := HighestCommonLoc([]Location{RouterLoc("r1"), RouterLoc("r2")}); err == nil {
		t.Fatal("want error for mixed routers")
	}
}

func TestLocationKey(t *testing.T) {
	if RouterLoc("r1").Key() != "r1" {
		t.Fatal("router key should be bare name")
	}
	k := IntfLoc("r1", "Serial1/0/1:0").Key()
	if k != "r1 interface Serial1/0/1:0" {
		t.Fatalf("key = %q", k)
	}
}

func TestBuildFromGeneratedNetwork(t *testing.T) {
	// Link inference over a generated topology must recover exactly the
	// generator's ground-truth links.
	net, err := netconf.Generate(netconf.Spec{Routers: 30, Seed: 21, Vendor: syslogmsg.VendorV1, MultilinkFraction: 0.3, TunnelPairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Links()) != len(net.Links) {
		t.Fatalf("inferred %d links, truth has %d", len(d.Links()), len(net.Links))
	}
	truth := make(map[string]bool)
	for _, lk := range net.Links {
		truth[lk.A+"|"+lk.AIntf+"|"+lk.B+"|"+lk.BIntf] = true
		truth[lk.B+"|"+lk.BIntf+"|"+lk.A+"|"+lk.AIntf] = true
	}
	for _, lk := range d.Links() {
		if !truth[lk.A+"|"+lk.AIntf+"|"+lk.B+"|"+lk.BIntf] {
			t.Fatalf("inferred link not in ground truth: %+v", lk)
		}
	}
	if len(d.Paths()) != len(net.Paths) {
		t.Fatalf("inferred %d paths, truth has %d", len(d.Paths()), len(net.Paths))
	}
}
