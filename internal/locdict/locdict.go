// Package locdict implements the paper's location dictionary (§4.1.2).
//
// A router syslog message carries a router id, but the network condition it
// describes usually lives at a finer location: a slot, a port, a physical or
// logical interface. The dictionary is built offline from router configs and
// answers the questions the online system needs:
//
//   - what locations exist on each router and how they nest (Figure 3's
//     hierarchy: router → slot → port → interface, with logical interfaces
//     such as multilink bundles mapped onto physical members);
//   - which interface owns which IP address;
//   - which locations on *different* routers are connected: the two ends of
//     a link (inferred by matching /30 subnets), a BGP session, or a
//     configured secondary path/tunnel.
//
// Two predicates drive grouping: SpatialMatch (same-router closeness: equal,
// ancestor/descendant, or bundle-sibling locations) and Connected
// (cross-router closeness: endpoints of the same link/session/path).
package locdict

import (
	"fmt"
	"strconv"
	"strings"

	"syslogdigest/internal/netconf"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/textutil"
)

// Level is a rung of the location hierarchy, ordered from finest to
// coarsest. Scoring weights grow by 10x per level (see Weight), matching the
// paper's "the value of lm higher level is several (e.g. 10) times of lower
// level".
type Level int

const (
	// LevelInterface covers physical and logical L3 interfaces (finest).
	LevelInterface Level = iota
	// LevelPort is a physical port position, e.g. "1/0".
	LevelPort
	// LevelSlot is a slot / linecard position.
	LevelSlot
	// LevelRouter is the whole router (coarsest).
	LevelRouter
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case LevelInterface:
		return "interface"
	case LevelPort:
		return "port"
	case LevelSlot:
		return "slot"
	case LevelRouter:
		return "router"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Weight returns the importance weight of the level: 1, 10, 100, 1000.
func (l Level) Weight() float64 {
	w := 1.0
	for i := Level(0); i < l; i++ {
		w *= 10
	}
	return w
}

// Location is one place in the network. Name is empty at router level; at
// slot level it is the decimal slot number; at port level "slot/port"; at
// interface level the configured interface name.
type Location struct {
	Router string
	Level  Level
	Name   string
}

// Key returns a canonical string key for map use and presentation.
func (loc Location) Key() string {
	if loc.Level == LevelRouter {
		return loc.Router
	}
	return loc.Router + " " + loc.Level.String() + " " + loc.Name
}

// ParseKey is the inverse of Key for a location whose router is already
// known: checkpoints serialize locations as their canonical key string, and
// restore recovers the struct. The parse is exact for every Key output —
// the router prefix is supplied, the level word contains no space, and
// everything after it is the name verbatim.
func ParseKey(router, key string) (Location, error) {
	if key == router {
		return RouterLoc(router), nil
	}
	rest, ok := strings.CutPrefix(key, router+" ")
	if !ok {
		return Location{}, fmt.Errorf("locdict: location key %q does not extend router %q", key, router)
	}
	word, name, _ := strings.Cut(rest, " ")
	var lvl Level
	switch word {
	case "interface":
		lvl = LevelInterface
	case "port":
		lvl = LevelPort
	case "slot":
		lvl = LevelSlot
	default:
		return Location{}, fmt.Errorf("locdict: location key %q has unknown level %q", key, word)
	}
	return Location{Router: router, Level: lvl, Name: name}, nil
}

// RouterLoc builds a router-level location.
func RouterLoc(router string) Location {
	return Location{Router: router, Level: LevelRouter}
}

// IntfLoc builds an interface-level location.
func IntfLoc(router, intf string) Location {
	return Location{Router: router, Level: LevelInterface, Name: intf}
}

// Intf describes one configured interface and its position in the
// hierarchy.
type Intf struct {
	Name    string
	IP      string
	Port    string   // "slot/port" position, "" for logical/loopback
	Slot    int      // -1 when unknown (logical interfaces, loopbacks)
	Bundle  string   // parent bundle interface, "" if none
	Members []string // member interfaces when this is a bundle
	// Peer identifies the far end when this interface terminates an
	// inferred link; empty when not a link endpoint.
	PeerRouter string
	PeerIntf   string
}

// RouterDict is one router's slice of the dictionary.
type RouterDict struct {
	Name   string
	Region string
	Vendor syslogmsg.Vendor
	intfs  map[string]*Intf // key: lower-cased interface name
	byIP   map[string]string
	slots  map[int]bool
	ports  map[string]bool // "slot/port" positions seen on this router
}

// Intf returns the named interface (case-insensitive), or nil.
func (r *RouterDict) Intf(name string) *Intf {
	return r.intfs[strings.ToLower(name)]
}

// IntfByIP returns the interface owning ip, or nil.
func (r *RouterDict) IntfByIP(ip string) *Intf {
	name, ok := r.byIP[ip]
	if !ok {
		return nil
	}
	return r.Intf(name)
}

// HasSlot reports whether the slot number is configured on this router.
func (r *RouterDict) HasSlot(slot int) bool { return r.slots[slot] }

// HasPort reports whether the "slot/port" position is configured.
func (r *RouterDict) HasPort(port string) bool { return r.ports[port] }

// Interfaces returns all interfaces in arbitrary order.
func (r *RouterDict) Interfaces() []*Intf {
	out := make([]*Intf, 0, len(r.intfs))
	for _, i := range r.intfs {
		out = append(out, i)
	}
	return out
}

// Link is one inferred point-to-point adjacency.
type Link struct {
	A, B         string
	AIntf, BIntf string
}

// Session is one inferred BGP peering.
type Session struct {
	A, B     string
	AIP, BIP string
	VRF      string
}

// Path is one configured secondary path/tunnel between two routers.
type Path struct {
	A, B string
	Name string
	Hops []string
}

// Dictionary is the full location knowledge base.
type Dictionary struct {
	routers  map[string]*RouterDict
	links    []Link
	sessions []Session
	paths    []Path

	ipOwner map[string]ipRef // every configured IP → (router, intf)
	// connected indexes router-pair connectivity (links, sessions, paths)
	// by unordered router-pair key for O(1) Connected checks.
	connected map[string]bool
	// linkPeer maps "router|intf" (lower-cased) to the far end.
	linkPeer map[string]endpoint
	// sessionPeer maps "router|peerIP" to the peer router name.
	sessionPeer map[string]string

	// Spatial-match interning (built once at Build): every canonical
	// location gets a dense ID and a spatEntry with its interned ancestor
	// chain and bundle symbols, so SpatialMatch on two interned locations
	// is integer comparisons with no Ancestors allocation. Locations the
	// dictionary has never seen fall back to SpatialMatchLinear.
	spat     map[Location]int32
	spatEnt  []spatEntry
	spatLocs []Location       // id -> location, for the fill pass
	nameSym  map[string]int32 // lower-cased interface name -> symbol
}

// spatEntry is one interned location's precomputed match state.
type spatEntry struct {
	anc    [3]int32 // ancestor IDs, self excluded, coarser last
	nanc   int8     // live prefix of anc; -1 disables the fast path
	level  Level
	name   int32 // interface-name symbol, -1 unless interface-level
	bundle int32 // parent-bundle name symbol, -1 when none
}

type ipRef struct {
	Router string
	Intf   string
}

type endpoint struct {
	Router string
	Intf   string
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Routers returns the number of routers in the dictionary.
func (d *Dictionary) Routers() int { return len(d.routers) }

// Router returns the dictionary slice for a router, or nil.
func (d *Dictionary) Router(name string) *RouterDict { return d.routers[name] }

// HasRouter reports whether the router is known.
func (d *Dictionary) HasRouter(name string) bool { return d.routers[name] != nil }

// Region returns the configured region of a router ("" when unknown).
func (d *Dictionary) Region(router string) string {
	if r := d.routers[router]; r != nil {
		return r.Region
	}
	return ""
}

// Links returns all inferred links.
func (d *Dictionary) Links() []Link { return d.links }

// Sessions returns all inferred BGP sessions.
func (d *Dictionary) Sessions() []Session { return d.sessions }

// Paths returns all configured secondary paths.
func (d *Dictionary) Paths() []Path { return d.paths }

// ResolveIP returns the owner of a configured IP address.
func (d *Dictionary) ResolveIP(ip string) (router, intf string, ok bool) {
	ref, ok := d.ipOwner[ip]
	return ref.Router, ref.Intf, ok
}

// LinkPeer returns the far end of the link terminating at (router, intf).
func (d *Dictionary) LinkPeer(router, intf string) (peerRouter, peerIntf string, ok bool) {
	ep, ok := d.linkPeer[router+"|"+strings.ToLower(intf)]
	return ep.Router, ep.Intf, ok
}

// SessionPeer returns the router at the far end of the BGP session that
// (router) has with peerIP.
func (d *Dictionary) SessionPeer(router, peerIP string) (string, bool) {
	p, ok := d.sessionPeer[router+"|"+peerIP]
	return p, ok
}

// slotOfName extracts the slot number from an interface name, -1 when the
// name carries no physical position (Loopback0, Multilink3, lag-1, system).
func slotOfName(name string) (slot int, port string) {
	path := name
	if stem, p, ok := textutil.InterfaceStem(name); ok {
		if strings.EqualFold(stem, "Multilink") || strings.EqualFold(stem, "Loopback") ||
			strings.EqualFold(stem, "Tunnel") || strings.EqualFold(stem, "Bundle-Ether") ||
			strings.EqualFold(stem, "Vlan") || strings.EqualFold(stem, "Port-channel") {
			return -1, ""
		}
		path = p
	}
	segs := strings.Split(path, "/")
	if len(segs) < 2 {
		return -1, ""
	}
	// First segment must be purely numeric to be a slot.
	var s int
	if _, err := fmt.Sscanf(segs[0], "%d", &s); err != nil {
		return -1, ""
	}
	if fmt.Sprintf("%d", s) != segs[0] {
		return -1, ""
	}
	// Port = slot/second segment with any .sub/:chan tail stripped.
	second := segs[1]
	if i := strings.IndexAny(second, ".:"); i >= 0 {
		second = second[:i]
	}
	return s, segs[0] + "/" + second
}

// Build constructs the dictionary from parsed configs. Link inference pairs
// interfaces sharing a /30 (or smaller) subnet across two routers; session
// inference resolves BGP neighbor IPs against configured addresses; path
// inference resolves tunnel destination IPs.
func Build(configs []*netconf.Config) (*Dictionary, error) {
	d := &Dictionary{
		routers:     make(map[string]*RouterDict),
		ipOwner:     make(map[string]ipRef),
		connected:   make(map[string]bool),
		linkPeer:    make(map[string]endpoint),
		sessionPeer: make(map[string]string),
	}

	type subnetEnd struct {
		router, intf string
	}
	subnets := make(map[string][]subnetEnd)

	for _, cfg := range configs {
		if cfg.Hostname == "" {
			return nil, fmt.Errorf("locdict: config without hostname")
		}
		if d.routers[cfg.Hostname] != nil {
			return nil, fmt.Errorf("locdict: duplicate router %q", cfg.Hostname)
		}
		rd := &RouterDict{
			Name:   cfg.Hostname,
			Region: cfg.Region,
			Vendor: cfg.Vendor,
			intfs:  make(map[string]*Intf),
			byIP:   make(map[string]string),
			slots:  make(map[int]bool),
			ports:  make(map[string]bool),
		}
		d.routers[cfg.Hostname] = rd

		for i := range cfg.Interfaces {
			ic := &cfg.Interfaces[i]
			slot, port := slotOfName(ic.Name)
			info := &Intf{
				Name:   ic.Name,
				IP:     ic.IP,
				Slot:   slot,
				Port:   port,
				Bundle: ic.Bundle,
			}
			rd.intfs[strings.ToLower(ic.Name)] = info
			if slot >= 0 {
				rd.slots[slot] = true
			}
			if port != "" {
				rd.ports[port] = true
			}
			if ic.IP != "" {
				rd.byIP[ic.IP] = ic.Name
				if prev, dup := d.ipOwner[ic.IP]; dup {
					return nil, fmt.Errorf("locdict: IP %s configured on both %s/%s and %s/%s",
						ic.IP, prev.Router, prev.Intf, cfg.Hostname, ic.Name)
				}
				d.ipOwner[ic.IP] = ipRef{Router: cfg.Hostname, Intf: ic.Name}
				// Only numbered point-to-point interfaces participate in
				// link inference; loopbacks (/32) cannot pair.
				if ic.PrefixLen >= 24 && ic.PrefixLen < 32 {
					key, err := netconf.SubnetKey(ic.IP, ic.PrefixLen)
					if err != nil {
						return nil, fmt.Errorf("locdict: %s/%s: %v", cfg.Hostname, ic.Name, err)
					}
					subnets[key] = append(subnets[key], subnetEnd{cfg.Hostname, ic.Name})
				}
			}
		}
		// Controllers occupy physical positions too.
		for _, ctl := range cfg.Controllers {
			if i := strings.IndexByte(ctl.Path, '/'); i > 0 {
				var s int
				if _, err := fmt.Sscanf(ctl.Path[:i], "%d", &s); err == nil {
					rd.slots[s] = true
					rd.ports[ctl.Path] = true
				}
			}
		}
		// Wire bundle membership both directions.
		for _, info := range rd.intfs {
			if info.Bundle != "" {
				if parent := rd.Intf(info.Bundle); parent != nil {
					parent.Members = append(parent.Members, info.Name)
				}
			}
		}
	}

	// Link inference.
	for _, ends := range subnets {
		if len(ends) != 2 || ends[0].router == ends[1].router {
			continue
		}
		a, b := ends[0], ends[1]
		d.links = append(d.links, Link{A: a.router, AIntf: a.intf, B: b.router, BIntf: b.intf})
		d.connected[pairKey(a.router, b.router)] = true
		d.linkPeer[a.router+"|"+strings.ToLower(a.intf)] = endpoint{b.router, b.intf}
		d.linkPeer[b.router+"|"+strings.ToLower(b.intf)] = endpoint{a.router, a.intf}
		// Bundle members inherit the peering (a member flap is an event on
		// the same link).
		wireMembers := func(side subnetEnd, far endpoint) {
			rd := d.routers[side.router]
			if info := rd.Intf(side.intf); info != nil {
				info.PeerRouter, info.PeerIntf = far.Router, far.Intf
				for _, m := range info.Members {
					d.linkPeer[side.router+"|"+strings.ToLower(m)] = far
					if mi := rd.Intf(m); mi != nil {
						mi.PeerRouter, mi.PeerIntf = far.Router, far.Intf
					}
				}
			}
		}
		wireMembers(a, endpoint{b.router, b.intf})
		wireMembers(b, endpoint{a.router, a.intf})
	}

	// Session inference: a neighbor IP owned by another router forms a
	// session. Deduplicate by unordered pair + VRF.
	seenSess := make(map[string]bool)
	for _, cfg := range configs {
		for _, nb := range cfg.Neighbors {
			ref, ok := d.ipOwner[nb.IP]
			if !ok || ref.Router == cfg.Hostname {
				continue
			}
			key := pairKey(cfg.Hostname, ref.Router) + "|" + nb.VRF
			if seenSess[key] {
				continue
			}
			seenSess[key] = true
			var localIP string
			if lb := cfg.Loopback(); lb != nil {
				localIP = lb.IP
			}
			d.sessions = append(d.sessions, Session{
				A: cfg.Hostname, B: ref.Router, AIP: localIP, BIP: nb.IP, VRF: nb.VRF,
			})
			d.connected[pairKey(cfg.Hostname, ref.Router)] = true
			d.sessionPeer[cfg.Hostname+"|"+nb.IP] = ref.Router
			if localIP != "" {
				d.sessionPeer[ref.Router+"|"+localIP] = cfg.Hostname
			}
		}
	}

	pathsFromTunnels(d, configs)

	d.buildSpatialIndex()
	return d, nil
}

// pathsFromTunnels infers configured secondary paths.
func pathsFromTunnels(d *Dictionary, configs []*netconf.Config) {
	// Path inference from tunnels.
	seenPath := make(map[string]bool)
	for _, cfg := range configs {
		for _, t := range cfg.Tunnels {
			ref, ok := d.ipOwner[t.DestinationIP]
			if !ok || ref.Router == cfg.Hostname {
				continue
			}
			key := pairKey(cfg.Hostname, ref.Router)
			if seenPath[key+"|"+t.Name] {
				continue
			}
			seenPath[key+"|"+t.Name] = true
			d.paths = append(d.paths, Path{A: cfg.Hostname, B: ref.Router, Name: t.Name, Hops: t.Hops})
			d.connected[key] = true
			// Intermediate hops participate in the path too: a failure on a
			// hop router can be part of the same event.
			for _, h := range t.Hops {
				d.connected[pairKey(cfg.Hostname, h)] = true
				d.connected[pairKey(ref.Router, h)] = true
			}
		}
	}
}

// buildSpatialIndex interns every canonical location the dictionary can
// produce (router, slot, port, and interface levels, plus any ancestor
// locations those generate) and precomputes each one's ancestor-ID chain
// and bundle symbols. Derived state only: rebuildable from the maps above,
// never serialized.
func (d *Dictionary) buildSpatialIndex() {
	d.spat = make(map[Location]int32)
	d.nameSym = make(map[string]int32)
	for _, rd := range d.routers {
		d.intern(RouterLoc(rd.Name))
		for s := range rd.slots {
			d.intern(Location{Router: rd.Name, Level: LevelSlot, Name: strconv.Itoa(s)})
		}
		for p := range rd.ports {
			d.intern(Location{Router: rd.Name, Level: LevelPort, Name: p})
		}
		for _, info := range rd.intfs {
			d.intern(IntfLoc(rd.Name, info.Name))
		}
	}
	// Fill pass: resolving ancestors may intern further locations (a port
	// name derived from an interface that no config listed directly), so
	// iterate by index over the growing table.
	for id := 0; id < len(d.spatLocs); id++ {
		loc := d.spatLocs[id]
		e := spatEntry{level: loc.Level, name: -1, bundle: -1}
		chain := d.Ancestors(loc)
		if len(chain)-1 > len(e.anc) {
			e.nanc = -1 // cannot happen by construction; stay exact if it does
		} else {
			for _, a := range chain[1:] {
				e.anc[e.nanc] = d.intern(a)
				e.nanc++
			}
		}
		if loc.Level == LevelInterface {
			e.name = d.symbol(strings.ToLower(loc.Name))
			if rd := d.routers[loc.Router]; rd != nil {
				if info := rd.Intf(loc.Name); info != nil && info.Bundle != "" {
					e.bundle = d.symbol(strings.ToLower(info.Bundle))
				}
			}
		}
		d.spatEnt[id] = e
	}
}

// intern assigns (or returns) the dense ID for a location.
func (d *Dictionary) intern(loc Location) int32 {
	if id, ok := d.spat[loc]; ok {
		return id
	}
	id := int32(len(d.spatLocs))
	d.spat[loc] = id
	d.spatLocs = append(d.spatLocs, loc)
	d.spatEnt = append(d.spatEnt, spatEntry{name: -1, bundle: -1})
	return id
}

// symbol assigns (or returns) the dense symbol for a lower-cased name.
func (d *Dictionary) symbol(s string) int32 {
	if sym, ok := d.nameSym[s]; ok {
		return sym
	}
	sym := int32(len(d.nameSym))
	d.nameSym[s] = sym
	return sym
}
