package locdict

import (
	"fmt"
	"strconv"
	"strings"
)

// Ancestors returns the chain from loc up to its router, starting with loc
// itself. For an interface with a known physical position the chain is
// interface → port → slot → router; logical interfaces (bundles, loopbacks)
// go straight to the router unless their bundle members pin them to
// hardware, in which case the first member's position is used (the paper
// maps logical configuration onto the physical hierarchy, Figure 3).
func (d *Dictionary) Ancestors(loc Location) []Location {
	out := []Location{loc}
	if loc.Level == LevelRouter {
		return out
	}
	rd := d.routers[loc.Router]
	switch loc.Level {
	case LevelInterface:
		var slot int = -1
		var port string
		if rd != nil {
			if info := rd.Intf(loc.Name); info != nil {
				slot, port = info.Slot, info.Port
				if slot < 0 && len(info.Members) > 0 {
					if mi := rd.Intf(info.Members[0]); mi != nil {
						slot, port = mi.Slot, mi.Port
					}
				}
			}
		}
		if slot < 0 {
			// Fall back to parsing the name directly; messages can mention
			// interfaces that exist on the router but not in our configs.
			slot, port = slotOfName(loc.Name)
		}
		if port != "" {
			out = append(out, Location{Router: loc.Router, Level: LevelPort, Name: port})
		}
		if slot >= 0 {
			out = append(out, Location{Router: loc.Router, Level: LevelSlot, Name: strconv.Itoa(slot)})
		}
	case LevelPort:
		if i := strings.IndexByte(loc.Name, '/'); i > 0 {
			out = append(out, Location{Router: loc.Router, Level: LevelSlot, Name: loc.Name[:i]})
		}
	case LevelSlot:
		// nothing between slot and router
	}
	out = append(out, RouterLoc(loc.Router))
	return out
}

// SpatialMatch reports whether two locations are "spatially matched" in the
// paper's sense: one can be mapped upward in the hierarchy to the other.
// Equal locations match; a slot matches every interface in it; a router-
// level location matches everything on that router; two members of the same
// bundle match each other (they are the same logical link). Two *different*
// interfaces on the same slot do NOT match — without the ancestor
// relationship there is no evidence they share a condition.
//
// When both locations were interned at Build (every location Normalize can
// return is), the match runs on precomputed ancestor IDs and bundle
// symbols — integer comparisons, no allocation. Anything else falls back to
// SpatialMatchLinear, the retained reference implementation.
func (d *Dictionary) SpatialMatch(a, b Location) bool {
	if a.Router != b.Router {
		return false
	}
	if a == b {
		return true
	}
	ia, ok := d.spat[a]
	if !ok {
		return d.SpatialMatchLinear(a, b)
	}
	ib, ok := d.spat[b]
	if !ok {
		return d.SpatialMatchLinear(a, b)
	}
	ea, eb := &d.spatEnt[ia], &d.spatEnt[ib]
	if ea.nanc < 0 || eb.nanc < 0 {
		return d.SpatialMatchLinear(a, b)
	}
	for _, x := range ea.anc[:ea.nanc] {
		if x == ib {
			return true
		}
	}
	for _, x := range eb.anc[:eb.nanc] {
		if x == ia {
			return true
		}
	}
	if ea.level == LevelInterface && eb.level == LevelInterface {
		if ea.bundle >= 0 && ea.bundle == eb.name {
			return true
		}
		if eb.bundle >= 0 && eb.bundle == ea.name {
			return true
		}
		if ea.bundle >= 0 && ea.bundle == eb.bundle {
			return true
		}
	}
	return false
}

// SpatialMatchLinear is the original chain-walking implementation of
// SpatialMatch, retained as the differential reference for the interned
// fast path (the MatchTokensLinear precedent) and as the fallback for
// locations the dictionary never interned.
func (d *Dictionary) SpatialMatchLinear(a, b Location) bool {
	if a.Router != b.Router {
		return false
	}
	if a == b {
		return true
	}
	achain := d.Ancestors(a)
	bchain := d.Ancestors(b)
	// One is an ancestor of the other.
	for _, x := range achain[1:] {
		if x == b {
			return true
		}
	}
	for _, x := range bchain[1:] {
		if x == a {
			return true
		}
	}
	// Bundle siblings / bundle-member relationships collapse to the same
	// logical interface.
	if a.Level == LevelInterface && b.Level == LevelInterface {
		if rd := d.routers[a.Router]; rd != nil {
			ai, bi := rd.Intf(a.Name), rd.Intf(b.Name)
			if ai != nil && bi != nil {
				ab, bb := ai.Bundle, bi.Bundle
				if ab != "" && strings.EqualFold(ab, b.Name) {
					return true
				}
				if bb != "" && strings.EqualFold(bb, a.Name) {
					return true
				}
				if ab != "" && strings.EqualFold(ab, bb) {
					return true
				}
			}
		}
	}
	return false
}

// Connected reports whether two locations on different routers are directly
// connected: the two routers share a link, BGP session, or configured path,
// and — when both locations are interface-level link endpoints — the
// interfaces are the two ends of the same link. Same-router pairs are never
// "connected"; use SpatialMatch for those.
func (d *Dictionary) Connected(a, b Location) bool {
	if a.Router == b.Router {
		return false
	}
	if !d.connected[pairKey(a.Router, b.Router)] {
		return false
	}
	// If both are interface-level and each terminates a link, require the
	// link to be the same one; otherwise router-pair connectivity suffices.
	if a.Level == LevelInterface && b.Level == LevelInterface {
		pa, pai, aok := d.LinkPeer(a.Router, a.Name)
		pb, pbi, bok := d.LinkPeer(b.Router, b.Name)
		if aok && bok {
			aMatches := pa == b.Router && d.sameOrBundle(b.Router, pai, b.Name)
			bMatches := pb == a.Router && d.sameOrBundle(a.Router, pbi, a.Name)
			return aMatches || bMatches
		}
	}
	return true
}

// sameOrBundle reports whether two interface names on one router refer to
// the same logical interface (equal, or one is a bundle containing the
// other).
func (d *Dictionary) sameOrBundle(router, x, y string) bool {
	if strings.EqualFold(x, y) {
		return true
	}
	rd := d.routers[router]
	if rd == nil {
		return false
	}
	xi, yi := rd.Intf(x), rd.Intf(y)
	if xi != nil && xi.Bundle != "" && strings.EqualFold(xi.Bundle, y) {
		return true
	}
	if yi != nil && yi.Bundle != "" && strings.EqualFold(yi.Bundle, x) {
		return true
	}
	if xi != nil && yi != nil && xi.Bundle != "" && strings.EqualFold(xi.Bundle, yi.Bundle) {
		return true
	}
	return false
}

// CommonAncestor returns the finest location that both a and b map up to,
// with ok=false when they share nothing below "different routers".
func (d *Dictionary) CommonAncestor(a, b Location) (Location, bool) {
	if a.Router != b.Router {
		return Location{}, false
	}
	bset := make(map[Location]bool)
	for _, x := range d.Ancestors(b) {
		bset[x] = true
	}
	for _, x := range d.Ancestors(a) {
		if bset[x] {
			return x, true
		}
	}
	return RouterLoc(a.Router), true
}

// Normalize resolves a raw location token extracted from a message on the
// given router into a dictionary-grounded Location. It accepts interface
// names ("Serial1/0.10/10:0"), bare port paths ("1/1/1" — a V2 interface or
// a V1 port), slot numbers, and IP addresses owned by the router. Unknown
// tokens yield ok=false.
func (d *Dictionary) Normalize(router, token string) (Location, bool) {
	rd := d.routers[router]
	if rd == nil {
		return Location{}, false
	}
	// Exact interface name (either vendor).
	if info := rd.Intf(token); info != nil {
		return IntfLoc(router, info.Name), true
	}
	// IP address owned by this router.
	if name, ok := rd.byIP[token]; ok {
		return IntfLoc(router, name), true
	}
	// Channelized sub-interface of a configured interface: strip tails
	// until something matches ("Serial1/0.10/10:0" may be logged when only
	// "Serial1/0" is in the config, or vice versa we may know the longer
	// name). Try progressively shorter prefixes at separator boundaries.
	if loc, ok := d.prefixIntf(rd, token); ok {
		return loc, ok
	}
	// Bare slot number.
	if n, ok := atoiNoAlloc(token); ok && rd.HasSlot(n) {
		return Location{Router: router, Level: LevelSlot, Name: token}, true
	}
	// Bare port path like "1/0" or "1/1/1": V2 interfaces are named this
	// way (handled above); otherwise it must name a port position the
	// dictionary knows about — random X/Y-shaped values (PIDs, ratios) do
	// not resolve.
	if i := strings.IndexByte(token, '/'); i > 0 {
		second := token[i+1:]
		if j := strings.IndexAny(second, "/.:"); j >= 0 {
			second = second[:j]
		}
		if _, ok := atoiNoAlloc(second); ok {
			port := token[:i] + "/" + second
			if rd.HasPort(port) {
				return Location{Router: router, Level: LevelPort, Name: port}, true
			}
		}
	}
	return Location{}, false
}

// atoiNoAlloc parses a non-negative decimal integer without the error
// allocation strconv.Atoi pays on non-numeric input — most tokens probed by
// Normalize are not numbers, so the rejection path is the hot path.
func atoiNoAlloc(s string) (int, bool) {
	if len(s) > 0 && s[0] == '+' {
		s = s[1:]
	}
	if len(s) == 0 || len(s) > 18 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// prefixIntf matches a token against configured interfaces by prefix at
// separator boundaries, in both directions.
func (d *Dictionary) prefixIntf(rd *RouterDict, token string) (Location, bool) {
	lt := strings.ToLower(token)
	best := ""
	for name := range rd.intfs {
		if len(name) < len(lt) {
			// Config name shorter: token must extend it at a separator.
			if strings.HasPrefix(lt, name) && isSep(lt[len(name)]) && len(name) > len(best) {
				best = name
			}
		} else if len(name) > len(lt) {
			// Config name longer: token is a truncation at a separator.
			if strings.HasPrefix(name, lt) && isSep(name[len(lt)]) && len(name) > len(best) {
				best = name
			}
		}
	}
	if best == "" {
		return Location{}, false
	}
	return IntfLoc(rd.Name, rd.intfs[best].Name), true
}

func isSep(c byte) bool { return c == '.' || c == ':' || c == '/' }

// HighestCommonLoc returns, for a set of locations on one router, the
// highest-level (coarsest) location present — used by presentation, which
// shows "the most common highest level location" per router.
func HighestCommonLoc(locs []Location) (Location, error) {
	if len(locs) == 0 {
		return Location{}, fmt.Errorf("locdict: no locations")
	}
	best := locs[0]
	for _, l := range locs[1:] {
		if l.Router != best.Router {
			return Location{}, fmt.Errorf("locdict: locations span routers %s and %s", best.Router, l.Router)
		}
		if l.Level > best.Level {
			best = l
		}
	}
	return best, nil
}
