// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) and application section (§6) against generated datasets.
// Each experiment is one function returning typed rows; render.go formats
// them in the paper's layout. DESIGN.md carries the experiment index and
// EXPERIMENTS.md the measured-vs-paper comparison.
//
// Scale substitution: the paper learns on three months of data and digests
// two weeks, over networks of thousands of routers producing millions of
// messages per day. The profiles below scale that to laptop size — tens of
// routers, days of simulated traffic — while keeping the *relational*
// structure (per-condition message bursts, timer periods, co-occurrence
// delays) intact, which is what every mined quantity depends on. "Week"
// granularity for rule evolution is likewise compressed to WeekDuration of
// simulated traffic per update period.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"syslogdigest/internal/core"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/temporal"
)

// Profile fixes the scale of one experiment run.
type Profile struct {
	Name           string
	Routers        int
	LearnDuration  time.Duration
	OnlineDuration time.Duration
	RateScale      float64
	Seed           int64
	Weeks          int           // rule-evolution periods (paper: 12)
	WeekDuration   time.Duration // simulated traffic per "week"
	// Parallelism is the worker fan-out for learning and digesting (0 =
	// GOMAXPROCS, 1 = serial). Every measured quantity is byte-identical
	// at any setting; only wall-clock changes.
	Parallelism int
}

// SmallProfile is the test/bench default: seconds of wall-clock per
// experiment.
func SmallProfile() Profile {
	return Profile{
		Name:           "small",
		Routers:        20,
		LearnDuration:  48 * time.Hour,
		OnlineDuration: 48 * time.Hour,
		RateScale:      0.4,
		Seed:           42,
		Weeks:          6,
		WeekDuration:   12 * time.Hour,
	}
}

// FullProfile is cmd/sdbench's default: the closest laptop-scale analog of
// the paper's setup (12 weekly updates, 14 online days).
func FullProfile() Profile {
	return Profile{
		Name:           "full",
		Routers:        80,
		LearnDuration:  6 * 24 * time.Hour,
		OnlineDuration: 14 * 24 * time.Hour,
		RateScale:      1,
		Seed:           42,
		Weeks:          12,
		WeekDuration:   24 * time.Hour,
	}
}

// ParamsFor returns the paper's Table 6 parameters for a dataset.
func ParamsFor(kind gen.DatasetKind) core.Params {
	p := core.DefaultParams()
	if kind == gen.DatasetB {
		p.Temporal.Alpha = 0.075
		p.Rules.Window = 40 * time.Second
	}
	return p
}

// Corpus bundles everything one dataset's experiments need: the learning
// and online periods plus the knowledge base learned from the former.
type Corpus struct {
	Kind    gen.DatasetKind
	Profile Profile
	Learn   *gen.Dataset
	Online  *gen.Dataset
	KB      *core.KnowledgeBase
	// LearnPlus is the augmented learning corpus (computed once).
	LearnPlus []core.PlusMessage
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[string]*Corpus{}
)

// Load generates (or returns the cached) corpus for a dataset and profile.
// The online period starts three months after the learning period and uses
// a distinct seed, mirroring the paper's Sep–Nov training / Dec 1–14
// reporting split.
func Load(kind gen.DatasetKind, p Profile) (*Corpus, error) {
	key := fmt.Sprintf("%v|%s|%d|%d|%d|%f|%d|%d", kind, p.Name, p.Routers,
		p.LearnDuration, p.OnlineDuration, p.RateScale, p.Seed, p.Parallelism)
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if c, ok := corpusCache[key]; ok {
		return c, nil
	}

	learn, err := gen.Generate(gen.Spec{
		Kind: kind, Routers: p.Routers, Seed: p.Seed,
		Start:    time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC),
		Duration: p.LearnDuration, RateScale: p.RateScale,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: learning corpus: %w", err)
	}
	online, err := gen.Generate(gen.Spec{
		Kind: kind, Routers: p.Routers, Seed: p.Seed + 1000,
		Start:    time.Date(2009, 12, 1, 0, 0, 0, 0, time.UTC),
		Duration: p.OnlineDuration, RateScale: p.RateScale,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: online corpus: %w", err)
	}
	params := ParamsFor(kind)
	params.Parallelism = p.Parallelism
	kb, err := core.NewLearner(params).Learn(learn.Messages, learn.Net.Configs)
	if err != nil {
		return nil, fmt.Errorf("experiments: learning: %w", err)
	}
	c := &Corpus{
		Kind: kind, Profile: p, Learn: learn, Online: online, KB: kb,
		LearnPlus: kb.AugmentAll(learn.Messages),
	}
	corpusCache[key] = c
	return c, nil
}

// Storm generates a message-storm corpus over the same topology as the
// learning period (same kind, router count, and seed, so the knowledge
// base's dictionary applies): moderate link/BGP/tunnel flap episodes
// riding on an order-of-magnitude noise and periodic-message flood — the
// regime the paper's operators actually page on, and the worst case for
// any per-window scan. Rates scale with the profile's router count.
func (c *Corpus) Storm() (*gen.Dataset, error) {
	scale := float64(c.Profile.Routers) / 16
	r := func(v float64) float64 { return v * scale }
	return gen.Generate(gen.Spec{
		Kind: c.Kind, Routers: c.Profile.Routers, Seed: c.Profile.Seed,
		Start:    time.Date(2009, 12, 20, 0, 0, 0, 0, time.UTC),
		Duration: 6 * time.Hour,
		Rates: gen.Rates{
			LinkFlap: r(40), Controller: r(6), BGPFlap: r(20), CPUSpike: r(60),
			PeriodicMsg: r(12000), Noise: r(2400000), Config: r(60),
			EnvAlarm: r(24), TunnelFlap: r(15),
		},
	})
}

// StormParams are the digest parameters for the storm corpus: the learned
// knowledge with a widened rule window and a raised scan cap, so the join
// windows hold the storm instead of trimming to the newest burst.
func StormParams(p core.Params) core.Params {
	p.Rules.Window = 600 * time.Second
	p.MaxScan = 4096
	return p
}

// ruleEvents projects the cached augmented learning corpus for mining.
func (c *Corpus) ruleEvents() []rules.Event {
	return core.RuleEvents(c.LearnPlus)
}

// learnStreams returns the per-(template, location) arrival streams of the
// learning corpus (temporal calibration input).
func (c *Corpus) learnStreams() [][]time.Time {
	return core.TemporalStreams(c.LearnPlus)
}

// onlineStreams returns the streams of the online corpus.
func (c *Corpus) onlineStreams() [][]time.Time {
	return core.TemporalStreams(c.KB.AugmentAll(c.Online.Messages))
}

// baseTemporal returns the corpus's normalized temporal parameters.
func (c *Corpus) baseTemporal() temporal.Params {
	return c.KB.Params.Temporal
}
