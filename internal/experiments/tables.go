package experiments

import (
	"fmt"
	"time"

	"syslogdigest/internal/core"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/temporal"
)

// Table5Row is one row of the paper's Table 5: for an SPmin, the share of
// template types eligible for mining and the share of messages they cover.
type Table5Row struct {
	SPmin       float64
	TopTypePct  float64
	CoveragePct float64
}

// Table5SPmins are the paper's three settings.
var Table5SPmins = []float64{0.001, 0.0005, 0.0001}

// Table5 computes support sensitivity on the learning corpus.
func Table5(c *Corpus) ([]Table5Row, error) {
	cfg := ParamsFor(c.Kind).Rules
	cfg.SPmin = 1e-9 // mine everything; the profile applies thresholds after
	res, err := rules.Mine(c.ruleEvents(), cfg)
	if err != nil {
		return nil, err
	}
	msgCount := make(map[int]int)
	for i := range c.LearnPlus {
		msgCount[c.LearnPlus[i].Template]++
	}
	rows := make([]Table5Row, 0, len(Table5SPmins))
	for _, sp := range Table5SPmins {
		p := res.Profile(sp, msgCount)
		rows = append(rows, Table5Row{SPmin: sp, TopTypePct: p.TopTypePct, CoveragePct: p.CoveragePct})
	}
	return rows, nil
}

// Table6Row reports a dataset's chosen parameters (the paper's Table 6).
type Table6Row struct {
	Dataset string
	Alpha   float64
	Beta    float64
	W       time.Duration
	SPmin   float64
	ConfMin float64
}

// Table6 reports the parameters in use, with alpha and beta re-derived by
// the §5.2.3 calibration sweep over the learning streams (so the table is
// an output of the system, not an input).
func Table6(c *Corpus) (Table6Row, error) {
	alphas := []float64{0.025, 0.05, 0.075, 0.1, 0.2}
	betas := []float64{2, 3, 4, 5, 6, 7}
	best, err := temporal.Calibrate(c.learnStreams(), alphas, betas, c.baseTemporal())
	if err != nil {
		return Table6Row{}, err
	}
	p := ParamsFor(c.Kind)
	return Table6Row{
		Dataset: c.Kind.String(),
		Alpha:   best.Alpha,
		Beta:    best.Beta,
		W:       p.Rules.Window,
		SPmin:   p.Rules.SPmin,
		ConfMin: p.Rules.ConfMin,
	}, nil
}

// Table7Row is one row of Table 7: the compression ratio after each
// grouping stage.
type Table7Row struct {
	Stage  string
	Events int
	Ratio  float64
}

// Table7 runs the online pipeline at each stage over the online corpus.
func Table7(c *Corpus) ([]Table7Row, error) {
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return nil, err
	}
	stages := []struct {
		name string
		s    core.Stage
	}{
		{"T", core.StageTemporal},
		{"T+R", core.StageTemporalRules},
		{"T+R+C", core.StageFull},
	}
	rows := make([]Table7Row, 0, len(stages))
	for _, st := range stages {
		d.SetStage(st.s)
		res, err := d.Digest(c.Online.Messages)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table7Row{Stage: st.name, Events: len(res.Events), Ratio: res.CompressionRatio()})
	}
	return rows, nil
}

// TemplateAccuracyResult is the §5.2.1 validation outcome.
type TemplateAccuracyResult struct {
	Dataset  string
	Learned  int
	Truth    int
	Matched  int
	Accuracy float64
}

// TemplateAccuracy compares learned templates against the generator's
// ground truth.
func TemplateAccuracy(c *Corpus) TemplateAccuracyResult {
	truth := gen.GroundTruthTemplates(c.Kind)
	matched := 0
	for _, g := range truth {
		for _, l := range c.KB.Templates {
			if l.Equal(g) {
				matched++
				break
			}
		}
	}
	r := TemplateAccuracyResult{
		Dataset: c.Kind.String(),
		Learned: len(c.KB.Templates),
		Truth:   len(truth),
		Matched: matched,
	}
	if r.Truth > 0 {
		r.Accuracy = float64(r.Matched) / float64(r.Truth)
	}
	return r
}

// String renders the accuracy result.
func (r TemplateAccuracyResult) String() string {
	return fmt.Sprintf("dataset %s: %d/%d ground-truth templates matched (%.1f%%), %d learned",
		r.Dataset, r.Matched, r.Truth, r.Accuracy*100, r.Learned)
}
