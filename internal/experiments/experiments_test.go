package experiments

import (
	"testing"
	"time"

	"syslogdigest/internal/gen"
)

// Both corpora are cached by Load, so the whole file pays generation and
// learning once per dataset.

func corpus(t *testing.T, kind gen.DatasetKind) *Corpus {
	t.Helper()
	c, err := Load(kind, SmallProfile())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLoadCaches(t *testing.T) {
	a := corpus(t, gen.DatasetA)
	b := corpus(t, gen.DatasetA)
	if a != b {
		t.Fatal("Load did not cache")
	}
	if a.Kind != gen.DatasetA || len(a.Learn.Messages) == 0 || len(a.Online.Messages) == 0 {
		t.Fatal("corpus malformed")
	}
}

func TestTable5Shape(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		rows, err := Table5(corpus(t, kind))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("rows = %d", len(rows))
		}
		// Lower SPmin admits more types and covers at least as many
		// messages; even the strictest keeps coverage near-total (the
		// paper's point: a few chatty types carry almost all messages).
		for i := 1; i < len(rows); i++ {
			if rows[i].SPmin >= rows[i-1].SPmin {
				t.Fatal("rows not ordered by decreasing SPmin")
			}
			if rows[i].TopTypePct < rows[i-1].TopTypePct-1e-12 {
				t.Fatalf("type share not monotone: %+v", rows)
			}
			if rows[i].CoveragePct < rows[i-1].CoveragePct-1e-12 {
				t.Fatalf("coverage not monotone: %+v", rows)
			}
		}
		if rows[0].CoveragePct < 0.95 {
			t.Fatalf("dataset %v: strictest SPmin coverage %.3f, want >= 0.95", kind, rows[0].CoveragePct)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6(corpus(t, gen.DatasetA))
	if err != nil {
		t.Fatal(err)
	}
	// Within one SPmin, rules decrease (weakly) as Confmin rises.
	bySP := make(map[float64][]Figure6Row)
	for _, r := range rows {
		bySP[r.SPmin] = append(bySP[r.SPmin], r)
	}
	if len(bySP) != 3 {
		t.Fatalf("SPmin series = %d", len(bySP))
	}
	for sp, series := range bySP {
		for i := 1; i < len(series); i++ {
			if series[i].Rules > series[i-1].Rules {
				t.Fatalf("SPmin %g: rules grew with Confmin: %+v", sp, series)
			}
		}
		if series[0].Rules == 0 {
			t.Fatalf("SPmin %g mined no rules at Confmin 0.5", sp)
		}
	}
	// Higher SPmin yields (weakly) fewer rules at equal Confmin.
	for i := range Figure6ConfMins {
		a := bySP[0.001][i].Rules
		b := bySP[0.0001][i].Rules
		if a > b {
			t.Fatalf("stricter SPmin mined more rules at Confmin %v", Figure6ConfMins[i])
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		rows, err := Figure7(corpus(t, kind))
		if err != nil {
			t.Fatal(err)
		}
		// Rule count grows (weakly) with W...
		for i := 1; i < len(rows); i++ {
			if rows[i].Rules < rows[i-1].Rules {
				t.Fatalf("dataset %v: rules shrank as W grew: %+v", kind, rows)
			}
		}
		// ...and the growth rate diminishes: rules gained per second after
		// the knee is well below the rate before it (knee: 120s for A, 40s
		// for B).
		knee := 120.0
		if kind == gen.DatasetB {
			knee = 40.0
		}
		var atKnee, last Figure7Row
		for _, r := range rows {
			if r.W.Seconds() <= knee {
				atKnee = r
			}
			last = r
		}
		first := rows[0]
		before := float64(atKnee.Rules-first.Rules) / (atKnee.W.Seconds() - first.W.Seconds())
		after := float64(last.Rules-atKnee.Rules) / (last.W.Seconds() - atKnee.W.Seconds())
		if atKnee.Rules == 0 {
			t.Fatalf("dataset %v: no rules at the knee", kind)
		}
		if after >= before {
			t.Fatalf("dataset %v: rule growth did not diminish after %vs (before=%.3f/s after=%.3f/s)",
				kind, knee, before, after)
		}
	}
}

func TestRuleEvolutionStabilizes(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		rows, err := RuleEvolution(corpus(t, kind))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != corpus(t, kind).Profile.Weeks-1 {
			t.Fatalf("weeks = %d", len(rows))
		}
		// Churn in the final week is small relative to the base.
		final := rows[len(rows)-1]
		if final.Total == 0 {
			t.Fatalf("dataset %v: empty rule base after evolution", kind)
		}
		churn := float64(final.Added+final.Deleted) / float64(final.Total)
		if churn > 0.6 {
			t.Fatalf("dataset %v: final churn %.2f too high: %+v", kind, churn, rows)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		pts, err := Figure10(corpus(t, kind))
		if err != nil {
			t.Fatal(err)
		}
		// The best alpha is small (paper: 0.05 / 0.075), and the largest
		// alpha is strictly worse than the best.
		best := pts[0]
		for _, p := range pts {
			if p.Ratio < best.Ratio {
				best = p
			}
		}
		if best.Alpha > 0.2 {
			t.Fatalf("dataset %v: best alpha %v, want small", kind, best.Alpha)
		}
		last := pts[len(pts)-1]
		if last.Ratio <= best.Ratio {
			t.Fatalf("dataset %v: alpha=%v not worse than best: %v <= %v",
				kind, last.Alpha, last.Ratio, best.Ratio)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		pts, err := Figure11(corpus(t, kind))
		if err != nil {
			t.Fatal(err)
		}
		// Ratio decreases with beta, with diminishing improvement.
		for i := 1; i < len(pts); i++ {
			if pts[i].Ratio > pts[i-1].Ratio {
				t.Fatalf("dataset %v: ratio rose with beta: %+v", kind, pts)
			}
		}
		firstGain := pts[0].Ratio - pts[1].Ratio
		lastGain := pts[len(pts)-2].Ratio - pts[len(pts)-1].Ratio
		if lastGain > firstGain {
			t.Fatalf("dataset %v: improvement did not diminish: %+v", kind, pts)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		rows, err := Table7(corpus(t, kind))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("rows = %d", len(rows))
		}
		if !(rows[0].Ratio > rows[1].Ratio && rows[1].Ratio > rows[2].Ratio) {
			t.Fatalf("dataset %v: stages not strictly improving: %+v", kind, rows)
		}
		if rows[2].Ratio > 0.02 {
			t.Fatalf("dataset %v: full-pipeline ratio %.3e too weak", kind, rows[2].Ratio)
		}
	}
	// Dataset B compresses better than A, as in the paper.
	a, _ := Table7(corpus(t, gen.DatasetA))
	b, _ := Table7(corpus(t, gen.DatasetB))
	if b[2].Ratio >= a[2].Ratio {
		t.Fatalf("dataset B ratio %.3e not below A's %.3e", b[2].Ratio, a[2].Ratio)
	}
}

func TestFigure12Shape(t *testing.T) {
	rows, err := Figure12(corpus(t, gen.DatasetA))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no days")
	}
	for _, r := range rows {
		if r.Messages == 0 {
			t.Fatalf("day %d has no messages", r.Day)
		}
		ratio := float64(r.Events) / float64(r.Messages)
		if ratio > 0.05 {
			t.Fatalf("day %d ratio %.3e too weak", r.Day, ratio)
		}
		if r.ActiveRules == 0 {
			t.Fatalf("day %d used no rules", r.Day)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	rows, err := Figure13(corpus(t, gen.DatasetA))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("routers = %d", len(rows))
	}
	// Sorted by messages descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Messages > rows[i-1].Messages {
			t.Fatal("rows not sorted")
		}
	}
	// The paper's robust observation: routers with more messages compress
	// better. The busiest router's events/messages ratio must sit below
	// the network-wide per-router average ratio.
	var sumRatio float64
	n := 0
	for _, r := range rows {
		if r.Messages == 0 {
			continue
		}
		sumRatio += float64(r.Events) / float64(r.Messages)
		n++
	}
	if n == 0 {
		t.Fatal("no active routers")
	}
	avgRatio := sumRatio / float64(n)
	topRatio := float64(rows[0].Events) / float64(rows[0].Messages)
	if topRatio >= avgRatio {
		t.Fatalf("busiest router ratio %.3e not below average %.3e", topRatio, avgRatio)
	}
}

func TestTemplateAccuracyBand(t *testing.T) {
	a := TemplateAccuracy(corpus(t, gen.DatasetA))
	b := TemplateAccuracy(corpus(t, gen.DatasetB))
	if a.Accuracy < 0.6 || b.Accuracy < 0.6 {
		t.Fatalf("small-profile accuracy too low: A=%.2f B=%.2f", a.Accuracy, b.Accuracy)
	}
	if a.Accuracy > 1 || b.Accuracy > 1 {
		t.Fatal("accuracy above 1")
	}
}

func TestTicketValidation(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		tv, err := TicketValidation(corpus(t, kind))
		if err != nil {
			t.Fatal(err)
		}
		s := tv.Summary
		if s.Tickets == 0 {
			t.Fatalf("dataset %v: no tickets", kind)
		}
		// Every top ticket must match some event (the paper's "does not
		// miss important incidents"), and the bulk must sit high in the
		// ranking. Top-5% granularity is coarse at small scale, so the
		// assertion is on the worst matched rank.
		if s.Matched != s.Tickets {
			t.Fatalf("dataset %v: %d/%d top tickets unmatched", kind, s.Tickets-s.Matched, s.Tickets)
		}
		if s.WorstRankPct > 0.5 {
			t.Fatalf("dataset %v: worst matched rank %.2f beyond the top half", kind, s.WorstRankPct)
		}
	}
}

func TestFigures4And5(t *testing.T) {
	exs, err := Figures4And5(corpus(t, gen.DatasetA))
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) == 0 {
		t.Skip("no exemplar conditions at this seed")
	}
	for _, e := range exs {
		if len(e.Times) < 4 {
			t.Fatalf("exemplar %q too small", e.Kind)
		}
		if e.Groups <= 0 || e.Groups > len(e.Times) {
			t.Fatalf("exemplar %q groups = %d of %d", e.Kind, e.Groups, len(e.Times))
		}
		// Temporal grouping must compress the exemplar heavily.
		if float64(e.Groups)/float64(len(e.Times)) > 0.25 {
			t.Fatalf("exemplar %q barely grouped: %d/%d", e.Kind, e.Groups, len(e.Times))
		}
	}
}

func TestHealthMap(t *testing.T) {
	rows, err := HealthMap(corpus(t, gen.DatasetA), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty health map")
	}
	totalMsgs, totalEvents := 0, 0
	for _, r := range rows {
		totalMsgs += r.Messages
		totalEvents += r.Events
	}
	if totalMsgs == 0 {
		t.Fatal("busiest window has no messages")
	}
	if totalEvents >= totalMsgs {
		t.Fatal("events view not smaller than raw view")
	}
}

func TestAblationMasking(t *testing.T) {
	r := AblationMasking(corpus(t, gen.DatasetA))
	// Without masking, accuracy degrades (location values fragment
	// templates) — the design-choice justification.
	if r.WithoutMasking >= r.WithMasking {
		t.Fatalf("masking did not help: %+v", r)
	}
}

func TestAblationTemporal(t *testing.T) {
	r, err := AblationTemporal(corpus(t, gen.DatasetA))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fixed) == 0 || r.EWMARatio <= 0 {
		t.Fatalf("ablation malformed: %+v", r)
	}
	// The learned model beats comparable fixed windows (30s and 2m).
	for _, f := range r.Fixed[:2] {
		if r.EWMARatio >= f.Ratio {
			t.Fatalf("EWMA %.3e not better than fixed %v %.3e", r.EWMARatio, f.Window, f.Ratio)
		}
	}
}

func TestAblationDeletion(t *testing.T) {
	r, err := AblationDeletion(corpus(t, gen.DatasetA))
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.ConservativeTotals)
	if n == 0 || len(r.AggressiveTotals) != n {
		t.Fatalf("ablation malformed: %+v", r)
	}
	// Conservative retention keeps at least as many rules every period.
	for i := range r.ConservativeTotals {
		if r.ConservativeTotals[i] < r.AggressiveTotals[i] {
			t.Fatalf("conservative base smaller than aggressive at week %d: %+v", i+1, r)
		}
	}
}

func TestSeverityBaseline(t *testing.T) {
	r, err := SeverityBaseline(corpus(t, gen.DatasetA))
	if err != nil {
		t.Fatal(err)
	}
	// Severity filtering at the "important" level still keeps far more
	// lines than the digest has events — the paper's §2 argument.
	if r.Retention[3] <= r.DigestRatio {
		t.Fatalf("severity filter at 3 (%.3e) beat digest (%.3e)?", r.Retention[3], r.DigestRatio)
	}
	if r.Retention[5] < r.Retention[3] || r.Retention[3] < r.Retention[1] {
		t.Fatalf("retention not monotone in severity: %+v", r.Retention)
	}
}

func TestTable6(t *testing.T) {
	row, err := Table6(corpus(t, gen.DatasetA))
	if err != nil {
		t.Fatal(err)
	}
	if row.Alpha <= 0 || row.Alpha > 0.2 {
		t.Fatalf("calibrated alpha %v outside the small band", row.Alpha)
	}
	if row.Beta < 2 || row.Beta > 7 {
		t.Fatalf("calibrated beta %v outside grid", row.Beta)
	}
	if row.W.Seconds() != 120 || row.SPmin != 0.0005 || row.ConfMin != 0.8 {
		t.Fatalf("table row constants wrong: %+v", row)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	c := corpus(t, gen.DatasetA)
	t5, _ := Table5(c)
	t7, _ := Table7(c)
	f7, _ := Figure7(c)
	f12, _ := Figure12(c)
	f13, _ := Figure13(c)
	for name, s := range map[string]string{
		"table5":   RenderTable5("A", t5),
		"table7":   RenderTable7("A", t7),
		"figure7":  RenderFigure7("A", f7),
		"figure12": RenderFigure12("A", f12),
		"figure13": RenderFigure13("A", f13, 5),
	} {
		if len(s) < 40 {
			t.Errorf("renderer %s output too short: %q", name, s)
		}
	}
}

func TestTrendAudit(t *testing.T) {
	// The small profile's 2 online days are below the detector's minimum;
	// the function must say so rather than fabricate series.
	if _, err := TrendAudit(corpus(t, gen.DatasetA)); err == nil {
		t.Fatal("2-day online period accepted")
	}
	// A week-long low-rate corpus exercises the real comparison.
	p := SmallProfile()
	p.Name = "trend"
	p.OnlineDuration = 7 * 24 * time.Hour
	p.RateScale = 0.25
	c, err := Load(gen.DatasetA, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := TrendAudit(c)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: raw message counts fake at least as many behavior
	// changes as event counts show.
	if r.EventShifts > r.RawShifts {
		t.Fatalf("events (%d shifts) noisier than raw messages (%d)", r.EventShifts, r.RawShifts)
	}
}
