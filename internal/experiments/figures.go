package experiments

import (
	"sort"
	"time"

	"syslogdigest/internal/core"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/temporal"
)

// Figure6Row is one point of Figure 6: rules vs Confmin per SPmin, dataset
// A, W fixed at 60s.
type Figure6Row struct {
	SPmin   float64
	ConfMin float64
	Rules   int
}

// Figure6ConfMins is the paper's x-axis.
var Figure6ConfMins = []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9}

// Figure6 sweeps Confmin and SPmin at W=60s.
func Figure6(c *Corpus) ([]Figure6Row, error) {
	events := c.ruleEvents()
	var rows []Figure6Row
	for _, sp := range Table5SPmins {
		// One mining pass per (SPmin, ConfMin); counts are cheapest to
		// recompute from a low-threshold pass, but Mine is fast enough and
		// this keeps each point exactly the production code path.
		for _, cm := range Figure6ConfMins {
			cfg := ParamsFor(c.Kind).Rules
			cfg.Window = 60 * time.Second
			cfg.SPmin = sp
			cfg.ConfMin = cm
			res, err := rules.Mine(events, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Figure6Row{SPmin: sp, ConfMin: cm, Rules: len(res.Rules)})
		}
	}
	return rows, nil
}

// Figure7Row is one point of Figure 7: rules vs window size W.
type Figure7Row struct {
	W     time.Duration
	Rules int
}

// Figure7Windows is the paper's sweep range (5s–300s).
var Figure7Windows = []time.Duration{
	5 * time.Second, 10 * time.Second, 20 * time.Second, 30 * time.Second,
	40 * time.Second, 60 * time.Second, 90 * time.Second, 120 * time.Second,
	180 * time.Second, 240 * time.Second, 300 * time.Second,
}

// Figure7 sweeps W at Confmin=0.8, SPmin=0.0005.
func Figure7(c *Corpus) ([]Figure7Row, error) {
	events := c.ruleEvents()
	rows := make([]Figure7Row, 0, len(Figure7Windows))
	for _, w := range Figure7Windows {
		cfg := ParamsFor(c.Kind).Rules
		cfg.Window = w
		res, err := rules.Mine(events, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure7Row{W: w, Rules: len(res.Rules)})
	}
	return rows, nil
}

// WeekRow is one period of Figures 8/9: rule-base evolution under weekly
// incremental updates.
type WeekRow struct {
	Week    int
	Total   int
	Added   int
	Deleted int
}

// RuleEvolution runs Weeks periodic updates, each over WeekDuration of
// fresh traffic (week w uses seed Seed+w so weeks differ, as real weeks
// do). Week 1 initializes the base; rows cover weeks 2..Weeks as in the
// paper's figures.
func RuleEvolution(c *Corpus) ([]WeekRow, error) {
	p := c.Profile
	cfg := ParamsFor(c.Kind).Rules
	rb := rules.NewRuleBase()
	var rows []WeekRow
	start := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	for week := 1; week <= p.Weeks; week++ {
		ds, err := gen.Generate(gen.Spec{
			Kind: c.Kind, Routers: p.Routers, Seed: p.Seed + int64(week)*77,
			Start:    start.Add(time.Duration(week-1) * p.WeekDuration),
			Duration: p.WeekDuration, RateScale: p.RateScale,
		})
		if err != nil {
			return nil, err
		}
		plus := c.KB.AugmentAll(ds.Messages)
		res, err := rules.Mine(core.RuleEvents(plus), cfg)
		if err != nil {
			return nil, err
		}
		st := rb.Update(res)
		if week >= 2 {
			rows = append(rows, WeekRow{Week: week, Total: st.Total, Added: st.Added, Deleted: st.Deleted})
		}
	}
	return rows, nil
}

// Figure10 sweeps alpha at beta=2 over the online streams, returning the
// temporal-stage compression ratio curve.
func Figure10(c *Corpus) ([]temporal.SweepPoint, error) {
	alphas := []float64{0.01, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.45, 0.6}
	return temporal.SweepAlpha(c.onlineStreams(), alphas, 2, c.baseTemporal())
}

// Figure11 sweeps beta from 2 to 7 at the dataset's default alpha.
func Figure11(c *Corpus) ([]temporal.SweepPoint, error) {
	betas := []float64{2, 3, 4, 5, 6, 7}
	return temporal.SweepBeta(c.onlineStreams(), betas, c.baseTemporal().Alpha, c.baseTemporal())
}

// DayRow is one day of Figure 12: messages, events and active rules.
type DayRow struct {
	Day         int
	Messages    int
	Events      int
	ActiveRules int
}

// Figure12 digests the online period day by day.
func Figure12(c *Corpus) ([]DayRow, error) {
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return nil, err
	}
	start := c.Online.Spec.Start
	days := int(c.Online.Spec.Duration.Hours() / 24)
	if days == 0 {
		days = 1
	}
	var rows []DayRow
	for day := 0; day < days; day++ {
		lo := start.Add(time.Duration(day) * 24 * time.Hour)
		hi := lo.Add(24 * time.Hour)
		var batch []syslogmsg.Message
		for i := range c.Online.Messages {
			m := &c.Online.Messages[i]
			if !m.Time.Before(lo) && m.Time.Before(hi) {
				batch = append(batch, *m)
			}
		}
		res, err := d.Digest(batch)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DayRow{
			Day:         day + 1,
			Messages:    len(batch),
			Events:      len(res.Events),
			ActiveRules: len(res.ActiveRules),
		})
	}
	return rows, nil
}

// RouterRow is one router of Figure 13: raw messages vs events.
type RouterRow struct {
	Router   string
	Messages int
	Events   int
}

// Figure13 digests the whole online period and buckets by router. An event
// spanning multiple routers counts once per participating router, matching
// the paper's per-router event plot. Rows sort by descending message count.
func Figure13(c *Corpus) ([]RouterRow, error) {
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return nil, err
	}
	res, err := d.Digest(c.Online.Messages)
	if err != nil {
		return nil, err
	}
	msgs := make(map[string]int)
	for i := range c.Online.Messages {
		msgs[c.Online.Messages[i].Router]++
	}
	events := make(map[string]int)
	for _, e := range res.Events {
		for _, r := range e.Routers {
			events[r]++
		}
	}
	rows := make([]RouterRow, 0, len(msgs))
	for r, n := range msgs {
		rows = append(rows, RouterRow{Router: r, Messages: n, Events: events[r]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Messages != rows[j].Messages {
			return rows[i].Messages > rows[j].Messages
		}
		return rows[i].Router < rows[j].Router
	})
	return rows, nil
}

// PatternExemplar is one Figure 4/5-style time series: the arrivals of one
// condition's messages plus the temporal model's read of them.
type PatternExemplar struct {
	Kind     string
	Times    []time.Time
	Groups   int
	Periodic bool
	Period   time.Duration
}

// Figures4And5 extracts exemplar temporal patterns from the online corpus:
// a controller-instability burst cluster (Figure 4) and a periodic
// TCP-bad-auth / login-scan stream (Figure 5).
func Figures4And5(c *Corpus) ([]PatternExemplar, error) {
	wantPeriodic := "tcp-bad-auth"
	wantBurst := "controller-instability"
	if c.Kind == gen.DatasetB {
		wantPeriodic = "login-scan"
		wantBurst = "link-flap"
	}
	var out []PatternExemplar
	for _, kind := range []string{wantBurst, wantPeriodic} {
		cond := largestCondition(c.Online.Conditions, kind)
		if cond == nil {
			continue
		}
		times := conditionTimes(c.Online, cond)
		ids, err := temporal.GroupStream(times, c.baseTemporal())
		if err != nil {
			return nil, err
		}
		groups := 0
		if len(ids) > 0 {
			groups = ids[len(ids)-1] + 1
		}
		ex := PatternExemplar{Kind: kind, Times: times, Groups: groups}
		if per, ok := temporal.DetectPeriodic(times, 0.9); ok {
			ex.Periodic = true
			ex.Period = per.Period
		}
		out = append(out, ex)
	}
	return out, nil
}

func largestCondition(conds []gen.Condition, kind string) *gen.Condition {
	var best *gen.Condition
	for i := range conds {
		if conds[i].Kind != kind {
			continue
		}
		if best == nil || conds[i].Messages > best.Messages {
			best = &conds[i]
		}
	}
	return best
}

// conditionTimes collects the message times on the condition's first router
// within its span — the single-stream view the paper plots.
func conditionTimes(ds *gen.Dataset, cond *gen.Condition) []time.Time {
	var out []time.Time
	router := cond.Routers[0]
	for i := range ds.Messages {
		m := &ds.Messages[i]
		if m.Router != router || m.Time.Before(cond.Start) || m.Time.After(cond.End) {
			continue
		}
		out = append(out, m.Time)
	}
	return out
}

// HealthMapRow is one router of the Figures 14/15 snapshot: what an
// events-based map shows vs a raw-message map, over one update window.
type HealthMapRow struct {
	Router   string
	Region   string
	Messages int
	Events   int
}

// HealthMap digests a 10-minute window around the online period's busiest
// moment and reports both views.
func HealthMap(c *Corpus, window time.Duration) ([]HealthMapRow, error) {
	if window <= 0 {
		window = 10 * time.Minute
	}
	at := busiestWindow(c.Online, window)
	var batch []syslogmsg.Message
	for i := range c.Online.Messages {
		m := &c.Online.Messages[i]
		if !m.Time.Before(at) && m.Time.Before(at.Add(window)) {
			batch = append(batch, *m)
		}
	}
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return nil, err
	}
	res, err := d.Digest(batch)
	if err != nil {
		return nil, err
	}
	msgs := make(map[string]int)
	for i := range batch {
		msgs[batch[i].Router]++
	}
	events := make(map[string]int)
	for _, e := range res.Events {
		for _, r := range e.Routers {
			events[r]++
		}
	}
	dict := c.KB.Dictionary()
	rows := make([]HealthMapRow, 0, len(msgs))
	for r, n := range msgs {
		rows = append(rows, HealthMapRow{Router: r, Region: dict.Region(r), Messages: n, Events: events[r]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Messages != rows[j].Messages {
			return rows[i].Messages > rows[j].Messages
		}
		return rows[i].Router < rows[j].Router
	})
	return rows, nil
}

// busiestWindow finds the window start with the most messages. Messages
// are time-sorted, so a two-pointer sweep anchored at each message finds
// the densest window in linear time.
func busiestWindow(ds *gen.Dataset, window time.Duration) time.Time {
	if len(ds.Messages) == 0 {
		return ds.Spec.Start
	}
	best, bestN := ds.Messages[0].Time, 0
	j := 0
	for i := range ds.Messages {
		if j < i {
			j = i
		}
		deadline := ds.Messages[i].Time.Add(window)
		for j < len(ds.Messages) && ds.Messages[j].Time.Before(deadline) {
			j++
		}
		if n := j - i; n > bestN {
			best, bestN = ds.Messages[i].Time, n
		}
	}
	return best
}
