package experiments

import (
	"fmt"
	"time"

	"syslogdigest/internal/baseline"
	"syslogdigest/internal/core"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/template"
	"syslogdigest/internal/tickets"
	"syslogdigest/internal/trend"
)

// TicketValidationResult is the §5.3 outcome plus its inputs.
type TicketValidationResult struct {
	Summary tickets.Summary
	Matches []tickets.Match
}

// TicketValidation synthesizes trouble tickets from the online period's
// ground-truth conditions, takes the top 30 by investigation count, and
// matches them against the ranked event digests (location agreement at the
// region level, event span covering ticket creation).
func TicketValidation(c *Corpus) (TicketValidationResult, error) {
	tks := tickets.FromConditions(c.Online.Conditions, tickets.Options{Seed: c.Profile.Seed})
	top := tickets.TopK(tks, 30)
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return TicketValidationResult{}, err
	}
	res, err := d.Digest(c.Online.Messages)
	if err != nil {
		return TicketValidationResult{}, err
	}
	ms := tickets.MatchEvents(top, res.Events, tickets.DictRegionOf(c.KB.Dictionary()), 5*time.Minute)
	return TicketValidationResult{
		Summary: tickets.Summarize(ms, 0.05),
		Matches: ms,
	}, nil
}

// AblationMaskingResult compares template accuracy with and without
// location pre-masking (design choice 1 in DESIGN.md).
type AblationMaskingResult struct {
	WithMasking    float64
	WithoutMasking float64
	LearnedWith    int
	LearnedWithout int
}

// AblationMasking re-learns templates with masking disabled and compares
// ground-truth accuracy.
func AblationMasking(c *Corpus) AblationMaskingResult {
	truth := gen.GroundTruthTemplates(c.Kind)
	with := c.KB.Templates
	without := template.Learn(c.Learn.Messages, template.Options{NoPreMask: true})
	return AblationMaskingResult{
		WithMasking:    template.FractionMatching(with, truth),
		WithoutMasking: template.FractionMatching(without, truth),
		LearnedWith:    len(with),
		LearnedWithout: len(without),
	}
}

// AblationTemporalResult compares the learned EWMA temporal grouping
// against the naive fixed-window baseline at several window sizes.
type AblationTemporalResult struct {
	EWMARatio float64
	Fixed     []FixedWindowPoint
}

// FixedWindowPoint is one baseline setting.
type FixedWindowPoint struct {
	Window time.Duration
	Ratio  float64
}

// AblationTemporal measures the temporal-stage compression of the learned
// model vs fixed windows over the online corpus.
func AblationTemporal(c *Corpus) (AblationTemporalResult, error) {
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return AblationTemporalResult{}, err
	}
	d.SetStage(core.StageTemporal)
	res, err := d.Digest(c.Online.Messages)
	if err != nil {
		return AblationTemporalResult{}, err
	}
	out := AblationTemporalResult{EWMARatio: res.CompressionRatio()}
	for _, w := range []time.Duration{30 * time.Second, 2 * time.Minute, 10 * time.Minute, time.Hour} {
		fw := baseline.FixedWindowGrouper{Window: w}
		out.Fixed = append(out.Fixed, FixedWindowPoint{
			Window: w,
			Ratio:  fw.CompressionRatio(c.Online.Messages),
		})
	}
	return out, nil
}

// AblationDeletionResult compares the paper's conservative rule deletion
// against an aggressive variant that also deletes rules whose antecedent
// was absent in the period.
type AblationDeletionResult struct {
	ConservativeTotals []int
	AggressiveTotals   []int
}

// AblationDeletion replays the weekly evolution under both policies. The
// aggressive policy is implemented by rebuilding the base from scratch each
// period (keeping only rules re-minable this period), which is exactly
// "delete unless re-confirmed".
func AblationDeletion(c *Corpus) (AblationDeletionResult, error) {
	p := c.Profile
	cfg := ParamsFor(c.Kind).Rules
	conservative := rules.NewRuleBase()
	var out AblationDeletionResult
	aggressiveLive := map[rules.PairKey]bool{}
	start := c.Learn.Spec.Start
	for week := 1; week <= p.Weeks; week++ {
		ds, err := gen.Generate(gen.Spec{
			Kind: c.Kind, Routers: p.Routers, Seed: p.Seed + int64(week)*77,
			Start:    start.Add(time.Duration(week-1) * p.WeekDuration),
			Duration: p.WeekDuration, RateScale: p.RateScale,
		})
		if err != nil {
			return out, err
		}
		plus := c.KB.AugmentAll(ds.Messages)
		res, err := rules.Mine(core.RuleEvents(plus), cfg)
		if err != nil {
			return out, err
		}
		conservative.Update(res)
		aggressiveLive = map[rules.PairKey]bool{}
		for _, r := range res.Rules {
			aggressiveLive[rules.PairKey{X: r.X, Y: r.Y}] = true
		}
		out.ConservativeTotals = append(out.ConservativeTotals, conservative.Len())
		out.AggressiveTotals = append(out.AggressiveTotals, len(aggressiveLive))
	}
	return out, nil
}

// SeverityBaselineResult contrasts vendor-severity filtering with digest
// compression: the filter reduces volume but discards whole message
// classes, whereas digesting keeps every message reachable through its
// event.
type SeverityBaselineResult struct {
	Retention   map[int]float64 // max severity -> fraction of messages kept
	DigestRatio float64
}

// SeverityBaseline computes the comparison on the online corpus.
func SeverityBaseline(c *Corpus) (SeverityBaselineResult, error) {
	d, err := core.NewDigester(c.KB)
	if err != nil {
		return SeverityBaselineResult{}, err
	}
	res, err := d.Digest(c.Online.Messages)
	if err != nil {
		return SeverityBaselineResult{}, err
	}
	out := SeverityBaselineResult{
		Retention:   make(map[int]float64),
		DigestRatio: res.CompressionRatio(),
	}
	for _, sev := range []int{1, 3, 5} {
		out.Retention[sev] = baseline.SeverityFilter{MaxSeverity: sev}.Retention(c.Online.Messages)
	}
	return out, nil
}

// TrendAuditResult compares MERCURY-style level-shift auditing on raw
// per-router message counts vs digested per-router event counts — the
// intro's claim that trend analysis over events is more meaningful: message
// storms fake "behavior changes" that event counts do not show.
type TrendAuditResult struct {
	RawShifts   int
	EventShifts int
}

// TrendAudit runs the detector over both views of the online period.
func TrendAudit(c *Corpus) (TrendAuditResult, error) {
	var out TrendAuditResult
	days := int(c.Online.Spec.Duration.Hours() / 24)
	if days < 6 {
		return out, fmt.Errorf("experiments: trend audit needs >= 6 online days, have %d", days)
	}
	rawCounter, err := trend.NewCounter(c.Online.Spec.Start, 24*time.Hour, days)
	if err != nil {
		return out, err
	}
	for i := range c.Online.Messages {
		rawCounter.Add(c.Online.Messages[i].Router, c.Online.Messages[i].Time)
	}

	d, err := core.NewDigester(c.KB)
	if err != nil {
		return out, err
	}
	res, err := d.Digest(c.Online.Messages)
	if err != nil {
		return out, err
	}
	evCounter, err := trend.NewCounter(c.Online.Spec.Start, 24*time.Hour, days)
	if err != nil {
		return out, err
	}
	for _, e := range res.Events {
		for _, r := range e.Routers {
			evCounter.Add(r, e.Start)
		}
	}

	cfg := trend.Config{MinFactor: 2, MinSigma: 3, MinRun: 3}
	out.RawShifts = len(trend.DetectAll(rawCounter.Series(), cfg))
	out.EventShifts = len(trend.DetectAll(evCounter.Series(), cfg))
	return out, nil
}
