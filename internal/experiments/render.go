package experiments

import (
	"fmt"
	"strings"

	"syslogdigest/internal/temporal"
)

// Rendering helpers shared by cmd/sdbench and the bench harness: each
// returns a plain-text table in the paper's layout.

// RenderTable5 renders support-sensitivity rows for one dataset.
func RenderTable5(dataset string, rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 — sensitivity of minimal support (dataset %s)\n", dataset)
	fmt.Fprintf(&b, "%-10s %-12s %-12s\n", "SPmin", "Top types", "Coverage")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10g %-12s %-12s\n", r.SPmin, pct(r.TopTypePct), pct(r.CoveragePct))
	}
	return b.String()
}

// RenderTable6 renders the chosen-parameters table.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6 — parameter setting in SyslogDigest\n")
	fmt.Fprintf(&b, "%-8s %-8s %-6s %-8s %-9s %-8s\n", "Dataset", "alpha", "beta", "W", "SPmin", "Confmin")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8g %-6g %-8s %-9g %-8g\n",
			r.Dataset, r.Alpha, r.Beta, r.W, r.SPmin, r.ConfMin)
	}
	return b.String()
}

// RenderTable7 renders staged compression ratios for one dataset.
func RenderTable7(dataset string, rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7 — compression ratio by methodology (dataset %s)\n", dataset)
	fmt.Fprintf(&b, "%-8s %-8s %-12s\n", "Stage", "Events", "Ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8d %.3e\n", r.Stage, r.Events, r.Ratio)
	}
	return b.String()
}

// RenderFigure6 renders the rules-vs-confidence series.
func RenderFigure6(rows []Figure6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6 — rules vs Confmin per SPmin (dataset A, W=60s)\n")
	fmt.Fprintf(&b, "%-10s %-9s %-6s\n", "SPmin", "Confmin", "Rules")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10g %-9.2f %-6d\n", r.SPmin, r.ConfMin, r.Rules)
	}
	return b.String()
}

// RenderFigure7 renders the rules-vs-window series for one dataset.
func RenderFigure7(dataset string, rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — rules vs window size (dataset %s, Confmin=0.8, SPmin=0.0005)\n", dataset)
	fmt.Fprintf(&b, "%-8s %-6s\n", "W", "Rules")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6d\n", r.W, r.Rules)
	}
	return b.String()
}

// RenderRuleEvolution renders the weekly evolution (Figures 8/9).
func RenderRuleEvolution(dataset string, rows []WeekRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 8/9 — rule base evolution (dataset %s)\n", dataset)
	fmt.Fprintf(&b, "%-6s %-7s %-7s %-8s\n", "Week", "Total", "Added", "Deleted")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-7d %-7d %-8d\n", r.Week, r.Total, r.Added, r.Deleted)
	}
	return b.String()
}

// RenderSweep renders an alpha or beta sweep (Figures 10/11).
func RenderSweep(title, varName string, pts []temporal.SweepPoint) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-8s %-12s\n", varName, "Ratio")
	for _, p := range pts {
		x := p.Alpha
		if varName == "beta" {
			x = p.Beta
		}
		fmt.Fprintf(&b, "%-8g %.4e\n", x, p.Ratio)
	}
	return b.String()
}

// RenderFigure12 renders the per-day counts.
func RenderFigure12(dataset string, rows []DayRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — per-day messages, events, active rules (dataset %s)\n", dataset)
	fmt.Fprintf(&b, "%-5s %-10s %-8s %-12s %-10s\n", "Day", "Messages", "Events", "ActiveRules", "Ratio")
	for _, r := range rows {
		ratio := 0.0
		if r.Messages > 0 {
			ratio = float64(r.Events) / float64(r.Messages)
		}
		fmt.Fprintf(&b, "%-5d %-10d %-8d %-12d %.3e\n", r.Day, r.Messages, r.Events, r.ActiveRules, ratio)
	}
	return b.String()
}

// RenderFigure13 renders the per-router distribution (top n routers).
func RenderFigure13(dataset string, rows []RouterRow, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 — per-router messages vs events (dataset %s, top %d by messages)\n", dataset, n)
	fmt.Fprintf(&b, "%-8s %-10s %-8s %-12s\n", "Router", "Messages", "Events", "Ratio")
	for i, r := range rows {
		if i >= n {
			break
		}
		ratio := 0.0
		if r.Messages > 0 {
			ratio = float64(r.Events) / float64(r.Messages)
		}
		fmt.Fprintf(&b, "%-8s %-10d %-8d %.3e\n", r.Router, r.Messages, r.Events, ratio)
	}
	return b.String()
}

// RenderExemplars renders the Figures 4/5 temporal pattern exemplars.
func RenderExemplars(dataset string, exs []PatternExemplar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 4/5 — temporal pattern exemplars (dataset %s)\n", dataset)
	for _, e := range exs {
		fmt.Fprintf(&b, "%-24s msgs=%-5d groups=%-4d", e.Kind, len(e.Times), e.Groups)
		if e.Periodic {
			fmt.Fprintf(&b, " periodic, period=%s", e.Period.Round(1e9))
		}
		b.WriteByte('\n')
		// A coarse one-line timeline: 60 buckets over the span, '#' where
		// messages land.
		if len(e.Times) > 1 {
			span := e.Times[len(e.Times)-1].Sub(e.Times[0])
			if span > 0 {
				buckets := make([]bool, 60)
				for _, t := range e.Times {
					i := int(float64(t.Sub(e.Times[0])) / float64(span) * 59)
					buckets[i] = true
				}
				b.WriteString("  |")
				for _, hit := range buckets {
					if hit {
						b.WriteByte('#')
					} else {
						b.WriteByte('.')
					}
				}
				b.WriteString("|\n")
			}
		}
	}
	return b.String()
}

// RenderHealthMap renders the Figures 14/15 comparison.
func RenderHealthMap(dataset string, rows []HealthMapRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 14/15 — health map snapshot (dataset %s, 10 min window)\n", dataset)
	fmt.Fprintf(&b, "%-8s %-7s %-10s %-7s %s\n", "Router", "Region", "Messages", "Events", "events-view vs raw-view")
	for _, r := range rows {
		if r.Messages == 0 && r.Events == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %-7s %-10d %-7d %s | %s\n",
			r.Router, r.Region, r.Messages, r.Events,
			bar(r.Events, 20), bar(r.Messages/10+1, 40))
	}
	return b.String()
}

func bar(n, max int) string {
	if n > max {
		n = max
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("o", n)
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }
