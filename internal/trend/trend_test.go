package trend

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2009, 12, 1, 0, 0, 0, 0, time.UTC)

func series(counts ...float64) Series {
	return Series{Key: "k", Start: t0, Bucket: 24 * time.Hour, Counts: counts}
}

func TestDetectCleanShift(t *testing.T) {
	s := series(10, 11, 9, 10, 30, 31, 29, 30)
	sh, ok := Detect(s, Config{})
	if !ok {
		t.Fatal("clean 3x shift not detected")
	}
	if sh.At != 4 {
		t.Fatalf("At = %d, want 4", sh.At)
	}
	if sh.Factor < 2.5 || sh.Factor > 3.5 {
		t.Fatalf("Factor = %v", sh.Factor)
	}
	if !sh.When.Equal(t0.Add(4 * 24 * time.Hour)) {
		t.Fatalf("When = %v", sh.When)
	}
}

func TestDetectDownShift(t *testing.T) {
	s := series(40, 41, 39, 40, 10, 9, 11, 10)
	sh, ok := Detect(s, Config{})
	if !ok {
		t.Fatal("downward shift not detected")
	}
	if sh.Factor >= 1 {
		t.Fatalf("down shift Factor = %v, want < 1", sh.Factor)
	}
}

func TestDetectRejectsFlat(t *testing.T) {
	if _, ok := Detect(series(10, 11, 9, 10, 11, 9, 10, 10), Config{}); ok {
		t.Fatal("flat series flagged")
	}
}

func TestDetectRejectsSmallFactor(t *testing.T) {
	// A crisp but small (1.3x) change: below MinFactor.
	if _, ok := Detect(series(10, 10, 10, 10, 13, 13, 13, 13), Config{}); ok {
		t.Fatal("1.3x change flagged at MinFactor=2")
	}
	// With both thresholds loosened (the flat baseline's Poisson floor
	// makes sigma ~3.2), the same change is flagged.
	if _, ok := Detect(series(10, 10, 10, 10, 13, 13, 13, 13), Config{MinFactor: 1.2, MinSigma: 0.9}); !ok {
		t.Fatal("1.3x change not flagged with loose thresholds")
	}
}

func TestDetectRejectsNoisy(t *testing.T) {
	// Mean changes 2x but the baseline is so noisy the sigma test fails.
	s := series(1, 40, 2, 39, 3, 41, 60, 2, 80, 1)
	if _, ok := Detect(s, Config{MinSigma: 3}); ok {
		t.Fatal("noise flagged as shift")
	}
}

func TestDetectFromZeroBaseline(t *testing.T) {
	s := series(0, 0, 0, 0, 12, 11, 13, 12)
	sh, ok := Detect(s, Config{})
	if !ok {
		t.Fatal("appearance from zero not detected")
	}
	if !math.IsInf(sh.Factor, 1) {
		t.Fatalf("Factor = %v, want +Inf", sh.Factor)
	}
}

func TestDetectTooShort(t *testing.T) {
	if _, ok := Detect(series(1, 2, 3, 4, 5), Config{MinRun: 3}); ok {
		t.Fatal("short series flagged")
	}
}

func TestCounterBucketsAndBounds(t *testing.T) {
	c, err := NewCounter(t0, 24*time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.Add("a", t0)
	c.Add("a", t0.Add(23*time.Hour))
	c.Add("a", t0.Add(25*time.Hour))
	c.Add("a", t0.Add(-time.Hour))     // before range: ignored
	c.Add("a", t0.Add(5*24*time.Hour)) // after range: ignored
	c.Add("b", t0.Add(48*time.Hour))
	ss := c.Series()
	if len(ss) != 2 || ss[0].Key != "a" || ss[1].Key != "b" {
		t.Fatalf("series = %+v", ss)
	}
	if ss[0].Counts[0] != 2 || ss[0].Counts[1] != 1 || ss[0].Counts[2] != 0 {
		t.Fatalf("a counts = %v", ss[0].Counts)
	}
	if ss[1].Counts[2] != 1 {
		t.Fatalf("b counts = %v", ss[1].Counts)
	}
}

func TestNewCounterValidation(t *testing.T) {
	if _, err := NewCounter(t0, 0, 4); err == nil {
		t.Fatal("zero bucket accepted")
	}
	if _, err := NewCounter(t0, time.Hour, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestDetectAllSorted(t *testing.T) {
	ss := []Series{
		{Key: "small", Start: t0, Bucket: time.Hour, Counts: []float64{5, 5, 5, 5, 15, 15, 15, 15}},
		{Key: "big", Start: t0, Bucket: time.Hour, Counts: []float64{5, 5, 5, 5, 105, 105, 105, 105}},
		{Key: "flat", Start: t0, Bucket: time.Hour, Counts: []float64{5, 5, 5, 5, 5, 5, 5, 5}},
	}
	got := DetectAll(ss, Config{})
	if len(got) != 2 {
		t.Fatalf("shifts = %+v", got)
	}
	if got[0].Key != "big" || got[1].Key != "small" {
		t.Fatalf("order = %v, %v", got[0].Key, got[1].Key)
	}
}
