// Package trend implements the network-auditing application sketched in the
// paper's introduction: MERCURY-style behavior-change detection that tracks
// level shifts in syslog frequencies. The paper's point is that such
// trend analysis becomes "much more meaningful" when it runs on digested
// events rather than raw messages — one flapping link can shift a router's
// raw LINK-message rate by orders of magnitude without any persistent
// behavior change, while its event rate barely moves.
//
// The detector is deliberately simple and robust: daily (or any fixed
// bucket) counts per series, compared before/after each candidate change
// point; a level shift is flagged when the after-mean departs from the
// before-mean by both a multiplicative factor and a noise-scaled margin.
package trend

import (
	"fmt"
	"math"
	"sort"
	"time"

	"syslogdigest/internal/stats"
)

// Series is one counted signal: occurrences per fixed bucket.
type Series struct {
	Key    string // e.g. "router|template" or "router"
	Start  time.Time
	Bucket time.Duration
	Counts []float64
}

// Counter accumulates bucketed counts for many keys.
type Counter struct {
	start  time.Time
	bucket time.Duration
	n      int
	counts map[string][]float64
}

// NewCounter covers [start, start+n*bucket).
func NewCounter(start time.Time, bucket time.Duration, n int) (*Counter, error) {
	if bucket <= 0 || n <= 0 {
		return nil, fmt.Errorf("trend: invalid bucketing (%v x %d)", bucket, n)
	}
	return &Counter{start: start, bucket: bucket, n: n, counts: make(map[string][]float64)}, nil
}

// Add counts one occurrence of key at time t; out-of-range times are
// ignored (partial buckets at the edges would bias shift detection).
func (c *Counter) Add(key string, t time.Time) {
	d := t.Sub(c.start)
	if d < 0 { // integer division truncates toward zero, so guard first
		return
	}
	i := int(d / c.bucket)
	if i >= c.n {
		return
	}
	s := c.counts[key]
	if s == nil {
		s = make([]float64, c.n)
		c.counts[key] = s
	}
	s[i]++
}

// Series returns all accumulated series, sorted by key.
func (c *Counter) Series() []Series {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Series, 0, len(keys))
	for _, k := range keys {
		out = append(out, Series{Key: k, Start: c.start, Bucket: c.bucket, Counts: c.counts[k]})
	}
	return out
}

// Shift is one detected level shift.
type Shift struct {
	Key    string
	At     int // bucket index where the new level begins
	When   time.Time
	Before float64 // mean level before
	After  float64 // mean level after
	Factor float64 // After/Before (Inf when Before is 0)
}

// Config tunes detection.
type Config struct {
	// MinFactor is the multiplicative change required; 0 means 2.
	MinFactor float64
	// MinSigma is the noise-scaled margin: |after-before| must exceed
	// MinSigma × stddev(before side). 0 means 3.
	MinSigma float64
	// MinRun is the minimum buckets on each side; 0 means 3.
	MinRun int
}

func (c Config) normalize() Config {
	if c.MinFactor == 0 {
		c.MinFactor = 2
	}
	if c.MinSigma == 0 {
		c.MinSigma = 3
	}
	if c.MinRun == 0 {
		c.MinRun = 3
	}
	return c
}

// Detect scans one series for its strongest level shift, ok=false when
// none qualifies. The candidate split maximizing the between-side contrast
// is tested against both thresholds.
func Detect(s Series, cfg Config) (Shift, bool) {
	cfg = cfg.normalize()
	n := len(s.Counts)
	if n < 2*cfg.MinRun {
		return Shift{}, false
	}
	bestAt, bestScore := -1, 0.0
	for at := cfg.MinRun; at <= n-cfg.MinRun; at++ {
		mb := stats.Mean(s.Counts[:at])
		ma := stats.Mean(s.Counts[at:])
		score := math.Abs(ma - mb)
		if score > bestScore {
			bestScore, bestAt = score, at
		}
	}
	if bestAt < 0 {
		return Shift{}, false
	}
	before := s.Counts[:bestAt]
	after := s.Counts[bestAt:]
	mb, ma := stats.Mean(before), stats.Mean(after)
	sd := stats.Stddev(before)
	if sd == 0 {
		sd = math.Sqrt(mb) // Poisson-ish floor for flat baselines
		if sd == 0 {
			sd = 1
		}
	}
	if math.Abs(ma-mb) < cfg.MinSigma*sd {
		return Shift{}, false
	}
	lo, hi := mb, ma
	if lo > hi {
		lo, hi = hi, lo
	}
	factor := math.Inf(1)
	if lo > 0 {
		factor = hi / lo
	}
	if factor < cfg.MinFactor {
		return Shift{}, false
	}
	f := ma / mb
	if mb == 0 {
		f = math.Inf(1)
	}
	return Shift{
		Key:    s.Key,
		At:     bestAt,
		When:   s.Start.Add(time.Duration(bestAt) * s.Bucket),
		Before: mb,
		After:  ma,
		Factor: f,
	}, true
}

// DetectAll scans every series, returning qualifying shifts sorted by
// descending contrast.
func DetectAll(series []Series, cfg Config) []Shift {
	var out []Shift
	for _, s := range series {
		if sh, ok := Detect(s, cfg); ok {
			out = append(out, sh)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci := math.Abs(out[i].After - out[i].Before)
		cj := math.Abs(out[j].After - out[j].Before)
		if ci != cj {
			return ci > cj
		}
		return out[i].Key < out[j].Key
	})
	return out
}
