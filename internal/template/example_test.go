package template_test

import (
	"fmt"
	"time"

	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/template"
)

// ExampleLearn shows the paper's Table 3 → Table 4 reduction: twenty
// BGP-5-ADJCHANGE messages with varying neighbor addresses and VRF ids
// reduce to five masked sub-type templates.
func ExampleLearn() {
	details := []string{}
	add := func(ip, vrf, tail string) {
		for i := 0; i < 4; i++ {
			details = append(details,
				fmt.Sprintf("neighbor 192.168.%d.%s vpn vrf 1000:%s %s", 30+i, ip, vrf, tail))
		}
	}
	add("42", "1001", "Up")
	add("26", "1004", "Down Interface flap")
	add("250", "1002", "Down BGP Notification sent")
	add("13", "1000", "Down BGP Notification received")
	add("230", "1004", "Down Peer closed the session")

	var msgs []syslogmsg.Message
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	for i, d := range details {
		msgs = append(msgs, syslogmsg.Message{
			Time: t0.Add(time.Duration(i) * time.Minute), Router: "ra",
			Code: "BGP-5-ADJCHANGE", Detail: d,
		})
	}
	for _, tpl := range template.Learn(msgs, template.Options{}) {
		fmt.Println(tpl)
	}
	// Unordered output:
	// BGP-5-ADJCHANGE neighbor * vpn vrf * Up
	// BGP-5-ADJCHANGE neighbor * vpn vrf * Down Interface flap
	// BGP-5-ADJCHANGE neighbor * vpn vrf * Down BGP Notification sent
	// BGP-5-ADJCHANGE neighbor * vpn vrf * Down BGP Notification received
	// BGP-5-ADJCHANGE neighbor * vpn vrf * Down Peer closed the session
}

// ExampleMatcher_Match shows online signature matching: the most specific
// template whose literal words appear in order wins.
func ExampleMatcher_Match() {
	m := template.NewMatcher([]template.Template{
		template.MustTemplate(0, "LINK-3-UPDOWN|Interface *, changed state to down"),
		template.MustTemplate(1, "LINK-3-UPDOWN|Interface *, changed state to up"),
	})
	tpl, ok := m.Match("LINK-3-UPDOWN", "Interface Serial9/0/1:0, changed state to down")
	fmt.Println(ok, tpl.ID)
	// Output:
	// true 0
}
