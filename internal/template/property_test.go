package template

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"syslogdigest/internal/syslogmsg"
)

// Property tests over randomized corpora: whatever the mix of formats and
// values, learning must terminate, produce bounded template sets, and cover
// its own corpus.

// randomCorpus emits messages from a random subset of synthetic formats
// with random embedded values.
func randomCorpus(rng *rand.Rand, n int) []syslogmsg.Message {
	formats := []func() (string, string){
		func() (string, string) {
			return "LINK-3-UPDOWN", fmt.Sprintf("Interface Serial%d/%d/1:0, changed state to %s",
				1+rng.Intn(4), rng.Intn(4), pick(rng, "down", "up"))
		},
		func() (string, string) {
			return "BGP-5-ADJCHANGE", fmt.Sprintf("neighbor 10.%d.%d.%d vpn vrf 1000:%d %s",
				rng.Intn(255), rng.Intn(255), rng.Intn(255), 1000+rng.Intn(4),
				pick(rng, "Up", "Down Interface flap", "Down Peer closed the session"))
		},
		func() (string, string) {
			return "SEC-6-LOGIN", fmt.Sprintf("login %s for user u%d from 203.0.113.%d",
				pick(rng, "failed", "succeeded"), rng.Intn(1000), 1+rng.Intn(250))
		},
		func() (string, string) {
			return "ENV-2-TEMP", fmt.Sprintf("Temperature %dC on Slot %d", 30+rng.Intn(40), 1+rng.Intn(16))
		},
	}
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	out := make([]syslogmsg.Message, n)
	for i := range out {
		code, detail := formats[rng.Intn(len(formats))]()
		out[i] = syslogmsg.Message{
			Time: base.Add(time.Duration(i) * time.Minute), Router: "r1",
			Code: code, Detail: detail,
		}
	}
	return out
}

func pick(rng *rand.Rand, opts ...string) string { return opts[rng.Intn(len(opts))] }

func TestLearnCoversOwnCorpusQuick(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%500) + 20
		corpus := randomCorpus(rng, n)
		learned := Learn(corpus, Options{})
		if len(learned) == 0 {
			return false
		}
		// Bounded: never more templates than distinct (code, detail) pairs,
		// and at most K leaf templates per code (pruning bound) times a
		// small tree-branching factor.
		if len(learned) > n {
			return false
		}
		m := NewMatcher(learned)
		for i := range corpus {
			tpl, ok := m.Match(corpus[i].Code, corpus[i].Detail)
			if !ok || tpl.Code != corpus[i].Code {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: learning is deterministic — same corpus, same templates, and
// the matcher assigns the same IDs.
func TestLearnDeterministicQuick(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))
		n := int(sz%300) + 10
		a := Learn(randomCorpus(rng1, n), Options{})
		b := Learn(randomCorpus(rng2, n), Options{})
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) || a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: every learned template's literal words appear, in order, in at
// least one corpus message of its code (templates are never hallucinated).
func TestLearnedTemplatesGroundedQuick(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		corpus := randomCorpus(rng, int(sz%300)+20)
		learned := Learn(corpus, Options{})
		m := NewMatcher(learned)
		for _, tpl := range learned {
			grounded := false
			for i := range corpus {
				if corpus[i].Code != tpl.Code {
					continue
				}
				if got, ok := m.Match(corpus[i].Code, corpus[i].Detail); ok && got.ID == tpl.ID {
					grounded = true
					break
				}
			}
			if !grounded {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
