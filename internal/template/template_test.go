package template

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"syslogdigest/internal/syslogmsg"
)

func mkMsgs(code string, details ...string) []syslogmsg.Message {
	out := make([]syslogmsg.Message, len(details))
	for i, d := range details {
		out[i] = syslogmsg.Message{
			Index:  uint64(i),
			Time:   time.Date(2010, 1, 10, 0, 0, i, 0, time.UTC),
			Router: "r1",
			Code:   code,
			Detail: d,
		}
	}
	return out
}

// TestLearnTable4 reproduces the paper's Table 3 -> Table 4 example: twenty
// BGP-5-ADJCHANGE messages with varying neighbor IPs and VRF ids must yield
// exactly the five masked sub types.
func TestLearnTable4(t *testing.T) {
	var details []string
	mk := func(ip, vrf, tail string, n int) {
		for i := 0; i < n; i++ {
			details = append(details, fmt.Sprintf("neighbor 192.168.%d.%s vpn vrf 1000:%s %s", i, ip, vrf, tail))
		}
	}
	mk("42", "1001", "Up", 4)
	mk("26", "1004", "Down Interface flap", 4)
	mk("250", "1002", "Down BGP Notification sent", 4)
	mk("13", "1000", "Down BGP Notification received", 4)
	mk("230", "1004", "Down Peer closed the session", 4)

	got := Learn(mkMsgs("BGP-5-ADJCHANGE", details...), Options{})
	want := map[string]bool{
		"neighbor * vpn vrf * Up":                             false,
		"neighbor * vpn vrf * Down Interface flap":            false,
		"neighbor * vpn vrf * Down BGP Notification sent":     false,
		"neighbor * vpn vrf * Down BGP Notification received": false,
		"neighbor * vpn vrf * Down Peer closed the session":   false,
	}
	if len(got) != len(want) {
		var lines []string
		for _, g := range got {
			lines = append(lines, g.String())
		}
		t.Fatalf("learned %d templates, want %d:\n%s", len(got), len(want), strings.Join(lines, "\n"))
	}
	for _, g := range got {
		key := strings.Join(g.Words, " ")
		if _, ok := want[key]; !ok {
			t.Fatalf("unexpected template %q", key)
		}
		want[key] = true
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing template %q", k)
		}
	}
}

// TestLearnLinkFlapTemplates checks the Table 2 message formats reduce to
// the paper's t1..t4 templates.
func TestLearnLinkFlapTemplates(t *testing.T) {
	var msgs []syslogmsg.Message
	for i, intf := range []string{"Serial1/0.10/10:0", "Serial1/0.20/20:0", "Serial2/0.10/2:0"} {
		for _, state := range []string{"down", "up"} {
			msgs = append(msgs, mkMsgs("LINK-3-UPDOWN",
				fmt.Sprintf("Interface %s, changed state to %s", intf, state))...)
			msgs = append(msgs, mkMsgs("LINEPROTO-5-UPDOWN",
				fmt.Sprintf("Line protocol on Interface %s, changed state to %s", intf, state))...)
		}
		_ = i
	}
	got := Learn(msgs, Options{})
	if len(got) != 4 {
		var lines []string
		for _, g := range got {
			lines = append(lines, g.String())
		}
		t.Fatalf("learned %d templates, want 4:\n%s", len(got), strings.Join(lines, "\n"))
	}
	byStr := make(map[string]bool)
	for _, g := range got {
		byStr[g.String()] = true
	}
	for _, want := range []string{
		"LINK-3-UPDOWN Interface *, changed state to down",
		"LINK-3-UPDOWN Interface *, changed state to up",
		"LINEPROTO-5-UPDOWN Line protocol on Interface *, changed state to down",
		"LINEPROTO-5-UPDOWN Line protocol on Interface *, changed state to up",
	} {
		if !byStr[want] {
			t.Errorf("missing %q; have %v", want, byStr)
		}
	}
}

// TestLearnPruning: a variable word the masker cannot recognize (usernames)
// must not explode into per-username templates — the >K child rule collapses
// them into one wildcard template.
func TestLearnPruning(t *testing.T) {
	var details []string
	for i := 0; i < 50; i++ {
		details = append(details, fmt.Sprintf("login failed for user usr%c%c on vty", 'a'+i%26, 'a'+(i/3)%26))
	}
	got := Learn(mkMsgs("SEC-6-LOGINFAIL", details...), Options{})
	if len(got) != 1 {
		var lines []string
		for _, g := range got {
			lines = append(lines, g.String())
		}
		t.Fatalf("learned %d templates, want 1:\n%s", len(got), strings.Join(lines, "\n"))
	}
	s := strings.Join(got[0].Words, " ")
	if s != "login failed for user * on vty" {
		t.Fatalf("pattern = %q", s)
	}
}

// TestLearnKeepsRareConstantWord: the paper notes a constant like
// "GigabitEthernet" enabled on only one interface type may be absorbed into
// the template — acceptable. But distinct small sub types (< K of them) must
// stay distinct.
func TestLearnFewSubtypesStayDistinct(t *testing.T) {
	var details []string
	for i := 0; i < 20; i++ {
		details = append(details, fmt.Sprintf("Controller T3 %d/0, changed state to down", i%8))
		details = append(details, fmt.Sprintf("Controller T3 %d/0, changed state to up", i%8))
		details = append(details, fmt.Sprintf("Controller T3 %d/0, being reset", i%8))
	}
	got := Learn(mkMsgs("CONTROLLER-5-UPDOWN", details...), Options{})
	if len(got) != 3 {
		var lines []string
		for _, g := range got {
			lines = append(lines, g.String())
		}
		t.Fatalf("learned %d templates, want 3:\n%s", len(got), strings.Join(lines, "\n"))
	}
}

func TestLearnSingleMessage(t *testing.T) {
	got := Learn(mkMsgs("SYS-5-RESTART", "System restarted by admin"), Options{})
	if len(got) != 1 {
		t.Fatalf("templates = %d", len(got))
	}
	if got[0].String() != "SYS-5-RESTART System restarted by admin" {
		t.Fatalf("pattern = %q", got[0].String())
	}
}

func TestLearnEmpty(t *testing.T) {
	if got := Learn(nil, Options{}); len(got) != 0 {
		t.Fatalf("templates from empty corpus = %d", len(got))
	}
}

func TestLearnDeterministicIDs(t *testing.T) {
	msgs := append(
		mkMsgs("B-1-X", "beta one", "beta two"),
		mkMsgs("A-1-X", "alpha thing")...,
	)
	a := Learn(msgs, Options{})
	b := Learn(msgs, Options{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if !a[i].Equal(b[i]) || a[i].ID != b[i].ID {
			t.Fatalf("run difference at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Codes are processed in sorted order: A before B.
	if a[0].Code != "A-1-X" {
		t.Fatalf("first template code = %q, want A-1-X", a[0].Code)
	}
}

func TestMatcherSpecificityWins(t *testing.T) {
	msgs := mkMsgs("LINK-3-UPDOWN",
		"Interface Serial1/0/1:0, changed state to down",
		"Interface Serial2/0/1:0, changed state to down",
		"Interface Serial1/0/1:0, changed state to up",
		"Interface Serial2/0/1:0, changed state to up",
	)
	m := NewMatcher(Learn(msgs, Options{}))
	got, ok := m.Match("LINK-3-UPDOWN", "Interface Serial9/0/9:0, changed state to down")
	if !ok {
		t.Fatal("no match")
	}
	if !strings.HasSuffix(strings.Join(got.Words, " "), "down") {
		t.Fatalf("matched %q, want the 'down' template", got.String())
	}
	got, ok = m.Match("LINK-3-UPDOWN", "Interface Serial9/0/9:0, changed state to up")
	if !ok || !strings.HasSuffix(strings.Join(got.Words, " "), "up") {
		t.Fatalf("matched %v %v, want the 'up' template", got, ok)
	}
}

func TestMatcherUnknownCode(t *testing.T) {
	m := NewMatcher(nil)
	if _, ok := m.Match("NOPE-1-NOPE", "whatever"); ok {
		t.Fatal("match on empty matcher")
	}
}

func TestMatcherNoTemplateMatches(t *testing.T) {
	ts := []Template{MustTemplate(0, "X-1-Y|alpha beta gamma")}
	m := NewMatcher(ts)
	if _, ok := m.Match("X-1-Y", "alpha gamma beta"); ok {
		t.Fatal("out-of-order literals must not match")
	}
	if _, ok := m.Match("X-1-Y", "alpha beta gamma"); !ok {
		t.Fatal("exact literal sequence must match")
	}
	if _, ok := m.Match("X-1-Y", "prefix alpha mid beta gamma suffix"); !ok {
		t.Fatal("subsequence with extra words must match")
	}
}

func TestMatcherByIDAndTemplates(t *testing.T) {
	ts := []Template{
		MustTemplate(0, "X-1-Y|a b"),
		MustTemplate(1, "X-1-Y|a b c"),
	}
	m := NewMatcher(ts)
	if got := m.Templates(); len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("Templates() = %v", got)
	}
	if tp, ok := m.ByID(1); !ok || tp.Specificity() != 3 {
		t.Fatalf("ByID(1) = %v %v", tp, ok)
	}
	if _, ok := m.ByID(99); ok {
		t.Fatal("ByID(99) found a ghost")
	}
}

// Property: every message in the learning corpus is matched by some learned
// template of its code, and the matched template's literals appear in it.
func TestLearnedTemplatesCoverCorpus(t *testing.T) {
	var msgs []syslogmsg.Message
	for i := 0; i < 30; i++ {
		msgs = append(msgs, mkMsgs("BGP-5-ADJCHANGE",
			fmt.Sprintf("neighbor 10.0.%d.1 vpn vrf 1000:%d Up", i, 1000+i%5),
			fmt.Sprintf("neighbor 10.0.%d.2 vpn vrf 1000:%d Down Interface flap", i, 1000+i%5),
		)...)
		msgs = append(msgs, mkMsgs("SYS-1-CPURISINGTHRESHOLD",
			fmt.Sprintf("Threshold: Total CPU Utilization(Total/Intr): %d%%/1%%, Top 3 processes (Pid/Util): 2/71%%, 8/6%%, 7/3%%", 80+i%20),
		)...)
	}
	m := NewMatcher(Learn(msgs, Options{}))
	for _, msg := range msgs {
		tpl, ok := m.Match(msg.Code, msg.Detail)
		if !ok {
			t.Fatalf("no template matches corpus message %q %q", msg.Code, msg.Detail)
		}
		if tpl.Code != msg.Code {
			t.Fatalf("matched template of wrong code: %v for %v", tpl.Code, msg.Code)
		}
	}
}

func TestFractionMatching(t *testing.T) {
	truth := []Template{
		MustTemplate(0, "A-1-B|x * y"),
		MustTemplate(1, "A-1-B|x * z"),
	}
	learned := []Template{
		MustTemplate(10, "A-1-B|x * y"),
		MustTemplate(11, "C-1-D|other"),
	}
	if got := FractionMatching(learned, truth); got != 0.5 {
		t.Fatalf("FractionMatching = %v, want 0.5", got)
	}
	if got := FractionMatching(learned, nil); got != 0 {
		t.Fatalf("FractionMatching(empty truth) = %v", got)
	}
}

func TestIsWildcard(t *testing.T) {
	for _, w := range []string{"*", "*,", "(*)", "*."} {
		if !IsWildcard(w) {
			t.Errorf("IsWildcard(%q) = false", w)
		}
	}
	for _, w := range []string{"x*", "word", "", "**x"} {
		if IsWildcard(w) {
			t.Errorf("IsWildcard(%q) = true", w)
		}
	}
}

func TestMustTemplatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for missing '|'")
		}
	}()
	MustTemplate(0, "no separator here")
}

func TestLCS(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"x", "b", "d", "y"}
	got := lcs(a, b)
	if strings.Join(got, " ") != "b d" {
		t.Fatalf("lcs = %v", got)
	}
	if lcs(nil, a) != nil {
		t.Fatal("lcs with empty should be nil")
	}
}

func TestRemoveSubsequence(t *testing.T) {
	seq := []string{"a", "b", "a", "c"}
	got := removeSubsequence(seq, []string{"a", "c"})
	if strings.Join(got, " ") != "b a" {
		t.Fatalf("removeSubsequence = %v", got)
	}
	// Missing words are skipped without consuming others.
	got = removeSubsequence(seq, []string{"z"})
	if strings.Join(got, " ") != "a b a c" {
		t.Fatalf("removeSubsequence with absent word = %v", got)
	}
}

func TestTemplateStringAndLiterals(t *testing.T) {
	tpl := MustTemplate(3, "LINK-3-UPDOWN|Interface *, changed state to down")
	if tpl.String() != "LINK-3-UPDOWN Interface *, changed state to down" {
		t.Fatalf("String = %q", tpl.String())
	}
	lits := tpl.Literals()
	if strings.Join(lits, " ") != "Interface changed state to down" {
		t.Fatalf("Literals = %v", lits)
	}
	if tpl.Specificity() != 5 {
		t.Fatalf("Specificity = %d", tpl.Specificity())
	}
}
