package template_test

// Differential tests proving the interned matcher (MatchTokens) is a pure
// drop-in for the pre-interning string scan (MatchTokensLinear): identical
// (template, ok) on every input. The external test package lets these tests
// drive the matcher with internal/gen corpora (gen imports template, so an
// internal test would cycle).

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"syslogdigest/internal/gen"
	"syslogdigest/internal/template"
	"syslogdigest/internal/textutil"
)

// diffCheck asserts both matcher implementations agree on one input.
func diffCheck(t *testing.T, m *template.Matcher, code string, toks []string) {
	t.Helper()
	got, gok := m.MatchTokens(code, toks)
	want, wok := m.MatchTokensLinear(code, toks)
	if gok != wok || got.ID != want.ID {
		t.Fatalf("matcher divergence on code=%q toks=%q:\n  interned: id=%d ok=%v\n  linear:   id=%d ok=%v",
			code, toks, got.ID, gok, want.ID, wok)
	}
}

// TestMatcherDifferentialCorpus replays full generated corpora — both
// vendors, multiple seeds — through both implementations.
func TestMatcherDifferentialCorpus(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				ds, err := gen.Generate(gen.Spec{
					Kind: kind, Routers: 8, Seed: seed,
					Duration: 6 * time.Hour, RateScale: 0.5,
				})
				if err != nil {
					t.Fatal(err)
				}
				m := template.NewMatcher(template.Learn(ds.Messages, template.Options{}))
				for i := range ds.Messages {
					diffCheck(t, m, ds.Messages[i].Code,
						textutil.Tokenize(ds.Messages[i].Detail))
				}
			})
		}
	}
}

// TestMatcherDifferentialRandom is a seeded property test over synthetic
// template sets built to exercise both matching paths: a code below
// invertedIndexMin (inline rarest-literal scan) and one far above it
// (posting-list merge), with literal-free templates, duplicate literals, and
// out-of-vocabulary message tokens.
func TestMatcherDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := []string{
		"link", "down", "up", "state", "changed", "interface", "neighbor",
		"bgp", "peer", "reset", "flap", "error", "timeout", "retry",
		"adjacency", "lost", "line", "protocol", "on", "to", "from",
	}
	randWords := func(n int, maskOdds float64) []string {
		words := make([]string, n)
		for i := range words {
			if rng.Float64() < maskOdds {
				words[i] = textutil.Mask
			} else {
				words[i] = vocab[rng.Intn(len(vocab))]
			}
		}
		return words
	}

	var tmpls []template.Template
	id := 0
	add := func(code string, count int) {
		for i := 0; i < count; i++ {
			tmpls = append(tmpls, template.Template{
				ID: id, Code: code, Words: randWords(1+rng.Intn(6), 0.3),
			})
			id++
		}
		// A couple of literal-free templates per code: they match any
		// message and populate the index's always-list.
		for i := 0; i < 2; i++ {
			tmpls = append(tmpls, template.Template{
				ID: id, Code: code, Words: []string{textutil.Mask, textutil.Mask},
			})
			id++
		}
	}
	add("SMALL-5-CODE", 4) // below invertedIndexMin: inline scan
	add("BIG-3-CODE", 48)  // far above: posting-list path
	m := template.NewMatcher(tmpls)

	codes := []string{"SMALL-5-CODE", "BIG-3-CODE", "UNKNOWN-0-CODE"}
	outOfVocab := []string{"zzz", "0x1A2B", "Serial1/0", "10.0.0.1"}
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(10)
		toks := make([]string, n)
		for i := range toks {
			if rng.Float64() < 0.2 {
				toks[i] = outOfVocab[rng.Intn(len(outOfVocab))]
			} else {
				toks[i] = vocab[rng.Intn(len(vocab))]
			}
		}
		diffCheck(t, m, codes[rng.Intn(len(codes))], toks)
	}
}
