// Package template implements the paper's message-template learning
// (§4.1.1) and online signature matching.
//
// Router syslog messages carry an error code ("LINK-3-UPDOWN") but each code
// hides multiple sub types: Table 3's twenty BGP-5-ADJCHANGE messages reduce
// to the five masked structures of Table 4. The learner discovers those sub
// types without vendor knowledge:
//
//  1. decompose each message's detail into whitespace-separated words and
//     mask words denoting specific locations or measurements (IP addresses,
//     interface names, port paths, numbers — see textutil);
//  2. for each error code, build a sub-type tree by breadth-first
//     refinement: given a node's messages, repeatedly take the most frequent
//     word among not-yet-covered messages, make the messages containing it a
//     child whose signature is their common word pattern, and recurse into
//     children on the leftover (residual) words;
//  3. prune: a node with more than K children discards them all and becomes
//     a leaf itself (the paper uses K=10 — "no message type has more than 10
//     sub types"); this is also the safety net that absorbs variable words
//     the masker missed, since those explode into many children;
//  4. each root→leaf path becomes one template: the ordered common word
//     pattern of the leaf's messages, with gaps shown as "*".
//
// Matching (online "signature matching") tests whether a template's literal
// words appear in order in a message; the most specific matching template —
// most literal words — wins.
package template

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"syslogdigest/internal/obs"
	"syslogdigest/internal/par"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/textutil"
)

// Template is one learned message template: an error code plus an ordered
// word pattern in which "*" (possibly carrying punctuation, e.g. "*,")
// stands for a masked high-variability word.
type Template struct {
	ID    int
	Code  string
	Words []string
}

// String renders the template in the paper's style:
// "LINK-3-UPDOWN Interface *, changed state to down".
func (t Template) String() string {
	return t.Code + " " + strings.Join(t.Words, " ")
}

// Literals returns the non-wildcard words of the pattern, in order.
func (t Template) Literals() []string {
	out := make([]string, 0, len(t.Words))
	for _, w := range t.Words {
		if !IsWildcard(w) {
			out = append(out, w)
		}
	}
	return out
}

// Specificity is the number of literal words; higher is more specific.
func (t Template) Specificity() int { return len(t.Literals()) }

// Equal reports whether two templates describe the same pattern (same code
// and same word sequence).
func (t Template) Equal(o Template) bool {
	if t.Code != o.Code || len(t.Words) != len(o.Words) {
		return false
	}
	for i := range t.Words {
		if t.Words[i] != o.Words[i] {
			return false
		}
	}
	return true
}

// IsWildcard reports whether a pattern word is a mask (its punctuation-
// trimmed core is the mask rune), e.g. "*", "*,", "(*)".
func IsWildcard(w string) bool {
	core, _, _ := textutil.TrimWord(w)
	return core == textutil.Mask
}

// Options tunes learning.
type Options struct {
	// K is the child limit before pruning; 0 means the paper's default 10.
	K int
	// MaxDepth bounds tree depth as a safety net; 0 means 12.
	MaxDepth int
	// NoPreMask disables location masking before learning. Only ablation
	// experiments set this; production learning always masks.
	NoPreMask bool
	// MinChildFraction is the minimum share of the error code's messages a
	// sub type must cover to be split off; words rarer than this are
	// treated as variable values, not sub-type markers ("usually there
	// would be many more messages associated with each sub type"). The
	// threshold is anchored to the whole code's corpus, not the current
	// tree node, so recursing into leftovers cannot ratchet it down and
	// re-split value noise. 0 means 1/K.
	MinChildFraction float64
	// MinChildCount is the absolute floor on child support; 0 means 2.
	MinChildCount int
	// Pool bounds learning's worker fan-out (chunked tokenization, one
	// sub-type tree per error code). Nil means a default pool at
	// GOMAXPROCS; a one-worker pool forces the serial path. Output is
	// byte-identical at any worker count. Runtime knob only — it is not
	// part of the learned knowledge and is never serialized.
	Pool *par.Pool
}

func (o *Options) normalize() {
	if o.K <= 0 {
		o.K = 10
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 12
	}
	if o.MinChildFraction <= 0 {
		o.MinChildFraction = 1 / float64(o.K)
	}
	if o.MinChildCount <= 0 {
		o.MinChildCount = 2
	}
	if o.Pool == nil {
		o.Pool = par.New(0)
	}
}

// Learn builds templates from a historical message corpus. Output order is
// deterministic: codes sorted lexicographically, leaves in construction
// order; IDs are assigned sequentially from 0. Learning fans out over
// opt.Pool — tokenization/masking in chunks, then one sub-type tree per
// error code — and is byte-identical to the serial path at any worker
// count (each unit is independent; collection is index-ordered and ID
// assignment stays sequential).
func Learn(msgs []syslogmsg.Message, opt Options) []Template {
	opt.normalize()
	toks := make([][]string, len(msgs))
	_ = opt.Pool.Chunks(len(msgs), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			ts := textutil.Tokenize(msgs[i].Detail)
			if !opt.NoPreMask {
				ts = textutil.MaskTokens(ts)
			}
			toks[i] = ts
		}
		return nil
	})
	byCode := make(map[string][][]string)
	for i := range msgs {
		byCode[msgs[i].Code] = append(byCode[msgs[i].Code], toks[i])
	}
	codes := make([]string, 0, len(byCode))
	for c := range byCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)

	perCode, _ := par.Map(opt.Pool, len(codes), func(i int) ([][]string, error) {
		return learnCode(byCode[codes[i]], opt), nil
	})
	var out []Template
	for ci, patterns := range perCode {
		for _, words := range patterns {
			out = append(out, Template{ID: len(out), Code: codes[ci], Words: words})
		}
	}
	return out
}

// uniqueSeq is one distinct masked word structure and how many raw messages
// collapse onto it. Learning operates on unique structures weighted by
// count, which keeps the tree algorithms independent of corpus size.
type uniqueSeq struct {
	tokens []string
	count  int
}

// learnCode learns the sub-type patterns for one error code from its
// messages' pre-tokenized (and pre-masked) details.
func learnCode(details [][]string, opt Options) [][]string {
	uniq := make(map[string]*uniqueSeq)
	var order []string
	for _, toks := range details {
		key := strings.Join(toks, "\x00")
		if u := uniq[key]; u != nil {
			u.count++
		} else {
			uniq[key] = &uniqueSeq{tokens: toks, count: 1}
			order = append(order, key)
		}
	}
	seqs := make([]*uniqueSeq, len(order))
	for i, k := range order {
		seqs[i] = uniq[k]
	}

	// residuals[i] tracks seq i's not-yet-consumed words as we descend.
	residuals := make([][]string, len(seqs))
	for i, s := range seqs {
		residuals[i] = s.tokens
	}
	idx := make([]int, len(seqs))
	totalWeight := 0
	for i := range idx {
		idx[i] = i
		totalWeight += seqs[i].count
	}
	minSup := int(opt.MinChildFraction * float64(totalWeight))
	if minSup < opt.MinChildCount {
		minSup = opt.MinChildCount
	}

	var leaves [][]int
	buildTree(seqs, residuals, idx, opt, minSup, 0, &leaves)

	patterns := make([][]string, 0, len(leaves))
	seen := make(map[string]bool)
	for _, leaf := range leaves {
		group := make([][]string, len(leaf))
		for i, j := range leaf {
			group[i] = seqs[j].tokens
		}
		p := leafPattern(group)
		key := strings.Join(p, "\x00")
		if !seen[key] {
			seen[key] = true
			patterns = append(patterns, p)
		}
	}
	return patterns
}

// buildTree recursively partitions idx (indices into seqs) and appends leaf
// groups to leaves. residuals is indexed by sequence index and mutated as
// signatures are consumed.
func buildTree(seqs []*uniqueSeq, residuals [][]string, idx []int, opt Options, minSup, depth int, leaves *[][]int) {
	if len(idx) == 0 {
		return
	}
	if depth >= opt.MaxDepth {
		*leaves = append(*leaves, idx)
		return
	}
	// A node whose members have no unmasked residual words left is a leaf.
	if !anyLiteralResidual(residuals, idx) {
		*leaves = append(*leaves, idx)
		return
	}

	children := partition(seqs, residuals, idx, minSup)
	if len(children) > opt.K || len(children) == 0 {
		// Prune: too many sub structures means we are looking at a variable
		// word; the parent itself becomes the template.
		*leaves = append(*leaves, idx)
		return
	}
	if len(children) == 1 && !children[0].progressed && sameSet(children[0].idx, idx) {
		// Nothing split off and no signature consumed: the node's residual
		// words are all below the support threshold — variable values, not
		// sub types. The node is a leaf.
		*leaves = append(*leaves, idx)
		return
	}
	for _, child := range children {
		buildTree(seqs, residuals, child.idx, opt, minSup, depth+1, leaves)
	}
}

// childSet is one partition output: the member indices and whether a
// signature was consumed from their residuals (guaranteeing progress).
type childSet struct {
	idx        []int
	progressed bool
}

// partition implements one round of the paper's child construction: pick the
// most frequent literal word among the pool's residuals, split off the
// members containing it, consume their common residual pattern, repeat on
// the remainder. A word below minSup — the corpus-anchored support
// threshold — is a variable value rather than a sub type, so the remaining
// members pool into one unprogressed child, which the caller turns into a
// leaf.
func partition(seqs []*uniqueSeq, residuals [][]string, idx []int, minSup int) []childSet {
	pool := append([]int(nil), idx...)
	var children []childSet
	for len(pool) > 0 {
		// Weighted frequency of each literal residual word (counted once
		// per member).
		freq := make(map[string]int)
		for _, i := range pool {
			seen := make(map[string]bool)
			for _, w := range residuals[i] {
				if IsWildcard(w) || seen[w] {
					continue
				}
				seen[w] = true
				freq[w] += seqs[i].count
			}
		}
		best, bestN := "", -1
		for w, n := range freq {
			if n > bestN || (n == bestN && w < best) {
				best, bestN = w, n
			}
		}
		if bestN < minSup {
			// Leftovers share no word frequent enough to mark a sub type.
			children = append(children, childSet{idx: pool})
			break
		}
		var member, rest []int
		for _, i := range pool {
			if containsWord(residuals[i], best) {
				member = append(member, i)
			} else {
				rest = append(rest, i)
			}
		}
		// The child's signature is the common residual pattern of its
		// members; consume it from their residuals.
		sig := commonSubsequence(collect(residuals, member))
		sig = literalOnly(sig)
		for _, i := range member {
			residuals[i] = removeSubsequence(residuals[i], sig)
		}
		children = append(children, childSet{idx: member, progressed: len(sig) > 0})
		pool = rest
	}
	return children
}

func collect(residuals [][]string, idx []int) [][]string {
	out := make([][]string, len(idx))
	for i, j := range idx {
		out[i] = residuals[j]
	}
	return out
}

func literalOnly(ws []string) []string {
	out := ws[:0:0]
	for _, w := range ws {
		if !IsWildcard(w) {
			out = append(out, w)
		}
	}
	return out
}

func anyLiteralResidual(residuals [][]string, idx []int) bool {
	for _, i := range idx {
		for _, w := range residuals[i] {
			if !IsWildcard(w) {
				return true
			}
		}
	}
	return false
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func containsWord(seq []string, w string) bool {
	for _, x := range seq {
		if x == w {
			return true
		}
	}
	return false
}

// lcs returns the longest common subsequence of two token sequences.
func lcs(a, b []string) []string {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	out := make([]string, 0, dp[0][0])
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// commonSubsequence folds lcs over a group of sequences.
func commonSubsequence(seqs [][]string) []string {
	if len(seqs) == 0 {
		return nil
	}
	p := seqs[0]
	for _, s := range seqs[1:] {
		if len(p) == 0 {
			return nil
		}
		p = lcs(p, s)
	}
	return p
}

// removeSubsequence removes one occurrence of each sub word from seq, in
// order (the greedy inverse of subsequence matching). Words of sub missing
// from seq are skipped.
func removeSubsequence(seq, sub []string) []string {
	if len(sub) == 0 {
		return seq
	}
	out := make([]string, 0, len(seq))
	k := 0
	for _, w := range seq {
		if k < len(sub) && w == sub[k] {
			k++
			continue
		}
		out = append(out, w)
	}
	return out
}

// leafPattern renders a leaf's template: the common subsequence of its
// messages' full masked token sequences, with gaps (words present in the
// reference message but not common) shown as single "*" entries.
func leafPattern(group [][]string) []string {
	common := commonSubsequence(group)
	ref := group[0]
	out := make([]string, 0, len(ref))
	k := 0
	gap := false
	for _, w := range ref {
		if k < len(common) && w == common[k] {
			out = append(out, w)
			k++
			gap = false
		} else if !gap {
			out = append(out, textutil.Mask)
			gap = true
		}
	}
	// Collapse adjacent wildcard-ish entries ("*," followed by "*").
	collapsed := out[:0:0]
	for _, w := range out {
		if IsWildcard(w) && len(collapsed) > 0 && IsWildcard(collapsed[len(collapsed)-1]) {
			continue
		}
		collapsed = append(collapsed, w)
	}
	return collapsed
}

// Matcher performs online signature matching: message → template. It is
// immutable after NewMatcher (Instrument excepted, which must run before
// matching starts) and safe for concurrent use.
//
// Internally the matcher is an interned-symbol engine. NewMatcher builds a
// string intern pool mapping every literal word appearing in any template to
// a dense int32 symbol; message tokens are resolved through the pool once per
// match, so ordered-containment tests compare integers instead of strings,
// and a token absent from the pool (symbol -1) can never equal a literal —
// unknown words reject for free. Per error code the matcher also keeps a
// rarest-literal inverted index: each template is filed under its most
// discriminating literal (the one occurring in the fewest templates of that
// code), and a match only tests templates whose discriminating literal
// actually occurs in the message, plus the literal-free templates that match
// anything. Candidates are tested in the same most-specific-first order as a
// full scan, so results are byte-identical to the linear reference
// (MatchTokensLinear); the differential tests assert exactly that.
type Matcher struct {
	byCode map[string]*codeIndex
	byID   map[int]Template
	sorted []Template       // by ID, built once; Templates() returns copies
	pool   map[string]int32 // literal word → dense symbol
	// prefilter[b] has bit l set when some pool word starts with byte b and
	// has length l (capped at 63). Most message tokens are masked values —
	// interface names, addresses, numbers — that appear in no template, and
	// this one-load test lets them resolve to noSym without hashing.
	prefilter [256]uint64
	// scanned counts candidate templates actually tested for ordered
	// containment (digest.match.candidates_scanned); nil until Instrument.
	scanned *obs.Counter
	scratch sync.Pool // *matchScratch
}

// noSym marks a message token absent from the intern pool. Literal symbols
// are all >= 0, so a noSym token can never satisfy a literal comparison.
const noSym int32 = -1

// matchEntry is one indexed template with its literal words precomputed —
// both as strings (for the linear reference path) and as interned symbols
// (for the hot path). Match is the hottest call in the online pipeline, so
// all per-template work is paid once at index build instead of per message.
type matchEntry struct {
	t    Template
	lits []string
	syms []int32 // lits resolved through the intern pool, in order
	// rarest is the discriminating literal: the literal occurring in the
	// fewest of this code's templates, ties broken by pattern order; noSym
	// when the template has no literals (matches anything). A message not
	// containing this symbol cannot match the template, which prunes the
	// candidate scan before any containment test.
	rarest int32
}

// invertedIndexMin is the per-code template count above which the posting-
// list inverted index pays for its merge overhead. Below it (the common
// case — the learner's K=10 degree prune caps sub-types per code) the
// rarest-literal check runs inline over the ordered scan, which prunes
// identically without map lookups or a candidate sort.
const invertedIndexMin = 16

// codeIndex holds one error code's templates, most-specific-first, plus the
// rarest-literal inverted index over them.
type codeIndex struct {
	entries []matchEntry
	// byRarest files each entry (by position in entries) under its rarest
	// literal. Posting lists are ascending, and every entry with at least
	// one literal is in exactly one list. nil for codes below
	// invertedIndexMin, which scan inline instead.
	byRarest map[int32][]int32
	// always holds entries with no literals; they match any message.
	// Populated only alongside byRarest.
	always []int32
}

// matchScratch is the per-call working memory of MatchTokens, pooled so the
// steady-state match path allocates nothing.
type matchScratch struct {
	syms []int32
	cand []int32
}

// NewMatcher indexes templates for matching. Within each code, templates are
// ordered most-specific-first so Match can return the first hit.
func NewMatcher(templates []Template) *Matcher {
	m := &Matcher{
		byCode: make(map[string]*codeIndex),
		byID:   make(map[int]Template, len(templates)),
		pool:   make(map[string]int32),
	}
	m.scratch.New = func() any { return &matchScratch{} }
	for _, t := range templates {
		ci := m.byCode[t.Code]
		if ci == nil {
			ci = &codeIndex{}
			m.byCode[t.Code] = ci
		}
		lits := t.Literals()
		e := matchEntry{t: t, lits: lits, syms: make([]int32, len(lits))}
		for i, w := range lits {
			s, ok := m.pool[w]
			if !ok {
				s = int32(len(m.pool))
				m.pool[w] = s
				m.prefilter[w[0]] |= 1 << lenBit(w)
			}
			e.syms[i] = s
		}
		ci.entries = append(ci.entries, e)
		m.byID[t.ID] = t
	}
	for _, ci := range m.byCode {
		ts := ci.entries
		sort.SliceStable(ts, func(i, j int) bool {
			si, sj := len(ts[i].lits), len(ts[j].lits)
			if si != sj {
				return si > sj
			}
			return ts[i].t.ID < ts[j].t.ID
		})
		ci.buildIndex()
	}
	m.sorted = make([]Template, 0, len(m.byID))
	for _, t := range m.byID {
		m.sorted = append(m.sorted, t)
	}
	sort.Slice(m.sorted, func(i, j int) bool { return m.sorted[i].ID < m.sorted[j].ID })
	return m
}

// buildIndex computes each entry's discriminating literal and, for codes
// with many templates, files entries into the inverted index. Called once
// per code after entries are sorted.
func (ci *codeIndex) buildIndex() {
	// Document frequency of each symbol within this code (counted once per
	// entry).
	freq := make(map[int32]int)
	for i := range ci.entries {
		e := &ci.entries[i]
		for j, s := range e.syms {
			if !containsSymBefore(e.syms, s, j) {
				freq[s]++
			}
		}
	}
	for i := range ci.entries {
		e := &ci.entries[i]
		e.rarest = noSym
		if len(e.syms) == 0 {
			continue
		}
		rarest, best := e.syms[0], freq[e.syms[0]]
		for _, s := range e.syms[1:] {
			if n := freq[s]; n < best {
				rarest, best = s, n
			}
		}
		e.rarest = rarest
	}
	if len(ci.entries) < invertedIndexMin {
		return
	}
	ci.byRarest = make(map[int32][]int32)
	for i := range ci.entries {
		e := &ci.entries[i]
		if e.rarest == noSym {
			ci.always = append(ci.always, int32(i))
			continue
		}
		ci.byRarest[e.rarest] = append(ci.byRarest[e.rarest], int32(i))
	}
}

// lenBit maps a word length onto a prefilter bit, capping long words at 63.
func lenBit(w string) uint {
	if len(w) >= 63 {
		return 63
	}
	return uint(len(w))
}

// containsSymBefore reports whether s occurs in syms[:end].
func containsSymBefore(syms []int32, s int32, end int) bool {
	for _, x := range syms[:end] {
		if x == s {
			return true
		}
	}
	return false
}

// Instrument publishes the matcher's candidate-scan counter
// (digest.match.candidates_scanned) into reg. Call before matching begins;
// a nil registry leaves the matcher uninstrumented.
func (m *Matcher) Instrument(reg *obs.Registry) {
	m.scanned = reg.Counter("digest.match.candidates_scanned")
}

// Templates returns all indexed templates sorted by ID. The sorted order is
// built once at NewMatcher; each call returns a fresh copy the caller may
// mutate freely.
func (m *Matcher) Templates() []Template {
	return append([]Template(nil), m.sorted...)
}

// ByID returns the template with the given ID.
func (m *Matcher) ByID(id int) (Template, bool) {
	t, ok := m.byID[id]
	return t, ok
}

// Match finds the most specific template whose literal words appear in order
// in the message detail. ok is false when no template of the message's code
// matches.
func (m *Matcher) Match(code, detail string) (Template, bool) {
	if m.byCode[code] == nil {
		return Template{}, false
	}
	return m.MatchTokens(code, textutil.Tokenize(detail))
}

// MatchTokens is Match over a pre-tokenized detail, letting callers that
// also location-parse the message tokenize it once and share the slice.
// Results are byte-identical to MatchTokensLinear at a fraction of the
// comparisons; the steady-state path allocates nothing.
func (m *Matcher) MatchTokens(code string, toks []string) (Template, bool) {
	ci := m.byCode[code]
	if ci == nil {
		return Template{}, false
	}
	sc := m.scratch.Get().(*matchScratch)
	syms := sc.syms[:0]
	for _, w := range toks {
		s := noSym
		if len(w) > 0 && m.prefilter[w[0]]&(1<<lenBit(w)) != 0 {
			if ps, ok := m.pool[w]; ok {
				s = ps
			}
		}
		syms = append(syms, s)
	}

	var (
		hit     Template
		ok      bool
		scanned int
	)
	if ci.byRarest == nil {
		// Few templates: ordered scan with the rarest-literal prune inline.
		for i := range ci.entries {
			e := &ci.entries[i]
			if e.rarest != noSym && !containsSym(syms, e.rarest) {
				continue
			}
			scanned++
			if matchesSymbols(e.syms, syms) {
				hit, ok = e.t, true
				break
			}
		}
	} else {
		// Many templates: gather candidates from the inverted index —
		// templates filed under a symbol the message actually contains,
		// plus the always-match (literal-free) templates. Each entry lives
		// in exactly one posting list, and message symbols are
		// deduplicated, so no entry is gathered twice; sorting ascending
		// restores the most-specific-first order of the full scan.
		cand := sc.cand[:0]
		for i, s := range syms {
			if s == noSym || containsSymBefore(syms, s, i) {
				continue
			}
			cand = append(cand, ci.byRarest[s]...)
		}
		cand = append(cand, ci.always...)
		sortInt32(cand)
		for _, ei := range cand {
			scanned++
			if matchesSymbols(ci.entries[ei].syms, syms) {
				hit, ok = ci.entries[ei].t, true
				break
			}
		}
		sc.cand = cand
	}
	m.scanned.Add(uint64(scanned))
	sc.syms = syms
	m.scratch.Put(sc)
	return hit, ok
}

// containsSym reports whether s occurs in syms.
func containsSym(syms []int32, s int32) bool {
	for _, x := range syms {
		if x == s {
			return true
		}
	}
	return false
}

// MatchTokensLinear is the pre-interning reference implementation: a full
// most-specific-first scan comparing literal words as strings. It is kept
// off the hot path for differential testing and A/B benchmarking — MatchTokens
// must agree with it on every input.
func (m *Matcher) MatchTokensLinear(code string, toks []string) (Template, bool) {
	ci := m.byCode[code]
	if ci == nil {
		return Template{}, false
	}
	for i := range ci.entries {
		if matchesLiterals(ci.entries[i].lits, toks) {
			return ci.entries[i].t, true
		}
	}
	return Template{}, false
}

// matchesLiterals tests ordered containment of the literal words in toks.
func matchesLiterals(lits, toks []string) bool {
	k := 0
	for _, w := range toks {
		if k < len(lits) && w == lits[k] {
			k++
		}
	}
	return k == len(lits)
}

// matchesSymbols is matchesLiterals over interned symbols. Unknown message
// tokens are noSym (-1), which never equals a literal symbol, so they are
// skipped implicitly.
func matchesSymbols(lits, syms []int32) bool {
	k := 0
	for _, s := range syms {
		if k < len(lits) && s == lits[k] {
			k++
		}
	}
	return k == len(lits)
}

// sortInt32 insertion-sorts a small candidate slice ascending — candidate
// sets are a handful of entries, below the crossover where sort.Slice (and
// its allocation) would pay off.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// FractionMatching is an accuracy helper used by the §5.2.1 evaluation: the
// fraction of `truth` templates for which some learned template is Equal.
func FractionMatching(learned, truth []Template) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := 0
	for _, g := range truth {
		for _, l := range learned {
			if l.Equal(g) {
				n++
				break
			}
		}
	}
	return float64(n) / float64(len(truth))
}

// MustTemplate builds a Template from its display form, for tests and
// ground-truth tables: "LINK-3-UPDOWN|Interface *, changed state to down".
func MustTemplate(id int, s string) Template {
	i := strings.IndexByte(s, '|')
	if i < 0 {
		panic(fmt.Sprintf("template: MustTemplate input %q has no '|'", s))
	}
	return Template{ID: id, Code: s[:i], Words: textutil.Tokenize(s[i+1:])}
}
