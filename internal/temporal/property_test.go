package temporal

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// Property tests on the interarrival model.

func randomStream(rng *rand.Rand, n int) []time.Time {
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	offs := make([]int, n)
	for i := range offs {
		offs[i] = rng.Intn(48 * 3600)
	}
	sort.Ints(offs)
	out := make([]time.Time, n)
	for i, o := range offs {
		out[i] = base.Add(time.Duration(o) * time.Second)
	}
	return out
}

func TestGroupStreamWellFormedQuick(t *testing.T) {
	f := func(seed int64, sz uint8, alphaRaw uint8, betaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%100) + 1
		stream := randomStream(rng, n)
		p := DefaultParams()
		p.Alpha = float64(alphaRaw%100) / 100 // [0, 0.99]
		p.Beta = 1 + float64(betaRaw%7)       // [1, 7]
		ids, err := GroupStream(stream, p)
		if err != nil {
			return false
		}
		if len(ids) != n {
			return false
		}
		if ids[0] != 0 {
			return false
		}
		for i := 1; i < n; i++ {
			if ids[i] != ids[i-1] && ids[i] != ids[i-1]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a sub-Smin burst is always one group regardless of parameters.
func TestBurstAlwaysGroupsQuick(t *testing.T) {
	f := func(alphaRaw, betaRaw, sz uint8) bool {
		p := DefaultParams()
		p.Alpha = float64(alphaRaw%100) / 100
		p.Beta = 1 + float64(betaRaw%7)
		n := int(sz%50) + 2
		base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
		stream := make([]time.Time, n)
		for i := range stream {
			stream[i] = base.Add(time.Duration(i) * 500 * time.Millisecond)
		}
		ids, err := GroupStream(stream, p)
		if err != nil {
			return false
		}
		return ids[len(ids)-1] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: compression ratio is monotone nonincreasing in beta for any
// stream (a looser tolerance can only merge more).
func TestRatioMonotoneInBetaQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := randomStream(rng, int(sz%80)+2)
		prev := 2.0
		for _, beta := range []float64{2, 3, 5, 7} {
			p := DefaultParams()
			p.Beta = beta
			r, err := CompressionRatio([][]time.Time{stream}, p)
			if err != nil {
				return false
			}
			if r > prev+1e-12 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
