package temporal

import (
	"testing"
	"time"
)

var t0 = time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)

func at(secs ...float64) []time.Time {
	out := make([]time.Time, len(secs))
	for i, s := range secs {
		out[i] = t0.Add(time.Duration(s * float64(time.Second)))
	}
	return out
}

func TestParamsNormalize(t *testing.T) {
	p, err := Params{Alpha: 0.1}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Beta != 5 || p.Smin != time.Second || p.Smax != 3*time.Hour {
		t.Fatalf("defaults not applied: %+v", p)
	}
	for _, bad := range []Params{
		{Alpha: -0.1}, {Alpha: 1.5}, {Alpha: 0.1, Beta: 0.5},
		{Alpha: 0.1, Smin: time.Hour, Smax: time.Minute},
	} {
		if _, err := bad.normalize(); err == nil {
			t.Errorf("params %+v accepted", bad)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Alpha != 0.05 || p.Beta != 5 || p.Smin != time.Second || p.Smax != 3*time.Hour {
		t.Fatalf("DefaultParams = %+v", p)
	}
}

func TestGrouperFirstArrivalStartsGroup(t *testing.T) {
	g, err := NewGrouper(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if g.Observe(t0) {
		t.Fatal("first arrival must start a new group")
	}
	if _, ok := g.Predicted(); ok {
		t.Fatal("no prediction should exist before the first interarrival")
	}
}

func TestGrouperSminAlwaysGroups(t *testing.T) {
	g, _ := NewGrouper(DefaultParams())
	g.Observe(t0)
	if !g.Observe(t0.Add(500 * time.Millisecond)) {
		t.Fatal("sub-Smin interarrival must group")
	}
	if !g.Observe(t0.Add(1500 * time.Millisecond)) {
		t.Fatal("exactly-Smin interarrival must group")
	}
}

func TestGrouperSmaxNeverGroups(t *testing.T) {
	p := DefaultParams()
	p.Beta = 1000 // even a huge tolerance cannot override Smax
	g, _ := NewGrouper(p)
	g.Observe(t0)
	g.Observe(t0.Add(time.Second))     // bootstrap prediction at 1s... via Smin
	g.Observe(t0.Add(2 * time.Second)) // prediction ~1s
	if g.Observe(t0.Add(4 * time.Hour)) {
		t.Fatal("beyond-Smax interarrival must not group")
	}
}

func TestGrouperPeriodicStreamGroups(t *testing.T) {
	// Timer firing every 5 minutes: after the bootstrap break, everything
	// should stay in one group (Figure 5's pattern).
	ids, err := GroupStream(at(0, 300, 600, 900, 1200, 1500), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// First two arrivals may split (no prediction yet), the rest must all
	// share the last group.
	last := ids[len(ids)-1]
	for i := 2; i < len(ids); i++ {
		if ids[i] != last {
			t.Fatalf("periodic stream split after bootstrap: %v", ids)
		}
	}
	if ids[len(ids)-1] > 1 {
		t.Fatalf("more than 2 groups for a clean periodic stream: %v", ids)
	}
}

func TestGrouperBreaksOnGap(t *testing.T) {
	// A burst, a long quiet spell, another burst: two groups (plus the
	// possible bootstrap split).
	ids, err := GroupStream(at(0, 1, 2, 3, 7200, 7201, 7202), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if ids[3] != ids[0] {
		t.Fatalf("burst split unexpectedly: %v", ids)
	}
	if ids[4] == ids[3] {
		t.Fatalf("2-hour gap did not break the group: %v", ids)
	}
	if ids[6] != ids[4] {
		t.Fatalf("second burst split: %v", ids)
	}
}

func TestGrouperOutOfOrderTreatedAsZeroGap(t *testing.T) {
	g, _ := NewGrouper(DefaultParams())
	g.Observe(t0.Add(10 * time.Second))
	if !g.Observe(t0) {
		t.Fatal("out-of-order arrival should group (zero interarrival)")
	}
}

func TestGrouperBetaTolerance(t *testing.T) {
	p := DefaultParams()
	p.Alpha = 1 // prediction = last interarrival exactly
	p.Beta = 2
	g, _ := NewGrouper(p)
	g.Observe(t0)
	g.Observe(t0.Add(10 * time.Second)) // trains Ŝ=10 (break, no prediction)
	if !g.Observe(t0.Add(25 * time.Second)) {
		t.Fatal("15s <= 2*10s should group")
	}
	// Ŝ is now 15. 2*15=30 tolerance; a 31s gap must break.
	if g.Observe(t0.Add(56 * time.Second)) {
		t.Fatal("31s > 2*15s should break")
	}
}

func TestGroupStreamEmpty(t *testing.T) {
	ids, err := GroupStream(nil, DefaultParams())
	if err != nil || len(ids) != 0 {
		t.Fatalf("GroupStream(nil) = %v, %v", ids, err)
	}
}

func TestGroupStreamInvalidParams(t *testing.T) {
	if _, err := GroupStream(at(0), Params{Alpha: -1}); err == nil {
		t.Fatal("want error for invalid params")
	}
}

func TestCompressionRatio(t *testing.T) {
	// One stream of 4 messages in one burst -> 1 group / 4 msgs = 0.25
	// (bootstrap: gaps are sub-Smin so they all group).
	streams := [][]time.Time{at(0, 0.5, 1.0, 1.5)}
	r, err := CompressionRatio(streams, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.25 {
		t.Fatalf("ratio = %v, want 0.25", r)
	}
	// Empty input: ratio defined as 1.
	r, err = CompressionRatio(nil, DefaultParams())
	if err != nil || r != 1 {
		t.Fatalf("empty ratio = %v, %v", r, err)
	}
}

func TestCompressionRatioMoreGroupingIsLower(t *testing.T) {
	// The same stream at two betas: a larger beta can only reduce (or keep)
	// the number of groups.
	stream := at(0, 2, 5, 9, 14, 20, 27, 35, 44, 54)
	for _, pair := range [][2]float64{{2, 7}, {2, 5}, {3, 6}} {
		lo, hi := pair[0], pair[1]
		pLo, pHi := DefaultParams(), DefaultParams()
		pLo.Beta, pHi.Beta = lo, hi
		rLo, err := CompressionRatio([][]time.Time{stream}, pLo)
		if err != nil {
			t.Fatal(err)
		}
		rHi, err := CompressionRatio([][]time.Time{stream}, pHi)
		if err != nil {
			t.Fatal(err)
		}
		if rHi > rLo {
			t.Fatalf("beta %v ratio %v > beta %v ratio %v", hi, rHi, lo, rLo)
		}
	}
}

func TestSweepAlphaAndBeta(t *testing.T) {
	streams := [][]time.Time{at(0, 10, 20, 30, 31, 32, 100, 110, 120)}
	pts, err := SweepAlpha(streams, []float64{0.05, 0.5}, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Alpha != 0.05 || pts[1].Alpha != 0.5 {
		t.Fatalf("SweepAlpha = %+v", pts)
	}
	bpts, err := SweepBeta(streams, []float64{2, 3, 4}, 0.05, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(bpts) != 3 || bpts[2].Beta != 4 {
		t.Fatalf("SweepBeta = %+v", bpts)
	}
	// Ratios are valid probabilities.
	for _, p := range append(pts, bpts...) {
		if p.Ratio <= 0 || p.Ratio > 1 {
			t.Fatalf("ratio out of range: %+v", p)
		}
	}
}

func TestCalibratePicksMinimum(t *testing.T) {
	// Stream with quasi-periodic spacing and occasional noise: calibration
	// must return settings whose ratio equals the grid minimum.
	streams := [][]time.Time{
		at(0, 60, 120, 180, 181, 240, 300, 360, 365, 420),
		at(0, 5, 10, 15, 20, 3600, 3605, 3610),
	}
	alphas := []float64{0, 0.05, 0.3, 0.9}
	betas := []float64{2, 5}
	best, err := Calibrate(streams, alphas, betas, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bestRatio, err := CompressionRatio(streams, best)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range alphas {
		for _, b := range betas {
			p := DefaultParams()
			p.Alpha, p.Beta = a, b
			r, err := CompressionRatio(streams, p)
			if err != nil {
				t.Fatal(err)
			}
			if r < bestRatio {
				t.Fatalf("Calibrate missed better point (α=%v, β=%v): %v < %v", a, b, r, bestRatio)
			}
		}
	}
}

func TestCalibrateEmptyGrid(t *testing.T) {
	if _, err := Calibrate(nil, nil, []float64{2}, DefaultParams()); err == nil {
		t.Fatal("want error for empty grid")
	}
}

func TestDetectPeriodic(t *testing.T) {
	// Clean 5-minute timer.
	per, ok := DetectPeriodic(at(0, 300, 600, 900, 1200), 0.99)
	if !ok {
		t.Fatal("clean periodic stream not detected")
	}
	if per.Period < 299*time.Second || per.Period > 301*time.Second {
		t.Fatalf("period = %v, want ~300s", per.Period)
	}
	// Jittered timer still detected at a looser threshold.
	if _, ok := DetectPeriodic(at(0, 295, 610, 905, 1190, 1505), 0.95); !ok {
		t.Fatal("jittered periodic stream not detected")
	}
	// Random-ish spacing rejected at a strict threshold.
	if _, ok := DetectPeriodic(at(0, 3, 700, 701, 2400), 0.99); ok {
		t.Fatal("aperiodic stream detected as periodic")
	}
	// Too few points.
	if _, ok := DetectPeriodic(at(0, 300, 600), 0.5); ok {
		t.Fatal("3 points should not be enough")
	}
}

// Property: group ids from GroupStream are 0-based, contiguous and
// nondecreasing for any sorted stream.
func TestGroupStreamIDsWellFormed(t *testing.T) {
	streams := [][]time.Time{
		at(0, 1, 2, 3, 4),
		at(0, 300, 600, 900),
		at(0, 7200, 14400, 21600, 28800),
		at(0, 0.1, 0.2, 5000, 5000.1, 12000),
	}
	for _, s := range streams {
		ids, err := GroupStream(s, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) > 0 && ids[0] != 0 {
			t.Fatalf("ids must start at 0: %v", ids)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] != ids[i-1] && ids[i] != ids[i-1]+1 {
				t.Fatalf("ids not contiguous: %v", ids)
			}
		}
	}
}
