// Package temporal implements the paper's temporal pattern learning
// (§4.1.3) and online temporal grouping (§4.2.1).
//
// Messages of one template on one router often arrive in clusters — a
// flapping controller fires every few seconds while unstable; a timer-driven
// message fires every few minutes for hours. The model predicts the next
// interarrival time with an exponentially weighted moving average,
//
//	Ŝt = α·St−1 + (1−α)·Ŝt−1,
//
// and keeps a message in the current group while the real interarrival is
// not much larger than predicted, St ≤ β·Ŝt, bounded below by Smin (join
// anything closer than the syslog clock granularity) and above by Smax
// (never bridge more than a few hours).
//
// The offline side calibrates α and β by sweeping them over historical
// per-(template, router) arrival streams and picking the setting that
// minimizes the compression ratio (#groups / #messages), which is exactly
// the procedure behind the paper's Figures 10 and 11.
package temporal

import (
	"fmt"
	"time"

	"syslogdigest/internal/par"
	"syslogdigest/internal/stats"
)

// Params are the temporal grouping parameters.
type Params struct {
	Alpha float64       // EWMA weight for the newest interarrival
	Beta  float64       // tolerance multiplier on the prediction
	Smin  time.Duration // interarrivals at or below this always group
	Smax  time.Duration // interarrivals at or above this never group
}

// DefaultParams returns the paper's Table 6 setting for dataset A
// (α=0.05, β=5) with Smin=1s and Smax=3h.
func DefaultParams() Params {
	return Params{Alpha: 0.05, Beta: 5, Smin: time.Second, Smax: 3 * time.Hour}
}

// normalize fills unset fields with defaults and validates ranges.
func (p Params) normalize() (Params, error) {
	if p.Alpha < 0 || p.Alpha > 1 {
		return p, fmt.Errorf("temporal: alpha %v out of [0,1]", p.Alpha)
	}
	if p.Beta == 0 {
		p.Beta = 5
	}
	if p.Beta < 1 {
		return p, fmt.Errorf("temporal: beta %v must be >= 1", p.Beta)
	}
	if p.Smin == 0 {
		p.Smin = time.Second
	}
	if p.Smax == 0 {
		p.Smax = 3 * time.Hour
	}
	if p.Smax <= p.Smin {
		return p, fmt.Errorf("temporal: Smax %v must exceed Smin %v", p.Smax, p.Smin)
	}
	return p, nil
}

// Grouper ingests the arrival times of one (template, router) stream in
// order and reports group boundaries. The zero value is not usable;
// construct with NewGrouper.
type Grouper struct {
	p       Params
	ewma    *stats.EWMA
	last    time.Time
	started bool
}

// NewGrouper builds a grouper; invalid params return an error.
func NewGrouper(p Params) (*Grouper, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	return &Grouper{p: p, ewma: stats.NewEWMA(p.Alpha)}, nil
}

// Params returns the normalized parameters in use.
func (g *Grouper) Params() Params { return g.p }

// Observe ingests the next arrival and reports whether it belongs to the
// same group as the previous one. The first arrival always starts a new
// group (returns false). Out-of-order arrivals are treated as zero
// interarrival and therefore always group.
//
// Every interarrival — clamped to Smax — trains the predictor, including
// group-breaking ones: the model tracks the template's typical spacing, and
// folding breaks in (dampened by α) lets it recover when a pattern's period
// genuinely changes.
func (g *Grouper) Observe(t time.Time) bool {
	if !g.started {
		g.started = true
		g.last = t
		return false
	}
	st := t.Sub(g.last)
	if st < 0 {
		st = 0
	}
	g.last = t

	same := false
	switch {
	case st <= g.p.Smin:
		same = true
	case st >= g.p.Smax:
		same = false
	case g.ewma.Started():
		same = float64(st) <= g.p.Beta*g.ewma.Value()
	default:
		// No prediction yet: only Smin-close arrivals group. One stray
		// boundary on the first interarrival of a stream is the price of
		// not bridging unrelated messages.
		same = false
	}

	train := st
	if train > g.p.Smax {
		train = g.p.Smax
	}
	g.ewma.Observe(float64(train))
	return same
}

// GrouperState is the serializable state of a Grouper: everything Observe
// mutates, with the last-arrival time flattened to Unix nanoseconds (0 =
// never observed). The parameters are deliberately not part of the state —
// they are configuration, supplied again at restore — so a checkpoint
// cannot silently override the knowledge base it is restored into.
type GrouperState struct {
	EwmaValue   float64 `json:"ewma_value"`
	EwmaStarted bool    `json:"ewma_started"`
	LastNs      int64   `json:"last_ns"`
	Started     bool    `json:"started"`
}

// State snapshots the grouper's mutable state for checkpointing.
func (g *Grouper) State() GrouperState {
	st := GrouperState{
		EwmaValue:   g.ewma.Value(),
		EwmaStarted: g.ewma.Started(),
		Started:     g.started,
	}
	if !g.last.IsZero() {
		st.LastNs = g.last.UnixNano()
	}
	return st
}

// RestoreGrouper rebuilds a grouper from parameters and a snapshotted
// state; a restored grouper's Observe sequence continues bit-identically.
func RestoreGrouper(p Params, st GrouperState) (*Grouper, error) {
	g, err := NewGrouper(p)
	if err != nil {
		return nil, err
	}
	g.ewma.SetState(st.EwmaValue, st.EwmaStarted)
	if st.LastNs != 0 {
		g.last = time.Unix(0, st.LastNs).UTC()
	}
	g.started = st.Started
	return g, nil
}

// Predicted returns the current interarrival prediction Ŝ and whether the
// model has one yet.
func (g *Grouper) Predicted() (time.Duration, bool) {
	if !g.ewma.Started() {
		return 0, false
	}
	return time.Duration(g.ewma.Value()), true
}

// GroupStream assigns a group id (0-based, nondecreasing) to each arrival
// time in ts, which must be sorted ascending.
func GroupStream(ts []time.Time, p Params) ([]int, error) {
	g, err := NewGrouper(p)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(ts))
	id := -1
	for i, t := range ts {
		if !g.Observe(t) {
			id++
		}
		out[i] = id
	}
	return out, nil
}

// CompressionRatio runs temporal grouping over a set of independent arrival
// streams and returns (total groups) / (total arrivals) — the paper's
// compression ratio for the temporal stage. Empty input returns 1.
func CompressionRatio(streams [][]time.Time, p Params) (float64, error) {
	groups, msgs := 0, 0
	for _, ts := range streams {
		ids, err := GroupStream(ts, p)
		if err != nil {
			return 0, err
		}
		msgs += len(ts)
		if len(ids) > 0 {
			groups += ids[len(ids)-1] + 1
		}
	}
	if msgs == 0 {
		return 1, nil
	}
	return float64(groups) / float64(msgs), nil
}

// SweepPoint is one (parameter, ratio) sample from a calibration sweep.
type SweepPoint struct {
	Alpha, Beta float64
	Ratio       float64
}

// SweepAlpha computes the compression ratio for each alpha at fixed beta,
// reproducing the x-axis of the paper's Figure 10.
func SweepAlpha(streams [][]time.Time, alphas []float64, beta float64, base Params) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(alphas))
	for _, a := range alphas {
		p := base
		p.Alpha, p.Beta = a, beta
		r, err := CompressionRatio(streams, p)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Alpha: a, Beta: beta, Ratio: r})
	}
	return out, nil
}

// SweepBeta computes the compression ratio for each beta at fixed alpha,
// reproducing the x-axis of the paper's Figure 11.
func SweepBeta(streams [][]time.Time, betas []float64, alpha float64, base Params) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(betas))
	for _, b := range betas {
		p := base
		p.Alpha, p.Beta = alpha, b
		r, err := CompressionRatio(streams, p)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Alpha: alpha, Beta: b, Ratio: r})
	}
	return out, nil
}

// Calibrate picks the (alpha, beta) pair minimizing the compression ratio
// over the given grids, the offline procedure of §5.2.3. Ties prefer the
// smaller alpha, then the smaller beta (cheaper, more stable settings).
// The grid is evaluated on a default worker pool; see CalibrateWith.
func Calibrate(streams [][]time.Time, alphas, betas []float64, base Params) (Params, error) {
	return CalibrateWith(nil, streams, alphas, betas, base)
}

// CalibrateWith is Calibrate with an explicit worker pool: every (alpha,
// beta) grid point replays the streams independently, so the sweep is
// evaluated concurrently and the winner is then selected serially in grid
// order — identical to the serial sweep at any worker count. A nil pool
// means a default pool at GOMAXPROCS.
func CalibrateWith(pool *par.Pool, streams [][]time.Time, alphas, betas []float64, base Params) (Params, error) {
	if len(alphas) == 0 || len(betas) == 0 {
		return Params{}, fmt.Errorf("temporal: empty calibration grid")
	}
	if pool == nil {
		pool = par.New(0)
	}
	grid := make([]Params, 0, len(alphas)*len(betas))
	for _, a := range alphas {
		for _, b := range betas {
			p := base
			p.Alpha, p.Beta = a, b
			grid = append(grid, p)
		}
	}
	ratios, err := par.Map(pool, len(grid), func(i int) (float64, error) {
		return CompressionRatio(streams, grid[i])
	})
	if err != nil {
		return Params{}, err
	}
	best := base
	bestRatio := 2.0
	found := false
	for i, r := range ratios {
		if !found || r < bestRatio {
			found = true
			bestRatio = r
			best = grid[i]
		}
	}
	return best, nil
}

// Periodicity describes a detected periodic arrival pattern.
type Periodicity struct {
	Period time.Duration
	R2     float64 // goodness of the linear fit of time vs index
}

// DetectPeriodic tests whether a stream of arrival times is periodic by
// fitting arrival time against occurrence index (the paper mentions
// "predictions based on their linear regression"). A high R² and a positive
// period mean the stream fires on a timer, like Figure 5's TCP bad
// authentication example. Requires at least 4 arrivals.
func DetectPeriodic(ts []time.Time, minR2 float64) (Periodicity, bool) {
	if len(ts) < 4 {
		return Periodicity{}, false
	}
	xs := make([]float64, len(ts))
	ys := make([]float64, len(ts))
	for i, t := range ts {
		xs[i] = float64(i)
		ys[i] = t.Sub(ts[0]).Seconds()
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil || fit.B <= 0 {
		return Periodicity{}, false
	}
	if fit.R2 < minR2 {
		return Periodicity{}, false
	}
	return Periodicity{Period: time.Duration(fit.B * float64(time.Second)), R2: fit.R2}, true
}
