package temporal_test

import (
	"fmt"
	"time"

	"syslogdigest/internal/temporal"
)

// ExampleGroupStream shows the interarrival model at work: a timer-driven
// stream (every 5 minutes) stays in one group once the model has seen a
// single interval, and a multi-hour gap breaks it.
func ExampleGroupStream() {
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	arrivals := []time.Time{
		t0,
		t0.Add(5 * time.Minute),
		t0.Add(10 * time.Minute),
		t0.Add(15 * time.Minute),
		t0.Add(8 * time.Hour), // long quiet spell: new group
		t0.Add(8*time.Hour + 5*time.Minute),
	}
	ids, err := temporal.GroupStream(arrivals, temporal.DefaultParams())
	if err != nil {
		panic(err)
	}
	fmt.Println(ids)
	// Output:
	// [0 1 1 1 2 2]
}
