// Package locparse extracts location information from syslog message text
// (§4.1.2's online half, "Location Parsing" in Figure 1).
//
// A message's detail can embed several location-shaped values: the
// interface the condition occurred on, the neighbor's IP address, sometimes
// remote or outright invalid addresses (scans). Naive pattern matching
// cannot tell them apart; locparse classifies each candidate token by shape
// (textutil) and then grounds it against the location dictionary:
//
//   - values resolving on the originating router become its locations, the
//     finest of which is the message's primary location;
//   - IP addresses owned by *another* router (link far ends, BGP neighbor
//     loopbacks) become peer-router hints used by cross-router grouping;
//   - everything else (scanner addresses, counters that look like paths)
//     is reported as unresolved and ignored by grouping.
package locparse

import (
	"strings"
	"sync"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/textutil"
)

// Info is the location outcome for one message.
type Info struct {
	// Primary is the finest location resolved on the originating router;
	// when nothing resolves it degrades to the router itself.
	Primary locdict.Location
	// All contains every distinct on-router location resolved, finest
	// first. It always includes Primary.
	All []locdict.Location
	// PeerRouters are other routers referenced by the message (via IPs
	// they own), deduplicated in order of appearance.
	PeerRouters []string
	// Unresolved are location-shaped tokens that ground to nothing.
	Unresolved []string
}

// Parser resolves message locations against a dictionary.
type Parser struct {
	dict *locdict.Dictionary

	// skipUnresolved drops Info.Unresolved accumulation (see
	// DropUnresolved).
	skipUnresolved bool

	// routerOnly caches, per router, the shared one-element slice returned
	// as Info.All when a message grounds no finer location — the dominant
	// case on noisy feeds, and without the cache a fresh allocation per
	// message. The slices are immutable (len == cap, callers hold All
	// read-only), so sharing them across messages is safe.
	routerOnly sync.Map // string → []locdict.Location
}

// New builds a parser.
func New(dict *locdict.Dictionary) *Parser {
	return &Parser{dict: dict}
}

// DropUnresolved stops the parser from accumulating Info.Unresolved,
// skipping that allocation on the augment hot path. Call before first use;
// intended for pipelines that never read the field (nothing in the online
// path does — it exists for diagnostics and tests).
func (p *Parser) DropUnresolved() { p.skipUnresolved = true }

// Parse extracts and grounds the locations of one message.
func (p *Parser) Parse(m *syslogmsg.Message) Info {
	return p.ParseTokens(m, textutil.Tokenize(m.Detail))
}

// ParseTokens is Parse over the message's pre-tokenized detail, letting
// callers that also signature-match the message tokenize it once and share
// the slice. The parser only reads the tokens. Safe for concurrent use:
// the parser and its dictionary are immutable after construction.
func (p *Parser) ParseTokens(m *syslogmsg.Message, toks []string) Info {
	info := Info{Primary: locdict.RouterLoc(m.Router)}

	prevWord := ""
	for _, tok := range toks {
		core, _, _ := textutil.TrimWord(tok)
		if core == "" {
			continue
		}
		class := textutil.Classify(core)
		switch class {
		case textutil.ClassInterface, textutil.ClassPortPath:
			p.ground(m.Router, core, &info)
		case textutil.ClassIPv4:
			// Strip :port or /len decoration before ownership lookup.
			ip := core
			if i := strings.IndexAny(ip, ":/"); i >= 0 {
				ip = ip[:i]
			}
			p.ground(m.Router, ip, &info)
		case textutil.ClassNumber:
			// Bare numbers are locations only in explicit contexts such as
			// "Slot 2" or "slot 2 ...".
			if strings.EqualFold(prevWord, "slot") || strings.EqualFold(prevWord, "linecard") {
				p.ground(m.Router, core, &info)
			}
		}
		prevWord = core
	}

	// Pick the finest resolved location as primary; All is sorted finest
	// first with stable order of appearance within a level.
	if len(info.All) > 0 {
		best := 0
		for i, l := range info.All {
			if l.Level < info.All[best].Level {
				best = i
			}
		}
		info.Primary = info.All[best]
		info.All = append(info.All, locdict.RouterLoc(m.Router))
		sortByLevel(info.All)
	} else {
		// Nothing grounded: All is exactly [RouterLoc], shared across every
		// such message from this router.
		info.All = p.routerOnlyAll(m.Router)
	}
	return info
}

// routerOnlyAll returns the shared [RouterLoc(router)] slice for router.
func (p *Parser) routerOnlyAll(router string) []locdict.Location {
	if v, ok := p.routerOnly.Load(router); ok {
		return v.([]locdict.Location)
	}
	v, _ := p.routerOnly.LoadOrStore(router, []locdict.Location{locdict.RouterLoc(router)})
	return v.([]locdict.Location)
}

// ground resolves one candidate token, routing it into locations, peer
// hints, or the unresolved list. Deduplication is a linear scan of the
// accumulated slices — messages carry a handful of candidates, and the scan
// replaces two map allocations on the augment hot path.
func (p *Parser) ground(router, token string, info *Info) {
	if loc, ok := p.dict.Normalize(router, token); ok {
		if !containsLoc(info.All, loc) {
			if info.All == nil {
				// Leave room for the RouterLoc ParseTokens appends at the
				// end — one allocation covers the common single-location
				// message instead of two.
				info.All = make([]locdict.Location, 0, 2)
			}
			info.All = append(info.All, loc)
		}
		return
	}
	// Not ours: maybe a neighbor's address.
	if owner, _, ok := p.dict.ResolveIP(token); ok && owner != router {
		if !containsStr(info.PeerRouters, owner) {
			info.PeerRouters = append(info.PeerRouters, owner)
		}
		return
	}
	// A session peer referenced by an address we do not own (e.g. an
	// eBGP neighbor outside the dictionary) — still a peer hint when the
	// session is configured.
	if peer, ok := p.dict.SessionPeer(router, token); ok {
		if !containsStr(info.PeerRouters, peer) {
			info.PeerRouters = append(info.PeerRouters, peer)
		}
		return
	}
	if !p.skipUnresolved {
		info.Unresolved = append(info.Unresolved, token)
	}
}

func containsLoc(locs []locdict.Location, l locdict.Location) bool {
	for _, x := range locs {
		if x == l {
			return true
		}
	}
	return false
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// sortByLevel stable-sorts locations finest (interface) first.
func sortByLevel(locs []locdict.Location) {
	// Insertion sort keeps it simple and stable for the short slices here.
	for i := 1; i < len(locs); i++ {
		for j := i; j > 0 && locs[j].Level < locs[j-1].Level; j-- {
			locs[j], locs[j-1] = locs[j-1], locs[j]
		}
	}
}
