package locparse

import (
	"testing"
	"time"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/netconf"
	"syslogdigest/internal/syslogmsg"
)

func testDict(t *testing.T) *locdict.Dictionary {
	t.Helper()
	r1 := &netconf.Config{
		Hostname: "r1", Vendor: syslogmsg.VendorV1, Region: "TX", LocalAS: 65000,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.1", PrefixLen: 32},
			{Name: "Serial1/0/1:0", IP: "10.0.0.1", PrefixLen: 30},
			{Name: "GigabitEthernet2/1", IP: "10.0.0.5", PrefixLen: 30},
		},
		Controllers: []netconf.Controller{{Kind: "T3", Path: "1/0"}},
		Neighbors:   []netconf.BGPNeighbor{{IP: "192.168.0.2", RemoteAS: 65000}},
	}
	r2 := &netconf.Config{
		Hostname: "r2", Vendor: syslogmsg.VendorV1, Region: "GA", LocalAS: 65000,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.2", PrefixLen: 32},
			{Name: "Serial2/0/1:0", IP: "10.0.0.2", PrefixLen: 30},
		},
	}
	d, err := locdict.Build([]*netconf.Config{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func msg(router, code, detail string) *syslogmsg.Message {
	return &syslogmsg.Message{
		Time:   time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC),
		Router: router,
		Code:   code,
		Detail: detail,
	}
}

func TestParseInterfaceMessage(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "LINK-3-UPDOWN", "Interface Serial1/0/1:0, changed state to down"))
	want := locdict.IntfLoc("r1", "Serial1/0/1:0")
	if info.Primary != want {
		t.Fatalf("Primary = %v, want %v", info.Primary, want)
	}
	if len(info.Unresolved) != 0 {
		t.Fatalf("Unresolved = %v", info.Unresolved)
	}
	// All includes the interface and the router fallback, finest first.
	if len(info.All) < 2 || info.All[0] != want || info.All[len(info.All)-1] != locdict.RouterLoc("r1") {
		t.Fatalf("All = %v", info.All)
	}
}

func TestParseLineProtoSubinterface(t *testing.T) {
	p := New(testDict(t))
	// Channelized sub-interface extends a configured name.
	info := p.Parse(msg("r1", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0/1:0.100, changed state to down"))
	if info.Primary != locdict.IntfLoc("r1", "Serial1/0/1:0") {
		t.Fatalf("Primary = %v", info.Primary)
	}
}

func TestParseRouterLevelFallback(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "SYS-1-CPURISINGTHRESHOLD",
		"Threshold: Total CPU Utilization(Total/Intr): 95%/1%, Top 3 processes (Pid/Util): 2/71%, 8/6%, 7/3%"))
	if info.Primary != locdict.RouterLoc("r1") {
		t.Fatalf("Primary = %v, want router level", info.Primary)
	}
	if len(info.PeerRouters) != 0 {
		t.Fatalf("PeerRouters = %v", info.PeerRouters)
	}
}

func TestParseOwnIPResolves(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "OSPF-5-ADJCHG", "Process 1, Nbr on 10.0.0.1 from FULL to DOWN"))
	if info.Primary != locdict.IntfLoc("r1", "Serial1/0/1:0") {
		t.Fatalf("Primary = %v", info.Primary)
	}
}

func TestParseNeighborIPBecomesPeerHint(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "BGP-5-ADJCHANGE", "neighbor 192.168.0.2 Down Peer closed the session"))
	if info.Primary != locdict.RouterLoc("r1") {
		t.Fatalf("Primary = %v", info.Primary)
	}
	if len(info.PeerRouters) != 1 || info.PeerRouters[0] != "r2" {
		t.Fatalf("PeerRouters = %v", info.PeerRouters)
	}
	// The link far-end address also resolves to a peer hint.
	info = p.Parse(msg("r1", "BGP-5-ADJCHANGE", "neighbor 10.0.0.2 Down BGP Notification sent"))
	if len(info.PeerRouters) != 1 || info.PeerRouters[0] != "r2" {
		t.Fatalf("far-end PeerRouters = %v", info.PeerRouters)
	}
}

func TestParseScannerIPUnresolved(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "TCP-6-BADAUTH", "Invalid MD5 digest from 203.0.113.99:4444 to 192.168.0.1:179"))
	// Own loopback resolves; the scanner address is unresolved.
	if info.Primary != locdict.IntfLoc("r1", "Loopback0") {
		t.Fatalf("Primary = %v", info.Primary)
	}
	if len(info.Unresolved) != 1 || info.Unresolved[0] != "203.0.113.99" {
		t.Fatalf("Unresolved = %v", info.Unresolved)
	}
}

func TestParseControllerPort(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "CONTROLLER-5-UPDOWN", "Controller T3 1/0, changed state to down"))
	want := locdict.Location{Router: "r1", Level: locdict.LevelPort, Name: "1/0"}
	if info.Primary != want {
		t.Fatalf("Primary = %v, want %v", info.Primary, want)
	}
}

func TestParseSlotKeyword(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "PLATFORM-3-RESET", "Linecard in Slot 1 is being reset"))
	want := locdict.Location{Router: "r1", Level: locdict.LevelSlot, Name: "1"}
	if info.Primary != want {
		t.Fatalf("Primary = %v, want %v", info.Primary, want)
	}
	// A bare number without the keyword is not a location.
	info = p.Parse(msg("r1", "PLATFORM-3-RESET", "Error count 1 exceeded"))
	if info.Primary != locdict.RouterLoc("r1") {
		t.Fatalf("bare number grounded: %v", info.Primary)
	}
}

func TestParseRatioDoesNotResolveAsPort(t *testing.T) {
	p := New(testDict(t))
	// "9/9" looks like a port path but the router has no port 9/9.
	info := p.Parse(msg("r1", "SYS-2-MALLOCFAIL", "Pool 9/9 exhausted"))
	if info.Primary != locdict.RouterLoc("r1") {
		t.Fatalf("Primary = %v", info.Primary)
	}
	if len(info.Unresolved) != 1 {
		t.Fatalf("Unresolved = %v", info.Unresolved)
	}
}

func TestParseDeduplicatesLocations(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "LINK-3-UPDOWN", "Interface Serial1/0/1:0 and Serial1/0/1:0 again"))
	count := 0
	for _, l := range info.All {
		if l == locdict.IntfLoc("r1", "Serial1/0/1:0") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate locations in All: %v", info.All)
	}
}

func TestParseUnknownRouter(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r99", "LINK-3-UPDOWN", "Interface Serial1/0/1:0, changed state to down"))
	if info.Primary != locdict.RouterLoc("r99") {
		t.Fatalf("Primary = %v", info.Primary)
	}
	if len(info.Unresolved) == 0 {
		t.Fatal("interface on unknown router should be unresolved")
	}
}

func TestParseAllSortedFinestFirst(t *testing.T) {
	p := New(testDict(t))
	info := p.Parse(msg("r1", "X-5-Y", "Slot 1 Controller 1/0 Interface Serial1/0/1:0 event"))
	for i := 1; i < len(info.All); i++ {
		if info.All[i].Level < info.All[i-1].Level {
			t.Fatalf("All not sorted by level: %v", info.All)
		}
	}
	if info.Primary.Level != locdict.LevelInterface {
		t.Fatalf("Primary = %v, want interface level", info.Primary)
	}
}
