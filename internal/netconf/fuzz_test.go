package netconf

import "testing"

// FuzzParse: config parsing faces operator-authored files; whatever the
// bytes, Parse must return an error or a config that re-renders and
// re-parses cleanly (render/parse is a retraction).
func FuzzParse(f *testing.F) {
	f.Add("hostname r1\n!\ninterface Serial1/0/1:0\n ip address 10.0.0.1 255.255.255.252\n!\n")
	f.Add("system name \"b1\"\nport 1/1/1 address 10.0.0.1/30\n")
	f.Add("hostname x\nrouter bgp 65000\n neighbor 10.0.0.2 remote-as 65000\n!\n")
	f.Add("!")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := Parse(text)
		if err != nil {
			return
		}
		again, err := Parse(Render(cfg))
		if err != nil {
			t.Fatalf("re-parse of rendered config failed: %v\n%s", err, Render(cfg))
		}
		if again.Hostname != cfg.Hostname || len(again.Interfaces) != len(cfg.Interfaces) {
			t.Fatalf("render/parse drift: %+v vs %+v", again, cfg)
		}
	})
}
