package netconf

import (
	"testing"

	"syslogdigest/internal/syslogmsg"
)

func TestPrefixLenToMask(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{0, "0.0.0.0"}, {8, "255.0.0.0"}, {24, "255.255.255.0"},
		{30, "255.255.255.252"}, {32, "255.255.255.255"},
	}
	for _, c := range cases {
		got, err := PrefixLenToMask(c.in)
		if err != nil {
			t.Fatalf("PrefixLenToMask(%d): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("PrefixLenToMask(%d) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := PrefixLenToMask(33); err == nil {
		t.Error("want error for /33")
	}
	if _, err := PrefixLenToMask(-1); err == nil {
		t.Error("want error for /-1")
	}
}

func TestMaskToPrefixLenRoundTrip(t *testing.T) {
	for n := 0; n <= 32; n++ {
		mask, err := PrefixLenToMask(n)
		if err != nil {
			t.Fatal(err)
		}
		back, err := MaskToPrefixLen(mask)
		if err != nil {
			t.Fatalf("MaskToPrefixLen(%q): %v", mask, err)
		}
		if back != n {
			t.Errorf("round trip /%d -> %q -> /%d", n, mask, back)
		}
	}
	if _, err := MaskToPrefixLen("255.0.255.0"); err == nil {
		t.Error("want error for non-contiguous mask")
	}
	if _, err := MaskToPrefixLen("garbage"); err == nil {
		t.Error("want error for garbage mask")
	}
}

func TestParseFormatIPv4(t *testing.T) {
	ip, err := ParseIPv4("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatIPv4(ip); got != "10.1.2.3" {
		t.Fatalf("round trip = %q", got)
	}
	for _, bad := range []string{"10.1.2", "10.1.2.3.4", "10.1.2.256", "a.b.c.d", ""} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded", bad)
		}
	}
}

func TestSubnetKey(t *testing.T) {
	k1, err := SubnetKey("10.0.0.1", 30)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := SubnetKey("10.0.0.2", 30)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || k1 != "10.0.0.0/30" {
		t.Fatalf("keys = %q, %q; want both 10.0.0.0/30", k1, k2)
	}
	k3, _ := SubnetKey("10.0.0.5", 30)
	if k3 == k1 {
		t.Fatal("different /30s produced the same key")
	}
	if _, err := SubnetKey("10.0.0.1", 40); err == nil {
		t.Error("want error for /40")
	}
}

func sampleV1Config() *Config {
	return &Config{
		Hostname: "ar1",
		Vendor:   syslogmsg.VendorV1,
		Region:   "TX",
		LocalAS:  65000,
		Interfaces: []Interface{
			{Name: "Loopback0", IP: "192.168.0.1", PrefixLen: 32},
			{Name: "Serial1/0/1:0", IP: "10.0.0.1", PrefixLen: 30, Description: "link to ar2 Serial1/0/2:0"},
			{Name: "Serial1/1/1:0", Bundle: "Multilink1"},
			{Name: "Serial1/2/1:0", Bundle: "Multilink1"},
			{Name: "Multilink1", IP: "10.0.0.5", PrefixLen: 30, Description: "link to cr1"},
		},
		Controllers: []Controller{{Kind: "T3", Path: "1/0"}},
		Neighbors: []BGPNeighbor{
			{IP: "10.0.0.2", RemoteAS: 65000},
			{IP: "192.168.0.9", RemoteAS: 65000, VRF: "1000:1001"},
		},
		Tunnels: []Tunnel{{Name: "Tunnel1", DestinationIP: "192.168.0.5", Hops: []string{"cr1", "cr2"}}},
	}
}

func sampleV2Config() *Config {
	return &Config{
		Hostname: "br1",
		Vendor:   syslogmsg.VendorV2,
		Region:   "GA",
		LocalAS:  65001,
		Interfaces: []Interface{
			{Name: "system", IP: "192.168.1.1", PrefixLen: 32},
			{Name: "1/1/1", IP: "10.1.0.1", PrefixLen: 30, Description: "link to br2 1/1/2"},
			{Name: "1/1/2", Bundle: "lag-1"},
			{Name: "1/1/3", Bundle: "lag-1"},
			{Name: "lag-1", IP: "10.1.0.5", PrefixLen: 30},
		},
		Neighbors: []BGPNeighbor{
			{IP: "192.168.1.2", RemoteAS: 65001, VRF: "1000:1002"},
		},
		Tunnels: []Tunnel{{Name: "sec-br1-br2", DestinationIP: "192.168.1.2", Hops: []string{"bc1"}}},
	}
}

func configsEqual(t *testing.T, got, want *Config) {
	t.Helper()
	if got.Hostname != want.Hostname || got.Region != want.Region {
		t.Fatalf("identity: got (%q, %q), want (%q, %q)", got.Hostname, got.Region, want.Hostname, want.Region)
	}
	if got.Vendor != want.Vendor {
		t.Fatalf("vendor: got %v, want %v", got.Vendor, want.Vendor)
	}
	if len(got.Interfaces) != len(want.Interfaces) {
		t.Fatalf("interfaces: got %d, want %d\n%+v", len(got.Interfaces), len(want.Interfaces), got.Interfaces)
	}
	for i := range want.Interfaces {
		if got.Interfaces[i] != want.Interfaces[i] {
			t.Errorf("interface %d: got %+v, want %+v", i, got.Interfaces[i], want.Interfaces[i])
		}
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("neighbors: got %d, want %d", len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] {
			t.Errorf("neighbor %d: got %+v, want %+v", i, got.Neighbors[i], want.Neighbors[i])
		}
	}
	if len(got.Tunnels) != len(want.Tunnels) {
		t.Fatalf("tunnels: got %d, want %d", len(got.Tunnels), len(want.Tunnels))
	}
	for i := range want.Tunnels {
		g, w := got.Tunnels[i], want.Tunnels[i]
		if g.Name != w.Name || g.DestinationIP != w.DestinationIP || len(g.Hops) != len(w.Hops) {
			t.Errorf("tunnel %d: got %+v, want %+v", i, g, w)
		}
	}
	if len(got.Controllers) != len(want.Controllers) {
		t.Fatalf("controllers: got %d, want %d", len(got.Controllers), len(want.Controllers))
	}
}

func TestRenderParseRoundTripV1(t *testing.T) {
	want := sampleV1Config()
	text := Render(want)
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("parse failed: %v\nconfig text:\n%s", err, text)
	}
	configsEqual(t, got, want)
	if got.LocalAS != 65000 {
		t.Fatalf("LocalAS = %d", got.LocalAS)
	}
}

func TestRenderParseRoundTripV2(t *testing.T) {
	want := sampleV2Config()
	text := Render(want)
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("parse failed: %v\nconfig text:\n%s", err, text)
	}
	configsEqual(t, got, want)
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"interface Serial1/0\n ip address 10.0.0.1 255.255.255.252\n", // no hostname
		"hostname x\nbogus statement here\n",
		"system name \"x\"\nport 1/1/1 address notanip/30\n",
		"system name \"x\"\nfrob 1\n",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse accepted %q", c)
		}
	}
}

func TestLoopbackAndFind(t *testing.T) {
	c := sampleV1Config()
	lb := c.Loopback()
	if lb == nil || lb.IP != "192.168.0.1" {
		t.Fatalf("Loopback = %+v", lb)
	}
	if c.FindInterface("multilink1") == nil {
		t.Fatal("case-insensitive FindInterface failed")
	}
	if c.FindInterface("nope") != nil {
		t.Fatal("FindInterface returned a ghost")
	}
	v2 := sampleV2Config()
	if lb := v2.Loopback(); lb == nil || lb.Name != "system" {
		t.Fatalf("V2 loopback = %+v", lb)
	}
}

func TestSplitQuoted(t *testing.T) {
	got := splitQuoted(`port 1/1/1 description "link to br2 1/1/2" bundle lag-1`)
	want := []string{"port", "1/1/1", "description", "link to br2 1/1/2", "bundle", "lag-1"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("field %d = %q, want %q", i, got[i], want[i])
		}
	}
	if got := splitQuoted(`a "" b`); len(got) != 3 || got[1] != "" {
		t.Fatalf("empty quoted field: %v", got)
	}
}
