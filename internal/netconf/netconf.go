// Package netconf is the router-configuration substrate for SyslogDigest.
//
// The paper builds its location dictionary not from vendor manuals but from
// router configs ("a router almost always writes to syslog messages only the
// location information it knows, i.e., those configured in the router").
// This package provides everything needed to stand in for the configs of the
// two studied networks:
//
//   - a vendor-neutral Config model (hostname, interfaces, controllers, BGP
//     neighbors, tunnels, region);
//   - a renderer and parser for two config dialects: a Cisco-like block
//     syntax for vendor V1 and a flatter line syntax for vendor V2;
//   - a deterministic topology generator that produces a backbone-shaped
//     network (core mesh + edge attachments) with /30 link addressing,
//     multilink bundles, iBGP sessions, and MPLS tunnels.
package netconf

import (
	"fmt"
	"strconv"
	"strings"

	"syslogdigest/internal/syslogmsg"
)

// Interface is one configured L3 interface.
type Interface struct {
	Name        string // e.g. "Serial1/0/10:0" (V1) or "1/1/1" (V2)
	IP          string // dotted quad, "" for unnumbered
	PrefixLen   int    // e.g. 30
	Description string // free-form; generator writes "link to <router> <intf>"
	Bundle      string // multilink/bundle parent interface name, "" if none
}

// Controller is a physical controller (e.g. a T3 card position).
type Controller struct {
	Kind string // e.g. "T3", "SONET"
	Path string // slot/port, e.g. "2/0"
}

// BGPNeighbor is one configured BGP peering.
type BGPNeighbor struct {
	IP       string
	RemoteAS int
	VRF      string // route distinguisher like "1000:1001", "" for default VRF
}

// Tunnel is an MPLS tunnel / static path to another router. The paper's IPTV
// network configures a secondary multi-hop layer-2 path between multicast
// tree neighbors; Hops records the intermediate routers for that case.
type Tunnel struct {
	Name          string
	DestinationIP string   // loopback IP of the far end
	Hops          []string // intermediate router hostnames (may be empty)
}

// Config is the parsed configuration of one router.
type Config struct {
	Hostname    string
	Vendor      syslogmsg.Vendor
	Region      string // coarse geography (e.g. "TX"), used by ticket matching
	LocalAS     int
	Interfaces  []Interface
	Controllers []Controller
	Neighbors   []BGPNeighbor
	Tunnels     []Tunnel
}

// Loopback returns the router's loopback interface, or nil when none is
// configured. By generator convention the loopback is named "Loopback0" (V1)
// or "system" (V2).
func (c *Config) Loopback() *Interface {
	for i := range c.Interfaces {
		n := c.Interfaces[i].Name
		if strings.EqualFold(n, "Loopback0") || n == "system" {
			return &c.Interfaces[i]
		}
	}
	return nil
}

// FindInterface returns the interface with the given name (case-insensitive
// on the stem), or nil.
func (c *Config) FindInterface(name string) *Interface {
	for i := range c.Interfaces {
		if strings.EqualFold(c.Interfaces[i].Name, name) {
			return &c.Interfaces[i]
		}
	}
	return nil
}

// PrefixLenToMask converts a prefix length to a dotted-quad netmask.
func PrefixLenToMask(n int) (string, error) {
	if n < 0 || n > 32 {
		return "", fmt.Errorf("netconf: invalid prefix length %d", n)
	}
	var bits uint32
	if n > 0 {
		bits = ^uint32(0) << (32 - n)
	}
	return fmt.Sprintf("%d.%d.%d.%d", byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits)), nil
}

// MaskToPrefixLen converts a dotted-quad netmask to a prefix length. It
// rejects non-contiguous masks.
func MaskToPrefixLen(mask string) (int, error) {
	ip, err := ParseIPv4(mask)
	if err != nil {
		return 0, fmt.Errorf("netconf: bad mask %q: %w", mask, err)
	}
	n := 0
	for n < 32 && ip&(1<<(31-n)) != 0 {
		n++
	}
	// Remaining bits must be zero.
	if n < 32 && ip<<n != 0 {
		return 0, fmt.Errorf("netconf: non-contiguous mask %q", mask)
	}
	return n, nil
}

// ParseIPv4 parses a dotted quad into a uint32.
func ParseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netconf: %q is not dotted quad", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("netconf: bad octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

// FormatIPv4 renders a uint32 as a dotted quad.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// SubnetKey returns the network address of ip/prefixLen as a string key,
// used to pair the two ends of a point-to-point link.
func SubnetKey(ip string, prefixLen int) (string, error) {
	v, err := ParseIPv4(ip)
	if err != nil {
		return "", err
	}
	if prefixLen < 0 || prefixLen > 32 {
		return "", fmt.Errorf("netconf: invalid prefix length %d", prefixLen)
	}
	var mask uint32
	if prefixLen > 0 {
		mask = ^uint32(0) << (32 - prefixLen)
	}
	return fmt.Sprintf("%s/%d", FormatIPv4(v&mask), prefixLen), nil
}
