package netconf

import (
	"fmt"
	"strings"

	"syslogdigest/internal/syslogmsg"
)

// Render serializes a Config in its vendor's dialect. Unknown vendors render
// in the V1 dialect, which is the more expressive of the two.
func Render(c *Config) string {
	if c.Vendor == syslogmsg.VendorV2 {
		return renderV2(c)
	}
	return renderV1(c)
}

// renderV1 emits a Cisco-like block configuration:
//
//	hostname ar1
//	! region TX
//	interface Serial1/0/10:0
//	 description link to ar2 Serial1/0/20:0
//	 ip address 10.0.0.1 255.255.255.252
//	 ppp multilink group Multilink1
//	!
//	controller T3 1/0
//	!
//	router bgp 65000
//	 neighbor 10.0.0.2 remote-as 65000
//	 neighbor 10.1.0.2 remote-as 65000 vrf 1000:1001
//	!
//	interface Tunnel1
//	 tunnel destination 192.168.0.5
//	 tunnel path via ar3 ar4
func renderV1(c *Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n", c.Hostname)
	if c.Region != "" {
		fmt.Fprintf(&b, "! region %s\n", c.Region)
	}
	b.WriteString("!\n")
	for i := range c.Interfaces {
		ifc := &c.Interfaces[i]
		fmt.Fprintf(&b, "interface %s\n", ifc.Name)
		if ifc.Description != "" {
			fmt.Fprintf(&b, " description %s\n", ifc.Description)
		}
		if ifc.IP != "" {
			mask, err := PrefixLenToMask(ifc.PrefixLen)
			if err == nil {
				fmt.Fprintf(&b, " ip address %s %s\n", ifc.IP, mask)
			}
		}
		if ifc.Bundle != "" {
			fmt.Fprintf(&b, " ppp multilink group %s\n", ifc.Bundle)
		}
		b.WriteString("!\n")
	}
	for _, ctl := range c.Controllers {
		fmt.Fprintf(&b, "controller %s %s\n!\n", ctl.Kind, ctl.Path)
	}
	if len(c.Neighbors) > 0 || c.LocalAS != 0 {
		fmt.Fprintf(&b, "router bgp %d\n", c.LocalAS)
		for _, n := range c.Neighbors {
			if n.VRF != "" {
				fmt.Fprintf(&b, " neighbor %s remote-as %d vrf %s\n", n.IP, n.RemoteAS, n.VRF)
			} else {
				fmt.Fprintf(&b, " neighbor %s remote-as %d\n", n.IP, n.RemoteAS)
			}
		}
		b.WriteString("!\n")
	}
	for _, t := range c.Tunnels {
		fmt.Fprintf(&b, "interface %s\n tunnel destination %s\n", t.Name, t.DestinationIP)
		if len(t.Hops) > 0 {
			fmt.Fprintf(&b, " tunnel path via %s\n", strings.Join(t.Hops, " "))
		}
		b.WriteString("!\n")
	}
	return b.String()
}

// renderV2 emits a flatter line-oriented configuration:
//
//	system name "br1"
//	system region "TX"
//	system address 192.168.1.1/32
//	port 1/1/1 address 10.0.0.1/30 description "link to br2 1/1/2"
//	port 1/1/2 bundle lag-1
//	bgp neighbor 10.0.0.2 as 65001
//	bgp neighbor 10.2.0.2 as 65001 vrf 1000:1002
//	tunnel "sec-br5" destination 192.168.1.5 via br3 br4
func renderV2(c *Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system name %q\n", c.Hostname)
	if c.Region != "" {
		fmt.Fprintf(&b, "system region %q\n", c.Region)
	}
	for i := range c.Interfaces {
		ifc := &c.Interfaces[i]
		if ifc.Name == "system" {
			fmt.Fprintf(&b, "system address %s/%d\n", ifc.IP, ifc.PrefixLen)
			continue
		}
		fmt.Fprintf(&b, "port %s", ifc.Name)
		if ifc.IP != "" {
			fmt.Fprintf(&b, " address %s/%d", ifc.IP, ifc.PrefixLen)
		}
		if ifc.Bundle != "" {
			fmt.Fprintf(&b, " bundle %s", ifc.Bundle)
		}
		if ifc.Description != "" {
			fmt.Fprintf(&b, " description %q", ifc.Description)
		}
		b.WriteByte('\n')
	}
	for _, n := range c.Neighbors {
		fmt.Fprintf(&b, "bgp neighbor %s as %d", n.IP, n.RemoteAS)
		if n.VRF != "" {
			fmt.Fprintf(&b, " vrf %s", n.VRF)
		}
		b.WriteByte('\n')
	}
	for _, t := range c.Tunnels {
		fmt.Fprintf(&b, "tunnel %q destination %s", t.Name, t.DestinationIP)
		if len(t.Hops) > 0 {
			fmt.Fprintf(&b, " via %s", strings.Join(t.Hops, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
