package netconf

import (
	"testing"

	"syslogdigest/internal/syslogmsg"
)

func genNetwork(t *testing.T, spec Spec) *Network {
	t.Helper()
	n, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Routers: 20, Seed: 42, Vendor: syslogmsg.VendorV1, MultilinkFraction: 0.3, TunnelPairs: 3}
	a := genNetwork(t, spec)
	b := genNetwork(t, spec)
	if len(a.Configs) != len(b.Configs) || len(a.Links) != len(b.Links) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Configs {
		if Render(a.Configs[i]) != Render(b.Configs[i]) {
			t.Fatalf("config %d differs between runs", i)
		}
	}
	c := genNetwork(t, Spec{Routers: 20, Seed: 43, Vendor: syslogmsg.VendorV1, MultilinkFraction: 0.3, TunnelPairs: 3})
	same := true
	for i := range a.Configs {
		if Render(a.Configs[i]) != Render(c.Configs[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestGenerateShape(t *testing.T) {
	spec := Spec{Routers: 25, Seed: 7, Vendor: syslogmsg.VendorV1, TunnelPairs: 2}
	n := genNetwork(t, spec)
	if len(n.Configs) != 25 {
		t.Fatalf("routers = %d", len(n.Configs))
	}
	core := CoreCount(25)
	if core != 5 {
		t.Fatalf("CoreCount(25) = %d, want 5", core)
	}
	// Every edge router has exactly two uplinks.
	degree := make(map[string]int)
	for _, lk := range n.Links {
		degree[lk.A]++
		degree[lk.B]++
	}
	for i := core; i < 25; i++ {
		name := n.Configs[i].Hostname
		if degree[name] != 2 {
			t.Errorf("edge router %s degree = %d, want 2", name, degree[name])
		}
	}
	// Core routers are connected (ring at minimum).
	for i := 0; i < core; i++ {
		if degree[n.Configs[i].Hostname] < 2 {
			t.Errorf("core router %s degree = %d, want >= 2", n.Configs[i].Hostname, degree[n.Configs[i].Hostname])
		}
	}
	if len(n.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(n.Paths))
	}
}

func TestGenerateLinksHaveMatchingSubnets(t *testing.T) {
	n := genNetwork(t, Spec{Routers: 16, Seed: 11, Vendor: syslogmsg.VendorV1, MultilinkFraction: 0.5})
	for _, lk := range n.Links {
		a, b := n.Router(lk.A), n.Router(lk.B)
		if a == nil || b == nil {
			t.Fatalf("link references unknown router: %+v", lk)
		}
		ai, bi := a.FindInterface(lk.AIntf), b.FindInterface(lk.BIntf)
		if ai == nil || bi == nil {
			t.Fatalf("link interface missing from config: %+v", lk)
		}
		ka, err := SubnetKey(ai.IP, ai.PrefixLen)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := SubnetKey(bi.IP, bi.PrefixLen)
		if err != nil {
			t.Fatal(err)
		}
		if ka != kb || ka != lk.Subnet {
			t.Fatalf("subnet mismatch on %s<->%s: %s vs %s (truth %s)", lk.A, lk.B, ka, kb, lk.Subnet)
		}
		// Bundled links have members pointing at the bundle.
		for _, m := range lk.AMembers {
			mi := a.FindInterface(m)
			if mi == nil || mi.Bundle != lk.AIntf {
				t.Fatalf("member %s of %s not wired to bundle %s", m, lk.A, lk.AIntf)
			}
		}
	}
}

func TestGenerateSubnetsUnique(t *testing.T) {
	n := genNetwork(t, Spec{Routers: 40, Seed: 3, Vendor: syslogmsg.VendorV2})
	seen := make(map[string]bool)
	for _, lk := range n.Links {
		if seen[lk.Subnet] {
			t.Fatalf("duplicate subnet %s", lk.Subnet)
		}
		seen[lk.Subnet] = true
	}
}

func TestGenerateSessionsAreConfigured(t *testing.T) {
	n := genNetwork(t, Spec{Routers: 15, Seed: 5, Vendor: syslogmsg.VendorV1})
	if len(n.Sessions) == 0 {
		t.Fatal("no BGP sessions generated")
	}
	for _, s := range n.Sessions {
		a, b := n.Router(s.A), n.Router(s.B)
		foundA, foundB := false, false
		for _, nb := range a.Neighbors {
			if nb.IP == s.BIP {
				foundA = true
			}
		}
		for _, nb := range b.Neighbors {
			if nb.IP == s.AIP {
				foundB = true
			}
		}
		if !foundA || !foundB {
			t.Fatalf("session %s<->%s not reflected in configs", s.A, s.B)
		}
	}
}

func TestGenerateV2Naming(t *testing.T) {
	n := genNetwork(t, Spec{Routers: 10, Seed: 9, Vendor: syslogmsg.VendorV2, NamePrefix: "b"})
	for _, c := range n.Configs {
		if c.Loopback() == nil {
			t.Fatalf("router %s has no system address", c.Hostname)
		}
		if c.Vendor != syslogmsg.VendorV2 {
			t.Fatalf("router %s vendor = %v", c.Hostname, c.Vendor)
		}
	}
	// V2 configs round trip through the V2 dialect.
	for _, c := range n.Configs[:3] {
		text := Render(c)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("parse generated V2 config: %v\n%s", err, text)
		}
		if back.Hostname != c.Hostname || len(back.Interfaces) != len(c.Interfaces) {
			t.Fatalf("round trip mismatch for %s", c.Hostname)
		}
	}
}

func TestGenerateV1ConfigsRoundTrip(t *testing.T) {
	n := genNetwork(t, Spec{Routers: 12, Seed: 13, Vendor: syslogmsg.VendorV1, MultilinkFraction: 0.4, TunnelPairs: 2})
	for _, c := range n.Configs {
		text := Render(c)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("parse generated config for %s: %v\n%s", c.Hostname, err, text)
		}
		if back.Hostname != c.Hostname {
			t.Fatalf("hostname %q != %q", back.Hostname, c.Hostname)
		}
		if len(back.Interfaces) != len(c.Interfaces) {
			t.Fatalf("%s: interface count %d != %d", c.Hostname, len(back.Interfaces), len(c.Interfaces))
		}
		if len(back.Neighbors) != len(c.Neighbors) {
			t.Fatalf("%s: neighbor count %d != %d", c.Hostname, len(back.Neighbors), len(c.Neighbors))
		}
		if back.Region != c.Region {
			t.Fatalf("%s: region %q != %q", c.Hostname, back.Region, c.Region)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s := Spec{}
	s.Normalize()
	if s.Routers < 4 || s.NamePrefix != "r" || s.LocalAS != 65000 || len(s.Regions) == 0 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	s = Spec{MultilinkFraction: 7}
	s.Normalize()
	if s.MultilinkFraction != 1 {
		t.Fatalf("fraction not clamped: %v", s.MultilinkFraction)
	}
}

func TestCoreCountBounds(t *testing.T) {
	if CoreCount(4) != 3 {
		t.Fatalf("CoreCount(4) = %d", CoreCount(4))
	}
	if CoreCount(100) != 20 {
		t.Fatalf("CoreCount(100) = %d", CoreCount(100))
	}
}
