package netconf

import (
	"fmt"
	"strconv"
	"strings"

	"syslogdigest/internal/syslogmsg"
)

// Parse parses a config in either dialect, auto-detecting which one it is.
// V2 configs start with a "system name" line; everything else is treated as
// the V1 block dialect.
func Parse(text string) (*Config, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "system name") {
		return parseV2(text)
	}
	return parseV1(text)
}

// validHostname restricts hostnames to the router-legal alphabet; config
// files with junk hostnames are rejected rather than propagated.
func validHostname(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.'
		if !ok {
			return false
		}
	}
	return true
}

func parseV1(text string) (*Config, error) {
	c := &Config{Vendor: syslogmsg.VendorV1}
	var curIntf *Interface
	var curTunnel *Tunnel
	inBGP := false

	endBlock := func() {
		if curIntf != nil {
			c.Interfaces = append(c.Interfaces, *curIntf)
			curIntf = nil
		}
		if curTunnel != nil {
			c.Tunnels = append(c.Tunnels, *curTunnel)
			curTunnel = nil
		}
		inBGP = false
	}

	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, " \t\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "!") {
			// Comment or block terminator; "! region XX" carries data.
			fields := strings.Fields(line[1:])
			if len(fields) == 2 && fields[0] == "region" {
				c.Region = fields[1]
			}
			endBlock()
			continue
		}
		indented := line[0] == ' '
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if !indented {
			endBlock()
			switch fields[0] {
			case "hostname":
				if len(fields) != 2 {
					return nil, fmt.Errorf("netconf: line %d: bad hostname", lineNo+1)
				}
				c.Hostname = fields[1]
			case "interface":
				if len(fields) != 2 {
					return nil, fmt.Errorf("netconf: line %d: bad interface", lineNo+1)
				}
				name := fields[1]
				if strings.HasPrefix(name, "Tunnel") {
					curTunnel = &Tunnel{Name: name}
				} else {
					curIntf = &Interface{Name: name}
				}
			case "controller":
				if len(fields) != 3 {
					return nil, fmt.Errorf("netconf: line %d: bad controller", lineNo+1)
				}
				c.Controllers = append(c.Controllers, Controller{Kind: fields[1], Path: fields[2]})
			case "router":
				if len(fields) == 3 && fields[1] == "bgp" {
					as, err := strconv.Atoi(fields[2])
					if err != nil {
						return nil, fmt.Errorf("netconf: line %d: bad AS %q", lineNo+1, fields[2])
					}
					c.LocalAS = as
					inBGP = true
				}
			default:
				return nil, fmt.Errorf("netconf: line %d: unknown statement %q", lineNo+1, fields[0])
			}
			continue
		}
		// Indented line within a block.
		switch {
		case curIntf != nil:
			switch fields[0] {
			case "description":
				curIntf.Description = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "description"))
			case "ip":
				if len(fields) == 4 && fields[1] == "address" {
					plen, err := MaskToPrefixLen(fields[3])
					if err != nil {
						return nil, fmt.Errorf("netconf: line %d: %v", lineNo+1, err)
					}
					curIntf.IP = fields[2]
					curIntf.PrefixLen = plen
				}
			case "ppp":
				if len(fields) == 4 && fields[1] == "multilink" && fields[2] == "group" {
					curIntf.Bundle = fields[3]
				}
			}
		case curTunnel != nil:
			if len(fields) >= 3 && fields[0] == "tunnel" {
				switch fields[1] {
				case "destination":
					curTunnel.DestinationIP = fields[2]
				case "path":
					if fields[2] == "via" {
						curTunnel.Hops = append([]string(nil), fields[3:]...)
					}
				}
			}
		case inBGP:
			if fields[0] == "neighbor" && len(fields) >= 4 && fields[2] == "remote-as" {
				as, err := strconv.Atoi(fields[3])
				if err != nil {
					return nil, fmt.Errorf("netconf: line %d: bad remote-as", lineNo+1)
				}
				n := BGPNeighbor{IP: fields[1], RemoteAS: as}
				if len(fields) == 6 && fields[4] == "vrf" {
					n.VRF = fields[5]
				}
				c.Neighbors = append(c.Neighbors, n)
			}
		}
	}
	endBlock()
	if !validHostname(c.Hostname) {
		return nil, fmt.Errorf("netconf: missing or invalid hostname %q", c.Hostname)
	}
	return c, nil
}

// splitQuoted splits on spaces but keeps "quoted strings" as single fields
// (quotes stripped).
func splitQuoted(s string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			if inQ {
				out = append(out, cur.String()) // may be empty string
				cur.Reset()
			} else {
				flush()
			}
			inQ = !inQ
		case c == ' ' && !inQ:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

func parseV2(text string) (*Config, error) {
	c := &Config{Vendor: syslogmsg.VendorV2}
	parseAddr := func(s string) (ip string, plen int, err error) {
		i := strings.IndexByte(s, '/')
		if i < 0 {
			return "", 0, fmt.Errorf("netconf: address %q missing prefix length", s)
		}
		plen, err = strconv.Atoi(s[i+1:])
		if err != nil || plen < 0 || plen > 32 {
			return "", 0, fmt.Errorf("netconf: bad prefix length in %q", s)
		}
		if _, err := ParseIPv4(s[:i]); err != nil {
			return "", 0, err
		}
		return s[:i], plen, nil
	}

	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitQuoted(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("netconf: line %d: short line %q", lineNo+1, line)
		}
		switch fields[0] {
		case "system":
			switch fields[1] {
			case "name":
				if len(fields) != 3 {
					return nil, fmt.Errorf("netconf: line %d: bad system name", lineNo+1)
				}
				c.Hostname = fields[2]
			case "region":
				if len(fields) == 3 {
					c.Region = fields[2]
				}
			case "address":
				if len(fields) != 3 {
					return nil, fmt.Errorf("netconf: line %d: bad system address", lineNo+1)
				}
				ip, plen, err := parseAddr(fields[2])
				if err != nil {
					return nil, fmt.Errorf("netconf: line %d: %v", lineNo+1, err)
				}
				c.Interfaces = append(c.Interfaces, Interface{Name: "system", IP: ip, PrefixLen: plen})
			}
		case "port":
			ifc := Interface{Name: fields[1]}
			i := 2
			for i < len(fields) {
				switch fields[i] {
				case "address":
					if i+1 >= len(fields) {
						return nil, fmt.Errorf("netconf: line %d: dangling address", lineNo+1)
					}
					ip, plen, err := parseAddr(fields[i+1])
					if err != nil {
						return nil, fmt.Errorf("netconf: line %d: %v", lineNo+1, err)
					}
					ifc.IP, ifc.PrefixLen = ip, plen
					i += 2
				case "bundle":
					if i+1 >= len(fields) {
						return nil, fmt.Errorf("netconf: line %d: dangling bundle", lineNo+1)
					}
					ifc.Bundle = fields[i+1]
					i += 2
				case "description":
					if i+1 >= len(fields) {
						return nil, fmt.Errorf("netconf: line %d: dangling description", lineNo+1)
					}
					ifc.Description = fields[i+1]
					i += 2
				default:
					return nil, fmt.Errorf("netconf: line %d: unknown port attribute %q", lineNo+1, fields[i])
				}
			}
			c.Interfaces = append(c.Interfaces, ifc)
		case "bgp":
			if len(fields) < 5 || fields[1] != "neighbor" || fields[3] != "as" {
				return nil, fmt.Errorf("netconf: line %d: bad bgp line %q", lineNo+1, line)
			}
			as, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("netconf: line %d: bad AS", lineNo+1)
			}
			n := BGPNeighbor{IP: fields[2], RemoteAS: as}
			if len(fields) == 7 && fields[5] == "vrf" {
				n.VRF = fields[6]
			}
			c.Neighbors = append(c.Neighbors, n)
			c.LocalAS = as // iBGP assumption; harmless for dictionary purposes
		case "tunnel":
			if len(fields) < 4 || fields[2] != "destination" {
				return nil, fmt.Errorf("netconf: line %d: bad tunnel line %q", lineNo+1, line)
			}
			t := Tunnel{Name: fields[1], DestinationIP: fields[3]}
			if len(fields) > 5 && fields[4] == "via" {
				t.Hops = append([]string(nil), fields[5:]...)
			}
			c.Tunnels = append(c.Tunnels, t)
		default:
			return nil, fmt.Errorf("netconf: line %d: unknown statement %q", lineNo+1, fields[0])
		}
	}
	if !validHostname(c.Hostname) {
		return nil, fmt.Errorf("netconf: missing or invalid hostname %q", c.Hostname)
	}
	return c, nil
}
