package netconf

import (
	"fmt"
	"math/rand"

	"syslogdigest/internal/syslogmsg"
)

// Spec describes a synthetic network to generate. The defaults (via
// Normalize) produce a backbone-shaped topology: a densely connected core
// and edge routers dual-homed into it, which is the structure of both
// networks studied in the paper.
type Spec struct {
	NamePrefix        string // router name prefix; default "r"
	Vendor            syslogmsg.Vendor
	Routers           int      // total routers; minimum 4
	Seed              int64    // RNG seed; same seed, same network
	Regions           []string // coarse geography labels cycled over routers
	MultilinkFraction float64  // fraction of edge uplinks that are 2-member bundles
	TunnelPairs       int      // number of secondary-path tunnels to configure
	LocalAS           int      // default 65000
}

// Normalize fills zero fields with defaults and clamps nonsense values.
func (s *Spec) Normalize() {
	if s.NamePrefix == "" {
		s.NamePrefix = "r"
	}
	if s.Routers < 4 {
		s.Routers = 4
	}
	if len(s.Regions) == 0 {
		s.Regions = []string{"TX", "GA", "NY", "CA", "IL", "WA", "FL", "MO"}
	}
	if s.MultilinkFraction < 0 {
		s.MultilinkFraction = 0
	}
	if s.MultilinkFraction > 1 {
		s.MultilinkFraction = 1
	}
	if s.LocalAS == 0 {
		s.LocalAS = 65000
	}
	if s.Vendor == syslogmsg.VendorUnknown {
		s.Vendor = syslogmsg.VendorV1
	}
}

// Link is the ground truth for one point-to-point adjacency. For bundled
// links AIntf/BIntf name the bundle interface and MemberIntfs the physical
// members on each side.
type Link struct {
	A, B         string // router hostnames; A < B ordering not guaranteed
	AIntf, BIntf string
	AMembers     []string // physical members when bundled (A side)
	BMembers     []string
	Subnet       string // "10.0.0.0/30" style key
	Core         bool   // both endpoints in the core mesh
}

// Session is the ground truth for one BGP session.
type Session struct {
	A, B     string
	AIP, BIP string // the loopback addresses used for peering
	VRF      string
}

// PathPair is the ground truth for one configured secondary path (tunnel).
type PathPair struct {
	A, B string
	Name string
	Hops []string
}

// Network bundles generated configs with their ground truth.
type Network struct {
	Spec     Spec
	Configs  []*Config
	Links    []Link
	Sessions []Session
	Paths    []PathPair
}

// Router returns the config with the given hostname, or nil.
func (n *Network) Router(name string) *Config {
	for _, c := range n.Configs {
		if c.Hostname == name {
			return c
		}
	}
	return nil
}

// CoreCount returns the number of core routers for r total routers: one
// fifth of the network, at least 3.
func CoreCount(r int) int {
	n := r / 5
	if n < 3 {
		n = 3
	}
	if n > r-1 {
		n = r - 1
	}
	return n
}

// builder tracks per-router interface allocation state during generation.
type builder struct {
	cfg       *Config
	vendor    syslogmsg.Vendor
	nextSlot  int
	slotPorts int // ports used in current slot
	bundleN   int
}

const portsPerSlot = 4

// allocPort returns the next (slot, port) pair for this router.
func (b *builder) allocPort() (slot, port int) {
	if b.slotPorts == portsPerSlot {
		b.nextSlot++
		b.slotPorts = 0
	}
	if b.nextSlot == 0 {
		b.nextSlot = 1
	}
	slot, port = b.nextSlot, b.slotPorts
	b.slotPorts++
	return slot, port
}

// intfName builds a vendor-appropriate interface name for a newly allocated
// port. Core links use ethernet-style names, edge links serial-style.
func (b *builder) intfName(core bool) string {
	slot, port := b.allocPort()
	if b.vendor == syslogmsg.VendorV2 {
		return fmt.Sprintf("%d/1/%d", slot, port+1)
	}
	if core {
		return fmt.Sprintf("TenGigE%d/%d", slot, port)
	}
	return fmt.Sprintf("Serial%d/%d/1:0", slot, port)
}

func (b *builder) bundleName() string {
	b.bundleN++
	if b.vendor == syslogmsg.VendorV2 {
		return fmt.Sprintf("lag-%d", b.bundleN)
	}
	return fmt.Sprintf("Multilink%d", b.bundleN)
}

// Generate builds a deterministic synthetic network from spec.
func Generate(spec Spec) (*Network, error) {
	spec.Normalize()
	rng := rand.New(rand.NewSource(spec.Seed))
	n := &Network{Spec: spec}

	names := make([]string, spec.Routers)
	builders := make([]*builder, spec.Routers)
	for i := range names {
		names[i] = fmt.Sprintf("%s%03d", spec.NamePrefix, i+1)
		cfg := &Config{
			Hostname: names[i],
			Vendor:   spec.Vendor,
			Region:   spec.Regions[i%len(spec.Regions)],
			LocalAS:  spec.LocalAS,
		}
		// Loopback / system address: 192.168.hi.lo.
		lb := Interface{IP: fmt.Sprintf("192.168.%d.%d", (i+1)/250, (i+1)%250+1), PrefixLen: 32}
		if spec.Vendor == syslogmsg.VendorV2 {
			lb.Name = "system"
		} else {
			lb.Name = "Loopback0"
		}
		cfg.Interfaces = append(cfg.Interfaces, lb)
		builders[i] = &builder{cfg: cfg, vendor: spec.Vendor}
		n.Configs = append(n.Configs, cfg)
	}

	core := CoreCount(spec.Routers)
	linkIdx := 0
	addLink := func(a, b int, isCore, bundled bool) {
		sub := linkIdx
		linkIdx++
		base := uint32(10)<<24 | uint32((sub>>6)&255)<<16 | uint32(sub&63)<<10
		aIP := FormatIPv4(base + 1)
		bIP := FormatIPv4(base + 2)
		subnetKey, _ := SubnetKey(aIP, 30)
		lk := Link{A: names[a], B: names[b], Subnet: subnetKey, Core: isCore}

		if bundled {
			// Two physical members per side plus a bundle interface
			// carrying the IP.
			for side, idx := range []int{a, b} {
				bd := builders[idx]
				bundle := bd.bundleName()
				m1 := bd.intfName(isCore)
				m2 := bd.intfName(isCore)
				other := names[b]
				ip := aIP
				if side == 1 {
					other = names[a]
					ip = bIP
				}
				bd.cfg.Interfaces = append(bd.cfg.Interfaces,
					Interface{Name: m1, Bundle: bundle},
					Interface{Name: m2, Bundle: bundle},
					Interface{
						Name:        bundle,
						IP:          ip,
						PrefixLen:   30,
						Description: fmt.Sprintf("link to %s", other),
					},
				)
				if side == 0 {
					lk.AIntf, lk.AMembers = bundle, []string{m1, m2}
				} else {
					lk.BIntf, lk.BMembers = bundle, []string{m1, m2}
				}
			}
		} else {
			ai := builders[a].intfName(isCore)
			bi := builders[b].intfName(isCore)
			builders[a].cfg.Interfaces = append(builders[a].cfg.Interfaces, Interface{
				Name: ai, IP: aIP, PrefixLen: 30,
				Description: fmt.Sprintf("link to %s %s", names[b], bi),
			})
			builders[b].cfg.Interfaces = append(builders[b].cfg.Interfaces, Interface{
				Name: bi, IP: bIP, PrefixLen: 30,
				Description: fmt.Sprintf("link to %s %s", names[a], ai),
			})
			lk.AIntf, lk.BIntf = ai, bi
		}
		n.Links = append(n.Links, lk)
	}

	// Core mesh: ring plus chords for redundancy.
	for i := 0; i < core; i++ {
		addLink(i, (i+1)%core, true, false)
	}
	for i := 0; i < core; i++ {
		j := (i + core/2) % core
		if j != i && j != (i+1)%core && i < j {
			addLink(i, j, true, false)
		}
	}

	// Edge routers: dual-homed to two distinct core routers.
	for i := core; i < spec.Routers; i++ {
		c1 := rng.Intn(core)
		c2 := (c1 + 1 + rng.Intn(core-1)) % core
		bundled1 := rng.Float64() < spec.MultilinkFraction
		addLink(i, c1, false, bundled1)
		addLink(i, c2, false, false)
	}

	// iBGP sessions over loopbacks: edge<->attached cores and core full mesh.
	// A slice of VRFs gives some sessions MPLS-VPN flavor.
	vrfs := []string{"", "", "1000:1001", "1000:1002", "", "1000:1003"}
	addSession := func(a, b *Config) {
		la, lb := a.Loopback(), b.Loopback()
		if la == nil || lb == nil {
			return
		}
		vrf := vrfs[rng.Intn(len(vrfs))]
		a.Neighbors = append(a.Neighbors, BGPNeighbor{IP: lb.IP, RemoteAS: spec.LocalAS, VRF: vrf})
		b.Neighbors = append(b.Neighbors, BGPNeighbor{IP: la.IP, RemoteAS: spec.LocalAS, VRF: vrf})
		n.Sessions = append(n.Sessions, Session{
			A: a.Hostname, B: b.Hostname, AIP: la.IP, BIP: lb.IP, VRF: vrf,
		})
	}
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			addSession(n.Configs[i], n.Configs[j])
		}
	}
	seen := make(map[string]bool)
	for _, lk := range n.Links {
		if lk.Core {
			continue
		}
		key := lk.A + "|" + lk.B
		if seen[key] {
			continue
		}
		seen[key] = true
		addSession(n.Router(lk.A), n.Router(lk.B))
	}

	// Secondary-path tunnels between edge-link endpoints, routed via a core
	// hop (the IPTV fast-reroute design from the paper's Section 6.1).
	tunnelN := 0
	for _, lk := range n.Links {
		if tunnelN >= spec.TunnelPairs {
			break
		}
		if lk.Core {
			continue
		}
		a, b := n.Router(lk.A), n.Router(lk.B)
		hop := names[rng.Intn(core)]
		if hop == lk.A || hop == lk.B {
			continue
		}
		tunnelN++
		name := fmt.Sprintf("Tunnel%d", tunnelN)
		if spec.Vendor == syslogmsg.VendorV2 {
			name = fmt.Sprintf("sec-%s-%s", lk.A, lk.B)
		}
		a.Tunnels = append(a.Tunnels, Tunnel{Name: name, DestinationIP: b.Loopback().IP, Hops: []string{hop}})
		b.Tunnels = append(b.Tunnels, Tunnel{Name: name, DestinationIP: a.Loopback().IP, Hops: []string{hop}})
		n.Paths = append(n.Paths, PathPair{A: lk.A, B: lk.B, Name: name, Hops: []string{hop}})
	}

	// Controllers: one per serial-bearing slot on V1 routers.
	if spec.Vendor == syslogmsg.VendorV1 {
		for _, bd := range builders {
			slots := make(map[int]bool)
			for _, ifc := range bd.cfg.Interfaces {
				var s, p, ch int
				if _, err := fmt.Sscanf(ifc.Name, "Serial%d/%d/%d:0", &s, &p, &ch); err == nil {
					slots[s] = true
				}
			}
			for s := 1; s <= bd.nextSlot; s++ {
				if slots[s] {
					bd.cfg.Controllers = append(bd.cfg.Controllers, Controller{Kind: "T3", Path: fmt.Sprintf("%d/0", s)})
				}
			}
		}
	}

	return n, nil
}
