// Package par is the pipeline's worker-pool substrate: bounded fan-out
// over an index space with ordered collection and deterministic error
// propagation, instrumented through internal/obs.
//
// Every parallel stage of the pipeline (template learning, temporal
// calibration, rule mining, augmentation, temporal grouping) is an
// embarrassingly parallel loop over independent work items — error codes,
// grid points, routers, messages, (template, location) streams. par gives
// those loops one shape:
//
//	pool := par.New(workers) // workers <= 0 means GOMAXPROCS
//	err := pool.ForEach(len(items), func(i int) error { ... })
//
// Determinism contract: results are written by index into caller-owned
// slices (never appended in completion order) and the first error by
// *lowest index* wins, exactly as a serial loop would report it. A pool
// with one worker (or a nil pool) runs the loop inline with no goroutines,
// so "parallelism 1" is byte-for-byte the serial path.
//
// Instrumentation (optional, via Instrument): a workers gauge, a tasks
// counter, and a queue-wait histogram measuring how long submitted tasks
// sat before a worker picked them up — the saturation signal for sizing
// -j. An uninstrumented pool records nothing and skips the timestamps.
package par

import (
	"runtime"
	"sync"
	"time"

	"syslogdigest/internal/obs"
)

// Workers resolves a parallelism knob: n <= 0 means runtime.GOMAXPROCS(0),
// anything else is taken as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a bounded worker pool. The zero value and nil are usable and run
// everything inline (serial); construct with New for real fan-out. Pools
// are cheap: goroutines exist only for the duration of a ForEach call, so
// a Pool is just a worker budget plus optional metric handles and may be
// shared freely across concurrent calls.
type Pool struct {
	workers int

	workersG *obs.Gauge     // <prefix>.workers
	tasks    *obs.Counter   // <prefix>.tasks
	wait     *obs.Histogram // <prefix>.queue_wait_seconds
}

// New builds a pool with the given worker budget (<= 0 means GOMAXPROCS).
func New(workers int) *Pool {
	return &Pool{workers: Workers(workers)}
}

// Workers returns the pool's worker budget; nil and zero-value pools
// report 1 (inline execution).
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return 1
	}
	return p.workers
}

// Instrument publishes the pool's metrics into reg under prefix:
// <prefix>.workers (gauge), <prefix>.tasks (counter), and
// <prefix>.queue_wait_seconds (histogram). A nil registry or pool is a
// no-op.
func (p *Pool) Instrument(reg *obs.Registry, prefix string) {
	if p == nil || reg == nil {
		return
	}
	p.workersG = reg.Gauge(prefix + ".workers")
	p.tasks = reg.Counter(prefix + ".tasks")
	p.wait = reg.Histogram(prefix+".queue_wait_seconds", obs.LatencyBounds())
	p.workersG.Set(float64(p.Workers()))
}

// ForEach runs fn(i) for every i in [0, n), fanning out across the pool's
// workers. It blocks until all calls return. When several calls fail, the
// error with the lowest index is returned — the same one a serial loop
// would have stopped at. With one worker (or a nil pool) the loop runs
// inline and stops at the first error.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if p != nil {
		p.tasks.Add(uint64(n))
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	type task struct {
		i   int
		enq time.Time
	}
	stamp := p != nil && p.wait != nil
	ch := make(chan task, n)
	for i := 0; i < n; i++ {
		t := task{i: i}
		if stamp {
			t.enq = time.Now()
		}
		ch <- t
	}
	close(ch)

	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if stamp {
					p.wait.Observe(time.Since(t.enq).Seconds())
				}
				errs[t.i] = fn(t.i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Chunks splits [0, n) into at most Workers() contiguous ranges and runs
// fn(lo, hi) for each — the right shape when per-item work is too small to
// schedule individually (e.g. augmenting one message).
func (p *Pool) Chunks(n int, fn func(lo, hi int) error) error {
	ranges := Ranges(n, p.Workers())
	return p.ForEach(len(ranges), func(i int) error {
		return fn(ranges[i][0], ranges[i][1])
	})
}

// Map runs fn over [0, n) across the pool and collects the results in
// index order, so the output is identical at any worker count.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Ranges splits [0, n) into at most parts contiguous [lo, hi) ranges of
// near-equal size (empty input yields no ranges).
func Ranges(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	chunk := (n + parts - 1) / parts
	out := make([][2]int, 0, parts)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
