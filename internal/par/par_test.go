package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"syslogdigest/internal/obs"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestNilAndZeroPoolsRunInline(t *testing.T) {
	var nilPool *Pool
	for name, p := range map[string]*Pool{"nil": nilPool, "zero": {}} {
		if p.Workers() != 1 {
			t.Fatalf("%s pool Workers() = %d, want 1", name, p.Workers())
		}
		sum := 0
		if err := p.ForEach(5, func(i int) error { sum += i; return nil }); err != nil {
			t.Fatalf("%s pool ForEach: %v", name, err)
		}
		if sum != 10 {
			t.Fatalf("%s pool sum = %d", name, sum)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 100} {
		p := New(w)
		const n = 57
		var hits [n]atomic.Int32
		if err := p.ForEach(n, func(i int) error { hits[i].Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d index %d hit %d times", w, i, hits[i].Load())
			}
		}
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := New(w)
		err := p.ForEach(20, func(i int) error {
			if i%3 == 0 && i > 0 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("workers=%d err = %v, want fail at 3", w, err)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		p := New(w)
		out, err := Map(p, 33, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d out[%d] = %d", w, i, v)
			}
		}
	}
	if _, err := Map(New(4), 5, func(i int) (int, error) {
		return 0, errors.New("boom")
	}); err == nil {
		t.Fatal("Map swallowed error")
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, w := range []int{1, 3, 4, 16} {
		p := New(w)
		for _, n := range []int{0, 1, 5, 16, 17, 1000} {
			var covered atomic.Int64
			err := p.Chunks(n, func(lo, hi int) error {
				if lo >= hi || lo < 0 || hi > n {
					return fmt.Errorf("bad chunk [%d, %d)", lo, hi)
				}
				covered.Add(int64(hi - lo))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if covered.Load() != int64(n) {
				t.Fatalf("workers=%d n=%d covered %d", w, n, covered.Load())
			}
		}
	}
}

func TestRanges(t *testing.T) {
	if got := Ranges(0, 4); got != nil {
		t.Fatalf("Ranges(0,4) = %v", got)
	}
	// Contiguous, ordered, exactly covering [0, n).
	for _, tc := range []struct{ n, parts int }{{1, 1}, {10, 3}, {10, 10}, {10, 99}, {7, 2}} {
		rs := Ranges(tc.n, tc.parts)
		if len(rs) > tc.parts {
			t.Fatalf("Ranges(%d,%d): %d ranges", tc.n, tc.parts, len(rs))
		}
		want := 0
		for _, r := range rs {
			if r[0] != want || r[1] <= r[0] {
				t.Fatalf("Ranges(%d,%d) = %v not contiguous", tc.n, tc.parts, rs)
			}
			want = r[1]
		}
		if want != tc.n {
			t.Fatalf("Ranges(%d,%d) covers %d", tc.n, tc.parts, want)
		}
	}
}

func TestInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(4)
	p.Instrument(reg, "test.pool")
	if err := p.ForEach(10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Gauge("test.pool.workers"); got != 4 {
		t.Fatalf("workers gauge = %v", got)
	}
	if got := snap.Counter("test.pool.tasks"); got != 10 {
		t.Fatalf("tasks counter = %d", got)
	}
	h := snap.Histogram("test.pool.queue_wait_seconds")
	if h == nil || h.Count != 10 {
		t.Fatalf("queue wait histogram = %+v", h)
	}
	// Nil registry and nil pool are no-ops.
	p.Instrument(nil, "x")
	var np *Pool
	np.Instrument(reg, "y")
}
