package tickets

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
)

var t0 = time.Date(2009, 12, 1, 0, 0, 0, 0, time.UTC)

func conds() []gen.Condition {
	return []gen.Condition{
		{Kind: "link-flap", Start: t0, End: t0.Add(time.Hour), Routers: []string{"r1", "r2"}, Region: "TX", Messages: 500},
		{Kind: "bgp-flap", Start: t0.Add(2 * time.Hour), End: t0.Add(3 * time.Hour), Routers: []string{"r3"}, Region: "GA", Messages: 60},
		{Kind: "scan-noise", Start: t0.Add(4 * time.Hour), End: t0.Add(4 * time.Hour), Routers: []string{"r4"}, Region: "NY", Messages: 1},
	}
}

func TestFromConditionsFiltersSmall(t *testing.T) {
	ts := FromConditions(conds(), Options{MinMessages: 10, OpenProb: 1, Seed: 1})
	if len(ts) != 2 {
		t.Fatalf("tickets = %d, want 2 (noise filtered)", len(ts))
	}
	for _, tk := range ts {
		if tk.Kind == "scan-noise" {
			t.Fatal("singleton noise got a ticket")
		}
		if tk.Created.Before(t0) {
			t.Fatal("ticket created before condition start")
		}
		if tk.Updates <= 0 {
			t.Fatal("ticket has no updates")
		}
	}
	// Bigger incidents are investigated more (log2(500) > log2(60) by 3).
	if ts[0].Kind == "link-flap" && ts[1].Kind == "bgp-flap" {
		if ts[0].Updates <= ts[1].Updates-4 {
			t.Fatalf("update counts implausible: %d vs %d", ts[0].Updates, ts[1].Updates)
		}
	}
}

func TestFromConditionsDeterministic(t *testing.T) {
	a := FromConditions(conds(), Options{Seed: 5})
	b := FromConditions(conds(), Options{Seed: 5})
	if len(a) != len(b) {
		t.Fatal("nondeterministic ticket count")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Updates != b[i].Updates || !a[i].Created.Equal(b[i].Created) {
			t.Fatalf("nondeterministic tickets at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTopK(t *testing.T) {
	ts := []Ticket{
		{ID: "a", Updates: 3, Created: t0},
		{ID: "b", Updates: 9, Created: t0},
		{ID: "c", Updates: 9, Created: t0.Add(-time.Hour)},
		{ID: "d", Updates: 1, Created: t0},
	}
	top := TopK(ts, 2)
	if len(top) != 2 || top[0].ID != "c" || top[1].ID != "b" {
		t.Fatalf("TopK = %v", top)
	}
	if len(TopK(ts, 99)) != 4 || len(TopK(ts, -1)) != 0 {
		t.Fatal("TopK bounds wrong")
	}
}

func regionMap(m map[string]string) RegionOf {
	return func(r string) string { return m[r] }
}

func TestMatchEvents(t *testing.T) {
	regions := regionMap(map[string]string{"r1": "TX", "r2": "TX", "r3": "GA"})
	events := []event.Event{
		{Start: t0, End: t0.Add(time.Hour), Routers: []string{"r1", "r2"}},                  // rank 0
		{Start: t0.Add(2 * time.Hour), End: t0.Add(3 * time.Hour), Routers: []string{"r3"}}, // rank 1
	}
	tks := []Ticket{
		{ID: "x", Created: t0.Add(10 * time.Minute), Region: "TX"},
		{ID: "y", Created: t0.Add(2*time.Hour + time.Minute), Region: "GA"},
		{ID: "z", Created: t0.Add(10 * time.Hour), Region: "TX"},   // nothing covers
		{ID: "w", Created: t0.Add(10 * time.Minute), Region: "CA"}, // wrong region
	}
	ms := MatchEvents(tks, events, regions, 0)
	if ms[0].EventRank != 0 || ms[1].EventRank != 1 || ms[2].EventRank != -1 || ms[3].EventRank != -1 {
		t.Fatalf("matches = %+v", ms)
	}
	s := Summarize(ms, 0.5)
	if s.Tickets != 4 || s.Matched != 2 || s.WithinTopPct != 2 {
		t.Fatalf("summary = %+v", s)
	}
	// Tight top fraction: only the rank-0 match is within top 25%.
	s = Summarize(ms, 0.25)
	if s.WithinTopPct != 1 {
		t.Fatalf("summary@0.25 = %+v", s)
	}
}

func TestMatchEventsSlack(t *testing.T) {
	regions := regionMap(map[string]string{"r1": "TX"})
	events := []event.Event{
		{Start: t0, End: t0.Add(time.Minute), Routers: []string{"r1"}},
	}
	tk := Ticket{ID: "x", Created: t0.Add(3 * time.Minute), Region: "TX"}
	if ms := MatchEvents([]Ticket{tk}, events, regions, 0); ms[0].EventRank != -1 {
		t.Fatal("match without slack should fail")
	}
	if ms := MatchEvents([]Ticket{tk}, events, regions, 5*time.Minute); ms[0].EventRank != 0 {
		t.Fatal("match with slack should succeed")
	}
}

func TestMatchEmptyRegionNeverMatches(t *testing.T) {
	events := []event.Event{{Start: t0, End: t0.Add(time.Hour), Routers: []string{"r1"}}}
	ms := MatchEvents([]Ticket{{Created: t0.Add(time.Minute)}}, events, regionMap(nil), 0)
	if ms[0].EventRank != -1 {
		t.Fatal("region-less ticket matched")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	in := []Ticket{
		{ID: "TK000001", Created: t0, Updates: 7, Kind: "link-flap", Region: "TX", Routers: []string{"r1", "r2"}},
		{ID: "TK000002", Created: t0.Add(time.Hour), Updates: 3, Kind: "bgp-flap", Region: "GA", Routers: []string{"r3"}},
		{ID: "TK000003", Created: t0.Add(2 * time.Hour), Updates: 1, Kind: "cpu-high", Region: "NY"},
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost tickets: %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Updates != in[i].Updates ||
			!out[i].Created.Equal(in[i].Created) || out[i].Region != in[i].Region {
			t.Fatalf("ticket %d drift: %+v vs %+v", i, out[i], in[i])
		}
		if len(out[i].Routers) != len(in[i].Routers) {
			t.Fatalf("ticket %d routers drift: %v vs %v", i, out[i].Routers, in[i].Routers)
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"no header at all",
		"id\tcreated\tupdates\tkind\tregion\trouters\nonly\tthree\tfields\n",
		"id\tcreated\tupdates\tkind\tregion\trouters\nTK1\tnot-a-time\t3\tk\tTX\tr1\n",
		"id\tcreated\tupdates\tkind\tregion\trouters\nTK1\t2009-12-01 00:00:00\tNaN\tk\tTX\tr1\n",
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadTSV accepted %q", c)
		}
	}
}
