// Package tickets is the trouble-ticket substrate for the §5.3 validation.
//
// The paper obtains operational trouble tickets, ranks them by how many
// times each was investigated/updated, takes the top 30, and checks that
// every one matches a SyslogDigest event ranked in the top 5%: match means
// the event's duration covers the ticket's creation time and the locations
// agree at the state (region) level.
//
// Here tickets are sampled from the simulator's ground-truth conditions —
// operations opens tickets for impactful conditions, and investigation
// effort grows with incident size — and the same match predicate is
// applied against digested events.
package tickets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/locdict"
)

// Ticket is one trouble ticket.
type Ticket struct {
	ID      string
	Created time.Time
	Updates int // times investigated/updated — the paper's importance proxy
	Kind    string
	Region  string
	Routers []string
}

// Options tunes ticket synthesis.
type Options struct {
	// MinMessages is the condition size below which operations never opens
	// a ticket. Zero means 10.
	MinMessages int
	// OpenProb is the probability an eligible condition gets a ticket.
	// Zero means 0.6 (not every incident is ticketed).
	OpenProb float64
	// Seed drives sampling.
	Seed int64
}

func (o Options) normalize() Options {
	if o.MinMessages == 0 {
		o.MinMessages = 10
	}
	if o.OpenProb == 0 {
		o.OpenProb = 0.6
	}
	return o
}

// FromConditions synthesizes tickets from ground-truth conditions.
func FromConditions(conds []gen.Condition, opt Options) []Ticket {
	opt = opt.normalize()
	rng := rand.New(rand.NewSource(opt.Seed ^ ick()))
	var out []Ticket
	for i, c := range conds {
		if c.Messages < opt.MinMessages {
			continue
		}
		if rng.Float64() >= opt.OpenProb {
			continue
		}
		// Tickets open a little after the condition starts (detection lag)
		// and are investigated more the bigger the incident.
		lag := time.Duration(rng.Int63n(int64(5 * time.Minute)))
		updates := 1 + int(math.Log2(float64(c.Messages))) + rng.Intn(4)
		out = append(out, Ticket{
			ID:      fmt.Sprintf("TK%06d", i+1),
			Created: c.Start.Add(lag),
			Updates: updates,
			Kind:    c.Kind,
			Region:  c.Region,
			Routers: append([]string(nil), c.Routers...),
		})
	}
	return out
}

// ick is a stable seed perturbation so that ticket sampling never
// accidentally shares a random stream with the generator.
func ick() int64 { return 0x71c4 }

// TopK returns the k most-investigated tickets (all when k exceeds len),
// the paper's "top 30 tickets" selection. Ties break by earlier creation.
func TopK(ts []Ticket, k int) []Ticket {
	sorted := append([]Ticket(nil), ts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Updates != sorted[j].Updates {
			return sorted[i].Updates > sorted[j].Updates
		}
		return sorted[i].Created.Before(sorted[j].Created)
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	if k < 0 {
		k = 0
	}
	return sorted[:k]
}

// RegionOf maps a router to its region via the dictionary ("" unknown).
type RegionOf func(router string) string

// Match is the outcome of matching one ticket against ranked events.
type Match struct {
	Ticket Ticket
	// EventRank is the 0-based rank of the best matching event, -1 when no
	// event matches.
	EventRank int
	// RankPct is EventRank / total events (0 = top). Meaningless when
	// EventRank is -1.
	RankPct float64
}

// MatchEvents applies the paper's predicate: an event matches a ticket when
// its [Start-slack, End+slack] span covers the ticket creation time and
// some event router shares the ticket's region. Events must be in rank
// order (as the digester returns them). The best (highest-ranked) matching
// event is reported per ticket.
func MatchEvents(tks []Ticket, events []event.Event, regionOf RegionOf, slack time.Duration) []Match {
	out := make([]Match, 0, len(tks))
	for _, tk := range tks {
		m := Match{Ticket: tk, EventRank: -1}
		for rank := range events {
			e := &events[rank]
			if tk.Created.Before(e.Start.Add(-slack)) || tk.Created.After(e.End.Add(slack)) {
				continue
			}
			if !sameRegion(tk, e, regionOf) {
				continue
			}
			m.EventRank = rank
			if len(events) > 0 {
				m.RankPct = float64(rank) / float64(len(events))
			}
			break
		}
		out = append(out, m)
	}
	return out
}

func sameRegion(tk Ticket, e *event.Event, regionOf RegionOf) bool {
	if tk.Region == "" {
		return false
	}
	for _, r := range e.Routers {
		if regionOf(r) == tk.Region {
			return true
		}
	}
	return false
}

// Summary condenses match results: how many tickets matched at all, and how
// many matched an event within the given top fraction of the ranking.
type Summary struct {
	Tickets      int
	Matched      int
	WithinTopPct int
	TopFraction  float64
	WorstRankPct float64
}

// Summarize computes the §5.3 headline numbers for a top fraction (the
// paper uses 0.05).
func Summarize(ms []Match, topFraction float64) Summary {
	s := Summary{Tickets: len(ms), TopFraction: topFraction}
	for _, m := range ms {
		if m.EventRank < 0 {
			continue
		}
		s.Matched++
		if m.RankPct <= topFraction {
			s.WithinTopPct++
		}
		if m.RankPct > s.WorstRankPct {
			s.WorstRankPct = m.RankPct
		}
	}
	return s
}

// DictRegionOf adapts a location dictionary to a RegionOf.
func DictRegionOf(d *locdict.Dictionary) RegionOf {
	return func(router string) string { return d.Region(router) }
}
