package tickets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"syslogdigest/internal/syslogmsg"
)

// TSV serialization: the format cmd/sdgen writes and cmd/sdvalidate reads,
// mirroring how operational ticket dumps arrive as flat exports.
//
//	id<TAB>created<TAB>updates<TAB>kind<TAB>region<TAB>router1,router2

// WriteTSV writes tickets with a header row.
func WriteTSV(w io.Writer, ts []Ticket) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("id\tcreated\tupdates\tkind\tregion\trouters\n"); err != nil {
		return err
	}
	for _, t := range ts {
		_, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%s\t%s\t%s\n",
			t.ID, t.Created.Format(syslogmsg.TimeLayout), t.Updates, t.Kind, t.Region,
			strings.Join(t.Routers, ","))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV reads tickets written by WriteTSV (the header row is required).
func ReadTSV(r io.Reader) ([]Ticket, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1024*1024)
	var out []Ticket
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if lineNo == 1 {
			if !strings.HasPrefix(line, "id\t") {
				return nil, fmt.Errorf("tickets: missing TSV header")
			}
			continue
		}
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 6 {
			return nil, fmt.Errorf("tickets: line %d has %d fields, want 6", lineNo, len(fields))
		}
		created, err := parseTime(fields[1])
		if err != nil {
			return nil, fmt.Errorf("tickets: line %d: %v", lineNo, err)
		}
		updates, err := strconv.Atoi(fields[2])
		if err != nil || updates < 0 {
			return nil, fmt.Errorf("tickets: line %d: bad updates %q", lineNo, fields[2])
		}
		var routers []string
		if fields[5] != "" {
			routers = strings.Split(fields[5], ",")
		}
		out = append(out, Ticket{
			ID: fields[0], Created: created, Updates: updates,
			Kind: fields[3], Region: fields[4], Routers: routers,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tickets: read: %w", err)
	}
	return out, nil
}

func parseTime(s string) (time.Time, error) {
	return time.Parse(syslogmsg.TimeLayout, s)
}
