package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEWMAFirstObservationInitializes(t *testing.T) {
	e := NewEWMA(0.3)
	if e.Started() {
		t.Fatal("fresh EWMA reports started")
	}
	got := e.Observe(10)
	if got != 10 {
		t.Fatalf("first observation = %v, want 10", got)
	}
	if !e.Started() {
		t.Fatal("EWMA not started after observation")
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(10)
	got := e.Observe(20) // 0.5*20 + 0.5*10
	if !almostEqual(got, 15, 1e-12) {
		t.Fatalf("second observation = %v, want 15", got)
	}
	got = e.Observe(15) // 0.5*15 + 0.5*15
	if !almostEqual(got, 15, 1e-12) {
		t.Fatalf("third observation = %v, want 15", got)
	}
}

func TestEWMAAlphaClamping(t *testing.T) {
	if a := NewEWMA(-1).Alpha(); a <= 0 {
		t.Fatalf("negative alpha not clamped: %v", a)
	}
	if a := NewEWMA(2).Alpha(); a != 1 {
		t.Fatalf("alpha > 1 not clamped: %v", a)
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.2)
	e.Observe(5)
	e.Reset()
	if e.Started() || e.Value() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestEWMAAlphaOneTracksInput(t *testing.T) {
	e := NewEWMA(1)
	for _, x := range []float64{3, 9, -4, 0.5} {
		if got := e.Observe(x); got != x {
			t.Fatalf("alpha=1 EWMA = %v, want %v", got, x)
		}
	}
}

// Property: EWMA value always lies within [min, max] of observations seen.
func TestEWMABoundedByObservations(t *testing.T) {
	f := func(alpha float64, xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(alpha, 1))
		if a == 0 {
			a = 0.5
		}
		e := NewEWMA(a)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip degenerate inputs
			}
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			v := e.Observe(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearRegressionExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.A, 1, 1e-9) || !almostEqual(fit.B, 2, 1e-9) {
		t.Fatalf("fit = %+v, want A=1 B=2", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("want error for constant x")
	}
}

func TestLinearRegressionNoisyR2(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0.1, 0.9, 2.2, 2.8, 4.1, 4.9} // roughly y = x
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.98 {
		t.Fatalf("R2 = %v, want near 1 for near-linear data", fit.R2)
	}
	if !almostEqual(fit.B, 1, 0.1) {
		t.Fatalf("slope = %v, want ~1", fit.B)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("Quantile(single) = %v, want 7", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-9) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Stddev(xs); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("Stddev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 100} {
		h.Observe(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("OutOfRange = (%d, %d), want (1, 2)", under, over)
	}
	if h.Bucket(0) != 2 { // 0 and 1.9
		t.Fatalf("Bucket(0) = %d, want 2", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 2
		t.Fatalf("Bucket(1) = %d, want 1", h.Bucket(1))
	}
	if h.Bucket(4) != 1 { // 9.999
		t.Fatalf("Bucket(4) = %d, want 1", h.Bucket(4))
	}
	lo, hi := h.BucketBounds(2)
	if !almostEqual(lo, 4, 1e-12) || !almostEqual(hi, 6, 1e-12) {
		t.Fatalf("BucketBounds(2) = (%v, %v), want (4, 6)", lo, hi)
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for max <= min")
		}
	}()
	NewHistogram(5, 5, 3)
}

// Property: histogram totals equal observations fed in.
func TestHistogramTotalConserved(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 7)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Observe(x)
			n++
		}
		var inRange int64
		for i := 0; i < h.Buckets(); i++ {
			inRange += h.Bucket(i)
		}
		under, over := h.OutOfRange()
		return h.Total() == int64(n) && inRange+under+over == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterOrderingDeterministic(t *testing.T) {
	c := NewCounter()
	c.Add("b", 5)
	c.Add("a", 5)
	c.Add("z", 9)
	c.Inc("a") // a=6
	got := c.SortedDesc()
	want := []KV{{"z", 9}, {"a", 6}, {"b", 5}}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedDesc[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if top := c.TopK(2); len(top) != 2 || top[0].Key != "z" {
		t.Fatalf("TopK(2) = %+v", top)
	}
	if top := c.TopK(99); len(top) != 3 {
		t.Fatalf("TopK(99) len = %d, want 3", len(top))
	}
	if top := c.TopK(-1); len(top) != 0 {
		t.Fatalf("TopK(-1) len = %d, want 0", len(top))
	}
	if c.Total() != 20 || c.Len() != 3 || c.Get("nope") != 0 {
		t.Fatalf("Total/Len/Get wrong: %d %d %d", c.Total(), c.Len(), c.Get("nope"))
	}
}
