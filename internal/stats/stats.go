// Package stats provides small statistical helpers used across the
// SyslogDigest pipeline: exponentially weighted moving averages, simple
// linear regression, histograms, and quantiles. All functions are pure and
// allocation-conscious; none of them depend on the rest of the repository.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// EWMA is an exponentially weighted moving average with smoothing factor
// Alpha in (0, 1]. A higher Alpha discounts older observations faster.
// The zero value is not usable; construct with NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha is clamped
// to the half-open interval (0, 1]; a non-positive alpha is replaced by a
// tiny epsilon so that the average still moves.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 1e-9
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Alpha returns the smoothing factor.
func (e *EWMA) Alpha() float64 { return e.alpha }

// Started reports whether at least one observation has been recorded.
func (e *EWMA) Started() bool { return e.started }

// Value returns the current smoothed value. It returns 0 before the first
// observation.
func (e *EWMA) Value() float64 { return e.value }

// Observe folds a new observation into the average and returns the updated
// value. The first observation initializes the average to the observation
// itself, mirroring the common EWMA bootstrap.
func (e *EWMA) Observe(x float64) float64 {
	if !e.started {
		e.value = x
		e.started = true
		return e.value
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Reset clears the average back to its pre-observation state.
func (e *EWMA) Reset() {
	e.value = 0
	e.started = false
}

// SetState overwrites the average's accumulated state, keeping the
// smoothing factor. It exists for checkpoint restore: a restored EWMA must
// continue the exact numeric sequence the snapshotted one would have
// produced, so the raw (value, started) pair round-trips as-is.
func (e *EWMA) SetState(value float64, started bool) {
	e.value = value
	e.started = started
}

// LinearFit holds the result of an ordinary least squares fit y = A + B*x.
type LinearFit struct {
	A  float64 // intercept
	B  float64 // slope
	R2 float64 // coefficient of determination; 1 means perfect fit
	N  int     // number of points fitted
}

// LinearRegression fits y = A + B*x by ordinary least squares. It returns an
// error when fewer than two points are supplied or when all x values are
// identical (the slope would be undefined).
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, got %d", n)
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: all x values identical")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		// Residual sum of squares relative to total sum of squares.
		ss := syy - b*sxy
		r2 = 1 - ss/syy
		if r2 < 0 {
			r2 = 0
		}
	}
	return LinearFit{A: a, B: b, R2: r2, N: n}, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs, or 0 when fewer
// than two values are supplied.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Histogram is a fixed-bucket counting histogram over float64 samples.
type Histogram struct {
	min, max float64
	width    float64
	counts   []int64
	under    int64 // samples below min
	over     int64 // samples at or above max
	total    int64
}

// NewHistogram creates a histogram covering [min, max) with the given number
// of equal-width buckets. It panics if max <= min or buckets < 1; both are
// programmer errors, not data errors.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if max <= min {
		panic(fmt.Sprintf("stats: invalid histogram range [%v, %v)", min, max))
	}
	if buckets < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{
		min:    min,
		max:    max,
		width:  (max - min) / float64(buckets),
		counts: make([]int64, buckets),
	}
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.min:
		h.under++
	case x >= h.max:
		h.over++
	default:
		i := int((x - h.min) / h.width)
		if i >= len(h.counts) { // guard against float rounding at the top edge
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total returns the number of samples observed, including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Buckets returns the number of in-range buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// OutOfRange returns the number of samples below min and at/above max.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// BucketBounds returns the half-open range [lo, hi) covered by bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	lo = h.min + float64(i)*h.width
	return lo, lo + h.width
}

// Counter is a string-keyed frequency counter with deterministic iteration.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Add increments key by n.
func (c *Counter) Add(key string, n int64) { c.counts[key] += n }

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.counts[key]++ }

// Get returns the count for key (0 when absent).
func (c *Counter) Get(key string) int64 { return c.counts[key] }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Total returns the sum over all keys.
func (c *Counter) Total() int64 {
	var t int64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// KV is one (key, count) pair produced by TopK and SortedDesc.
type KV struct {
	Key   string
	Count int64
}

// SortedDesc returns all pairs sorted by descending count, breaking ties by
// ascending key so the ordering is deterministic.
func (c *Counter) SortedDesc() []KV {
	out := make([]KV, 0, len(c.counts))
	for k, v := range c.counts {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TopK returns the k most frequent pairs (all pairs when k exceeds Len).
func (c *Counter) TopK(k int) []KV {
	all := c.SortedDesc()
	if k > len(all) {
		k = len(all)
	}
	if k < 0 {
		k = 0
	}
	return all[:k]
}
