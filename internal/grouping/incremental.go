// Incremental grouping: the same three passes as Grouper.Group, run one
// message at a time over bounded state, with watermark-driven group closure.
//
// The batch grouper sorts a whole batch and scans it with a union-find; this
// file maintains the equivalent partition online. Each arriving message
// starts as a singleton group, then up to three join steps run against
// bounded windows of recent messages:
//
//   - temporal: one EWMA model per live (template, location) stream plus a
//     pointer to the stream's previous message;
//   - rule-based: per-router rings of the last MaxScan messages, expired
//     past the rule window W;
//   - cross-router: one global ring of the last MaxScan messages, expired
//     past the cross window.
//
// The watermark is the maximum message time observed. A group closes — is
// emitted and its state dropped — once
//
//	watermark − group.lastTime > horizon,   horizon = max(Smax, W, Cross)
//
// (windows that a disabled stage would use are excluded from the max). The
// rule is safe because every join step pairs an old message m with the
// current message cur, and each pass bounds cur.Time − m.Time: temporal
// joins require the interarrival st < Smax (Observe returns false at
// st ≥ Smax), rule joins require it ≤ W, cross joins ≤ Cross. So a group
// whose newest member is older than watermark − horizon cannot gain a
// member directly, and — since any transitive extension must start with a
// direct join to some member — cannot gain one at all. Ring expiry uses the
// same windows, so an expire-then-examine step can never touch a closed
// group; merge still checks and fails loudly if the invariant breaks.
//
// Open groups live on a doubly-linked list ordered by lastTime: every
// update sets a group's lastTime to the current (maximum) message time, so
// a move-to-tail keeps the list sorted and closure is a pop-from-head scan.
//
// The temporal model table is the one structure a stream could grow without
// bound (dead streams never expire by time alone), so it is capped by
// MaxStreams with least-recently-observed eviction. Evicting a stream that
// never speaks again is invisible — the model had no future joins to make.
// Evicting a stream that does return costs only a cold-started EWMA for it
// (the partition of past messages is unaffected); the eviction counter
// makes the approximation observable.
//
// Since PR 5 the implementation is split along the sharding boundary
// (see shard.go): RouterLocal owns the temporal models and per-router rule
// windows — everything whose join decisions depend only on one router's
// message stream — and Merger owns the groups, the closure list, and the
// cross-router ring. Incremental composes one of each inline; the sharded
// streaming engine runs N RouterLocals on worker goroutines feeding one
// Merger, and produces byte-identical output because the Merger executes
// the exact same operation sequence either way.
package grouping

import (
	"fmt"
	"time"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
)

// DefaultMaxStreams bounds the temporal model table when the caller does
// not: ~256k live (template, location) streams, far above any of the
// paper's networks, small enough to cap memory during template churn.
const DefaultMaxStreams = 1 << 18

// IncrementalConfig tunes the incremental grouper: the batch Config plus
// the state bound.
type IncrementalConfig struct {
	Config
	// MaxStreams caps the temporal model table (<= 0: DefaultMaxStreams).
	MaxStreams int
	// ProvisionalHorizon enables two-tier emission when positive: a group
	// that outlives this much log time publishes a provisional record
	// (revision 0) and then revised/superseded records as it grows or
	// merges, alongside the unchanged final closure stream (see
	// provisional.go). Meant to be far below the closure horizon — seconds
	// against hours. Zero or negative disables the provisional tier.
	// Runtime knob only — never serialized; a restored engine applies its
	// own setting.
	ProvisionalHorizon time.Duration
}

// IncMetrics are the incremental grouper's optional observability handles;
// all are nil-safe, so the zero value records nothing.
type IncMetrics struct {
	MergeTemporal   *obs.Counter // group.merges.temporal
	MergeRule       *obs.Counter // group.merges.rule
	MergeCross      *obs.Counter // group.merges.cross
	RuleCandidates  *obs.Counter // group.rule.candidates_scanned
	RulePairs       *obs.Counter // group.rule.pairs_matched
	CrossCandidates *obs.Counter // group.cross.candidates_scanned
	OpenMessages    *obs.Gauge   // stream.state.messages
	OpenGroups      *obs.Gauge   // stream.state.groups
	Streams         *obs.Gauge   // stream.state.streams
	StreamEvictions *obs.Counter // stream.state.evictions
	PoolGets        *obs.Counter // stream.pool.pending.gets
	PoolPuts        *obs.Counter // stream.pool.pending.puts
	PoolLive        *obs.Gauge   // stream.pool.pending.live
}

// IncStats is a point-in-time snapshot of the incremental grouper.
type IncStats struct {
	OpenMessages    int // messages in not-yet-closed groups
	OpenGroups      int
	Streams         int // live temporal models
	StreamEvictions int
	TemporalMerges  int
	RuleMerges      int
	CrossMerges     int
	// Candidate-scan counters (cumulative): window entries examined and
	// matched by the rule pass, and examined by the cross pass. The
	// template index shrinks the examined counts without changing any
	// match (see Config.LinearScan).
	RuleCandidates  uint64
	RulePairs       uint64
	CrossCandidates uint64
}

// ClosedGroup is one finished group: its members in ascending Seq order,
// plus the stable identity assigned at the group's birth and the final
// revision number of that identity (both consumed by the two-tier emission
// path; a final-only consumer may ignore them).
type ClosedGroup struct {
	ID       uint64
	Revision int
	Members  []Message
}

// Incremental is the streaming counterpart of Grouper: feed it messages in
// nondecreasing time order via Observe and it returns groups as they close.
// It is the single-threaded composition of the two sharding halves — one
// RouterLocal and one Merger (see shard.go). Not safe for concurrent use.
type Incremental struct {
	local *RouterLocal
	merge *Merger
	pool  *PendingPool
	js    Joins
}

// NewIncremental builds an incremental grouper over the same knowledge a
// batch Grouper takes. dict may not be nil; rb may be nil.
func NewIncremental(dict *locdict.Dictionary, rb *rules.RuleBase, cfg IncrementalConfig) (*Incremental, error) {
	s, err := NewShardable(dict, rb, cfg)
	if err != nil {
		return nil, err
	}
	return &Incremental{local: s.NewLocal(0), merge: s.NewMerger(), pool: s.Pool()}, nil
}

// Pool is the grouper's Pending pool (see pool.go): runtime plumbing only,
// exposed for observability.
func (inc *Incremental) Pool() *PendingPool { return inc.pool }

// SetMetrics installs observability handles (may be called before or after
// the first Observe; gauges update on the next one).
func (inc *Incremental) SetMetrics(m IncMetrics) {
	inc.local.SetMetrics(LocalMetrics{
		Streams:         m.Streams,
		StreamEvictions: m.StreamEvictions,
		RuleCandidates:  m.RuleCandidates,
		RulePairs:       m.RulePairs,
	})
	inc.merge.SetMetrics(MergeMetrics{
		MergeTemporal:   m.MergeTemporal,
		MergeRule:       m.MergeRule,
		MergeCross:      m.MergeCross,
		CrossCandidates: m.CrossCandidates,
		OpenMessages:    m.OpenMessages,
		OpenGroups:      m.OpenGroups,
	})
	inc.pool.SetMetrics(PoolMetrics{Gets: m.PoolGets, Puts: m.PoolPuts, Live: m.PoolLive})
}

// Watermark is the maximum message time observed so far.
func (inc *Incremental) Watermark() time.Time { return inc.merge.Watermark() }

// Horizon is the closure bound: a group closes once the watermark passes
// its newest member by more than this.
func (inc *Incremental) Horizon() time.Duration { return inc.merge.Horizon() }

// ActiveRules is the cumulative per-pair rule-merge tally (Figure 12),
// returned as a snapshot copy safe to keep or mutate.
func (inc *Incremental) ActiveRules() map[rules.PairKey]int { return inc.merge.ActiveRules() }

// Stats snapshots the grouper's state and merge counters.
func (inc *Incremental) Stats() IncStats {
	ls, ms := inc.local.Stats(), inc.merge.Stats()
	return IncStats{
		OpenMessages:    ms.OpenMessages,
		OpenGroups:      ms.OpenGroups,
		Streams:         ls.Streams,
		StreamEvictions: ls.Evictions,
		TemporalMerges:  ms.TemporalMerges,
		RuleMerges:      ms.RuleMerges,
		CrossMerges:     ms.CrossMerges,
		RuleCandidates:  ls.RuleCandidates,
		RulePairs:       ls.RulePairs,
		CrossCandidates: ms.CrossCandidates,
	}
}

// Observe ingests one message (nondecreasing time order required) and
// returns any groups the advanced watermark closed, oldest first. The
// returned slice is scratch valid until the next Observe or Drain; see
// Merger.Apply and Recycle.
func (inc *Incremental) Observe(m Message) ([]ClosedGroup, error) {
	// Validate before any state mutation: a time regression must leave the
	// models untouched, exactly as before the local/merge split.
	if inc.merge.started && m.Time.Before(inc.merge.watermark) {
		return nil, fmt.Errorf("grouping: incremental requires nondecreasing timestamps (got %v after watermark %v)",
			m.Time, inc.merge.watermark)
	}
	p := inc.pool.Get(m)
	if err := inc.local.Step(p, &inc.js); err != nil {
		return nil, err
	}
	out, err := inc.merge.Apply(p, &inc.js)
	if err != nil {
		return nil, err
	}
	inc.local.PublishMetrics()
	inc.pool.PublishLive()
	return out, nil
}

// Recycle hands fully-consumed closed groups' member buffers back for
// reuse; optional (see Merger.Recycle).
func (inc *Incremental) Recycle(closed []ClosedGroup) { inc.merge.Recycle(closed) }

// Drain closes every open group (oldest first) and clears the join windows
// and per-stream predecessors, so no later message can group with anything
// emitted here. The EWMA models and the watermark persist: interarrival
// knowledge survives a drain, and time still may not run backwards.
func (inc *Incremental) Drain() []ClosedGroup {
	out := inc.merge.Drain()
	inc.local.DrainWindows()
	inc.local.PublishMetrics()
	inc.pool.PublishLive()
	return out
}
