// Incremental grouping: the same three passes as Grouper.Group, run one
// message at a time over bounded state, with watermark-driven group closure.
//
// The batch grouper sorts a whole batch and scans it with a union-find; this
// file maintains the equivalent partition online. Each arriving message
// starts as a singleton group, then up to three join steps run against
// bounded windows of recent messages:
//
//   - temporal: one EWMA model per live (template, location) stream plus a
//     pointer to the stream's previous message;
//   - rule-based: per-router rings of the last MaxScan messages, expired
//     past the rule window W;
//   - cross-router: one global ring of the last MaxScan messages, expired
//     past the cross window.
//
// The watermark is the maximum message time observed. A group closes — is
// emitted and its state dropped — once
//
//	watermark − group.lastTime > horizon,   horizon = max(Smax, W, Cross)
//
// (windows that a disabled stage would use are excluded from the max). The
// rule is safe because every join step pairs an old message m with the
// current message cur, and each pass bounds cur.Time − m.Time: temporal
// joins require the interarrival st < Smax (Observe returns false at
// st ≥ Smax), rule joins require it ≤ W, cross joins ≤ Cross. So a group
// whose newest member is older than watermark − horizon cannot gain a
// member directly, and — since any transitive extension must start with a
// direct join to some member — cannot gain one at all. Ring expiry uses the
// same windows, so an expire-then-examine step can never touch a closed
// group; merge still checks and fails loudly if the invariant breaks.
//
// Open groups live on a doubly-linked list ordered by lastTime: every
// update sets a group's lastTime to the current (maximum) message time, so
// a move-to-tail keeps the list sorted and closure is a pop-from-head scan.
//
// The temporal model table is the one structure a stream could grow without
// bound (dead streams never expire by time alone), so it is capped by
// MaxStreams with least-recently-observed eviction. Evicting a stream that
// never speaks again is invisible — the model had no future joins to make.
// Evicting a stream that does return costs only a cold-started EWMA for it
// (the partition of past messages is unaffected); the eviction counter
// makes the approximation observable.
package grouping

import (
	"fmt"
	"sort"
	"time"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/temporal"
)

// DefaultMaxStreams bounds the temporal model table when the caller does
// not: ~256k live (template, location) streams, far above any of the
// paper's networks, small enough to cap memory during template churn.
const DefaultMaxStreams = 1 << 18

// IncrementalConfig tunes the incremental grouper: the batch Config plus
// the state bound.
type IncrementalConfig struct {
	Config
	// MaxStreams caps the temporal model table (<= 0: DefaultMaxStreams).
	MaxStreams int
}

// IncMetrics are the incremental grouper's optional observability handles;
// all are nil-safe, so the zero value records nothing.
type IncMetrics struct {
	MergeTemporal   *obs.Counter // group.merges.temporal
	MergeRule       *obs.Counter // group.merges.rule
	MergeCross      *obs.Counter // group.merges.cross
	OpenMessages    *obs.Gauge   // stream.state.messages
	OpenGroups      *obs.Gauge   // stream.state.groups
	Streams         *obs.Gauge   // stream.state.streams
	StreamEvictions *obs.Counter // stream.state.evictions
}

// IncStats is a point-in-time snapshot of the incremental grouper.
type IncStats struct {
	OpenMessages    int // messages in not-yet-closed groups
	OpenGroups      int
	Streams         int // live temporal models
	StreamEvictions int
	TemporalMerges  int
	RuleMerges      int
	CrossMerges     int
}

// ClosedGroup is one finished group: its members in ascending Seq order.
type ClosedGroup struct {
	Members []Message
}

// incMember is one open message; it points at its current group so merges
// need no union-find (groups rewrite member pointers small-into-large).
type incMember struct {
	msg Message
	g   *incGroup
}

// incGroup is one open group on the closure list.
type incGroup struct {
	members    []*incMember
	inline     [2]*incMember // backing array for tiny groups, the common case
	last       time.Time     // max member time
	prev, next *incGroup     // closure list, ascending last
	closed     bool
}

// incNode packs the per-message allocations into one object.
type incNode struct {
	m incMember
	g incGroup
}

type modelKey struct {
	template int
	loc      string
}

// model is one live temporal stream: its EWMA state, its previous message,
// and its position on the least-recently-observed eviction list.
type model struct {
	key        modelKey
	tg         *temporal.Grouper
	last       *incMember
	prev, next *model
}

// memberRing is a bounded FIFO of open-window members backed by a
// power-of-two ring buffer: it grows to the configured scan bound once and
// is then reused forever, so steady-state window maintenance allocates
// nothing.
type memberRing struct {
	buf  []*incMember
	head int
	n    int
}

func (r *memberRing) push(m *incMember) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
}

func (r *memberRing) grow() {
	size := 8
	if len(r.buf) > 0 {
		size = len(r.buf) * 2
	}
	nb := make([]*incMember, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}

func (r *memberRing) at(i int) *incMember { return r.buf[(r.head+i)&(len(r.buf)-1)] }
func (r *memberRing) front() *incMember   { return r.at(0) }

func (r *memberRing) popFront() {
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// Incremental is the streaming counterpart of Grouper: feed it messages in
// nondecreasing time order via Observe and it returns groups as they close.
// Not safe for concurrent use.
type Incremental struct {
	g          *Grouper
	maxStreams int
	horizon    time.Duration
	met        IncMetrics

	started   bool
	watermark time.Time

	models       map[modelKey]*model
	mHead, mTail *model

	routerWin map[string]*memberRing
	crossWin  memberRing

	oHead, oTail *incGroup
	openGroups   int
	openMsgs     int

	active                                  map[rules.PairKey]int
	temporalMerges, ruleMerges, crossMerges int
	evictions                               int
}

// NewIncremental builds an incremental grouper over the same knowledge a
// batch Grouper takes. dict may not be nil; rb may be nil.
func NewIncremental(dict *locdict.Dictionary, rb *rules.RuleBase, cfg IncrementalConfig) (*Incremental, error) {
	g, err := New(dict, rb, cfg.Config)
	if err != nil {
		return nil, err
	}
	maxStreams := cfg.MaxStreams
	if maxStreams <= 0 {
		maxStreams = DefaultMaxStreams
	}
	horizon := g.cfg.Temporal.Smax
	if g.cfg.useRules() && g.cfg.RuleWindow > horizon {
		horizon = g.cfg.RuleWindow
	}
	if g.cfg.useCross() && g.cfg.CrossWindow > horizon {
		horizon = g.cfg.CrossWindow
	}
	return &Incremental{
		g:          g,
		maxStreams: maxStreams,
		horizon:    horizon,
		models:     make(map[modelKey]*model),
		routerWin:  make(map[string]*memberRing),
		active:     make(map[rules.PairKey]int),
	}, nil
}

// SetMetrics installs observability handles (may be called before or after
// the first Observe; gauges update on the next one).
func (inc *Incremental) SetMetrics(m IncMetrics) { inc.met = m }

// Watermark is the maximum message time observed so far.
func (inc *Incremental) Watermark() time.Time { return inc.watermark }

// Horizon is the closure bound: a group closes once the watermark passes
// its newest member by more than this.
func (inc *Incremental) Horizon() time.Duration { return inc.horizon }

// ActiveRules is the cumulative per-pair rule-merge tally (Figure 12).
func (inc *Incremental) ActiveRules() map[rules.PairKey]int { return inc.active }

// Stats snapshots the grouper's state and merge counters.
func (inc *Incremental) Stats() IncStats {
	return IncStats{
		OpenMessages:    inc.openMsgs,
		OpenGroups:      inc.openGroups,
		Streams:         len(inc.models),
		StreamEvictions: inc.evictions,
		TemporalMerges:  inc.temporalMerges,
		RuleMerges:      inc.ruleMerges,
		CrossMerges:     inc.crossMerges,
	}
}

// Observe ingests one message (nondecreasing time order required) and
// returns any groups the advanced watermark closed, oldest first.
func (inc *Incremental) Observe(m Message) ([]ClosedGroup, error) {
	if inc.started && m.Time.Before(inc.watermark) {
		return nil, fmt.Errorf("grouping: incremental requires nondecreasing timestamps (got %v after watermark %v)",
			m.Time, inc.watermark)
	}
	inc.started = true
	inc.watermark = m.Time

	node := &incNode{}
	mem := &node.m
	mem.msg = m
	g := &node.g
	g.inline[0] = mem
	g.members = g.inline[:1]
	g.last = m.Time
	mem.g = g
	inc.pushOpen(g)
	inc.openGroups++
	inc.openMsgs++

	if err := inc.temporalStep(mem); err != nil {
		return nil, err
	}
	if inc.g.cfg.useRules() {
		if err := inc.ruleStep(mem); err != nil {
			return nil, err
		}
	}
	if inc.g.cfg.useCross() {
		if err := inc.crossStep(mem); err != nil {
			return nil, err
		}
	}

	out := inc.closeReady(nil)
	inc.publishGauges()
	return out, nil
}

// Drain closes every open group (oldest first) and clears the join windows
// and per-stream predecessors, so no later message can group with anything
// emitted here. The EWMA models and the watermark persist: interarrival
// knowledge survives a drain, and time still may not run backwards.
func (inc *Incremental) Drain() []ClosedGroup {
	var out []ClosedGroup
	for inc.oHead != nil {
		out = append(out, inc.closeGroup(inc.oHead))
	}
	inc.routerWin = make(map[string]*memberRing)
	inc.crossWin = memberRing{}
	for md := inc.mHead; md != nil; md = md.next {
		md.last = nil
	}
	inc.publishGauges()
	return out
}

// temporalStep runs the stream's EWMA model on the new arrival and joins it
// to the stream's previous message when the model accepts the interarrival.
func (inc *Incremental) temporalStep(mem *incMember) error {
	key := modelKey{mem.msg.Template, mem.msg.Loc.Key()}
	md := inc.models[key]
	if md == nil {
		tg, err := temporal.NewGrouper(inc.g.cfg.Temporal)
		if err != nil {
			return err
		}
		md = &model{key: key, tg: tg}
		inc.models[key] = md
		inc.pushModel(md)
		inc.evictModels()
	} else {
		inc.touchModel(md)
	}
	join := md.tg.Observe(mem.msg.Time)
	if join && md.last != nil {
		if _, err := inc.merge(md.last, mem, &inc.temporalMerges, inc.met.MergeTemporal); err != nil {
			return err
		}
	}
	md.last = mem
	return nil
}

// ruleStep examines the new arrival against its router's retained window,
// exactly the pair set of the batch pass: predecessors within W whose
// position distance is at most MaxScan.
func (inc *Incremental) ruleStep(mem *incMember) error {
	rw := inc.routerWin[mem.msg.Router]
	if rw == nil {
		rw = &memberRing{}
		inc.routerWin[mem.msg.Router] = rw
	}
	// Time is nondecreasing, so a front entry out of window for this
	// message is out of window for every later one: expire before scanning.
	for rw.n > 0 && mem.msg.Time.After(rw.front().msg.Time.Add(inc.g.cfg.RuleWindow)) {
		rw.popFront()
	}
	for i := 0; i < rw.n; i++ {
		mi := rw.at(i)
		if !inc.g.ruleMatch(&mi.msg, &mem.msg) {
			continue
		}
		did, err := inc.merge(mi, mem, &inc.ruleMerges, inc.met.MergeRule)
		if err != nil {
			return err
		}
		if did {
			inc.active[rulePair(mi.msg.Template, mem.msg.Template)]++
		}
	}
	rw.push(mem)
	if rw.n > inc.g.cfg.MaxScan {
		rw.popFront()
	}
	return nil
}

// crossStep examines the new arrival against the global retained window
// within the near-simultaneity bound.
func (inc *Incremental) crossStep(mem *incMember) error {
	cw := &inc.crossWin
	for cw.n > 0 && mem.msg.Time.After(cw.front().msg.Time.Add(inc.g.cfg.CrossWindow)) {
		cw.popFront()
	}
	for i := 0; i < cw.n; i++ {
		mi := cw.at(i)
		if !inc.g.crossPair(&mi.msg, &mem.msg) {
			continue
		}
		if mi.g == mem.g {
			continue
		}
		if inc.g.crossLinked(&mi.msg, &mem.msg) {
			if _, err := inc.merge(mi, mem, &inc.crossMerges, inc.met.MergeCross); err != nil {
				return err
			}
		}
	}
	cw.push(mem)
	if cw.n > inc.g.cfg.MaxScan {
		cw.popFront()
	}
	return nil
}

// merge joins the groups of a and b (b is always the current message).
// Small-into-large pointer rewriting keeps total rewrite work O(n log n).
func (inc *Incremental) merge(a, b *incMember, tally *int, c *obs.Counter) (bool, error) {
	ga, gb := a.g, b.g
	if ga == gb {
		return false, nil
	}
	if ga.closed || gb.closed {
		return false, fmt.Errorf("grouping: merge touched a closed group (closure horizon %v violated)", inc.horizon)
	}
	if len(ga.members) < len(gb.members) {
		ga, gb = gb, ga
	}
	for _, m := range gb.members {
		m.g = ga
	}
	ga.members = append(ga.members, gb.members...)
	if gb.last.After(ga.last) {
		ga.last = gb.last
	}
	inc.unlinkOpen(gb)
	gb.members = nil
	inc.openGroups--
	// b is the newest message overall, so the merged group's lastTime is
	// the current watermark — the list maximum — and a move-to-tail keeps
	// the closure list sorted.
	inc.moveToTail(ga)
	*tally++
	c.Inc()
	return true, nil
}

// closeReady pops closed groups off the head of the closure list.
func (inc *Incremental) closeReady(out []ClosedGroup) []ClosedGroup {
	for inc.oHead != nil && inc.watermark.Sub(inc.oHead.last) > inc.horizon {
		out = append(out, inc.closeGroup(inc.oHead))
	}
	return out
}

// closeGroup finalizes one group: members sort ascending by Seq (the order
// event scoring depends on) and the group's open state is released. Member
// structs may outlive the group inside retained windows; the closed mark
// keeps a late merge from resurrecting it.
func (inc *Incremental) closeGroup(g *incGroup) ClosedGroup {
	inc.unlinkOpen(g)
	g.closed = true
	inc.openGroups--
	inc.openMsgs -= len(g.members)
	sort.Slice(g.members, func(i, j int) bool { return g.members[i].msg.Seq < g.members[j].msg.Seq })
	msgs := make([]Message, len(g.members))
	for i, m := range g.members {
		msgs[i] = m.msg
	}
	g.members = nil
	return ClosedGroup{Members: msgs}
}

func (inc *Incremental) publishGauges() {
	inc.met.OpenMessages.Set(float64(inc.openMsgs))
	inc.met.OpenGroups.Set(float64(inc.openGroups))
	inc.met.Streams.Set(float64(len(inc.models)))
}

// Closure list maintenance (doubly linked, ascending last).

func (inc *Incremental) pushOpen(g *incGroup) {
	g.prev = inc.oTail
	g.next = nil
	if inc.oTail != nil {
		inc.oTail.next = g
	} else {
		inc.oHead = g
	}
	inc.oTail = g
}

func (inc *Incremental) unlinkOpen(g *incGroup) {
	if g.prev != nil {
		g.prev.next = g.next
	} else {
		inc.oHead = g.next
	}
	if g.next != nil {
		g.next.prev = g.prev
	} else {
		inc.oTail = g.prev
	}
	g.prev, g.next = nil, nil
}

func (inc *Incremental) moveToTail(g *incGroup) {
	if inc.oTail == g {
		return
	}
	inc.unlinkOpen(g)
	inc.pushOpen(g)
}

// Model eviction list maintenance (doubly linked, least recently observed
// at the head).

func (inc *Incremental) pushModel(md *model) {
	md.prev = inc.mTail
	md.next = nil
	if inc.mTail != nil {
		inc.mTail.next = md
	} else {
		inc.mHead = md
	}
	inc.mTail = md
}

func (inc *Incremental) unlinkModel(md *model) {
	if md.prev != nil {
		md.prev.next = md.next
	} else {
		inc.mHead = md.next
	}
	if md.next != nil {
		md.next.prev = md.prev
	} else {
		inc.mTail = md.prev
	}
	md.prev, md.next = nil, nil
}

func (inc *Incremental) touchModel(md *model) {
	if inc.mTail == md {
		return
	}
	inc.unlinkModel(md)
	inc.pushModel(md)
}

func (inc *Incremental) evictModels() {
	for len(inc.models) > inc.maxStreams {
		old := inc.mHead
		inc.unlinkModel(old)
		delete(inc.models, old.key)
		old.last = nil
		inc.evictions++
		inc.met.StreamEvictions.Inc()
	}
}
