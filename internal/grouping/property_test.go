package grouping

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"syslogdigest/internal/locdict"
)

// Property tests over randomized message batches: whatever the input, the
// partition must be well-formed and invariant to input order.

// randomBatch builds n messages over the toy dictionary's locations with
// random times, templates, and locations.
func randomBatch(rng *rand.Rand, n int) []Message {
	locs := []locdict.Location{
		locdict.IntfLoc("r1", "Serial1/0.10/10:0"),
		locdict.IntfLoc("r2", "Serial1/0.20/20:0"),
		locdict.RouterLoc("r1"),
		locdict.RouterLoc("r2"),
	}
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	out := make([]Message, n)
	for i := range out {
		loc := locs[rng.Intn(len(locs))]
		out[i] = Message{
			Seq:      i,
			Time:     base.Add(time.Duration(rng.Intn(7200)) * time.Second),
			Router:   loc.Router,
			Template: 1 + rng.Intn(4),
			Loc:      loc,
		}
		if rng.Intn(4) == 0 {
			other := "r2"
			if loc.Router == "r2" {
				other = "r1"
			}
			out[i].Peers = []string{other}
		}
	}
	return out
}

func TestGroupPartitionWellFormedQuick(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	g := newGrouper(t, dict, rb, Config{})

	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%64) + 1
		batch := randomBatch(rng, n)
		res, err := g.Group(batch)
		if err != nil {
			return false
		}
		// Every message in exactly one group; ids dense; members ascending.
		if len(res.GroupOf) != n {
			return false
		}
		seen := make(map[int]int)
		for _, id := range res.GroupOf {
			if id < 0 || id >= len(res.Groups) {
				return false
			}
			seen[id]++
		}
		if len(seen) != len(res.Groups) {
			return false
		}
		total := 0
		for id, members := range res.Groups {
			total += len(members)
			for i, seq := range members {
				if res.GroupOf[seq] != id {
					return false
				}
				if i > 0 && members[i-1] >= seq {
					return false
				}
			}
		}
		if total != n {
			return false
		}
		r := res.CompressionRatio()
		return r > 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupOrderInvarianceQuick(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	g := newGrouper(t, dict, rb, Config{})

	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%48) + 2
		batch := randomBatch(rng, n)
		shuffled := append([]Message(nil), batch...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		a, err := g.Group(batch)
		if err != nil {
			return false
		}
		b, err := g.Group(shuffled)
		if err != nil {
			return false
		}
		if len(a.Groups) != len(b.Groups) {
			return false
		}
		// Same partition: same co-membership for every pair.
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if (a.GroupOf[x] == a.GroupOf[y]) != (b.GroupOf[x] == b.GroupOf[y]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMoreKnowledgeNeverWorsensCompression: adding rules can only merge
// more, never split — group count with rules <= group count without.
func TestMoreKnowledgeNeverWorsensCompression(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	gWith := newGrouper(t, dict, rb, Config{})
	gWithout := newGrouper(t, dict, nil, Config{})

	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%64) + 1
		batch := randomBatch(rng, n)
		a, err := gWith.Group(batch)
		if err != nil {
			return false
		}
		b, err := gWithout.Group(batch)
		if err != nil {
			return false
		}
		return len(a.Groups) <= len(b.Groups)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
