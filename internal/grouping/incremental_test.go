package grouping

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"syslogdigest/internal/temporal"
)

func newIncremental(t *testing.T, cfg Config) *Incremental {
	t.Helper()
	if cfg.Temporal == (temporal.Params{}) {
		cfg.Temporal = temporal.DefaultParams()
	}
	inc, err := NewIncremental(toyDict(t), flapRuleBase(), IncrementalConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return inc
}

// canonical reduces a partition to sorted member lists sorted by first
// member, the order-free form both paths must agree on.
func canonical(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = append([]int(nil), g...)
		sort.Ints(out[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// closedToGroups converts drained ClosedGroups into member-seq lists.
func closedToGroups(closed []ClosedGroup) [][]int {
	out := make([][]int, len(closed))
	for i, cg := range closed {
		for _, m := range cg.Members {
			out[i] = append(out[i], m.Seq)
		}
	}
	return out
}

// feedSorted runs a batch through an Incremental in time order (ties by
// Seq, matching the batch grouper's sort) and returns every group.
func feedSorted(t *testing.T, inc *Incremental, batch []Message) [][]int {
	t.Helper()
	sorted := append([]Message(nil), batch...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if !sorted[i].Time.Equal(sorted[j].Time) {
			return sorted[i].Time.Before(sorted[j].Time)
		}
		return sorted[i].Seq < sorted[j].Seq
	})
	var closed []ClosedGroup
	for i := range sorted {
		cgs, err := inc.Observe(sorted[i])
		if err != nil {
			t.Fatalf("observe: %v", err)
		}
		closed = append(closed, cgs...)
	}
	closed = append(closed, inc.Drain()...)
	return closedToGroups(closed)
}

// TestIncrementalMatchesBatchQuick is the unit-level differential: over
// randomized batches, the incremental grouper fed in time order must emit
// exactly the batch grouper's partition, with the same temporal merge count
// and the same total merge count.
func TestIncrementalMatchesBatchQuick(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()

	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%64) + 1
		batch := randomBatch(rng, n)

		g := newGrouper(t, dict, rb, Config{})
		want, err := g.Group(batch)
		if err != nil {
			return false
		}

		inc := newIncremental(t, Config{})
		got := feedSorted(t, inc, batch)

		a, b := canonical(got), canonical(want.Groups)
		if len(a) != len(b) {
			t.Logf("seed %d n %d: %d groups vs %d", seed, n, len(a), len(b))
			return false
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		st := inc.Stats()
		if st.TemporalMerges != want.TemporalMerges {
			t.Logf("seed %d: temporal merges %d vs %d", seed, st.TemporalMerges, want.TemporalMerges)
			return false
		}
		// Rule/cross split is order-dependent (batch pass order is itself
		// arbitrary across equal partitions), but the total is pinned by the
		// partition: every merge removes one group.
		if got, want := st.TemporalMerges+st.RuleMerges+st.CrossMerges, n-len(b); got != want {
			t.Logf("seed %d: merge total %d vs %d", seed, got, want)
			return false
		}
		if st.OpenMessages != 0 || st.OpenGroups != 0 {
			t.Logf("seed %d: open state after drain: %+v", seed, st)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalRejectsRegression: feeding a message older than the
// watermark is a contract violation (the caller owns reordering).
func TestIncrementalRejectsRegression(t *testing.T) {
	inc := newIncremental(t, Config{})
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	m := Message{Seq: 0, Time: base, Router: "r1", Template: 1}
	if _, err := inc.Observe(m); err != nil {
		t.Fatal(err)
	}
	back := Message{Seq: 1, Time: base.Add(-time.Second), Router: "r1", Template: 1}
	if _, err := inc.Observe(back); err == nil {
		t.Fatal("regression accepted")
	}
	// Equal-to-watermark is fine.
	same := Message{Seq: 2, Time: base, Router: "r1", Template: 1}
	if _, err := inc.Observe(same); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalClosesBehindWatermark: once the feed advances past the
// horizon, earlier groups emit without a drain.
func TestIncrementalClosesBehindWatermark(t *testing.T) {
	inc := newIncremental(t, Config{})
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		m := Message{Seq: i, Time: base.Add(time.Duration(i) * time.Second), Router: "r1", Template: 1}
		if cgs, err := inc.Observe(m); err != nil || len(cgs) != 0 {
			t.Fatalf("premature close: %v %v", cgs, err)
		}
	}
	// The group's last member is at base+2s; closure needs the watermark
	// strictly more than a horizon past it.
	far := Message{Seq: 3, Time: base.Add(inc.Horizon() + 3*time.Second), Router: "r2", Template: 2}
	cgs, err := inc.Observe(far)
	if err != nil {
		t.Fatal(err)
	}
	if len(cgs) != 1 || len(cgs[0].Members) != 3 {
		t.Fatalf("closed %v, want one 3-member group", closedToGroups(cgs))
	}
	for i, m := range cgs[0].Members {
		if m.Seq != i {
			t.Fatalf("members out of Seq order: %v", closedToGroups(cgs))
		}
	}
	if st := inc.Stats(); st.OpenMessages != 1 || st.OpenGroups != 1 {
		t.Fatalf("open state %+v, want the far message only", st)
	}
}

// TestIncrementalDrainResets: Drain closes everything and leaves no open
// state, but keeps the watermark (a later regression still errors).
func TestIncrementalDrainResets(t *testing.T) {
	inc := newIncremental(t, Config{})
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		m := Message{Seq: i, Time: base.Add(time.Duration(i) * time.Minute), Router: "r1", Template: 1 + i%2}
		if _, err := inc.Observe(m); err != nil {
			t.Fatal(err)
		}
	}
	closed := inc.Drain()
	total := 0
	for _, cg := range closed {
		total += len(cg.Members)
	}
	if total != 5 {
		t.Fatalf("drained %d members, want 5", total)
	}
	if st := inc.Stats(); st.OpenMessages != 0 || st.OpenGroups != 0 {
		t.Fatalf("open state after drain: %+v", st)
	}
	if _, err := inc.Observe(Message{Seq: 5, Time: base, Router: "r1", Template: 1}); err == nil {
		t.Fatal("watermark lost across drain")
	}
}
