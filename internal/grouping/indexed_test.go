package grouping

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/netconf"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/temporal"
)

// Differential tests for the template-indexed rule and cross windows: with
// Config.LinearScan toggled, the incremental and batch groupers must emit
// byte-identical partitions, merge tallies, and pair counts — only the
// candidates-scanned counters may (and should) shrink.

// stormBatch concentrates n messages on few templates in a tight time
// range, the worst case for the linear window scan: nearly every window
// entry is live when each message arrives.
func stormBatch(rng *rand.Rand, n int) []Message {
	locs := []locdict.Location{
		locdict.IntfLoc("r1", "Serial1/0.10/10:0"),
		locdict.IntfLoc("r2", "Serial1/0.20/20:0"),
		locdict.RouterLoc("r1"),
		locdict.RouterLoc("r2"),
	}
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	out := make([]Message, n)
	for i := range out {
		loc := locs[rng.Intn(len(locs))]
		out[i] = Message{
			Seq:      i,
			Time:     base.Add(time.Duration(rng.Intn(90)) * time.Second),
			Router:   loc.Router,
			Template: 1 + rng.Intn(4),
			Loc:      loc,
		}
	}
	return out
}

func sortBatch(batch []Message) []Message {
	sorted := append([]Message(nil), batch...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if !sorted[i].Time.Equal(sorted[j].Time) {
			return sorted[i].Time.Before(sorted[j].Time)
		}
		return sorted[i].Seq < sorted[j].Seq
	})
	return sorted
}

// runIncremental feeds a sorted batch through one incremental grouper and
// returns the full closed-group sequence (per-step plus drain) and stats.
func runIncremental(t *testing.T, cfg Config, sorted []Message) ([][][]int, IncStats) {
	t.Helper()
	inc := newIncremental(t, cfg)
	out := make([][][]int, 0, len(sorted)+1)
	for i := range sorted {
		cgs, err := inc.Observe(sorted[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, closedToGroups(cgs))
	}
	out = append(out, closedToGroups(inc.Drain()))
	return out, inc.Stats()
}

// TestIncrementalIndexedMatchesLinear is the streaming differential: over
// random and storm-shaped batches, LinearScan on and off must produce the
// same closed groups at every step, the same drain, and the same stats —
// except the candidates-scanned counters, where the index must never
// examine more than the linear scan.
func TestIncrementalIndexedMatchesLinear(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(*rand.Rand, int) []Message
		n    int
	}{
		{"random", randomBatch, 120},
		{"storm", stormBatch, 160},
	} {
		for _, seed := range []int64{1, 17, 99} {
			batch := sortBatch(tc.gen(rand.New(rand.NewSource(seed)), tc.n))
			linOut, linStats := runIncremental(t, Config{LinearScan: true}, batch)
			idxOut, idxStats := runIncremental(t, Config{}, batch)
			if !reflect.DeepEqual(idxOut, linOut) {
				t.Fatalf("%s seed %d: closed groups diverge", tc.name, seed)
			}
			if idxStats.RulePairs != linStats.RulePairs {
				t.Fatalf("%s seed %d: rule pairs diverge: indexed %d linear %d",
					tc.name, seed, idxStats.RulePairs, linStats.RulePairs)
			}
			if idxStats.RuleCandidates > linStats.RuleCandidates {
				t.Fatalf("%s seed %d: index scanned more rule candidates (%d) than linear (%d)",
					tc.name, seed, idxStats.RuleCandidates, linStats.RuleCandidates)
			}
			if idxStats.CrossCandidates > linStats.CrossCandidates {
				t.Fatalf("%s seed %d: index scanned more cross candidates (%d) than linear (%d)",
					tc.name, seed, idxStats.CrossCandidates, linStats.CrossCandidates)
			}
			// Everything except the scan counters must be identical.
			idxStats.RuleCandidates, idxStats.CrossCandidates = 0, 0
			linStats.RuleCandidates, linStats.CrossCandidates = 0, 0
			if idxStats != linStats {
				t.Fatalf("%s seed %d: stats diverge\nindexed %+v\nlinear  %+v", tc.name, seed, idxStats, linStats)
			}
		}
	}
}

// TestBatchGroupIndexedMatchesLinear is the batch differential: the
// Grouper's partition and ActiveRules tally must not depend on LinearScan.
func TestBatchGroupIndexedMatchesLinear(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	for _, gen := range []func(*rand.Rand, int) []Message{randomBatch, stormBatch} {
		for _, seed := range []int64{3, 21, 77} {
			batch := gen(rand.New(rand.NewSource(seed)), 150)
			gl := newGrouper(t, dict, rb, Config{LinearScan: true})
			gi := newGrouper(t, dict, rb, Config{})
			rl, err := gl.Group(batch)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := gi.Group(batch)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ri.Groups, rl.Groups) || !reflect.DeepEqual(ri.GroupOf, rl.GroupOf) {
				t.Fatalf("seed %d: partitions diverge", seed)
			}
			if !reflect.DeepEqual(ri.ActiveRules, rl.ActiveRules) {
				t.Fatalf("seed %d: ActiveRules diverge\nindexed %v\nlinear  %v", seed, ri.ActiveRules, rl.ActiveRules)
			}
		}
	}
}

// TestBatchRulePassDeterministic pins the sorted-router iteration: the
// same batch grouped repeatedly yields the same partition and the same
// ActiveRules tally every run (the rule pass used to walk a Go map).
func TestBatchRulePassDeterministic(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	batch := stormBatch(rand.New(rand.NewSource(5)), 200)
	var first *Result
	for run := 0; run < 6; run++ {
		g := newGrouper(t, dict, rb, Config{})
		res, err := g.Group(batch)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(res.Groups, first.Groups) {
			t.Fatalf("run %d: partition differs from run 0", run)
		}
		if !reflect.DeepEqual(res.ActiveRules, first.ActiveRules) {
			t.Fatalf("run %d: ActiveRules differ from run 0\ngot  %v\nwant %v", run, res.ActiveRules, first.ActiveRules)
		}
	}
}

// TestActiveRulesReturnsCopy pins the mutation-safety fix: the tally map
// Incremental.ActiveRules returns is a snapshot, so corrupting it must not
// leak into the grouper's internal state.
func TestActiveRulesReturnsCopy(t *testing.T) {
	batch := sortBatch(stormBatch(rand.New(rand.NewSource(9)), 120))
	inc := newIncremental(t, Config{})
	for i := range batch {
		if _, err := inc.Observe(batch[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := inc.ActiveRules()
	if len(before) == 0 {
		t.Fatal("storm batch produced no rule merges; the copy test needs a live tally")
	}
	for k := range before {
		before[k] = -999
	}
	before[rules.PairKey{X: 1234, Y: 5678}] = 1
	after := inc.ActiveRules()
	for k, v := range after {
		if v <= 0 {
			t.Fatalf("mutating the returned map corrupted internal tally: %v = %d", k, v)
		}
	}
	if _, ok := after[rules.PairKey{X: 1234, Y: 5678}]; ok {
		t.Fatal("inserted key leaked into internal tally")
	}
}

func benchIncremental(b *testing.B, cfg Config) *Incremental {
	b.Helper()
	if cfg.Temporal == (temporal.Params{}) {
		cfg.Temporal = temporal.DefaultParams()
	}
	inc, err := NewIncremental(benchToyDict(b), flapRuleBase(), IncrementalConfig{Config: cfg})
	if err != nil {
		b.Fatal(err)
	}
	return inc
}

func benchToyDict(b *testing.B) *locdict.Dictionary {
	b.Helper()
	r1 := &netconf.Config{
		Hostname: "r1", Vendor: syslogmsg.VendorV1,
		Interfaces: []netconf.Interface{
			{Name: "Serial1/0.10/10:0", IP: "10.0.0.1", PrefixLen: 30},
		},
	}
	r2 := &netconf.Config{
		Hostname: "r2", Vendor: syslogmsg.VendorV1,
		Interfaces: []netconf.Interface{
			{Name: "Serial1/0.20/20:0", IP: "10.0.0.2", PrefixLen: 30},
		},
	}
	d, err := locdict.Build([]*netconf.Config{r1, r2})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// benchRuleStorm drives a storm batch through the incremental grouper;
// the rule and cross windows stay near-full throughout, so the delta
// between the Indexed and Linear variants is the candidate-scan cost.
func benchRuleStorm(b *testing.B, cfg Config) {
	batch := sortBatch(stormBatch(rand.New(rand.NewSource(11)), 2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := benchIncremental(b, cfg)
		for j := range batch {
			if _, err := inc.Observe(batch[j]); err != nil {
				b.Fatal(err)
			}
		}
		inc.Drain()
	}
	b.StopTimer()
	inc := benchIncremental(b, cfg)
	for j := range batch {
		if _, err := inc.Observe(batch[j]); err != nil {
			b.Fatal(err)
		}
	}
	st := inc.Stats()
	b.ReportMetric(float64(st.RuleCandidates), "rule-cands/run")
	b.ReportMetric(float64(st.CrossCandidates), "cross-cands/run")
}

func BenchmarkRuleStepIndexed(b *testing.B) { benchRuleStorm(b, Config{}) }
func BenchmarkRuleStepLinear(b *testing.B)  { benchRuleStorm(b, Config{LinearScan: true}) }

// benchCross drives only the cross pass (temporal and rule disabled via a
// degenerate rule base and OnlyTemporal off): every message lands in the
// global cross ring.
func benchCross(b *testing.B, cfg Config) {
	batch := sortBatch(stormBatch(rand.New(rand.NewSource(13)), 2000))
	b.ReportAllocs()
	b.ResetTimer()
	if cfg.Temporal == (temporal.Params{}) {
		cfg.Temporal = temporal.DefaultParams()
	}
	for i := 0; i < b.N; i++ {
		inc, err := NewIncremental(benchToyDict(b), nil, IncrementalConfig{Config: cfg})
		if err != nil {
			b.Fatal(err)
		}
		for j := range batch {
			if _, err := inc.Observe(batch[j]); err != nil {
				b.Fatal(err)
			}
		}
		inc.Drain()
	}
}

func BenchmarkCrossStepIndexed(b *testing.B) { benchCross(b, Config{}) }
func BenchmarkCrossStepLinear(b *testing.B)  { benchCross(b, Config{LinearScan: true}) }
