// Provisional (two-tier) emission for the incremental grouper (PR 9).
//
// When IncrementalConfig.ProvisionalHorizon is positive, the Merger gives
// every group a stable identity at birth and publishes GroupUpdates on top
// of the final ClosedGroup stream:
//
//   - provisional (revision 0): the group outlived the provisional horizon
//     without closing — its first publication;
//   - revised: a published group gained members (growth or a merge it won)
//     and outlived the horizon again since the change;
//   - superseded: a merge absorbed a published group into another; the
//     loser is retired pointing at the winner's identity.
//
// Closure itself stays untouched: ClosedGroup gains the identity and the
// final revision number, and a group that closes before ever publishing is
// published (revision 0) in the same Apply, so every final event has a
// provisional record — the engine-level accounting invariant
// (provisional emitted == finalized + superseded) holds exactly.
//
// Scheduling is a FIFO of due entries rather than a heap: every entry is
// armed at due = watermark + horizon and the watermark never regresses, so
// appends arrive in nondecreasing due order and popping the front is the
// earliest-due scan. An entry pins one member Pending (with a reference, so
// the pool cannot recycle it) and remembers the group identity it armed
// for; at pop time the member's group pointer leads to the live root, and a
// mismatched identity or a closed flag means the group merged away or
// closed in the meantime — the entry is stale and skipped. Identities are
// never reused, so the check is exact even though pooled records recycle
// their inline group backing.
//
// Everything here runs on the Merger's goroutine (the merge stage of the
// sharded engine replays the serial operation sequence), so the update
// stream is byte-identical at any worker count — the same argument that
// makes the final stream deterministic.
package grouping

import (
	"cmp"
	"slices"
	"time"
)

// UpdateKind distinguishes the provisional-tier publications.
type UpdateKind uint8

const (
	// UpdateProvisional is a group's first publication (revision 0).
	UpdateProvisional UpdateKind = iota
	// UpdateRevised republishes a grown group under the same identity.
	UpdateRevised
	// UpdateSuperseded retires a published identity absorbed by a merge.
	UpdateSuperseded
)

// GroupUpdate is one provisional-tier publication. Members is a fresh copy
// in ascending Seq order (the order event scoring depends on), empty for
// UpdateSuperseded; Last is the group's newest member time at publication.
type GroupUpdate struct {
	ID           uint64
	Revision     int
	Kind         UpdateKind
	SupersededBy uint64 // set only for UpdateSuperseded
	Members      []Message
	Last         time.Time
}

// provEntry is one armed due-time: when the watermark passes due, the group
// reached through p (alive thanks to the entry's reference) publishes —
// unless its identity no longer matches gid, which means the entry went
// stale.
type provEntry struct {
	p   *Pending
	gid uint64
	due time.Time
}

// provQueue is a FIFO of provEntry in nondecreasing due order, amortized
// O(1) pop via occasional compaction (same scheme as tplBucket).
type provQueue struct {
	buf  []provEntry
	head int
}

func (q *provQueue) push(e provEntry) { q.buf = append(q.buf, e) }

func (q *provQueue) empty() bool { return q.head >= len(q.buf) }

func (q *provQueue) front() *provEntry { return &q.buf[q.head] }

func (q *provQueue) pop() provEntry {
	e := q.buf[q.head]
	q.buf[q.head] = provEntry{}
	q.head++
	if q.head >= 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return e
}

// live returns the queued entries front first (capture only).
func (q *provQueue) live() []provEntry { return q.buf[q.head:] }

// len returns the number of queued entries.
func (q *provQueue) len() int { return len(q.buf) - q.head }

// arm schedules g to publish once the watermark passes now + horizon. The
// entry holds a reference to one member; any member resolves to the live
// root through its group pointer.
func (mg *Merger) armProv(g *incGroup) {
	p := g.members[0]
	p.ref() // due-queue reference, released at pop (or Drain)
	mg.provQueue.push(provEntry{p: p, gid: g.id, due: mg.watermark.Add(mg.provHorizon)})
}

// armDirty marks a published group changed and schedules its revision.
// At most one dirty arm is outstanding per group: the flag only transitions
// clean->dirty here and dirty->clean at pop.
func (mg *Merger) armDirty(g *incGroup) {
	if g.dirty {
		return
	}
	g.dirty = true
	mg.armProv(g)
}

// publish snapshots g's membership into the update buffer. For
// UpdateProvisional it stamps the group published; for UpdateRevised the
// caller has already advanced g.rev and cleared the dirty flag. The member
// copy is freshly allocated — provisional mode trades a few allocations per
// publication for timeliness; the final-stream path stays allocation-free.
func (mg *Merger) publish(g *incGroup, kind UpdateKind) {
	if kind == UpdateProvisional {
		g.pub = true
		g.dirty = false
	}
	ms := make([]Message, 0, len(g.members))
	for _, m := range g.members {
		ms = append(ms, m.msg)
	}
	slices.SortFunc(ms, func(a, b Message) int { return cmp.Compare(a.Seq, b.Seq) })
	mg.updBuf = append(mg.updBuf, GroupUpdate{
		ID: g.id, Revision: g.rev, Kind: kind, Members: ms, Last: g.last,
	})
}

// popDue publishes every group whose due time the watermark has passed.
// Runs inside Apply after the merge steps and before closure, so a revision
// always precedes the final record it anticipates.
func (mg *Merger) popDue() {
	for !mg.provQueue.empty() && mg.watermark.After(mg.provQueue.front().due) {
		e := mg.provQueue.pop()
		g := e.p.g
		e.p.unref()
		if g == nil || g.id != e.gid || g.closed {
			continue // merged away, closed, or the record was recycled
		}
		if !g.pub {
			mg.publish(g, UpdateProvisional)
		} else if g.dirty {
			g.rev++
			g.dirty = false
			mg.publish(g, UpdateRevised)
		}
	}
}

// noteMerge threads identity semantics through a union-find merge: ga won
// (it keeps its identity and absorbed gb's members already), gb lost. A
// published loser is retired with a superseded record — announcing the
// winner first if it was never published, so consumers never see a
// reference to an unknown identity. A published winner whose membership
// just changed re-arms for a revision.
func (mg *Merger) noteMerge(ga, gb *incGroup) {
	if gb.pub {
		wasPub := ga.pub
		if !wasPub {
			mg.publish(ga, UpdateProvisional) // post-merge snapshot includes gb's members
		}
		gb.rev++
		mg.updBuf = append(mg.updBuf, GroupUpdate{
			ID: gb.id, Revision: gb.rev, Kind: UpdateSuperseded,
			SupersededBy: ga.id, Last: gb.last,
		})
		if wasPub {
			mg.armDirty(ga)
		}
		return
	}
	if ga.pub {
		mg.armDirty(ga)
	}
}

// TakeUpdates returns the provisional-tier updates generated by the last
// Apply or Drain, oldest first. Like the closed-group slice, the returned
// slice is scratch valid until the next Apply or Drain; the Members copies
// inside are the caller's to keep. Always empty when the provisional
// horizon is off.
func (mg *Merger) TakeUpdates() []GroupUpdate { return mg.updBuf }

// TakeUpdates is the incremental grouper's view of Merger.TakeUpdates.
func (inc *Incremental) TakeUpdates() []GroupUpdate { return inc.merge.TakeUpdates() }

// drainProvQueue discards every armed entry (releasing its reference);
// Drain closes all groups, so nothing left in the queue could ever fire.
func (mg *Merger) drainProvQueue() {
	for !mg.provQueue.empty() {
		mg.provQueue.pop().p.unref()
	}
}
