package grouping

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// shardedFixture runs a 3-shard split over a randomized sorted batch and
// returns the fed halves plus the remaining tail.
func shardedFixture(t *testing.T, seed int64, n, cut int) (*Shardable, []*RouterLocal, *Merger, []Message) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batch := randomBatch(rng, n)
	sort.SliceStable(batch, func(i, j int) bool {
		if !batch[i].Time.Equal(batch[j].Time) {
			return batch[i].Time.Before(batch[j].Time)
		}
		return batch[i].Seq < batch[j].Seq
	})
	s, err := NewShardable(toyDict(t), flapRuleBase(), ckptCfg())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 3
	locals := make([]*RouterLocal, workers)
	for i := range locals {
		locals[i] = s.NewLocal(0)
	}
	mg := s.NewMerger()
	var js Joins
	for i := 0; i < cut; i++ {
		p := NewPending(batch[i])
		if err := locals[partShardFor(p.msg.Router, workers)].Step(p, &js); err != nil {
			t.Fatal(err)
		}
		if _, err := mg.Apply(p, &js); err != nil {
			t.Fatal(err)
		}
	}
	return s, locals, mg, batch[cut:]
}

func partShardFor(r string, workers int) int {
	h := 0
	for i := 0; i < len(r); i++ {
		h = h*31 + int(r[i])
	}
	return ((h % workers) + workers) % workers
}

// TestLocalPartRoundTrip pins the single-shard snapshot: capture → JSON →
// restore → capture is byte-stable, and the restored local produces the
// same join decisions as the uninterrupted one on the remaining tail.
func TestLocalPartRoundTrip(t *testing.T) {
	s, locals, _, tail := shardedFixture(t, 41, 90, 45)
	for li, rl := range locals {
		st := CaptureLocal(rl)
		raw1, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back LocalPartState
		if err := json.Unmarshal(raw1, &back); err != nil {
			t.Fatal(err)
		}
		restored, err := s.RestoreLocal(back, 0)
		if err != nil {
			t.Fatalf("shard %d: restore: %v", li, err)
		}
		raw2, err := json.Marshal(CaptureLocal(restored))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw1, raw2) {
			t.Fatalf("shard %d: part not byte-stable across restore:\n%s\nvs\n%s", li, raw1, raw2)
		}

		// Continuation: identical decisions (by predecessor Seq) on the tail.
		var jsA, jsB Joins
		for _, m := range tail {
			if partShardFor(m.Router, len(locals)) != li {
				continue
			}
			pa, pb := NewPending(m), NewPending(m)
			if err := rl.Step(pa, &jsA); err != nil {
				t.Fatal(err)
			}
			if err := restored.Step(pb, &jsB); err != nil {
				t.Fatal(err)
			}
			if !sameJoinSeqs(&jsA, &jsB) {
				t.Fatalf("shard %d seq %d: decisions diverge after restore", li, m.Seq)
			}
		}
	}
}

func sameJoinSeqs(a, b *Joins) bool {
	if (a.Temporal == nil) != (b.Temporal == nil) {
		return false
	}
	if a.Temporal != nil && a.Temporal.msg.Seq != b.Temporal.msg.Seq {
		return false
	}
	if len(a.Rules) != len(b.Rules) {
		return false
	}
	for i := range a.Rules {
		if a.Rules[i].msg.Seq != b.Rules[i].msg.Seq {
			return false
		}
	}
	return true
}

// TestCaptureRemotePartsMatchesCaptureParts is the stitching guarantee the
// cluster checkpoint path rests on: merging per-shard parts with the local
// merger must reproduce the in-process CaptureParts snapshot byte for byte.
func TestCaptureRemotePartsMatchesCaptureParts(t *testing.T) {
	_, locals, mg, _ := shardedFixture(t, 97, 110, 80)
	want, err := json.Marshal(CaptureParts(locals, mg))
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]LocalPartState, len(locals))
	for i, rl := range locals {
		parts[i] = CaptureLocal(rl)
	}
	st, err := CaptureRemoteParts(mg, parts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote capture diverges from in-process capture:\n%s\nvs\n%s", got, want)
	}
}

// TestCaptureRemotePartsRejectsCorruptIndexes: a part referencing outside
// its own pending table must error, not panic.
func TestCaptureRemotePartsRejectsCorruptIndexes(t *testing.T) {
	_, locals, mg, _ := shardedFixture(t, 13, 60, 40)
	parts := make([]LocalPartState, len(locals))
	for i, rl := range locals {
		parts[i] = CaptureLocal(rl)
	}
	found := false
	for i := range parts {
		if len(parts[i].Local.Models) > 0 {
			parts[i].Local.Models[0].Last = len(parts[i].Pendings) + 5
			found = true
			break
		}
	}
	if !found {
		t.Skip("no models in fixture")
	}
	if _, err := CaptureRemoteParts(mg, parts); err == nil {
		t.Error("out-of-range part index accepted")
	}
}
