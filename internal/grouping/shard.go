// The sharding boundary of the incremental grouper.
//
// Every join decision of the first two passes depends only on one router's
// message stream: temporal streams are keyed by (template, location) and a
// location names its router (locdict.Location.Key starts with the router),
// and the rule window is explicitly per router. Only the cross-router pass
// and the group partition itself need a global view. The incremental
// grouper is therefore split into:
//
//   - RouterLocal: temporal EWMA models and per-router rule windows. Given
//     one router's messages in time order it produces, per message, the
//     set of join predecessors (Joins) — pure decisions, no group state.
//   - Merger: groups, the closure list, the cross-router ring, and the
//     merge tallies. Given every message in global time order together
//     with its Joins, it performs exactly the operation sequence the
//     pre-split Incremental performed: singleton, temporal merge, rule
//     merges in scan order, cross scan, watermark closure.
//
// Because a RouterLocal never reads group state and a Merger never makes a
// temporal or rule decision, N RouterLocals can run on N goroutines — each
// owning a disjoint subset of routers — feeding one Merger, and the output
// (partition, closure order, everything) is byte-identical to the serial
// composition. A Pending is the in-flight message object shared between the
// two halves: the local half reads only its immutable message, the merger
// owns its group fields, so handing one across goroutines (with the usual
// channel happens-before edges) is race-free.
//
// One approximation survives sharding: the MaxStreams LRU bound on
// temporal models is enforced per RouterLocal, so a sharded engine under
// model-table pressure can evict different streams than the serial engine
// (the serial LRU order interleaves routers). Outputs are identical
// whenever the table stays within bounds — eviction is already a counted,
// observable approximation (see the package comment in incremental.go).
package grouping

import (
	"cmp"
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/temporal"
)

// Pending is one in-flight message: created in global arrival order,
// examined by its router's RouterLocal, grouped by the Merger. The message
// is immutable after creation; the group fields are owned by the Merger.
// refs counts the holders listed in pool.go; a pooled record (owner != nil)
// recycles when the count hits zero.
type Pending struct {
	msg Message

	refs  atomic.Int32
	owner *PendingPool // nil: GC-managed (NewPending, checkpoint restore)

	g   *incGroup // current group (Merger-owned)
	grp incGroup  // inline singleton group backing (Merger-owned)
}

// NewPending wraps a message for the shard pipeline. One allocation covers
// the member and its singleton group. The record is GC-managed: it never
// enters a pool, so tests and restore paths may hold it freely.
func NewPending(m Message) *Pending {
	p := &Pending{}
	p.msg = m
	p.refs.Store(1)
	return p
}

// Msg exposes the wrapped message (read-only).
func (p *Pending) Msg() *Message { return &p.msg }

// Joins are one message's router-local join decisions, in the order the
// serial grouper would have applied them.
type Joins struct {
	// Temporal is the same-stream predecessor to join, nil when the EWMA
	// model rejected the interarrival (or the stream has no predecessor).
	Temporal *Pending
	// Rules are the rule-window predecessors whose pair predicate matched,
	// in window scan order. The slice is reused across Step calls.
	Rules []*Pending
}

// Reset clears the joins for reuse.
func (j *Joins) Reset() {
	j.Temporal = nil
	j.Rules = j.Rules[:0]
}

// inlineMembers is the per-Pending inline group capacity: member lists with
// capacity at or below this are inline backings owned by their Pending,
// larger ones are pool-managed heap slices (see Merger.putMemberBuf).
const inlineMembers = 2

// incGroup is one open group on the closure list.
type incGroup struct {
	members    []*Pending
	inline     [inlineMembers]*Pending // backing array for tiny groups, the common case
	last       time.Time               // max member time
	prev, next *incGroup               // closure list, ascending last
	closed     bool

	// Two-tier emission state (PR 9). id is the stable event identity,
	// assigned at birth, never reused — the staleness check of the
	// provisional due queue depends on that. rev counts publications; pub
	// and dirty track whether the group has been announced and whether its
	// membership changed since (see provisional.go).
	id    uint64
	rev   int
	pub   bool
	dirty bool
}

// modelKey identifies a temporal stream. The location is kept as the
// struct, not its Key() string: building the string key allocated once per
// message on the hot path, and Location is comparable as-is. Checkpoints
// still serialize the canonical Key() string (see checkpoint.go), so the
// snapshot format is unchanged.
type modelKey struct {
	template int
	loc      locdict.Location
}

// model is one live temporal stream: its EWMA state, its previous message,
// and its position on the least-recently-observed eviction list. router is
// the stream's owner, carried so checkpoint restore can reshard models
// across a different worker count (the location key embeds the router, but
// parsing it back out would couple restore to the key format).
type model struct {
	key        modelKey
	router     string
	tg         *temporal.Grouper
	last       *Pending
	prev, next *model
}

// memberRing is a bounded FIFO of open-window members backed by a
// power-of-two ring buffer: it grows to the configured scan bound once and
// is then reused forever, so steady-state window maintenance allocates
// nothing.
//
// Alongside the ring it maintains a per-template bucket index: each bucket
// is the FIFO of *absolute* entry indexes (pops + ring offset) of the live
// entries carrying that template, ascending. The ring stays authoritative
// for expiry and the MaxScan cap; the index only accelerates candidate
// lookup. Two invariants keep it exact with O(1) maintenance:
//
//   - push appends the new entry's absolute index to its template's bucket,
//     so each bucket is ascending (entries arrive in ring order);
//   - the ring is a global FIFO, so the entry popFront removes is also the
//     front of its template's bucket — popping that bucket's head keeps
//     every bucket free of stale references, with nothing to invalidate
//     lazily and no stale-entry checks on the read path.
//
// Absolute indexes (monotone, never reused) rather than ring offsets make
// bucket entries immune to the head moving; atAbs converts back with one
// subtraction.
type memberRing struct {
	buf  []*Pending
	head int
	n    int

	pops    uint64 // total popFront count == absolute index of the front entry
	buckets map[int]*tplBucket
}

// tplBucket is one template's FIFO of absolute indexes: live view
// abs[head:], amortized-O(1) pop via occasional compaction.
type tplBucket struct {
	abs  []uint64
	head int
}

func (b *tplBucket) push(a uint64) { b.abs = append(b.abs, a) }

func (b *tplBucket) pop() {
	b.head++
	if b.head >= 64 && b.head*2 >= len(b.abs) {
		n := copy(b.abs, b.abs[b.head:])
		b.abs = b.abs[:n]
		b.head = 0
	}
}

func (b *tplBucket) live() []uint64 { return b.abs[b.head:] }

func (r *memberRing) push(m *Pending) {
	m.ref() // ring slot reference, released by popFront
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
	if r.buckets == nil {
		r.buckets = make(map[int]*tplBucket)
	}
	b := r.buckets[m.msg.Template]
	if b == nil {
		b = &tplBucket{}
		r.buckets[m.msg.Template] = b
	}
	b.push(r.pops + uint64(r.n-1))
}

func (r *memberRing) grow() {
	size := 8
	if len(r.buf) > 0 {
		size = len(r.buf) * 2
	}
	nb := make([]*Pending, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}

func (r *memberRing) at(i int) *Pending { return r.buf[(r.head+i)&(len(r.buf)-1)] }
func (r *memberRing) front() *Pending   { return r.at(0) }

// atAbs resolves a bucket's absolute index to its entry.
func (r *memberRing) atAbs(a uint64) *Pending { return r.at(int(a - r.pops)) }

func (r *memberRing) popFront() {
	front := r.buf[r.head]
	t := front.msg.Template
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	r.buckets[t].pop() // its front is exactly this entry (global FIFO)
	r.pops++
	front.unref()
}

// popAll empties the ring (releasing every slot reference) while keeping
// its buffer and bucket map for reuse.
func (r *memberRing) popAll() {
	for r.n > 0 {
		r.popFront()
	}
}

// Shardable is the validated, immutable knowledge shared by every half of
// a (possibly sharded) incremental grouper: the batch Grouper (predicates
// and windows), the closure horizon, and the state bound. Build the halves
// from one Shardable so they agree on configuration.
type Shardable struct {
	g           *Grouper
	maxStreams  int
	horizon     time.Duration
	provHorizon time.Duration
	pool        *PendingPool
}

// NewShardable validates the grouping knowledge and configuration. dict
// may not be nil; rb may be nil.
func NewShardable(dict *locdict.Dictionary, rb *rules.RuleBase, cfg IncrementalConfig) (*Shardable, error) {
	g, err := New(dict, rb, cfg.Config)
	if err != nil {
		return nil, err
	}
	maxStreams := cfg.MaxStreams
	if maxStreams <= 0 {
		maxStreams = DefaultMaxStreams
	}
	horizon := g.cfg.Temporal.Smax
	if g.cfg.useRules() && g.cfg.RuleWindow > horizon {
		horizon = g.cfg.RuleWindow
	}
	if g.cfg.useCross() && g.cfg.CrossWindow > horizon {
		horizon = g.cfg.CrossWindow
	}
	provHorizon := cfg.ProvisionalHorizon
	if provHorizon < 0 {
		provHorizon = 0
	}
	return &Shardable{g: g, maxStreams: maxStreams, horizon: horizon, provHorizon: provHorizon, pool: newPendingPool()}, nil
}

// Pool is the engine-scoped Pending pool shared by every half built from
// this Shardable.
func (s *Shardable) Pool() *PendingPool { return s.pool }

// Horizon is the closure bound: a group closes once the watermark passes
// its newest member by more than this.
func (s *Shardable) Horizon() time.Duration { return s.horizon }

// MaxStreams is the validated temporal-model bound, for callers splitting
// it across shards.
func (s *Shardable) MaxStreams() int { return s.maxStreams }

// NewLocal builds one router-local half. maxStreams caps its temporal
// model table (<= 0: the Shardable's bound). A sharded engine that splits
// routers across N locals should split the bound as well to keep total
// state bounded.
func (s *Shardable) NewLocal(maxStreams int) *RouterLocal {
	if maxStreams <= 0 {
		maxStreams = s.maxStreams
	}
	return &RouterLocal{
		g:          s.g,
		maxStreams: maxStreams,
		models:     make(map[modelKey]*model),
		routerWin:  make(map[string]*memberRing),
	}
}

// NewMerger builds the global half.
func (s *Shardable) NewMerger() *Merger {
	return &Merger{
		g:           s.g,
		horizon:     s.horizon,
		provHorizon: s.provHorizon,
		nextGroupID: 1, // 0 means "unassigned" in snapshots
		active:      make(map[rules.PairKey]int),
	}
}

// LocalMetrics are a RouterLocal's optional observability handles
// (nil-safe).
type LocalMetrics struct {
	Streams         *obs.Gauge   // live temporal models
	StreamEvictions *obs.Counter // models evicted by the MaxStreams bound
	RuleCandidates  *obs.Counter // rule-window candidates examined
	RulePairs       *obs.Counter // rule-window candidates that matched
}

// LocalStats snapshots one RouterLocal.
type LocalStats struct {
	Streams   int
	Evictions int
	// RuleCandidates counts window entries the rule pass examined
	// (cumulative); RulePairs counts those whose pair predicate matched.
	// With the template index off (Config.LinearScan) candidates equal the
	// whole window per arrival — the ratio between the two modes is the
	// index's win.
	RuleCandidates uint64
	RulePairs      uint64
}

// RouterLocal is the router-local half of the incremental grouper:
// temporal EWMA models and per-router rule windows for a subset of
// routers. Feed it each of its routers' messages in nondecreasing time
// order; it emits join decisions and keeps no group state. Not safe for
// concurrent use (one RouterLocal per shard goroutine).
type RouterLocal struct {
	g          *Grouper
	maxStreams int

	models       map[modelKey]*model
	mHead, mTail *model

	routerWin map[string]*memberRing

	started        bool
	watermark      time.Time
	evictions      int
	ruleCandidates uint64
	rulePairs      uint64
	scratch        []uint64 // candidate merge buffer, reused across steps
	met            LocalMetrics

	// Published high-water marks for PublishMetrics: the scan counters are
	// shared atomic handles across shards, so each local adds deltas in
	// batches instead of per message.
	pubCandidates uint64
	pubPairs      uint64
}

// SetMetrics installs observability handles.
func (rl *RouterLocal) SetMetrics(m LocalMetrics) { rl.met = m }

// Watermark is the maximum message time this local half has stepped.
func (rl *RouterLocal) Watermark() time.Time { return rl.watermark }

// Stats snapshots the local state.
func (rl *RouterLocal) Stats() LocalStats {
	return LocalStats{
		Streams:        len(rl.models),
		Evictions:      rl.evictions,
		RuleCandidates: rl.ruleCandidates,
		RulePairs:      rl.rulePairs,
	}
}

// Step runs the temporal and rule passes for p, writing the join
// predecessors into js (which is reset first; its backing storage is
// reused). Messages must arrive in nondecreasing time order. Step updates
// only the local tallies; call PublishMetrics to flush them to the
// installed handles (the serial grouper publishes per Observe, the sharded
// engine once per batch — per-message atomic adds on handles shared across
// shards were measurable contention).
func (rl *RouterLocal) Step(p *Pending, js *Joins) error {
	js.Reset()
	rl.started = true
	rl.watermark = p.msg.Time
	if err := rl.temporalStep(p, js); err != nil {
		return err
	}
	if rl.g.cfg.useRules() {
		rl.ruleStep(p, js)
	}
	return nil
}

// PublishMetrics flushes the stream gauge and the scan-counter deltas
// accumulated since the last publish to the installed handles.
func (rl *RouterLocal) PublishMetrics() {
	rl.met.Streams.Set(float64(len(rl.models)))
	if d := rl.ruleCandidates - rl.pubCandidates; d > 0 {
		rl.met.RuleCandidates.Add(d)
		rl.pubCandidates = rl.ruleCandidates
	}
	if d := rl.rulePairs - rl.pubPairs; d > 0 {
		rl.met.RulePairs.Add(d)
		rl.pubPairs = rl.rulePairs
	}
}

// DrainWindows clears the rule windows and per-stream predecessors so no
// later message can join anything observed before the drain. The EWMA
// models persist (interarrival knowledge survives a drain), and so do the
// ring buffers and bucket maps — a drain empties them, releasing every
// slot reference, without reallocating.
func (rl *RouterLocal) DrainWindows() {
	for _, rw := range rl.routerWin {
		rw.popAll()
	}
	for md := rl.mHead; md != nil; md = md.next {
		if md.last != nil {
			md.last.unref()
			md.last = nil
		}
	}
}

// temporalStep runs the stream's EWMA model on the new arrival and records
// a join to the stream's previous message when the model accepts the
// interarrival.
func (rl *RouterLocal) temporalStep(p *Pending, js *Joins) error {
	key := modelKey{p.msg.Template, p.msg.Loc}
	md := rl.models[key]
	if md == nil {
		tg, err := temporal.NewGrouper(rl.g.cfg.Temporal)
		if err != nil {
			return err
		}
		md = &model{key: key, router: p.msg.Router, tg: tg}
		rl.models[key] = md
		rl.pushModel(md)
		rl.evictModels()
	} else {
		rl.touchModel(md)
	}
	join := md.tg.Observe(p.msg.Time)
	if join && md.last != nil {
		// The join decision needs no reference of its own: the predecessor
		// still holds its group (or in-flight pipeline) reference, and its
		// group cannot close before this decision is applied — the accepted
		// interarrival is < Smax <= horizon (see pool.go).
		js.Temporal = md.last
	}
	p.ref() // model last-message reference, released on overwrite/evict/drain
	if md.last != nil {
		md.last.unref()
	}
	md.last = p
	return nil
}

// ruleStep examines the new arrival against its router's retained window,
// exactly the pair set of the batch pass: predecessors within W whose
// position distance is at most MaxScan.
//
// The default path consults only the window's buckets for the arrival's
// rule partners — a candidate can match only when its template pairs with
// the arrival's in the rule base — then visits the surviving candidates in
// ascending ring order, so the join sequence (and with it every
// order-dependent tally downstream) is byte-identical to the linear scan.
// Config.LinearScan forces the original full-window scan, retained as the
// differential reference.
func (rl *RouterLocal) ruleStep(p *Pending, js *Joins) {
	rw := rl.routerWin[p.msg.Router]
	if rw == nil {
		rw = &memberRing{}
		rl.routerWin[p.msg.Router] = rw
	}
	// Time is nondecreasing, so a front entry out of window for this
	// message is out of window for every later one: expire before scanning.
	for rw.n > 0 && p.msg.Time.After(rw.front().msg.Time.Add(rl.g.cfg.RuleWindow)) {
		rw.popFront()
	}
	var cand, matched uint64
	if rl.g.cfg.LinearScan {
		for i := 0; i < rw.n; i++ {
			mi := rw.at(i)
			cand++
			if rl.g.ruleMatch(&mi.msg, &p.msg) {
				js.Rules = append(js.Rules, mi)
				matched++
			}
		}
	} else {
		rl.scratch = rl.scratch[:0]
		for _, q := range rl.g.rb.Partners(p.msg.Template) {
			if q == p.msg.Template {
				continue // ruleMatch rejects same-template pairs
			}
			if b := rw.buckets[q]; b != nil {
				rl.scratch = append(rl.scratch, b.live()...)
			}
		}
		if len(rl.scratch) > 1 {
			slices.Sort(rl.scratch) // restore ascending ring (= scan) order
		}
		for _, a := range rl.scratch {
			mi := rw.atAbs(a)
			cand++
			if rl.g.ruleMatch(&mi.msg, &p.msg) {
				js.Rules = append(js.Rules, mi)
				matched++
			}
		}
	}
	rl.ruleCandidates += cand
	rl.rulePairs += matched
	rw.push(p)
	if rw.n > rl.g.cfg.MaxScan {
		rw.popFront()
	}
}

// Model eviction list maintenance (doubly linked, least recently observed
// at the head).

func (rl *RouterLocal) pushModel(md *model) {
	md.prev = rl.mTail
	md.next = nil
	if rl.mTail != nil {
		rl.mTail.next = md
	} else {
		rl.mHead = md
	}
	rl.mTail = md
}

func (rl *RouterLocal) unlinkModel(md *model) {
	if md.prev != nil {
		md.prev.next = md.next
	} else {
		rl.mHead = md.next
	}
	if md.next != nil {
		md.next.prev = md.prev
	} else {
		rl.mTail = md.prev
	}
	md.prev, md.next = nil, nil
}

func (rl *RouterLocal) touchModel(md *model) {
	if rl.mTail == md {
		return
	}
	rl.unlinkModel(md)
	rl.pushModel(md)
}

func (rl *RouterLocal) evictModels() {
	for len(rl.models) > rl.maxStreams {
		old := rl.mHead
		rl.unlinkModel(old)
		delete(rl.models, old.key)
		if old.last != nil {
			old.last.unref()
			old.last = nil
		}
		rl.evictions++
		rl.met.StreamEvictions.Inc()
	}
}

// MergeMetrics are a Merger's optional observability handles (nil-safe).
type MergeMetrics struct {
	MergeTemporal   *obs.Counter // group.merges.temporal
	MergeRule       *obs.Counter // group.merges.rule
	MergeCross      *obs.Counter // group.merges.cross
	CrossCandidates *obs.Counter // cross-window candidates examined
	OpenMessages    *obs.Gauge   // messages in not-yet-closed groups
	OpenGroups      *obs.Gauge
}

// MergeStats snapshots a Merger.
type MergeStats struct {
	OpenMessages    int
	OpenGroups      int
	TemporalMerges  int
	RuleMerges      int
	CrossMerges     int
	CrossCandidates uint64
}

// Merger is the global half of the incremental grouper: it owns the group
// partition, the closure list, and the cross-router ring. Apply it to
// every message in global nondecreasing time order (the same total order
// the router-local halves saw their subsequences in) and it reproduces the
// serial grouper's partition, closure order, and tallies exactly. Not safe
// for concurrent use (one Merger per merge goroutine).
type Merger struct {
	g       *Grouper
	horizon time.Duration

	started   bool
	watermark time.Time

	crossWin memberRing

	oHead, oTail *incGroup
	openGroups   int
	openMsgs     int

	active                                  map[rules.PairKey]int
	temporalMerges, ruleMerges, crossMerges int
	crossCandidates                         uint64
	met                                     MergeMetrics

	// Two-tier emission (PR 9; see provisional.go). provHorizon > 0 turns
	// the provisional tier on; nextGroupID hands out birth identities
	// (always assigned — cheap, and it keeps snapshots uniform); provQueue
	// holds the armed due-times; updBuf backs the slice TakeUpdates returns
	// — like closedBuf, valid until the next Apply/Drain.
	provHorizon time.Duration
	nextGroupID uint64
	provQueue   provQueue
	updBuf      []GroupUpdate

	// Recycling scratch (merge goroutine only). closedBuf backs the slice
	// Apply/Drain return — valid until the next Apply/Drain. memberFree
	// recycles heap-grown group member lists; msgFree recycles ClosedGroup
	// member buffers handed back through Recycle.
	closedBuf  []ClosedGroup
	memberFree [][]*Pending
	msgFree    [][]Message
}

// memberBuf returns a recycled member slice with capacity >= need (length
// 0). Recycled and fresh buffers always have capacity > len(incGroup.inline)
// so putMemberBuf can tell heap lists from inline backings by capacity.
func (mg *Merger) memberBuf(need int) []*Pending {
	if n := len(mg.memberFree); n > 0 {
		b := mg.memberFree[n-1]
		mg.memberFree = mg.memberFree[:n-1]
		if cap(b) >= need {
			return b
		}
		// Too small: drop it and allocate; sizes stabilize at the high-water
		// mark, so steady state stops allocating.
	}
	c := 4
	for c < need {
		c *= 2
	}
	return make([]*Pending, 0, c)
}

// putMemberBuf recycles a group's member list. Inline backings (capacity
// <= 2) belong to their Pending and are skipped; entries are cleared so a
// pooled buffer pins nothing.
func (mg *Merger) putMemberBuf(b []*Pending) {
	if cap(b) <= inlineMembers {
		return
	}
	b = b[:cap(b)]
	clear(b)
	mg.memberFree = append(mg.memberFree, b[:0])
}

// msgBuf returns a recycled message buffer with capacity >= need (length 0).
func (mg *Merger) msgBuf(need int) []Message {
	if n := len(mg.msgFree); n > 0 {
		b := mg.msgFree[n-1]
		mg.msgFree = mg.msgFree[:n-1]
		if cap(b) >= need {
			return b
		}
	}
	c := 4
	for c < need {
		c *= 2
	}
	return make([]Message, 0, c)
}

// Recycle returns the Members buffers of closed groups the caller has fully
// consumed. Entirely optional: callers that retain ClosedGroups simply
// never call it and the buffers stay theirs. After Recycle the slices must
// not be read again.
func (mg *Merger) Recycle(closed []ClosedGroup) {
	for i := range closed {
		ms := closed[i].Members
		if cap(ms) == 0 {
			continue
		}
		ms = ms[:cap(ms)]
		clear(ms)
		mg.msgFree = append(mg.msgFree, ms[:0])
		closed[i].Members = nil
	}
}

// SetMetrics installs observability handles.
func (mg *Merger) SetMetrics(m MergeMetrics) { mg.met = m }

// Watermark is the maximum message time applied so far.
func (mg *Merger) Watermark() time.Time { return mg.watermark }

// Horizon is the closure bound.
func (mg *Merger) Horizon() time.Duration { return mg.horizon }

// ActiveRules is the cumulative per-pair rule-merge tally (Figure 12).
// The returned map is a copy: callers may keep or mutate it freely without
// corrupting the engine's internal tally.
func (mg *Merger) ActiveRules() map[rules.PairKey]int {
	out := make(map[rules.PairKey]int, len(mg.active))
	for k, v := range mg.active {
		out[k] = v
	}
	return out
}

// Stats snapshots the merger.
func (mg *Merger) Stats() MergeStats {
	return MergeStats{
		OpenMessages:    mg.openMsgs,
		OpenGroups:      mg.openGroups,
		TemporalMerges:  mg.temporalMerges,
		RuleMerges:      mg.ruleMerges,
		CrossMerges:     mg.crossMerges,
		CrossCandidates: mg.crossCandidates,
	}
}

// Apply admits one message (global nondecreasing time order required) with
// its router-local join decisions, runs the cross-router pass, and returns
// any groups the advanced watermark closed, oldest first. Apply consumes
// the caller's pipeline reference to p. The returned slice is scratch,
// valid only until the next Apply or Drain: callers that retain closed
// groups must copy the ClosedGroup values out before stepping again, and
// callers that have fully consumed the Members buffers should hand them
// back through Recycle.
func (mg *Merger) Apply(p *Pending, js *Joins) ([]ClosedGroup, error) {
	if mg.started && p.msg.Time.Before(mg.watermark) {
		return nil, fmt.Errorf("grouping: incremental requires nondecreasing timestamps (got %v after watermark %v)",
			p.msg.Time, mg.watermark)
	}
	mg.started = true
	mg.watermark = p.msg.Time
	if mg.provHorizon > 0 {
		mg.updBuf = mg.updBuf[:0]
	}

	g := &p.grp
	g.inline[0] = p
	g.members = g.inline[:1]
	g.last = p.msg.Time
	g.closed = false // recycled records keep their previous life's grp (see pool.put)
	g.id = mg.nextGroupID
	mg.nextGroupID++
	g.rev = 0
	g.pub = false
	g.dirty = false
	p.g = g
	p.ref() // group membership reference, released by closeGroup
	mg.pushOpen(g)
	mg.openGroups++
	mg.openMsgs++

	if js.Temporal != nil {
		if _, err := mg.merge(js.Temporal, p, &mg.temporalMerges, mg.met.MergeTemporal); err != nil {
			return nil, err
		}
	}
	for _, mi := range js.Rules {
		did, err := mg.merge(mi, p, &mg.ruleMerges, mg.met.MergeRule)
		if err != nil {
			return nil, err
		}
		if did {
			mg.active[rulePair(mi.msg.Template, p.msg.Template)]++
		}
	}
	if mg.g.cfg.useCross() {
		if err := mg.crossStep(p); err != nil {
			return nil, err
		}
	}

	if mg.provHorizon > 0 {
		// Arm the newborn only if it survived the joins as its own root —
		// a merged-away singleton rides the winner's existing arms. Then
		// fire everything due before closure, so a revision always precedes
		// the final record it anticipates.
		if p.g == &p.grp {
			mg.armProv(p.g)
		}
		mg.popDue()
	}

	mg.closedBuf = mg.closeReady(mg.closedBuf[:0])
	mg.publishGauges()
	// Apply owns the caller's pipeline reference; p cannot recycle here —
	// its own group holds a reference and cannot have closed above (its
	// last member time is the current watermark).
	p.unref()
	return mg.closedBuf, nil
}

// Drain closes every open group (oldest first) and empties the
// cross-router window (keeping its buffers). The watermark persists.
// Callers draining a full pipeline must also DrainWindows every
// RouterLocal, or later messages could join members emitted here. As with
// Apply, the returned slice is scratch valid until the next Apply or
// Drain.
func (mg *Merger) Drain() []ClosedGroup {
	mg.updBuf = mg.updBuf[:0]
	mg.drainProvQueue()
	mg.closedBuf = mg.closedBuf[:0]
	for mg.oHead != nil {
		mg.closedBuf = append(mg.closedBuf, mg.closeGroup(mg.oHead))
	}
	mg.crossWin.popAll()
	mg.publishGauges()
	return mg.closedBuf
}

// crossStep examines the new arrival against the global retained window
// within the near-simultaneity bound. crossPair requires equal templates,
// so the default path walks only the arrival's own template bucket — which
// is already in ascending ring order, preserving the linear scan's merge
// sequence exactly. Config.LinearScan forces the full-window reference
// scan.
func (mg *Merger) crossStep(p *Pending) error {
	cw := &mg.crossWin
	for cw.n > 0 && p.msg.Time.After(cw.front().msg.Time.Add(mg.g.cfg.CrossWindow)) {
		cw.popFront()
	}
	var cand uint64
	if mg.g.cfg.LinearScan {
		for i := 0; i < cw.n; i++ {
			mi := cw.at(i)
			cand++
			if err := mg.crossExamine(mi, p); err != nil {
				return err
			}
		}
	} else if b := cw.buckets[p.msg.Template]; b != nil {
		for _, a := range b.live() {
			mi := cw.atAbs(a)
			cand++
			if err := mg.crossExamine(mi, p); err != nil {
				return err
			}
		}
	}
	mg.crossCandidates += cand
	mg.met.CrossCandidates.Add(cand)
	cw.push(p)
	if cw.n > mg.g.cfg.MaxScan {
		cw.popFront()
	}
	return nil
}

// crossExamine applies the full cross-router predicate to one candidate and
// merges on success — the shared body of both scan modes.
func (mg *Merger) crossExamine(mi, p *Pending) error {
	if !mg.g.crossPair(&mi.msg, &p.msg) {
		return nil
	}
	if mi.g == p.g {
		return nil
	}
	if mg.g.crossLinked(&mi.msg, &p.msg) {
		if _, err := mg.merge(mi, p, &mg.crossMerges, mg.met.MergeCross); err != nil {
			return err
		}
	}
	return nil
}

// merge joins the groups of a and b (b is always the current message).
// Small-into-large pointer rewriting keeps total rewrite work O(n log n).
func (mg *Merger) merge(a, b *Pending, tally *int, c *obs.Counter) (bool, error) {
	ga, gb := a.g, b.g
	if ga == gb {
		return false, nil
	}
	if ga.closed || gb.closed {
		return false, fmt.Errorf("grouping: merge touched a closed group (closure horizon %v violated)", mg.horizon)
	}
	if len(ga.members) < len(gb.members) {
		ga, gb = gb, ga
	}
	for _, m := range gb.members {
		m.g = ga
	}
	if need := len(ga.members) + len(gb.members); need > cap(ga.members) {
		nb := append(mg.memberBuf(need), ga.members...)
		mg.putMemberBuf(ga.members)
		ga.members = nb
	}
	ga.members = append(ga.members, gb.members...)
	if gb.last.After(ga.last) {
		ga.last = gb.last
	}
	mg.unlinkOpen(gb)
	mg.putMemberBuf(gb.members)
	gb.members = nil
	mg.openGroups--
	// b is the newest message overall, so the merged group's lastTime is
	// the current watermark — the list maximum — and a move-to-tail keeps
	// the closure list sorted.
	mg.moveToTail(ga)
	*tally++
	c.Inc()
	if mg.provHorizon > 0 {
		mg.noteMerge(ga, gb)
	}
	return true, nil
}

// closeReady pops closed groups off the head of the closure list.
func (mg *Merger) closeReady(out []ClosedGroup) []ClosedGroup {
	for mg.oHead != nil && mg.watermark.Sub(mg.oHead.last) > mg.horizon {
		out = append(out, mg.closeGroup(mg.oHead))
	}
	return out
}

// closeGroup finalizes one group: members sort ascending by Seq (the order
// event scoring depends on), their messages are copied out, and each
// member's group reference is released. Member records may outlive the
// group inside retained windows; the closed mark keeps a late merge from
// resurrecting it. Seqs are unique, so swapping sort.Slice for the
// allocation-free slices.SortFunc cannot change the order.
func (mg *Merger) closeGroup(g *incGroup) ClosedGroup {
	if mg.provHorizon > 0 && !g.pub {
		// A group closing before its due time (short horizon, or a Drain)
		// still gets its revision-0 provisional record, so every final
		// event has a first signal and the emission books balance.
		mg.publish(g, UpdateProvisional)
	}
	mg.unlinkOpen(g)
	g.closed = true
	g.rev++ // the closure is the identity's last revision
	mg.openGroups--
	mg.openMsgs -= len(g.members)
	slices.SortFunc(g.members, func(a, b *Pending) int { return cmp.Compare(a.msg.Seq, b.msg.Seq) })
	msgs := mg.msgBuf(len(g.members))
	for _, m := range g.members {
		msgs = append(msgs, m.msg)
		m.unref() // group membership reference
	}
	mg.putMemberBuf(g.members)
	g.members = nil
	return ClosedGroup{ID: g.id, Revision: g.rev, Members: msgs}
}

func (mg *Merger) publishGauges() {
	mg.met.OpenMessages.Set(float64(mg.openMsgs))
	mg.met.OpenGroups.Set(float64(mg.openGroups))
}

// Closure list maintenance (doubly linked, ascending last).

func (mg *Merger) pushOpen(g *incGroup) {
	g.prev = mg.oTail
	g.next = nil
	if mg.oTail != nil {
		mg.oTail.next = g
	} else {
		mg.oHead = g
	}
	mg.oTail = g
}

func (mg *Merger) unlinkOpen(g *incGroup) {
	if g.prev != nil {
		g.prev.next = g.next
	} else {
		mg.oHead = g.next
	}
	if g.next != nil {
		g.next.prev = g.prev
	} else {
		mg.oTail = g.prev
	}
	g.prev, g.next = nil, nil
}

func (mg *Merger) moveToTail(g *incGroup) {
	if mg.oTail == g {
		return
	}
	mg.unlinkOpen(g)
	mg.pushOpen(g)
}
