package grouping

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"syslogdigest/internal/temporal"
)

// ckptCfg is the config every engine in these tests shares (matching the
// defaults newIncremental injects).
func ckptCfg() IncrementalConfig {
	return IncrementalConfig{Config: Config{Temporal: temporal.DefaultParams()}}
}

// restoreFromState round-trips an IncState through JSON (as the real
// checkpoint path does) and rebuilds an Incremental over the toy knowledge.
func restoreFromState(t *testing.T, st IncState) *Incremental {
	t.Helper()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var back IncState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	inc, err := RestoreIncremental(toyDict(t), flapRuleBase(), ckptCfg(), back)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return inc
}

// TestIncrementalCheckpointDifferential kills and restores the incremental
// grouper at every prefix of a randomized sorted batch: the closed groups
// emitted after the cut, the final drain, and the stats must all match the
// uninterrupted run exactly.
func TestIncrementalCheckpointDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	batch := randomBatch(rng, 80)
	sorted := append([]Message(nil), batch...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if !sorted[i].Time.Equal(sorted[j].Time) {
			return sorted[i].Time.Before(sorted[j].Time)
		}
		return sorted[i].Seq < sorted[j].Seq
	})

	// Uninterrupted reference: closed groups per step plus final stats.
	ref := newIncremental(t, Config{})
	refClosed := make([][][]int, len(sorted))
	for i := range sorted {
		cgs, err := ref.Observe(sorted[i])
		if err != nil {
			t.Fatalf("reference observe: %v", err)
		}
		refClosed[i] = closedToGroups(cgs)
	}
	refDrain := closedToGroups(ref.Drain())
	refStats := ref.Stats()

	for cut := 0; cut <= len(sorted); cut += 7 {
		inc := newIncremental(t, Config{})
		for i := 0; i < cut; i++ {
			if _, err := inc.Observe(sorted[i]); err != nil {
				t.Fatalf("cut %d observe: %v", cut, err)
			}
		}
		restored := restoreFromState(t, inc.State())
		for i := cut; i < len(sorted); i++ {
			cgs, err := restored.Observe(sorted[i])
			if err != nil {
				t.Fatalf("cut %d restored observe %d: %v", cut, i, err)
			}
			if got := closedToGroups(cgs); !reflect.DeepEqual(got, refClosed[i]) {
				t.Fatalf("cut %d step %d: closed groups diverge\ngot  %v\nwant %v", cut, i, got, refClosed[i])
			}
		}
		if got := closedToGroups(restored.Drain()); !reflect.DeepEqual(got, refDrain) {
			t.Fatalf("cut %d: drain diverges\ngot  %v\nwant %v", cut, got, refDrain)
		}
		if got := restored.Stats(); got != refStats {
			t.Fatalf("cut %d: stats diverge\ngot  %+v\nwant %+v", cut, got, refStats)
		}
	}
}

// TestIncrementalStateRoundTripStable pins byte stability:
// capture → restore → capture yields identical JSON.
func TestIncrementalStateRoundTripStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	batch := randomBatch(rng, 60)
	sort.SliceStable(batch, func(i, j int) bool {
		if !batch[i].Time.Equal(batch[j].Time) {
			return batch[i].Time.Before(batch[j].Time)
		}
		return batch[i].Seq < batch[j].Seq
	})
	inc := newIncremental(t, Config{})
	for i := range batch {
		if _, err := inc.Observe(batch[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := inc.State()
	raw1, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	restored := restoreFromState(t, st)
	raw2, err := json.Marshal(restored.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("state not byte-stable across restore:\n%s\nvs\n%s", raw1, raw2)
	}
}

// TestRestorePartsResharding snapshots a 3-shard arrangement and restores
// it at 1 worker: the merged engine must continue exactly like a serial
// engine that saw the same prefix (model tables stay within bounds here, so
// the reshard approximation never bites).
func TestRestorePartsResharding(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	batch := randomBatch(rng, 70)
	sort.SliceStable(batch, func(i, j int) bool {
		if !batch[i].Time.Equal(batch[j].Time) {
			return batch[i].Time.Before(batch[j].Time)
		}
		return batch[i].Seq < batch[j].Seq
	})
	s, err := NewShardable(toyDict(t), flapRuleBase(), ckptCfg())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 3
	shardFor := func(r string) int {
		h := 0
		for i := 0; i < len(r); i++ {
			h = h*31 + int(r[i])
		}
		return ((h % workers) + workers) % workers
	}
	locals := make([]*RouterLocal, workers)
	for i := range locals {
		locals[i] = s.NewLocal(0)
	}
	mg := s.NewMerger()

	cut := len(batch) / 2
	var js Joins
	for i := 0; i < cut; i++ {
		p := NewPending(batch[i])
		if err := locals[shardFor(p.msg.Router)].Step(p, &js); err != nil {
			t.Fatal(err)
		}
		if _, err := mg.Apply(p, &js); err != nil {
			t.Fatal(err)
		}
	}
	st := CaptureParts(locals, mg)
	merged, err := RestoreIncremental(toyDict(t), flapRuleBase(), ckptCfg(), st)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference over the whole batch.
	ref := newIncremental(t, Config{})
	var refOut, gotOut [][]int
	for i := range batch {
		cgs, err := ref.Observe(batch[i])
		if err != nil {
			t.Fatal(err)
		}
		refOut = append(refOut, closedToGroups(cgs)...)
		if i >= cut {
			mcgs, err := merged.Observe(batch[i])
			if err != nil {
				t.Fatalf("merged observe %d: %v", i, err)
			}
			gotOut = append(gotOut, closedToGroups(mcgs)...)
		}
	}
	refOut = append(refOut, closedToGroups(ref.Drain())...)
	gotOut = append(gotOut, closedToGroups(merged.Drain())...)

	// Only groups closing after the cut are observable from the restored
	// engine; the reference's earlier closures are a prefix.
	if len(gotOut) > len(refOut) {
		t.Fatalf("restored engine closed more groups (%d) than reference (%d)", len(gotOut), len(refOut))
	}
	tail := refOut[len(refOut)-len(gotOut):]
	if !reflect.DeepEqual(gotOut, tail) {
		t.Fatalf("resharded continuation diverges\ngot  %v\nwant %v", gotOut, tail)
	}
}

// TestRestoreRejectsCorruptIndexes hits the bounds checks: out-of-range and
// double-assigned member indexes must error, not panic.
func TestRestoreRejectsCorruptIndexes(t *testing.T) {
	inc := newIncremental(t, Config{})
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		m := randomBatch(rand.New(rand.NewSource(int64(i))), 1)[0]
		m.Seq = i
		m.Time = base.Add(time.Duration(i) * time.Second)
		if _, err := inc.Observe(m); err != nil {
			t.Fatal(err)
		}
	}
	good := inc.State()

	corrupt := func(mut func(*IncState)) error {
		raw, _ := json.Marshal(good)
		var st IncState
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		mut(&st)
		_, err := RestoreIncremental(toyDict(t), flapRuleBase(), ckptCfg(), st)
		return err
	}

	if err := corrupt(func(st *IncState) {
		if len(st.Merger.Groups) == 0 {
			t.Skip("no open groups in fixture")
		}
		st.Merger.Groups[0].Members[0] = len(st.Pendings) + 3
	}); err == nil {
		t.Error("out-of-range group member accepted")
	}
	if err := corrupt(func(st *IncState) {
		if len(st.Merger.Groups) == 0 || len(st.Merger.Groups[0].Members) == 0 {
			t.Skip("no open groups in fixture")
		}
		m := st.Merger.Groups[0].Members[0]
		st.Merger.Groups = append(st.Merger.Groups, GroupState{Members: []int{m}})
	}); err == nil {
		t.Error("double group membership accepted")
	}
	if err := corrupt(func(st *IncState) {
		st.Merger.CrossWin = append(st.Merger.CrossWin, -1)
	}); err == nil {
		t.Error("negative cross-window index accepted")
	}
	if err := corrupt(func(st *IncState) {
		if len(st.Locals) == 0 || len(st.Locals[0].Models) == 0 {
			t.Skip("no models in fixture")
		}
		st.Locals[0].Models[0].Last = len(st.Pendings)
	}); err == nil {
		t.Error("out-of-range model predecessor accepted")
	}
	if err := corrupt(func(st *IncState) {
		st.Merger.Groups = append(st.Merger.Groups, GroupState{})
	}); err == nil {
		t.Error("empty group accepted")
	}
}
