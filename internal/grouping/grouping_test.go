package grouping

import (
	"testing"
	"time"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/netconf"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/temporal"
)

var t0 = time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)

// Template ids used across these tests, mirroring the paper's toy example:
// t1 = LINK down, t2 = LINEPROTO down, t3 = LINK up, t4 = LINEPROTO up.
const (
	tLinkDown  = 1
	tProtoDown = 2
	tLinkUp    = 3
	tProtoUp   = 4
)

// toyDict wires the Table 2 topology: r1's Serial1/0.10/10:0 is connected
// to r2's Serial1/0.20/20:0.
func toyDict(t *testing.T) *locdict.Dictionary {
	t.Helper()
	r1 := &netconf.Config{
		Hostname: "r1", Vendor: syslogmsg.VendorV1,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.1", PrefixLen: 32},
			{Name: "Serial1/0.10/10:0", IP: "10.0.0.1", PrefixLen: 30},
		},
	}
	r2 := &netconf.Config{
		Hostname: "r2", Vendor: syslogmsg.VendorV1,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.2", PrefixLen: 32},
			{Name: "Serial1/0.20/20:0", IP: "10.0.0.2", PrefixLen: 30},
		},
	}
	d, err := locdict.Build([]*netconf.Config{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// flapRuleBase returns rules connecting the flap templates, as offline
// mining would learn from historical flaps.
func flapRuleBase() *rules.RuleBase {
	rb := rules.NewRuleBase()
	rb.Add(rules.Rule{X: tLinkDown, Y: tProtoDown, Support: 0.1, Conf: 0.95})
	rb.Add(rules.Rule{X: tLinkUp, Y: tProtoUp, Support: 0.1, Conf: 0.95})
	rb.Add(rules.Rule{X: tLinkDown, Y: tLinkUp, Support: 0.1, Conf: 0.9})
	return rb
}

// table2Messages builds the paper's 16-message toy example.
func table2Messages(t *testing.T) []Message {
	t.Helper()
	l1 := locdict.IntfLoc("r1", "Serial1/0.10/10:0")
	l2 := locdict.IntfLoc("r2", "Serial1/0.20/20:0")
	mk := func(seq int, secs int, router string, tmpl int, loc locdict.Location) Message {
		return Message{
			Seq: seq, Time: t0.Add(time.Duration(secs) * time.Second),
			Router: router, Template: tmpl, Loc: loc,
			AllLocs: []locdict.Location{loc, locdict.RouterLoc(router)},
		}
	}
	return []Message{
		mk(0, 0, "r1", tLinkDown, l1), mk(1, 0, "r2", tLinkDown, l2),
		mk(2, 1, "r1", tProtoDown, l1), mk(3, 1, "r2", tProtoDown, l2),
		mk(4, 10, "r1", tLinkUp, l1), mk(5, 10, "r2", tLinkUp, l2),
		mk(6, 11, "r1", tProtoUp, l1), mk(7, 11, "r2", tProtoUp, l2),
		mk(8, 20, "r1", tLinkDown, l1), mk(9, 20, "r2", tLinkDown, l2),
		mk(10, 21, "r1", tProtoDown, l1), mk(11, 21, "r2", tProtoDown, l2),
		mk(12, 30, "r1", tLinkUp, l1), mk(13, 30, "r2", tLinkUp, l2),
		mk(14, 31, "r1", tProtoUp, l1), mk(15, 31, "r2", tProtoUp, l2),
	}
}

func newGrouper(t *testing.T, dict *locdict.Dictionary, rb *rules.RuleBase, cfg Config) *Grouper {
	t.Helper()
	if cfg.Temporal == (temporal.Params{}) {
		cfg.Temporal = temporal.DefaultParams()
	}
	g, err := New(dict, rb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTable2ToyBecomesOneEvent is the paper's §3 running example: 16 raw
// messages across two routers collapse into one network event.
func TestTable2ToyBecomesOneEvent(t *testing.T) {
	g := newGrouper(t, toyDict(t), flapRuleBase(), Config{})
	res, err := g.Group(table2Messages(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1; partition %v", len(res.Groups), res.GroupOf)
	}
	if len(res.Groups[0]) != 16 {
		t.Fatalf("group size = %d, want 16", len(res.Groups[0]))
	}
	if res.CompressionRatio() != 1.0/16.0 {
		t.Fatalf("ratio = %v", res.CompressionRatio())
	}
	if len(res.ActiveRules) == 0 {
		t.Fatal("no active rules recorded")
	}
}

// TestStagedCompression: T alone groups less than T+R, which groups less
// than T+R+C — the structure of Table 7.
func TestStagedCompression(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	msgs := table2Messages(t)

	count := func(cfg Config) int {
		g := newGrouper(t, dict, rb, cfg)
		res, err := g.Group(msgs)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Groups)
	}
	tOnly := count(Config{OnlyTemporal: true})
	tr := count(Config{TemporalAndRules: true})
	trc := count(Config{})
	if !(tOnly > tr && tr > trc) {
		t.Fatalf("staged groups T=%d T+R=%d T+R+C=%d, want strictly decreasing", tOnly, tr, trc)
	}
	if trc != 1 {
		t.Fatalf("full pipeline groups = %d, want 1", trc)
	}
}

func TestTemporalPassOnly(t *testing.T) {
	dict := toyDict(t)
	l1 := locdict.IntfLoc("r1", "Serial1/0.10/10:0")
	// Same template, same location, sub-second spacing: one group.
	var msgs []Message
	for i := 0; i < 6; i++ {
		msgs = append(msgs, Message{
			Seq: i, Time: t0.Add(time.Duration(i*500) * time.Millisecond),
			Router: "r1", Template: tLinkDown, Loc: l1,
		})
	}
	// A different location on the same router stays separate.
	msgs = append(msgs, Message{Seq: 6, Time: t0, Router: "r1", Template: tLinkDown, Loc: locdict.RouterLoc("r1")})
	g := newGrouper(t, dict, nil, Config{OnlyTemporal: true})
	res, err := g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2: %v", len(res.Groups), res.GroupOf)
	}
}

func TestRulePassRequiresSpatialMatch(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	l1 := locdict.IntfLoc("r1", "Serial1/0.10/10:0")
	// Rule-connected templates at an unrelated location (slot 9 does not
	// exist; use a different fabricated interface) must not merge.
	other := locdict.IntfLoc("r1", "Serial9/0/1:0")
	msgs := []Message{
		{Seq: 0, Time: t0, Router: "r1", Template: tLinkDown, Loc: l1},
		{Seq: 1, Time: t0.Add(time.Second), Router: "r1", Template: tProtoDown, Loc: other},
	}
	g := newGrouper(t, dict, rb, Config{TemporalAndRules: true})
	res, err := g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("spatially unrelated messages merged: %v", res.GroupOf)
	}
	// Same pair at matching locations does merge.
	msgs[1].Loc = l1
	res, err = g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("rule-connected messages did not merge: %v", res.GroupOf)
	}
}

func TestRulePassRespectsWindow(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	l1 := locdict.IntfLoc("r1", "Serial1/0.10/10:0")
	msgs := []Message{
		{Seq: 0, Time: t0, Router: "r1", Template: tLinkDown, Loc: l1},
		{Seq: 1, Time: t0.Add(10 * time.Minute), Router: "r1", Template: tProtoDown, Loc: l1},
	}
	g := newGrouper(t, dict, rb, Config{TemporalAndRules: true, RuleWindow: 2 * time.Minute})
	res, err := g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1+1 {
		t.Fatalf("messages outside W merged: %v", res.GroupOf)
	}
}

func TestCrossPassLinkEnds(t *testing.T) {
	dict := toyDict(t)
	l1 := locdict.IntfLoc("r1", "Serial1/0.10/10:0")
	l2 := locdict.IntfLoc("r2", "Serial1/0.20/20:0")
	msgs := []Message{
		{Seq: 0, Time: t0, Router: "r1", Template: tLinkDown, Loc: l1},
		{Seq: 1, Time: t0.Add(time.Second), Router: "r2", Template: tLinkDown, Loc: l2},
	}
	g := newGrouper(t, dict, nil, Config{})
	res, err := g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("link ends did not merge: %v", res.GroupOf)
	}
	// Beyond the cross window they stay apart.
	msgs[1].Time = t0.Add(5 * time.Second)
	res, err = g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("non-simultaneous link ends merged: %v", res.GroupOf)
	}
	// Different templates never cross-group.
	msgs[1].Time = t0
	msgs[1].Template = tProtoDown
	res, err = g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("different templates cross-grouped: %v", res.GroupOf)
	}
}

func TestCrossPassPeerHints(t *testing.T) {
	dict := toyDict(t)
	// Router-level BGP messages referencing each other via peer hints.
	msgs := []Message{
		{Seq: 0, Time: t0, Router: "r1", Template: 7, Loc: locdict.RouterLoc("r1"), Peers: []string{"r2"}},
		{Seq: 1, Time: t0, Router: "r2", Template: 7, Loc: locdict.RouterLoc("r2")},
	}
	g := newGrouper(t, dict, nil, Config{})
	res, err := g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("peer-hinted session ends did not merge: %v", res.GroupOf)
	}
}

func TestGroupSliceOrderInvariance(t *testing.T) {
	dict := toyDict(t)
	rb := flapRuleBase()
	msgs := table2Messages(t)
	rev := make([]Message, len(msgs))
	for i := range msgs {
		rev[len(msgs)-1-i] = msgs[i]
	}
	g := newGrouper(t, dict, rb, Config{})
	a, err := g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Group(rev)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("group count differs by slice order: %d vs %d", len(a.Groups), len(b.Groups))
	}
	for seq := range a.GroupOf {
		for seq2 := range a.GroupOf {
			sameA := a.GroupOf[seq] == a.GroupOf[seq2]
			sameB := b.GroupOf[seq] == b.GroupOf[seq2]
			if sameA != sameB {
				t.Fatalf("partition differs for (%d, %d)", seq, seq2)
			}
		}
	}
}

func TestGroupErrors(t *testing.T) {
	dict := toyDict(t)
	if _, err := New(nil, nil, Config{Temporal: temporal.DefaultParams()}); err == nil {
		t.Fatal("nil dictionary accepted")
	}
	if _, err := New(dict, nil, Config{Temporal: temporal.Params{Alpha: -1}}); err == nil {
		t.Fatal("bad temporal params accepted")
	}
	g := newGrouper(t, dict, nil, Config{})
	if _, err := g.Group([]Message{{Seq: 5}}); err == nil {
		t.Fatal("sparse Seq accepted")
	}
}

func TestGroupEmpty(t *testing.T) {
	g := newGrouper(t, toyDict(t), nil, Config{})
	res, err := g.Group(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 || res.CompressionRatio() != 1 {
		t.Fatalf("empty result = %+v", res)
	}
}

func TestGroupIDsDense(t *testing.T) {
	g := newGrouper(t, toyDict(t), flapRuleBase(), Config{})
	res, err := g.Group(table2Messages(t))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, id := range res.GroupOf {
		if id < 0 || id >= len(res.Groups) {
			t.Fatalf("group id %d out of range", id)
		}
		seen[id] = true
	}
	if len(seen) != len(res.Groups) {
		t.Fatalf("ids not dense: %v", res.GroupOf)
	}
	for id, members := range res.Groups {
		for _, seq := range members {
			if res.GroupOf[seq] != id {
				t.Fatalf("group membership inconsistent at seq %d", seq)
			}
		}
	}
}

func TestUnionFind(t *testing.T) {
	u := newUnionFind(5)
	if !u.union(0, 1) || !u.union(1, 2) {
		t.Fatal("fresh unions should merge")
	}
	if u.union(0, 2) {
		t.Fatal("redundant union should report no merge")
	}
	if !u.same(0, 2) || u.same(0, 3) {
		t.Fatal("connectivity wrong")
	}
	u.union(3, 4)
	if u.same(2, 4) {
		t.Fatal("separate components merged")
	}
}

// TestPerPassMergeCounts checks the merge accounting invariant: every merge
// removes exactly one group, so the per-pass counts must sum to
// n - len(Groups), and each ablation stage must zero out the passes it
// disables (Table 7's T / R / C axes).
func TestPerPassMergeCounts(t *testing.T) {
	msgs := table2Messages(t)
	for _, tc := range []struct {
		name    string
		cfg     Config
		noRule  bool
		noCross bool
	}{
		{name: "T", cfg: Config{OnlyTemporal: true}, noRule: true, noCross: true},
		{name: "T+R", cfg: Config{TemporalAndRules: true}, noCross: true},
		{name: "T+R+C", cfg: Config{}},
	} {
		g := newGrouper(t, toyDict(t), flapRuleBase(), tc.cfg)
		res, err := g.Group(msgs)
		if err != nil {
			t.Fatal(err)
		}
		total := res.TemporalMerges + res.RuleMerges + res.CrossMerges
		if want := len(msgs) - len(res.Groups); total != want {
			t.Errorf("%s: merges %d (T=%d R=%d C=%d) != n - groups = %d",
				tc.name, total, res.TemporalMerges, res.RuleMerges, res.CrossMerges, want)
		}
		if tc.noRule && res.RuleMerges != 0 {
			t.Errorf("%s: rule merges %d on disabled pass", tc.name, res.RuleMerges)
		}
		if tc.noCross && res.CrossMerges != 0 {
			t.Errorf("%s: cross merges %d on disabled pass", tc.name, res.CrossMerges)
		}
	}
	// The full toy run must use the rule and cross passes (the toy's 20s
	// same-template spacing is beyond Smin, so temporal contributes 0).
	g := newGrouper(t, toyDict(t), flapRuleBase(), Config{})
	res, err := g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleMerges == 0 || res.CrossMerges == 0 {
		t.Fatalf("expected rule and cross merges: T=%d R=%d C=%d",
			res.TemporalMerges, res.RuleMerges, res.CrossMerges)
	}
	// Rule merges must agree with the ActiveRules tally.
	active := 0
	for _, n := range res.ActiveRules {
		active += n
	}
	if active != res.RuleMerges {
		t.Fatalf("ActiveRules total %d != RuleMerges %d", active, res.RuleMerges)
	}
}

// TestTemporalMergeCount: a sub-Smin same-template burst merges in pass 1
// and is counted as temporal merges.
func TestTemporalMergeCount(t *testing.T) {
	l1 := locdict.IntfLoc("r1", "Serial1/0.10/10:0")
	var msgs []Message
	for i := 0; i < 5; i++ {
		msgs = append(msgs, Message{
			Seq: i, Time: t0.Add(time.Duration(i) * 500 * time.Millisecond),
			Router: "r1", Template: tLinkDown, Loc: l1,
		})
	}
	g := newGrouper(t, toyDict(t), nil, Config{OnlyTemporal: true})
	res, err := g.Group(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TemporalMerges != 4 || len(res.Groups) != 1 {
		t.Fatalf("T=%d groups=%d, want 4 merges into 1 group", res.TemporalMerges, len(res.Groups))
	}
}
