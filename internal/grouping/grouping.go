// Package grouping implements the paper's three online grouping methods
// (§4.2) that turn a stream of augmented (Syslog+) messages into candidate
// network events:
//
//   - temporal grouping (§4.2.1): messages with the same template at the
//     same location whose interarrivals follow the learned temporal pattern
//     join one group;
//   - rule-based grouping (§4.2.2): messages with *different* templates on
//     the same router join when an association rule connects their
//     templates, they fall within the mining window W, and their locations
//     spatially match; rule direction is ignored;
//   - cross-router grouping (§4.2.3): messages with the same template on
//     connected locations of *different* routers (two ends of a link,
//     session, or path) join when nearly simultaneous (≤1s by default).
//
// All three passes emit merges into one union-find, so — as the paper
// argues — the order of application cannot change the final partition.
// Every message starts as its own singleton group; a group is an event.
package grouping

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/par"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/temporal"
)

// Message is one augmented (Syslog+) message as grouping sees it: the raw
// fields that matter plus template and location annotations.
type Message struct {
	Seq      int // caller-assigned position in the batch, 0-based and dense
	Time     time.Time
	Router   string
	Template int
	Loc      locdict.Location   // primary (finest) location
	AllLocs  []locdict.Location // all resolved locations, finest first
	Peers    []string           // peer routers referenced by the message
	Raw      uint64             // caller-carried raw syslog index, opaque to grouping
}

// Config tunes the grouping passes.
type Config struct {
	// Temporal are the EWMA parameters for pass 1.
	Temporal temporal.Params
	// RuleWindow is W for pass 2; messages further apart than this never
	// rule-group. Zero defaults to 120s.
	RuleWindow time.Duration
	// CrossWindow is the near-simultaneity bound for pass 3. Zero
	// defaults to 1s.
	CrossWindow time.Duration
	// MaxScan caps how many following messages one message is compared
	// against within a window, bounding worst-case storm cost. Zero
	// defaults to 256.
	MaxScan int
	// Pool bounds the temporal pass's worker fan-out: independent
	// (template, location) streams run their EWMA models concurrently and
	// the resulting merges are applied to the union-find serially, so the
	// partition is identical at any worker count. Nil means a default
	// pool at GOMAXPROCS. Runtime knob only — never serialized.
	Pool *par.Pool
	// LinearScan disables the template-indexed candidate lookup in the rule
	// and cross windows, forcing the original O(window) scans. Output is
	// byte-identical either way (the differential tests prove it); the
	// toggle exists as the reference baseline for those tests and for
	// honest before/after scan-count measurement. Runtime knob only —
	// never serialized.
	LinearScan bool
	// Stage selection for the Table 7 ablation; all false means all on.
	OnlyTemporal     bool // T
	TemporalAndRules bool // T+R
}

func (c Config) normalize() Config {
	if c.RuleWindow == 0 {
		c.RuleWindow = 120 * time.Second
	}
	if c.CrossWindow == 0 {
		c.CrossWindow = time.Second
	}
	if c.MaxScan == 0 {
		c.MaxScan = 256
	}
	if c.Pool == nil {
		c.Pool = par.New(0)
	}
	return c
}

func (c Config) useRules() bool { return !c.OnlyTemporal }
func (c Config) useCross() bool { return !c.OnlyTemporal && !c.TemporalAndRules }

// Result is the grouped partition of one batch.
type Result struct {
	// GroupOf maps message Seq to a dense group id; ids are ordered by
	// each group's earliest message Seq.
	GroupOf []int
	// Groups lists message Seqs per group id, each ascending.
	Groups [][]int
	// ActiveRules counts, per unordered template pair, how many rule-based
	// merges actually fired (the "active rules" of Figure 12).
	ActiveRules map[rules.PairKey]int
	// TemporalMerges, RuleMerges, and CrossMerges count the union-find
	// merges each pass contributed (Table 7's T / R / C axes). Their sum is
	// len(GroupOf) - len(Groups): every merge removes exactly one group.
	TemporalMerges int
	RuleMerges     int
	CrossMerges    int
}

// Grouper applies the three passes using learned knowledge.
type Grouper struct {
	dict *locdict.Dictionary
	rb   *rules.RuleBase
	cfg  Config
}

// New builds a grouper. dict may not be nil; rb may be nil when rule-based
// grouping is disabled or no rules were learned.
func New(dict *locdict.Dictionary, rb *rules.RuleBase, cfg Config) (*Grouper, error) {
	if dict == nil {
		return nil, fmt.Errorf("grouping: nil dictionary")
	}
	if rb == nil {
		rb = rules.NewRuleBase()
	}
	if _, err := temporal.NewGrouper(cfg.Temporal); err != nil {
		return nil, err
	}
	return &Grouper{dict: dict, rb: rb, cfg: cfg.normalize()}, nil
}

// Group partitions a batch of messages into events. Messages must carry
// dense Seq values 0..len-1 (any order in the slice).
func (g *Grouper) Group(msgs []Message) (*Result, error) {
	n := len(msgs)
	for i := range msgs {
		if msgs[i].Seq < 0 || msgs[i].Seq >= n {
			return nil, fmt.Errorf("grouping: message %d has Seq %d outside [0, %d)", i, msgs[i].Seq, n)
		}
	}
	uf := newUnionFind(n)
	res := &Result{ActiveRules: make(map[rules.PairKey]int)}

	// One time-sorted view is shared by passes 2 and 3.
	byTime := make([]*Message, n)
	for i := range msgs {
		byTime[i] = &msgs[i]
	}
	sort.SliceStable(byTime, func(i, j int) bool {
		if !byTime[i].Time.Equal(byTime[j].Time) {
			return byTime[i].Time.Before(byTime[j].Time)
		}
		return byTime[i].Seq < byTime[j].Seq
	})

	if err := g.temporalPass(byTime, uf, &res.TemporalMerges); err != nil {
		return nil, err
	}
	if g.cfg.useRules() {
		g.rulePass(byTime, uf, res.ActiveRules, &res.RuleMerges)
	}
	if g.cfg.useCross() {
		g.crossPass(byTime, uf, &res.CrossMerges)
	}

	g.finalize(msgs, uf, res)
	return res, nil
}

// temporalPass runs the learned interarrival model per (template, location)
// stream, merging consecutive same-group messages. Streams are mutually
// independent — each has its own EWMA state and its merges only ever join
// messages of that stream — so they run concurrently over cfg.Pool; the
// collected merges are applied to the union-find serially in stream
// first-appearance order, making the outcome identical to the serial scan
// at any worker count.
func (g *Grouper) temporalPass(byTime []*Message, uf *unionFind, merges *int) error {
	type streamKey struct {
		template int
		loc      string
	}
	streams := make(map[streamKey][]*Message)
	var keys []streamKey
	for _, m := range byTime {
		key := streamKey{m.Template, m.Loc.Key()}
		if _, ok := streams[key]; !ok {
			keys = append(keys, key)
		}
		streams[key] = append(streams[key], m)
	}

	// pairs[i] holds stream i's (previous, current) Seq merges in time
	// order; the temporal model never joins across streams, so per-stream
	// collection loses nothing. Streams are far cheaper than pool tasks
	// (often a handful of messages each), so workers take contiguous chunks
	// of streams rather than one stream per task.
	pairs := make([][][2]int, len(keys))
	err := g.cfg.Pool.Chunks(len(keys), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			tg, err := temporal.NewGrouper(g.cfg.Temporal)
			if err != nil {
				return err
			}
			var out [][2]int
			last := -1
			for _, m := range streams[keys[i]] {
				if tg.Observe(m.Time) {
					out = append(out, [2]int{last, m.Seq})
				}
				last = m.Seq
			}
			pairs[i] = out
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, ps := range pairs {
		for _, pr := range ps {
			if uf.union(pr[0], pr[1]) {
				*merges++
			}
		}
	}
	return nil
}

// rulePass scans each router's time-ordered messages with window W and
// merges rule-connected, spatially-matched pairs. Routers iterate in
// sorted order — map order would make the ActiveRules tallies depend on
// the run (per-router merge sets are disjoint at this stage, but the
// iteration order of a map is still nondeterministic state to build on).
func (g *Grouper) rulePass(byTime []*Message, uf *unionFind, active map[rules.PairKey]int, merges *int) {
	byRouter := make(map[string][]*Message)
	routers := make([]string, 0, 16)
	for _, m := range byTime {
		if _, ok := byRouter[m.Router]; !ok {
			routers = append(routers, m.Router)
		}
		byRouter[m.Router] = append(byRouter[m.Router], m)
	}
	sort.Strings(routers)
	for _, r := range routers {
		stream := byRouter[r]
		if g.cfg.LinearScan {
			g.ruleScanLinear(stream, uf, active, merges)
		} else {
			g.ruleScanIndexed(stream, uf, active, merges)
		}
	}
}

// ruleScanLinear is the original window scan over one router's stream: for
// each message, every following message within W and MaxScan positions is
// examined. Retained as the differential reference for ruleScanIndexed.
func (g *Grouper) ruleScanLinear(stream []*Message, uf *unionFind, active map[rules.PairKey]int, merges *int) {
	for i, mi := range stream {
		deadline := mi.Time.Add(g.cfg.RuleWindow)
		scanned := 0
		for j := i + 1; j < len(stream) && scanned < g.cfg.MaxScan; j++ {
			mj := stream[j]
			if mj.Time.After(deadline) {
				break
			}
			scanned++
			if !g.ruleMatch(mi, mj) {
				continue
			}
			if uf.union(mi.Seq, mj.Seq) {
				*merges++
				active[rulePair(mi.Template, mj.Template)]++
			}
		}
	}
}

// ruleScanIndexed produces ruleScanLinear's exact union sequence from
// per-template position lists. The linear scan for message i examines
// positions (i, min(i+MaxScan, lastInWindow(i))] — the stream is
// time-sorted, so the W deadline is a prefix bound — and only candidates
// whose template rule-pairs with mi's can match, so it suffices to walk
// the position lists of mi's rule partners inside that range, merged back
// into ascending position order.
func (g *Grouper) ruleScanIndexed(stream []*Message, uf *unionFind, active map[rules.PairKey]int, merges *int) {
	byTpl := make(map[int][]int32)
	for i, m := range stream {
		byTpl[m.Template] = append(byTpl[m.Template], int32(i))
	}
	var cands []int32
	jt := 0 // lastInWindow pointer; deadlines are nondecreasing with i
	for i, mi := range stream {
		deadline := mi.Time.Add(g.cfg.RuleWindow)
		if jt < i {
			jt = i
		}
		for jt+1 < len(stream) && !stream[jt+1].Time.After(deadline) {
			jt++
		}
		limit := jt
		if bound := i + g.cfg.MaxScan; bound < limit {
			limit = bound
		}
		if limit <= i {
			continue
		}
		cands = cands[:0]
		for _, q := range g.rb.Partners(mi.Template) {
			if q == mi.Template {
				continue // ruleMatch rejects same-template pairs
			}
			pos := byTpl[q]
			lo := sort.Search(len(pos), func(k int) bool { return pos[k] > int32(i) })
			for ; lo < len(pos) && pos[lo] <= int32(limit); lo++ {
				cands = append(cands, pos[lo])
			}
		}
		if len(cands) > 1 {
			slices.Sort(cands) // ascending position = linear union order
		}
		for _, j := range cands {
			mj := stream[j]
			if !g.ruleMatch(mi, mj) {
				continue
			}
			if uf.union(mi.Seq, mj.Seq) {
				*merges++
				active[rulePair(mi.Template, mj.Template)]++
			}
		}
	}
}

// crossPass merges same-template messages on connected locations of
// different routers within the near-simultaneity window.
func (g *Grouper) crossPass(byTime []*Message, uf *unionFind, merges *int) {
	for i, mi := range byTime {
		deadline := mi.Time.Add(g.cfg.CrossWindow)
		scanned := 0
		for j := i + 1; j < len(byTime) && scanned < g.cfg.MaxScan; j++ {
			mj := byTime[j]
			if mj.Time.After(deadline) {
				break
			}
			scanned++
			if !g.crossPair(mi, mj) {
				continue
			}
			if uf.same(mi.Seq, mj.Seq) {
				continue
			}
			if g.crossLinked(mi, mj) {
				if uf.union(mi.Seq, mj.Seq) {
					*merges++
				}
			}
		}
	}
}

// ruleMatch is the rule-based grouping predicate (§4.2.2): different
// templates connected by a mined association rule on spatially matching
// locations. The window and scan bounds are the caller's job — both the
// batch pass and the incremental engine share this exact pair test.
func (g *Grouper) ruleMatch(mi, mj *Message) bool {
	if mi.Template == mj.Template {
		return false // same-template grouping is pass 1's job
	}
	if !g.rb.HasPair(mi.Template, mj.Template) {
		return false
	}
	return g.dict.SpatialMatch(mi.Loc, mj.Loc)
}

// rulePair canonicalizes a template pair for the ActiveRules tally.
func rulePair(x, y int) rules.PairKey {
	if x > y {
		x, y = y, x
	}
	return rules.PairKey{X: x, Y: y}
}

// crossPair is the cheap structural half of the cross-router predicate
// (§4.2.3): same template, different routers.
func (g *Grouper) crossPair(mi, mj *Message) bool {
	return mi.Template == mj.Template && mi.Router != mj.Router
}

// crossLinked is the topological half: the two locations are connected in
// the dictionary, or either message names the other's router as a peer.
func (g *Grouper) crossLinked(mi, mj *Message) bool {
	return g.dict.Connected(mi.Loc, mj.Loc) || g.peerHinted(mi, mj) || g.peerHinted(mj, mi)
}

// peerHinted reports whether message a explicitly references b's router as
// a peer (e.g. via a BGP neighbor address) — direct evidence of the
// cross-router relation even when locations are router-level.
func (g *Grouper) peerHinted(a, b *Message) bool {
	for _, p := range a.Peers {
		if p == b.Router {
			return true
		}
	}
	return false
}

// finalize converts the union-find into dense, deterministic group ids.
func (g *Grouper) finalize(msgs []Message, uf *unionFind, res *Result) {
	n := len(msgs)
	res.GroupOf = make([]int, n)
	rootToID := make(map[int]int)
	for seq := 0; seq < n; seq++ {
		root := uf.find(seq)
		id, ok := rootToID[root]
		if !ok {
			id = len(res.Groups)
			rootToID[root] = id
			res.Groups = append(res.Groups, nil)
		}
		res.GroupOf[seq] = id
		res.Groups[id] = append(res.Groups[id], seq)
	}
}

// CompressionRatio is #groups / #messages for this result (1 for empty).
func (r *Result) CompressionRatio() float64 {
	if len(r.GroupOf) == 0 {
		return 1
	}
	return float64(len(r.Groups)) / float64(len(r.GroupOf))
}
