// Checkpoint capture and restore for the incremental grouper (PR 6).
//
// The serialized form flattens the pointer-linked live state into index
// space: every reachable Pending gets one dense index, assigned in a
// deterministic traversal order (open groups in closure-list order, then
// the cross-router ring, then each local's model predecessors in LRU
// order, then the rule windows sorted by router), and every other
// structure refers to messages by that index. Restoring replays the
// traversal, so capture(restore(state)) is byte-identical — the golden
// round-trip tests in core pin this.
//
// Two invariants of the live engine make the encoding small:
//
//   - A pending reachable only through a model's last-message pointer or a
//     stale rule-window slot may belong to an already-closed group. Closed
//     groups keep no member list and no identity that any future decision
//     reads (ring expiry runs before any scan can touch such a pending),
//     so those pendings restore as closed singletons instead of carrying
//     the original group partition.
//   - Cross-ring entries are always members of open groups (the cross
//     window is within the closure horizon), so group identity for them is
//     fully recovered from the open-group member lists.
//
// What is NOT serialized: the Grouper predicates and windows (knowledge,
// supplied again at restore via the Shardable), MaxStreams and worker
// counts (runtime knobs), and metrics handles (re-installed by the owner).
package grouping

import (
	"fmt"
	"sort"

	"syslogdigest/internal/checkpoint"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/temporal"
)

// PendingState is one in-flight message. Group membership is not stored
// here; GroupState member lists carry it.
type PendingState struct {
	Seq      int                `json:"seq"`
	TimeNs   int64              `json:"time_ns"`
	Router   string             `json:"router"`
	Template int                `json:"template"`
	Loc      locdict.Location   `json:"loc"`
	AllLocs  []locdict.Location `json:"all_locs"`
	Peers    []string           `json:"peers"`
	Raw      uint64             `json:"raw"`
}

// GroupState is one open group: member indexes in live slice order plus
// the closure timestamp. The two-tier emission fields (PR 9) ride along:
// ID is the stable event identity (0 in snapshots from older builds —
// restore assigns fresh ones), Rev/Pub/Dirty are the revision cursor that
// makes provisional delivery exactly-once across a restore.
type GroupState struct {
	Members []int  `json:"members"`
	LastNs  int64  `json:"last_ns"`
	ID      uint64 `json:"id,omitempty"`
	Rev     int    `json:"rev,omitempty"`
	Pub     bool   `json:"pub,omitempty"`
	Dirty   bool   `json:"dirty,omitempty"`
}

// ProvEntryState is one armed provisional due-time: the open group it
// watches (an index into MergerState.Groups — stale entries are resolved
// and dropped at capture) and when it fires.
type ProvEntryState struct {
	Group int   `json:"group"`
	DueNs int64 `json:"due_ns"`
}

// ActiveRuleState is one (pair, tally) entry of the cumulative rule-merge
// count, flattened from the map in ascending (X, Y) order.
type ActiveRuleState struct {
	X     int `json:"x"`
	Y     int `json:"y"`
	Count int `json:"count"`
}

// MergerState is the global half: partition, closure list, cross ring,
// tallies.
type MergerState struct {
	Started        bool              `json:"started"`
	WatermarkNs    int64             `json:"watermark_ns"`
	Groups         []GroupState      `json:"groups"` // closure-list order, oldest first
	CrossWin       []int             `json:"cross_win"`
	Active         []ActiveRuleState `json:"active"`
	TemporalMerges int               `json:"temporal_merges"`
	RuleMerges     int               `json:"rule_merges"`
	CrossMerges    int               `json:"cross_merges"`
	// CrossCandidates is cumulative like the merge tallies; absent in
	// snapshots from builds before the template index (restores as 0).
	CrossCandidates uint64 `json:"cross_candidates,omitempty"`
	// NextGroupID and ProvQueue are the two-tier emission cursors (PR 9);
	// absent in snapshots from older builds (restore assigns fresh
	// identities and re-arms open groups at the restored watermark).
	NextGroupID uint64           `json:"next_group_id,omitempty"`
	ProvQueue   []ProvEntryState `json:"prov_queue,omitempty"`
}

// ModelState is one live temporal stream: key, EWMA state, and the index
// of its previous message (-1 when none, e.g. after a drain).
type ModelState struct {
	Template int                   `json:"template"`
	LocKey   string                `json:"loc_key"`
	Router   string                `json:"router"`
	Temporal temporal.GrouperState `json:"temporal"`
	Last     int                   `json:"last"`
}

// WindowState is one router's rule window, front first.
type WindowState struct {
	Router  string `json:"router"`
	Members []int  `json:"members"`
}

// LocalState is one RouterLocal: models in least-recently-observed order
// (head first, so restoring in sequence rebuilds the eviction list) and
// rule windows sorted by router.
type LocalState struct {
	Started     bool  `json:"started"`
	WatermarkNs int64 `json:"watermark_ns"`
	Evictions   int   `json:"evictions"`
	// Rule-pass scan tallies, cumulative like Evictions; absent in
	// snapshots from builds before the template index (restore as 0).
	RuleCandidates uint64        `json:"rule_candidates,omitempty"`
	RulePairs      uint64        `json:"rule_pairs,omitempty"`
	Models         []ModelState  `json:"models"`
	Windows        []WindowState `json:"windows"`
}

// IncState is the complete incremental-grouper snapshot: the shared
// pending pool, the merger, and one LocalState per shard.
type IncState struct {
	Pendings []PendingState `json:"pendings"`
	Merger   MergerState    `json:"merger"`
	Locals   []LocalState   `json:"locals"`
}

// pendingIndexer assigns dense indexes to pendings in traversal order.
type pendingIndexer struct {
	idx  map[*Pending]int
	pool []PendingState
}

func (x *pendingIndexer) of(p *Pending) int {
	if i, ok := x.idx[p]; ok {
		return i
	}
	i := len(x.pool)
	x.idx[p] = i
	x.pool = append(x.pool, PendingState{
		Seq:      p.msg.Seq,
		TimeNs:   checkpoint.TimeNs(p.msg.Time),
		Router:   p.msg.Router,
		Template: p.msg.Template,
		Loc:      p.msg.Loc,
		AllLocs:  p.msg.AllLocs,
		Peers:    p.msg.Peers,
		Raw:      p.msg.Raw,
	})
	return i
}

// CaptureParts snapshots a merger and its feeding locals. The caller must
// hold the state quiescent (no concurrent Step/Apply); the sharded engine
// guarantees that with its sync barrier.
func CaptureParts(locals []*RouterLocal, mg *Merger) IncState {
	x := &pendingIndexer{idx: make(map[*Pending]int)}
	st := IncState{Pendings: []PendingState{}}
	st.Merger = captureMerger(x, mg)
	st.Locals = make([]LocalState, len(locals))
	for li, rl := range locals {
		st.Locals[li] = captureLocal(x, rl)
	}
	st.Pendings = x.pool
	return st
}

// captureMerger flattens the global half: open groups in closure-list
// order, then the cross ring, then the tallies.
func captureMerger(x *pendingIndexer, mg *Merger) MergerState {
	ms := MergerState{
		Started:         mg.started,
		WatermarkNs:     checkpoint.TimeNs(mg.watermark),
		Groups:          []GroupState{},
		CrossWin:        []int{},
		Active:          []ActiveRuleState{},
		TemporalMerges:  mg.temporalMerges,
		RuleMerges:      mg.ruleMerges,
		CrossMerges:     mg.crossMerges,
		CrossCandidates: mg.crossCandidates,
		NextGroupID:     mg.nextGroupID,
	}
	gidx := make(map[uint64]int)
	for g := mg.oHead; g != nil; g = g.next {
		gs := GroupState{
			Members: make([]int, len(g.members)),
			LastNs:  checkpoint.TimeNs(g.last),
			ID:      g.id, Rev: g.rev, Pub: g.pub, Dirty: g.dirty,
		}
		for i, m := range g.members {
			gs.Members[i] = x.of(m)
		}
		gidx[g.id] = len(ms.Groups)
		ms.Groups = append(ms.Groups, gs)
	}
	// Live due entries, front first. Stale entries (the group merged away,
	// closed, or its record was recycled under a new identity) resolve to
	// nothing and are dropped — the pop path would skip them anyway.
	for _, e := range mg.provQueue.live() {
		g := e.p.g
		if g == nil || g.id != e.gid || g.closed {
			continue
		}
		ms.ProvQueue = append(ms.ProvQueue, ProvEntryState{
			Group: gidx[g.id], DueNs: checkpoint.TimeNs(e.due),
		})
	}
	for i := 0; i < mg.crossWin.n; i++ {
		ms.CrossWin = append(ms.CrossWin, x.of(mg.crossWin.at(i)))
	}
	pairs := make([]rules.PairKey, 0, len(mg.active))
	for k := range mg.active {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].X != pairs[j].X {
			return pairs[i].X < pairs[j].X
		}
		return pairs[i].Y < pairs[j].Y
	})
	for _, k := range pairs {
		ms.Active = append(ms.Active, ActiveRuleState{X: k.X, Y: k.Y, Count: mg.active[k]})
	}
	return ms
}

// captureLocal flattens one RouterLocal: models in LRU order, windows
// sorted by router.
func captureLocal(x *pendingIndexer, rl *RouterLocal) LocalState {
	ls := LocalState{
		Started:        rl.started,
		WatermarkNs:    checkpoint.TimeNs(rl.watermark),
		Evictions:      rl.evictions,
		RuleCandidates: rl.ruleCandidates,
		RulePairs:      rl.rulePairs,
		Models:         []ModelState{},
		Windows:        []WindowState{},
	}
	for md := rl.mHead; md != nil; md = md.next {
		// The live key holds the Location struct (hot-path economy); the
		// snapshot keeps the canonical Key() string so the format is
		// unchanged from older builds. ParseKey inverts it on restore.
		ms := ModelState{
			Template: md.key.template,
			LocKey:   md.key.loc.Key(),
			Router:   md.router,
			Temporal: md.tg.State(),
			Last:     -1,
		}
		if md.last != nil {
			ms.Last = x.of(md.last)
		}
		ls.Models = append(ls.Models, ms)
	}
	routers := make([]string, 0, len(rl.routerWin))
	for r := range rl.routerWin {
		routers = append(routers, r)
	}
	sort.Strings(routers)
	for _, r := range routers {
		rw := rl.routerWin[r]
		ws := WindowState{Router: r, Members: make([]int, rw.n)}
		for i := 0; i < rw.n; i++ {
			ws.Members[i] = x.of(rw.at(i))
		}
		ls.Windows = append(ls.Windows, ws)
	}
	return ls
}

// State snapshots a single-threaded incremental grouper.
func (inc *Incremental) State() IncState {
	return CaptureParts([]*RouterLocal{inc.local}, inc.merge)
}

// restoreProv rebuilds the two-tier emission cursors: group identities, the
// identity counter, and the armed due queue. Snapshots from older builds
// carry no identities (ID 0 everywhere) — fresh ones are assigned in
// closure-list order; and when the restoring engine runs the provisional
// tier, any unpublished or dirty group left without an armed entry (an old
// snapshot, or one taken with the tier off) is re-armed at the restored
// watermark, so it still publishes instead of staying silent until close.
func restoreProv(mg *Merger, ms MergerState, groups []*incGroup) error {
	next := ms.NextGroupID
	if next == 0 {
		next = 1
	}
	for _, g := range groups {
		if g.id == 0 {
			g.id = next
			next++
		} else if g.id >= next {
			next = g.id + 1
		}
	}
	mg.nextGroupID = next
	armed := make(map[*incGroup]bool)
	if mg.provHorizon > 0 {
		for qi, es := range ms.ProvQueue {
			if es.Group < 0 || es.Group >= len(groups) {
				return fmt.Errorf("grouping: restore: prov entry %d group %d out of range [0, %d)", qi, es.Group, len(groups))
			}
			g := groups[es.Group]
			p := g.members[0]
			p.ref() // due-queue reference
			mg.provQueue.push(provEntry{p: p, gid: g.id, due: checkpoint.NsTime(es.DueNs)})
			armed[g] = true
		}
		for _, g := range groups {
			if !armed[g] && (!g.pub || g.dirty) {
				mg.armProv(g)
			}
		}
	}
	return nil
}

// RestoreParts rebuilds the two halves from a snapshot. workers is the
// number of RouterLocals wanted; localMax caps each one's model table
// (<= 0: the Shardable bound). When the snapshot's shard count matches
// workers, every local restores exactly (bounds, eviction order, per-shard
// watermarks — byte-stable round trip). Otherwise the models and windows
// are resharded through shardFor (router → shard; nil is allowed only for
// workers == 1): outputs stay identical as long as the model tables remain
// within bounds — the LRU interleaving is the one thing a reshard cannot
// reconstruct, exactly the approximation sharding itself already makes.
func (s *Shardable) RestoreParts(st IncState, workers, localMax int, shardFor func(string) int) ([]*RouterLocal, *Merger, error) {
	if workers < 1 {
		return nil, nil, fmt.Errorf("grouping: restore needs >= 1 worker, got %d", workers)
	}
	if shardFor == nil {
		if workers > 1 {
			return nil, nil, fmt.Errorf("grouping: restore across %d workers needs a shard function", workers)
		}
		shardFor = func(string) int { return 0 }
	}

	// Materialize the pendings. NewPending records are GC-managed (no pool
	// owner): checkpoint state is pool-independent, so a restored engine
	// simply refills its pool with fresh records as these retire — no
	// record crosses a restore. Each starts with one materialization
	// reference; the incorporation passes below add the structural
	// references the live engine would hold (group membership, model
	// last-message, ring slots), and the final loop drops the
	// materialization reference, leaving exactly the live counts.
	ps := materializePendings(st.Pendings)
	at := indexAccessor(ps)

	// Merger: groups in closure-list order, cross ring, tallies.
	mg := s.NewMerger()
	mg.started = st.Merger.Started
	mg.watermark = checkpoint.NsTime(st.Merger.WatermarkNs)
	mg.temporalMerges = st.Merger.TemporalMerges
	mg.ruleMerges = st.Merger.RuleMerges
	mg.crossMerges = st.Merger.CrossMerges
	mg.crossCandidates = st.Merger.CrossCandidates
	groups := make([]*incGroup, len(st.Merger.Groups))
	for gi, gs := range st.Merger.Groups {
		if len(gs.Members) == 0 {
			return nil, nil, fmt.Errorf("grouping: restore: group %d has no members", gi)
		}
		first, err := at(gs.Members[0])
		if err != nil {
			return nil, nil, err
		}
		g := &first.grp
		if len(gs.Members) <= len(g.inline) {
			g.members = g.inline[:0]
		} else {
			g.members = make([]*Pending, 0, len(gs.Members))
		}
		for _, mi := range gs.Members {
			p, err := at(mi)
			if err != nil {
				return nil, nil, err
			}
			if p.g != nil {
				return nil, nil, fmt.Errorf("grouping: restore: pending %d in more than one group", mi)
			}
			p.g = g
			p.ref() // group membership reference
			g.members = append(g.members, p)
		}
		g.last = checkpoint.NsTime(gs.LastNs)
		g.id, g.rev, g.pub, g.dirty = gs.ID, gs.Rev, gs.Pub, gs.Dirty
		groups[gi] = g
		mg.pushOpen(g)
		mg.openGroups++
		mg.openMsgs += len(g.members)
	}
	if err := restoreProv(mg, st.Merger, groups); err != nil {
		return nil, nil, err
	}
	for _, ci := range st.Merger.CrossWin {
		p, err := at(ci)
		if err != nil {
			return nil, nil, err
		}
		mg.crossWin.push(p)
	}
	for _, a := range st.Merger.Active {
		mg.active[rules.PairKey{X: a.X, Y: a.Y}] = a.Count
	}

	// Pendings outside every open group were members of already-closed
	// groups; a closed singleton is behaviorally identical (see the file
	// comment) and needs no shared identity.
	for _, p := range ps {
		if p.g == nil {
			p.grp.closed = true
			p.g = &p.grp
		}
	}

	// Locals. Exact restore when the shard count matches; reshard by
	// router otherwise.
	locals := make([]*RouterLocal, workers)
	for i := range locals {
		locals[i] = s.NewLocal(localMax)
	}
	exact := len(st.Locals) == workers
	targetFor := func(li int, router string) (*RouterLocal, error) {
		if exact {
			return locals[li], nil
		}
		sh := shardFor(router)
		if sh < 0 || sh >= workers {
			return nil, fmt.Errorf("grouping: restore: shard %d for router %q out of range", sh, router)
		}
		return locals[sh], nil
	}
	for li, lst := range st.Locals {
		for _, ms := range lst.Models {
			target, err := targetFor(li, ms.Router)
			if err != nil {
				return nil, nil, err
			}
			if err := s.restoreModel(target, ms, at); err != nil {
				return nil, nil, err
			}
		}
		for _, ws := range lst.Windows {
			target, err := targetFor(li, ws.Router)
			if err != nil {
				return nil, nil, err
			}
			if err := restoreWindow(target, ws, at); err != nil {
				return nil, nil, err
			}
		}
	}
	if exact {
		for i, lst := range st.Locals {
			locals[i].started = lst.Started
			locals[i].watermark = checkpoint.NsTime(lst.WatermarkNs)
			locals[i].evictions = lst.Evictions
			locals[i].ruleCandidates = lst.RuleCandidates
			locals[i].rulePairs = lst.RulePairs
		}
	} else {
		for _, rl := range locals {
			rl.started = mg.started
			rl.watermark = mg.watermark
		}
	}
	// Incorporation complete: drop the materialization references so every
	// record carries exactly the references the live engine would hold.
	// (Ring pushes above took their own slot references.)
	for _, p := range ps {
		p.unref()
	}
	// An over-full model table (restore with a smaller bound) trims on the
	// next insert; trimming here would skew the eviction counter for exact
	// restores.
	return locals, mg, nil
}

// materializePendings rebuilds the in-flight records of a snapshot. Each
// record is GC-managed and starts with one materialization reference (see
// RestoreParts); callers drop it once incorporation is complete.
func materializePendings(sts []PendingState) []*Pending {
	ps := make([]*Pending, len(sts))
	for i, pst := range sts {
		ps[i] = NewPending(Message{
			Seq:      pst.Seq,
			Time:     checkpoint.NsTime(pst.TimeNs),
			Router:   pst.Router,
			Template: pst.Template,
			Loc:      pst.Loc,
			AllLocs:  pst.AllLocs,
			Peers:    pst.Peers,
			Raw:      pst.Raw,
		})
	}
	return ps
}

// indexAccessor is the bounds-checked snapshot-index → record lookup every
// restore pass shares.
func indexAccessor(ps []*Pending) func(int) (*Pending, error) {
	return func(i int) (*Pending, error) {
		if i < 0 || i >= len(ps) {
			return nil, fmt.Errorf("grouping: restore: pending index %d out of range [0, %d)", i, len(ps))
		}
		return ps[i], nil
	}
}

// restoreModel rebuilds one temporal stream into rl.
func (s *Shardable) restoreModel(rl *RouterLocal, ms ModelState, at func(int) (*Pending, error)) error {
	loc, err := locdict.ParseKey(ms.Router, ms.LocKey)
	if err != nil {
		return fmt.Errorf("grouping: restore: %w", err)
	}
	key := modelKey{template: ms.Template, loc: loc}
	if rl.models[key] != nil {
		return fmt.Errorf("grouping: restore: duplicate model %d/%q", ms.Template, ms.LocKey)
	}
	tg, err := temporal.RestoreGrouper(s.g.cfg.Temporal, ms.Temporal)
	if err != nil {
		return err
	}
	md := &model{key: key, router: ms.Router, tg: tg}
	if ms.Last >= 0 {
		p, err := at(ms.Last)
		if err != nil {
			return err
		}
		p.ref() // model last-message reference
		md.last = p
	}
	rl.models[key] = md
	rl.pushModel(md)
	return nil
}

// restoreWindow rebuilds one router's rule window into rl.
func restoreWindow(rl *RouterLocal, ws WindowState, at func(int) (*Pending, error)) error {
	if rl.routerWin[ws.Router] != nil {
		return fmt.Errorf("grouping: restore: duplicate window for router %q", ws.Router)
	}
	rw := &memberRing{}
	for _, wi := range ws.Members {
		p, err := at(wi)
		if err != nil {
			return err
		}
		rw.push(p)
	}
	rl.routerWin[ws.Router] = rw
	return nil
}

// RestoreIncremental rebuilds a single-threaded incremental grouper from a
// snapshot taken at any worker count.
func RestoreIncremental(dict *locdict.Dictionary, rb *rules.RuleBase, cfg IncrementalConfig, st IncState) (*Incremental, error) {
	s, err := NewShardable(dict, rb, cfg)
	if err != nil {
		return nil, err
	}
	locals, mg, err := s.RestoreParts(st, 1, 0, nil)
	if err != nil {
		return nil, err
	}
	return &Incremental{local: locals[0], merge: mg, pool: s.Pool()}, nil
}
