// Single-shard snapshots for cluster mode (PR 10).
//
// A remote shard process holds one RouterLocal and nothing else: no merger,
// no shared pending pool. LocalPartState is therefore a *self-contained*
// snapshot of one local — its own dense pending table plus the LocalState
// that indexes into it — so it can cross a process boundary alone. The
// traversal order inside one local (models in LRU order, then windows
// sorted by router) is exactly the order CaptureParts uses, which is what
// lets CaptureRemoteParts stitch per-shard snapshots back into an IncState
// byte-identical to an in-process CaptureParts of the same logical state.
package grouping

import (
	"fmt"

	"syslogdigest/internal/checkpoint"
)

// LocalPartState is a self-contained snapshot of one RouterLocal: a private
// pending table plus the local structure referring into it. JSON-encodable
// (it reuses the checkpoint types), dictionary-free.
type LocalPartState struct {
	Pendings []PendingState `json:"pendings"`
	Local    LocalState     `json:"local"`
}

// CaptureLocal snapshots one RouterLocal into a self-contained part. The
// caller must hold the local quiescent (no concurrent Step).
func CaptureLocal(rl *RouterLocal) LocalPartState {
	x := &pendingIndexer{idx: make(map[*Pending]int)}
	ls := captureLocal(x, rl)
	return LocalPartState{Pendings: x.pool, Local: ls}
}

// RestoreLocal rebuilds one RouterLocal from a self-contained part.
// maxStreams caps the model table (<= 0: the Shardable bound). The restored
// records are GC-managed and carry no group identity — a remote local never
// reads group state, so every record restores as a closed singleton.
func (s *Shardable) RestoreLocal(st LocalPartState, maxStreams int) (*RouterLocal, error) {
	ps := materializePendings(st.Pendings)
	for _, p := range ps {
		p.grp.closed = true
		p.g = &p.grp
	}
	at := indexAccessor(ps)
	rl := s.NewLocal(maxStreams)
	for _, ms := range st.Local.Models {
		if err := s.restoreModel(rl, ms, at); err != nil {
			return nil, err
		}
	}
	for _, ws := range st.Local.Windows {
		if err := restoreWindow(rl, ws, at); err != nil {
			return nil, err
		}
	}
	rl.started = st.Local.Started
	rl.watermark = checkpoint.NsTime(st.Local.WatermarkNs)
	rl.evictions = st.Local.Evictions
	rl.ruleCandidates = st.Local.RuleCandidates
	rl.rulePairs = st.Local.RulePairs
	for _, p := range ps {
		p.unref() // drop the materialization reference (see RestoreParts)
	}
	return rl, nil
}

// CaptureRemoteParts stitches a local merger and per-shard remote snapshots
// into one IncState. The result is byte-identical to what CaptureParts
// would produce on an in-process engine in the same logical state: the
// merger traversal assigns the first indexes, and each part's records are
// matched to already-indexed pendings by Seq (sequence numbers are unique
// for the life of an engine) or appended in the part's own traversal order
// — the same order CaptureParts visits them in.
func CaptureRemoteParts(mg *Merger, parts []LocalPartState) (IncState, error) {
	x := &pendingIndexer{idx: make(map[*Pending]int)}
	st := IncState{Pendings: []PendingState{}}
	st.Merger = captureMerger(x, mg)
	bySeq := make(map[int]int, len(x.pool))
	for i := range x.pool {
		bySeq[x.pool[i].Seq] = i
	}
	st.Locals = make([]LocalState, len(parts))
	for li, part := range parts {
		seen := make([]int, len(part.Pendings))
		for i := range seen {
			seen[i] = -1
		}
		global := func(idx int) (int, error) {
			if idx < 0 || idx >= len(part.Pendings) {
				return 0, fmt.Errorf("grouping: remote capture: shard %d pending index %d out of range [0, %d)",
					li, idx, len(part.Pendings))
			}
			if g := seen[idx]; g >= 0 {
				return g, nil
			}
			ps := part.Pendings[idx]
			g, ok := bySeq[ps.Seq]
			if !ok {
				g = len(x.pool)
				x.pool = append(x.pool, ps)
				bySeq[ps.Seq] = g
			}
			seen[idx] = g
			return g, nil
		}
		ls := part.Local
		ls.Models = make([]ModelState, len(part.Local.Models))
		for i, ms := range part.Local.Models {
			if ms.Last >= 0 {
				g, err := global(ms.Last)
				if err != nil {
					return IncState{}, err
				}
				ms.Last = g
			}
			ls.Models[i] = ms
		}
		ls.Windows = make([]WindowState, len(part.Local.Windows))
		for i, ws := range part.Local.Windows {
			members := make([]int, len(ws.Members))
			for j, wi := range ws.Members {
				g, err := global(wi)
				if err != nil {
					return IncState{}, err
				}
				members[j] = g
			}
			ws.Members = members
			ls.Windows[i] = ws
		}
		st.Locals[li] = ls
	}
	st.Pendings = x.pool
	return st, nil
}

// Release drops the caller's pipeline reference. A remote shard host steps
// a record through its RouterLocal and then has no Merger to consume the
// reference the way Apply does; releasing it leaves exactly the structural
// references the local holds (model last-message, ring slots), so pooled
// records recycle once those expire.
func (p *Pending) Release() { p.unref() }

// EachOpenPending visits every member of every open group, in closure-list
// then member order. The cluster merge loop uses it to rebuild its
// Seq-resolution table after a restore: the closure-horizon invariant (see
// pool.go) guarantees any join decision still in flight references a member
// of a still-open group.
func (mg *Merger) EachOpenPending(f func(*Pending)) {
	for g := mg.oHead; g != nil; g = g.next {
		for _, m := range g.members {
			f(m)
		}
	}
}
