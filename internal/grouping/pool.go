// Pending recycling: the steady-state streaming path creates one Pending
// per message and drops it once its group closes and every window slot that
// referenced it has expired. Allocating (and GC-scanning) those records was
// the single largest cost of the sharded engine (see EXPERIMENTS.md, PR 8);
// this file recycles them through a reference-counted pool instead.
//
// Ownership protocol — who holds a reference to a Pending:
//
//   - the pipeline: Get returns a record with one reference, consumed by
//     Merger.Apply (Apply takes ownership of the caller's reference);
//   - its group: +1 while the record sits on an open group's member list,
//     released by closeGroup;
//   - its temporal model: +1 while it is a stream's last-message pointer,
//     released on overwrite, eviction, or DrainWindows;
//   - each window ring slot (rule windows, cross ring): +1 per slot,
//     released by popFront.
//
// A join decision (Joins.Temporal, Joins.Rules) deliberately carries no
// reference of its own: the closure-horizon invariant guarantees the join
// target's group reference outlives every in-flight decision that names it
// (a decision pairs messages at most horizon apart, and a group only closes
// once the watermark passes its newest member by more than the horizon), so
// the group reference already pins the record. The counts are atomic
// because the sharded engine releases model and rule-ring references on
// shard goroutines while the merge goroutine releases group and cross-ring
// references.
//
// Pools are runtime plumbing only: they are never serialized (checkpoint
// state is pool-independent), and records restored from a checkpoint are
// plain GC-managed allocations (owner == nil) — a restored engine refills
// its pool with fresh records as the restored ones retire, so no record
// ever crosses a restore.
package grouping

import (
	"sync"
	"sync/atomic"

	"syslogdigest/internal/obs"
)

// PendingPool recycles Pending records for one engine. Safe for concurrent
// use (the sharded engine's shard and merge goroutines share it). The zero
// value is not usable; engines get one from their Shardable.
type PendingPool struct {
	pool sync.Pool
	live atomic.Int64

	gets *obs.Counter // stream.pool.pending.gets
	puts *obs.Counter // stream.pool.pending.puts
	met  *obs.Gauge   // stream.pool.pending.live
}

// PoolMetrics are a pool's optional observability handles (nil-safe).
type PoolMetrics struct {
	Gets *obs.Counter // stream.pool.pending.gets
	Puts *obs.Counter // stream.pool.pending.puts
	Live *obs.Gauge   // stream.pool.pending.live
}

func newPendingPool() *PendingPool {
	pp := &PendingPool{}
	pp.pool.New = func() any { return new(Pending) }
	return pp
}

// SetMetrics installs observability handles. Install before the first Get;
// the handles are read from pool operations on multiple goroutines.
func (pp *PendingPool) SetMetrics(m PoolMetrics) {
	pp.gets, pp.puts, pp.met = m.Gets, m.Puts, m.Live
}

// Get acquires a recycled (or fresh) record wrapping m, holding one
// pipeline reference.
func (pp *PendingPool) Get(m Message) *Pending {
	p := pp.pool.Get().(*Pending)
	p.msg = m
	p.refs.Store(1)
	p.owner = pp
	pp.live.Add(1)
	pp.gets.Inc()
	return p
}

// put returns a fully released record. The message and group pointer are
// cleared; grp is deliberately left alone — the record's last reference is
// often dropped by closeGroup while it is still iterating a member list
// backed by this record's grp.inline array, so zeroing it here would pull
// the backing out from under the caller. Apply resets the stale grp fields
// when the record starts its next life (stale inline pointers only pin
// other pooled records, which the pool keeps alive anyway).
func (pp *PendingPool) put(p *Pending) {
	p.msg = Message{}
	p.g = nil
	p.owner = nil
	pp.live.Add(-1)
	pp.puts.Inc()
	pp.pool.Put(p)
}

// Live is the number of records handed out and not yet returned.
func (pp *PendingPool) Live() int64 { return pp.live.Load() }

// PublishLive refreshes the live gauge; engines call it at quiet points
// (the counters are live, the gauge is sampled).
func (pp *PendingPool) PublishLive() { pp.met.Set(float64(pp.live.Load())) }

// ref adds one reference.
func (p *Pending) ref() { p.refs.Add(1) }

// unref drops one reference; the last drop returns a pooled record to its
// pool. Records built by NewPending (tests, checkpoint restore) have no
// owner and are left to the GC.
func (p *Pending) unref() {
	if p.refs.Add(-1) == 0 && p.owner != nil {
		p.owner.put(p)
	}
}
