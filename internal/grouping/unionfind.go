package grouping

// unionFind is a classic disjoint-set forest with path compression and
// union by rank.
type unionFind struct {
	parent []int
	rank   []byte
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]byte, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether a merge happened.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// same reports whether a and b are in one set.
func (u *unionFind) same(a, b int) bool { return u.find(a) == u.find(b) }
