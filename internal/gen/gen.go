// Package gen is the workload substrate of this reproduction: a seeded
// simulator of the two operational networks the paper studies.
//
// The paper's datasets — months of router syslog from a tier-1 ISP backbone
// (dataset A) and a commercial IPTV backbone (dataset B) — are proprietary.
// What SyslogDigest actually consumes from them, though, is structure:
// vendor-shaped message text, co-occurrence of templates triggered by one
// network condition, timer-driven periodicities, and cross-router symmetry
// at link/session/path endpoints. The simulator reproduces exactly those
// properties on a generated topology (netconf): network conditions arrive
// as Poisson processes, and each condition emits the correlated,
// vendor-correct message bursts a real incident would (link-flap episodes
// with line-protocol and routing-protocol fallout, controller instability,
// BGP session flaps, CPU threshold pairs, timer-driven TCP bad-auth chatter,
// scan noise, and — for dataset B — the §6.1 PIM dual-failure scenario with
// its five-minute secondary-path retry timer).
//
// Alongside the message stream the simulator records ground-truth Condition
// records, which downstream substrates (trouble tickets, evaluation) use as
// the oracle the paper obtained from operations personnel.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"syslogdigest/internal/netconf"
	"syslogdigest/internal/syslogmsg"
)

// DatasetKind selects which of the paper's two networks to simulate.
type DatasetKind int

const (
	// DatasetA is the tier-1 ISP backbone (vendor V1 syntax).
	DatasetA DatasetKind = iota
	// DatasetB is the IPTV backbone (vendor V2 syntax).
	DatasetB
)

// String names the dataset as the paper does.
func (k DatasetKind) String() string {
	if k == DatasetB {
		return "B"
	}
	return "A"
}

// Rates are expected condition counts per simulated day for the whole
// network. Zero values take kind-specific defaults.
type Rates struct {
	LinkFlap    float64 // flapping-link episodes
	Controller  float64 // controller instability episodes (A only)
	BGPFlap     float64 // BGP session flap episodes
	CPUSpike    float64 // CPU threshold crossings
	PeriodicMsg float64 // timer-driven message episodes (TCP bad auth / login scans)
	Noise       float64 // singleton noise messages (ACL denies, SAP updates)
	Config      float64 // configuration-change messages
	EnvAlarm    float64 // environmental/hardware alarms
	TunnelFlap  float64 // LSP/tunnel flaps
	PIMFailure  float64 // PIM dual-failure scenarios (B only)
}

func defaultRates(kind DatasetKind) Rates {
	if kind == DatasetB {
		return Rates{
			LinkFlap:    10,
			BGPFlap:     5,
			CPUSpike:    6,
			PeriodicMsg: 3,
			Noise:       15,
			Config:      5,
			EnvAlarm:    2,
			TunnelFlap:  4,
			PIMFailure:  1,
		}
	}
	return Rates{
		LinkFlap:    10,
		Controller:  3,
		BGPFlap:     8,
		CPUSpike:    12,
		PeriodicMsg: 3,
		Noise:       20,
		Config:      10,
		EnvAlarm:    5,
		TunnelFlap:  6,
	}
}

func (r Rates) withDefaults(kind DatasetKind) Rates {
	d := defaultRates(kind)
	pick := func(v, dv float64) float64 {
		if v == 0 {
			return dv
		}
		if v < 0 { // explicit "off"
			return 0
		}
		return v
	}
	return Rates{
		LinkFlap:    pick(r.LinkFlap, d.LinkFlap),
		Controller:  pick(r.Controller, d.Controller),
		BGPFlap:     pick(r.BGPFlap, d.BGPFlap),
		CPUSpike:    pick(r.CPUSpike, d.CPUSpike),
		PeriodicMsg: pick(r.PeriodicMsg, d.PeriodicMsg),
		Noise:       pick(r.Noise, d.Noise),
		Config:      pick(r.Config, d.Config),
		EnvAlarm:    pick(r.EnvAlarm, d.EnvAlarm),
		TunnelFlap:  pick(r.TunnelFlap, d.TunnelFlap),
		PIMFailure:  pick(r.PIMFailure, d.PIMFailure),
	}
}

// Spec describes one dataset to generate.
type Spec struct {
	Kind      DatasetKind
	Routers   int // default 60
	Seed      int64
	Start     time.Time     // default 2009-09-01 00:00:00 UTC
	Duration  time.Duration // default 24h
	RateScale float64       // multiplies all rates; default 1
	Rates     Rates
}

func (s Spec) normalize() Spec {
	if s.Routers == 0 {
		s.Routers = 60
	}
	if s.Start.IsZero() {
		s.Start = time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	if s.Duration == 0 {
		s.Duration = 24 * time.Hour
	}
	if s.RateScale == 0 {
		s.RateScale = 1
	}
	s.Rates = s.Rates.withDefaults(s.Kind)
	return s
}

// Condition is one ground-truth network condition and its footprint.
type Condition struct {
	Kind     string
	Start    time.Time
	End      time.Time
	Routers  []string
	Detail   string
	Region   string
	Messages int
}

// Dataset is a generated corpus: the network, the time-sorted message
// stream, and the ground-truth conditions that produced it.
type Dataset struct {
	Spec       Spec
	Net        *netconf.Network
	Messages   []syslogmsg.Message
	Conditions []Condition
}

// sim carries generation state.
type sim struct {
	spec Spec
	net  *netconf.Network
	rng  *rand.Rand
	msgs []syslogmsg.Message
	cond []Condition
	cur  int // index of the condition being emitted, -1 for none
}

// Generate builds a dataset. Same spec, same output.
func Generate(spec Spec) (*Dataset, error) {
	spec = spec.normalize()
	if spec.Routers < 4 {
		return nil, fmt.Errorf("gen: need at least 4 routers, got %d", spec.Routers)
	}
	vendor := syslogmsg.VendorV1
	prefix := "ar"
	mlFrac := 0.15
	tunnels := 0
	if spec.Kind == DatasetB {
		vendor = syslogmsg.VendorV2
		prefix = "br"
		mlFrac = 0.1
		tunnels = spec.Routers / 4
		if tunnels < 2 {
			tunnels = 2
		}
	}
	net, err := netconf.Generate(netconf.Spec{
		NamePrefix:        prefix,
		Vendor:            vendor,
		Routers:           spec.Routers,
		Seed:              spec.Seed,
		MultilinkFraction: mlFrac,
		TunnelPairs:       tunnels,
	})
	if err != nil {
		return nil, fmt.Errorf("gen: topology: %w", err)
	}
	s := &sim{spec: spec, net: net, rng: rand.New(rand.NewSource(spec.Seed ^ 0x5d1910c9)), cur: -1}

	days := spec.Duration.Hours() / 24
	type scenario struct {
		rate float64
		run  func(t time.Time)
	}
	var scenarios []scenario
	if spec.Kind == DatasetA {
		scenarios = []scenario{
			{spec.Rates.LinkFlap, s.linkFlapA},
			{spec.Rates.Controller, s.controllerInstability},
			{spec.Rates.BGPFlap, s.bgpFlapA},
			{spec.Rates.CPUSpike, s.cpuSpikeA},
			{spec.Rates.PeriodicMsg, s.tcpBadAuthA},
			{spec.Rates.Noise, s.scanNoiseA},
			{spec.Rates.Config, s.configChangeA},
			{spec.Rates.EnvAlarm, s.envAlarmA},
			{spec.Rates.TunnelFlap, s.lspFlapA},
		}
	} else {
		scenarios = []scenario{
			{spec.Rates.LinkFlap, s.linkFlapB},
			{spec.Rates.BGPFlap, s.bgpFlapB},
			{spec.Rates.CPUSpike, s.cpuHighB},
			{spec.Rates.PeriodicMsg, s.loginScanB},
			{spec.Rates.Noise, s.sapNoiseB},
			{spec.Rates.Config, s.configChangeB},
			{spec.Rates.EnvAlarm, s.fanFailB},
			{spec.Rates.TunnelFlap, s.tunnelFlapB},
			{spec.Rates.PIMFailure, s.pimDualFailureB},
		}
	}
	for _, sc := range scenarios {
		n := s.poisson(sc.rate * spec.RateScale * days)
		for i := 0; i < n; i++ {
			at := spec.Start.Add(time.Duration(s.rng.Float64() * float64(spec.Duration)))
			sc.run(at.Truncate(time.Second))
		}
	}

	// Sort the merged stream and assign raw indices.
	sort.SliceStable(s.msgs, func(i, j int) bool {
		return syslogmsg.SortByTime(&s.msgs[i], &s.msgs[j])
	})
	for i := range s.msgs {
		s.msgs[i].Index = uint64(i)
	}
	sort.SliceStable(s.cond, func(i, j int) bool { return s.cond[i].Start.Before(s.cond[j].Start) })

	return &Dataset{Spec: spec, Net: net, Messages: s.msgs, Conditions: s.cond}, nil
}

// poisson draws a Poisson variate: Knuth's method for modest rates, a
// normal approximation above it. The switch matters beyond accuracy —
// Knuth's product of uniforms underflows to zero near λ ≈ 745, silently
// capping every larger draw at ~745, which is exactly the regime storm
// corpora ask for. The threshold is far above every rate the standard
// profiles produce, so their byte streams are unchanged.
func (s *sim) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		k := int(math.Round(lambda + math.Sqrt(lambda)*s.rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10_000_000 {
			return k // safety net; unreachable below the λ threshold
		}
	}
}

// beginCondition opens a ground-truth record; emits attribute to it until
// endCondition.
func (s *sim) beginCondition(kind string, start time.Time, routers []string, detail string) {
	region := ""
	if len(routers) > 0 {
		if cfg := s.net.Router(routers[0]); cfg != nil {
			region = cfg.Region
		}
	}
	s.cond = append(s.cond, Condition{
		Kind: kind, Start: start, End: start,
		Routers: append([]string(nil), routers...),
		Detail:  detail, Region: region,
	})
	s.cur = len(s.cond) - 1
}

func (s *sim) endCondition() { s.cur = -1 }

// emit appends one message (time truncated to the syslog's one-second
// granularity) and accounts it to the open condition.
func (s *sim) emit(t time.Time, router, code, detail string) {
	t = t.Truncate(time.Second)
	s.msgs = append(s.msgs, syslogmsg.Message{
		Time: t, Router: router, Code: code, Detail: detail,
	})
	if s.cur >= 0 {
		c := &s.cond[s.cur]
		c.Messages++
		if t.After(c.End) {
			c.End = t
		}
		if t.Before(c.Start) {
			c.Start = t
		}
	}
}

// Helpers shared by scenarios.

// randLink picks a random link; ok is false when the network has none.
func (s *sim) randLink() (netconf.Link, bool) {
	if len(s.net.Links) == 0 {
		return netconf.Link{}, false
	}
	return s.net.Links[s.rng.Intn(len(s.net.Links))], true
}

func (s *sim) randSession() (netconf.Session, bool) {
	if len(s.net.Sessions) == 0 {
		return netconf.Session{}, false
	}
	return s.net.Sessions[s.rng.Intn(len(s.net.Sessions))], true
}

func (s *sim) randRouter() *netconf.Config {
	return s.net.Configs[s.rng.Intn(len(s.net.Configs))]
}

// hotRouter returns a router from the "hot" quarter of the network.
// Recurring per-router conditions (CPU pressure, probes) concentrate on a
// subset in practice, which is what gives their signatures a meaningful
// per-router history frequency for scoring.
func (s *sim) hotRouter() *netconf.Config {
	n := len(s.net.Configs) / 4
	if n < 2 {
		n = 2
	}
	return s.net.Configs[s.rng.Intn(n)]
}

// jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (s *sim) jitter(d time.Duration, f float64) time.Duration {
	scale := 1 + (s.rng.Float64()*2-1)*f
	return time.Duration(float64(d) * scale)
}

// between returns a uniform duration in [lo, hi).
func (s *sim) between(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(s.rng.Int63n(int64(hi-lo)))
}

// scannerIP fabricates an external (never configured) address.
func (s *sim) scannerIP() string {
	return fmt.Sprintf("203.0.113.%d", 1+s.rng.Intn(250))
}

func (s *sim) loopbackIP(router string) string {
	if cfg := s.net.Router(router); cfg != nil {
		if lb := cfg.Loopback(); lb != nil {
			return lb.IP
		}
	}
	return "0.0.0.0"
}
