package gen

import (
	"fmt"
	"time"
)

// Dataset B scenarios: vendor V2, IPTV backbone.

// linkFlapB is the V2 flavor of a flapping link: SNMP linkDown/linkup on
// both ends with SVCMGR SAP-update fallout one second later.
func (s *sim) linkFlapB(start time.Time) {
	link, ok := s.randLink()
	if !ok {
		return
	}
	s.beginCondition("link-flap", start, []string{link.A, link.B}, link.AIntf)
	defer s.endCondition()

	duration := s.between(30*time.Minute, 4*time.Hour)
	period := s.between(10*time.Second, 40*time.Second)
	// Each transition updates every SAP riding the port; IPTV ports carry
	// several, so one flap fans out into a burst of SVCMGR messages.
	saps := 2 + s.rng.Intn(4)
	lbA, lbB := s.loopbackIP(link.A), s.loopbackIP(link.B)
	end := start.Add(duration)
	for t := start; t.Before(end); {
		s.emit(t, link.A, "SNMP-WARNING-linkDown", fmt.Sprintf("Interface %s is not operational", link.AIntf))
		s.emit(t, link.B, "SNMP-WARNING-linkDown", fmt.Sprintf("Interface %s is not operational", link.BIntf))
		for k := 0; k < saps; k++ {
			s.emit(t.Add(time.Second), link.A, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
				fmt.Sprintf("The status of all affected SAPs on port %s has been updated", link.AIntf))
			s.emit(t.Add(time.Second), link.B, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
				fmt.Sprintf("The status of all affected SAPs on port %s has been updated", link.BIntf))
		}
		upAt := t.Add(s.between(3*time.Second, 30*time.Second))
		// Outages outlasting the BGP hold timer tear down the session over
		// the link: router-scope messages on both ends (~90-120s in).
		if s.rng.Float64() < 0.15 {
			upAt = t.Add(s.between(95*time.Second, 240*time.Second))
			bgpAt := t.Add(s.between(90*time.Second, 120*time.Second))
			vrf := s.randVRF()
			s.emit(bgpAt, link.A, "BGP-WARNING-bgpPeerDown",
				fmt.Sprintf("BGP peer %s vrf %s moved from established to idle", lbB, vrf))
			s.emit(bgpAt, link.B, "BGP-WARNING-bgpPeerDown",
				fmt.Sprintf("BGP peer %s vrf %s moved from established to idle", lbA, vrf))
			s.emit(upAt.Add(s.between(30*time.Second, 90*time.Second)), link.A, "BGP-WARNING-bgpPeerUp",
				fmt.Sprintf("BGP peer %s vrf %s moved to established", lbB, vrf))
			s.emit(upAt.Add(s.between(30*time.Second, 90*time.Second)), link.B, "BGP-WARNING-bgpPeerUp",
				fmt.Sprintf("BGP peer %s vrf %s moved to established", lbA, vrf))
		}
		s.emit(upAt, link.A, "SNMP-WARNING-linkup", fmt.Sprintf("Interface %s is operational", link.AIntf))
		s.emit(upAt, link.B, "SNMP-WARNING-linkup", fmt.Sprintf("Interface %s is operational", link.BIntf))
		s.emit(upAt.Add(time.Second), link.A, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
			fmt.Sprintf("The status of all affected SAPs on port %s has been updated", link.AIntf))
		if s.rng.Float64() < 0.1 {
			s.emit(upAt.Add(2*time.Second), link.A, "SNMP-WARNING-linkup",
				fmt.Sprintf("Interface %s is operational", link.AIntf))
		}
		t = upAt.Add(s.jitter(period, 0.3))
	}
}

// pimDualFailureB reproduces the §6.1 troubleshooting case: the secondary
// path between two multicast-tree neighbors has silently failed and is
// retrying every five minutes; when the primary link later fails, the PIM
// neighbor session — which fast re-route should have protected — drops,
// scattering messages across both endpoints and the secondary path's hop
// router.
func (s *sim) pimDualFailureB(start time.Time) {
	if len(s.net.Paths) == 0 {
		return
	}
	path := s.net.Paths[s.rng.Intn(len(s.net.Paths))]
	routers := append([]string{path.A, path.B}, path.Hops...)
	s.beginCondition("pim-dual-failure", start, routers, path.Name)
	defer s.endCondition()

	lbA, lbB := s.loopbackIP(path.A), s.loopbackIP(path.B)
	// The secondary tunnel has been retrying every 5 minutes since well
	// before the primary failure (several-minutes-apart messages are what
	// made the paper's manual time-window search so hard).
	retryStart := start.Add(-s.between(time.Hour, 2*time.Hour))
	primaryFail := start
	recover := start.Add(s.between(10*time.Minute, 30*time.Minute))
	// Both directions of the secondary tunnel are down, so both endpoints
	// retry on their five-minute timers.
	retry := 1
	for t := retryStart; t.Before(recover); t = t.Add(s.jitter(5*time.Minute, 0.05)) {
		s.emit(t, path.A, "MPLS-MINOR-mplsTunnelRetry", fmt.Sprintf("MPLS tunnel to %s connection retry %d", lbB, retry))
		s.emit(t.Add(2*time.Second), path.B, "MPLS-MINOR-mplsTunnelRetry", fmt.Sprintf("MPLS tunnel to %s connection retry %d", lbA, retry))
		retry++
	}
	s.emit(retryStart, path.A, "MPLS-MINOR-mplsTunnelDown", fmt.Sprintf("MPLS tunnel to %s changed state to down", lbB))
	s.emit(retryStart.Add(time.Second), path.B, "MPLS-MINOR-mplsTunnelDown", fmt.Sprintf("MPLS tunnel to %s changed state to down", lbA))

	// Primary link failure: find the link between the endpoints.
	var aIntf, bIntf string
	for _, lk := range s.net.Links {
		if (lk.A == path.A && lk.B == path.B) || (lk.A == path.B && lk.B == path.A) {
			aIntf, bIntf = lk.AIntf, lk.BIntf
			if lk.A != path.A {
				aIntf, bIntf = lk.BIntf, lk.AIntf
			}
			break
		}
	}
	if aIntf == "" {
		aIntf, bIntf = "1/1/1", "1/1/1"
	}
	s.emit(primaryFail, path.A, "SNMP-WARNING-linkDown", fmt.Sprintf("Interface %s is not operational", aIntf))
	s.emit(primaryFail, path.B, "SNMP-WARNING-linkDown", fmt.Sprintf("Interface %s is not operational", bIntf))
	s.emit(primaryFail.Add(time.Second), path.A, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
		fmt.Sprintf("The status of all affected SAPs on port %s has been updated", aIntf))
	s.emit(primaryFail.Add(time.Second), path.B, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
		fmt.Sprintf("The status of all affected SAPs on port %s has been updated", bIntf))
	// Fast re-route immediately attempts the secondary path and fails:
	// a burst of triggered (non-timer) retries right at the failure. These
	// are the messages that stitch the hours-old retry stream into the
	// incident — they land inside the rule window of the PIM loss.
	for _, off := range []time.Duration{time.Second, 10 * time.Second, 30 * time.Second} {
		s.emit(primaryFail.Add(off), path.A, "MPLS-MINOR-mplsTunnelRetry",
			fmt.Sprintf("MPLS tunnel to %s connection retry %d", lbB, retry))
		s.emit(primaryFail.Add(off+time.Second), path.B, "MPLS-MINOR-mplsTunnelRetry",
			fmt.Sprintf("MPLS tunnel to %s connection retry %d", lbA, retry))
		retry++
	}
	// With both paths dead, PIM notices on both ends, and the multicast
	// SAPs riding the session get reprocessed right after.
	s.emit(primaryFail.Add(2*time.Second), path.A, "PIM-MAJOR-pimNbrLoss",
		fmt.Sprintf("PIM neighbor %s on interface %s lost", lbB, aIntf))
	s.emit(primaryFail.Add(2*time.Second), path.B, "PIM-MAJOR-pimNbrLoss",
		fmt.Sprintf("PIM neighbor %s on interface %s lost", lbA, bIntf))
	s.emit(primaryFail.Add(4*time.Second), path.A, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
		fmt.Sprintf("The status of all affected SAPs on port %s has been updated", aIntf))
	s.emit(primaryFail.Add(4*time.Second), path.B, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
		fmt.Sprintf("The status of all affected SAPs on port %s has been updated", bIntf))
	// The hop router sees transit SAP churn.
	for _, hop := range path.Hops {
		s.emit(primaryFail.Add(3*time.Second), hop, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
			fmt.Sprintf("The status of all affected SAPs on port %s has been updated", "1/1/1"))
	}

	// Recovery: one last triggered retry finally succeeds and the tunnel
	// comes back, followed by the PIM session.
	s.emit(recover, path.A, "SNMP-WARNING-linkup", fmt.Sprintf("Interface %s is operational", aIntf))
	s.emit(recover, path.B, "SNMP-WARNING-linkup", fmt.Sprintf("Interface %s is operational", bIntf))
	s.emit(recover.Add(2*time.Second), path.A, "PIM-MINOR-pimNbrUp",
		fmt.Sprintf("PIM neighbor %s on interface %s established", lbB, aIntf))
	s.emit(recover.Add(2*time.Second), path.B, "PIM-MINOR-pimNbrUp",
		fmt.Sprintf("PIM neighbor %s on interface %s established", lbA, bIntf))
	s.emit(recover.Add(4*time.Second), path.A, "MPLS-MINOR-mplsTunnelRetry",
		fmt.Sprintf("MPLS tunnel to %s connection retry %d", lbB, retry))
	s.emit(recover.Add(4*time.Second), path.B, "MPLS-MINOR-mplsTunnelRetry",
		fmt.Sprintf("MPLS tunnel to %s connection retry %d", lbA, retry))
	s.emit(recover.Add(5*time.Second), path.A, "MPLS-MINOR-mplsTunnelUp",
		fmt.Sprintf("MPLS tunnel to %s changed state to up", lbB))
	s.emit(recover.Add(6*time.Second), path.B, "MPLS-MINOR-mplsTunnelUp",
		fmt.Sprintf("MPLS tunnel to %s changed state to up", lbA))
}

// bgpFlapB bounces one BGP session, V2 style.
func (s *sim) bgpFlapB(start time.Time) {
	sess, ok := s.randSession()
	if !ok {
		return
	}
	s.beginCondition("bgp-flap", start, []string{sess.A, sess.B}, sess.BIP)
	defer s.endCondition()

	vrf := sess.VRF
	if vrf == "" {
		vrf = s.randVRF()
	}
	cycles := 1 + s.rng.Intn(3)
	t := start
	for i := 0; i < cycles; i++ {
		s.emit(t, sess.A, "BGP-WARNING-bgpPeerDown", fmt.Sprintf("BGP peer %s vrf %s moved from established to idle", sess.BIP, vrf))
		s.emit(t, sess.B, "BGP-WARNING-bgpPeerDown", fmt.Sprintf("BGP peer %s vrf %s moved from established to idle", sess.AIP, vrf))
		upAt := t.Add(s.between(time.Minute, 8*time.Minute))
		s.emit(upAt, sess.A, "BGP-WARNING-bgpPeerUp", fmt.Sprintf("BGP peer %s vrf %s moved to established", sess.BIP, vrf))
		s.emit(upAt, sess.B, "BGP-WARNING-bgpPeerUp", fmt.Sprintf("BGP peer %s vrf %s moved to established", sess.AIP, vrf))
		t = upAt.Add(s.between(2*time.Minute, 10*time.Minute))
	}
}

// cpuHighB emits a CPU watermark message, sometimes with a memory sibling.
func (s *sim) cpuHighB(start time.Time) {
	cfg := s.hotRouter()
	s.beginCondition("cpu-high", start, []string{cfg.Hostname}, "cpu")
	defer s.endCondition()
	s.emit(start, cfg.Hostname, "SYSTEM-MINOR-cpuHigh",
		fmt.Sprintf("CPU utilization %d%% exceeds high watermark", 85+s.rng.Intn(14)))
	if s.rng.Float64() < 0.5 {
		s.emit(start.Add(s.between(5*time.Second, 60*time.Second)), cfg.Hostname, "SYSTEM-MINOR-memHigh",
			fmt.Sprintf("Memory utilization %d%% exceeds high watermark", 80+s.rng.Intn(19)))
	}
}

// loginScanB is dataset B's periodic pattern: an ftp login failure followed
// ~35 seconds later by an ssh login failure from the same source, repeating
// on a timer — the origin of the paper's W=30–40s ftp/ssh rule.
func (s *sim) loginScanB(start time.Time) {
	cfg := s.hotRouter()
	s.beginCondition("login-scan", start, []string{cfg.Hostname}, "login probes")
	defer s.endCondition()

	duration := s.between(30*time.Minute, 3*time.Hour)
	period := s.jitter(4*time.Minute, 0.2)
	scanner := s.scannerIP()
	end := start.Add(duration)
	for t := start; t.Before(end); t = t.Add(s.jitter(period, 0.1)) {
		s.emit(t, cfg.Hostname, "SECURITY-WARNING-ftpLoginFail",
			fmt.Sprintf("ftp login failure for user admin from %s", scanner))
		s.emit(t.Add(s.between(30*time.Second, 40*time.Second)), cfg.Hostname, "SECURITY-WARNING-sshLoginFail",
			fmt.Sprintf("ssh login failure for user admin from %s", scanner))
	}
}

// sapNoiseB is a singleton SAP update (operational churn).
func (s *sim) sapNoiseB(start time.Time) {
	cfg := s.randRouter()
	s.beginCondition("sap-noise", start, []string{cfg.Hostname}, "sap churn")
	defer s.endCondition()
	port := "1/1/1"
	if len(cfg.Interfaces) > 1 {
		ifc := cfg.Interfaces[1+s.rng.Intn(len(cfg.Interfaces)-1)]
		if ifc.Name != "system" {
			port = ifc.Name
		}
	}
	s.emit(start, cfg.Hostname, "SVCMGR-MAJOR-sapPortStateChangeProcessed",
		fmt.Sprintf("The status of all affected SAPs on port %s has been updated", port))
}

// configChangeB is a singleton provisioning message.
func (s *sim) configChangeB(start time.Time) {
	cfg := s.hotRouter()
	s.beginCondition("config-change", start, []string{cfg.Hostname}, "config")
	defer s.endCondition()
	s.emit(start, cfg.Hostname, "SYSTEM-MINOR-configChange",
		fmt.Sprintf("Configuration changed by user admin from 10.255.2.%d", 1+s.rng.Intn(250)))
}

// fanFailB is a hardware alarm pair.
func (s *sim) fanFailB(start time.Time) {
	cfg := s.randRouter()
	s.beginCondition("fan-fail", start, []string{cfg.Hostname}, "fan")
	defer s.endCondition()
	tray := 1 + s.rng.Intn(3)
	s.emit(start, cfg.Hostname, "CHASSIS-MAJOR-fanFail", fmt.Sprintf("Fan tray %d failure detected", tray))
	s.emit(start.Add(s.between(time.Minute, time.Hour)), cfg.Hostname, "CHASSIS-MINOR-fanRestore",
		fmt.Sprintf("Fan tray %d restored", tray))
}

// tunnelFlapB bounces a configured secondary tunnel without PIM fallout.
func (s *sim) tunnelFlapB(start time.Time) {
	if len(s.net.Paths) == 0 {
		return
	}
	path := s.net.Paths[s.rng.Intn(len(s.net.Paths))]
	s.beginCondition("tunnel-flap", start, []string{path.A, path.B}, path.Name)
	defer s.endCondition()

	lbA, lbB := s.loopbackIP(path.A), s.loopbackIP(path.B)
	s.emit(start, path.A, "MPLS-MINOR-mplsTunnelDown", fmt.Sprintf("MPLS tunnel to %s changed state to down", lbB))
	s.emit(start.Add(time.Second), path.B, "MPLS-MINOR-mplsTunnelDown", fmt.Sprintf("MPLS tunnel to %s changed state to down", lbA))
	upAt := start.Add(s.between(30*time.Second, 5*time.Minute))
	s.emit(upAt, path.A, "MPLS-MINOR-mplsTunnelUp", fmt.Sprintf("MPLS tunnel to %s changed state to up", lbB))
	s.emit(upAt.Add(time.Second), path.B, "MPLS-MINOR-mplsTunnelUp", fmt.Sprintf("MPLS tunnel to %s changed state to up", lbA))
}
