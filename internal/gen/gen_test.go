package gen

import (
	"testing"
	"time"

	"syslogdigest/internal/locdict"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/template"
)

func smallSpec(kind DatasetKind) Spec {
	return Spec{
		Kind:      kind,
		Routers:   20,
		Seed:      7,
		Duration:  12 * time.Hour,
		RateScale: 0.5,
	}
}

func generate(t *testing.T, spec Spec) *Dataset {
	t.Helper()
	ds, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range []DatasetKind{DatasetA, DatasetB} {
		a := generate(t, smallSpec(kind))
		b := generate(t, smallSpec(kind))
		if len(a.Messages) != len(b.Messages) {
			t.Fatalf("dataset %v: message counts differ: %d vs %d", kind, len(a.Messages), len(b.Messages))
		}
		for i := range a.Messages {
			if a.Messages[i].Format() != b.Messages[i].Format() {
				t.Fatalf("dataset %v: message %d differs", kind, i)
			}
		}
		spec2 := smallSpec(kind)
		spec2.Seed = 8
		c := generate(t, spec2)
		if len(a.Messages) == len(c.Messages) {
			same := true
			for i := range a.Messages {
				if a.Messages[i].Format() != c.Messages[i].Format() {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("dataset %v: different seeds produced identical streams", kind)
			}
		}
	}
}

func TestGenerateSortedAndIndexed(t *testing.T) {
	ds := generate(t, smallSpec(DatasetA))
	if len(ds.Messages) == 0 {
		t.Fatal("no messages generated")
	}
	for i := range ds.Messages {
		if ds.Messages[i].Index != uint64(i) {
			t.Fatalf("message %d has index %d", i, ds.Messages[i].Index)
		}
		if i > 0 && ds.Messages[i].Time.Before(ds.Messages[i-1].Time) {
			t.Fatalf("messages not time-sorted at %d", i)
		}
		if ds.Messages[i].Time.Nanosecond() != 0 {
			t.Fatalf("message %d has sub-second timestamp", i)
		}
	}
}

func TestGenerateVendorCodes(t *testing.T) {
	for _, tc := range []struct {
		kind DatasetKind
		want syslogmsg.Vendor
	}{{DatasetA, syslogmsg.VendorV1}, {DatasetB, syslogmsg.VendorV2}} {
		ds := generate(t, smallSpec(tc.kind))
		for _, m := range ds.Messages {
			ci := syslogmsg.ParseCode(m.Code)
			if ci.Vendor != tc.want {
				t.Fatalf("dataset %v produced %v-vendor code %q", tc.kind, ci.Vendor, m.Code)
			}
		}
	}
}

func TestGenerateMessagesRoundTrip(t *testing.T) {
	ds := generate(t, smallSpec(DatasetB))
	for i := range ds.Messages {
		line := ds.Messages[i].Format()
		back, err := syslogmsg.ParseLine(line, ds.Messages[i].Index)
		if err != nil {
			t.Fatalf("message %d does not round trip: %v (%q)", i, err, line)
		}
		if back.Format() != line {
			t.Fatalf("message %d format drift", i)
		}
	}
}

func TestGenerateConditionsAccountMessages(t *testing.T) {
	ds := generate(t, smallSpec(DatasetA))
	total := 0
	for _, c := range ds.Conditions {
		if c.Messages <= 0 {
			t.Fatalf("condition %q has %d messages", c.Kind, c.Messages)
		}
		if c.End.Before(c.Start) {
			t.Fatalf("condition %q has End before Start", c.Kind)
		}
		if len(c.Routers) == 0 || c.Region == "" {
			t.Fatalf("condition %q missing routers/region: %+v", c.Kind, c)
		}
		total += c.Messages
	}
	if total != len(ds.Messages) {
		t.Fatalf("condition message counts %d != stream length %d", total, len(ds.Messages))
	}
}

func TestGenerateLocationsResolve(t *testing.T) {
	ds := generate(t, smallSpec(DatasetA))
	dict, err := locdict.Build(ds.Net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	linkMsgs := 0
	for _, m := range ds.Messages {
		if m.Code != "LINK-3-UPDOWN" {
			continue
		}
		linkMsgs++
		// Detail: "Interface <name>, changed state to ..."
		var name string
		if _, err := splitInterfaceDetail(m.Detail, &name); err != nil {
			t.Fatalf("unparseable link detail %q", m.Detail)
		}
		if _, ok := dict.Normalize(m.Router, name); ok {
			resolved++
		}
	}
	if linkMsgs == 0 {
		t.Fatal("no LINK messages generated")
	}
	if resolved != linkMsgs {
		t.Fatalf("only %d/%d link interfaces resolve in the dictionary", resolved, linkMsgs)
	}
}

// splitInterfaceDetail extracts the interface token from a LINK detail.
func splitInterfaceDetail(detail string, name *string) (int, error) {
	var state string
	n, err := sscanf2(detail, name, &state)
	return n, err
}

func sscanf2(detail string, name *string, state *string) (int, error) {
	// "Interface X, changed state to down"
	var a, b string
	if n, err := fmtSscanf(detail, &a, &b); err != nil {
		return n, err
	}
	*name = a[:len(a)-1] // strip trailing comma
	*state = b
	return 2, nil
}

func fmtSscanf(detail string, a, b *string) (int, error) {
	// minimal: second whitespace token is "X,», last is the state.
	fields := splitFields(detail)
	if len(fields) < 6 || fields[0] != "Interface" {
		return 0, errBadDetail
	}
	*a = fields[1]
	*b = fields[len(fields)-1]
	return 2, nil
}

var errBadDetail = errorString("bad detail")

type errorString string

func (e errorString) Error() string { return string(e) }

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

func TestGenerateTemplatesLearnable(t *testing.T) {
	// The learner must recover most of the ground-truth templates from a
	// generated corpus (full-scale accuracy is measured in experiments).
	spec := smallSpec(DatasetA)
	spec.Duration = 24 * time.Hour
	ds := generate(t, spec)
	learned := template.Learn(ds.Messages, template.Options{})
	truth := GroundTruthTemplates(DatasetA)
	frac := template.FractionMatching(learned, truth)
	if frac < 0.5 {
		t.Fatalf("template accuracy %.2f too low for a 1-day corpus", frac)
	}
}

func TestGeneratePIMScenario(t *testing.T) {
	spec := smallSpec(DatasetB)
	spec.Rates.PIMFailure = 4
	ds := generate(t, spec)
	var pim *Condition
	for i := range ds.Conditions {
		if ds.Conditions[i].Kind == "pim-dual-failure" {
			pim = &ds.Conditions[i]
			break
		}
	}
	if pim == nil {
		t.Skip("no PIM scenario drawn at this seed")
	}
	if len(pim.Routers) < 3 {
		t.Fatalf("PIM condition routers = %v, want endpoints + hop", pim.Routers)
	}
	// The condition must include 5-minute-spaced tunnel retries.
	retries := 0
	for _, m := range ds.Messages {
		if m.Code == "MPLS-MINOR-mplsTunnelRetry" {
			retries++
		}
	}
	if retries < 10 {
		t.Fatalf("tunnel retries = %d, want a long retry tail", retries)
	}
	// PIM loss on both endpoints.
	losses := make(map[string]bool)
	for _, m := range ds.Messages {
		if m.Code == "PIM-MAJOR-pimNbrLoss" {
			losses[m.Router] = true
		}
	}
	if len(losses) < 2 {
		t.Fatalf("PIM losses on %d routers, want both endpoints", len(losses))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Routers: 2}); err == nil {
		t.Fatal("2-router spec accepted")
	}
}

func TestRatesNegativeDisables(t *testing.T) {
	spec := smallSpec(DatasetA)
	spec.Rates = Rates{
		LinkFlap: -1, Controller: -1, BGPFlap: -1, CPUSpike: -1,
		PeriodicMsg: -1, Noise: -1, EnvAlarm: -1, TunnelFlap: -1,
		Config: 50,
	}
	ds := generate(t, spec)
	for _, m := range ds.Messages {
		if m.Code != "SYS-5-CONFIG_I" {
			t.Fatalf("disabled scenario still emitted %q", m.Code)
		}
	}
	if len(ds.Messages) == 0 {
		t.Fatal("config scenario produced nothing")
	}
}

func TestGroundTruthTemplatesWellFormed(t *testing.T) {
	for _, kind := range []DatasetKind{DatasetA, DatasetB} {
		ts := GroundTruthTemplates(kind)
		if len(ts) < 15 {
			t.Fatalf("dataset %v ground truth has only %d templates", kind, len(ts))
		}
		seen := make(map[string]bool)
		for _, tpl := range ts {
			if len(tpl.Words) == 0 {
				t.Fatalf("empty template %+v", tpl)
			}
			key := tpl.String()
			if seen[key] {
				t.Fatalf("duplicate ground truth template %q", key)
			}
			seen[key] = true
		}
	}
}

func TestDatasetKindString(t *testing.T) {
	if DatasetA.String() != "A" || DatasetB.String() != "B" {
		t.Fatal("kind names wrong")
	}
}
