package gen

import (
	"strings"
	"testing"
	"time"
)

// Statistical tests on the scenario emitters: DESIGN.md claims the
// simulator reproduces the relational structure the paper's mining depends
// on (co-occurrence delays, timer periods, cross-router symmetry). These
// tests pin those properties.

// datasetWith draws one dataset with only the selected scenario enabled.
func datasetWith(t *testing.T, kind DatasetKind, tweak func(*Rates), seed int64) *Dataset {
	t.Helper()
	spec := Spec{Kind: kind, Routers: 20, Seed: seed, Duration: 48 * time.Hour}
	off := Rates{
		LinkFlap: -1, Controller: -1, BGPFlap: -1, CPUSpike: -1,
		PeriodicMsg: -1, Noise: -1, Config: -1, EnvAlarm: -1,
		TunnelFlap: -1, PIMFailure: -1,
	}
	spec.Rates = off
	tweak(&spec.Rates)
	ds, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestLinkFlapSymmetry: every LINK-down on one end has a same-second
// counterpart on the other end — the structure cross-router grouping needs.
func TestLinkFlapSymmetry(t *testing.T) {
	ds := datasetWith(t, DatasetA, func(r *Rates) { r.LinkFlap = 5 }, 11)
	if len(ds.Messages) == 0 {
		t.Skip("no flaps drawn")
	}
	type key struct {
		at     time.Time
		detail string
	}
	byTime := make(map[time.Time]map[string]int)
	for _, m := range ds.Messages {
		if m.Code != "LINK-3-UPDOWN" {
			continue
		}
		if byTime[m.Time] == nil {
			byTime[m.Time] = make(map[string]int)
		}
		byTime[m.Time][m.Router]++
	}
	symmetric, lone := 0, 0
	for _, routers := range byTime {
		if len(routers) >= 2 {
			symmetric++
		} else {
			lone++
		}
	}
	if symmetric == 0 {
		t.Fatal("no same-second link messages across routers")
	}
	// Double-fires can land on one side only; they must stay a small
	// minority.
	if lone > symmetric {
		t.Fatalf("lone link seconds (%d) exceed symmetric ones (%d)", lone, symmetric)
	}
}

// TestLineProtoFollowsLink: LINEPROTO fallout is exactly one second after
// its LINK message — the 1s co-occurrence that the W sweep's earliest rules
// capture.
func TestLineProtoFollowsLink(t *testing.T) {
	ds := datasetWith(t, DatasetA, func(r *Rates) { r.LinkFlap = 5 }, 12)
	linkAt := make(map[string]map[time.Time]bool) // router -> times
	for _, m := range ds.Messages {
		if m.Code == "LINK-3-UPDOWN" {
			if linkAt[m.Router] == nil {
				linkAt[m.Router] = make(map[time.Time]bool)
			}
			linkAt[m.Router][m.Time] = true
		}
	}
	checked, matched := 0, 0
	for _, m := range ds.Messages {
		if m.Code != "LINEPROTO-5-UPDOWN" {
			continue
		}
		checked++
		if linkAt[m.Router][m.Time.Add(-time.Second)] {
			matched++
		}
	}
	if checked == 0 {
		t.Skip("no line protocol messages drawn")
	}
	if float64(matched)/float64(checked) < 0.95 {
		t.Fatalf("only %d/%d LINEPROTO messages trail a LINK message by 1s", matched, checked)
	}
}

// TestControllerLeadsLink: controller-driven episodes put the controller
// message 15-25s before the link message — the paper's 10-30s implicit
// delay band.
func TestControllerLeadsLink(t *testing.T) {
	ds := datasetWith(t, DatasetA, func(r *Rates) { r.LinkFlap = 10 }, 13)
	var ctl []Message0
	linkDown := make(map[string][]time.Time)
	for _, m := range ds.Messages {
		if m.Code == "CONTROLLER-5-UPDOWN" && strings.Contains(m.Detail, "to down") {
			ctl = append(ctl, Message0{m.Router, m.Time})
		}
		if m.Code == "LINK-3-UPDOWN" && strings.Contains(m.Detail, "to down") {
			linkDown[m.Router] = append(linkDown[m.Router], m.Time)
		}
	}
	if len(ctl) == 0 {
		t.Skip("no controller-driven episodes drawn")
	}
	inBand := 0
	for _, c := range ctl {
		for _, lt := range linkDown[c.router] {
			d := lt.Sub(c.at)
			if d >= 10*time.Second && d <= 30*time.Second {
				inBand++
				break
			}
		}
	}
	if float64(inBand)/float64(len(ctl)) < 0.8 {
		t.Fatalf("only %d/%d controller-down messages precede a link-down by 10-30s", inBand, len(ctl))
	}
}

// Message0 is a minimal (router, time) pair for the tests above.
type Message0 struct {
	router string
	at     time.Time
}

// TestTCPBadAuthPeriod: the Figure 5 stream fires near its 5-minute timer.
func TestTCPBadAuthPeriod(t *testing.T) {
	ds := datasetWith(t, DatasetA, func(r *Rates) { r.PeriodicMsg = 6 }, 14)
	// One probe episode = one scanner: key streams by (router, scanner) so
	// overlapping episodes on a hot router don't interleave.
	byRouter := make(map[string][]time.Time)
	for _, m := range ds.Messages {
		if m.Code == "TCP-6-BADAUTH" {
			scanner := strings.Fields(m.Detail)[4]              // "... digest from <ip:port> to ..."
			scanner = scanner[:strings.IndexByte(scanner, ':')] // the port varies per probe
			byRouter[m.Router+"|"+scanner] = append(byRouter[m.Router+"|"+scanner], m.Time)
		}
	}
	streams := 0
	for _, ts := range byRouter {
		if len(ts) < 5 {
			continue
		}
		streams++
		var gaps []float64
		for i := 1; i < len(ts); i++ {
			gaps = append(gaps, ts[i].Sub(ts[i-1]).Seconds())
		}
		inBand := 0
		for _, g := range gaps {
			if g >= 180 && g <= 420 {
				inBand++
			}
		}
		if float64(inBand)/float64(len(gaps)) < 0.8 {
			t.Fatalf("bad-auth gaps not near the 5-minute timer: %v", gaps[:min(8, len(gaps))])
		}
	}
	if streams == 0 {
		t.Skip("no bad-auth streams drawn")
	}
}

// TestBGPHoldTimerBand: long-outage BGP messages land 90-120s after the
// link failure (the source of dataset A's W=120s knee).
func TestBGPHoldTimerBand(t *testing.T) {
	ds := datasetWith(t, DatasetA, func(r *Rates) { r.LinkFlap = 10 }, 15)
	linkDown := make(map[string][]time.Time)
	for _, m := range ds.Messages {
		if m.Code == "LINK-3-UPDOWN" && strings.Contains(m.Detail, "to down") {
			linkDown[m.Router] = append(linkDown[m.Router], m.Time)
		}
	}
	checked, inBand := 0, 0
	for _, m := range ds.Messages {
		if m.Code != "BGP-5-ADJCHANGE" || !strings.Contains(m.Detail, "Down") {
			continue
		}
		checked++
		for _, lt := range linkDown[m.Router] {
			d := m.Time.Sub(lt)
			if d >= 90*time.Second && d <= 120*time.Second {
				inBand++
				break
			}
		}
	}
	if checked == 0 {
		t.Skip("no long outages drawn")
	}
	if float64(inBand)/float64(checked) < 0.9 {
		t.Fatalf("only %d/%d BGP downs in the 90-120s hold-timer band", inBand, checked)
	}
}

// TestLoginScanDelayBand: dataset B's ssh failures trail ftp failures by
// 30-40s (the W=30-40s rule of §5.2.2).
func TestLoginScanDelayBand(t *testing.T) {
	ds := datasetWith(t, DatasetB, func(r *Rates) { r.PeriodicMsg = 6 }, 16)
	ftp := make(map[string][]time.Time)
	for _, m := range ds.Messages {
		if m.Code == "SECURITY-WARNING-ftpLoginFail" {
			ftp[m.Router] = append(ftp[m.Router], m.Time)
		}
	}
	checked, inBand := 0, 0
	for _, m := range ds.Messages {
		if m.Code != "SECURITY-WARNING-sshLoginFail" {
			continue
		}
		checked++
		for _, ft := range ftp[m.Router] {
			d := m.Time.Sub(ft)
			if d >= 29*time.Second && d <= 41*time.Second {
				inBand++
				break
			}
		}
	}
	if checked == 0 {
		t.Skip("no login scans drawn")
	}
	if float64(inBand)/float64(checked) < 0.95 {
		t.Fatalf("only %d/%d ssh failures trail an ftp failure by 30-40s", inBand, checked)
	}
}

// TestPIMRetryTimer: dual-failure retries tick at ~5 minutes on both
// endpoints.
func TestPIMRetryTimer(t *testing.T) {
	ds := datasetWith(t, DatasetB, func(r *Rates) { r.PIMFailure = 2 }, 17)
	// Group retries per (router, tunnel destination): concurrent dual
	// failures on different paths must not interleave in one stream.
	byStream := make(map[string][]time.Time)
	for _, m := range ds.Messages {
		if m.Code == "MPLS-MINOR-mplsTunnelRetry" {
			fields := strings.Fields(m.Detail) // "MPLS tunnel to <ip> connection retry N"
			byStream[m.Router+"|"+fields[3]] = append(byStream[m.Router+"|"+fields[3]], m.Time)
		}
	}
	if len(byStream) < 2 {
		t.Skip("no dual failures drawn")
	}
	for stream, ts := range byStream {
		if len(ts) < 6 {
			continue
		}
		inBand := 0
		for i := 1; i < len(ts); i++ {
			g := ts[i].Sub(ts[i-1]).Seconds()
			// Timer tick, a gap spanning separate incidents, or the
			// triggered burst at the failure instant.
			if (g >= 240 && g <= 360) || g > 3600 || g <= 30 {
				inBand++
			}
		}
		if float64(inBand)/float64(len(ts)-1) < 0.8 {
			t.Fatalf("stream %s: retry gaps not timer-dominated", stream)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
