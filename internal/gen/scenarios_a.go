package gen

import (
	"fmt"
	"strings"
	"time"
)

// Dataset A scenarios: vendor V1, tier-1 ISP backbone.

// linkFlapA simulates a flapping link episode — the workhorse condition of
// the paper's running example (Table 2). A layer-1 link bounces repeatedly;
// every bounce fires LINK and LINEPROTO messages on both ends one second
// apart, usually OSPF (and sometimes ISIS) adjacency fallout, sometimes the
// causing controller's own flap ~20s earlier (the 10–30s implicit-delay
// rules of §5.2.2), and — when an outage outlasts the BGP hold timer — BGP
// session messages ~90–120s in.
func (s *sim) linkFlapA(start time.Time) {
	link, ok := s.randLink()
	if !ok {
		return
	}
	s.beginCondition("link-flap", start, []string{link.A, link.B}, link.AIntf)
	defer s.endCondition()

	duration := s.between(10*time.Minute, 3*time.Hour)
	period := s.between(10*time.Second, 45*time.Second)
	upDelay := s.between(3*time.Second, 20*time.Second)
	withOSPF := s.rng.Float64() < 0.6
	withISIS := s.rng.Float64() < 0.3
	controllerDriven := s.rng.Float64() < 0.4 && strings.HasPrefix(link.AIntf, "Serial")
	ctlPath := ""
	if controllerDriven {
		var slot int
		if _, err := fmt.Sscanf(link.AIntf, "Serial%d/", &slot); err == nil {
			ctlPath = fmt.Sprintf("%d/0", slot)
		} else {
			controllerDriven = false
		}
	}
	lbA, lbB := s.loopbackIP(link.A), s.loopbackIP(link.B)

	end := start.Add(duration)
	for t := start; t.Before(end); {
		longOutage := s.rng.Float64() < 0.15
		var upAt time.Time
		if longOutage {
			upAt = t.Add(s.between(95*time.Second, 240*time.Second))
		} else {
			upAt = t.Add(s.jitter(upDelay, 0.4))
		}

		if controllerDriven {
			s.emit(t.Add(-s.between(15*time.Second, 25*time.Second)), link.A,
				"CONTROLLER-5-UPDOWN", fmt.Sprintf("Controller T3 %s, changed state to down", ctlPath))
		}
		s.emit(t, link.A, "LINK-3-UPDOWN", fmt.Sprintf("Interface %s, changed state to down", link.AIntf))
		s.emit(t, link.B, "LINK-3-UPDOWN", fmt.Sprintf("Interface %s, changed state to down", link.BIntf))
		s.emit(t.Add(time.Second), link.A, "LINEPROTO-5-UPDOWN",
			fmt.Sprintf("Line protocol on Interface %s, changed state to down", link.AIntf))
		s.emit(t.Add(time.Second), link.B, "LINEPROTO-5-UPDOWN",
			fmt.Sprintf("Line protocol on Interface %s, changed state to down", link.BIntf))
		if withOSPF {
			s.emit(t.Add(2*time.Second), link.A, "OSPF-5-ADJCHG",
				fmt.Sprintf("Process 1, Nbr %s on %s from FULL to DOWN, Neighbor Down: Interface down or detached", lbB, link.AIntf))
			s.emit(t.Add(2*time.Second), link.B, "OSPF-5-ADJCHG",
				fmt.Sprintf("Process 1, Nbr %s on %s from FULL to DOWN, Neighbor Down: Interface down or detached", lbA, link.BIntf))
		}
		if withISIS {
			s.emit(t.Add(2*time.Second), link.A, "ISIS-4-ADJCHANGE",
				fmt.Sprintf("Adjacency to %s on %s dropped", link.B, link.AIntf))
			s.emit(t.Add(2*time.Second), link.B, "ISIS-4-ADJCHANGE",
				fmt.Sprintf("Adjacency to %s on %s dropped", link.A, link.BIntf))
		}
		if longOutage {
			bgpAt := t.Add(s.between(90*time.Second, 120*time.Second))
			reason := bgpDownReasons[s.rng.Intn(len(bgpDownReasons))]
			vrf := s.randVRF()
			s.emit(bgpAt, link.A, "BGP-5-ADJCHANGE", fmt.Sprintf("neighbor %s vpn vrf %s Down %s", lbB, vrf, reason))
			s.emit(bgpAt, link.B, "BGP-5-ADJCHANGE", fmt.Sprintf("neighbor %s vpn vrf %s Down %s", lbA, vrf, reason))
			s.emit(upAt.Add(s.between(30*time.Second, 90*time.Second)), link.A, "BGP-5-ADJCHANGE",
				fmt.Sprintf("neighbor %s vpn vrf %s Up", lbB, vrf))
			s.emit(upAt.Add(s.between(30*time.Second, 90*time.Second)), link.B, "BGP-5-ADJCHANGE",
				fmt.Sprintf("neighbor %s vpn vrf %s Up", lbA, vrf))
		}

		if controllerDriven {
			ctlUp := upAt.Add(-s.between(15*time.Second, 25*time.Second))
			if !ctlUp.After(t) {
				ctlUp = t.Add(time.Second)
			}
			s.emit(ctlUp, link.A, "CONTROLLER-5-UPDOWN",
				fmt.Sprintf("Controller T3 %s, changed state to up", ctlPath))
		}
		s.emit(upAt, link.A, "LINK-3-UPDOWN", fmt.Sprintf("Interface %s, changed state to up", link.AIntf))
		s.emit(upAt, link.B, "LINK-3-UPDOWN", fmt.Sprintf("Interface %s, changed state to up", link.BIntf))
		s.emit(upAt.Add(time.Second), link.A, "LINEPROTO-5-UPDOWN",
			fmt.Sprintf("Line protocol on Interface %s, changed state to up", link.AIntf))
		s.emit(upAt.Add(time.Second), link.B, "LINEPROTO-5-UPDOWN",
			fmt.Sprintf("Line protocol on Interface %s, changed state to up", link.BIntf))
		if withOSPF {
			loadAt := upAt.Add(s.between(5*time.Second, 30*time.Second))
			s.emit(loadAt, link.A, "OSPF-5-ADJCHG",
				fmt.Sprintf("Process 1, Nbr %s on %s from LOADING to FULL, Loading Done", lbB, link.AIntf))
			s.emit(loadAt, link.B, "OSPF-5-ADJCHG",
				fmt.Sprintf("Process 1, Nbr %s on %s from LOADING to FULL, Loading Done", lbA, link.BIntf))
		}
		if withISIS {
			estAt := upAt.Add(s.between(3*time.Second, 15*time.Second))
			s.emit(estAt, link.A, "ISIS-4-ADJCHANGE", fmt.Sprintf("Adjacency to %s on %s established", link.B, link.AIntf))
			s.emit(estAt, link.B, "ISIS-4-ADJCHANGE", fmt.Sprintf("Adjacency to %s on %s established", link.A, link.BIntf))
		}
		// Occasional double-fires: the same transition logged again within
		// a couple of seconds (real routers do this). The impulsive short
		// gaps are what make a fast-adapting EWMA (large alpha) collapse
		// its prediction and then break on the next normal-period arrival —
		// the effect behind Figure 10's preference for small alpha.
		if s.rng.Float64() < 0.3 {
			s.emit(t.Add(2*time.Second), link.A, "LINK-3-UPDOWN",
				fmt.Sprintf("Interface %s, changed state to down", link.AIntf))
			s.emit(t.Add(2*time.Second), link.B, "LINK-3-UPDOWN",
				fmt.Sprintf("Interface %s, changed state to down", link.BIntf))
		}
		if s.rng.Float64() < 0.3 {
			s.emit(upAt.Add(2*time.Second), link.A, "LINK-3-UPDOWN",
				fmt.Sprintf("Interface %s, changed state to up", link.AIntf))
			s.emit(upAt.Add(2*time.Second), link.B, "LINK-3-UPDOWN",
				fmt.Sprintf("Interface %s, changed state to up", link.BIntf))
		}

		next := upAt.Add(s.jitter(period, 0.3))
		if !next.After(t) {
			next = t.Add(time.Second)
		}
		t = next
	}
}

var bgpDownReasons = []string{
	"Interface flap",
	"BGP Notification sent",
	"BGP Notification received",
	"Peer closed the session",
}

func (s *sim) randVRF() string {
	return fmt.Sprintf("1000:%d", 1000+s.rng.Intn(5))
}

// controllerInstability is Figure 4's pattern: one controller bounces every
// few seconds for an extended interval.
func (s *sim) controllerInstability(start time.Time) {
	cfg := s.randRouter()
	path := "1/0"
	if len(cfg.Controllers) > 0 {
		path = cfg.Controllers[s.rng.Intn(len(cfg.Controllers))].Path
	}
	s.beginCondition("controller-instability", start, []string{cfg.Hostname}, path)
	defer s.endCondition()

	duration := s.between(10*time.Minute, 2*time.Hour)
	period := s.between(5*time.Second, 40*time.Second)
	end := start.Add(duration)
	for t := start; t.Before(end); {
		s.emit(t, cfg.Hostname, "CONTROLLER-5-UPDOWN",
			fmt.Sprintf("Controller T3 %s, changed state to down", path))
		upAt := t.Add(s.between(time.Second, 10*time.Second))
		s.emit(upAt, cfg.Hostname, "CONTROLLER-5-UPDOWN",
			fmt.Sprintf("Controller T3 %s, changed state to up", path))
		t = upAt.Add(s.jitter(period, 0.3))
	}
}

// bgpFlapA bounces one iBGP session a few times; both ends log adjacency
// changes referencing the peer's loopback (the MPLS-VPN flavor of Table 3).
func (s *sim) bgpFlapA(start time.Time) {
	sess, ok := s.randSession()
	if !ok {
		return
	}
	s.beginCondition("bgp-flap", start, []string{sess.A, sess.B}, sess.BIP)
	defer s.endCondition()

	vrf := sess.VRF
	if vrf == "" {
		vrf = s.randVRF()
	}
	cycles := 1 + s.rng.Intn(4)
	t := start
	for i := 0; i < cycles; i++ {
		reason := bgpDownReasons[s.rng.Intn(len(bgpDownReasons))]
		s.emit(t, sess.A, "BGP-5-ADJCHANGE", fmt.Sprintf("neighbor %s vpn vrf %s Down %s", sess.BIP, vrf, reason))
		s.emit(t, sess.B, "BGP-5-ADJCHANGE", fmt.Sprintf("neighbor %s vpn vrf %s Down %s", sess.AIP, vrf, reason))
		upAt := t.Add(s.between(time.Minute, 10*time.Minute))
		s.emit(upAt, sess.A, "BGP-5-ADJCHANGE", fmt.Sprintf("neighbor %s vpn vrf %s Up", sess.BIP, vrf))
		s.emit(upAt, sess.B, "BGP-5-ADJCHANGE", fmt.Sprintf("neighbor %s vpn vrf %s Up", sess.AIP, vrf))
		t = upAt.Add(s.between(time.Minute, 10*time.Minute))
	}
}

// cpuSpikeA fires the rising/falling CPU threshold pair of Table 1.
func (s *sim) cpuSpikeA(start time.Time) {
	cfg := s.hotRouter()
	s.beginCondition("cpu-spike", start, []string{cfg.Hostname}, "cpu")
	defer s.endCondition()

	util := 85 + s.rng.Intn(14)
	p1, p2, p3 := 60+s.rng.Intn(20), 3+s.rng.Intn(10), 1+s.rng.Intn(4)
	s.emit(start, cfg.Hostname, "SYS-1-CPURISINGTHRESHOLD",
		fmt.Sprintf("Threshold: Total CPU Utilization(Total/Intr): %d%%/1%%, Top 3 processes (Pid/Util): %d/%d%%, %d/%d%%, %d/%d%%",
			util, 2+s.rng.Intn(9), p1, 8+s.rng.Intn(20), p2, 7+s.rng.Intn(30), p3))
	s.emit(start.Add(s.between(time.Minute, 30*time.Minute)), cfg.Hostname, "SYS-1-CPUFALLINGTHRESHOLD",
		fmt.Sprintf("Threshold: Total CPU Utilization(Total/Intr) %d%%/1%%.", 20+s.rng.Intn(15)))
}

// tcpBadAuthA is Figure 5's pattern: an outside party probes the BGP port
// on a timer, producing near-periodic bad-authentication messages for
// hours.
func (s *sim) tcpBadAuthA(start time.Time) {
	cfg := s.hotRouter()
	s.beginCondition("tcp-bad-auth", start, []string{cfg.Hostname}, "md5 probe")
	defer s.endCondition()

	duration := s.between(time.Hour, 6*time.Hour)
	period := s.jitter(5*time.Minute, 0.2)
	scanner := s.scannerIP()
	lb := s.loopbackIP(cfg.Hostname)
	end := start.Add(duration)
	for t := start; t.Before(end); t = t.Add(s.jitter(period, 0.1)) {
		s.emit(t, cfg.Hostname, "TCP-6-BADAUTH",
			fmt.Sprintf("Invalid MD5 digest from %s:%d to %s:179", scanner, 1024+s.rng.Intn(60000), lb))
	}
}

// scanNoiseA is a singleton ACL-deny log line.
func (s *sim) scanNoiseA(start time.Time) {
	cfg := s.hotRouter()
	s.beginCondition("scan-noise", start, []string{cfg.Hostname}, "acl deny")
	defer s.endCondition()
	s.emit(start, cfg.Hostname, "SEC-6-IPACCESSLOGP",
		fmt.Sprintf("list 199 denied tcp %s(%d) -> %s(%d), 1 packet",
			s.scannerIP(), 1024+s.rng.Intn(60000), s.loopbackIP(cfg.Hostname), 179))
}

// configChangeA is a singleton operator-login configuration message.
func (s *sim) configChangeA(start time.Time) {
	cfg := s.hotRouter()
	s.beginCondition("config-change", start, []string{cfg.Hostname}, "config")
	defer s.endCondition()
	s.emit(start, cfg.Hostname, "SYS-5-CONFIG_I",
		fmt.Sprintf("Configured from console by admin on vty0 (10.255.1.%d)", 1+s.rng.Intn(250)))
}

// envAlarmA couples a temperature alarm with a burst of platform
// diagnostics minutes later — the source of an ENV<->PLATFORM rule.
func (s *sim) envAlarmA(start time.Time) {
	cfg := s.randRouter()
	s.beginCondition("env-alarm", start, []string{cfg.Hostname}, "temperature")
	defer s.endCondition()

	slot := 1 + s.rng.Intn(4)
	s.emit(start, cfg.Hostname, "ENV-2-TEMPHIGH",
		fmt.Sprintf("Temperature measured at %dC exceeds threshold on Slot %d", 40+s.rng.Intn(25), slot))
	n := 4 + s.rng.Intn(6)
	for i := 0; i < n; i++ {
		at := start.Add(s.between(10*time.Second, 90*time.Second))
		reason := diagReasons[s.rng.Intn(len(diagReasons))]
		// Diagnostics fire across chassis positions (1-16), not just the
		// overheating slot — the wide value range is what lets the learner
		// wildcard the slot while keeping the reason literal.
		s.emit(at, cfg.Hostname, "PLATFORM-3-DIAG",
			fmt.Sprintf("Slot %d diagnostic: %s", 1+s.rng.Intn(16), reason))
	}
}

// lspFlapA bounces an MPLS-TE LSP toward a random remote router.
func (s *sim) lspFlapA(start time.Time) {
	cfg := s.randRouter()
	other := s.randRouter()
	for other.Hostname == cfg.Hostname {
		other = s.randRouter()
	}
	s.beginCondition("lsp-flap", start, []string{cfg.Hostname}, other.Hostname)
	defer s.endCondition()

	dest := s.loopbackIP(other.Hostname)
	cycles := 1 + s.rng.Intn(3)
	t := start
	for i := 0; i < cycles; i++ {
		s.emit(t, cfg.Hostname, "MPLS_TE-5-LSP", fmt.Sprintf("LSP to %s state changed to down", dest))
		upAt := t.Add(s.between(10*time.Second, 2*time.Minute))
		s.emit(upAt, cfg.Hostname, "MPLS_TE-5-LSP", fmt.Sprintf("LSP to %s state changed to up", dest))
		t = upAt.Add(s.between(30*time.Second, 5*time.Minute))
	}
}
