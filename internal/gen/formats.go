package gen

import "syslogdigest/internal/template"

// Format couples a message-emission format with the masked template a
// perfect learner would recover from it. The same table drives both the
// simulator (emission) and the §5.2.1 ground truth (validation) — the
// simulator IS the "router OS" of this reproduction, so its printf formats
// are the vendor documentation.
type Format struct {
	Code string
	// Fmt is the fmt.Sprintf pattern used by the emitters.
	Fmt string
	// Truth is the masked template the learner should discover. A few
	// formats are deliberately awkward (compound value tokens the masker
	// cannot recognize, or more sub types than the pruning limit K): for
	// those the learner is *expected* to miss, which is what keeps the
	// measured template accuracy near the paper's 94% rather than 100%.
	Truth string
}

// Dataset A (tier-1 ISP backbone, vendor V1) formats.
var formatsA = []Format{
	{
		Code:  "LINK-3-UPDOWN",
		Fmt:   "Interface %s, changed state to down",
		Truth: "Interface *, changed state to down",
	},
	{
		Code:  "LINK-3-UPDOWN",
		Fmt:   "Interface %s, changed state to up",
		Truth: "Interface *, changed state to up",
	},
	{
		Code:  "LINEPROTO-5-UPDOWN",
		Fmt:   "Line protocol on Interface %s, changed state to down",
		Truth: "Line protocol on Interface *, changed state to down",
	},
	{
		Code:  "LINEPROTO-5-UPDOWN",
		Fmt:   "Line protocol on Interface %s, changed state to up",
		Truth: "Line protocol on Interface *, changed state to up",
	},
	{
		Code:  "OSPF-5-ADJCHG",
		Fmt:   "Process 1, Nbr %s on %s from FULL to DOWN, Neighbor Down: Interface down or detached",
		Truth: "Process 1, Nbr * on * from FULL to DOWN, Neighbor Down: Interface down or detached",
	},
	{
		Code:  "OSPF-5-ADJCHG",
		Fmt:   "Process 1, Nbr %s on %s from LOADING to FULL, Loading Done",
		Truth: "Process 1, Nbr * on * from LOADING to FULL, Loading Done",
	},
	{
		Code:  "CONTROLLER-5-UPDOWN",
		Fmt:   "Controller T3 %s, changed state to down",
		Truth: "Controller T3 *, changed state to down",
	},
	{
		Code:  "CONTROLLER-5-UPDOWN",
		Fmt:   "Controller T3 %s, changed state to up",
		Truth: "Controller T3 *, changed state to up",
	},
	{
		Code: "SYS-1-CPURISINGTHRESHOLD",
		// The compound "95%/1%," and "(Pid/Util):" tokens defeat value
		// masking, as in the paper's real message — learned template will
		// be an approximation.
		Fmt:   "Threshold: Total CPU Utilization(Total/Intr): %d%%/1%%, Top 3 processes (Pid/Util): %d/%d%%, %d/%d%%, %d/%d%%",
		Truth: "Threshold: Total CPU Utilization(Total/Intr): * Top 3 processes (Pid/Util): *",
	},
	{
		Code:  "SYS-1-CPUFALLINGTHRESHOLD",
		Fmt:   "Threshold: Total CPU Utilization(Total/Intr) %d%%/1%%.",
		Truth: "Threshold: Total CPU Utilization(Total/Intr) *",
	},
	{
		Code:  "BGP-5-ADJCHANGE",
		Fmt:   "neighbor %s vpn vrf %s Up",
		Truth: "neighbor * vpn vrf * Up",
	},
	{
		Code:  "BGP-5-ADJCHANGE",
		Fmt:   "neighbor %s vpn vrf %s Down Interface flap",
		Truth: "neighbor * vpn vrf * Down Interface flap",
	},
	{
		Code:  "BGP-5-ADJCHANGE",
		Fmt:   "neighbor %s vpn vrf %s Down BGP Notification sent",
		Truth: "neighbor * vpn vrf * Down BGP Notification sent",
	},
	{
		Code:  "BGP-5-ADJCHANGE",
		Fmt:   "neighbor %s vpn vrf %s Down BGP Notification received",
		Truth: "neighbor * vpn vrf * Down BGP Notification received",
	},
	{
		Code:  "BGP-5-ADJCHANGE",
		Fmt:   "neighbor %s vpn vrf %s Down Peer closed the session",
		Truth: "neighbor * vpn vrf * Down Peer closed the session",
	},
	{
		Code:  "TCP-6-BADAUTH",
		Fmt:   "Invalid MD5 digest from %s:%d to %s:179",
		Truth: "Invalid MD5 digest from * to *",
	},
	{
		Code: "SEC-6-IPACCESSLOGP",
		// "a.b.c.d(port)," defeats the masker; learner approximates.
		Fmt:   "list 199 denied tcp %s(%d) -> %s(%d), 1 packet",
		Truth: "list 199 denied tcp * -> * 1 packet",
	},
	{
		Code:  "SYS-5-CONFIG_I",
		Fmt:   "Configured from console by admin on vty0 (%s)",
		Truth: "Configured from console by admin on vty0 (*)",
	},
	{
		Code:  "ENV-2-TEMPHIGH",
		Fmt:   "Temperature measured at %dC exceeds threshold on Slot %d",
		Truth: "Temperature measured at * exceeds threshold on Slot *",
	},
	{
		Code:  "MPLS_TE-5-LSP",
		Fmt:   "LSP to %s state changed to down",
		Truth: "LSP to * state changed to down",
	},
	{
		Code:  "MPLS_TE-5-LSP",
		Fmt:   "LSP to %s state changed to up",
		Truth: "LSP to * state changed to up",
	},
	{
		Code:  "ISIS-4-ADJCHANGE",
		Fmt:   "Adjacency to %s on %s dropped",
		Truth: "Adjacency to * on * dropped",
	},
	{
		Code:  "ISIS-4-ADJCHANGE",
		Fmt:   "Adjacency to %s on %s established",
		Truth: "Adjacency to * on * established",
	},
}

// diagReasons are PLATFORM-3-DIAG sub types. Eight of them — at most the
// pruning limit K=10 — so a well-fed learner keeps them distinct.
var diagReasons = []string{
	"parity error detected", "bus timeout observed", "fabric crc error",
	"queue overflow detected", "clock drift excessive", "memory scrub failed",
	"asic watchdog fired", "backplane seating fault",
}

// platformDiagFormats expands the diag reasons into per-reason formats.
func platformDiagFormats() []Format {
	out := make([]Format, len(diagReasons))
	for i, r := range diagReasons {
		out[i] = Format{
			Code:  "PLATFORM-3-DIAG",
			Fmt:   "Slot %d diagnostic: " + r,
			Truth: "Slot * diagnostic: " + r,
		}
	}
	return out
}

// Dataset B (IPTV backbone, vendor V2) formats.
var formatsB = []Format{
	{
		Code:  "SNMP-WARNING-linkDown",
		Fmt:   "Interface %s is not operational",
		Truth: "Interface * is not operational",
	},
	{
		Code:  "SNMP-WARNING-linkup",
		Fmt:   "Interface %s is operational",
		Truth: "Interface * is operational",
	},
	{
		Code:  "SVCMGR-MAJOR-sapPortStateChangeProcessed",
		Fmt:   "The status of all affected SAPs on port %s has been updated",
		Truth: "The status of all affected SAPs on port * has been updated",
	},
	{
		Code:  "PIM-MAJOR-pimNbrLoss",
		Fmt:   "PIM neighbor %s on interface %s lost",
		Truth: "PIM neighbor * on interface * lost",
	},
	{
		Code:  "PIM-MINOR-pimNbrUp",
		Fmt:   "PIM neighbor %s on interface %s established",
		Truth: "PIM neighbor * on interface * established",
	},
	{
		Code:  "MPLS-MINOR-mplsTunnelDown",
		Fmt:   "MPLS tunnel to %s changed state to down",
		Truth: "MPLS tunnel to * changed state to down",
	},
	{
		Code:  "MPLS-MINOR-mplsTunnelUp",
		Fmt:   "MPLS tunnel to %s changed state to up",
		Truth: "MPLS tunnel to * changed state to up",
	},
	{
		Code:  "MPLS-MINOR-mplsTunnelRetry",
		Fmt:   "MPLS tunnel to %s connection retry %d",
		Truth: "MPLS tunnel to * connection retry *",
	},
	{
		Code:  "BGP-WARNING-bgpPeerDown",
		Fmt:   "BGP peer %s vrf %s moved from established to idle",
		Truth: "BGP peer * vrf * moved from established to idle",
	},
	{
		Code:  "BGP-WARNING-bgpPeerUp",
		Fmt:   "BGP peer %s vrf %s moved to established",
		Truth: "BGP peer * vrf * moved to established",
	},
	{
		Code:  "SECURITY-WARNING-ftpLoginFail",
		Fmt:   "ftp login failure for user admin from %s",
		Truth: "ftp login failure for user admin from *",
	},
	{
		Code:  "SECURITY-WARNING-sshLoginFail",
		Fmt:   "ssh login failure for user admin from %s",
		Truth: "ssh login failure for user admin from *",
	},
	{
		Code:  "SYSTEM-MINOR-cpuHigh",
		Fmt:   "CPU utilization %d%% exceeds high watermark",
		Truth: "CPU utilization * exceeds high watermark",
	},
	{
		Code:  "SYSTEM-MINOR-memHigh",
		Fmt:   "Memory utilization %d%% exceeds high watermark",
		Truth: "Memory utilization * exceeds high watermark",
	},
	{
		Code:  "SYSTEM-MINOR-configChange",
		Fmt:   "Configuration changed by user admin from %s",
		Truth: "Configuration changed by user admin from *",
	},
	{
		Code:  "CHASSIS-MAJOR-fanFail",
		Fmt:   "Fan tray %d failure detected",
		Truth: "Fan tray * failure detected",
	},
	{
		Code:  "CHASSIS-MINOR-fanRestore",
		Fmt:   "Fan tray %d restored",
		Truth: "Fan tray * restored",
	},
}

// Formats returns the emission formats of a dataset kind.
func Formats(kind DatasetKind) []Format {
	switch kind {
	case DatasetA:
		return append(append([]Format(nil), formatsA...), platformDiagFormats()...)
	case DatasetB:
		return append([]Format(nil), formatsB...)
	}
	return nil
}

// GroundTruthTemplates renders the dataset's intended templates, the oracle
// for the §5.2.1 template-accuracy experiment. IDs are sequential.
func GroundTruthTemplates(kind DatasetKind) []template.Template {
	fs := Formats(kind)
	out := make([]template.Template, 0, len(fs))
	for _, f := range fs {
		out = append(out, template.MustTemplate(len(out), f.Code+"|"+f.Truth))
	}
	return out
}
