package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"syslogdigest/internal/locdict"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	type payload struct {
		A int      `json:"a"`
		B []string `json:"b"`
	}
	in := payload{A: 7, B: []string{"x", "y"}}
	snap, err := Encode(1234, in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out payload
	wm, err := Decode(snap, &out)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if wm != 1234 {
		t.Fatalf("watermark = %d, want 1234", wm)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("payload round trip: got %+v want %+v", out, in)
	}
	// Byte stability: re-encoding the decoded payload reproduces the
	// snapshot exactly.
	snap2, err := Encode(wm, out)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Fatalf("snapshot not byte-stable:\n%s\nvs\n%s", snap, snap2)
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	snap, err := Encode(0, map[string]int{"a": 1})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var env map[string]any
	if err := json.Unmarshal(snap, &env); err != nil {
		t.Fatalf("unmarshal envelope: %v", err)
	}
	env["version"] = Version + 1
	tampered, err := json.Marshal(env)
	if err != nil {
		t.Fatalf("marshal tampered: %v", err)
	}
	var dst map[string]int
	if _, err := Decode(tampered, &dst); err == nil {
		t.Fatal("Decode accepted a future version")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version error %q does not mention version", err)
	}

	env["version"] = 0
	tampered, _ = json.Marshal(env)
	if _, err := Decode(tampered, &dst); err == nil {
		t.Fatal("Decode accepted version 0")
	}
}

func TestDecodeRejectsWrongFormat(t *testing.T) {
	snap, _ := Encode(0, map[string]int{"a": 1})
	tampered := bytes.Replace(snap, []byte(Format), []byte("some-other-format!!"), 1)
	var dst map[string]int
	if _, err := Decode(tampered, &dst); err == nil {
		t.Fatal("Decode accepted a wrong format magic")
	}
}

func TestDecodeMalformedInputErrors(t *testing.T) {
	snap, _ := Encode(0, map[string]int{"a": 1})
	cases := [][]byte{
		nil,
		[]byte("not json"),
		snap[:len(snap)/2],
		[]byte(`{"format":"` + Format + `","version":1,"watermark_ns":0,"payload":"not-an-object"}`),
	}
	for i, data := range cases {
		var dst map[string]int
		if _, err := Decode(data, &dst); err == nil {
			t.Errorf("case %d: Decode accepted malformed input", i)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := WriteFile(path, []byte("first")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := WriteFile(path, []byte("second")); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "second" {
		t.Fatalf("read %q, want %q", got, "second")
	}
	// No temporary droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.ckpt" {
		t.Fatalf("directory not clean after writes: %v", entries)
	}
}

func TestTimeNsSentinel(t *testing.T) {
	if TimeNs(time.Time{}) != 0 {
		t.Fatal("zero time must serialize to 0")
	}
	if !NsTime(0).IsZero() {
		t.Fatal("0 must deserialize to the zero time")
	}
	now := time.Date(2010, 7, 20, 12, 34, 56, 789, time.UTC)
	back := NsTime(TimeNs(now))
	if !back.Equal(now) || back != now {
		t.Fatalf("time round trip: got %v want %v", back, now)
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	enc := Event{
		ID:      42,
		StartNs: TimeNs(time.Date(2010, 7, 20, 1, 2, 3, 0, time.UTC)),
		EndNs:   TimeNs(time.Date(2010, 7, 20, 1, 5, 0, 0, time.UTC)),
		Routers: []string{"cr1.alb", "cr2.alb"},
		Locations: []locdict.Location{
			{Router: "cr1.alb", Level: locdict.LevelInterface, Name: "ge-1/0/0"},
		},
		Templates:   []int{3, 9},
		MessageSeqs: []int{100, 101, 107},
		RawIndexes:  []uint64{1000, 1001, 1007},
		Label:       "LINK/LINEPROTO updown",
		Score:       0.4375,
	}
	// JSON is how it travels; the event.Event conversions are exercised by
	// the core round-trip tests.
	raw, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var dec Event
	if err := json.Unmarshal(raw, &dec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, enc) {
		t.Fatalf("event JSON round trip:\ngot  %+v\nwant %+v", dec, enc)
	}
}
