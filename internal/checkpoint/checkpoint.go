// Package checkpoint is the persistence layer of the streaming pipeline's
// snapshot/restore (PR 6): a versioned, byte-stable envelope around the
// state the grouping, stream, and core packages capture, plus the atomic
// file protocol the cmds use to survive crashes.
//
// Contract:
//
//   - Versioned: every snapshot carries a format magic and a version
//     number. Decode rejects unknown magics and versions newer than this
//     build — an old binary must fail loudly on a new snapshot rather than
//     restore garbage. Older versions restore as long as the payload decodes
//     (version 1 is the first).
//   - Byte-stable: Encode(Decode(snap)) == snap for any snapshot this
//     build wrote. The payload structs reach that by construction — fixed
//     struct field order, maps flattened to sorted slices, times as Unix
//     nanoseconds — and the golden round-trip tests pin it.
//   - Keyed by the low watermark: the envelope carries the engine's low
//     watermark (the newest message time whose effects the snapshot fully
//     contains) so operators can pick a restart offset for replayable
//     sources without decoding the payload.
//
// What is captured is the snapshotting packages' business; what is NOT
// captured is a shared rule: runtime knobs (worker counts, cache sizes,
// reorder options), derived indexes, the match cache, and metrics are all
// excluded and rebuilt — a snapshot restores behavior, not configuration.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"syslogdigest/internal/locdict"
)

const (
	// Format is the envelope magic.
	Format = "syslogdigest-checkpoint"
	// Version is the snapshot version this build writes. Decode accepts
	// [1, Version].
	Version = 1
)

// envelope is the outer JSON document. Payload stays raw on decode so the
// caller chooses the concrete state type.
type envelope struct {
	Format      string          `json:"format"`
	Version     int             `json:"version"`
	WatermarkNs int64           `json:"watermark_ns"`
	Payload     json.RawMessage `json:"payload"`
}

// Encode wraps a payload in the versioned envelope. watermarkNs keys the
// snapshot: the Unix-nanosecond low watermark whose effects the payload
// fully contains (0 when nothing has been processed yet).
func Encode(watermarkNs int64, payload any) ([]byte, error) {
	raw, err := json.MarshalIndent(payload, " ", " ")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode payload: %w", err)
	}
	out, err := json.MarshalIndent(envelope{
		Format:      Format,
		Version:     Version,
		WatermarkNs: watermarkNs,
		Payload:     raw,
	}, "", " ")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode envelope: %w", err)
	}
	return append(out, '\n'), nil
}

// Decode validates the envelope and unmarshals the payload into dst,
// returning the snapshot's low watermark. Unknown magics and versions newer
// than this build are errors; so is any malformed payload — Decode never
// panics on corrupted or truncated input.
func Decode(data []byte, dst any) (int64, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return 0, fmt.Errorf("checkpoint: decode envelope: %w", err)
	}
	if env.Format != Format {
		return 0, fmt.Errorf("checkpoint: format %q, want %q", env.Format, Format)
	}
	if env.Version < 1 || env.Version > Version {
		return 0, fmt.Errorf("checkpoint: version %d not in [1, %d] (snapshot from a newer build?)", env.Version, Version)
	}
	if err := json.Unmarshal(env.Payload, dst); err != nil {
		return 0, fmt.Errorf("checkpoint: decode payload: %w", err)
	}
	return env.WatermarkNs, nil
}

// WriteFile persists a snapshot atomically: write to a temporary file in
// the same directory, sync, then rename over path. A crash mid-write leaves
// the previous snapshot intact; readers never observe a torn file.
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// ReadFile loads a snapshot written with WriteFile.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return data, nil
}

// TimeNs flattens a time to Unix nanoseconds for serialization; the zero
// time maps to 0 (no corpus timestamp is the Unix epoch, so the sentinel is
// unambiguous in practice).
func TimeNs(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// NsTime is the inverse of TimeNs. All pipeline timestamps are UTC wall
// times (the syslog parsers normalize to UTC), so the restored time is
// identical to the captured one.
func NsTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Event is the serialized form of one emitted event, field for field
// lossless so a restored run re-delivers pending events byte-identically.
// The conversions to and from event.Event live in core (this package sits
// below event in the import graph — grouping imports it). Scores survive
// exactly: encoding/json writes float64s in the shortest form that
// round-trips bit-for-bit.
type Event struct {
	ID          int                `json:"id"`
	StartNs     int64              `json:"start_ns"`
	EndNs       int64              `json:"end_ns"`
	Routers     []string           `json:"routers"`
	Locations   []locdict.Location `json:"locations"`
	Templates   []int              `json:"templates"`
	MessageSeqs []int              `json:"message_seqs"`
	RawIndexes  []uint64           `json:"raw_indexes"`
	Label       string             `json:"label"`
	Score       float64            `json:"score"`
}

// Update is the serialized form of one tier-tagged emission record (PR 9):
// the identity header plus the event snapshot, absent for superseded
// records exactly as on the wire. Status uses the event package's string
// form ("provisional", "revised", "superseded", "final"); the conversions
// live in core, beside Event's.
type Update struct {
	EventID      uint64 `json:"event_id"`
	Revision     int    `json:"revision"`
	Status       string `json:"status"`
	SupersededBy uint64 `json:"superseded_by,omitempty"`
	Event        *Event `json:"event,omitempty"`
}
