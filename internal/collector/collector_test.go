package collector

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

// sink is a concurrency-safe message recorder.
type sink struct {
	mu   sync.Mutex
	msgs []syslogmsg.Message
}

func (s *sink) handle(m syslogmsg.Message) {
	s.mu.Lock()
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *sink) snapshot() []syslogmsg.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]syslogmsg.Message(nil), s.msgs...)
}

func startCollector(t *testing.T, cfg Config, h Handler) *Collector {
	t.Helper()
	c, err := New(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{UDPAddr: "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := New(Config{}, func(syslogmsg.Message) {}); err == nil {
		t.Fatal("no listeners accepted")
	}
}

func TestUDPDelivery(t *testing.T) {
	var s sink
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0", Year: 2010}, s.handle)

	conn, err := net.Dial("udp", c.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	lines := []string{
		"<189>Jan 10 00:00:15 r1 %LINK-3-UPDOWN: Interface Serial1/0, changed state to down",
		"<189>1 2010-01-10T00:00:16Z r2 router - LINEPROTO-5-UPDOWN - Line protocol on Interface Serial2/0, changed state to down",
		"2010-01-10 00:00:17|r3|BGP-5-ADJCHANGE|neighbor 10.0.0.1 vpn vrf 1000:1001 Up",
	}
	for _, l := range lines {
		if _, err := conn.Write([]byte(l)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return s.len() == 3 })

	got := s.snapshot()
	routers := map[string]bool{}
	for _, m := range got {
		routers[m.Router] = true
	}
	if !routers["r1"] || !routers["r2"] || !routers["r3"] {
		t.Fatalf("routers = %v", routers)
	}
	st := c.Stats()
	if st.Received != 3 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUDPBatchedDatagram(t *testing.T) {
	var s sink
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0", Year: 2010}, s.handle)
	conn, err := net.Dial("udp", c.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := "<189>Jan 10 00:00:15 r1 %A-1-B: one\n<189>Jan 10 00:00:16 r1 %A-1-B: two\n"
	if _, err := conn.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.len() == 2 })
}

func TestTCPDelivery(t *testing.T) {
	var s sink
	var errCount int
	var errMu sync.Mutex
	c := startCollector(t, Config{
		TCPAddr: "127.0.0.1:0", Year: 2010,
		OnError: func(error) { errMu.Lock(); errCount++; errMu.Unlock() },
	}, s.handle)

	conn, err := net.Dial("tcp", c.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "<189>Jan 10 00:00:15 r1 %%LINK-3-UPDOWN: Interface Serial1/0, changed state to down\r\n")
	fmt.Fprintf(conn, "this is garbage\n")
	fmt.Fprintf(conn, "<189>Jan 10 00:00:16 r1 %%LINK-3-UPDOWN: Interface Serial1/0, changed state to up\n")
	conn.Close()

	waitFor(t, func() bool { return s.len() == 2 })
	waitFor(t, func() bool { return c.Stats().Dropped == 1 })
	errMu.Lock()
	defer errMu.Unlock()
	if errCount == 0 {
		t.Fatal("OnError never observed the garbage line")
	}
	if c.Stats().Conns != 1 {
		t.Fatalf("conns = %d", c.Stats().Conns)
	}
	// Per-connection order preserved.
	got := s.snapshot()
	if !got[0].Time.Before(got[1].Time) {
		t.Fatalf("order lost: %v then %v", got[0].Time, got[1].Time)
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	var s sink
	c := startCollector(t, Config{TCPAddr: "127.0.0.1:0", Year: 2010}, s.handle)

	const senders, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", c.TCPAddr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < per; i++ {
				fmt.Fprintf(conn, "<189>Jan 10 00:%02d:%02d r%d %%A-1-B: msg %d\n", g, i%60, g, i)
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, func() bool { return s.len() == senders*per })
	if st := c.Stats(); st.Received != senders*per || st.Conns != senders {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBothListeners(t *testing.T) {
	var s sink
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0", Year: 2010}, s.handle)
	u, err := net.Dial("udp", c.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	tc, err := net.Dial("tcp", c.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	u.Write([]byte("<189>Jan 10 00:00:15 u1 %A-1-B: via udp"))
	fmt.Fprintf(tc, "<189>Jan 10 00:00:16 t1 %%A-1-B: via tcp\n")
	tc.Close()
	waitFor(t, func() bool { return s.len() == 2 })
}

func TestCloseIdempotentAndGraceful(t *testing.T) {
	var s sink
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0"}, s.handle)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// After close the ports are released and Start cannot be reused.
	if err := c.Start(); err == nil {
		t.Fatal("restart after close accepted")
	}
}

func TestStartTwice(t *testing.T) {
	var s sink
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0"}, s.handle)
	if err := c.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestIndicesMonotone(t *testing.T) {
	var s sink
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0", Year: 2010}, s.handle)
	conn, err := net.Dial("udp", c.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		fmt.Fprintf(conn, "<189>Jan 10 00:00:%02d r1 %%A-1-B: m%d", i, i)
	}
	waitFor(t, func() bool { return s.len() == 10 })
	seen := map[uint64]bool{}
	for _, m := range s.snapshot() {
		if seen[m.Index] {
			t.Fatalf("duplicate index %d", m.Index)
		}
		seen[m.Index] = true
	}
}

// TestTCPOversizedLineKeepsConnection is the regression test for the
// silent-data-loss bug: an oversized line used to make bufio.Scanner return
// ErrTooLong and serveConn abandon the whole connection, discarding every
// later message from that router. Now the line is skipped, counted, and the
// connection keeps delivering.
func TestTCPOversizedLineKeepsConnection(t *testing.T) {
	var s sink
	reg := obs.NewRegistry()
	c := startCollector(t, Config{TCPAddr: "127.0.0.1:0", Year: 2010, MaxLineBytes: 256, Metrics: reg}, s.handle)
	conn, err := net.Dial("tcp", c.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 4096)
	for i := range big {
		big[i] = 'x'
	}
	// good — oversized — good, all on ONE connection.
	fmt.Fprintf(conn, "<189>Jan 10 00:00:15 r1 %%A-1-B: before\n")
	conn.Write(big)
	conn.Write([]byte("\n"))
	fmt.Fprintf(conn, "<189>Jan 10 00:00:16 r1 %%A-1-B: after\n")
	fmt.Fprintf(conn, "<189>Jan 10 00:00:17 r1 %%A-1-B: and another\n")
	conn.Close()

	waitFor(t, func() bool { return s.len() == 3 })
	got := s.snapshot()
	if got[0].Detail != "before" || got[1].Detail != "after" || got[2].Detail != "and another" {
		t.Fatalf("messages = %+v", got)
	}
	st := c.Stats()
	if st.Received != 3 || st.Oversized != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	snap := reg.Snapshot()
	if snap.Counter("collector.tcp.oversized") != 1 || snap.Counter("collector.tcp.received") != 3 {
		t.Fatalf("metrics = %+v", snap.Counters)
	}
}

// TestTCPOversizedSpanningBuffers sends a line many times the read buffer,
// exercising the multi-ErrBufferFull discard loop, then a good line.
func TestTCPOversizedSpanningBuffers(t *testing.T) {
	var s sink
	c := startCollector(t, Config{TCPAddr: "127.0.0.1:0", Year: 2010, MaxLineBytes: 64}, s.handle)
	conn, err := net.Dial("tcp", c.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 10_000)
	for i := range big {
		big[i] = 'y'
	}
	conn.Write(big)
	conn.Write([]byte("\n"))
	fmt.Fprintf(conn, "<189>Jan 10 00:00:15 r1 %%A-1-B: ok\n")
	conn.Close()
	waitFor(t, func() bool { return s.len() == 1 })
	if st := c.Stats(); st.Oversized != 1 || st.Received != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestUDPTruncatedDatagram is the regression test for the UDP half of the
// data-loss bug: a datagram larger than the read buffer used to be
// silently cut by ReadFrom and its mangled prefix parsed as a real
// message. Now it is dropped whole, counted, and surfaced via OnError.
func TestUDPTruncatedDatagram(t *testing.T) {
	var s sink
	var errMu sync.Mutex
	var errs []error
	reg := obs.NewRegistry()
	c := startCollector(t, Config{
		UDPAddr: "127.0.0.1:0", Year: 2010, MaxLineBytes: 256, Metrics: reg,
		OnError: func(err error) { errMu.Lock(); errs = append(errs, err); errMu.Unlock() },
	}, s.handle)
	conn, err := net.Dial("udp", c.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A valid message padded past MaxLineBytes: without truncation
	// detection the cut prefix would still parse and be delivered.
	big := []byte("<189>Jan 10 00:00:15 r1 %A-1-B: ")
	for len(big) < 1024 {
		big = append(big, 'z')
	}
	if _, err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("<189>Jan 10 00:00:16 r1 %A-1-B: small one"))

	waitFor(t, func() bool { return s.len() == 1 })
	waitFor(t, func() bool { return c.Stats().Truncated == 1 })
	if got := s.snapshot()[0].Detail; got != "small one" {
		t.Fatalf("delivered %q", got)
	}
	st := c.Stats()
	if st.Received != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if reg.Snapshot().Counter("collector.udp.truncated") != 1 {
		t.Fatalf("metrics = %+v", reg.Snapshot().Counters)
	}
	errMu.Lock()
	defer errMu.Unlock()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "truncated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("OnError never surfaced truncation: %v", errs)
	}
}

// TestUDPExactMaxSizeNotTruncated: a datagram of exactly MaxLineBytes is
// complete and must be delivered, not flagged.
func TestUDPExactMaxSizeNotTruncated(t *testing.T) {
	var s sink
	max := 256
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0", Year: 2010, MaxLineBytes: max}, s.handle)
	conn, err := net.Dial("udp", c.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("<189>Jan 10 00:00:15 r1 %A-1-B: ")
	for len(msg) < max {
		msg = append(msg, 'a')
	}
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.len() == 1 })
	if st := c.Stats(); st.Truncated != 0 || st.Received != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPerTransportMetrics checks the registry splits counters by transport.
func TestPerTransportMetrics(t *testing.T) {
	var s sink
	reg := obs.NewRegistry()
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0", Year: 2010, Metrics: reg}, s.handle)
	u, err := net.Dial("udp", c.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	tc, err := net.Dial("tcp", c.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	u.Write([]byte("<189>Jan 10 00:00:15 u1 %A-1-B: via udp"))
	u.Write([]byte("udp garbage"))
	fmt.Fprintf(tc, "<189>Jan 10 00:00:16 t1 %%A-1-B: via tcp\n")
	fmt.Fprintf(tc, "tcp garbage\n")
	tc.Close()
	waitFor(t, func() bool { return s.len() == 2 })
	waitFor(t, func() bool { return c.Stats().Dropped == 2 })
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"collector.udp.received": 1,
		"collector.udp.dropped":  1,
		"collector.tcp.received": 1,
		"collector.tcp.dropped":  1,
		"collector.tcp.conns":    1,
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestUDPEmptyAndCRLF(t *testing.T) {
	var s sink
	c := startCollector(t, Config{UDPAddr: "127.0.0.1:0", Year: 2010}, s.handle)
	conn, err := net.Dial("udp", c.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("\n\n"))                                          // empty payload: ignored
	conn.Write([]byte("<189>Jan 10 00:00:15 r1 %A-1-B: crlf line\r\n")) // CR stripped
	waitFor(t, func() bool { return s.len() == 1 })
	if got := s.snapshot()[0].Detail; got != "crlf line" {
		t.Fatalf("Detail = %q", got)
	}
}
