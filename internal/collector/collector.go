// Package collector implements the syslog transport side of the system: the
// paper's networks run collectors that every router streams its syslog to
// (via the standardized syslog protocol, RFC 5424/3164), and SyslogDigest's
// online half consumes the collected feed.
//
// Collector listens on UDP (datagram-per-message, classic syslog) and/or
// TCP (newline-framed, octet-stuffing style) and parses each message with
// syslogmsg.ParseWire, which accepts RFC 5424, RFC 3164 and the
// repository's own line format. Parsed messages are handed to a caller
// handler in arrival order per connection; malformed input is counted and
// dropped, never fatal — an operational collector must survive garbage.
// Oversized input is likewise non-fatal: a TCP line longer than
// MaxLineBytes is skipped (the connection stays up and later lines keep
// flowing) and a UDP datagram larger than MaxLineBytes is dropped rather
// than parsed as a truncated mangle. Both cases count in Stats and surface
// through OnError, because silent loss is the one failure mode a
// production feed cannot tolerate.
//
// Every counter is also published per transport into an optional
// obs.Registry (Config.Metrics) under collector.udp.* / collector.tcp.*,
// so an exporter can serve them live.
//
// Shutdown is graceful: Close unblocks the listeners and waits for every
// per-connection goroutine to drain.
package collector

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

// Handler receives each successfully parsed message. Handlers are called
// from multiple goroutines (one per TCP connection plus the UDP loop) and
// must be safe for concurrent use.
type Handler func(m syslogmsg.Message)

// Config configures a Collector.
type Config struct {
	// UDPAddr is the UDP listen address ("127.0.0.1:0" for an ephemeral
	// port); empty disables UDP.
	UDPAddr string
	// TCPAddr is the TCP listen address; empty disables TCP.
	TCPAddr string
	// Year is applied to year-less RFC 3164 timestamps; 0 means the
	// current year.
	Year int
	// OnError, when non-nil, observes per-line parse errors plus oversized
	// and truncated input (for logging); errors never stop the collector.
	OnError func(err error)
	// MaxLineBytes caps one TCP line / UDP datagram; 0 means 64 KiB.
	MaxLineBytes int
	// Metrics, when non-nil, receives the collector's per-transport
	// counters (collector.udp.*, collector.tcp.*). Stats works either way.
	Metrics *obs.Registry
}

// Stats are the collector's monotonic counters, summed across transports.
type Stats struct {
	Received  uint64 // messages successfully parsed and delivered
	Dropped   uint64 // malformed lines dropped
	Truncated uint64 // UDP datagrams larger than MaxLineBytes, dropped whole
	Oversized uint64 // TCP lines longer than MaxLineBytes, skipped
	Conns     uint64 // TCP connections accepted
}

// transportMetrics are one transport's counters.
type transportMetrics struct {
	received *obs.Counter
	dropped  *obs.Counter
}

// Collector is a running syslog listener pair.
type Collector struct {
	cfg     Config
	handler Handler

	udp net.PacketConn
	tcp net.Listener

	wg      sync.WaitGroup
	mu      sync.Mutex
	started bool
	closed  bool
	nextIdx atomic.Uint64

	udpMet    transportMetrics
	tcpMet    transportMetrics
	truncated *obs.Counter // udp only
	oversized *obs.Counter // tcp only
	conns     *obs.Counter // tcp only
}

// New creates a collector; Start binds and begins serving.
func New(cfg Config, handler Handler) (*Collector, error) {
	if handler == nil {
		return nil, errors.New("collector: nil handler")
	}
	if cfg.UDPAddr == "" && cfg.TCPAddr == "" {
		return nil, errors.New("collector: no listen addresses configured")
	}
	if cfg.MaxLineBytes == 0 {
		cfg.MaxLineBytes = 64 * 1024
	}
	reg := cfg.Metrics
	if reg == nil {
		// Stats always reads from the counters; a private registry keeps
		// the uninstrumented path identical to the instrumented one.
		reg = obs.NewRegistry()
	}
	return &Collector{
		cfg:     cfg,
		handler: handler,
		udpMet: transportMetrics{
			received: reg.Counter("collector.udp.received"),
			dropped:  reg.Counter("collector.udp.dropped"),
		},
		tcpMet: transportMetrics{
			received: reg.Counter("collector.tcp.received"),
			dropped:  reg.Counter("collector.tcp.dropped"),
		},
		truncated: reg.Counter("collector.udp.truncated"),
		oversized: reg.Counter("collector.tcp.oversized"),
		conns:     reg.Counter("collector.tcp.conns"),
	}, nil
}

// Start binds the configured listeners and serves until Close.
func (c *Collector) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("collector: already started")
	}
	if c.closed {
		return errors.New("collector: already closed")
	}
	if c.cfg.UDPAddr != "" {
		pc, err := net.ListenPacket("udp", c.cfg.UDPAddr)
		if err != nil {
			return fmt.Errorf("collector: udp listen: %w", err)
		}
		// Syslog arrives in bursts (one storm = hundreds of datagrams in a
		// few milliseconds); a deep kernel buffer is the only defense UDP
		// has against drops. Best effort — not all platforms honor it.
		if uc, ok := pc.(*net.UDPConn); ok {
			_ = uc.SetReadBuffer(4 << 20)
		}
		c.udp = pc
		c.wg.Add(1)
		go c.serveUDP(pc)
	}
	if c.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", c.cfg.TCPAddr)
		if err != nil {
			if c.udp != nil {
				c.udp.Close()
			}
			return fmt.Errorf("collector: tcp listen: %w", err)
		}
		c.tcp = ln
		c.wg.Add(1)
		go c.serveTCP(ln)
	}
	c.started = true
	return nil
}

// UDPAddr returns the bound UDP address (nil when UDP is disabled).
func (c *Collector) UDPAddr() net.Addr {
	if c.udp == nil {
		return nil
	}
	return c.udp.LocalAddr()
}

// TCPAddr returns the bound TCP address (nil when TCP is disabled).
func (c *Collector) TCPAddr() net.Addr {
	if c.tcp == nil {
		return nil
	}
	return c.tcp.Addr()
}

// Stats returns a snapshot of the counters.
func (c *Collector) Stats() Stats {
	return Stats{
		Received:  c.udpMet.received.Value() + c.tcpMet.received.Value(),
		Dropped:   c.udpMet.dropped.Value() + c.tcpMet.dropped.Value(),
		Truncated: c.truncated.Value(),
		Oversized: c.oversized.Value(),
		Conns:     c.conns.Value(),
	}
}

// Close stops the listeners and waits for in-flight deliveries to finish.
// It is idempotent.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	udp, tcp := c.udp, c.tcp
	c.mu.Unlock()

	var first error
	if udp != nil {
		if err := udp.Close(); err != nil {
			first = err
		}
	}
	if tcp != nil {
		if err := tcp.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.wg.Wait()
	return first
}

func (c *Collector) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Collector) serveUDP(pc net.PacketConn) {
	defer c.wg.Done()
	// One byte beyond the cap distinguishes "exactly MaxLineBytes" (fine)
	// from "larger, and ReadFrom silently discarded the rest" (truncated).
	buf := make([]byte, c.cfg.MaxLineBytes+1)
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			if c.isClosed() {
				return
			}
			c.observe(fmt.Errorf("collector: udp read: %w", err))
			continue
		}
		if n > c.cfg.MaxLineBytes {
			// The tail of the datagram is gone; parsing the remaining
			// prefix would deliver a mangled message as if it were real.
			c.truncated.Inc()
			c.observe(fmt.Errorf("collector: udp datagram exceeds %d bytes, dropped (truncated by read)", c.cfg.MaxLineBytes))
			continue
		}
		// One datagram usually carries one message, but tolerate senders
		// that batch lines.
		c.deliverLines(buf[:n], &c.udpMet)
	}
}

func (c *Collector) serveTCP(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if c.isClosed() {
				return
			}
			c.observe(fmt.Errorf("collector: accept: %w", err))
			continue
		}
		c.conns.Inc()
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

// serveConn reads newline-framed lines. A line longer than MaxLineBytes is
// skipped and counted — bufio.Scanner would instead return ErrTooLong and
// end the loop, silently discarding every later message on the connection
// (one chatty router's single giant line used to blind the collector to
// that router until it reconnected).
func (c *Collector) serveConn(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	// +1 so a line of exactly MaxLineBytes plus its newline still fits.
	br := bufio.NewReaderSize(conn, c.cfg.MaxLineBytes+1)
	for {
		line, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			c.oversized.Inc()
			c.observe(fmt.Errorf("collector: tcp line exceeds %d bytes, skipped", c.cfg.MaxLineBytes))
			// Discard the rest of the oversized line, then continue with
			// the next one.
			for err == bufio.ErrBufferFull {
				_, err = br.ReadSlice('\n')
			}
			if err != nil {
				c.connDone(err)
				return
			}
			continue
		}
		if len(line) > 0 && line[len(line)-1] == '\n' {
			line = line[:len(line)-1]
		}
		if len(line) > 0 {
			c.deliverLine(line, &c.tcpMet)
		}
		if err != nil {
			c.connDone(err)
			return
		}
	}
}

// connDone reports a connection's terminal error (EOF is a clean close).
func (c *Collector) connDone(err error) {
	if err != io.EOF && !c.isClosed() {
		c.observe(fmt.Errorf("collector: conn read: %w", err))
	}
}

// deliverLines splits a datagram payload into lines and delivers each.
func (c *Collector) deliverLines(payload []byte, tm *transportMetrics) {
	start := 0
	for i := 0; i <= len(payload); i++ {
		if i == len(payload) || payload[i] == '\n' {
			if i > start {
				c.deliverLine(payload[start:i], tm)
			}
			start = i + 1
		}
	}
}

// deliverLine parses one wire line in place — line aliases a transport
// buffer and is only valid for the duration of the call; ParseWireBytes
// copies what the Message keeps.
func (c *Collector) deliverLine(line []byte, tm *transportMetrics) {
	if len(line) == 0 {
		return
	}
	if line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	idx := c.nextIdx.Add(1) - 1
	m, err := syslogmsg.ParseWireBytes(line, idx, c.cfg.Year)
	if err != nil {
		tm.dropped.Inc()
		c.observe(err)
		return
	}
	tm.received.Inc()
	c.handler(m)
}

func (c *Collector) observe(err error) {
	if c.cfg.OnError != nil {
		c.cfg.OnError(err)
	}
}
