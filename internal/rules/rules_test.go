package rules

import (
	"testing"
	"time"
)

var t0 = time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)

func ev(router string, tmpl int, secs float64) Event {
	return Event{Time: t0.Add(time.Duration(secs * float64(time.Second))), Router: router, Template: tmpl}
}

// flapEvents builds n link-flap episodes on one router: template 1 (link)
// always followed one second later by template 2 (line protocol), episodes
// spaced far apart.
func flapEvents(router string, n int) []Event {
	var out []Event
	for i := 0; i < n; i++ {
		base := float64(i) * 1000
		out = append(out, ev(router, 1, base), ev(router, 2, base+1))
	}
	return out
}

func TestMineBasicAssociation(t *testing.T) {
	events := flapEvents("r1", 50)
	res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 100 {
		t.Fatalf("transactions = %d, want 100 (one per message)", res.Transactions)
	}
	// 1 => 2 must qualify: every template-1 window contains template 2.
	found12 := false
	for _, r := range res.Rules {
		if r.X == 1 && r.Y == 2 {
			found12 = true
			if r.Conf != 1.0 {
				t.Fatalf("conf(1=>2) = %v, want 1", r.Conf)
			}
		}
	}
	if !found12 {
		t.Fatalf("rule 1=>2 not mined; rules = %+v", res.Rules)
	}
	// 2 => 1 must NOT qualify: a template-2 window never contains a later
	// template 1 (forward window, next flap is 999s away).
	for _, r := range res.Rules {
		if r.X == 2 && r.Y == 1 {
			t.Fatalf("rule 2=>1 should not qualify: %+v", r)
		}
	}
}

func TestMineConfMinFilters(t *testing.T) {
	// Template 1 is followed by 2 only half the time.
	var events []Event
	for i := 0; i < 40; i++ {
		base := float64(i) * 1000
		events = append(events, ev("r1", 1, base))
		if i%2 == 0 {
			events = append(events, ev("r1", 2, base+1))
		}
	}
	res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if r.X == 1 && r.Y == 2 {
			t.Fatalf("conf ~0.5 rule passed ConfMin=0.8: %+v", r)
		}
	}
	res, err = Mine(events, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rules {
		if r.X == 1 && r.Y == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("rule should pass at ConfMin=0.4")
	}
}

func TestMineSPminFilters(t *testing.T) {
	// Rare template 3 co-occurs perfectly with 4, but appears in only 2 of
	// ~200 transactions.
	events := flapEvents("r1", 100)
	events = append(events, ev("r1", 3, 500000), ev("r1", 4, 500000.5))
	res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.05, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if r.X == 3 || r.X == 4 {
			t.Fatalf("rare-antecedent rule passed SPmin: %+v", r)
		}
	}
}

func TestMinePerRouterTransactions(t *testing.T) {
	// Template 1 on r1 and template 2 on r2 at the same times: never the
	// same transaction, so no rule.
	var events []Event
	for i := 0; i < 50; i++ {
		base := float64(i) * 100
		events = append(events, ev("r1", 1, base), ev("r2", 2, base+1))
	}
	res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.001, ConfMin: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != 0 {
		t.Fatalf("cross-router co-occurrence mined as rule: %+v", res.Rules)
	}
}

func TestMineWindowGrowsRules(t *testing.T) {
	// Templates 5 and 6 fire 30 seconds apart (the paper's controller/link
	// example: implicit timing relationships appear as W grows).
	var events []Event
	for i := 0; i < 50; i++ {
		base := float64(i) * 1000
		events = append(events, ev("r1", 5, base), ev("r1", 6, base+30))
	}
	narrow, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Mine(events, Config{Window: 60 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow.Rules) != 0 {
		t.Fatalf("W=10s should not connect 30s-apart templates: %+v", narrow.Rules)
	}
	if len(wide.Rules) == 0 {
		t.Fatal("W=60s should connect 30s-apart templates")
	}
}

func TestMineEmptyAndConfigErrors(t *testing.T) {
	res, err := Mine(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 0 || len(res.Rules) != 0 {
		t.Fatalf("empty mine = %+v", res)
	}
	for _, bad := range []Config{
		{Window: -time.Second},
		{SPmin: 2},
		{ConfMin: -0.1},
	} {
		if _, err := Mine(nil, bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	events := append(flapEvents("r1", 30), flapEvents("r2", 30)...)
	a, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatal("nondeterministic rule count")
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, a.Rules[i], b.Rules[i])
		}
	}
}

func TestMaxItemsPerTxCapsStorm(t *testing.T) {
	// 200 distinct templates in one second; cap keeps pair counting sane.
	var events []Event
	for i := 0; i < 200; i++ {
		events = append(events, ev("r1", i, float64(i)*0.001))
	}
	res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.0001, ConfMin: 0.01, MaxItemsPerTx: 8})
	if err != nil {
		t.Fatal(err)
	}
	// First transaction saw at most 8 items => at most C(8,2)=28 pairs from
	// it; overall pair keys bounded far below C(200,2).
	if len(res.PairTx) > 200*8 {
		t.Fatalf("pair explosion despite cap: %d pairs", len(res.PairTx))
	}
}

func TestResultConf(t *testing.T) {
	events := flapEvents("r1", 50)
	res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8, MinEvidence: 5})
	if err != nil {
		t.Fatal(err)
	}
	conf, ok := res.Conf(1, 2)
	if !ok || conf != 1.0 {
		t.Fatalf("Conf(1,2) = (%v, %v)", conf, ok)
	}
	// Template 99 never occurred: not measurable.
	if _, ok := res.Conf(99, 2); ok {
		t.Fatal("absent antecedent should not be measurable")
	}
}

func TestRuleBaseUpdateAddAndRefresh(t *testing.T) {
	rb := NewRuleBase()
	events := flapEvents("r1", 50)
	res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	st := rb.Update(res)
	if st.Added == 0 || st.Deleted != 0 || st.Total != rb.Len() {
		t.Fatalf("first update = %+v", st)
	}
	if !rb.HasPair(1, 2) {
		t.Fatal("rule base missing 1<->2")
	}
	// Re-applying the same result adds nothing and deletes nothing.
	st = rb.Update(res)
	if st.Added != 0 || st.Deleted != 0 {
		t.Fatalf("idempotent update = %+v", st)
	}
}

func TestRuleBaseConservativeDeletion(t *testing.T) {
	rb := NewRuleBase()
	good, err := Mine(flapEvents("r1", 50), Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rb.Update(good)
	n := rb.Len()
	if n == 0 {
		t.Fatal("no rules to start with")
	}

	// Period where template 1 occurs often but is never followed by 2:
	// the rule is contradicted and must be deleted.
	var contradict []Event
	for i := 0; i < 50; i++ {
		contradict = append(contradict, ev("r1", 1, float64(i)*1000))
	}
	res, err := Mine(contradict, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	st := rb.Update(res)
	if st.Deleted == 0 || rb.Has(1, 2) {
		t.Fatalf("contradicted rule survived: %+v, has=%v", st, rb.Has(1, 2))
	}

	// Rebuild, then run a period where template 1 never occurs: the rule
	// must survive (conservative deletion).
	rb = NewRuleBase()
	rb.Update(good)
	var absent []Event
	for i := 0; i < 50; i++ {
		absent = append(absent, ev("r1", 7, float64(i)*1000), ev("r1", 8, float64(i)*1000+1))
	}
	res, err = Mine(absent, Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	st = rb.Update(res)
	if !rb.Has(1, 2) {
		t.Fatal("rule deleted although its antecedent was absent this period")
	}
	if st.Added == 0 {
		t.Fatal("new 7=>8 rule should have been added")
	}
}

func TestRuleBasePairs(t *testing.T) {
	rb := NewRuleBase()
	res, err := Mine(flapEvents("r1", 50), Config{Window: 10 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rb.Update(res)
	pairs := rb.Pairs()
	for _, p := range pairs {
		if p.X >= p.Y {
			t.Fatalf("pair not canonical: %+v", p)
		}
	}
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	rs := rb.Rules()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].X > rs[i].X || (rs[i-1].X == rs[i].X && rs[i-1].Y >= rs[i].Y) {
			t.Fatal("Rules() not sorted")
		}
	}
}

func TestProfileTable5Semantics(t *testing.T) {
	// Two chatty templates (1, 2) + one rare (3).
	events := flapEvents("r1", 100)
	events = append(events, ev("r1", 3, 999999))
	res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.0001, ConfMin: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{1: 100, 2: 100, 3: 1}
	p := res.Profile(0.05, counts)
	if p.TypesTotal != 3 || p.TypesEligible != 2 {
		t.Fatalf("profile = %+v", p)
	}
	if p.TopTypePct < 0.6 || p.TopTypePct > 0.7 {
		t.Fatalf("TopTypePct = %v", p.TopTypePct)
	}
	wantCov := 200.0 / 201.0
	if p.CoveragePct < wantCov-1e-9 || p.CoveragePct > wantCov+1e-9 {
		t.Fatalf("CoveragePct = %v, want %v", p.CoveragePct, wantCov)
	}
	// Tiny SPmin admits everything.
	p = res.Profile(0.000001, counts)
	if p.TypesEligible != 3 || p.CoveragePct != 1 {
		t.Fatalf("loose profile = %+v", p)
	}
	// Degenerate inputs.
	empty := &Result{cfg: res.cfg}
	if p := empty.Profile(0.5, counts); p.TypesTotal != 0 {
		t.Fatalf("empty-result profile = %+v", p)
	}
}

// Property: rule counts are monotone — raising ConfMin can only shrink the
// rule set (the trend behind Figure 6).
func TestRuleCountMonotoneInConfMin(t *testing.T) {
	var events []Event
	for i := 0; i < 60; i++ {
		base := float64(i) * 500
		events = append(events, ev("r1", 1, base), ev("r1", 2, base+1))
		if i%3 == 0 {
			events = append(events, ev("r1", 3, base+2))
		}
	}
	prev := 1 << 30
	for _, cm := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		res, err := Mine(events, Config{Window: 10 * time.Second, SPmin: 0.001, ConfMin: cm})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rules) > prev {
			t.Fatalf("rules grew when ConfMin rose to %v", cm)
		}
		prev = len(res.Rules)
	}
}
