// Package rules implements the paper's template-relationship learning
// (§4.1.4): pairwise association-rule mining over router syslog streams.
//
// Transactions are built with a sliding window: messages are sorted in time
// per router, and for each message the set of distinct templates appearing
// within the next W seconds forms one transaction. An association rule
// X ⇒ Y is kept when X's item support meets SPmin and conf(X ⇒ Y) =
// supp(X∧Y)/supp(X) meets Confmin. Only pairs are mined (|X| = |Y| = 1),
// exactly as in the paper: cheap to compute, easy for a domain expert to
// audit, and transitive closure during grouping recovers larger clusters.
//
// RuleBase holds the evolving rule set and applies the paper's conservative
// weekly update: new qualifying rules are added; an existing rule is deleted
// only when the period's data actively contradicts it (its confidence is
// re-measurable and falls below threshold) — a rule whose antecedent simply
// didn't occur this period survives, since "it is quite possible X becomes
// common again soon".
package rules

import (
	"fmt"
	"sort"
	"time"

	"syslogdigest/internal/par"
)

// Event is the minimal view of an augmented syslog message that mining
// needs: when, where (router), and which template.
type Event struct {
	Time     time.Time
	Router   string
	Template int
}

// Config tunes mining.
type Config struct {
	// Window is W, the sliding transaction window. Zero defaults to 120s
	// (the paper's dataset-A setting).
	Window time.Duration
	// SPmin is the minimum item support (fraction of transactions that
	// contain the template) for a template to participate in rules. Zero
	// defaults to 0.0005.
	SPmin float64
	// ConfMin is the minimum rule confidence. Zero defaults to 0.8.
	ConfMin float64
	// MaxItemsPerTx caps the distinct templates considered in one
	// transaction; message storms otherwise make pair enumeration
	// quadratic in storm size. Zero defaults to 64.
	MaxItemsPerTx int
	// MinEvidence is the minimum number of transactions containing X this
	// period for conf(X ⇒ Y) to be considered re-measured (used by
	// RuleBase deletion). Zero defaults to 5.
	MinEvidence int
	// Pool bounds mining's worker fan-out: routers are partitioned across
	// workers, each counting transactions into a private tally that is
	// merged afterwards (counts are additive, so the result is identical
	// at any worker count). Nil means a default pool at GOMAXPROCS.
	// Runtime knob only — never serialized.
	Pool *par.Pool
}

func (c Config) normalize() (Config, error) {
	if c.Window == 0 {
		c.Window = 120 * time.Second
	}
	if c.Window < 0 {
		return c, fmt.Errorf("rules: negative window %v", c.Window)
	}
	if c.SPmin == 0 {
		c.SPmin = 0.0005
	}
	if c.SPmin < 0 || c.SPmin > 1 {
		return c, fmt.Errorf("rules: SPmin %v out of [0,1]", c.SPmin)
	}
	if c.ConfMin == 0 {
		c.ConfMin = 0.8
	}
	if c.ConfMin < 0 || c.ConfMin > 1 {
		return c, fmt.Errorf("rules: ConfMin %v out of [0,1]", c.ConfMin)
	}
	if c.MaxItemsPerTx == 0 {
		c.MaxItemsPerTx = 64
	}
	if c.MinEvidence == 0 {
		c.MinEvidence = 5
	}
	if c.Pool == nil {
		c.Pool = par.New(0)
	}
	return c, nil
}

// Rule is one directional association rule X ⇒ Y between two template IDs.
type Rule struct {
	X, Y    int
	Support float64 // supp(X ∧ Y): fraction of transactions containing both
	Conf    float64 // supp(X ∧ Y) / supp(X)
}

// PairKey identifies the directional pair (X, Y).
type PairKey struct{ X, Y int }

// Result carries everything one mining run produced: the qualifying rules
// plus the raw statistics RuleBase needs for conservative updates.
type Result struct {
	Transactions int
	// ItemTx counts transactions containing each template.
	ItemTx map[int]int
	// PairTx counts transactions containing each unordered pair; keys are
	// canonical with X < Y.
	PairTx map[PairKey]int
	// Rules are the directional rules meeting SPmin and ConfMin, sorted by
	// (X, Y) for determinism.
	Rules []Rule
	cfg   Config
}

// Mine builds transactions from events (any order; sorted internally per
// router) and mines pairwise rules. Routers are partitioned across
// cfg.Pool's workers, each counting into a private tally; the tallies are
// merged afterwards. Transaction counts are additive across routers, so
// the result is identical to a serial pass at any worker count.
func Mine(events []Event, cfg Config) (*Result, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	byRouter := make(map[string][]Event)
	for _, e := range events {
		byRouter[e.Router] = append(byRouter[e.Router], e)
	}
	routers := make([]string, 0, len(byRouter))
	for r := range byRouter {
		routers = append(routers, r)
	}
	sort.Strings(routers)

	shards := par.Ranges(len(routers), cfg.Pool.Workers())
	partials, _ := par.Map(cfg.Pool, len(shards), func(i int) (*Result, error) {
		part := &Result{
			ItemTx: make(map[int]int),
			PairTx: make(map[PairKey]int),
			cfg:    cfg,
		}
		for _, r := range routers[shards[i][0]:shards[i][1]] {
			stream := byRouter[r]
			sort.SliceStable(stream, func(i, j int) bool { return stream[i].Time.Before(stream[j].Time) })
			mineStream(stream, cfg, part)
		}
		return part, nil
	})

	var res *Result
	if len(partials) == 1 {
		res = partials[0]
	} else {
		res = &Result{
			ItemTx: make(map[int]int),
			PairTx: make(map[PairKey]int),
			cfg:    cfg,
		}
		for _, part := range partials {
			res.Transactions += part.Transactions
			for t, n := range part.ItemTx {
				res.ItemTx[t] += n
			}
			for pk, n := range part.PairTx {
				res.PairTx[pk] += n
			}
		}
	}

	res.Rules = res.rulesFromStats()
	return res, nil
}

// mineStream slides a window over one router's sorted events, emitting one
// transaction per message.
func mineStream(stream []Event, cfg Config, res *Result) {
	j := 0
	items := make([]int, 0, cfg.MaxItemsPerTx)
	seen := make(map[int]bool, cfg.MaxItemsPerTx)
	for i := range stream {
		deadline := stream[i].Time.Add(cfg.Window)
		if j < i {
			j = i
		}
		for j < len(stream) && !stream[j].Time.After(deadline) {
			j++
		}
		// Transaction = distinct templates in stream[i:j], capped.
		items = items[:0]
		for k := range seen {
			delete(seen, k)
		}
		for k := i; k < j && len(items) < cfg.MaxItemsPerTx; k++ {
			t := stream[k].Template
			if !seen[t] {
				seen[t] = true
				items = append(items, t)
			}
		}
		res.Transactions++
		for _, t := range items {
			res.ItemTx[t]++
		}
		for a := 0; a < len(items); a++ {
			for b := a + 1; b < len(items); b++ {
				x, y := items[a], items[b]
				if x > y {
					x, y = y, x
				}
				res.PairTx[PairKey{x, y}]++
			}
		}
	}
}

// rulesFromStats derives the qualifying directional rules from counts.
func (r *Result) rulesFromStats() []Rule {
	if r.Transactions == 0 {
		return nil
	}
	n := float64(r.Transactions)
	var out []Rule
	for pk, both := range r.PairTx {
		supp := float64(both) / n
		for _, dir := range [2]PairKey{{pk.X, pk.Y}, {pk.Y, pk.X}} {
			suppX := float64(r.ItemTx[dir.X]) / n
			if suppX < r.cfg.SPmin || suppX == 0 {
				continue
			}
			conf := supp / suppX
			if conf >= r.cfg.ConfMin {
				out = append(out, Rule{X: dir.X, Y: dir.Y, Support: supp, Conf: conf})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// Conf returns this period's measured confidence for X ⇒ Y and whether it
// is re-measurable (X occurred in at least MinEvidence transactions).
func (r *Result) Conf(x, y int) (conf float64, measurable bool) {
	if r.ItemTx[x] < r.cfg.MinEvidence {
		return 0, false
	}
	px, py := x, y
	if px > py {
		px, py = py, px
	}
	both := r.PairTx[PairKey{px, py}]
	return float64(both) / float64(r.ItemTx[x]), true
}

// RuleBase is the evolving rule knowledge base.
//
// Alongside the directional rule map it maintains a derived partner
// adjacency over template IDs: a sorted partner list per template and an
// unordered-pair membership structure (a dense bitset when IDs are small,
// a set otherwise). The adjacency makes HasPair an O(1) probe and lets
// grouping enumerate exactly the templates a given template can rule-pair
// with (Partners), which is what turns the rule-window scan into a bucket
// lookup. It is maintained eagerly on every mutation — never lazily — so
// read-only use from concurrent shard goroutines stays race-free.
type RuleBase struct {
	rules map[PairKey]Rule

	partners map[int][]int        // template -> ascending rule partners (either direction)
	pairs    map[PairKey]struct{} // unordered pair set, keys canonical X <= Y
	bits     []uint64             // dense pair bitset, nil when IDs exceed bitsetMaxID
	stride   int                  // bitset row width = max template ID + 1
}

// bitsetMaxID bounds the dense pair bitset: IDs above this fall back to the
// pair-set probe ((2^13)^2 bits = 8 MiB ceiling; template IDs are dense
// small ints in practice, so the bitset is normally a few KiB).
const bitsetMaxID = 1 << 13

// NewRuleBase returns an empty rule base.
func NewRuleBase() *RuleBase {
	return &RuleBase{
		rules:    make(map[PairKey]Rule),
		partners: make(map[int][]int),
		pairs:    make(map[PairKey]struct{}),
	}
}

// Len returns the number of directional rules.
func (rb *RuleBase) Len() int { return len(rb.rules) }

// Add inserts or replaces one rule directly. Normal operation goes through
// Update; Add exists for loading a serialized knowledge base and for the
// optional expert adjustment the paper mentions (a domain expert may insert
// or correct rules by hand). The adjacency updates incrementally —
// O(partners) — so loading a serialized base rule by rule stays linear.
func (rb *RuleBase) Add(r Rule) {
	rb.rules[PairKey{r.X, r.Y}] = r
	rb.link(r.X, r.Y)
}

// Remove deletes one directional rule, reporting whether it existed. The
// expert-adjustment counterpart of Add.
func (rb *RuleBase) Remove(x, y int) bool {
	k := PairKey{x, y}
	if _, ok := rb.rules[k]; !ok {
		return false
	}
	delete(rb.rules, k)
	// The unordered pair survives while the opposite direction remains.
	if _, ok := rb.rules[PairKey{y, x}]; !ok {
		rb.unlink(x, y)
	}
	return true
}

// Has reports whether the directional rule X ⇒ Y is present.
func (rb *RuleBase) Has(x, y int) bool {
	_, ok := rb.rules[PairKey{x, y}]
	return ok
}

// HasPair reports whether either direction between the two templates is
// present — grouping ignores rule direction (§4.2.2). One bitset probe when
// IDs are dense, one set probe otherwise.
func (rb *RuleBase) HasPair(x, y int) bool {
	if rb.bits != nil {
		if uint(x) < uint(rb.stride) && uint(y) < uint(rb.stride) {
			bit := uint(x*rb.stride + y)
			return rb.bits[bit>>6]&(1<<(bit&63)) != 0
		}
		return false // every interned pair is inside the bitset's range
	}
	if x > y {
		x, y = y, x
	}
	_, ok := rb.pairs[PairKey{x, y}]
	return ok
}

// Partners returns the templates that rule-pair with t (either direction),
// ascending. The returned slice is the base's internal adjacency — callers
// must not modify it, and must not retain it across a mutation.
func (rb *RuleBase) Partners(t int) []int { return rb.partners[t] }

// link records the unordered pair (x, y) in the adjacency; idempotent.
func (rb *RuleBase) link(x, y int) {
	k := canonPair(x, y)
	if _, ok := rb.pairs[k]; ok {
		return
	}
	rb.pairs[k] = struct{}{}
	insertSorted(rb.partners, x, y)
	if x != y {
		insertSorted(rb.partners, y, x)
	}
	rb.setBit(x, y)
}

// unlink removes the unordered pair (x, y) from the adjacency.
func (rb *RuleBase) unlink(x, y int) {
	k := canonPair(x, y)
	if _, ok := rb.pairs[k]; !ok {
		return
	}
	delete(rb.pairs, k)
	removeSorted(rb.partners, x, y)
	if x != y {
		removeSorted(rb.partners, y, x)
	}
	rb.clearBit(x, y)
}

// setBit marks (x, y) in both orientations, growing (or abandoning) the
// bitset as needed. A nil bitset with pairs present means IDs outgrew
// bitsetMaxID and HasPair probes the pair set instead.
func (rb *RuleBase) setBit(x, y int) {
	if x < 0 || y < 0 || x > bitsetMaxID || y > bitsetMaxID {
		rb.bits, rb.stride = nil, 0
		return
	}
	if hi := max(x, y); hi >= rb.stride {
		rb.rebuildBits(hi + 1)
		return // rebuild replays every pair, including this one
	}
	if rb.bits == nil {
		return // previously abandoned: stay on the pair-set path
	}
	for _, b := range [2]uint{uint(x*rb.stride + y), uint(y*rb.stride + x)} {
		rb.bits[b>>6] |= 1 << (b & 63)
	}
}

func (rb *RuleBase) clearBit(x, y int) {
	if rb.bits == nil || uint(x) >= uint(rb.stride) || uint(y) >= uint(rb.stride) {
		return
	}
	for _, b := range [2]uint{uint(x*rb.stride + y), uint(y*rb.stride + x)} {
		rb.bits[b>>6] &^= 1 << (b & 63)
	}
}

// rebuildBits resizes the bitset to the given stride and replays every
// known pair into it.
func (rb *RuleBase) rebuildBits(stride int) {
	rb.stride = stride
	rb.bits = make([]uint64, (stride*stride+63)/64)
	for k := range rb.pairs {
		if k.X < 0 || k.Y < 0 || k.X >= stride || k.Y >= stride {
			rb.bits, rb.stride = nil, 0
			return
		}
		for _, b := range [2]uint{uint(k.X*stride + k.Y), uint(k.Y*stride + k.X)} {
			rb.bits[b>>6] |= 1 << (b & 63)
		}
	}
}

// reindex rebuilds the whole adjacency from the rule map.
func (rb *RuleBase) reindex() {
	rb.partners = make(map[int][]int)
	rb.pairs = make(map[PairKey]struct{})
	rb.bits, rb.stride = nil, 0
	for k := range rb.rules {
		rb.link(k.X, k.Y)
	}
}

func canonPair(x, y int) PairKey {
	if x > y {
		x, y = y, x
	}
	return PairKey{x, y}
}

// insertSorted adds v to m[key]'s ascending list if absent.
func insertSorted(m map[int][]int, key, v int) {
	s := m[key]
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	m[key] = s
}

// removeSorted drops v from m[key]'s ascending list if present, deleting
// the key once empty.
func removeSorted(m map[int][]int, key, v int) {
	s := m[key]
	i := sort.SearchInts(s, v)
	if i >= len(s) || s[i] != v {
		return
	}
	s = append(s[:i], s[i+1:]...)
	if len(s) == 0 {
		delete(m, key)
	} else {
		m[key] = s
	}
}

// Rules returns all rules sorted by (X, Y).
func (rb *RuleBase) Rules() []Rule {
	out := make([]Rule, 0, len(rb.rules))
	for _, r := range rb.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// Pairs returns the distinct unordered template pairs covered by the base.
func (rb *RuleBase) Pairs() []PairKey {
	seen := make(map[PairKey]bool)
	for pk := range rb.rules {
		k := pk
		if k.X > k.Y {
			k.X, k.Y = k.Y, k.X
		}
		seen[k] = true
	}
	out := make([]PairKey, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// UpdateStats summarizes one periodic update.
type UpdateStats struct {
	Added, Deleted, Total int
}

// Update applies one period's mining result: qualifying rules are added,
// and existing rules whose re-measured confidence falls below ConfMin are
// deleted. A rule whose antecedent lacked evidence this period is kept.
func (rb *RuleBase) Update(res *Result) UpdateStats {
	var st UpdateStats
	for _, r := range res.Rules {
		k := PairKey{r.X, r.Y}
		if _, ok := rb.rules[k]; !ok {
			st.Added++
		}
		rb.rules[k] = r // refresh stats even when already present
	}
	for k := range rb.rules {
		conf, measurable := res.Conf(k.X, k.Y)
		if measurable && conf < res.cfg.ConfMin {
			delete(rb.rules, k)
			st.Deleted++
		}
	}
	// A batch of adds and deletes may have touched many pairs; rebuild the
	// adjacency wholesale rather than tracking the delta per deletion.
	rb.reindex()
	st.Total = len(rb.rules)
	return st
}

// SupportProfile describes, for a given SPmin, which share of template
// types qualifies for mining and what fraction of raw messages those types
// cover — the two columns of the paper's Table 5.
type SupportProfile struct {
	SPmin         float64
	TopTypePct    float64 // fraction of template types with support >= SPmin
	CoveragePct   float64 // fraction of messages carried by those types
	TypesTotal    int
	TypesEligible int
}

// Profile computes the Table 5 row for one SPmin over a mining result plus
// per-template raw message counts.
func (r *Result) Profile(spmin float64, msgCount map[int]int) SupportProfile {
	p := SupportProfile{SPmin: spmin}
	if r.Transactions == 0 || len(msgCount) == 0 {
		return p
	}
	n := float64(r.Transactions)
	var covered, total int
	for t, c := range msgCount {
		total += c
		p.TypesTotal++
		if float64(r.ItemTx[t])/n >= spmin {
			p.TypesEligible++
			covered += c
		}
	}
	if p.TypesTotal > 0 {
		p.TopTypePct = float64(p.TypesEligible) / float64(p.TypesTotal)
	}
	if total > 0 {
		p.CoveragePct = float64(covered) / float64(total)
	}
	return p
}
