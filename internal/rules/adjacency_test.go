package rules

import (
	"math/rand"
	"sort"
	"testing"
)

// hasPairNaive is the pre-index HasPair: two directional map probes.
func hasPairNaive(rb *RuleBase, x, y int) bool {
	return rb.Has(x, y) || rb.Has(y, x)
}

// partnersNaive recomputes t's partner set from the rule map.
func partnersNaive(rb *RuleBase, t int) []int {
	seen := make(map[int]bool)
	for k := range rb.rules {
		if k.X == t {
			seen[k.Y] = true
		}
		if k.Y == t {
			seen[k.X] = true
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// checkAdjacency verifies the derived index against the rule map over the
// given template universe.
func checkAdjacency(t *testing.T, rb *RuleBase, ids []int) {
	t.Helper()
	for _, x := range ids {
		for _, y := range ids {
			if got, want := rb.HasPair(x, y), hasPairNaive(rb, x, y); got != want {
				t.Fatalf("HasPair(%d, %d) = %v, naive = %v", x, y, got, want)
			}
		}
		got := rb.Partners(x)
		want := partnersNaive(rb, x)
		if len(got) != len(want) {
			t.Fatalf("Partners(%d) = %v, want %v", x, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Partners(%d) = %v, want %v", x, got, want)
			}
		}
	}
}

// TestAdjacencyTracksMutations drives a random Add/Remove/Update sequence
// and checks the O(1) probes against the rule map after every step.
func TestAdjacencyTracksMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rb := NewRuleBase()
	ids := []int{0, 1, 2, 3, 5, 8, 13}
	for step := 0; step < 400; step++ {
		x, y := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		switch rng.Intn(3) {
		case 0:
			rb.Add(Rule{X: x, Y: y, Support: 0.1, Conf: 0.9})
		case 1:
			rb.Remove(x, y)
		case 2:
			// A reverse-direction add then a one-direction remove is the
			// case a naive unlink gets wrong.
			rb.Add(Rule{X: y, Y: x, Support: 0.1, Conf: 0.9})
			rb.Remove(x, y)
		}
		checkAdjacency(t, rb, ids)
	}
}

// TestAdjacencySurvivesUpdate mines a small result and applies the
// conservative weekly update, then checks the rebuilt index.
func TestAdjacencySurvivesUpdate(t *testing.T) {
	rb := NewRuleBase()
	rb.Add(Rule{X: 1, Y: 2, Support: 0.2, Conf: 0.9})
	rb.Add(Rule{X: 3, Y: 4, Support: 0.2, Conf: 0.9})
	res := &Result{
		Transactions: 100,
		ItemTx:       map[int]int{1: 50, 2: 50, 3: 2, 4: 50, 5: 40, 6: 40},
		PairTx:       map[PairKey]int{{1, 2}: 45, {5, 6}: 38},
		cfg:          Config{SPmin: 0.0005, ConfMin: 0.8, MinEvidence: 5},
	}
	res.Rules = res.rulesFromStats()
	rb.Update(res)
	checkAdjacency(t, rb, []int{1, 2, 3, 4, 5, 6})
	if !rb.HasPair(5, 6) {
		t.Fatal("update did not add the qualifying pair (5, 6)")
	}
	if !rb.HasPair(3, 4) {
		t.Fatal("update deleted (3, 4) though its antecedent lacked evidence")
	}
}

// TestAdjacencyLargeIDsFallBack: template IDs beyond the bitset ceiling
// must still probe correctly via the pair set.
func TestAdjacencyLargeIDsFallBack(t *testing.T) {
	rb := NewRuleBase()
	rb.Add(Rule{X: 2, Y: 3, Support: 0.1, Conf: 0.9})
	big := bitsetMaxID * 4
	rb.Add(Rule{X: big, Y: 2, Support: 0.1, Conf: 0.9})
	checkAdjacency(t, rb, []int{1, 2, 3, big, big + 1})
	rb.Remove(big, 2)
	checkAdjacency(t, rb, []int{1, 2, 3, big, big + 1})
}

func BenchmarkHasPair(b *testing.B) {
	rb := NewRuleBase()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		rb.Add(Rule{X: rng.Intn(64), Y: rng.Intn(64), Support: 0.1, Conf: 0.9})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.HasPair(i&63, (i>>6)&63)
	}
}
