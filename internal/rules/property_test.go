package rules

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property tests over randomized event streams.

func randomEvents(rng *rand.Rand, n int) []Event {
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	routers := []string{"r1", "r2", "r3"}
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			Time:     base.Add(time.Duration(rng.Intn(86400)) * time.Second),
			Router:   routers[rng.Intn(len(routers))],
			Template: rng.Intn(6),
		}
	}
	return out
}

func TestMineInvariantsQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%200) + 1
		events := randomEvents(rng, n)
		cfg := Config{Window: 60 * time.Second, SPmin: 0.001, ConfMin: 0.5}
		res, err := Mine(events, cfg)
		if err != nil {
			return false
		}
		// One transaction per message.
		if res.Transactions != n {
			return false
		}
		// Item counts bounded by transactions; pair counts by min item count.
		for _, c := range res.ItemTx {
			if c < 1 || c > n {
				return false
			}
		}
		for pk, c := range res.PairTx {
			if pk.X >= pk.Y {
				return false // canonical ordering
			}
			if c > res.ItemTx[pk.X] || c > res.ItemTx[pk.Y] {
				return false
			}
		}
		// Every emitted rule satisfies its thresholds and bounds.
		for _, r := range res.Rules {
			if r.Conf < cfg.ConfMin || r.Conf > 1+1e-12 {
				return false
			}
			if r.Support < 0 || r.Support > 1 {
				return false
			}
			if float64(res.ItemTx[r.X])/float64(n) < cfg.SPmin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: mining is insensitive to input order (events are re-sorted per
// router internally).
func TestMineOrderInvariantQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%150) + 2
		events := randomEvents(rng, n)
		shuffled := append([]Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		cfg := Config{Window: 45 * time.Second, SPmin: 0.001, ConfMin: 0.6}
		a, err := Mine(events, cfg)
		if err != nil {
			return false
		}
		b, err := Mine(shuffled, cfg)
		if err != nil {
			return false
		}
		if len(a.Rules) != len(b.Rules) || a.Transactions != b.Transactions {
			return false
		}
		for i := range a.Rules {
			if a.Rules[i] != b.Rules[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the rule base never contains a rule both directions of which
// were deleted, and Update is idempotent on its own output.
func TestRuleBaseUpdateIdempotentQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		events := randomEvents(rng, int(sz%200)+10)
		cfg := Config{Window: 60 * time.Second, SPmin: 0.001, ConfMin: 0.5}
		res, err := Mine(events, cfg)
		if err != nil {
			return false
		}
		rb := NewRuleBase()
		rb.Update(res)
		n1 := rb.Len()
		st := rb.Update(res)
		return rb.Len() == n1 && st.Added == 0 && st.Deleted == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
