package rules_test

import (
	"fmt"
	"time"

	"syslogdigest/internal/rules"
)

// ExampleMine shows association mining on a stream where template 1 (a link
// state change) is always followed one second later by template 2 (the line
// protocol's reaction): the rule 1 ⇒ 2 is mined at full confidence.
func ExampleMine() {
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	var events []rules.Event
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Minute)
		events = append(events,
			rules.Event{Time: at, Router: "r1", Template: 1},
			rules.Event{Time: at.Add(time.Second), Router: "r1", Template: 2},
		)
	}
	res, err := rules.Mine(events, rules.Config{Window: 30 * time.Second, SPmin: 0.01, ConfMin: 0.8})
	if err != nil {
		panic(err)
	}
	for _, r := range res.Rules {
		fmt.Printf("%d => %d conf=%.2f\n", r.X, r.Y, r.Conf)
	}
	// Output:
	// 1 => 2 conf=1.00
}
