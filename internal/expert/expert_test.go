package expert

import (
	"strings"
	"testing"

	"syslogdigest/internal/event"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/template"
)

func testTemplates() []template.Template {
	return []template.Template{
		template.MustTemplate(0, "LINK-3-UPDOWN|Interface *, changed state to down"),
		template.MustTemplate(1, "LINEPROTO-5-UPDOWN|Line protocol on Interface *, changed state to down"),
		template.MustTemplate(2, "BGP-5-ADJCHANGE|neighbor * vpn vrf * Up"),
	}
}

func TestParseDirectives(t *testing.T) {
	input := `
# a comment
name LINK-3-UPDOWN|Interface *, changed state to down => carrier loss

rule add LINK-3-UPDOWN|Interface *, changed state to down => LINEPROTO-5-UPDOWN|Line protocol on Interface *, changed state to down
rule del BGP-5-ADJCHANGE|neighbor * vpn vrf * Up => LINK-3-UPDOWN|Interface *, changed state to down
`
	ds, err := Parse(strings.NewReader(input), testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("directives = %d", len(ds))
	}
	if ds[0].Kind != KindName || ds[0].X != 0 || ds[0].Name != "carrier loss" {
		t.Fatalf("name directive = %+v", ds[0])
	}
	if ds[1].Kind != KindRuleAdd || ds[1].X != 0 || ds[1].Y != 1 {
		t.Fatalf("add directive = %+v", ds[1])
	}
	if ds[2].Kind != KindRuleDel || ds[2].X != 2 || ds[2].Y != 0 {
		t.Fatalf("del directive = %+v", ds[2])
	}
}

func TestParseDisplayFormAccepted(t *testing.T) {
	// Operators may paste the display form (space after code) directly.
	input := "name LINK-3-UPDOWN Interface *, changed state to down => carrier loss\n"
	ds, err := Parse(strings.NewReader(input), testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].X != 0 {
		t.Fatalf("directives = %+v", ds)
	}
}

func TestParseAccumulatesErrors(t *testing.T) {
	input := `
name NOPE-1-NOPE|does not exist => x
rule add also bad
frobnicate
name LINK-3-UPDOWN|Interface *, changed state to down => ok
`
	ds, err := Parse(strings.NewReader(input), testTemplates())
	if err == nil {
		t.Fatal("bad directives accepted")
	}
	// The good directive still parsed, and the error mentions all three
	// problems.
	if len(ds) != 1 {
		t.Fatalf("good directives = %d", len(ds))
	}
	msg := err.Error()
	if !strings.Contains(msg, "3 bad directive") {
		t.Fatalf("error = %q", msg)
	}
}

func TestApply(t *testing.T) {
	ds := []Directive{
		{Kind: KindName, X: 0, Name: "carrier loss"},
		{Kind: KindRuleAdd, X: 0, Y: 1},
		{Kind: KindRuleDel, X: 2, Y: 0},
	}
	rb := rules.NewRuleBase()
	rb.Add(rules.Rule{X: 2, Y: 0, Conf: 0.9})
	labeler := event.NewLabeler(testTemplates())

	n := Apply(ds, rb, labeler)
	if n != 3 {
		t.Fatalf("applied = %d", n)
	}
	if !rb.HasPair(0, 1) {
		t.Fatal("expert rule not added")
	}
	if rb.HasPair(2, 0) {
		t.Fatal("expert deletion did not take")
	}
	if got := labeler.TemplateName(0); got != "carrier loss" {
		t.Fatalf("name = %q", got)
	}
}

func TestApplyNilTargets(t *testing.T) {
	ds := []Directive{{Kind: KindName, X: 0, Name: "x"}, {Kind: KindRuleAdd, X: 0, Y: 1}}
	if n := Apply(ds, nil, nil); n != 0 {
		t.Fatalf("applied to nil targets: %d", n)
	}
}

func TestKindString(t *testing.T) {
	if KindName.String() != "name" || KindRuleAdd.String() != "rule add" || KindRuleDel.String() != "rule del" {
		t.Fatal("kind names wrong")
	}
}

// TestExpertRuleSurvivesConservativeUpdate: an asserted rule whose
// antecedent never occurs in the next period must survive (conf carries 1.0
// and absence is not contradiction).
func TestExpertRuleSurvivesConservativeUpdate(t *testing.T) {
	rb := rules.NewRuleBase()
	Apply([]Directive{{Kind: KindRuleAdd, X: 7, Y: 8}}, rb, nil)
	res, err := rules.Mine(nil, rules.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rb.Update(res)
	if !rb.Has(7, 8) {
		t.Fatal("expert rule deleted by an empty period")
	}
}
