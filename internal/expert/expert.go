// Package expert implements the optional domain-expert input channel from
// the paper's architecture (Figure 1): "Domain experts can be asked to
// comment on and/or adjust such associations ... but this is entirely
// optional", and presentation naming — "Domain experts can certainly assign
// a name for each type of event".
//
// Adjustments are a plain text file, one directive per line:
//
//	# comments and blank lines are ignored
//	name LINK-3-UPDOWN|Interface *, changed state to down => link down
//	rule add LINK-3-UPDOWN|Interface *, changed state to down => LINEPROTO-5-UPDOWN|Line protocol on Interface *, changed state to down
//	rule del BGP-5-ADJCHANGE|neighbor * vpn vrf * Up => SYS-5-CONFIG_I|Configured from console by admin on vty0 (*)
//
// Templates are referenced by their display pattern (code|words), the form
// operators see in reports, and resolved against the knowledge base's
// learned templates; directives naming unknown templates are reported as
// errors so typos do not silently no-op.
package expert

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"syslogdigest/internal/event"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/template"
)

// Directive is one parsed adjustment.
type Directive struct {
	Line int
	Kind Kind
	// X and Y are resolved template IDs (Y unused for names).
	X, Y int
	Name string
}

// Kind is a directive type.
type Kind int

const (
	// KindName assigns a display name to a template.
	KindName Kind = iota
	// KindRuleAdd inserts an association rule X => Y.
	KindRuleAdd
	// KindRuleDel removes the association rule X => Y (both directions).
	KindRuleDel
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindName:
		return "name"
	case KindRuleAdd:
		return "rule add"
	case KindRuleDel:
		return "rule del"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// resolver maps template display patterns to IDs.
type resolver struct {
	byPattern map[string]int
}

func newResolver(templates []template.Template) *resolver {
	r := &resolver{byPattern: make(map[string]int, len(templates))}
	for _, t := range templates {
		r.byPattern[t.String()] = t.ID
	}
	return r
}

func (r *resolver) resolve(ref string) (int, error) {
	// Accept both "CODE|words" and the display form "CODE words".
	key := ref
	if i := strings.IndexByte(ref, '|'); i >= 0 {
		key = ref[:i] + " " + ref[i+1:]
	}
	if id, ok := r.byPattern[key]; ok {
		return id, nil
	}
	return 0, fmt.Errorf("no learned template matches %q", ref)
}

// Parse reads directives against a set of learned templates. All errors are
// accumulated so an operator sees every problem in one pass.
func Parse(r io.Reader, templates []template.Template) ([]Directive, error) {
	res := newResolver(templates)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1024*1024)
	var out []Directive
	var errs []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := parseLine(line, lineNo, res)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("expert: read: %w", err)
	}
	if len(errs) > 0 {
		return out, fmt.Errorf("expert: %d bad directive(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
	}
	return out, nil
}

func parseLine(line string, lineNo int, res *resolver) (Directive, error) {
	bad := func(format string, args ...any) (Directive, error) {
		return Directive{}, fmt.Errorf("line %d: "+format, append([]any{lineNo}, args...)...)
	}
	switch {
	case strings.HasPrefix(line, "name "):
		rest := strings.TrimPrefix(line, "name ")
		ref, name, ok := cutArrow(rest)
		if !ok || name == "" {
			return bad("name directive needs '<template> => <name>'")
		}
		id, err := res.resolve(ref)
		if err != nil {
			return bad("%v", err)
		}
		return Directive{Line: lineNo, Kind: KindName, X: id, Name: name}, nil
	case strings.HasPrefix(line, "rule add "), strings.HasPrefix(line, "rule del "):
		kind := KindRuleAdd
		rest := strings.TrimPrefix(line, "rule add ")
		if strings.HasPrefix(line, "rule del ") {
			kind = KindRuleDel
			rest = strings.TrimPrefix(line, "rule del ")
		}
		xref, yref, ok := cutArrow(rest)
		if !ok {
			return bad("rule directive needs '<template> => <template>'")
		}
		x, err := res.resolve(xref)
		if err != nil {
			return bad("%v", err)
		}
		y, err := res.resolve(yref)
		if err != nil {
			return bad("%v", err)
		}
		return Directive{Line: lineNo, Kind: kind, X: x, Y: y}, nil
	default:
		return bad("unknown directive %q", line)
	}
}

func cutArrow(s string) (left, right string, ok bool) {
	i := strings.Index(s, "=>")
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:]), true
}

// Apply executes directives against a rule base and labeler. Either target
// may be nil to skip that class of directive. It returns how many
// directives took effect.
func Apply(ds []Directive, rb *rules.RuleBase, labeler *event.Labeler) int {
	applied := 0
	for _, d := range ds {
		switch d.Kind {
		case KindName:
			if labeler != nil {
				labeler.SetName(d.X, d.Name)
				applied++
			}
		case KindRuleAdd:
			if rb != nil {
				// Expert rules carry full confidence: they are asserted,
				// not mined, and the conservative updater will keep them
				// unless the data actively contradicts them.
				rb.Add(rules.Rule{X: d.X, Y: d.Y, Support: 0, Conf: 1})
				applied++
			}
		case KindRuleDel:
			if rb != nil {
				if rb.Remove(d.X, d.Y) {
					applied++
				}
				if rb.Remove(d.Y, d.X) {
					applied++
				}
			}
		}
	}
	return applied
}
