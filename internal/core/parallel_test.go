package core

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"syslogdigest/internal/gen"
)

// parallelTestCorpus generates a learning + online split for determinism
// checks; distinct seeds keep the halves independent like the paper's
// training/reporting split.
func parallelTestCorpus(t *testing.T, kind gen.DatasetKind) (*gen.Dataset, *gen.Dataset) {
	t.Helper()
	learn, err := gen.Generate(gen.Spec{
		Kind: kind, Routers: 16, Seed: 3,
		Duration: 36 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	online, err := gen.Generate(gen.Spec{
		Kind: kind, Routers: 16, Seed: 1003,
		Start:    learn.Messages[len(learn.Messages)-1].Time.Add(time.Hour),
		Duration: 12 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return learn, online
}

// TestLearnDeterministicAcrossParallelism is the tentpole's core guarantee:
// the knowledge base serializes to byte-identical JSON at any worker count,
// including the calibration sweep.
func TestLearnDeterministicAcrossParallelism(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		t.Run(kind.String(), func(t *testing.T) {
			learn, _ := parallelTestCorpus(t, kind)
			var baseline []byte
			for _, j := range []int{1, 2, 8} {
				params := DefaultParams()
				params.Parallelism = j
				params.CalibrateTemporal = true
				kb, err := NewLearner(params).Learn(learn.Messages, learn.Net.Configs)
				if err != nil {
					t.Fatalf("j=%d: %v", j, err)
				}
				var buf bytes.Buffer
				if err := kb.Save(&buf); err != nil {
					t.Fatalf("j=%d: save: %v", j, err)
				}
				if baseline == nil {
					baseline = buf.Bytes()
					continue
				}
				if !bytes.Equal(baseline, buf.Bytes()) {
					t.Fatalf("j=%d knowledge base differs from serial (len %d vs %d)",
						j, buf.Len(), len(baseline))
				}
			}
		})
	}
}

// TestDigestDeterministicAcrossParallelism checks the online half: events,
// their grouping, and the augmented view are identical at any worker count.
func TestDigestDeterministicAcrossParallelism(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		t.Run(kind.String(), func(t *testing.T) {
			learn, online := parallelTestCorpus(t, kind)
			kb, err := NewLearner(DefaultParams()).Learn(learn.Messages, learn.Net.Configs)
			if err != nil {
				t.Fatal(err)
			}
			var baseline *DigestResult
			for _, j := range []int{1, 2, 8} {
				d, err := NewDigester(kb)
				if err != nil {
					t.Fatalf("j=%d: %v", j, err)
				}
				d.SetParallelism(j)
				res, err := d.Digest(online.Messages)
				if err != nil {
					t.Fatalf("j=%d: %v", j, err)
				}
				if baseline == nil {
					baseline = res
					continue
				}
				if !reflect.DeepEqual(baseline.Events, res.Events) {
					t.Fatalf("j=%d events differ from serial (%d vs %d events)",
						j, len(res.Events), len(baseline.Events))
				}
				if !reflect.DeepEqual(baseline.Messages, res.Messages) {
					t.Fatalf("j=%d augmented messages differ from serial", j)
				}
				if !reflect.DeepEqual(baseline.ActiveRules, res.ActiveRules) {
					t.Fatalf("j=%d active rules differ from serial", j)
				}
			}
		})
	}
}

// TestAugmentConcurrent hammers one knowledge base from many goroutines;
// run under -race (make check) it proves the KB is read-only after finish().
func TestAugmentConcurrent(t *testing.T) {
	learn, online := parallelTestCorpus(t, gen.DatasetA)
	kb, err := NewLearner(DefaultParams()).Learn(learn.Messages, learn.Net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	msgs := online.Messages
	if len(msgs) > 2000 {
		msgs = msgs[:2000]
	}
	want := kb.AugmentAll(msgs)

	const goroutines = 8
	var wg sync.WaitGroup
	got := make([][]PlusMessage, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]PlusMessage, len(msgs))
			for i := range msgs {
				out[i] = kb.Augment(&msgs[i])
			}
			got[g] = out
		}(g)
	}
	wg.Wait()
	for g := range got {
		if !reflect.DeepEqual(want, got[g]) {
			t.Fatalf("goroutine %d saw different augment results", g)
		}
	}
}
