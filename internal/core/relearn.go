package core

import (
	"fmt"

	"syslogdigest/internal/par"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/template"
)

// RelearnStats summarizes one periodic knowledge refresh.
type RelearnStats struct {
	// KeptTemplates are re-discovered patterns that kept their IDs.
	KeptTemplates int
	// NewTemplates got fresh IDs.
	NewTemplates int
	// RetiredTemplates were not re-discovered this period but are retained
	// (conservatively, like rules: their signatures may recur).
	RetiredTemplates int
	// Rules carries the rule-base update of the same period.
	Rules rules.UpdateStats
}

// Relearn refreshes the knowledge base from a new historical period while
// keeping template IDs stable: a template ID is the foreign key the rule
// base, frequency table, and any operator annotations hang off, so
// re-learning must not renumber surviving patterns. Re-discovered patterns
// keep their IDs; genuinely new patterns (new router OS, new message
// formats — the paper's motivating maintenance problem) are appended with
// fresh IDs; disappeared patterns are retained.
//
// The same period also refreshes signature frequencies and applies the
// conservative rule update.
func (l *Learner) Relearn(kb *KnowledgeBase, period []syslogmsg.Message) (RelearnStats, error) {
	var st RelearnStats
	if kb == nil || kb.matcher == nil {
		return st, fmt.Errorf("core: knowledge base not initialized")
	}
	topt, rcfg := l.stageOptions()
	fresh := template.Learn(period, topt)

	maxID := -1
	for _, t := range kb.Templates {
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	seen := make(map[int]bool, len(kb.Templates))
	merged := append([]template.Template(nil), kb.Templates...)
	for _, nt := range fresh {
		matched := false
		for _, old := range kb.Templates {
			if old.Equal(nt) {
				matched = true
				seen[old.ID] = true
				break
			}
		}
		if matched {
			st.KeptTemplates++
			continue
		}
		maxID++
		nt.ID = maxID
		merged = append(merged, nt)
		st.NewTemplates++
	}
	st.RetiredTemplates = len(kb.Templates) - st.KeptTemplates
	kb.Templates = merged
	kb.matcher = template.NewMatcher(kb.Templates)
	// The matcher changed, so cached (router, code, detail) answers are
	// stale; flush, and re-point the new matcher at the registry.
	kb.resetMatchCache()
	if kb.reg != nil {
		kb.matcher.Instrument(kb.reg)
	}

	// Refresh frequencies and rules with the period's augmented view.
	plus := kb.augmentWith(l.pool, period)
	for i := range plus {
		kb.Freq.Add(plus[i].Router, plus[i].Template, 1)
	}
	res, err := rules.Mine(RuleEvents(plus), rcfg)
	if err != nil {
		return st, fmt.Errorf("core: rule mining: %w", err)
	}
	st.Rules = kb.RuleBase.Update(res)
	return st, nil
}

// AugmentAllParallel is AugmentAll fanned out over workers; the knowledge
// base is immutable during augmentation, so this is safe (see the
// KnowledgeBase type comment). workers <= 0 means GOMAXPROCS. Order is
// preserved, so the output is identical to AugmentAll.
func (kb *KnowledgeBase) AugmentAllParallel(msgs []syslogmsg.Message, workers int) []PlusMessage {
	return kb.augmentWith(par.New(workers), msgs)
}
