package core

import (
	"sync"

	"syslogdigest/internal/locparse"
)

// DefaultMatchCache is the match-cache capacity when Params.MatchCache is 0.
const DefaultMatchCache = 8192

// cacheKey identifies one augmentation outcome. The detail alone is not
// enough: location grounding is relative to the originating router (the same
// interface token resolves differently per router, and the primary location
// degrades to the router itself), so the router is part of the key. A struct
// of strings keys the map directly — no concatenation allocation per lookup.
type cacheKey struct {
	router, code, detail string
}

// cacheVal is everything Augment computes for a message beyond its raw
// fields: the matched template and the parsed-location outcome. Slices
// inside info are shared by every cache hit; see KnowledgeBase.Augment for
// the read-only contract.
type cacheVal struct {
	template int
	info     locparse.Info
}

// matchCache is a bounded repeat-message cache with clock (second-chance)
// eviction: a fixed slot ring, a reference bit set on hit, and a hand that
// clears reference bits until it finds a cold slot to evict. Clock keeps
// hot entries resident like LRU but needs no per-access list surgery — a
// hit is one map lookup and one bool store under a short critical section.
//
// The cache is an optimization, never a semantic: values are exactly what
// the miss path would compute from the immutable knowledge base, so results
// are byte-identical whatever the hit pattern, worker count, or eviction
// history. Safe for concurrent use.
type matchCache struct {
	mu    sync.Mutex
	idx   map[cacheKey]int32
	slots []cacheSlot
	hand  int32
}

type cacheSlot struct {
	key  cacheKey
	val  cacheVal
	ref  bool
	used bool
}

// newMatchCache builds a cache with the given capacity (entries); capacity
// must be positive.
func newMatchCache(capacity int) *matchCache {
	return &matchCache{
		idx:   make(map[cacheKey]int32, capacity),
		slots: make([]cacheSlot, capacity),
	}
}

// get returns the cached value for key, marking the slot recently used.
func (c *matchCache) get(key cacheKey) (cacheVal, bool) {
	c.mu.Lock()
	i, ok := c.idx[key]
	if !ok {
		c.mu.Unlock()
		return cacheVal{}, false
	}
	c.slots[i].ref = true
	v := c.slots[i].val
	c.mu.Unlock()
	return v, true
}

// put inserts key → val, reporting whether an existing entry was evicted.
// Concurrent workers may race to insert the same key; the duplicate insert
// overwrites with an identical value, so the race is benign.
func (c *matchCache) put(key cacheKey, val cacheVal) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.idx[key]; ok {
		c.slots[i].val = val
		c.slots[i].ref = true
		return false
	}
	// Advance the hand to a victim: free slot, or the first slot whose
	// reference bit is already clear (clearing bits as it passes). With
	// every bit set this degenerates to FIFO after one lap, so the walk is
	// bounded by 2×capacity.
	for {
		s := &c.slots[c.hand]
		i := c.hand
		c.hand = (c.hand + 1) % int32(len(c.slots))
		if !s.used {
			*s = cacheSlot{key: key, val: val, used: true}
			c.idx[key] = i
			return false
		}
		if s.ref {
			s.ref = false
			continue
		}
		delete(c.idx, s.key)
		*s = cacheSlot{key: key, val: val, used: true}
		c.idx[key] = i
		return true
	}
}

// len returns the number of resident entries (tests only).
func (c *matchCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idx)
}
