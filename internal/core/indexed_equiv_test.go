package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
)

// learnStorm builds a knowledge base from the normal learnSmall corpus,
// then generates a flap-storm corpus over the same topology (same kind,
// router count, and seed, so the network is identical): link, BGP, and
// tunnel episodes at an order of magnitude above the learn-time rates plus
// heavy noise, so the rule and cross windows stay near-full with messages
// whose templates are mostly NOT rule partners of each other — the regime
// the template index exists for. This mirrors deployment: knowledge mined
// offline from history, applied during a storm.
func learnStorm(t *testing.T) (*KnowledgeBase, *gen.Dataset) {
	t.Helper()
	kb, _ := learnSmall(t, gen.DatasetA)
	storm, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 16, Seed: 3,
		Duration: 6 * time.Hour,
		Rates: gen.Rates{
			LinkFlap: 40, Controller: 6, BGPFlap: 20, CPUSpike: 60,
			PeriodicMsg: 12000, Noise: 200000, Config: 60, EnvAlarm: 24, TunnelFlap: 15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Storm-tuned digest parameters: a wide rule window and a raised scan
	// cap, so the windows actually hold the storm instead of trimming to
	// the newest burst. Identical for both engines under test.
	kb.Params.Rules.Window = 600 * time.Second
	kb.Params.MaxScan = 4096
	return kb, storm
}

// stormRun streams the whole corpus through one engine configuration and
// returns the emitted events plus a metrics snapshot.
func stormRun(t *testing.T, kb *KnowledgeBase, ds *gen.Dataset, workers int, linear bool) ([]event.Event, obs.Snapshot) {
	t.Helper()
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	d.SetLinearScan(linear)
	reg := obs.NewRegistry()
	st := NewStreamerWith(d, StreamerOptions{StreamWorkers: workers})
	defer st.Close()
	st.Instrument(reg)
	var events []event.Event
	for _, m := range ds.Messages {
		res, err := st.Push(m)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			events = append(events, res.Events...)
		}
	}
	res, err := st.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		events = append(events, res.Events...)
	}
	return events, reg.Snapshot()
}

// TestStormIndexedMatchesLinear is the end-to-end differential for the
// template-indexed windows on a corpus that stresses them: at worker
// counts 1 and 4, the indexed engine must emit the exact event multiset
// the linear engine does and match the same number of rule pairs, while
// examining at least 5x fewer rule-window candidates.
func TestStormIndexedMatchesLinear(t *testing.T) {
	kb, ds := learnStorm(t)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			evLin, snapLin := stormRun(t, kb, ds, workers, true)
			evIdx, snapIdx := stormRun(t, kb, ds, workers, false)
			if len(evIdx) != len(evLin) {
				t.Fatalf("indexed emitted %d events, linear %d", len(evIdx), len(evLin))
			}
			nl, ni := normalizeEvents(evLin), normalizeEvents(evIdx)
			for i := range ni {
				if !reflect.DeepEqual(ni[i], nl[i]) {
					t.Fatalf("event %d diverges:\nindexed %+v\nlinear  %+v", i, ni[i], nl[i])
				}
			}
			pairsIdx := snapIdx.Counter("group.rule.pairs_matched")
			pairsLin := snapLin.Counter("group.rule.pairs_matched")
			if pairsIdx != pairsLin {
				t.Fatalf("rule pairs diverge: indexed %d linear %d", pairsIdx, pairsLin)
			}
			candIdx := snapIdx.Counter("group.rule.candidates_scanned")
			candLin := snapLin.Counter("group.rule.candidates_scanned")
			if candIdx == 0 || candLin == 0 {
				t.Fatalf("degenerate scan counts: indexed %d linear %d", candIdx, candLin)
			}
			if candLin < 5*candIdx {
				t.Fatalf("rule-scan reduction %.2fx < 5x (indexed %d, linear %d)",
					float64(candLin)/float64(candIdx), candIdx, candLin)
			}
			crossIdx := snapIdx.Counter("group.cross.candidates_scanned")
			crossLin := snapLin.Counter("group.cross.candidates_scanned")
			if crossIdx > crossLin {
				t.Fatalf("cross index scanned more than linear: %d > %d", crossIdx, crossLin)
			}
			t.Logf("workers=%d rule cands: linear %d indexed %d (%.1fx); cross: linear %d indexed %d (%.1fx)",
				workers, candLin, candIdx, float64(candLin)/float64(candIdx),
				crossLin, crossIdx, float64(crossLin)/float64(crossIdx))
		})
	}
}
