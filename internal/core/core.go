// Package core wires the paper's components into the two halves of Figure 1:
//
//   - Learner (offline domain knowledge learning): template signature
//     identification over historical syslog, location dictionary
//     construction from router configs, temporal pattern calibration, and
//     association rule mining — producing a KnowledgeBase;
//   - Digester (online processing): signature matching and location parsing
//     augment raw messages into Syslog+ messages, the three grouping passes
//     form events, and prioritization ranks them for presentation.
//
// The KnowledgeBase serializes to JSON so learning and digesting can run as
// separate processes (cmd/sdlearn, cmd/sddigest), mirroring the paper's
// periodic-offline/continuous-online split.
package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/expert"
	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/locparse"
	"syslogdigest/internal/netconf"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/par"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/stream"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/template"
	"syslogdigest/internal/temporal"
	"syslogdigest/internal/textutil"
)

// PlusMessage is a Syslog+ message: the raw message augmented with its
// matched template and parsed locations (§3.1).
type PlusMessage struct {
	syslogmsg.Message
	// Template is the matched template ID, or -1 when no learned template
	// of the message's code matches.
	Template int
	// Loc is the primary (finest) location; AllLocs every resolved one.
	Loc     locdict.Location
	AllLocs []locdict.Location
	// Peers are other routers the message references.
	Peers []string
}

// Params bundles every tunable of the pipeline; the zero value is filled
// with the paper's Table 6 defaults on use.
type Params struct {
	// Template tunes offline template learning.
	Template template.Options
	// Temporal are the online grouping EWMA parameters (learned offline
	// when Calibrate is enabled).
	Temporal temporal.Params
	// Rules tunes association mining; Rules.Window doubles as the
	// rule-based grouping window W.
	Rules rules.Config
	// CrossWindow is the cross-router near-simultaneity bound (1s).
	CrossWindow time.Duration
	// MaxScan caps how many window entries one message is compared
	// against in the rule and cross passes, bounding worst-case storm
	// cost. 0 means the grouping default (256). Raising it widens the
	// effective window during bursts — a tuning parameter with output
	// semantics, not a runtime-only knob.
	MaxScan int
	// CalibrateTemporal makes Learn sweep alpha/beta grids instead of
	// trusting Temporal as given.
	CalibrateTemporal bool
	// Parallelism bounds the worker fan-out of every parallel stage, both
	// offline (template learning, temporal calibration, rule mining) and
	// online (batch augmentation, the temporal grouping pass). 0 means
	// runtime.GOMAXPROCS(0); 1 forces the serial path. Every parallel
	// path is deterministic — output is byte-identical at any setting.
	// Runtime knob only: it is not part of the learned knowledge and is
	// not serialized into the knowledge base (a reloaded base defaults to
	// 0 and can be re-tuned per process via the -j flags).
	Parallelism int
	// StreamWorkers selects the streaming engine the online pipeline runs:
	// <= 1 means the serial stream.Engine, N > 1 the sharded engine with N
	// router-hashed shard workers feeding one merge stage. Output is
	// byte-identical at any setting (events, scores, IDs, emission order);
	// only throughput and event delivery timing change. Like Parallelism
	// this is a runtime knob, never serialized into the knowledge base —
	// tune per process via SetStreamWorkers or the -stream-workers flags.
	StreamWorkers int
	// ProvisionalHorizon enables two-tier event emission on the streaming
	// path when positive: an open group that outlives this much log time
	// publishes a provisional record (revision 0) and then revised or
	// superseded records as it grows or merges, alongside the unchanged
	// final stream. Meant to be seconds against the hours-scale closure
	// horizon; zero disables the provisional tier (final records only).
	// Like StreamWorkers this is a runtime delivery knob, never serialized
	// into the knowledge base: the final stream is byte-identical at any
	// setting. Tune per process via SetProvisionalHorizon or the
	// -provisional flags.
	ProvisionalHorizon time.Duration
	// MatchCache bounds the repeat-message augment cache in entries:
	// messages whose (router, code, detail) was augmented before reuse the
	// cached template match and parsed locations instead of re-matching.
	// 0 means DefaultMatchCache; negative disables caching. Like
	// Parallelism this is a runtime knob, never serialized: cached values
	// are exactly what the miss path computes, so the setting (and the hit
	// pattern) can never change output. Tune per process via SetMatchCache
	// or the -match-cache flags.
	MatchCache int
}

// DefaultParams returns the paper's Table 6 configuration for dataset A;
// dataset B differs only in W (40s) and alpha (0.075).
func DefaultParams() Params {
	return Params{
		Temporal:    temporal.DefaultParams(),
		Rules:       rules.Config{Window: 120 * time.Second, SPmin: 0.0005, ConfMin: 0.8},
		CrossWindow: time.Second,
	}
}

func (p Params) normalize() Params {
	if p.Temporal == (temporal.Params{}) {
		p.Temporal = temporal.DefaultParams()
	}
	if p.Temporal.Smin == 0 {
		p.Temporal.Smin = time.Second
	}
	if p.Temporal.Smax == 0 {
		p.Temporal.Smax = 3 * time.Hour
	}
	if p.Rules.Window == 0 {
		p.Rules.Window = 120 * time.Second
	}
	if p.Rules.SPmin == 0 {
		p.Rules.SPmin = 0.0005
	}
	if p.Rules.ConfMin == 0 {
		p.Rules.ConfMin = 0.8
	}
	if p.CrossWindow == 0 {
		p.CrossWindow = time.Second
	}
	return p
}

// KnowledgeBase is the output of offline learning and the input of online
// digesting.
//
// Concurrency: the derived indexes (template matcher, location dictionary,
// location parser) are built once by finish() and never mutated afterwards
// — matching and parsing are pure lookups. Augment and AugmentAll are
// therefore safe to call from any number of goroutines concurrently, which
// is what lets the digester shard batches across workers. Mutating methods
// (Relearn, UpdateRules, ApplyExpert) are NOT safe to run concurrently
// with augmentation; they follow the paper's periodic-offline cadence.
type KnowledgeBase struct {
	Params    Params
	Templates []template.Template
	RuleBase  *rules.RuleBase
	Freq      *event.FreqTable
	Configs   []*netconf.Config
	// ExpertNames are operator-assigned template names (template ID →
	// display name), the paper's optional expert input for presentation.
	ExpertNames map[int]string

	matcher *template.Matcher
	dict    *locdict.Dictionary
	parser  *locparse.Parser
	cache   *matchCache
	met     kbMetrics
	reg     *obs.Registry
}

// kbMetrics are the knowledge base's optional augment-path counters; the
// zero value records nothing (obs metrics are nil-safe).
type kbMetrics struct {
	cacheHits      *obs.Counter // digest.match.cache.hits
	cacheMisses    *obs.Counter // digest.match.cache.misses
	cacheEvictions *obs.Counter // digest.match.cache.evictions
}

// finish builds the derived indexes after the learned fields are set.
func (kb *KnowledgeBase) finish() error {
	if kb.RuleBase == nil {
		kb.RuleBase = rules.NewRuleBase()
	}
	if kb.Freq == nil {
		kb.Freq = event.NewFreqTable()
	}
	kb.matcher = template.NewMatcher(kb.Templates)
	kb.resetMatchCache()
	if kb.reg != nil {
		kb.matcher.Instrument(kb.reg)
	}
	dict, err := locdict.Build(kb.Configs)
	if err != nil {
		return fmt.Errorf("core: location dictionary: %w", err)
	}
	kb.dict = dict
	kb.parser = locparse.New(dict)
	// Nothing in the pipeline reads Info.Unresolved; dropping it saves an
	// allocation per cache-missing message on the augment hot path.
	kb.parser.DropUnresolved()
	return nil
}

// resetMatchCache (re)builds the repeat-message cache from Params.MatchCache.
// Any mutation of the matching inputs (Relearn swapping the matcher) must
// call it: stale entries would otherwise serve the old matcher's answers.
func (kb *KnowledgeBase) resetMatchCache() {
	size := kb.Params.MatchCache
	if size == 0 {
		size = DefaultMatchCache
	}
	if size < 0 {
		kb.cache = nil
		return
	}
	kb.cache = newMatchCache(size)
}

// SetMatchCache resizes the repeat-message augment cache (0 = default,
// negative = disabled) and flushes it. Not safe to call concurrently with
// augmentation — it is a between-batches tuning knob, like SetParallelism.
func (kb *KnowledgeBase) SetMatchCache(entries int) {
	kb.Params.MatchCache = entries
	kb.resetMatchCache()
}

// Instrument publishes the knowledge base's augment-path metrics into reg:
// the repeat-message cache counters (digest.match.cache.{hits,misses,
// evictions}) and the matcher's candidate-scan counter
// (digest.match.candidates_scanned). Call before augmentation begins; a nil
// registry leaves the base uninstrumented. Digester.Instrument calls this,
// so instrumenting a digester covers its knowledge base.
func (kb *KnowledgeBase) Instrument(reg *obs.Registry) {
	kb.reg = reg
	kb.met = kbMetrics{
		cacheHits:      reg.Counter("digest.match.cache.hits"),
		cacheMisses:    reg.Counter("digest.match.cache.misses"),
		cacheEvictions: reg.Counter("digest.match.cache.evictions"),
	}
	kb.matcher.Instrument(reg)
}

// Dictionary exposes the location dictionary (read-only use).
func (kb *KnowledgeBase) Dictionary() *locdict.Dictionary { return kb.dict }

// Matcher exposes the template matcher (read-only use).
func (kb *KnowledgeBase) Matcher() *template.Matcher { return kb.matcher }

// tokenScratch pools Augment's token buffers: operational syslog details
// tokenize into a handful of words, and neither the matcher nor the parser
// retains the slice, so one buffer per worker serves the whole steady state.
var tokenScratch = sync.Pool{New: func() any { return &tokenBuf{} }}

type tokenBuf struct {
	toks []string
}

// Augment converts one raw message into a Syslog+ message using the learned
// templates and location dictionary. The detail is tokenized once (into a
// pooled buffer) and the tokens shared between signature matching and
// location parsing — both consume the same whitespace split, and this is
// the hottest path in the online pipeline. Safe for concurrent use (see the
// type comment).
//
// Repeated messages — same (router, code, detail), the dominant shape of
// operational syslog — are served from the bounded match cache when enabled
// (Params.MatchCache): tokenization, signature matching, and location
// parsing are all skipped. Cache hits share the AllLocs and Peers backing
// arrays across the PlusMessages of identical raw messages; the pipeline
// never mutates them, and neither may callers (treat both as read-only,
// which was already the practical contract).
func (kb *KnowledgeBase) Augment(m *syslogmsg.Message) PlusMessage {
	pm := PlusMessage{Message: *m, Template: -1}
	c := kb.cache
	var key cacheKey
	if c != nil {
		key = cacheKey{router: m.Router, code: m.Code, detail: m.Detail}
		if v, ok := c.get(key); ok {
			kb.met.cacheHits.Inc()
			pm.Template = v.template
			pm.Loc = v.info.Primary
			pm.AllLocs = v.info.All
			pm.Peers = v.info.PeerRouters
			return pm
		}
		kb.met.cacheMisses.Inc()
	}
	sc := tokenScratch.Get().(*tokenBuf)
	toks := textutil.TokenizeInto(m.Detail, sc.toks)
	if t, ok := kb.matcher.MatchTokens(m.Code, toks); ok {
		pm.Template = t.ID
	}
	info := kb.parser.ParseTokens(m, toks)
	sc.toks = toks
	tokenScratch.Put(sc)
	pm.Loc = info.Primary
	pm.AllLocs = info.All
	pm.Peers = info.PeerRouters
	if c != nil {
		if c.put(key, cacheVal{template: pm.Template, info: info}) {
			kb.met.cacheEvictions.Inc()
		}
	}
	return pm
}

// AugmentAll converts a batch serially.
func (kb *KnowledgeBase) AugmentAll(msgs []syslogmsg.Message) []PlusMessage {
	out := make([]PlusMessage, len(msgs))
	for i := range msgs {
		out[i] = kb.Augment(&msgs[i])
	}
	return out
}

// augmentWith shards a batch across the pool's workers, writing each shard
// into its slot of the output slice — order-preserving, so the result is
// identical to AugmentAll.
func (kb *KnowledgeBase) augmentWith(pool *par.Pool, msgs []syslogmsg.Message) []PlusMessage {
	if pool.Workers() <= 1 {
		return kb.AugmentAll(msgs)
	}
	out := make([]PlusMessage, len(msgs))
	_ = pool.Chunks(len(msgs), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = kb.Augment(&msgs[i])
		}
		return nil
	})
	return out
}

// Learner runs the offline domain knowledge learning of Figure 1. Every
// stage fans out over one worker pool sized by Params.Parallelism; see
// Instrument for its metrics.
type Learner struct {
	params Params
	pool   *par.Pool
}

// NewLearner builds a learner; zero-value fields in params take Table 6
// defaults.
func NewLearner(params Params) *Learner {
	params = params.normalize()
	return &Learner{params: params, pool: par.New(params.Parallelism)}
}

// Instrument publishes the learner's worker-pool metrics (learn.pool.*:
// workers gauge, tasks counter, queue-wait histogram) into reg. A nil
// registry leaves the learner uninstrumented.
func (l *Learner) Instrument(reg *obs.Registry) {
	l.pool.Instrument(reg, "learn.pool")
}

// stageOptions returns the per-stage configs with the learner's pool
// threaded in (the pool is a runtime handle, deliberately kept out of the
// Params struct the knowledge base persists).
func (l *Learner) stageOptions() (template.Options, rules.Config) {
	topt := l.params.Template
	topt.Pool = l.pool
	rcfg := l.params.Rules
	rcfg.Pool = l.pool
	return topt, rcfg
}

// Learn builds a knowledge base from historical messages and router
// configs. When CalibrateTemporal is set, alpha and beta are chosen by the
// §5.2.3 compression-ratio sweep over the historical streams.
func (l *Learner) Learn(historical []syslogmsg.Message, configs []*netconf.Config) (*KnowledgeBase, error) {
	topt, rcfg := l.stageOptions()
	kb := &KnowledgeBase{
		Params:    l.params,
		Templates: template.Learn(historical, topt),
		Configs:   configs,
	}
	if err := kb.finish(); err != nil {
		return nil, err
	}

	// Augment the history once; every remaining learning step consumes the
	// Syslog+ view.
	plus := kb.augmentWith(l.pool, historical)

	// Signature frequency per router (scoring input).
	kb.Freq = event.NewFreqTable()
	for i := range plus {
		kb.Freq.Add(plus[i].Router, plus[i].Template, 1)
	}

	// Temporal calibration over per-(template, location) streams.
	if l.params.CalibrateTemporal {
		streams := TemporalStreams(plus)
		alphas := []float64{0.01, 0.025, 0.05, 0.075, 0.1, 0.2, 0.3, 0.45, 0.6}
		betas := []float64{2, 3, 4, 5, 6, 7}
		best, err := temporal.CalibrateWith(l.pool, streams, alphas, betas, l.params.Temporal)
		if err != nil {
			return nil, fmt.Errorf("core: temporal calibration: %w", err)
		}
		kb.Params.Temporal = best
	}

	// Association rule mining over the whole history.
	res, err := rules.Mine(RuleEvents(plus), rcfg)
	if err != nil {
		return nil, fmt.Errorf("core: rule mining: %w", err)
	}
	kb.RuleBase = rules.NewRuleBase()
	kb.RuleBase.Update(res)
	return kb, nil
}

// UpdateRules applies one period's incremental mining (the paper's weekly
// refresh) to the knowledge base.
func (l *Learner) UpdateRules(kb *KnowledgeBase, period []syslogmsg.Message) (rules.UpdateStats, error) {
	_, rcfg := l.stageOptions()
	plus := kb.augmentWith(l.pool, period)
	res, err := rules.Mine(RuleEvents(plus), rcfg)
	if err != nil {
		return rules.UpdateStats{}, fmt.Errorf("core: rule mining: %w", err)
	}
	return kb.RuleBase.Update(res), nil
}

// TemporalStreams collects the sorted arrival times of each (template,
// location) stream, the input to temporal calibration.
func TemporalStreams(plus []PlusMessage) [][]time.Time {
	type key struct {
		template int
		loc      string
	}
	m := make(map[key][]time.Time)
	for i := range plus {
		k := key{plus[i].Template, plus[i].Loc.Key()}
		m[k] = append(m[k], plus[i].Time)
	}
	out := make([][]time.Time, 0, len(m))
	for _, ts := range m {
		// Streams arrive in global time order per key because callers pass
		// time-sorted history; enforce anyway for safety.
		for i := 1; i < len(ts); i++ {
			if ts[i].Before(ts[i-1]) {
				sortTimes(ts)
				break
			}
		}
		out = append(out, ts)
	}
	return out
}

func sortTimes(ts []time.Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
}

// RuleEvents projects Syslog+ messages onto the rule miner's input.
func RuleEvents(plus []PlusMessage) []rules.Event {
	out := make([]rules.Event, len(plus))
	for i := range plus {
		out[i] = rules.Event{Time: plus[i].Time, Router: plus[i].Router, Template: plus[i].Template}
	}
	return out
}

// Stage selects how much of the grouping pipeline runs (Table 7).
type Stage int

const (
	// StageTemporal runs temporal grouping only (T).
	StageTemporal Stage = iota
	// StageTemporalRules adds rule-based grouping (T+R).
	StageTemporalRules
	// StageFull adds cross-router grouping (T+R+C).
	StageFull
)

// DigestResult is one online batch's output.
type DigestResult struct {
	Events      []event.Event
	Messages    []PlusMessage
	ActiveRules map[rules.PairKey]int
	// Updates are the tier-tagged provisional/revised/superseded/final
	// records emitted during this result's window, in emission order.
	// Populated only by streaming pushes with a provisional horizon set;
	// batch digests and final-only streams leave it nil.
	Updates []event.Update
}

// CompressionRatio is events/messages (1 for an empty batch).
func (r *DigestResult) CompressionRatio() float64 {
	if len(r.Messages) == 0 {
		return 1
	}
	return float64(len(r.Events)) / float64(len(r.Messages))
}

// digestMetrics are the digester's optional observability handles; the
// zero value (all nil) records nothing, so the uninstrumented hot path
// pays only the nil checks inside obs.
type digestMetrics struct {
	batches    *obs.Counter   // digest.batches
	messagesIn *obs.Counter   // digest.messages_in
	eventsOut  *obs.Counter   // digest.events_out
	ratio      *obs.Gauge     // digest.compression_ratio (last batch)
	batchSize  *obs.Histogram // digest.batch_size
	augment    *obs.Histogram // digest.augment_seconds
	group      *obs.Histogram // digest.group_seconds
	build      *obs.Histogram // digest.build_seconds
	mergeT     *obs.Counter   // group.merges.temporal
	mergeR     *obs.Counter   // group.merges.rule
	mergeC     *obs.Counter   // group.merges.cross
}

// Digester is the online half of SyslogDigest. Batch augmentation and the
// temporal grouping pass fan out over one worker pool sized by the
// knowledge base's Params.Parallelism (overridable via SetParallelism).
type Digester struct {
	kb          *KnowledgeBase
	stage       Stage
	builder     *event.Builder
	labeler     *event.Labeler
	pool        *par.Pool
	streamWorks int
	shardAddrs  []string
	provHorizon time.Duration
	linearScan  bool
	met         digestMetrics
}

// NewDigester builds a digester over a learned knowledge base.
func NewDigester(kb *KnowledgeBase) (*Digester, error) {
	if kb == nil || kb.matcher == nil {
		return nil, fmt.Errorf("core: knowledge base not initialized")
	}
	labeler := event.NewLabeler(kb.Templates)
	for id, name := range kb.ExpertNames {
		labeler.SetName(id, name)
	}
	return &Digester{
		kb:          kb,
		stage:       StageFull,
		builder:     event.NewBuilder(kb.Freq, labeler),
		labeler:     labeler,
		pool:        par.New(kb.Params.Parallelism),
		streamWorks: kb.Params.StreamWorkers,
		provHorizon: kb.Params.ProvisionalHorizon,
	}, nil
}

// SetStage restricts the grouping pipeline (for the Table 7 ablation).
func (d *Digester) SetStage(s Stage) { d.stage = s }

// SetParallelism rebuilds the digester's worker pool with n workers (0 =
// GOMAXPROCS, 1 = serial). Results are byte-identical at any setting.
// Call before Instrument so the new pool's metrics are registered.
func (d *Digester) SetParallelism(n int) { d.pool = par.New(n) }

// SetStreamWorkers selects the streaming engine for subsequent batches and
// streamers (<= 1 serial, N > 1 sharded with N workers). Byte-identical
// output at any setting; see Params.StreamWorkers.
func (d *Digester) SetStreamWorkers(n int) { d.streamWorks = n }

// StreamWorkers is the resolved engine selection.
func (d *Digester) StreamWorkers() int { return d.streamWorks }

// SetShardAddrs selects the cluster streaming engine for subsequent
// streamers: one remote shard per address (repeat an address to host
// several shards in one process), dispatched over the shard wire protocol
// and merged locally. Output is byte-identical to the serial engine at any
// address count. Empty (the default) keeps the in-process engines; when
// set, it takes precedence over SetStreamWorkers.
func (d *Digester) SetShardAddrs(addrs []string) {
	d.shardAddrs = append([]string(nil), addrs...)
}

// ShardAddrs is the configured remote-shard address list (nil: in-process).
func (d *Digester) ShardAddrs() []string { return d.shardAddrs }

// SetProvisionalHorizon turns two-tier emission on (positive) or off (zero
// or negative) for subsequent streamers; see Params.ProvisionalHorizon.
// The final stream is byte-identical at any setting.
func (d *Digester) SetProvisionalHorizon(h time.Duration) {
	if h < 0 {
		h = 0
	}
	d.provHorizon = h
}

// ProvisionalHorizon is the digester-level two-tier emission setting.
func (d *Digester) ProvisionalHorizon() time.Duration { return d.provHorizon }

// SetLinearScan forces the grouping passes onto the original O(window)
// candidate scans instead of the template index. Output is byte-identical
// either way; the knob exists for differential tests and for measuring the
// index (see grouping.Config.LinearScan). Affects engines built afterward.
func (d *Digester) SetLinearScan(on bool) { d.linearScan = on }

// Instrument publishes the digester's metrics (digest.*, group.merges.*)
// into reg: wall-time histograms for the augment/group/build stages, batch
// size and message/event counters, the last batch's compression ratio, and
// per-pass grouping merge counts. A nil registry leaves the digester
// uninstrumented.
func (d *Digester) Instrument(reg *obs.Registry) {
	d.met = digestMetrics{
		batches:    reg.Counter("digest.batches"),
		messagesIn: reg.Counter("digest.messages_in"),
		eventsOut:  reg.Counter("digest.events_out"),
		ratio:      reg.Gauge("digest.compression_ratio"),
		batchSize:  reg.Histogram("digest.batch_size", obs.SizeBounds()),
		augment:    reg.Histogram("digest.augment_seconds", obs.LatencyBounds()),
		group:      reg.Histogram("digest.group_seconds", obs.LatencyBounds()),
		build:      reg.Histogram("digest.build_seconds", obs.LatencyBounds()),
		mergeT:     reg.Counter("group.merges.temporal"),
		mergeR:     reg.Counter("group.merges.rule"),
		mergeC:     reg.Counter("group.merges.cross"),
	}
	d.pool.Instrument(reg, "digest.pool")
	d.kb.Instrument(reg)
}

// Labeler exposes the event labeler for expert naming overrides.
func (d *Digester) Labeler() *event.Labeler { return d.labeler }

// parallelBatchMin is the batch size below which sharding the augment
// across workers costs more in goroutine handoff than it saves.
const parallelBatchMin = 2048

// Digest processes one batch of raw messages into ranked events. Batches
// of parallelBatchMin or more augment in parallel over the digester's pool
// (the knowledge base is immutable during digesting; see KnowledgeBase).
func (d *Digester) Digest(msgs []syslogmsg.Message) (*DigestResult, error) {
	start := time.Now()
	var plus []PlusMessage
	if len(msgs) >= parallelBatchMin {
		plus = d.kb.augmentWith(d.pool, msgs)
	} else {
		plus = d.kb.AugmentAll(msgs)
	}
	d.met.augment.Observe(time.Since(start).Seconds())
	return d.DigestPlus(plus)
}

// groupingConfig derives the grouping configuration from the knowledge
// base's parameters and the selected stage; shared by the incremental
// engine and the reference batch path.
func (d *Digester) groupingConfig() grouping.Config {
	cfg := grouping.Config{
		Temporal:    d.kb.Params.Temporal,
		RuleWindow:  d.kb.Params.Rules.Window,
		CrossWindow: d.kb.Params.CrossWindow,
		MaxScan:     d.kb.Params.MaxScan,
		Pool:        d.pool,
		LinearScan:  d.linearScan,
	}
	switch d.stage {
	case StageTemporal:
		cfg.OnlyTemporal = true
	case StageTemporalRules:
		cfg.TemporalAndRules = true
	}
	return cfg
}

// streamEngine is the surface Streamer and DigestPlus drive; both the
// serial stream.Engine and the sharded stream.ShardedEngine satisfy it
// with byte-identical output.
type streamEngine interface {
	Observe(stream.Message) ([]event.Event, error)
	Drain() []event.Event
	Close()
	Watermark() time.Time
	Pending() int
	Stats() grouping.IncStats
	ActiveRules() map[rules.PairKey]int
	SetMetrics(stream.Metrics)
	// TakeUpdates returns and clears the tier-tagged provisional updates
	// queued since the last call; always empty when the provisional
	// horizon is off.
	TakeUpdates() []event.Update
	// State snapshots the engine for checkpointing, returning any emitted
	// events and tier-tagged updates awaiting collection alongside (they
	// stay queued in the live engine; the snapshot owner must persist them
	// for exactly-once).
	State() (stream.EngineState, []event.Event, []event.Update, error)
}

// engineConfig assembles the streaming engine config. maxStreams <= 0
// takes the grouping default; prov > 0 turns on the provisional tier
// (batch digesting always passes 0 — a batch result is final by nature).
func (d *Digester) engineConfig(maxStreams int, prov time.Duration) stream.Config {
	return stream.Config{
		Grouping: grouping.IncrementalConfig{
			Config:             d.groupingConfig(),
			MaxStreams:         maxStreams,
			ProvisionalHorizon: prov,
		},
		Freq:    d.kb.Freq,
		Labeler: d.labeler,
	}
}

// newEngine builds a serial streaming engine over the digester's knowledge.
func (d *Digester) newEngine(maxStreams int, prov time.Duration) (*stream.Engine, error) {
	return stream.New(d.kb.dict, d.kb.RuleBase, d.engineConfig(maxStreams, prov))
}

// newStreamEngine builds the engine selected by the configuration: cluster
// when addrs is non-empty (one remote shard per address), sharded when
// workers > 1, serial otherwise. Cluster and sharded engines own
// goroutines — callers must Close.
func (d *Digester) newStreamEngine(maxStreams, workers int, addrs []string, prov time.Duration) (streamEngine, error) {
	if len(addrs) > 0 {
		return stream.NewCluster(d.kb.dict, d.kb.RuleBase, d.engineConfig(maxStreams, prov), addrs)
	}
	if workers > 1 {
		return stream.NewSharded(d.kb.dict, d.kb.RuleBase, d.engineConfig(maxStreams, prov), workers)
	}
	return d.newEngine(maxStreams, prov)
}

// restoreStreamEngine rebuilds the selected engine from a checkpointed
// state; the snapshot's own engine shape and worker count need not match,
// and the provisional horizon is the restoring process's own setting (it
// is a delivery knob, never part of the snapshot).
func (d *Digester) restoreStreamEngine(maxStreams, workers int, addrs []string, prov time.Duration, st stream.EngineState) (streamEngine, error) {
	if len(addrs) > 0 {
		return stream.RestoreCluster(d.kb.dict, d.kb.RuleBase, d.engineConfig(maxStreams, prov), addrs, st)
	}
	if workers > 1 {
		return stream.RestoreSharded(d.kb.dict, d.kb.RuleBase, d.engineConfig(maxStreams, prov), workers, st)
	}
	return stream.RestoreEngine(d.kb.dict, d.kb.RuleBase, d.engineConfig(maxStreams, prov), st)
}

// streamMsg projects one augmented message into the engine's input shape.
func streamMsg(pm *PlusMessage, seq int) stream.Message {
	return stream.Message{
		Seq: seq, Time: pm.Time, Router: pm.Router, Template: pm.Template,
		Loc: pm.Loc, AllLocs: pm.AllLocs, Peers: pm.Peers, Raw: pm.Index,
	}
}

// DigestPlus processes a batch that is already augmented. It drives the
// same incremental engine the Streamer runs: messages feed in time order,
// events close behind the watermark, a final drain closes the rest, and one
// global rank restores the batch presentation order. The retired three-pass
// batch implementation survives as ReferenceDigestPlus, the differential
// oracle the streaming path is tested against.
func (d *Digester) DigestPlus(plus []PlusMessage) (*DigestResult, error) {
	groupStart := time.Now()
	eng, err := d.newStreamEngine(0, d.streamWorks, nil, 0)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	// Feed order: ascending time, ties by batch position — the same order
	// the batch grouper sorted into, so partitions match exactly.
	order := make([]int, len(plus))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := &plus[order[a]], &plus[order[b]]
		if !pa.Time.Equal(pb.Time) {
			return pa.Time.Before(pb.Time)
		}
		return order[a] < order[b]
	})
	var events []event.Event
	for _, i := range order {
		evs, err := eng.Observe(streamMsg(&plus[i], i))
		if err != nil {
			return nil, err
		}
		events = append(events, evs...)
	}
	events = append(events, eng.Drain()...)
	d.met.group.Observe(time.Since(groupStart).Seconds())

	buildStart := time.Now()
	// Emission order is closure order; the batch contract is rank order
	// with deterministic IDs. Pre-sorting by earliest member reproduces the
	// batch builder's group order, so the stable Rank yields the exact
	// sequence (and therefore IDs) the three-pass path produced.
	sort.Slice(events, func(a, b int) bool {
		return events[a].MessageSeqs[0] < events[b].MessageSeqs[0]
	})
	event.Rank(events)
	for i := range events {
		events[i].ID = i
	}
	d.met.build.Observe(time.Since(buildStart).Seconds())

	st := eng.Stats()
	out := &DigestResult{Events: events, Messages: plus, ActiveRules: eng.ActiveRules()}
	d.met.batches.Inc()
	d.met.messagesIn.Add(uint64(len(plus)))
	d.met.eventsOut.Add(uint64(len(events)))
	d.met.batchSize.Observe(float64(len(plus)))
	d.met.ratio.Set(out.CompressionRatio())
	d.met.mergeT.Add(uint64(st.TemporalMerges))
	d.met.mergeR.Add(uint64(st.RuleMerges))
	d.met.mergeC.Add(uint64(st.CrossMerges))
	return out, nil
}

// ReferenceDigestPlus is the original batch implementation — sort, three
// grouping passes into a union-find, build, rank — kept as the oracle for
// the streaming engine's differential tests. It records no metrics.
func (d *Digester) ReferenceDigestPlus(plus []PlusMessage) (*DigestResult, error) {
	g, err := grouping.New(d.kb.dict, d.kb.RuleBase, d.groupingConfig())
	if err != nil {
		return nil, err
	}
	batch := make([]grouping.Message, len(plus))
	raw := make([]uint64, len(plus))
	for i := range plus {
		batch[i] = grouping.Message{
			Seq:      i,
			Time:     plus[i].Time,
			Router:   plus[i].Router,
			Template: plus[i].Template,
			Loc:      plus[i].Loc,
			AllLocs:  plus[i].AllLocs,
			Peers:    plus[i].Peers,
		}
		raw[i] = plus[i].Index
	}
	res, err := g.Group(batch)
	if err != nil {
		return nil, err
	}
	events := d.builder.Build(batch, res, raw)
	return &DigestResult{Events: events, Messages: plus, ActiveRules: res.ActiveRules}, nil
}

// ApplyExpert parses and applies domain-expert adjustments (see the expert
// package) to the knowledge base: asserted/removed rules take effect in the
// rule base, and template names persist in ExpertNames so every digester
// built from this base presents them. Returns the number of directives that
// took effect.
func (kb *KnowledgeBase) ApplyExpert(r io.Reader) (int, error) {
	ds, err := expert.Parse(r, kb.Templates)
	if err != nil {
		return 0, err
	}
	applied := expert.Apply(ds, kb.RuleBase, nil)
	for _, d := range ds {
		if d.Kind == expert.KindName {
			if kb.ExpertNames == nil {
				kb.ExpertNames = make(map[int]string)
			}
			kb.ExpertNames[d.X] = d.Name
			applied++
		}
	}
	return applied, nil
}
