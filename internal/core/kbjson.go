package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/netconf"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/template"
)

// The JSON form of the knowledge base is the contract between cmd/sdlearn
// and cmd/sddigest. Router configs are embedded as their rendered text —
// the config *is* the serialization of the location dictionary, exactly as
// in the offline learning design.
//
// Params.Parallelism and Params.MatchCache (and the Pool handles inside the
// stage configs) are deliberately NOT serialized: they are per-process
// runtime knobs, not learned knowledge, and a knowledge base must produce
// byte-identical digests regardless of the worker count or cache size it
// was learned or loaded with.

type kbJSON struct {
	Params    paramsJSON        `json:"params"`
	Templates []templateJSON    `json:"templates"`
	Rules     []rules.Rule      `json:"rules"`
	Freq      []event.FreqEntry `json:"freq"`
	Configs   []string          `json:"configs"`
	Names     map[int]string    `json:"expert_names,omitempty"`
}

type paramsJSON struct {
	Alpha         float64 `json:"alpha"`
	Beta          float64 `json:"beta"`
	SminSeconds   float64 `json:"smin_seconds"`
	SmaxSeconds   float64 `json:"smax_seconds"`
	WindowSeconds float64 `json:"rule_window_seconds"`
	SPmin         float64 `json:"spmin"`
	ConfMin       float64 `json:"confmin"`
	CrossSeconds  float64 `json:"cross_window_seconds"`
	// Template learning options and the calibration switch used to round-
	// trip silently as zero values, so a reloaded knowledge base no longer
	// matched the configuration it was learned with.
	Template  templateOptsJSON `json:"template_options"`
	Calibrate bool             `json:"calibrate_temporal,omitempty"`
}

type templateOptsJSON struct {
	K                int     `json:"k,omitempty"`
	MaxDepth         int     `json:"max_depth,omitempty"`
	NoPreMask        bool    `json:"no_pre_mask,omitempty"`
	MinChildFraction float64 `json:"min_child_fraction,omitempty"`
	MinChildCount    int     `json:"min_child_count,omitempty"`
}

type templateJSON struct {
	ID    int      `json:"id"`
	Code  string   `json:"code"`
	Words []string `json:"words"`
}

// Save writes the knowledge base as JSON.
func (kb *KnowledgeBase) Save(w io.Writer) error {
	out := kbJSON{
		Params: paramsJSON{
			Alpha:         kb.Params.Temporal.Alpha,
			Beta:          kb.Params.Temporal.Beta,
			SminSeconds:   kb.Params.Temporal.Smin.Seconds(),
			SmaxSeconds:   kb.Params.Temporal.Smax.Seconds(),
			WindowSeconds: kb.Params.Rules.Window.Seconds(),
			SPmin:         kb.Params.Rules.SPmin,
			ConfMin:       kb.Params.Rules.ConfMin,
			CrossSeconds:  kb.Params.CrossWindow.Seconds(),
			Template: templateOptsJSON{
				K:                kb.Params.Template.K,
				MaxDepth:         kb.Params.Template.MaxDepth,
				NoPreMask:        kb.Params.Template.NoPreMask,
				MinChildFraction: kb.Params.Template.MinChildFraction,
				MinChildCount:    kb.Params.Template.MinChildCount,
			},
			Calibrate: kb.Params.CalibrateTemporal,
		},
		Rules: kb.RuleBase.Rules(),
		Freq:  kb.Freq.Entries(),
		Names: kb.ExpertNames,
	}
	for _, t := range kb.Templates {
		out.Templates = append(out.Templates, templateJSON{ID: t.ID, Code: t.Code, Words: t.Words})
	}
	for _, c := range kb.Configs {
		out.Configs = append(out.Configs, netconf.Render(c))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// LoadKnowledgeBase reads a knowledge base previously written by Save and
// rebuilds all derived indexes (template matcher, location dictionary).
func LoadKnowledgeBase(r io.Reader) (*KnowledgeBase, error) {
	var in kbJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode knowledge base: %w", err)
	}
	kb := &KnowledgeBase{
		Params: Params{
			Template: template.Options{
				K:                in.Params.Template.K,
				MaxDepth:         in.Params.Template.MaxDepth,
				NoPreMask:        in.Params.Template.NoPreMask,
				MinChildFraction: in.Params.Template.MinChildFraction,
				MinChildCount:    in.Params.Template.MinChildCount,
			},
			CalibrateTemporal: in.Params.Calibrate,
		},
	}
	kb.Params.Temporal.Alpha = in.Params.Alpha
	kb.Params.Temporal.Beta = in.Params.Beta
	kb.Params.Temporal.Smin = secs(in.Params.SminSeconds)
	kb.Params.Temporal.Smax = secs(in.Params.SmaxSeconds)
	kb.Params.Rules.Window = secs(in.Params.WindowSeconds)
	kb.Params.Rules.SPmin = in.Params.SPmin
	kb.Params.Rules.ConfMin = in.Params.ConfMin
	kb.Params.CrossWindow = secs(in.Params.CrossSeconds)
	kb.Params = kb.Params.normalize()

	for _, t := range in.Templates {
		kb.Templates = append(kb.Templates, template.Template{ID: t.ID, Code: t.Code, Words: t.Words})
	}
	kb.RuleBase = rules.NewRuleBase()
	for _, r := range in.Rules {
		kb.RuleBase.Add(r)
	}
	kb.Freq = event.NewFreqTable()
	for _, e := range in.Freq {
		kb.Freq.Add(e.Router, e.Template, e.Count)
	}
	if len(in.Names) > 0 {
		kb.ExpertNames = in.Names
	}
	for i, text := range in.Configs {
		cfg, err := netconf.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("core: config %d: %w", i, err)
		}
		kb.Configs = append(kb.Configs, cfg)
	}
	if err := kb.finish(); err != nil {
		return nil, err
	}
	return kb, nil
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
