package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

// learnSmall builds a knowledge base from a small generated dataset A.
func learnSmall(t *testing.T, kind gen.DatasetKind) (*KnowledgeBase, *gen.Dataset) {
	t.Helper()
	ds, err := gen.Generate(gen.Spec{
		Kind: kind, Routers: 16, Seed: 3,
		Duration: 36 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := NewLearner(DefaultParams()).Learn(ds.Messages, ds.Net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return kb, ds
}

func TestLearnProducesKnowledge(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	if len(kb.Templates) < 10 {
		t.Fatalf("templates = %d", len(kb.Templates))
	}
	if kb.RuleBase.Len() == 0 {
		t.Fatal("no rules mined")
	}
	if kb.Freq.Len() == 0 {
		t.Fatal("no frequencies recorded")
	}
	if kb.Dictionary() == nil || kb.Dictionary().Routers() != 16 {
		t.Fatal("dictionary missing routers")
	}
	// The canonical flap rule must be in the base: LINK down <-> LINEPROTO
	// down on the same router within seconds.
	var linkDown, protoDown = -1, -1
	for _, tpl := range kb.Templates {
		s := tpl.String()
		if strings.HasPrefix(s, "LINK-3-UPDOWN") && strings.HasSuffix(s, "to down") {
			linkDown = tpl.ID
		}
		if strings.HasPrefix(s, "LINEPROTO-5-UPDOWN") && strings.HasSuffix(s, "to down") {
			protoDown = tpl.ID
		}
	}
	if linkDown < 0 || protoDown < 0 {
		t.Fatal("flap templates not learned")
	}
	if !kb.RuleBase.HasPair(linkDown, protoDown) {
		t.Fatal("LINK<->LINEPROTO rule not mined")
	}
}

func TestAugment(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	plus := kb.AugmentAll(ds.Messages[:200])
	matched, located := 0, 0
	for i := range plus {
		if plus[i].Template >= 0 {
			matched++
		}
		if plus[i].Loc.Level != locdict.LevelRouter {
			located++
		}
		if plus[i].Loc.Router != plus[i].Router {
			t.Fatalf("primary location on wrong router: %+v", plus[i].Loc)
		}
	}
	if matched < 190 {
		t.Fatalf("only %d/200 messages matched a template", matched)
	}
	if located == 0 {
		t.Fatal("no message resolved below router level")
	}
}

func TestDigestCompresses(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Digest(ds.Messages)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events")
	}
	ratio := res.CompressionRatio()
	if ratio >= 0.2 {
		t.Fatalf("compression ratio %v too weak", ratio)
	}
	// Events are rank-ordered and carry presentation fields.
	prev := res.Events[0].Score
	for _, e := range res.Events {
		if e.Score > prev {
			t.Fatal("events not rank-ordered")
		}
		prev = e.Score
		if e.Start.IsZero() || len(e.Routers) == 0 || e.Label == "" {
			t.Fatalf("event missing fields: %+v", e)
		}
		if len(strings.Split(e.Digest(), "|")) != 5 {
			t.Fatalf("digest line malformed: %q", e.Digest())
		}
	}
}

func TestDigestStagesMonotone(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[Stage]int)
	for _, st := range []Stage{StageTemporal, StageTemporalRules, StageFull} {
		d.SetStage(st)
		res, err := d.Digest(ds.Messages)
		if err != nil {
			t.Fatal(err)
		}
		counts[st] = len(res.Events)
	}
	if !(counts[StageTemporal] >= counts[StageTemporalRules] &&
		counts[StageTemporalRules] >= counts[StageFull]) {
		t.Fatalf("stage event counts not monotone: %v", counts)
	}
	if counts[StageTemporal] == counts[StageFull] {
		t.Fatal("rules and cross-router grouping had no effect at all")
	}
}

func TestDigestActiveRules(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	res, err := d.Digest(ds.Messages)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ActiveRules) == 0 {
		t.Fatal("no active rules on a flap-heavy corpus")
	}
}

func TestKnowledgeBaseSaveLoadRoundTrip(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	var buf bytes.Buffer
	if err := kb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	kb2, err := LoadKnowledgeBase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(kb2.Templates) != len(kb.Templates) {
		t.Fatalf("templates %d != %d", len(kb2.Templates), len(kb.Templates))
	}
	if kb2.RuleBase.Len() != kb.RuleBase.Len() {
		t.Fatalf("rules %d != %d", kb2.RuleBase.Len(), kb.RuleBase.Len())
	}
	if kb2.Freq.Len() != kb.Freq.Len() {
		t.Fatalf("freq %d != %d", kb2.Freq.Len(), kb.Freq.Len())
	}
	if kb2.Params.Temporal != kb.Params.Temporal {
		t.Fatalf("temporal params %+v != %+v", kb2.Params.Temporal, kb.Params.Temporal)
	}
	if kb2.Dictionary().Routers() != kb.Dictionary().Routers() {
		t.Fatal("dictionary size differs after reload")
	}
	// Digesting with the reloaded base gives identical events.
	d1, _ := NewDigester(kb)
	d2, _ := NewDigester(kb2)
	r1, err := d1.Digest(ds.Messages[:2000])
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Digest(ds.Messages[:2000])
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Events) != len(r2.Events) {
		t.Fatalf("event counts differ after reload: %d vs %d", len(r1.Events), len(r2.Events))
	}
	for i := range r1.Events {
		if r1.Events[i].Digest() != r2.Events[i].Digest() {
			t.Fatalf("event %d differs after reload", i)
		}
	}
}

func TestLoadKnowledgeBaseRejectsGarbage(t *testing.T) {
	if _, err := LoadKnowledgeBase(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadKnowledgeBase(strings.NewReader(`{"configs":["bogus config"]}`)); err == nil {
		t.Fatal("bad embedded config accepted")
	}
}

func TestLearnWithCalibration(t *testing.T) {
	ds, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 12, Seed: 5,
		Duration: 24 * time.Hour, RateScale: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.CalibrateTemporal = true
	kb, err := NewLearner(p).Learn(ds.Messages, ds.Net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Params.Temporal.Alpha <= 0 || kb.Params.Temporal.Beta < 1 {
		t.Fatalf("calibrated params implausible: %+v", kb.Params.Temporal)
	}
}

func TestUpdateRulesWeekly(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	l := NewLearner(DefaultParams())
	before := kb.RuleBase.Len()
	st, err := l.UpdateRules(kb, ds.Messages)
	if err != nil {
		t.Fatal(err)
	}
	// Re-mining the same period cannot contradict rules it just confirmed.
	if st.Total < before {
		t.Fatalf("self-update shrank the rule base: %+v (was %d)", st, before)
	}
}

func TestStreamerEquivalentAtQuietBoundaries(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d1, _ := NewDigester(kb)
	d2, _ := NewDigester(kb)
	whole, err := d1.Digest(ds.Messages)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamer(d2, 0)
	total := 0
	for _, m := range ds.Messages {
		res, err := s.Push(m)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			total += len(res.Events)
		}
	}
	res, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		total += len(res.Events)
	}
	if total != len(whole.Events) {
		t.Fatalf("streamed events %d != batch events %d", total, len(whole.Events))
	}
	if s.Pending() != 0 {
		t.Fatal("messages left pending after Flush")
	}
}

// TestStreamerSurvivesTimeTravel: a message arriving behind the released
// frontier is dropped and counted, never an error — a live feed must
// outlive one router's bad clock. (Until PR 4 this was a hard error that
// killed the stream.)
func TestStreamerSurvivesTimeTravel(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	s := NewStreamerWith(d, StreamerOptions{ReorderTolerance: -1}) // strict: release immediately
	reg := obs.NewRegistry()
	s.Instrument(reg)
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(at time.Time) syslogmsg.Message {
		return syslogmsg.Message{Time: at, Router: "x", Code: "A-1-B", Detail: "d"}
	}
	if _, err := s.Push(mk(t0)); err != nil {
		t.Fatal(err)
	}
	if res, err := s.Push(mk(t0.Add(-time.Hour))); err != nil || res != nil {
		t.Fatalf("late message: res=%v err=%v, want silent drop", res, err)
	}
	// The stream survives: later messages still group and flush.
	if _, err := s.Push(mk(t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	res, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("stream.dropped.late"); got != 1 {
		t.Errorf("dropped.late = %d, want 1", got)
	}
	total := 0
	if res != nil {
		for _, e := range res.Events {
			total += e.Size()
		}
	}
	if total != 2 {
		t.Errorf("flushed %d messages, want 2 (late one dropped)", total)
	}
}

func TestNewDigesterErrors(t *testing.T) {
	if _, err := NewDigester(nil); err == nil {
		t.Fatal("nil knowledge base accepted")
	}
	if _, err := NewDigester(&KnowledgeBase{}); err == nil {
		t.Fatal("unfinished knowledge base accepted")
	}
}

func TestApplyExpertPersists(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	// Name the LINK-down template and assert a rule between the first two
	// templates, then check both survive KB serialization.
	var linkDown core0TemplateRef
	for _, tpl := range kb.Templates {
		if strings.HasPrefix(tpl.String(), "LINK-3-UPDOWN") && strings.HasSuffix(tpl.String(), "to down") {
			linkDown = core0TemplateRef{tpl.ID, tpl.String()}
		}
	}
	if linkDown.display == "" {
		t.Skip("no LINK-down template at this seed")
	}
	directives := "name " + linkDown.display + " => carrier loss\n"
	n, err := kb.ApplyExpert(strings.NewReader(directives))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied = %d", n)
	}

	var buf bytes.Buffer
	if err := kb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	kb2, err := LoadKnowledgeBase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDigester(kb2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Labeler().TemplateName(linkDown.id); got != "carrier loss" {
		t.Fatalf("expert name lost across save/load: %q", got)
	}
}

type core0TemplateRef struct {
	id      int
	display string
}

func TestApplyExpertBadDirectives(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	if _, err := kb.ApplyExpert(strings.NewReader("name NOPE|missing => x\n")); err == nil {
		t.Fatal("bad directive accepted")
	}
}

func TestReportAndNarrative(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	var buf bytes.Buffer
	if err := kb.Report(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"parameters:", "inventory:", "templates (", "rules (", "top 5 signatures"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out[:200])
		}
	}
	narr := kb.RulesNarrative()
	if len(narr) == 0 {
		t.Fatal("no rule narrative")
	}
	for i := 1; i < len(narr); i++ {
		if narr[i] < narr[i-1] {
			t.Fatal("narrative not sorted")
		}
	}
	if err := (&KnowledgeBase{}).Report(&buf, 0); err == nil {
		t.Fatal("uninitialized kb reported")
	}
}

func TestFreqTop(t *testing.T) {
	f := event.NewFreqTable()
	f.Add("r1", 1, 10)
	f.Add("r2", 2, 30)
	f.Add("r3", 3, 20)
	top := FreqTop(f, 2)
	if len(top) != 2 || top[0].Count != 30 || top[1].Count != 20 {
		t.Fatalf("FreqTop = %+v", top)
	}
	if len(FreqTop(f, 99)) != 3 || len(FreqTop(f, -1)) != 0 {
		t.Fatal("FreqTop bounds wrong")
	}
}
