package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/syslogmsg"
)

// provHorizon is the two-tier horizon used throughout these tests: seconds
// of log time, against the ~3h closure horizon.
const provHorizon = 30 * time.Second

// runProvisional streams every message through one streamer with the
// provisional tier on and returns the final-event transcript (same format
// as appendEvents) plus every tier-tagged update in delivery order.
func runProvisional(t *testing.T, kb *KnowledgeBase, msgs []syslogmsg.Message, opts StreamerOptions) (*bytes.Buffer, []event.Update) {
	t.Helper()
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStreamerWith(d, opts)
	defer st.Close()
	var buf bytes.Buffer
	var upds []event.Update
	collect := func(res *DigestResult) {
		appendEvents(t, &buf, res)
		if res != nil {
			upds = append(upds, res.Updates...)
		}
	}
	for _, m := range msgs {
		res, err := st.Push(m)
		if err != nil {
			t.Fatal(err)
		}
		collect(res)
	}
	res, err := st.Flush()
	if err != nil {
		t.Fatal(err)
	}
	collect(res)
	return &buf, upds
}

// checkUpdateInvariants verifies the identity/revision contract over one
// complete update transcript (a drained run: every identity resolved):
//
//   - (EventID, Revision) pairs are unique, and each identity's revisions
//     count 0,1,2,... in delivery order — no gap, no reorder;
//   - every identity begins with a provisional record and ends with exactly
//     one terminal record (final or superseded), with nothing after it;
//   - supersede pointers form acyclic chains that terminate at a finalized
//     identity, and never point at an unknown one;
//   - every final record wraps an event byte-identical to the final stream
//     at the same position.
func checkUpdateInvariants(t *testing.T, upds []event.Update, finals *bytes.Buffer) {
	t.Helper()
	type idState struct {
		nextRev  int
		terminal event.Status
		done     bool
	}
	states := map[uint64]*idState{}
	superBy := map[uint64]uint64{}
	var finalEvents []event.Event
	for i := range upds {
		u := &upds[i]
		st := states[u.EventID]
		if st == nil {
			if u.Status != event.StatusProvisional {
				t.Fatalf("update %d: identity %d opened with %v, want provisional", i, u.EventID, u.Status)
			}
			st = &idState{}
			states[u.EventID] = st
		}
		if st.done {
			t.Fatalf("update %d: identity %d got %v after terminal %v", i, u.EventID, u.Status, st.terminal)
		}
		if u.Revision != st.nextRev {
			t.Fatalf("update %d: identity %d revision %d, want %d", i, u.EventID, u.Revision, st.nextRev)
		}
		st.nextRev++
		switch u.Status {
		case event.StatusSuperseded:
			st.done, st.terminal = true, u.Status
			superBy[u.EventID] = u.SupersededBy
		case event.StatusFinal:
			st.done, st.terminal = true, u.Status
			finalEvents = append(finalEvents, u.Event)
		}
	}
	for id, st := range states {
		if !st.done {
			t.Fatalf("identity %d never resolved (last revision %d)", id, st.nextRev-1)
		}
	}
	// Chains: follow each supersede pointer to its end; it must land on a
	// finalized identity in at most len(superBy) hops (acyclic).
	for id := range superBy {
		cur, hops := id, 0
		for {
			next, ok := superBy[cur]
			if !ok {
				break
			}
			if hops++; hops > len(superBy) {
				t.Fatalf("supersede chain from %d cycles", id)
			}
			cur = next
		}
		st := states[cur]
		if st == nil {
			t.Fatalf("supersede chain from %d ends at unknown identity %d", id, cur)
		}
		if st.terminal != event.StatusFinal {
			t.Fatalf("supersede chain from %d ends at %d with terminal %v, want final", id, cur, st.terminal)
		}
	}
	// The final-tier records must be the final stream, byte for byte.
	var fromUpdates bytes.Buffer
	for i := range finalEvents {
		b, err := json.Marshal(&finalEvents[i])
		if err != nil {
			t.Fatal(err)
		}
		fromUpdates.Write(b)
		fromUpdates.WriteByte('\n')
	}
	if !bytes.Equal(fromUpdates.Bytes(), finals.Bytes()) {
		t.Fatalf("final-tier updates diverge from the final stream: %d vs %d bytes",
			fromUpdates.Len(), finals.Len())
	}
}

// TestProvisionalFinalEquivalence is the tentpole differential gate: with
// the provisional tier on, at workers 1, 2, and 8 on both corpora, the
// final event stream (IDs, scores, labels, order) is byte-identical to the
// provisional-off run's — the tier is additive — and the update transcript
// satisfies the identity/revision contract, including that its final-tier
// records reproduce the final stream exactly.
func TestProvisionalFinalEquivalence(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		kb, ds := learnSmall(t, kind)
		kb.SetMatchCache(0)
		want := runUninterrupted(t, kb, ds.Messages, StreamerOptions{StreamWorkers: 1})
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("kind%d/workers%d", kind, workers), func(t *testing.T) {
				got, upds := runProvisional(t, kb, ds.Messages, StreamerOptions{
					StreamWorkers:      workers,
					ProvisionalHorizon: provHorizon,
				})
				if !bytes.Equal(want.Bytes(), got.Bytes()) {
					t.Fatalf("final stream diverged with provisional on: want %d bytes, got %d",
						want.Len(), got.Len())
				}
				if len(upds) == 0 {
					t.Fatal("provisional tier on but no updates delivered")
				}
				checkUpdateInvariants(t, upds, got)
			})
		}
	}
}

// TestProvisionalDisabledNoUpdates pins the off switch: without a horizon
// no result carries updates, so final-only consumers never see the tier.
func TestProvisionalDisabledNoUpdates(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	_, upds := runProvisional(t, kb, ds.Messages, StreamerOptions{StreamWorkers: 2})
	if len(upds) != 0 {
		t.Fatalf("provisional tier off but %d updates delivered", len(upds))
	}
}

// appendUpdates marshals each update to JSON and appends the lines,
// mirroring appendEvents for the update transcript.
func appendUpdates(t *testing.T, buf *bytes.Buffer, upds []event.Update) {
	t.Helper()
	for i := range upds {
		b, err := json.Marshal(&upds[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
}

// TestProvisionalCheckpointExactlyOnce kills a provisional-mode run at 20
// random points (Snapshot, Close, fresh Digester, RestoreStreamer) and
// requires the stitched update transcript to be byte-identical to the
// uninterrupted run's: every (EventID, Revision) delivered exactly once,
// none re-issued, none skipped — on top of the final stream equivalence the
// plain checkpoint suite already gates.
func TestProvisionalCheckpointExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			kb, ds := learnSmall(t, gen.DatasetA)
			kb.SetMatchCache(0)
			msgs := ds.Messages
			opts := StreamerOptions{StreamWorkers: workers, ProvisionalHorizon: provHorizon}

			wantFinals, wantUpds := runProvisional(t, kb, msgs, opts)
			var want bytes.Buffer
			appendUpdates(t, &want, wantUpds)

			cuts := killPoints(907+int64(workers), 20, len(msgs))
			d, err := NewDigester(kb)
			if err != nil {
				t.Fatal(err)
			}
			st := NewStreamerWith(d, opts)
			var gotFinals, got bytes.Buffer
			collect := func(res *DigestResult) {
				appendEvents(t, &gotFinals, res)
				if res != nil {
					appendUpdates(t, &got, res.Updates)
				}
			}
			next := 0
			for i, m := range msgs {
				if next < len(cuts) && i == cuts[next] {
					next++
					snap, err := st.Snapshot()
					if err != nil {
						t.Fatalf("snapshot at %d: %v", i, err)
					}
					st.Close()
					d2, err := NewDigester(kb)
					if err != nil {
						t.Fatal(err)
					}
					st, err = RestoreStreamer(d2, snap, opts)
					if err != nil {
						t.Fatalf("restore at %d: %v", i, err)
					}
				}
				res, err := st.Push(m)
				if err != nil {
					t.Fatal(err)
				}
				collect(res)
			}
			res, err := st.Flush()
			if err != nil {
				t.Fatal(err)
			}
			collect(res)
			st.Close()

			if !bytes.Equal(wantFinals.Bytes(), gotFinals.Bytes()) {
				t.Fatalf("killed run's final stream diverged: want %d bytes, got %d",
					wantFinals.Len(), gotFinals.Len())
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("killed run's update transcript diverged: want %d bytes, got %d",
					want.Len(), got.Len())
			}
		})
	}
}

// TestProvisionalSupersedeStorm runs the flap-storm corpus — merge-heavy
// by construction, the regime that builds the longest supersede chains —
// serial and sharded, and requires the full identity/revision contract to
// hold: chains acyclic and terminating, revisions exact, the final tier
// byte-identical to the final stream.
func TestProvisionalSupersedeStorm(t *testing.T) {
	kb, storm := learnStorm(t)
	kb.SetMatchCache(0)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			finals, upds := runProvisional(t, kb, storm.Messages, StreamerOptions{
				StreamWorkers:      workers,
				ProvisionalHorizon: provHorizon,
			})
			superseded := 0
			for i := range upds {
				if upds[i].Status == event.StatusSuperseded {
					superseded++
				}
			}
			if superseded == 0 {
				t.Fatal("storm corpus produced no supersede records; the regime is untested")
			}
			checkUpdateInvariants(t, upds, finals)
		})
	}
}
