package core

import (
	"fmt"
	"io"
	"sort"

	"syslogdigest/internal/event"
)

// Report writes a human-readable audit of the knowledge base: parameters,
// learned templates (with any expert names), the rule set rendered against
// template patterns, and the chattiest signatures. This is the paper's
// "domain experts can be asked to comment on the associations" surface —
// what an operator reviews before adjusting anything.
func (kb *KnowledgeBase) Report(w io.Writer, topFreq int) error {
	if kb.matcher == nil {
		return fmt.Errorf("core: knowledge base not initialized")
	}
	p := kb.Params
	fmt.Fprintf(w, "parameters: alpha=%g beta=%g Smin=%s Smax=%s W=%s SPmin=%g Confmin=%g cross=%s\n",
		p.Temporal.Alpha, p.Temporal.Beta, p.Temporal.Smin, p.Temporal.Smax,
		p.Rules.Window, p.Rules.SPmin, p.Rules.ConfMin, p.CrossWindow)
	fmt.Fprintf(w, "inventory: %d templates, %d rules, %d routers, %d (router, template) frequencies\n\n",
		len(kb.Templates), kb.RuleBase.Len(), len(kb.Configs), kb.Freq.Len())

	name := make(map[int]string, len(kb.Templates))
	for _, t := range kb.Templates {
		name[t.ID] = t.String()
	}

	fmt.Fprintf(w, "templates (%d):\n", len(kb.Templates))
	sorted := append([]int(nil), templateIDs(kb)...)
	sort.Ints(sorted)
	for _, id := range sorted {
		line := fmt.Sprintf("  [%3d] %s", id, name[id])
		if n, ok := kb.ExpertNames[id]; ok {
			line += fmt.Sprintf("  (named %q)", n)
		}
		fmt.Fprintln(w, line)
	}

	rulesList := kb.RuleBase.Rules()
	fmt.Fprintf(w, "\nrules (%d directional):\n", len(rulesList))
	for _, r := range rulesList {
		fmt.Fprintf(w, "  conf=%.2f supp=%.5f  %s  =>  %s\n",
			r.Conf, r.Support, shorten(name[r.X]), shorten(name[r.Y]))
	}

	if topFreq > 0 {
		fmt.Fprintf(w, "\ntop %d signatures by historical frequency:\n", topFreq)
		entries := kb.Freq.Entries()
		sort.Slice(entries, func(i, j int) bool { return entries[i].Count > entries[j].Count })
		if topFreq > len(entries) {
			topFreq = len(entries)
		}
		for _, e := range entries[:topFreq] {
			fmt.Fprintf(w, "  %8d  %s  %s\n", e.Count, e.Router, shorten(name[e.Template]))
		}
	}
	return nil
}

func templateIDs(kb *KnowledgeBase) []int {
	out := make([]int, 0, len(kb.Templates))
	for _, t := range kb.Templates {
		out = append(out, t.ID)
	}
	return out
}

// shorten truncates long template strings for tabular output.
func shorten(s string) string {
	if s == "" {
		return "(unknown template)"
	}
	if len(s) > 72 {
		return s[:69] + "..."
	}
	return s
}

// FreqTop is a helper for tooling: the top-k (router, template) signature
// counts.
func FreqTop(f *event.FreqTable, k int) []event.FreqEntry {
	entries := f.Entries()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		if entries[i].Router != entries[j].Router {
			return entries[i].Router < entries[j].Router
		}
		return entries[i].Template < entries[j].Template
	})
	if k > len(entries) {
		k = len(entries)
	}
	if k < 0 {
		k = 0
	}
	return entries[:k]
}

// RulesNarrative renders each undirected rule pair once with template
// names, the "comment on the associations" view.
func (kb *KnowledgeBase) RulesNarrative() []string {
	name := make(map[int]string, len(kb.Templates))
	for _, t := range kb.Templates {
		name[t.ID] = t.String()
	}
	var out []string
	for _, pk := range kb.RuleBase.Pairs() {
		out = append(out, fmt.Sprintf("%s <-> %s", shorten(name[pk.X]), shorten(name[pk.Y])))
	}
	sort.Strings(out)
	return out
}
