package core

import (
	"testing"
	"time"

	"syslogdigest/internal/gen"
	"syslogdigest/internal/syslogmsg"
)

func TestRelearnKeepsTemplateIDs(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	l := NewLearner(DefaultParams())

	byPattern := make(map[string]int)
	for _, tpl := range kb.Templates {
		byPattern[tpl.String()] = tpl.ID
	}
	rulesBefore := kb.RuleBase.Len()

	st, err := l.Relearn(kb, ds.Messages)
	if err != nil {
		t.Fatal(err)
	}
	// Same corpus: every pattern re-discovered, nothing new.
	if st.NewTemplates != 0 {
		t.Fatalf("self-relearn added templates: %+v", st)
	}
	if st.KeptTemplates == 0 {
		t.Fatalf("nothing kept: %+v", st)
	}
	for _, tpl := range kb.Templates {
		if id, ok := byPattern[tpl.String()]; ok && id != tpl.ID {
			t.Fatalf("template %q renumbered %d -> %d", tpl.String(), id, tpl.ID)
		}
	}
	if kb.RuleBase.Len() < rulesBefore {
		t.Fatalf("self-relearn shrank rules: %d -> %d", rulesBefore, kb.RuleBase.Len())
	}
}

func TestRelearnAddsNewFormats(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	l := NewLearner(DefaultParams())

	before := len(kb.Templates)
	maxID := -1
	for _, tpl := range kb.Templates {
		if tpl.ID > maxID {
			maxID = tpl.ID
		}
	}

	// A new router OS starts emitting a format the base has never seen.
	period := append([]syslogmsg.Message(nil), ds.Messages[:500]...)
	t0 := period[len(period)-1].Time
	for i := 0; i < 40; i++ {
		period = append(period, syslogmsg.Message{
			Time: t0.Add(time.Duration(i) * time.Minute), Router: "ar001",
			Code:   "NEWFMT-4-WIDGET",
			Detail: "Widget 10.0.0.1 reported spin state inverted",
		})
	}
	st, err := l.Relearn(kb, period)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewTemplates == 0 {
		t.Fatalf("new format not learned: %+v", st)
	}
	if len(kb.Templates) <= before {
		t.Fatal("template inventory did not grow")
	}
	// The new template matches the new messages and got a fresh ID.
	tpl, ok := kb.Matcher().Match("NEWFMT-4-WIDGET", "Widget 10.9.9.9 reported spin state inverted")
	if !ok {
		t.Fatal("new format does not match after relearn")
	}
	if tpl.ID <= maxID {
		t.Fatalf("new template reused ID %d (max was %d)", tpl.ID, maxID)
	}
	// Retired templates (codes absent from the 500-message slice) are
	// retained, not dropped.
	if st.RetiredTemplates > 0 && len(kb.Templates) < before {
		t.Fatal("retired templates were dropped")
	}
}

func TestRelearnUninitialized(t *testing.T) {
	if _, err := NewLearner(DefaultParams()).Relearn(&KnowledgeBase{}, nil); err == nil {
		t.Fatal("uninitialized kb accepted")
	}
}

func TestAugmentAllParallelMatchesSerial(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	msgs := ds.Messages[:3000]
	serial := kb.AugmentAll(msgs)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		par := kb.AugmentAllParallel(msgs, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: length %d != %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Template != serial[i].Template || par[i].Loc != serial[i].Loc {
				t.Fatalf("workers=%d: message %d differs: %+v vs %+v", workers, i, par[i], serial[i])
			}
			if len(par[i].Peers) != len(serial[i].Peers) {
				t.Fatalf("workers=%d: message %d peers differ", workers, i)
			}
		}
	}
}

func TestAugmentAllParallelEmpty(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	if out := kb.AugmentAllParallel(nil, 4); len(out) != 0 {
		t.Fatalf("empty input produced %d", len(out))
	}
}

func TestDigestLargeBatchUsesParallelPath(t *testing.T) {
	// Functional equivalence: digesting above and below the parallel
	// threshold must give identical events for identical input.
	kb, ds := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Messages) < 5000 {
		t.Skip("corpus too small")
	}
	batch := ds.Messages[:5000]
	res1, err := d.Digest(batch) // parallel path (>= 4096)
	if err != nil {
		t.Fatal(err)
	}
	plus := kb.AugmentAll(batch)
	res2, err := d.DigestPlus(plus) // serial path
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Events) != len(res2.Events) {
		t.Fatalf("parallel %d events != serial %d", len(res1.Events), len(res2.Events))
	}
	for i := range res1.Events {
		if res1.Events[i].Digest() != res2.Events[i].Digest() {
			t.Fatalf("event %d differs between paths", i)
		}
	}
}
