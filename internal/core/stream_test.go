package core

import (
	"bytes"
	"testing"
	"time"

	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

// TestStreamerMonotonicAcrossFlushes: the late-drop frontier persists
// across Flush — the first message after a flush cannot rewind behind what
// was already released (it drops instead), while equal and later
// timestamps stay accepted. (This guards the same overlap bug the old
// batch streamer had, with drop-and-count in place of the hard error.)
func TestStreamerMonotonicAcrossFlushes(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	s := NewStreamerWith(d, StreamerOptions{ReorderTolerance: -1})
	reg := obs.NewRegistry()
	s.Instrument(reg)
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	mk := func(at time.Time) syslogmsg.Message {
		return syslogmsg.Message{Time: at, Router: "x", Code: "A-1-B", Detail: "d"}
	}
	if _, err := s.Push(mk(t0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// A message before t0 must still drop after the flush.
	if res, err := s.Push(mk(t0.Add(-time.Hour))); err != nil || res != nil {
		t.Fatalf("backwards message after flush: res=%v err=%v, want drop", res, err)
	}
	if got := reg.Snapshot().Counter("stream.dropped.late"); got != 1 {
		t.Fatalf("dropped.late = %d, want 1", got)
	}
	// Equal and later timestamps stay accepted.
	if _, err := s.Push(mk(t0)); err != nil {
		t.Fatalf("equal timestamp after flush rejected: %v", err)
	}
	if _, err := s.Push(mk(t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("stream.dropped.late"); got != 1 {
		t.Fatalf("dropped.late grew to %d, want 1", got)
	}
}

// TestStreamerMetricsReconcile drives pushes, a reorder, a late drop, and a
// flush, then reconciles every stream.* counter: pushed = released +
// dropped + buffered, emitted events cover exactly the released messages.
func TestStreamerMetricsReconcile(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	s := NewStreamerWith(d, StreamerOptions{ReorderTolerance: 2 * time.Second})
	reg := obs.NewRegistry()
	s.Instrument(reg)
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	mk := func(at time.Time) syslogmsg.Message {
		return syslogmsg.Message{Time: at, Router: "x", Code: "A-1-B", Detail: "d"}
	}
	// In-order pushes 10s apart: everything beyond the tolerance releases.
	for i := 0; i < 5; i++ {
		if _, err := s.Push(mk(t0.Add(time.Duration(i) * 10 * time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	// One in-tolerance reorder (1s behind the newest arrival)...
	if _, err := s.Push(mk(t0.Add(39 * time.Second))); err != nil {
		t.Fatal(err)
	}
	// ...and one hopeless straggler behind the released frontier.
	if _, err := s.Push(mk(t0)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	msgs := 0
	if res != nil {
		events = len(res.Events)
		for _, e := range res.Events {
			msgs += e.Size()
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter("stream.pushed"); got != 7 {
		t.Errorf("pushed = %d, want 7", got)
	}
	if got := snap.Counter("stream.reordered"); got != 1 {
		t.Errorf("reordered = %d, want 1", got)
	}
	if got := snap.Counter("stream.dropped.late"); got != 1 {
		t.Errorf("dropped.late = %d, want 1", got)
	}
	if got := snap.Gauge("stream.buffered"); got != 0 {
		t.Errorf("buffered = %v after flush, want 0", got)
	}
	if msgs != 6 {
		t.Errorf("emitted events cover %d messages, want 6 (7 pushed - 1 dropped)", msgs)
	}
	if got := snap.Counter("stream.emitted"); got != uint64(events) {
		t.Errorf("stream.emitted = %d, want %d", got, events)
	}
	merges := snap.Counter("group.merges.temporal") + snap.Counter("group.merges.rule") + snap.Counter("group.merges.cross")
	if want := uint64(msgs - events); merges != want {
		t.Errorf("merges = %d, want released-emitted = %d", merges, want)
	}
	if h := snap.Histogram("stream.emit_latency_seconds"); h == nil || h.Count != uint64(events) {
		t.Errorf("emit latency observations = %+v, want %d", h, events)
	}
}

// TestStreamerSteadyStateAllocs pins the per-push allocation budget of the
// warm path: no per-flush buffer rebuilds, no per-message window
// reallocations — just the engine's per-message node plus map/heap noise.
// (The old batch streamer dropped its whole buffer every flush and
// reallocated it from scratch; this is the satellite guard against that
// pattern coming back.)
func TestStreamerSteadyStateAllocs(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	s := NewStreamer(d, 0)
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	step := 0
	push := func() {
		m := syslogmsg.Message{Time: t0.Add(time.Duration(step) * time.Second),
			Router: "x", Code: "A-1-B", Detail: "d"}
		step++
		if _, err := s.Push(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2048; i++ {
		push() // warm: caches filled, rings grown, heap capacity settled
	}
	avg := testing.AllocsPerRun(512, push)
	// The warm path allocates the engine node and little else; 8 leaves
	// headroom for map growth while still catching any per-push rebuild of
	// buffers or windows.
	if avg > 8 {
		t.Fatalf("steady-state allocations per push = %.1f, want <= 8", avg)
	}
}

// TestDigesterMetrics digests one batch and reconciles every digest.* and
// group.merges.* metric against the returned result.
func TestDigesterMetrics(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	reg := obs.NewRegistry()
	d.Instrument(reg)
	res, err := d.Digest(ds.Messages)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("digest.batches"); got != 1 {
		t.Errorf("batches = %d", got)
	}
	if got := snap.Counter("digest.messages_in"); got != uint64(len(ds.Messages)) {
		t.Errorf("messages_in = %d, want %d", got, len(ds.Messages))
	}
	if got := snap.Counter("digest.events_out"); got != uint64(len(res.Events)) {
		t.Errorf("events_out = %d, want %d", got, len(res.Events))
	}
	if got := snap.Gauge("digest.compression_ratio"); got != res.CompressionRatio() {
		t.Errorf("ratio = %v, want %v", got, res.CompressionRatio())
	}
	// Each stage histogram saw exactly one batch.
	for _, name := range []string{"digest.augment_seconds", "digest.group_seconds", "digest.build_seconds", "digest.batch_size"} {
		h := snap.Histogram(name)
		if h == nil || h.Count != 1 {
			t.Errorf("%s = %+v, want 1 observation", name, h)
		}
	}
	// Every union-find merge removes one group, so messages - events must
	// equal the per-pass merge total.
	merges := snap.Counter("group.merges.temporal") + snap.Counter("group.merges.rule") + snap.Counter("group.merges.cross")
	if want := uint64(len(ds.Messages) - len(res.Events)); merges != want {
		t.Errorf("merge total = %d, want %d", merges, want)
	}
}

// TestKnowledgeBaseRoundTripStable is the regression test for the config
// round-trip bug: Save used to drop Params.Template and CalibrateTemporal,
// so Save→Load→Save was not a fixed point and a reloaded knowledge base
// silently reverted to default learning options.
func TestKnowledgeBaseRoundTripStable(t *testing.T) {
	params := DefaultParams()
	params.Template.K = 7
	params.Template.MaxDepth = 9
	params.Template.MinChildFraction = 0.25
	params.Template.MinChildCount = 3
	params.Template.NoPreMask = true
	kb, _ := learnSmallWith(t, gen.DatasetA, params)
	kb.Params.CalibrateTemporal = true

	var first bytes.Buffer
	if err := kb.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKnowledgeBase(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Params.Template != kb.Params.Template {
		t.Fatalf("template options lost: %+v != %+v", loaded.Params.Template, kb.Params.Template)
	}
	if !loaded.Params.CalibrateTemporal {
		t.Fatal("CalibrateTemporal lost")
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("Save → Load → Save is not a fixed point")
	}
}

// learnSmallWith is learnSmall with explicit params.
func learnSmallWith(t *testing.T, kind gen.DatasetKind, params Params) (*KnowledgeBase, *gen.Dataset) {
	t.Helper()
	ds, err := gen.Generate(gen.Spec{
		Kind: kind, Routers: 16, Seed: 3,
		Duration: 36 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := NewLearner(params).Learn(ds.Messages, ds.Net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return kb, ds
}
