package core

import (
	"bytes"
	"testing"
	"time"

	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

// TestStreamerMonotonicAcrossFlushes is the regression test for the
// ordering-guard bug: the nondecreasing-timestamp check only applied while
// the buffer was non-empty, so the first message after a Flush could go
// backwards in time undetected and produce time-overlapping batches.
func TestStreamerMonotonicAcrossFlushes(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	s := NewStreamer(d, 0)
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	mk := func(at time.Time) syslogmsg.Message {
		return syslogmsg.Message{Time: at, Router: "x", Code: "A-1-B", Detail: "d"}
	}
	if _, err := s.Push(mk(t0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Buffer is now empty; a message before t0 must still be rejected.
	if _, err := s.Push(mk(t0.Add(-time.Hour))); err == nil {
		t.Fatal("backwards message after flush accepted")
	}
	// Equal and later timestamps stay accepted.
	if _, err := s.Push(mk(t0)); err != nil {
		t.Fatalf("equal timestamp after flush rejected: %v", err)
	}
	if _, err := s.Push(mk(t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
}

// TestStreamerFlushReasons drives both automatic flush paths and the
// manual one, checking the stream.* metrics tell them apart.
func TestStreamerFlushReasons(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	s := NewStreamer(d, 3)
	reg := obs.NewRegistry()
	s.Instrument(reg)
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	mk := func(at time.Time) syslogmsg.Message {
		return syslogmsg.Message{Time: at, Router: "x", Code: "A-1-B", Detail: "d"}
	}
	// Fill to the cap: the 4th push forces a cap flush.
	for i := 0; i < 4; i++ {
		if _, err := s.Push(mk(t0.Add(time.Duration(i) * time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	// A quiet gap beyond Smax forces a gap flush.
	if _, err := s.Push(mk(t0.Add(48 * time.Hour))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("stream.flush.cap"); got != 1 {
		t.Errorf("cap flushes = %d, want 1", got)
	}
	if got := snap.Counter("stream.flush.gap"); got != 1 {
		t.Errorf("gap flushes = %d, want 1", got)
	}
	if got := snap.Counter("stream.flush.manual"); got != 1 {
		t.Errorf("manual flushes = %d, want 1", got)
	}
	if got := snap.Counter("stream.flushes"); got != 3 {
		t.Errorf("total flushes = %d, want 3", got)
	}
	if got := snap.Counter("stream.pushed"); got != 5 {
		t.Errorf("pushed = %d, want 5", got)
	}
	if got := snap.Gauge("stream.buffered"); got != 0 {
		t.Errorf("buffered = %v after flush, want 0", got)
	}
}

// TestDigesterMetrics digests one batch and reconciles every digest.* and
// group.merges.* metric against the returned result.
func TestDigesterMetrics(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, _ := NewDigester(kb)
	reg := obs.NewRegistry()
	d.Instrument(reg)
	res, err := d.Digest(ds.Messages)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("digest.batches"); got != 1 {
		t.Errorf("batches = %d", got)
	}
	if got := snap.Counter("digest.messages_in"); got != uint64(len(ds.Messages)) {
		t.Errorf("messages_in = %d, want %d", got, len(ds.Messages))
	}
	if got := snap.Counter("digest.events_out"); got != uint64(len(res.Events)) {
		t.Errorf("events_out = %d, want %d", got, len(res.Events))
	}
	if got := snap.Gauge("digest.compression_ratio"); got != res.CompressionRatio() {
		t.Errorf("ratio = %v, want %v", got, res.CompressionRatio())
	}
	// Each stage histogram saw exactly one batch.
	for _, name := range []string{"digest.augment_seconds", "digest.group_seconds", "digest.build_seconds", "digest.batch_size"} {
		h := snap.Histogram(name)
		if h == nil || h.Count != 1 {
			t.Errorf("%s = %+v, want 1 observation", name, h)
		}
	}
	// Every union-find merge removes one group, so messages - events must
	// equal the per-pass merge total.
	merges := snap.Counter("group.merges.temporal") + snap.Counter("group.merges.rule") + snap.Counter("group.merges.cross")
	if want := uint64(len(ds.Messages) - len(res.Events)); merges != want {
		t.Errorf("merge total = %d, want %d", merges, want)
	}
}

// TestKnowledgeBaseRoundTripStable is the regression test for the config
// round-trip bug: Save used to drop Params.Template and CalibrateTemporal,
// so Save→Load→Save was not a fixed point and a reloaded knowledge base
// silently reverted to default learning options.
func TestKnowledgeBaseRoundTripStable(t *testing.T) {
	params := DefaultParams()
	params.Template.K = 7
	params.Template.MaxDepth = 9
	params.Template.MinChildFraction = 0.25
	params.Template.MinChildCount = 3
	params.Template.NoPreMask = true
	kb, _ := learnSmallWith(t, gen.DatasetA, params)
	kb.Params.CalibrateTemporal = true

	var first bytes.Buffer
	if err := kb.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKnowledgeBase(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Params.Template != kb.Params.Template {
		t.Fatalf("template options lost: %+v != %+v", loaded.Params.Template, kb.Params.Template)
	}
	if !loaded.Params.CalibrateTemporal {
		t.Fatal("CalibrateTemporal lost")
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("Save → Load → Save is not a fixed point")
	}
}

// learnSmallWith is learnSmall with explicit params.
func learnSmallWith(t *testing.T, kind gen.DatasetKind, params Params) (*KnowledgeBase, *gen.Dataset) {
	t.Helper()
	ds, err := gen.Generate(gen.Spec{
		Kind: kind, Routers: 16, Seed: 3,
		Duration: 36 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := NewLearner(params).Learn(ds.Messages, ds.Net.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return kb, ds
}
