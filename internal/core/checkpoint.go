// Streamer checkpointing (PR 6): Snapshot captures everything the
// streaming pipeline would lose in a crash — the reorder buffer, the drop
// frontier, the sequence counters, the engine's grouping state, and any
// emitted-but-uncollected events — inside the versioned envelope of
// internal/checkpoint; RestoreStreamer rebuilds a streamer that continues
// the run with byte-identical output and exactly-once event delivery.
//
// Excluded, by the package-wide rule: runtime knobs (worker counts,
// reorder options, match cache sizing) come from the restore call's own
// Digester and StreamerOptions; metrics re-instrument; the augmentation
// match cache rebuilds as a plain cache.
package core

import (
	"fmt"

	"syslogdigest/internal/checkpoint"
	"syslogdigest/internal/event"
	"syslogdigest/internal/stream"
	"syslogdigest/internal/syslogmsg"
)

// bufferedMsg is one reorder-buffer entry, in canonical heap-pop order.
type bufferedMsg struct {
	Index  uint64 `json:"index"`
	TimeNs int64  `json:"time_ns"`
	Router string `json:"router"`
	Code   string `json:"code"`
	Detail string `json:"detail"`
	Order  uint64 `json:"order"`
}

// streamerState is the Snapshot payload.
type streamerState struct {
	Pushed     uint64              `json:"pushed"`
	Arrivals   uint64              `json:"arrivals"`
	Seq        int                 `json:"seq"`
	Started    bool                `json:"started"`
	MaxSeenNs  int64               `json:"max_seen_ns"`
	Released   bool                `json:"released"`
	FrontierNs int64               `json:"frontier_ns"`
	Buffer     []bufferedMsg       `json:"buffer"`
	Engine     *stream.EngineState `json:"engine,omitempty"` // nil: engine never created
	Carry      []checkpoint.Event  `json:"carry"`
	// CarryUpdates are tier-tagged updates emitted but undelivered at the
	// snapshot (PR 9); absent entirely when the provisional tier is off,
	// so final-only snapshots are byte-identical to pre-PR 9 ones.
	CarryUpdates []checkpoint.Update `json:"carry_updates,omitempty"`
}

// encodeEvent and decodeEvent bridge event.Event and its serialized form
// (the codec struct lives below the event package in the import graph).
func encodeEvent(ev *event.Event) checkpoint.Event {
	return checkpoint.Event{
		ID:          ev.ID,
		StartNs:     checkpoint.TimeNs(ev.Start),
		EndNs:       checkpoint.TimeNs(ev.End),
		Routers:     ev.Routers,
		Locations:   ev.Locations,
		Templates:   ev.Templates,
		MessageSeqs: ev.MessageSeqs,
		RawIndexes:  ev.RawIndexes,
		Label:       ev.Label,
		Score:       ev.Score,
	}
}

func decodeEvent(ce *checkpoint.Event) event.Event {
	return event.Event{
		ID:          ce.ID,
		Start:       checkpoint.NsTime(ce.StartNs),
		End:         checkpoint.NsTime(ce.EndNs),
		Routers:     ce.Routers,
		Locations:   ce.Locations,
		Templates:   ce.Templates,
		MessageSeqs: ce.MessageSeqs,
		RawIndexes:  ce.RawIndexes,
		Label:       ce.Label,
		Score:       ce.Score,
	}
}

// encodeUpdate and decodeUpdate are the same bridge for tier-tagged
// updates; a superseded record's absent snapshot stays absent.
func encodeUpdate(u *event.Update) checkpoint.Update {
	cu := checkpoint.Update{
		EventID:      u.EventID,
		Revision:     u.Revision,
		Status:       u.Status.String(),
		SupersededBy: u.SupersededBy,
	}
	if u.Status != event.StatusSuperseded {
		ce := encodeEvent(&u.Event)
		cu.Event = &ce
	}
	return cu
}

func decodeUpdate(cu *checkpoint.Update) (event.Update, error) {
	st, ok := event.StatusFromString(cu.Status)
	if !ok {
		return event.Update{}, fmt.Errorf("core: restore: unknown update status %q", cu.Status)
	}
	u := event.Update{
		EventID:      cu.EventID,
		Revision:     cu.Revision,
		Status:       st,
		SupersededBy: cu.SupersededBy,
	}
	if cu.Event != nil {
		u.Event = decodeEvent(cu.Event)
	}
	return u, nil
}

// Snapshot serializes the streamer's complete streaming state, keyed by
// the engine's low watermark. In sharded mode it synchronizes first (the
// in-flight batch is applied, not serialized mid-air), so the snapshot is
// a clean cut: a restored streamer fed the remaining messages produces
// exactly the events the uninterrupted run would have, each exactly once.
// The live streamer remains usable afterwards.
func (s *Streamer) Snapshot() ([]byte, error) {
	st := streamerState{
		Pushed:     s.pushed,
		Arrivals:   s.arrivals,
		Seq:        s.seq,
		Started:    s.started,
		MaxSeenNs:  checkpoint.TimeNs(s.maxSeen),
		Released:   s.released,
		FrontierNs: checkpoint.TimeNs(s.frontier),
		Buffer:     []bufferedMsg{},
		Carry:      []checkpoint.Event{},
	}
	// Serialize the reorder buffer in canonical pop order (a heap's slice
	// layout depends on insertion history; its pop order does not).
	heapCopy := append(reorderHeap(nil), s.buf...)
	for len(heapCopy) > 0 {
		it := heapCopy.pop()
		st.Buffer = append(st.Buffer, bufferedMsg{
			Index:  it.m.Index,
			TimeNs: checkpoint.TimeNs(it.m.Time),
			Router: it.m.Router,
			Code:   it.m.Code,
			Detail: it.m.Detail,
			Order:  it.order,
		})
	}
	for i := range s.carry {
		st.Carry = append(st.Carry, encodeEvent(&s.carry[i]))
	}
	for i := range s.carryUpd {
		st.CarryUpdates = append(st.CarryUpdates, encodeUpdate(&s.carryUpd[i]))
	}
	var watermarkNs int64
	if s.eng != nil {
		es, pending, pendingUpd, err := s.eng.State()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
		st.Engine = &es
		watermarkNs = es.LastTimeNs
		for i := range pending {
			st.Carry = append(st.Carry, encodeEvent(&pending[i]))
		}
		for i := range pendingUpd {
			st.CarryUpdates = append(st.CarryUpdates, encodeUpdate(&pendingUpd[i]))
		}
	}
	return checkpoint.Encode(watermarkNs, st)
}

// RestoreStreamer rebuilds a streamer over d from a Snapshot. opts are the
// restored run's own tuning (they need not match the snapshotted run's;
// worker count may differ — the engine reshards). The restored streamer
// resumes mid-stream: events the snapshotted run had closed but not
// delivered surface on the next Push or Flush, and every event emits
// exactly once across the restart.
func RestoreStreamer(d *Digester, snap []byte, opts StreamerOptions) (*Streamer, error) {
	var st streamerState
	if _, err := checkpoint.Decode(snap, &st); err != nil {
		return nil, err
	}
	s := NewStreamerWith(d, opts)
	s.pushed = st.Pushed
	s.arrivals = st.Arrivals
	s.seq = st.Seq
	s.started = st.Started
	s.maxSeen = checkpoint.NsTime(st.MaxSeenNs)
	s.released = st.Released
	s.frontier = checkpoint.NsTime(st.FrontierNs)
	for _, bm := range st.Buffer {
		s.buf.push(bufItem{
			m: syslogmsg.Message{
				Index:  bm.Index,
				Time:   checkpoint.NsTime(bm.TimeNs),
				Router: bm.Router,
				Code:   bm.Code,
				Detail: bm.Detail,
			},
			order: bm.Order,
		})
	}
	for i := range st.Carry {
		s.carry = append(s.carry, decodeEvent(&st.Carry[i]))
	}
	for i := range st.CarryUpdates {
		u, err := decodeUpdate(&st.CarryUpdates[i])
		if err != nil {
			return nil, err
		}
		s.carryUpd = append(s.carryUpd, u)
	}
	if st.Engine != nil {
		eng, err := d.restoreStreamEngine(s.opts.MaxStreams, s.workers(), s.clusterAddrs(), s.provHorizon(), *st.Engine)
		if err != nil {
			return nil, err
		}
		s.eng = eng
		s.setEngineMetrics(eng)
	}
	return s, nil
}
