package core

import (
	"fmt"
	"testing"
	"time"

	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

// allocBudget is the steady-state allocation ceiling per pushed message.
// The pooled hot path (PR 8) recycles Pending records, batch buffers, and
// group scratch, so a warm engine allocates at most the occasional event
// emission and map-growth noise — anything above one allocation per message
// means a per-push rebuild crept back in.
const allocBudget = 1.0

// corpusAllocs warms a streamer over the first part of ds and measures
// allocations per push across the next runs messages. The corpus must hold
// at least warm+runs+2 messages (AllocsPerRun calls the body once extra).
//
// The return value is net of open-state growth: when the measurement window
// admits more messages into open groups than closures release (storm feeds
// hold messages live for the full closure horizon), each net-new live
// record is one unavoidable pool allocation — that is the algorithm's
// working set growing, not per-push overhead, and it is measured exactly by
// the pool gets−puts delta. Once closures keep pace the correction is zero.
func corpusAllocs(t *testing.T, kb *KnowledgeBase, ds *gen.Dataset, workers, warm, runs int) float64 {
	t.Helper()
	if need := warm + runs + 2; len(ds.Messages) < need {
		t.Fatalf("corpus too small: %d messages, need %d", len(ds.Messages), need)
	}
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st := NewStreamerWith(d, StreamerOptions{StreamWorkers: workers})
	defer st.Close()
	st.Instrument(reg)
	i := 0
	push := func() {
		if _, err := st.Push(ds.Messages[i]); err != nil {
			t.Fatal(err)
		}
		i++
	}
	for j := 0; j < warm; j++ {
		push()
	}
	live := func() int64 {
		snap := reg.Snapshot()
		return int64(snap.Counter("stream.pool.pending.gets")) - int64(snap.Counter("stream.pool.pending.puts"))
	}
	before := live()
	avg := testing.AllocsPerRun(runs, push)
	if growth := live() - before; growth > 0 {
		avg -= float64(growth) / float64(runs)
	}
	if avg < 0 {
		avg = 0
	}
	return avg
}

// syntheticAllocs measures the single-stream regime: one router, one
// template, strictly increasing time — the same feed the original serial
// guard used, now parameterized by worker count. Like corpusAllocs, the
// result is net of the pool gets−puts delta: the sharded dispatcher
// acquires records at Push time while the merge goroutine returns them,
// and on one CPU the short measurement window can end before the merge
// side runs at all — every record acquired against an empty pool is then
// a deferred recycle, not per-push overhead.
func syntheticAllocs(t *testing.T, workers int) float64 {
	t.Helper()
	kb, _ := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st := NewStreamerWith(d, StreamerOptions{StreamWorkers: workers})
	defer st.Close()
	st.Instrument(reg)
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	step := 0
	push := func() {
		m := syslogmsg.Message{Time: t0.Add(time.Duration(step) * time.Second),
			Router: "x", Code: "A-1-B", Detail: "d"}
		step++
		if _, err := st.Push(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2048; i++ {
		push()
	}
	live := func() int64 {
		snap := reg.Snapshot()
		return int64(snap.Counter("stream.pool.pending.gets")) - int64(snap.Counter("stream.pool.pending.puts"))
	}
	const runs = 512
	before := live()
	avg := testing.AllocsPerRun(runs, push)
	if growth := live() - before; growth > 0 {
		avg -= float64(growth) / float64(runs)
	}
	if avg < 0 {
		avg = 0
	}
	return avg
}

// TestStreamAllocsSmall pins the steady-state allocation budget on the
// small (learnSmall) corpus at serial and sharded worker counts. The
// sharded measurement counts allocations process-wide, so the shard and
// merge goroutines' work is included — channel backpressure keeps their
// progress proportional to pushes.
func TestStreamAllocsSmall(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates per push")
	}
	kb, ds := learnSmall(t, gen.DatasetA)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			warm := len(ds.Messages) / 2
			runs := len(ds.Messages) - warm - 2
			avg := corpusAllocs(t, kb, ds, workers, warm, runs)
			t.Logf("small corpus, workers=%d: %.3f allocs/push", workers, avg)
			if avg > allocBudget {
				t.Fatalf("steady-state allocations per push = %.3f, want <= %v", avg, allocBudget)
			}
		})
	}
}

// TestStreamAllocsStorm pins the budget under the flap-storm corpus —
// near-full rule and cross windows, heavy noise — where per-message
// constant factors actually decide throughput.
func TestStreamAllocsStorm(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates per push")
	}
	if testing.Short() {
		t.Skip("storm corpus generation is slow")
	}
	kb, ds := learnStorm(t)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			warm := len(ds.Messages) * 3 / 4
			runs := len(ds.Messages) - warm - 2
			if runs > 16384 {
				runs = 16384
			}
			avg := corpusAllocs(t, kb, ds, workers, warm, runs)
			t.Logf("storm corpus, workers=%d: %.3f allocs/push", workers, avg)
			if avg > allocBudget {
				t.Fatalf("steady-state allocations per push = %.3f, want <= %v", avg, allocBudget)
			}
		})
	}
}

// TestStreamAllocsSyntheticSharded extends the original single-stream guard
// to the sharded engine.
func TestStreamAllocsSyntheticSharded(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates per push")
	}
	avg := syntheticAllocs(t, 4)
	t.Logf("synthetic feed, workers=4: %.3f allocs/push", avg)
	if avg > allocBudget {
		t.Fatalf("steady-state allocations per push = %.3f, want <= %v", avg, allocBudget)
	}
}
