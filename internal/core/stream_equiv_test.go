package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
)

// normalizeEvents returns a copy sorted by earliest raw member with IDs
// zeroed: the canonical multiset form for comparing event sets that were
// emitted in different orders (closure order vs rank order).
func normalizeEvents(events []event.Event) []event.Event {
	out := append([]event.Event(nil), events...)
	sort.Slice(out, func(a, b int) bool {
		return out[a].RawIndexes[0] < out[b].RawIndexes[0]
	})
	for i := range out {
		out[i].ID = 0
	}
	return out
}

// TestStreamingMatchesBatch is the tentpole differential test: on both
// vendor corpora and at Parallelism 1 and 8, (a) the engine-backed Digest
// reproduces the retired three-pass batch implementation exactly — same
// events, scores, labels, ranks, and IDs — and (b) the Streamer (reorder
// buffer + incremental engine, events emitted at watermark closure) yields
// the same event multiset.
func TestStreamingMatchesBatch(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		for _, j := range []int{1, 8} {
			t.Run(fmt.Sprintf("kind%d-j%d", kind, j), func(t *testing.T) {
				kb, ds := learnSmall(t, kind)
				d, err := NewDigester(kb)
				if err != nil {
					t.Fatal(err)
				}
				d.SetParallelism(j)

				// (a) Engine-backed Digest vs the batch oracle: exact.
				got, err := d.Digest(ds.Messages)
				if err != nil {
					t.Fatal(err)
				}
				want, err := d.ReferenceDigestPlus(kb.AugmentAll(ds.Messages))
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Events) != len(want.Events) {
					t.Fatalf("engine digest: %d events, oracle %d", len(got.Events), len(want.Events))
				}
				for i := range got.Events {
					if !reflect.DeepEqual(got.Events[i], want.Events[i]) {
						t.Fatalf("event %d differs:\nengine: %+v\noracle: %+v", i, got.Events[i], want.Events[i])
					}
				}
				if len(got.ActiveRules) == 0 {
					t.Fatal("engine digest reported no active rules")
				}

				// (b) Streamer (one message at a time, events at closure)
				// vs the oracle: same multiset.
				st := NewStreamer(d, 0)
				var streamed []event.Event
				for _, m := range ds.Messages {
					res, err := st.Push(m)
					if err != nil {
						t.Fatal(err)
					}
					if res != nil {
						streamed = append(streamed, res.Events...)
					}
				}
				res, err := st.Flush()
				if err != nil {
					t.Fatal(err)
				}
				if res != nil {
					streamed = append(streamed, res.Events...)
				}
				if st.Pending() != 0 {
					t.Fatalf("pending after flush = %d", st.Pending())
				}
				sn, wn := normalizeEvents(streamed), normalizeEvents(want.Events)
				if len(sn) != len(wn) {
					t.Fatalf("streamed %d events, oracle %d", len(sn), len(wn))
				}
				for i := range sn {
					if !reflect.DeepEqual(sn[i], wn[i]) {
						t.Fatalf("streamed event %d differs:\nstream: %+v\noracle: %+v", i, sn[i], wn[i])
					}
				}
			})
		}
	}
}

// TestStreamerReorderWithinTolerance feeds a locally-shuffled version of the
// corpus — every message displaced at most one second from its sorted
// position, within the default 2s tolerance — and requires the exact event
// multiset of the in-order batch digest: the reorder buffer must make the
// shuffle invisible, dropping nothing.
func TestStreamerReorderWithinTolerance(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.ReferenceDigestPlus(kb.AugmentAll(ds.Messages))
	if err != nil {
		t.Fatal(err)
	}

	// Swap adjacent pairs whose timestamps differ by at most a second: the
	// arrival order disagrees with time order, but never by more than the
	// 2s tolerance.
	shuffled := append([]syslogmsg.Message(nil), ds.Messages...)
	swaps := 0
	for i := 0; i+1 < len(shuffled); i += 2 {
		if d := shuffled[i+1].Time.Sub(shuffled[i].Time); d > 0 && d <= time.Second {
			shuffled[i], shuffled[i+1] = shuffled[i+1], shuffled[i]
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatal("corpus produced no swappable pairs; shrink the interval")
	}

	st := NewStreamer(d, 0)
	reg := obs.NewRegistry()
	st.Instrument(reg)
	var streamed []event.Event
	for _, m := range shuffled {
		res, err := st.Push(m)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			streamed = append(streamed, res.Events...)
		}
	}
	res, err := st.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		streamed = append(streamed, res.Events...)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("stream.reordered"); got == 0 {
		t.Error("no arrivals counted as reordered despite the shuffle")
	}
	if got := snap.Counter("stream.dropped.late"); got != 0 {
		t.Errorf("dropped.late = %d, want 0 (shuffle stayed within tolerance)", got)
	}

	sn, wn := normalizeEvents(streamed), normalizeEvents(want.Events)
	if len(sn) != len(wn) {
		t.Fatalf("streamed %d events, oracle %d", len(sn), len(wn))
	}
	for i := range sn {
		if !eventEqualIgnoringSeqs(sn[i], wn[i]) {
			t.Fatalf("streamed event %d differs:\nstream: %+v\noracle: %+v", i, sn[i], wn[i])
		}
	}
}

// eventEqualIgnoringSeqs compares two events on everything except
// MessageSeqs: a reordered feed assigns release-order sequence numbers that
// legitimately differ from sorted batch positions, while RawIndexes (the
// durable identity of the member messages) must still agree.
func eventEqualIgnoringSeqs(a, b event.Event) bool {
	a.MessageSeqs, b.MessageSeqs = nil, nil
	a.ID, b.ID = 0, 0
	return reflect.DeepEqual(a, b)
}

// TestEngineEvictionBounded is the state-bound satellite: a storm corpus
// cycling through many (template, location) streams — 16 routers, each
// active in exactly one era, eras separated by more than the closure
// horizon — run with MaxStreams 4 must (1) evict temporal models, (2) keep
// the open-state and stream gauges bounded far below corpus size, and (3)
// still produce the batch oracle's event multiset, because a stream that
// never revives loses nothing to eviction.
func TestEngineEvictionBounded(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}

	const (
		routers    = 16
		perEra     = 400
		eraSpacing = 4 * time.Hour // > closure horizon (Smax = 3h)
	)
	t0 := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	var msgs []syslogmsg.Message
	for r := 0; r < routers; r++ {
		era := t0.Add(time.Duration(r) * eraSpacing)
		for i := 0; i < perEra; i++ {
			msgs = append(msgs, syslogmsg.Message{
				Index:  uint64(len(msgs)),
				Time:   era.Add(time.Duration(i) * time.Second),
				Router: fmt.Sprintf("storm-%02d", r),
				Code:   "STORM-1-FLOOD",
				Detail: "interface flap storm",
			})
		}
	}
	want, err := d.ReferenceDigestPlus(kb.AugmentAll(msgs))
	if err != nil {
		t.Fatal(err)
	}

	st := NewStreamerWith(d, StreamerOptions{MaxStreams: 4})
	reg := obs.NewRegistry()
	st.Instrument(reg)
	var streamed []event.Event
	peakStreams, peakOpen := 0.0, 0.0
	for _, m := range msgs {
		res, err := st.Push(m)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			streamed = append(streamed, res.Events...)
		}
		snap := reg.Snapshot()
		if g := snap.Gauge("stream.state.streams"); g > peakStreams {
			peakStreams = g
		}
		if g := snap.Gauge("stream.state.messages"); g > peakOpen {
			peakOpen = g
		}
	}
	res, err := st.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		streamed = append(streamed, res.Events...)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("stream.state.evictions"); got == 0 {
		t.Error("no stream evictions despite MaxStreams 4 and 16 streams")
	}
	if peakStreams > 5 {
		t.Errorf("peak stream.state.streams = %v, want <= 5 (cap 4 + in-flight)", peakStreams)
	}
	// Open state must track the window, not the corpus: one era can be
	// fully open (eras outlast the horizon), but never several.
	if max := float64(3 * perEra); peakOpen > max {
		t.Errorf("peak stream.state.messages = %v, want <= %v (corpus %d)", peakOpen, max, len(msgs))
	}
	if got := snap.Gauge("stream.state.messages"); got != 0 {
		t.Errorf("open messages after flush = %v, want 0", got)
	}

	sn, wn := normalizeEvents(streamed), normalizeEvents(want.Events)
	if len(sn) != len(wn) {
		t.Fatalf("streamed %d events, oracle %d", len(sn), len(wn))
	}
	for i := range sn {
		if !reflect.DeepEqual(sn[i], wn[i]) {
			t.Fatalf("streamed event %d differs:\nstream: %+v\noracle: %+v", i, sn[i], wn[i])
		}
	}
}
