package core

import (
	"reflect"
	"sync"
	"testing"

	"syslogdigest/internal/gen"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/locparse"
)

func ck(router, code, detail string) cacheKey {
	return cacheKey{router: router, code: code, detail: detail}
}

func TestMatchCacheBasic(t *testing.T) {
	c := newMatchCache(2)
	if _, ok := c.get(ck("r1", "C", "a")); ok {
		t.Fatal("hit on empty cache")
	}
	val := cacheVal{template: 7, info: locparse.Info{
		Primary: locdict.RouterLoc("r1"),
		All:     []locdict.Location{locdict.RouterLoc("r1")},
	}}
	if ev := c.put(ck("r1", "C", "a"), val); ev {
		t.Fatal("eviction on insert into empty cache")
	}
	got, ok := c.get(ck("r1", "C", "a"))
	if !ok || got.template != 7 || !reflect.DeepEqual(got.info, val.info) {
		t.Fatalf("get = %+v ok=%v, want %+v", got, ok, val)
	}
	// The key is the full (router, code, detail) triple.
	if _, ok := c.get(ck("r2", "C", "a")); ok {
		t.Fatal("hit across routers")
	}
	// Re-inserting the same key overwrites in place: no eviction, no growth.
	if ev := c.put(ck("r1", "C", "a"), val); ev {
		t.Fatal("eviction on idempotent overwrite")
	}
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d after overwrite, want 1", n)
	}
}

func TestMatchCacheClockEviction(t *testing.T) {
	c := newMatchCache(2)
	c.put(ck("r", "C", "a"), cacheVal{template: 1})
	c.put(ck("r", "C", "b"), cacheVal{template: 2})
	// Touch "a": its reference bit gives it a second chance.
	c.get(ck("r", "C", "a"))
	if ev := c.put(ck("r", "C", "c"), cacheVal{template: 3}); !ev {
		t.Fatal("insert into full cache reported no eviction")
	}
	if n := c.len(); n != 2 {
		t.Fatalf("len = %d after eviction, want capacity 2", n)
	}
	if _, ok := c.get(ck("r", "C", "a")); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.get(ck("r", "C", "b")); ok {
		t.Fatal("cold entry survived eviction")
	}
	if v, ok := c.get(ck("r", "C", "c")); !ok || v.template != 3 {
		t.Fatalf("new entry missing after eviction: %+v ok=%v", v, ok)
	}
}

func TestSetMatchCache(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	kb.Augment(&ds.Messages[0])
	if kb.cache == nil || kb.cache.len() == 0 {
		t.Fatal("default cache not populated by Augment")
	}
	kb.SetMatchCache(-1)
	if kb.cache != nil {
		t.Fatal("negative SetMatchCache did not disable the cache")
	}
	pm := kb.Augment(&ds.Messages[0]) // must still work uncached
	kb.SetMatchCache(4)
	if kb.cache == nil || len(kb.cache.slots) != 4 {
		t.Fatal("SetMatchCache(4) did not size the cache")
	}
	if got := kb.Augment(&ds.Messages[0]); !reflect.DeepEqual(got, pm) {
		t.Fatalf("augment changed across cache reconfiguration:\n%+v\n%+v", got, pm)
	}
}

// TestAugmentConcurrentSmallCache hammers one tiny shared cache from
// concurrent augment passes (hits, misses and constant evictions) and checks
// every result against the cache-disabled reference. Run under -race via
// `make check`, this is both the determinism proof and the data-race probe
// for the cache.
func TestAugmentConcurrentSmallCache(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	msgs := ds.Messages
	if len(msgs) > 3000 {
		msgs = msgs[:3000]
	}
	kb.SetMatchCache(-1)
	want := kb.AugmentAll(msgs)
	kb.SetMatchCache(64) // far below the working set: evicts constantly
	defer kb.SetMatchCache(0)

	const goroutines = 4
	got := make([][]PlusMessage, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = kb.AugmentAllParallel(msgs, 2)
		}(g)
	}
	wg.Wait()
	for g := range got {
		if len(got[g]) != len(want) {
			t.Fatalf("goroutine %d: %d results, want %d", g, len(got[g]), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[g][i], want[i]) {
				t.Fatalf("goroutine %d msg %d: cached augment diverged:\n got %+v\nwant %+v",
					g, i, got[g][i], want[i])
			}
		}
	}
}
