//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates on the hot path, so allocation-count guards
// skip themselves under -race (the equivalence suites still run there).
const raceEnabled = true
