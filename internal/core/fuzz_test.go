package core

import (
	"testing"
	"time"

	"syslogdigest/internal/gen"
)

// FuzzRestoreStreamer feeds RestoreStreamer corrupted, truncated, and
// arbitrary snapshot bytes: it must either return an error or produce a
// working streamer — never panic. The seed corpus starts from a genuine
// snapshot so mutations explore the decoder's deep paths (envelope,
// streamer payload, grouping index space), not just the JSON front door.
func FuzzRestoreStreamer(f *testing.F) {
	ds, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 4, Seed: 9,
		Duration: 4 * time.Hour, RateScale: 0.25,
	})
	if err != nil {
		f.Fatal(err)
	}
	kb, err := NewLearner(DefaultParams()).Learn(ds.Messages, ds.Net.Configs)
	if err != nil {
		f.Fatal(err)
	}
	d, err := NewDigester(kb)
	if err != nil {
		f.Fatal(err)
	}
	st := NewStreamerWith(d, StreamerOptions{})
	n := len(ds.Messages)
	if n > 300 {
		n = 300
	}
	for _, m := range ds.Messages[:n] {
		if _, err := st.Push(m); err != nil {
			f.Fatal(err)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	st.Close()

	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	f.Add(snap[:len(snap)-1])
	f.Add([]byte(nil))
	f.Add([]byte("{}"))
	f.Add([]byte("not json at all"))
	corrupt := append([]byte(nil), snap...)
	for i := len(corrupt) / 4; i < len(corrupt); i += len(corrupt) / 7 {
		corrupt[i] ^= 0x5a
	}
	f.Add(corrupt)

	probe := ds.Messages[len(ds.Messages)-1]
	f.Fuzz(func(t *testing.T, data []byte) {
		d2, err := NewDigester(kb)
		if err != nil {
			t.Fatal(err)
		}
		s, err := RestoreStreamer(d2, data, StreamerOptions{})
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		// A snapshot the decoder accepted must yield a usable streamer.
		m := probe
		m.Time = s.maxSeen.Add(time.Hour)
		if m.Time.Before(s.frontier) {
			m.Time = s.frontier.Add(time.Hour)
		}
		if _, err := s.Push(m); err != nil {
			t.Logf("push after restore: %v", err)
		}
		if _, err := s.Flush(); err != nil {
			t.Logf("flush after restore: %v", err)
		}
		s.Close()
	})
}
