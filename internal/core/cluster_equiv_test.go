package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"syslogdigest/internal/cluster"
	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/stream"
)

// startShardServer hosts an in-test shard server over TCP loopback — the
// same wire path a real sdshard serves, minus the process boundary.
func startShardServer(t *testing.T, kb *KnowledgeBase) *cluster.Server {
	t.Helper()
	srv, err := cluster.Serve("127.0.0.1:0", cluster.ServerConfig{
		Dict:  kb.Dictionary(),
		Rules: kb.RuleBase,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// loopbackAddrs points n shard slots at one server: n sessions, n remote
// RouterLocals, one process — the smallest real cluster.
func loopbackAddrs(srv *cluster.Server, n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = srv.Addr()
	}
	return addrs
}

// runEngineUpd is runEngine plus the tier-tagged update transcript, for
// provisional-mode differential runs.
func runEngineUpd(t *testing.T, eng streamEngine, plus []PlusMessage, order []int) ([]event.Event, []event.Update) {
	t.Helper()
	var events []event.Event
	var upds []event.Update
	for _, i := range order {
		evs, err := eng.Observe(streamMsg(&plus[i], i))
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, evs...)
		upds = append(upds, eng.TakeUpdates()...)
	}
	events = append(events, eng.Drain()...)
	return events, append(upds, eng.TakeUpdates()...)
}

// diffEvents requires two emitted sequences to match exactly — set, scores,
// labels, IDs, and emission order.
func diffEvents(t *testing.T, label string, got, want []event.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s emitted %d events, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s event %d differs:\ngot:  %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

// diffUpdates requires two update transcripts to match byte-for-byte.
func diffUpdates(t *testing.T, label string, got, want []event.Update) {
	t.Helper()
	var gb, wb bytes.Buffer
	appendUpdates(t, &gb, got)
	appendUpdates(t, &wb, want)
	if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
		t.Fatalf("%s update transcript differs (%d vs %d updates)", label, len(got), len(want))
	}
}

// TestClusterMatchesSerial is the PR 10 differential proof and the make
// cluster-equiv gate: on both vendor corpora, the cluster engine over a
// TCP-loopback shard server at shards ∈ {1, 2, 4} must emit the
// byte-identical event sequence — and, in provisional mode, the identical
// tier-tagged update stream — as the serial in-process engine.
func TestClusterMatchesSerial(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		t.Run(fmt.Sprintf("kind%d", kind), func(t *testing.T) {
			kb, ds := learnSmall(t, kind)
			d, err := NewDigester(kb)
			if err != nil {
				t.Fatal(err)
			}
			plus := kb.AugmentAll(ds.Messages)
			order := feedOrder(plus)
			srv := startShardServer(t, kb)

			serial, err := d.newEngine(0, provHorizon)
			if err != nil {
				t.Fatal(err)
			}
			want, wantUpds := runEngineUpd(t, serial, plus, order)
			if len(want) == 0 {
				t.Fatal("serial engine emitted no events; corpus too small to test")
			}
			if len(wantUpds) == 0 {
				t.Fatal("serial engine emitted no updates; horizon too long to test")
			}

			for _, shards := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
					eng, err := stream.NewCluster(kb.Dictionary(), kb.RuleBase,
						d.engineConfig(0, provHorizon), loopbackAddrs(srv, shards))
					if err != nil {
						t.Fatal(err)
					}
					defer eng.Close()
					got, gotUpds := runEngineUpd(t, eng, plus, order)
					diffEvents(t, fmt.Sprintf("cluster shards=%d", shards), got, want)
					diffUpdates(t, fmt.Sprintf("cluster shards=%d", shards), gotUpds, wantUpds)
				})
			}
		})
	}
}

// TestClusterStreamerMatchesSerial runs the full front-end (reorder buffer
// + engine selection via StreamerOptions.ShardAddrs) against the serial
// streamer, and reconciles the stream.cluster.* series against the
// stream.shard.* and stream.merge.* series it rides with: every batch sent
// was acked, every punctuation applied exactly once per batch, per-shard
// pushed counts sum to the feed, and the merge stage emitted every event.
func TestClusterStreamerMatchesSerial(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	srv := startShardServer(t, kb)

	run := func(opts StreamerOptions, reg *obs.Registry) []event.Event {
		st := NewStreamerWith(d, opts)
		defer st.Close()
		st.Instrument(reg)
		var events []event.Event
		for _, m := range ds.Messages {
			res, err := st.Push(m)
			if err != nil {
				t.Fatal(err)
			}
			if res != nil {
				events = append(events, res.Events...)
			}
		}
		res, err := st.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			events = append(events, res.Events...)
		}
		if st.Pending() != 0 {
			t.Fatalf("pending after flush = %d", st.Pending())
		}
		return events
	}
	want := run(StreamerOptions{}, nil)

	for _, shards := range []int{2, 4} {
		reg := obs.NewRegistry()
		addrs := loopbackAddrs(srv, shards)
		got := run(StreamerOptions{ShardAddrs: addrs}, reg)
		diffEvents(t, fmt.Sprintf("cluster streamer shards=%d", shards), got, want)

		snap := reg.Snapshot()
		sent, acked := snap.Counter("stream.cluster.batches_sent"), snap.Counter("stream.cluster.batches_acked")
		if sent == 0 {
			t.Fatalf("shards=%d: no batches sent", shards)
		}
		if sent != acked {
			t.Fatalf("shards=%d: %v batches sent, %v acked", shards, sent, acked)
		}
		// Each engine batch fans out to every shard (the sync invariant) and
		// is applied by the merge stage exactly once.
		if punct := snap.Counter("stream.cluster.punctuations_applied"); sent != punct*uint64(shards) {
			t.Fatalf("shards=%d: %v batches sent != %v punctuations applied x %d shards",
				shards, sent, punct, shards)
		}
		var shardPushed uint64
		for k := 0; k < shards; k++ {
			shardPushed += snap.Counter(fmt.Sprintf("stream.shard.%d.pushed", k))
		}
		if pushed := snap.Counter("stream.pushed"); shardPushed != pushed {
			t.Fatalf("shards=%d: per-shard pushed sums to %v, streamer pushed %v",
				shards, shardPushed, pushed)
		}
		if em, mem := snap.Counter("stream.emitted"), snap.Counter("stream.merge.emitted"); em != mem || em != uint64(len(want)) {
			t.Fatalf("shards=%d: emitted=%v merge.emitted=%v want %d", shards, em, mem, len(want))
		}
		if snap.Counter("stream.cluster.bytes_out") == 0 || snap.Counter("stream.cluster.bytes_in") == 0 {
			t.Fatalf("shards=%d: wire byte counters did not move", shards)
		}
		if snap.Counter("stream.cluster.reconnects") != 0 {
			t.Fatalf("shards=%d: unexpected reconnects in a quiet run", shards)
		}
	}
}

// TestClusterKillReconnect injects 10 shard restarts at random points of
// the feed (every live session dropped, exactly like killing the sdshard
// processes) and requires the output — final events and the provisional
// update stream — to stay byte-identical to the serial engine, with the
// reconnect counter accounting for every kill exactly: each kill drops
// all `shards` sessions, and each client redials once.
func TestClusterKillReconnect(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	plus := kb.AugmentAll(ds.Messages)
	order := feedOrder(plus)

	serial, err := d.newEngine(0, provHorizon)
	if err != nil {
		t.Fatal(err)
	}
	want, wantUpds := runEngineUpd(t, serial, plus, order)

	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			srv := startShardServer(t, kb)
			reg := obs.NewRegistry()
			eng, err := stream.NewCluster(kb.Dictionary(), kb.RuleBase,
				d.engineConfig(0, provHorizon), loopbackAddrs(srv, shards))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			eng.SetLogf(t.Logf)
			eng.SetBatchSize(32)
			eng.SetClusterMetrics(stream.ClusterMetrics{Client: cluster.ClientMetrics{
				Reconnects: reg.Counter("reconnects"),
				Replayed:   reg.Counter("replayed"),
			}})

			cuts := killPoints(4242+int64(shards), 10, len(order))
			var got []event.Event
			var gotUpds []event.Update
			next := 0
			for n, i := range order {
				if next < len(cuts) && n == cuts[next] {
					next++
					// Synchronize first: connections are live and quiescent, so
					// the kill drops exactly `shards` established sessions and
					// the redial accounting below is exact.
					eng.Stats()
					srv.KillSessions()
				}
				evs, err := eng.Observe(streamMsg(&plus[i], i))
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, evs...)
				gotUpds = append(gotUpds, eng.TakeUpdates()...)
			}
			got = append(got, eng.Drain()...)
			gotUpds = append(gotUpds, eng.TakeUpdates()...)

			diffEvents(t, "kill/reconnect", got, want)
			diffUpdates(t, "kill/reconnect", gotUpds, wantUpds)

			snap := reg.Snapshot()
			recon, replayed := snap.Counter("reconnects"), snap.Counter("replayed")
			if wantRecon := uint64(len(cuts) * shards); recon != wantRecon {
				t.Fatalf("reconnects = %v, want exactly %v (%d kills x %d shards)",
					recon, wantRecon, len(cuts), shards)
			}
			if replayed == 0 {
				t.Fatal("no batches replayed across reconnects")
			}
		})
	}
}

// TestClusterCheckpointRestore checkpoints a live cluster engine
// mid-stream, restores the snapshot into a fresh cluster at a different
// shard count AND into a serial engine, and requires both continuations to
// finish the stream byte-identically — the snapshot is engine-shape-free,
// and the restored cluster re-seeds its remote shards through the session
// handshake.
func TestClusterCheckpointRestore(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetB)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	plus := kb.AugmentAll(ds.Messages)
	order := feedOrder(plus)
	srv := startShardServer(t, kb)

	serial, err := d.newEngine(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := runEngine(t, serial, plus, order)

	cut := len(order) / 2
	eng, err := stream.NewCluster(kb.Dictionary(), kb.RuleBase, d.engineConfig(0, 0), loopbackAddrs(srv, 2))
	if err != nil {
		t.Fatal(err)
	}
	var prefix []event.Event
	for _, i := range order[:cut] {
		evs, err := eng.Observe(streamMsg(&plus[i], i))
		if err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, evs...)
	}
	st, carry, _, err := eng.State()
	if err != nil {
		t.Fatal(err)
	}
	eng.Close() // the snapshot, not the live engine, continues
	prefix = append(prefix, carry...)

	finish := func(label string, eng streamEngine) {
		t.Helper()
		got := append([]event.Event(nil), prefix...)
		got = append(got, runEngine(t, eng, plus, order[cut:])...)
		diffEvents(t, label, got, want)
	}

	eng4, err := stream.RestoreCluster(kb.Dictionary(), kb.RuleBase, d.engineConfig(0, 0), loopbackAddrs(srv, 4), st)
	if err != nil {
		t.Fatal(err)
	}
	defer eng4.Close()
	finish("cluster->cluster(4)", eng4)

	engS, err := stream.RestoreEngine(kb.Dictionary(), kb.RuleBase, d.engineConfig(0, 0), st)
	if err != nil {
		t.Fatal(err)
	}
	finish("cluster->serial", engS)

	// And the reverse shape change: a sharded in-process snapshot restored
	// into a cluster must continue identically too.
	engSh, err := stream.NewSharded(kb.Dictionary(), kb.RuleBase, d.engineConfig(0, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	var prefix2 []event.Event
	for _, i := range order[:cut] {
		evs, err := engSh.Observe(streamMsg(&plus[i], i))
		if err != nil {
			t.Fatal(err)
		}
		prefix2 = append(prefix2, evs...)
	}
	st2, carry2, _, err := engSh.State()
	if err != nil {
		t.Fatal(err)
	}
	engSh.Close()
	if len(carry2) != 0 {
		prefix2 = append(prefix2, carry2...)
	}
	prefix = prefix2
	engC, err := stream.RestoreCluster(kb.Dictionary(), kb.RuleBase, d.engineConfig(0, 0), loopbackAddrs(srv, 2), st2)
	if err != nil {
		t.Fatal(err)
	}
	defer engC.Close()
	finish("sharded->cluster(2)", engC)
}
