package core

import (
	"fmt"

	"syslogdigest/internal/syslogmsg"
	"time"
)

// Streamer adapts the batch Digester to a continuous message feed, the
// shape of the paper's online system. Messages buffer until a quiet
// boundary — a gap longer than Smax, across which no grouping method can
// connect messages (temporal grouping never bridges Smax, and the rule/
// cross windows are far smaller) — then the closed batch digests as a unit.
// A buffer cap forces a flush during pathological storms; only in that case
// can an event be split across flushes.
type Streamer struct {
	d         *Digester
	buf       []syslogmsg.Message
	last      time.Time
	gap       time.Duration
	maxBuffer int
}

// NewStreamer wraps a digester. maxBuffer <= 0 defaults to 500000 messages.
func NewStreamer(d *Digester, maxBuffer int) *Streamer {
	if maxBuffer <= 0 {
		maxBuffer = 500_000
	}
	gap := d.kb.Params.Temporal.Smax
	if w := d.kb.Params.Rules.Window; w > gap {
		gap = w
	}
	return &Streamer{d: d, gap: gap, maxBuffer: maxBuffer}
}

// Push ingests one message (nondecreasing time order expected). When the
// message opens a new quiet-separated window, the previous window is
// digested and returned; otherwise the result is nil.
func (s *Streamer) Push(m syslogmsg.Message) (*DigestResult, error) {
	if len(s.buf) > 0 && m.Time.Before(s.last) {
		return nil, fmt.Errorf("core: streamer requires nondecreasing timestamps (got %v after %v)", m.Time, s.last)
	}
	var res *DigestResult
	if len(s.buf) > 0 && (m.Time.Sub(s.last) > s.gap || len(s.buf) >= s.maxBuffer) {
		var err error
		res, err = s.Flush()
		if err != nil {
			return nil, err
		}
	}
	s.buf = append(s.buf, m)
	s.last = m.Time
	return res, nil
}

// Pending returns the number of buffered, not-yet-digested messages.
func (s *Streamer) Pending() int { return len(s.buf) }

// Flush digests whatever is buffered and resets the window. It returns nil
// when nothing is pending.
func (s *Streamer) Flush() (*DigestResult, error) {
	if len(s.buf) == 0 {
		return nil, nil
	}
	batch := s.buf
	s.buf = nil
	return s.d.Digest(batch)
}
