package core

import (
	"fmt"
	"time"

	"syslogdigest/internal/cluster"
	"syslogdigest/internal/event"
	"syslogdigest/internal/grouping"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/stream"
	"syslogdigest/internal/syslogmsg"
)

// Default StreamerOptions values.
const (
	// DefaultReorderTolerance is how far behind the newest arrival a
	// message may lag and still be sorted into place. Collector feeds are
	// only approximately time-ordered across routers; a couple of seconds
	// absorbs the usual transport skew.
	DefaultReorderTolerance = 2 * time.Second
	// DefaultReorderCap bounds the reorder buffer; overflow releases the
	// oldest buffered message early rather than growing without bound.
	DefaultReorderCap = 8192
)

// StreamerOptions tune the streaming front-end.
type StreamerOptions struct {
	// ReorderTolerance is the reorder-buffer hold time: a message is
	// released to the engine once the newest arrival is at least this much
	// ahead of it, so any two messages whose timestamps disagree with their
	// arrival order by less than the tolerance are re-sorted. Messages
	// arriving later than an already-released timestamp are dropped (and
	// counted), never an error. 0 means DefaultReorderTolerance; negative
	// means no buffering (strict arrival order, any regression drops).
	ReorderTolerance time.Duration
	// ReorderCap caps buffered messages (<= 0: DefaultReorderCap).
	ReorderCap int
	// MaxStreams caps the engine's temporal-model table
	// (<= 0: grouping.DefaultMaxStreams).
	MaxStreams int
	// StreamWorkers selects the engine: 0 inherits the digester's setting
	// (Params.StreamWorkers / SetStreamWorkers), 1 forces the serial
	// engine, N > 1 the sharded engine with N router-hashed workers.
	// Output is byte-identical at any setting.
	StreamWorkers int
	// ShardAddrs selects the cluster engine: one remote shard process per
	// address (repeat an address to host several shards in one process),
	// reached over the shard wire protocol, merged locally. Empty inherits
	// the digester's setting (SetShardAddrs); when resolved non-empty it
	// takes precedence over StreamWorkers. Output stays byte-identical to
	// the serial engine at any address count.
	ShardAddrs []string
	// ProvisionalHorizon turns on two-tier emission: 0 inherits the
	// digester's setting (Params.ProvisionalHorizon /
	// SetProvisionalHorizon), positive enables provisional records at that
	// log-time horizon, negative forces the tier off. Results then carry
	// tier-tagged Updates alongside the unchanged final Events — the final
	// stream is byte-identical at any setting.
	ProvisionalHorizon time.Duration
}

// Streamer is the continuous front-end of the online pipeline: a bounded
// reorder buffer feeding the incremental engine one augmented message at a
// time. Events return from Push as soon as the engine's watermark proves
// them complete — there is no batch boundary, no quiet-gap wait, and memory
// holds only open-window state, not the feed.
//
// Until PR 4 this type buffered up to 500k messages and re-ran the batch
// digester at quiet gaps; it now wraps stream.Engine, and Push/Flush keep
// their signatures (results carry Events only — Messages is nil, since
// messages no longer pass through in batches).
//
// Not safe for concurrent use; callers serialize (the cmds push under one
// mutex). In sharded mode (StreamWorkers > 1) the engine owns worker
// goroutines: Close the streamer when the feed ends.
type Streamer struct {
	d    *Digester
	opts StreamerOptions

	eng        streamEngine
	engMetrics stream.ClusterMetrics
	reg        *obs.Registry

	buf      reorderHeap
	arrivals uint64 // heap tiebreak: preserves arrival order at equal times
	seq      int    // dense engine sequence, assigned at release
	pushed   uint64 // total Push calls, drops included (replay resume offset)

	started  bool      // any arrival seen; maxSeen is meaningful
	maxSeen  time.Time // newest arrival time
	released bool      // any message released; frontier is meaningful
	frontier time.Time // newest released time == engine watermark

	// carry holds events recovered from a checkpoint that the snapshotted
	// run had emitted into the engine's collection queue but the caller had
	// not yet received; they surface on the next Push or Flush, preserving
	// exactly-once delivery across a restart. carryUpd is the same for
	// tier-tagged updates, keeping (EventID, Revision) delivery
	// exactly-once too.
	carry    []event.Event
	carryUpd []event.Update

	mBuffered   *obs.Gauge   // stream.buffered (reorder buffer depth)
	mPushed     *obs.Counter // stream.pushed
	mReordered  *obs.Counter // stream.reordered
	mDropped    *obs.Counter // stream.dropped.late
	mDroppedOvf *obs.Counter // stream.dropped.overflow
}

// NewStreamer wraps a digester with default options; maxBuffer (<= 0 for
// the default) caps the reorder buffer, preserving the old signature.
func NewStreamer(d *Digester, maxBuffer int) *Streamer {
	return NewStreamerWith(d, StreamerOptions{ReorderCap: maxBuffer})
}

// NewStreamerWith wraps a digester with explicit options.
func NewStreamerWith(d *Digester, opts StreamerOptions) *Streamer {
	if opts.ReorderTolerance == 0 {
		opts.ReorderTolerance = DefaultReorderTolerance
	}
	if opts.ReorderTolerance < 0 {
		opts.ReorderTolerance = 0
	}
	if opts.ReorderCap <= 0 {
		opts.ReorderCap = DefaultReorderCap
	}
	return &Streamer{d: d, opts: opts}
}

// Instrument publishes the streamer's metrics into reg: the reorder-buffer
// counters (stream.pushed, stream.reordered, stream.dropped.late,
// stream.buffered), the engine's emission metrics (stream.emitted,
// stream.emit_latency_seconds, stream.watermark_unix_seconds), its state
// gauges (stream.state.{messages,groups,streams}, stream.state.evictions),
// and the shared grouping merge counters (group.merges.*). In sharded mode
// it additionally publishes per-shard series (stream.shard.<k>.{pushed,
// streams,evictions,watermark_unix_seconds}) and the merge-stage series
// (stream.merge.emitted, stream.merge.lag_seconds). In cluster mode the
// wire-level series join them (stream.cluster.{bytes_out,bytes_in,
// batches_sent,batches_acked,replayed_batches,reconnects,state_snapshots,
// rtt_seconds,inflight,punctuations_applied}). A nil registry leaves the
// streamer uninstrumented.
func (s *Streamer) Instrument(reg *obs.Registry) {
	s.reg = reg
	s.mBuffered = reg.Gauge("stream.buffered")
	s.mPushed = reg.Counter("stream.pushed")
	s.mReordered = reg.Counter("stream.reordered")
	s.mDropped = reg.Counter("stream.dropped.late")
	s.mDroppedOvf = reg.Counter("stream.dropped.overflow")
	s.engMetrics = stream.ClusterMetrics{ShardedMetrics: stream.ShardedMetrics{Metrics: stream.Metrics{
		Grouping: grouping.IncMetrics{
			MergeTemporal:   reg.Counter("group.merges.temporal"),
			MergeRule:       reg.Counter("group.merges.rule"),
			MergeCross:      reg.Counter("group.merges.cross"),
			RuleCandidates:  reg.Counter("group.rule.candidates_scanned"),
			RulePairs:       reg.Counter("group.rule.pairs_matched"),
			CrossCandidates: reg.Counter("group.cross.candidates_scanned"),
			OpenMessages:    reg.Gauge("stream.state.messages"),
			OpenGroups:      reg.Gauge("stream.state.groups"),
			Streams:         reg.Gauge("stream.state.streams"),
			StreamEvictions: reg.Counter("stream.state.evictions"),
			PoolGets:        reg.Counter("stream.pool.pending.gets"),
			PoolPuts:        reg.Counter("stream.pool.pending.puts"),
			PoolLive:        reg.Gauge("stream.pool.pending.live"),
		},
		Emitted:     reg.Counter("stream.emitted"),
		EmitLatency: reg.Histogram("stream.emit_latency_seconds", stream.EmitLatencyBounds()),
		Watermark:   reg.Gauge("stream.watermark_unix_seconds"),
	}}}
	if s.provHorizon() > 0 {
		s.engMetrics.ProvEmitted = reg.Counter("stream.provisional.emitted")
		s.engMetrics.ProvRevised = reg.Counter("stream.provisional.revised")
		s.engMetrics.ProvSuperseded = reg.Counter("stream.provisional.superseded")
		s.engMetrics.ProvFinalized = reg.Counter("stream.provisional.finalized")
		s.engMetrics.RevisionChurn = reg.Histogram("stream.provisional.revision_churn", stream.ChurnBounds())
		s.engMetrics.ProvLatency = reg.Histogram("stream.provisional.latency_seconds", stream.EmitLatencyBounds())
	}
	if w := s.workers(); w > 1 {
		s.engMetrics.MergeEmitted = reg.Counter("stream.merge.emitted")
		s.engMetrics.MergeLag = reg.Histogram("stream.merge.lag_seconds", stream.MergeLagBounds())
		s.engMetrics.Shards = make([]stream.ShardMetrics, w)
		for k := 0; k < w; k++ {
			s.engMetrics.Shards[k] = stream.ShardMetrics{
				Pushed:    reg.Counter(fmt.Sprintf("stream.shard.%d.pushed", k)),
				Streams:   reg.Gauge(fmt.Sprintf("stream.shard.%d.streams", k)),
				Evictions: reg.Counter(fmt.Sprintf("stream.shard.%d.evictions", k)),
				Watermark: reg.Gauge(fmt.Sprintf("stream.shard.%d.watermark_unix_seconds", k)),
			}
		}
	}
	if len(s.clusterAddrs()) > 0 {
		s.engMetrics.Client = cluster.ClientMetrics{
			BytesOut:       reg.Counter("stream.cluster.bytes_out"),
			BytesIn:        reg.Counter("stream.cluster.bytes_in"),
			BatchesSent:    reg.Counter("stream.cluster.batches_sent"),
			BatchesAcked:   reg.Counter("stream.cluster.batches_acked"),
			Replayed:       reg.Counter("stream.cluster.replayed_batches"),
			Reconnects:     reg.Counter("stream.cluster.reconnects"),
			StateSnapshots: reg.Counter("stream.cluster.state_snapshots"),
			RTT:            reg.Histogram("stream.cluster.rtt_seconds", stream.ClusterRTTBounds()),
			Inflight:       reg.Gauge("stream.cluster.inflight"),
		}
		s.engMetrics.PunctApplied = reg.Counter("stream.cluster.punctuations_applied")
	}
	if s.eng != nil {
		s.setEngineMetrics(s.eng)
	}
}

// workers resolves the engine's shard count: the cluster address list when
// one is configured (one shard per address), else the explicit streamer
// option, else the digester's setting.
func (s *Streamer) workers() int {
	if addrs := s.clusterAddrs(); len(addrs) > 0 {
		return len(addrs)
	}
	if s.opts.StreamWorkers != 0 {
		return s.opts.StreamWorkers
	}
	return s.d.streamWorks
}

// clusterAddrs resolves the remote-shard address list: explicit streamer
// option first, then the digester's setting. Empty means in-process.
func (s *Streamer) clusterAddrs() []string {
	if len(s.opts.ShardAddrs) > 0 {
		return s.opts.ShardAddrs
	}
	return s.d.shardAddrs
}

// provHorizon resolves the two-tier emission setting: explicit streamer
// option first (negative forces off), then the digester's setting.
func (s *Streamer) provHorizon() time.Duration {
	if s.opts.ProvisionalHorizon != 0 {
		if s.opts.ProvisionalHorizon < 0 {
			return 0
		}
		return s.opts.ProvisionalHorizon
	}
	return s.d.provHorizon
}

// setEngineMetrics hands the metric set to the engine; the sharded engine
// takes the per-shard and merge-stage handles too, the cluster engine adds
// the wire-level handles. Metrics must land before the first Observe (they
// do: engine() installs them immediately after construction).
func (s *Streamer) setEngineMetrics(eng streamEngine) {
	switch e := eng.(type) {
	case *stream.ClusterEngine:
		e.SetClusterMetrics(s.engMetrics)
	case *stream.ShardedEngine:
		e.SetShardedMetrics(s.engMetrics.ShardedMetrics)
	default:
		eng.SetMetrics(s.engMetrics.Metrics)
	}
}

// engine lazily builds the underlying engine (construction can fail on
// invalid temporal parameters, and NewStreamer has no error return).
func (s *Streamer) engine() (streamEngine, error) {
	if s.eng == nil {
		eng, err := s.d.newStreamEngine(s.opts.MaxStreams, s.workers(), s.clusterAddrs(), s.provHorizon())
		if err != nil {
			return nil, err
		}
		s.eng = eng
		s.setEngineMetrics(eng)
	}
	return s.eng, nil
}

// Close releases the engine's worker goroutines (a no-op for the serial
// engine). Open groups do not emit — Flush first for a clean shutdown.
func (s *Streamer) Close() {
	if s.eng != nil {
		s.eng.Close()
	}
}

// Push ingests one message and returns the events it closed (nil when none
// closed). Out-of-order arrivals within the reorder tolerance are sorted
// into place; arrivals older than the released frontier are dropped and
// counted, never an error — a live feed must survive a misbehaving clock.
// Drops split into two series: stream.dropped.late for arrivals lagging
// more than the tolerance behind the newest (the sender misbehaved), and
// stream.dropped.overflow for arrivals still within tolerance whose slot
// was lost because the cap (or a Flush) forced the frontier forward early
// (the buffer was undersized — retune ReorderCap, not the sender).
//
// On an engine error the events already closed during the call are
// returned alongside the error, so nothing the engine emitted is lost.
func (s *Streamer) Push(m syslogmsg.Message) (*DigestResult, error) {
	s.mPushed.Inc()
	s.pushed++
	if s.released && m.Time.Before(s.frontier) {
		if s.opts.ReorderTolerance > 0 && m.Time.After(s.maxSeen.Add(-s.opts.ReorderTolerance)) {
			s.mDroppedOvf.Inc()
		} else {
			s.mDropped.Inc()
		}
		return s.finish(s.takeCarry(), nil)
	}
	if s.started && m.Time.Before(s.maxSeen) {
		s.mReordered.Inc()
	} else {
		s.maxSeen = m.Time
	}
	s.started = true

	events := s.takeCarry()
	var ferr error
	if len(s.buf) >= s.opts.ReorderCap {
		// The buffer is at its documented bound: release one message now
		// so it never holds more than ReorderCap. When the new arrival
		// precedes everything buffered it is itself the one to release —
		// feeding it directly keeps the feed order sorted without it ever
		// occupying a slot.
		if m.Time.Before(s.buf[0].m.Time) {
			evs, err := s.feed(m)
			events = append(events, evs...)
			ferr = err
		} else {
			item := s.buf.pop()
			evs, err := s.feed(item.m)
			events = append(events, evs...)
			if err != nil {
				ferr = err
			} else {
				s.buf.push(bufItem{m: m, order: s.arrivals})
				s.arrivals++
			}
		}
	} else {
		s.buf.push(bufItem{m: m, order: s.arrivals})
		s.arrivals++
	}
	if ferr == nil {
		evs, err := s.release()
		events = append(events, evs...)
		ferr = err
	}
	s.mBuffered.Set(float64(len(s.buf)))
	return s.finish(events, ferr)
}

// release feeds the engine every buffered message that is either older than
// maxSeen − tolerance (no in-tolerance arrival can precede it anymore) or
// forced out by the buffer cap (possible after a restore into a smaller
// cap; Push itself never overfills). Events closed before a feed error are
// returned with it.
func (s *Streamer) release() ([]event.Event, error) {
	bound := s.maxSeen.Add(-s.opts.ReorderTolerance)
	var events []event.Event
	for len(s.buf) > 0 {
		if s.buf[0].m.Time.After(bound) && len(s.buf) <= s.opts.ReorderCap {
			break
		}
		item := s.buf.pop()
		evs, err := s.feed(item.m)
		events = append(events, evs...)
		if err != nil {
			return events, err
		}
	}
	return events, nil
}

// takeCarry drains the restored-but-undelivered events, if any.
func (s *Streamer) takeCarry() []event.Event {
	if s.carry == nil {
		return nil
	}
	c := s.carry
	s.carry = nil
	return c
}

// finish packages events (possibly partial, alongside an error) plus the
// call's tier-tagged updates — restored carry first, then whatever the
// engine queued during this call — as a DigestResult, keeping the
// nil-when-empty contract.
func (s *Streamer) finish(events []event.Event, err error) (*DigestResult, error) {
	upds := s.carryUpd
	s.carryUpd = nil
	if s.eng != nil {
		if eu := s.eng.TakeUpdates(); len(eu) > 0 {
			if upds == nil {
				upds = eu
			} else {
				upds = append(upds, eu...)
			}
		}
	}
	if len(events) == 0 && len(upds) == 0 {
		return nil, err
	}
	return &DigestResult{Events: events, Updates: upds}, err
}

// feed augments one message and hands it to the engine.
func (s *Streamer) feed(m syslogmsg.Message) ([]event.Event, error) {
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	pm := s.d.kb.Augment(&m)
	sm := streamMsg(&pm, s.seq)
	s.seq++
	evs, err := eng.Observe(sm)
	if err != nil {
		return nil, err
	}
	s.frontier = pm.Time
	s.released = true
	return evs, nil
}

// Flush releases the reorder buffer and force-closes every open group,
// returning the events (nil when nothing was pending). The engine's
// temporal models, watermark, and the drop frontier persist: flushing is
// an emission point, not a reset.
//
// If a feed fails mid-drain, the events already closed are returned with
// the error (nothing emitted is lost), the unfed remainder stays buffered,
// and stream.buffered reflects it.
func (s *Streamer) Flush() (*DigestResult, error) {
	events := s.takeCarry()
	var ferr error
	for len(s.buf) > 0 {
		item := s.buf.pop()
		evs, err := s.feed(item.m)
		events = append(events, evs...)
		if err != nil {
			ferr = err
			break
		}
	}
	s.mBuffered.Set(float64(len(s.buf)))
	if ferr == nil && s.eng != nil {
		events = append(events, s.eng.Drain()...)
	}
	return s.finish(events, ferr)
}

// Pushed is the number of Push calls this streamer has accepted, dropped
// arrivals included. A replayable source that checkpoints the streamer can
// skip exactly this many messages on restart to resume where it left off.
func (s *Streamer) Pushed() uint64 { return s.pushed }

// Pending returns the number of messages held in the streamer: buffered for
// reordering plus open (grouped but unemitted) in the engine.
func (s *Streamer) Pending() int {
	n := len(s.buf)
	if s.eng != nil {
		n += s.eng.Pending()
	}
	return n
}

// Watermark is the engine's watermark (zero before the first release).
func (s *Streamer) Watermark() time.Time {
	if s.eng == nil {
		return time.Time{}
	}
	return s.eng.Watermark()
}

// bufItem is one buffered arrival; order breaks timestamp ties so equal
// times release in arrival order.
type bufItem struct {
	m     syslogmsg.Message
	order uint64
}

// reorderHeap is a min-heap on (time, arrival order). Hand-rolled rather
// than container/heap: push/pop run once per message on the hot path, and
// the concrete element type avoids the interface boxing allocation.
type reorderHeap []bufItem

func (h reorderHeap) less(i, j int) bool {
	if !h[i].m.Time.Equal(h[j].m.Time) {
		return h[i].m.Time.Before(h[j].m.Time)
	}
	return h[i].order < h[j].order
}

func (h *reorderHeap) push(it bufItem) {
	*h = append(*h, it)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *reorderHeap) pop() bufItem {
	q := *h
	n := len(q) - 1
	it := q[0]
	q[0] = q[n]
	q[n] = bufItem{}
	q = q[:n]
	*h = q
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return it
}
