package core

import (
	"fmt"

	"syslogdigest/internal/obs"
	"syslogdigest/internal/syslogmsg"
	"time"
)

// Streamer adapts the batch Digester to a continuous message feed, the
// shape of the paper's online system. Messages buffer until a quiet
// boundary — a gap longer than Smax, across which no grouping method can
// connect messages (temporal grouping never bridges Smax, and the rule/
// cross windows are far smaller) — then the closed batch digests as a unit.
// A buffer cap forces a flush during pathological storms; only in that case
// can an event be split across flushes.
type Streamer struct {
	d         *Digester
	buf       []syslogmsg.Message
	last      time.Time
	started   bool // a message has been pushed; last is meaningful
	gap       time.Duration
	maxBuffer int

	mBuffered    *obs.Gauge   // stream.buffered
	mPushed      *obs.Counter // stream.pushed
	mFlushes     *obs.Counter // stream.flushes
	mFlushGap    *obs.Counter // stream.flush.gap
	mFlushCap    *obs.Counter // stream.flush.cap
	mFlushManual *obs.Counter // stream.flush.manual
}

// NewStreamer wraps a digester. maxBuffer <= 0 defaults to 500000 messages.
func NewStreamer(d *Digester, maxBuffer int) *Streamer {
	if maxBuffer <= 0 {
		maxBuffer = 500_000
	}
	gap := d.kb.Params.Temporal.Smax
	if w := d.kb.Params.Rules.Window; w > gap {
		gap = w
	}
	return &Streamer{d: d, gap: gap, maxBuffer: maxBuffer}
}

// Instrument publishes the streamer's metrics (stream.*) into reg. Call
// before the first Push; a nil registry leaves the streamer uninstrumented
// (every metric op then no-ops).
func (s *Streamer) Instrument(reg *obs.Registry) {
	s.mBuffered = reg.Gauge("stream.buffered")
	s.mPushed = reg.Counter("stream.pushed")
	s.mFlushes = reg.Counter("stream.flushes")
	s.mFlushGap = reg.Counter("stream.flush.gap")
	s.mFlushCap = reg.Counter("stream.flush.cap")
	s.mFlushManual = reg.Counter("stream.flush.manual")
}

// Push ingests one message (nondecreasing time order expected). When the
// message opens a new quiet-separated window, the previous window is
// digested and returned; otherwise the result is nil.
//
// Monotonicity is enforced for the stream's lifetime, not per window: the
// guard used to check only while the buffer was non-empty, so the first
// message after a flush could silently jump backwards in time and produce
// a batch whose span overlaps the one just digested.
func (s *Streamer) Push(m syslogmsg.Message) (*DigestResult, error) {
	if s.started && m.Time.Before(s.last) {
		return nil, fmt.Errorf("core: streamer requires nondecreasing timestamps (got %v after %v)", m.Time, s.last)
	}
	var res *DigestResult
	if len(s.buf) > 0 {
		gapFlush := m.Time.Sub(s.last) > s.gap
		capFlush := !gapFlush && len(s.buf) >= s.maxBuffer
		if gapFlush || capFlush {
			var err error
			res, err = s.flush()
			if err != nil {
				return nil, err
			}
			if gapFlush {
				s.mFlushGap.Inc()
			} else {
				s.mFlushCap.Inc()
			}
		}
	}
	s.buf = append(s.buf, m)
	s.last = m.Time
	s.started = true
	s.mPushed.Inc()
	s.mBuffered.Set(float64(len(s.buf)))
	return res, nil
}

// Pending returns the number of buffered, not-yet-digested messages.
func (s *Streamer) Pending() int { return len(s.buf) }

// Flush digests whatever is buffered and resets the window. It returns nil
// when nothing is pending. The monotonicity guard persists across the
// flush.
func (s *Streamer) Flush() (*DigestResult, error) {
	if len(s.buf) == 0 {
		return nil, nil
	}
	res, err := s.flush()
	if err == nil {
		s.mFlushManual.Inc()
	}
	return res, err
}

func (s *Streamer) flush() (*DigestResult, error) {
	batch := s.buf
	s.buf = nil
	s.mFlushes.Inc()
	s.mBuffered.Set(0)
	return s.d.Digest(batch)
}
