package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/stream"
	"syslogdigest/internal/syslogmsg"
)

// feedOrder returns the indexes of plus in engine feed order: ascending
// time, ties by batch position (the order DigestPlus uses).
func feedOrder(plus []PlusMessage) []int {
	order := make([]int, len(plus))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := &plus[order[a]], &plus[order[b]]
		if !pa.Time.Equal(pb.Time) {
			return pa.Time.Before(pb.Time)
		}
		return order[a] < order[b]
	})
	return order
}

// runEngine feeds the corpus through eng in feed order and returns the
// full emitted event sequence (Observe emissions then Drain), exactly as
// emitted: IDs, order, everything.
func runEngine(t *testing.T, eng streamEngine, plus []PlusMessage, order []int) []event.Event {
	t.Helper()
	var events []event.Event
	for _, i := range order {
		evs, err := eng.Observe(streamMsg(&plus[i], i))
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, evs...)
	}
	return append(events, eng.Drain()...)
}

// TestShardedMatchesSerial is the PR 5 differential test and the make
// check equivalence smoke: on both vendor corpora, the sharded engine at
// workers ∈ {1, 2, 8} must emit the byte-identical event sequence — set,
// scores, labels, IDs, and emission order — as the serial engine, both at
// the engine surface and through DigestPlus.
func TestShardedMatchesSerial(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		t.Run(fmt.Sprintf("kind%d", kind), func(t *testing.T) {
			kb, ds := learnSmall(t, kind)
			d, err := NewDigester(kb)
			if err != nil {
				t.Fatal(err)
			}
			plus := kb.AugmentAll(ds.Messages)
			order := feedOrder(plus)

			serial, err := d.newEngine(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := runEngine(t, serial, plus, order)
			if len(want) == 0 {
				t.Fatal("serial engine emitted no events; corpus too small to test")
			}
			wantDigest, err := d.DigestPlus(plus)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
					eng, err := stream.NewSharded(kb.Dictionary(), kb.RuleBase, d.engineConfig(0, 0), workers)
					if err != nil {
						t.Fatal(err)
					}
					defer eng.Close()
					got := runEngine(t, eng, plus, order)
					if len(got) != len(want) {
						t.Fatalf("sharded emitted %d events, serial %d", len(got), len(want))
					}
					for i := range got {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("event %d differs:\nsharded: %+v\nserial:  %+v", i, got[i], want[i])
						}
					}

					// End-to-end through DigestPlus (rank + ID reassignment on
					// top of the engine) must be exact too.
					d.SetStreamWorkers(workers)
					gotDigest, err := d.DigestPlus(plus)
					d.SetStreamWorkers(0)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotDigest.Events, wantDigest.Events) {
						t.Fatalf("DigestPlus events differ at %d workers", workers)
					}
					if !reflect.DeepEqual(gotDigest.ActiveRules, wantDigest.ActiveRules) {
						t.Fatalf("DigestPlus active rules differ at %d workers", workers)
					}
				})
			}
		})
	}
}

// TestShardedStreamerMatchesSerial runs the full Streamer front-end (reorder
// buffer + engine) in sharded mode against the serial streamer: identical
// push sequence, identical emitted event sequence (order and IDs included,
// since the sharded merge stage assigns IDs in the same closure order).
func TestShardedStreamerMatchesSerial(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []event.Event {
		st := NewStreamerWith(d, StreamerOptions{StreamWorkers: workers})
		defer st.Close()
		var events []event.Event
		for _, m := range ds.Messages {
			res, err := st.Push(m)
			if err != nil {
				t.Fatal(err)
			}
			if res != nil {
				events = append(events, res.Events...)
			}
		}
		res, err := st.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			events = append(events, res.Events...)
		}
		if st.Pending() != 0 {
			t.Fatalf("pending after flush = %d", st.Pending())
		}
		return events
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d emitted %d events, serial %d", workers, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d event %d differs:\nsharded: %+v\nserial:  %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestShardedRandomizedSchedule is the -race stress test: a fixed-seed
// random schedule of batch sizes, mid-stream state queries (which force
// early dispatch and synchronize with the merge stage), and drains, at a
// worker count that oversubscribes the host. Output must still match the
// serial engine exactly.
func TestShardedRandomizedSchedule(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetB)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	plus := kb.AugmentAll(ds.Messages)
	order := feedOrder(plus)

	serial, err := d.newEngine(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := runEngine(t, serial, plus, order)

	rng := rand.New(rand.NewSource(17))
	eng, err := stream.NewSharded(kb.Dictionary(), kb.RuleBase, d.engineConfig(0, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.SetBatchSize(1 + rng.Intn(64))

	var got []event.Event
	for n, i := range order {
		evs, err := eng.Observe(streamMsg(&plus[i], i))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, evs...)
		if rng.Intn(97) == 0 {
			// State queries synchronize the pipeline mid-stream; they must
			// never perturb output.
			if st := eng.Stats(); st.OpenMessages < 0 {
				t.Fatal("negative open messages")
			}
			if p := eng.Pending(); p < 0 {
				t.Fatal("negative pending")
			}
			_ = n
		}
	}
	got = append(got, eng.Drain()...)

	if len(got) != len(want) {
		t.Fatalf("randomized schedule emitted %d events, serial %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d differs under randomized schedule", i)
		}
	}
}

// TestShardedLowWatermarkMonotone is the low-watermark property test: under
// heavy shard skew (one router carries almost all traffic, so one shard
// works while others idle), the merge stage's low watermark must be
// nondecreasing, never ahead of the dispatcher watermark, and must reach
// it at drain.
func TestShardedLowWatermarkMonotone(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.NewSharded(kb.Dictionary(), kb.RuleBase, d.engineConfig(0, 0), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.SetBatchSize(16)

	t0 := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(5))
	var msgs []syslogmsg.Message
	for i := 0; i < 4096; i++ {
		router := "hub-router"
		if rng.Intn(10) == 0 {
			router = fmt.Sprintf("spoke-%d", rng.Intn(8))
		}
		msgs = append(msgs, syslogmsg.Message{
			Index:  uint64(i),
			Time:   t0.Add(time.Duration(i) * 250 * time.Millisecond),
			Router: router,
			Code:   "SKEW-1-TEST",
			Detail: "skewed feed",
		})
	}
	plus := kb.AugmentAll(msgs)

	var low time.Time
	for i := range plus {
		if _, err := eng.Observe(streamMsg(&plus[i], i)); err != nil {
			t.Fatal(err)
		}
		lw := eng.LowWatermark()
		if lw.Before(low) {
			t.Fatalf("low watermark regressed: %v after %v", lw, low)
		}
		low = lw
		if lw.After(eng.Watermark()) {
			t.Fatalf("low watermark %v ahead of dispatcher watermark %v", lw, eng.Watermark())
		}
	}
	if low.IsZero() {
		t.Fatal("low watermark never advanced")
	}
	eng.Drain()
	if lw := eng.LowWatermark(); !lw.Equal(eng.Watermark()) {
		t.Fatalf("after drain low watermark %v != watermark %v", lw, eng.Watermark())
	}
}
