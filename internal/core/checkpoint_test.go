package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/grouping"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/stream"
	"syslogdigest/internal/syslogmsg"
)

// appendEvents marshals each event to JSON and appends the lines to buf,
// preserving emission order. Byte equality of two such transcripts means
// identical events, scores, IDs, and ordering.
func appendEvents(t *testing.T, buf *bytes.Buffer, res *DigestResult) int {
	t.Helper()
	if res == nil {
		return 0
	}
	for i := range res.Events {
		b, err := json.Marshal(&res.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return len(res.Events)
}

// runUninterrupted streams every message through one streamer and returns
// the full emission transcript.
func runUninterrupted(t *testing.T, kb *KnowledgeBase, msgs []syslogmsg.Message, opts StreamerOptions) *bytes.Buffer {
	t.Helper()
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStreamerWith(d, opts)
	defer st.Close()
	var buf bytes.Buffer
	for _, m := range msgs {
		res, err := st.Push(m)
		if err != nil {
			t.Fatal(err)
		}
		appendEvents(t, &buf, res)
	}
	res, err := st.Flush()
	if err != nil {
		t.Fatal(err)
	}
	appendEvents(t, &buf, res)
	return &buf
}

// killPoints picks n distinct, sorted cut positions in (0, total).
func killPoints(seed int64, n, total int) []int {
	rng := rand.New(rand.NewSource(seed))
	seen := map[int]bool{}
	for len(seen) < n {
		p := 1 + rng.Intn(total-1)
		seen[p] = true
	}
	pts := make([]int, 0, n)
	for p := range seen {
		pts = append(pts, p)
	}
	sort.Ints(pts)
	return pts
}

// TestCheckpointRestoreEquivalence is the differential kill/restore gate:
// on both corpora, at 1 and 4 workers, the run is killed at 20+ random
// points — Snapshot, Close, fresh Digester, RestoreStreamer — and the
// stitched-together emission transcript must be byte-identical to the
// uninterrupted run's (same events, scores, IDs, order, each exactly once).
func TestCheckpointRestoreEquivalence(t *testing.T) {
	for _, kind := range []gen.DatasetKind{gen.DatasetA, gen.DatasetB} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("kind%d/workers%d", kind, workers), func(t *testing.T) {
				kb, ds := learnSmall(t, kind)
				kb.SetMatchCache(0)
				msgs := ds.Messages
				opts := StreamerOptions{StreamWorkers: workers}
				want := runUninterrupted(t, kb, msgs, opts)

				cuts := killPoints(61+int64(kind)*17+int64(workers), 20, len(msgs))
				d, err := NewDigester(kb)
				if err != nil {
					t.Fatal(err)
				}
				st := NewStreamerWith(d, opts)
				var got bytes.Buffer
				next := 0
				for i, m := range msgs {
					if next < len(cuts) && i == cuts[next] {
						next++
						snap, err := st.Snapshot()
						if err != nil {
							t.Fatalf("snapshot at %d: %v", i, err)
						}
						st.Close()
						d2, err := NewDigester(kb)
						if err != nil {
							t.Fatal(err)
						}
						st, err = RestoreStreamer(d2, snap, opts)
						if err != nil {
							t.Fatalf("restore at %d: %v", i, err)
						}
						if got, want := st.Pushed(), uint64(i); got != want {
							t.Fatalf("restored Pushed() = %d at cut %d", got, want)
						}
					}
					res, err := st.Push(m)
					if err != nil {
						t.Fatal(err)
					}
					appendEvents(t, &got, res)
				}
				res, err := st.Flush()
				if err != nil {
					t.Fatal(err)
				}
				appendEvents(t, &got, res)
				st.Close()

				if !bytes.Equal(want.Bytes(), got.Bytes()) {
					t.Fatalf("killed run diverged from uninterrupted run\nwant %d bytes, got %d bytes",
						want.Len(), got.Len())
				}
			})
		}
	}
}

// TestCheckpointRestoreAcrossWorkerCounts kills a sharded run and restores
// it serial (and vice versa): the snapshot is shape-independent, so the
// stitched transcript must still match the uninterrupted reference.
func TestCheckpointRestoreAcrossWorkerCounts(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	kb.SetMatchCache(0)
	msgs := ds.Messages
	want := runUninterrupted(t, kb, msgs, StreamerOptions{StreamWorkers: 1})

	// 4 workers → kill → 1 worker → kill → 3 workers.
	plan := []int{4, 1, 3}
	cuts := killPoints(7, len(plan)-1, len(msgs))
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStreamerWith(d, StreamerOptions{StreamWorkers: plan[0]})
	var got bytes.Buffer
	next := 0
	for i, m := range msgs {
		if next < len(cuts) && i == cuts[next] {
			next++
			snap, err := st.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			st.Close()
			d2, err := NewDigester(kb)
			if err != nil {
				t.Fatal(err)
			}
			st, err = RestoreStreamer(d2, snap, StreamerOptions{StreamWorkers: plan[next]})
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := st.Push(m)
		if err != nil {
			t.Fatal(err)
		}
		appendEvents(t, &got, res)
	}
	res, err := st.Flush()
	if err != nil {
		t.Fatal(err)
	}
	appendEvents(t, &got, res)
	st.Close()

	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("resharded run diverged: want %d bytes, got %d", want.Len(), got.Len())
	}
}

// TestCheckpointGoldenRoundTrip: restoring a snapshot and snapshotting the
// restored streamer reproduces the original bytes — the serialization is a
// fixed point, so checkpoint files are stable and diffable across restarts.
func TestCheckpointGoldenRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			kb, ds := learnSmall(t, gen.DatasetA)
			msgs := ds.Messages
			d, err := NewDigester(kb)
			if err != nil {
				t.Fatal(err)
			}
			opts := StreamerOptions{StreamWorkers: workers}
			st := NewStreamerWith(d, opts)
			defer st.Close()
			marks := map[int]bool{0: true, len(msgs) / 3: true, len(msgs) - 1: true}
			for i, m := range msgs {
				if _, err := st.Push(m); err != nil {
					t.Fatal(err)
				}
				if !marks[i] {
					continue
				}
				snap, err := st.Snapshot()
				if err != nil {
					t.Fatalf("snapshot at %d: %v", i, err)
				}
				d2, err := NewDigester(kb)
				if err != nil {
					t.Fatal(err)
				}
				r, err := RestoreStreamer(d2, snap, opts)
				if err != nil {
					t.Fatalf("restore at %d: %v", i, err)
				}
				snap2, err := r.Snapshot()
				r.Close()
				if err != nil {
					t.Fatalf("re-snapshot at %d: %v", i, err)
				}
				if !bytes.Equal(snap, snap2) {
					t.Fatalf("snapshot at %d is not a fixed point: %d vs %d bytes",
						i, len(snap), len(snap2))
				}
			}
		})
	}
}

// TestCheckpointPoolIndependence proves the Pending pool is runtime
// plumbing only, invisible to checkpoints: a snapshot restores to the same
// bytes (no pool state serializes — the golden fixed point), and a restored
// run's pool books balance on their own. Records materialized by restore
// are GC-owned (owner == nil) and must never enter the new engine's pool,
// while every record the new pool hands out must come back by Flush — so
// after draining, gets == puts exactly: a put surplus means a restored
// record leaked in, a deficit means a pooled record leaked out. Run under
// -race (make checkpoint-equiv) this also exercises the cross-goroutine
// release paths of the sharded engine's refcounts.
func TestCheckpointPoolIndependence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			kb, ds := learnSmall(t, gen.DatasetA)
			kb.SetMatchCache(0)
			msgs := ds.Messages
			opts := StreamerOptions{StreamWorkers: workers}
			d, err := NewDigester(kb)
			if err != nil {
				t.Fatal(err)
			}
			st := NewStreamerWith(d, opts)
			cut := len(msgs) / 2
			for _, m := range msgs[:cut] {
				if _, err := st.Push(m); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := st.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			st.Close()

			d2, err := NewDigester(kb)
			if err != nil {
				t.Fatal(err)
			}
			st2, err := RestoreStreamer(d2, snap, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			snap2, err := st2.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, snap2) {
				t.Fatalf("snapshot → restore → snapshot is not a fixed point: %d vs %d bytes",
					len(snap), len(snap2))
			}

			reg := obs.NewRegistry()
			st2.Instrument(reg)
			for _, m := range msgs[cut:] {
				if _, err := st2.Push(m); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := st2.Flush(); err != nil {
				t.Fatal(err)
			}
			s := reg.Snapshot()
			gets := s.Counter("stream.pool.pending.gets")
			puts := s.Counter("stream.pool.pending.puts")
			if gets == 0 {
				t.Fatal("restored run's pool handed out no records")
			}
			if gets != puts {
				t.Fatalf("pool leak across restore: gets %d != puts %d", gets, puts)
			}
			if live := s.Gauge("stream.pool.pending.live"); live != 0 {
				t.Fatalf("pool live %v after flush, want 0", live)
			}
		})
	}
}

// TestRestoreRejectsFutureVersion: a snapshot stamped with a later format
// version (a newer build's file) must be refused, not misread.
func TestRestoreRejectsFutureVersion(t *testing.T) {
	kb, ds := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStreamerWith(d, StreamerOptions{})
	defer st.Close()
	for _, m := range ds.Messages[:200] {
		if _, err := st.Push(m); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(snap, &env); err != nil {
		t.Fatal(err)
	}
	env["version"] = json.RawMessage("999")
	tampered, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreStreamer(d2, tampered, StreamerOptions{}); err == nil {
		t.Fatal("restore accepted a version-999 snapshot")
	}
}

// TestStreamerReorderCapBoundary: the reorder buffer must never hold more
// than ReorderCap messages — the historical off-by-one let it reach cap+1.
// Covers both overflow paths: releasing the oldest buffered message to make
// room, and feeding the new arrival directly when it precedes everything
// buffered.
func TestStreamerReorderCapBoundary(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 4
	s := NewStreamerWith(d, StreamerOptions{ReorderTolerance: time.Hour, ReorderCap: cap})
	defer s.Close()
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	mk := func(at time.Time) syslogmsg.Message {
		return syslogmsg.Message{Time: at, Router: "x", Code: "A-1-B", Detail: "d"}
	}
	// Fill to the cap, then keep pushing: the buffer must stay at the bound,
	// with each overflow releasing exactly one message.
	for i := 0; i < cap+3; i++ {
		if _, err := s.Push(mk(t0.Add(time.Duration(i) * time.Second))); err != nil {
			t.Fatal(err)
		}
		if len(s.buf) > cap {
			t.Fatalf("after push %d: buffer holds %d > cap %d", i, len(s.buf), cap)
		}
	}
	if len(s.buf) != cap {
		t.Fatalf("buffer holds %d, want exactly %d", len(s.buf), cap)
	}
	released := s.frontier
	// A full buffer plus an arrival older than everything buffered (but not
	// behind the frontier): the arrival itself releases, never occupying a
	// slot, and the buffer must not shrink or grow.
	mid := released.Add(500 * time.Millisecond)
	if mid.After(s.buf[0].m.Time) {
		t.Fatalf("test setup: %v should precede buffered head %v", mid, s.buf[0].m.Time)
	}
	if _, err := s.Push(mk(mid)); err != nil {
		t.Fatal(err)
	}
	if len(s.buf) != cap {
		t.Fatalf("direct-feed path changed buffer to %d, want %d", len(s.buf), cap)
	}
	if !s.frontier.Equal(mid) {
		t.Fatalf("frontier %v, want %v (direct feed released the arrival)", s.frontier, mid)
	}
}

// failEngine is a streamEngine whose Observe fails on the Nth call,
// emitting one synthetic event per successful call.
type failEngine struct {
	calls  int
	failAt int
}

var errBoom = errors.New("engine: boom")

func (f *failEngine) Observe(stream.Message) ([]event.Event, error) {
	f.calls++
	if f.calls >= f.failAt {
		return nil, errBoom
	}
	return []event.Event{{ID: f.calls}}, nil
}
func (f *failEngine) Drain() []event.Event               { return nil }
func (f *failEngine) Close()                             {}
func (f *failEngine) Watermark() time.Time               { return time.Time{} }
func (f *failEngine) Pending() int                       { return 0 }
func (f *failEngine) Stats() grouping.IncStats           { return grouping.IncStats{} }
func (f *failEngine) ActiveRules() map[rules.PairKey]int { return nil }
func (f *failEngine) SetMetrics(stream.Metrics)          {}
func (f *failEngine) TakeUpdates() []event.Update        { return nil }
func (f *failEngine) State() (stream.EngineState, []event.Event, []event.Update, error) {
	return stream.EngineState{}, nil, nil, errBoom
}

// TestStreamerFlushPartialOnError: when a feed fails mid-Flush, the events
// already closed come back alongside the error (nothing emitted is lost),
// the unfed remainder stays buffered, and stream.buffered tells the truth.
func TestStreamerFlushPartialOnError(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamerWith(d, StreamerOptions{ReorderTolerance: time.Hour})
	reg := obs.NewRegistry()
	s.Instrument(reg)
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		m := syslogmsg.Message{Time: t0.Add(time.Duration(i) * time.Second),
			Router: "x", Code: "A-1-B", Detail: "d"}
		if _, err := s.Push(m); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.buf) != 4 {
		t.Fatalf("setup: buffered %d, want 4", len(s.buf))
	}
	s.eng = &failEngine{failAt: 3}
	res, err := s.Flush()
	if !errors.Is(err, errBoom) {
		t.Fatalf("Flush error = %v, want errBoom", err)
	}
	if res == nil || len(res.Events) != 2 {
		t.Fatalf("Flush returned %v events alongside the error, want 2", res)
	}
	if res.Events[0].ID != 1 || res.Events[1].ID != 2 {
		t.Fatalf("partial events %v, want IDs 1,2 in order", res.Events)
	}
	if len(s.buf) != 1 {
		t.Fatalf("buffer holds %d after failed flush, want 1 (the unfed remainder)", len(s.buf))
	}
	if got := reg.Snapshot().Gauge("stream.buffered"); got != 1 {
		t.Fatalf("stream.buffered gauge = %v, want 1", got)
	}
}

// TestStreamerOverflowDropCounting: a drop caused by the cap forcing the
// frontier forward early (the arrival is still within tolerance) counts as
// stream.dropped.overflow; an arrival beyond the tolerance counts as
// stream.dropped.late. The two series separate "buffer undersized" from
// "sender misbehaved".
func TestStreamerOverflowDropCounting(t *testing.T) {
	kb, _ := learnSmall(t, gen.DatasetA)
	d, err := NewDigester(kb)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamerWith(d, StreamerOptions{ReorderTolerance: 10 * time.Second, ReorderCap: 2})
	defer s.Close()
	reg := obs.NewRegistry()
	s.Instrument(reg)
	t0 := time.Date(2010, 1, 1, 12, 0, 0, 0, time.UTC)
	mk := func(at time.Time) syslogmsg.Message {
		return syslogmsg.Message{Time: at, Router: "x", Code: "A-1-B", Detail: "d"}
	}
	// Three in-tolerance arrivals against a cap of 2: the third forces t0
	// out early, moving the frontier to t0 while the tolerance window still
	// reaches back to maxSeen-10s.
	for i := 0; i < 3; i++ {
		if _, err := s.Push(mk(t0.Add(time.Duration(i) * time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if !s.frontier.Equal(t0) {
		t.Fatalf("setup: frontier %v, want %v", s.frontier, t0)
	}
	// Behind the frontier but within tolerance of the newest arrival: only
	// the undersized buffer lost its slot — an overflow drop.
	if res, err := s.Push(mk(t0.Add(-time.Second))); err != nil || res != nil {
		t.Fatalf("overflow drop: res=%v err=%v, want silent drop", res, err)
	}
	// Behind the frontier and beyond the tolerance: a genuinely late sender.
	if res, err := s.Push(mk(t0.Add(-9 * time.Second))); err != nil || res != nil {
		t.Fatalf("late drop: res=%v err=%v, want silent drop", res, err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("stream.dropped.overflow"); got != 1 {
		t.Fatalf("stream.dropped.overflow = %d, want 1", got)
	}
	if got := snap.Counter("stream.dropped.late"); got != 1 {
		t.Fatalf("stream.dropped.late = %d, want 1", got)
	}
	if got := snap.Counter("stream.pushed"); got != 5 {
		t.Fatalf("stream.pushed = %d, want 5", got)
	}
}
