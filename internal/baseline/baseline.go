// Package baseline implements the comparators this reproduction measures
// SyslogDigest against:
//
//   - SeverityFilter: what commercial tools do by default — keep only
//     messages at or above a vendor severity. The paper argues (§2) that
//     vendor severities misrank events; the filter's compression comes at
//     the cost of dropping whole classes of conditions.
//   - FixedWindowGrouper: the naive alternative to learned temporal
//     grouping — bucket each (template, router) stream into fixed time
//     windows. Used by the ablation benches to show what the EWMA model
//     buys.
//
// The §5.2.1 template ground truth lives with the generator (gen.
// GroundTruthTemplates), since the simulator's emission formats play the
// role of vendor documentation.
package baseline

import (
	"time"

	"syslogdigest/internal/syslogmsg"
)

// SeverityFilter keeps messages whose vendor severity is at or below (more
// important than) MaxSeverity. Unknown-severity messages are dropped, which
// is exactly the failure mode the paper warns about.
type SeverityFilter struct {
	MaxSeverity int
}

// Apply returns the retained messages.
func (f SeverityFilter) Apply(msgs []syslogmsg.Message) []syslogmsg.Message {
	var out []syslogmsg.Message
	for i := range msgs {
		ci := syslogmsg.ParseCode(msgs[i].Code)
		if ci.Severity >= 0 && ci.Severity <= f.MaxSeverity {
			out = append(out, msgs[i])
		}
	}
	return out
}

// Retention is the fraction of messages kept.
func (f SeverityFilter) Retention(msgs []syslogmsg.Message) float64 {
	if len(msgs) == 0 {
		return 0
	}
	return float64(len(f.Apply(msgs))) / float64(len(msgs))
}

// FixedWindowGrouper groups each (code, router) stream into fixed windows:
// a message within Window of the group's start joins it, otherwise a new
// group opens. No learning, no adaptation.
type FixedWindowGrouper struct {
	Window time.Duration
}

// Groups returns the number of groups the batch collapses to.
func (g FixedWindowGrouper) Groups(msgs []syslogmsg.Message) int {
	if g.Window <= 0 {
		return len(msgs)
	}
	type key struct{ router, code string }
	starts := make(map[key]time.Time)
	groups := 0
	for i := range msgs {
		k := key{msgs[i].Router, msgs[i].Code}
		start, ok := starts[k]
		if !ok || msgs[i].Time.Sub(start) > g.Window {
			groups++
			starts[k] = msgs[i].Time
		}
	}
	return groups
}

// CompressionRatio is groups/messages (1 for empty input).
func (g FixedWindowGrouper) CompressionRatio(msgs []syslogmsg.Message) float64 {
	if len(msgs) == 0 {
		return 1
	}
	return float64(g.Groups(msgs)) / float64(len(msgs))
}
