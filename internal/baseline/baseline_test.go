package baseline

import (
	"testing"
	"time"

	"syslogdigest/internal/syslogmsg"
)

var t0 = time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)

func msg(secs int, router, code string) syslogmsg.Message {
	return syslogmsg.Message{
		Time: t0.Add(time.Duration(secs) * time.Second), Router: router, Code: code, Detail: "d",
	}
}

func TestSeverityFilter(t *testing.T) {
	msgs := []syslogmsg.Message{
		msg(0, "r1", "SYS-1-CPURISINGTHRESHOLD"), // sev 1
		msg(1, "r1", "LINK-3-UPDOWN"),            // sev 3
		msg(2, "r1", "LINEPROTO-5-UPDOWN"),       // sev 5
		msg(3, "r1", "TCP-6-BADAUTH"),            // sev 6
		msg(4, "r1", "NOSEVERITYCODE"),           // unknown, dropped
	}
	f := SeverityFilter{MaxSeverity: 3}
	kept := f.Apply(msgs)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0].Code != "SYS-1-CPURISINGTHRESHOLD" || kept[1].Code != "LINK-3-UPDOWN" {
		t.Fatalf("kept wrong messages: %v", kept)
	}
	if got := f.Retention(msgs); got != 0.4 {
		t.Fatalf("retention = %v", got)
	}
	if got := f.Retention(nil); got != 0 {
		t.Fatalf("empty retention = %v", got)
	}
	// The paper's point: severity filtering keeps the (operationally less
	// interesting) CPU message and drops the line-protocol fallout.
	f = SeverityFilter{MaxSeverity: 1}
	kept = f.Apply(msgs)
	if len(kept) != 1 || kept[0].Code != "SYS-1-CPURISINGTHRESHOLD" {
		t.Fatalf("severity-1 filter kept %v", kept)
	}
}

func TestFixedWindowGrouper(t *testing.T) {
	msgs := []syslogmsg.Message{
		msg(0, "r1", "A-1-X"),
		msg(30, "r1", "A-1-X"), // same window (60s)
		msg(61, "r1", "A-1-X"), // new window
		msg(62, "r2", "A-1-X"), // different router: own window
		msg(63, "r1", "B-1-Y"), // different code: own window
	}
	g := FixedWindowGrouper{Window: time.Minute}
	if got := g.Groups(msgs); got != 4 {
		t.Fatalf("groups = %d, want 4", got)
	}
	if got := g.CompressionRatio(msgs); got != 0.8 {
		t.Fatalf("ratio = %v", got)
	}
	if got := g.CompressionRatio(nil); got != 1 {
		t.Fatalf("empty ratio = %v", got)
	}
	// Degenerate window: every message its own group.
	if got := (FixedWindowGrouper{}).Groups(msgs); got != len(msgs) {
		t.Fatalf("zero-window groups = %d", got)
	}
}

func TestFixedWindowWiderWindowCompressesMore(t *testing.T) {
	var msgs []syslogmsg.Message
	for i := 0; i < 100; i++ {
		msgs = append(msgs, msg(i*10, "r1", "A-1-X"))
	}
	narrow := FixedWindowGrouper{Window: 30 * time.Second}.Groups(msgs)
	wide := FixedWindowGrouper{Window: 10 * time.Minute}.Groups(msgs)
	if wide >= narrow {
		t.Fatalf("wide window %d >= narrow %d", wide, narrow)
	}
}
