// Package textutil holds the low-level text machinery shared by the template
// learner and the location parser: whitespace tokenization, classification of
// tokens that look like network locations or other high-variability values,
// and masking of such tokens.
//
// The paper's template learner excludes "words denoting specific locations"
// from signatures. Rather than hard-coding per-vendor formats, this package
// recognizes the small set of syntactic shapes such values take in router
// syslogs (IPv4 addresses, slot/port paths like 1/0/2, interface names like
// Serial1/0.10/10:0, plain numbers, percentages) and replaces them with a
// single mask rune.
package textutil

import (
	"strings"
	"unicode/utf8"
)

// Mask is the token that replaces a high-variability word during template
// learning. It is a single asterisk, as in the paper's Table 4.
const Mask = "*"

// Tokenize splits a message detail into whitespace-separated words. It never
// returns empty tokens; runs of whitespace collapse. Punctuation is kept
// attached to words (router syslogs use trailing commas meaningfully, e.g.
// "Serial1/0.10/20:0," — stripping is the caller's choice via TrimWord).
func Tokenize(s string) []string {
	return TokenizeInto(s, nil)
}

// TokenizeInto is Tokenize appending into buf[:0], letting hot paths reuse
// one token buffer across messages instead of allocating per call. The
// returned slice aliases buf's array when capacity suffices; tokens are
// substrings of s. Splitting is identical to Tokenize/strings.Fields.
func TokenizeInto(s string, buf []string) []string {
	out := buf[:0]
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			// Rare non-ASCII detail: defer to strings.Fields for exact
			// unicode whitespace semantics.
			return append(out, strings.Fields(s)...)
		}
	}
	// Pre-count fields so a fresh buffer is sized exactly once (the
	// strings.Fields approach) instead of doubling through appends.
	n := 0
	inField := false
	for i := 0; i < len(s); i++ {
		if asciiSpace(s[i]) {
			inField = false
		} else if !inField {
			inField = true
			n++
		}
	}
	if cap(out) < n {
		out = make([]string, 0, n)
	}
	start := -1
	for i := 0; i < len(s); i++ {
		if asciiSpace(s[i]) {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// asciiSpace mirrors strings.Fields' ASCII fast-path space set.
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// TrimWord removes leading and trailing punctuation that routers commonly
// attach to embedded values: commas, periods, colons, parens, brackets and
// quotes. Interior punctuation (as in interface names) is preserved. It
// returns the trimmed word and the trimmed prefix/suffix so callers can
// reassemble the original token.
func TrimWord(w string) (core, prefix, suffix string) {
	const cutset = ",.:;()[]{}\"'"
	start := 0
	for start < len(w) && strings.ContainsRune(cutset, rune(w[start])) {
		start++
	}
	end := len(w)
	for end > start && strings.ContainsRune(cutset, rune(w[end-1])) {
		end--
	}
	return w[start:end], w[:start], w[end:]
}

// TokenClass describes the syntactic shape of a word, used both for masking
// during template learning and for candidate extraction during location
// parsing.
type TokenClass int

const (
	// ClassWord is a plain word with no location-like or numeric shape.
	ClassWord TokenClass = iota
	// ClassIPv4 is a dotted-quad IPv4 address, optionally with a /prefix or
	// :port suffix.
	ClassIPv4
	// ClassPortPath is a slot/port path such as 1/0/2 or 2/0.
	ClassPortPath
	// ClassInterface is a named interface such as Serial1/0.10/10:0,
	// GigabitEthernet0/1 or Multilink3.
	ClassInterface
	// ClassNumber is a bare integer or decimal, optionally with a % or unit
	// suffix commonly seen in measurements (e.g. 95%, 42C).
	ClassNumber
	// ClassVRF is a VRF-style identifier NNN:NNNN.
	ClassVRF
	// ClassHex is a hexadecimal identifier such as 0x1A2B.
	ClassHex
)

// interfacePrefixes are the interface-name stems recognized by Classify.
// They cover the two simulated vendors; matching is case-insensitive on the
// stem and requires a digit to follow.
var interfacePrefixes = []string{
	"Serial", "GigabitEthernet", "TenGigE", "FastEthernet", "Ethernet",
	"POS", "Multilink", "Bundle-Ether", "Tunnel", "Loopback", "Vlan",
	"Port-channel", "SONET", "ATM",
}

// interfaceLeadByte marks bytes (either case) that can start an interface
// stem, so classification rejects most words without running the
// case-insensitive prefix comparisons below.
var interfaceLeadByte [256]bool

func init() {
	for _, pre := range interfacePrefixes {
		interfaceLeadByte[pre[0]] = true
		interfaceLeadByte[pre[0]|0x20] = true
	}
}

// Classify reports the TokenClass of a single word (after TrimWord). It is
// deliberately conservative: when in doubt it returns ClassWord, because a
// falsely masked constant word only makes a template slightly less specific,
// whereas an unmasked variable word splits one template into many.
func Classify(w string) TokenClass {
	if w == "" {
		return ClassWord
	}
	if isIPv4Like(w) {
		return ClassIPv4
	}
	if isVRF(w) {
		return ClassVRF
	}
	if isHex(w) {
		return ClassHex
	}
	if isInterfaceName(w) {
		return ClassInterface
	}
	if isPortPath(w) {
		return ClassPortPath
	}
	if isNumberLike(w) {
		return ClassNumber
	}
	return ClassWord
}

// MaskWord returns the word with location-denoting values (IP addresses,
// interface names, port paths, VRF ids, hex ids) replaced by Mask,
// preserving trimmed punctuation. Plain words — including bare numbers —
// pass through unchanged: constants like "Process 1" or "list 199" must
// survive into templates, while genuinely variable numbers are eliminated
// by the template learner's frequency analysis and pruning (the paper's
// masking likewise only covers "words denoting specific locations").
func MaskWord(w string) string {
	core, pre, suf := TrimWord(w)
	switch Classify(core) {
	case ClassIPv4, ClassInterface, ClassPortPath, ClassVRF, ClassHex:
		return pre + Mask + suf
	default:
		return w
	}
}

// MaskTokens masks every token in place-shape (returns a fresh slice).
func MaskTokens(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = MaskWord(t)
	}
	return out
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// isIPv4Like accepts a.b.c.d with each octet 0-999 (syslogs occasionally log
// malformed addresses; we still want them masked), optionally followed by
// "/len" or ":port". The octets are validated in place — classification runs
// per token on the augment hot path, so it must not allocate.
func isIPv4Like(s string) bool {
	// Strip one :port or /len suffix.
	if i := strings.IndexByte(s, ':'); i >= 0 {
		if !isDigits(s[i+1:]) {
			return false
		}
		s = s[:i]
	} else if i := strings.IndexByte(s, '/'); i >= 0 {
		if !isDigits(s[i+1:]) {
			return false
		}
		s = s[:i]
	}
	octets := 0
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			n := i - start
			if n == 0 || n > 3 || !isDigits(s[start:i]) {
				return false
			}
			octets++
			start = i + 1
		}
	}
	return octets == 4
}

// isVRF accepts NNN:NNNN style route-distinguisher identifiers.
func isVRF(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return false
	}
	return isDigits(s[:i]) && isDigits(s[i+1:])
}

func isHex(s string) bool {
	if !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "0X") {
		return false
	}
	rest := s[2:]
	if rest == "" {
		return false
	}
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		ok := c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
		if !ok {
			return false
		}
	}
	return true
}

// isPortPath accepts slot/port paths: two or more slash-separated numeric
// segments, where segments may carry a ".sub" or ":chan" tail (2/0.10/2:0).
// Segments are validated in place (no Split allocation; hot path).
func isPortPath(s string) bool {
	segs := 0
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '/' {
			if !isPathSegment(s[start:i]) {
				return false
			}
			segs++
			start = i + 1
		}
	}
	return segs >= 2
}

// isPathSegment accepts digit runs joined by '.' (sub-interface) and ':'
// (channel) in any order: "12", "0.10", "10:0", "0.10:2", "1:0.100".
func isPathSegment(p string) bool {
	if p == "" {
		return false
	}
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '.' || p[i] == ':' {
			if !isDigits(p[start:i]) {
				return false
			}
			start = i + 1
		}
	}
	return true
}

// isInterfaceName accepts a known interface stem followed by a digit-leading
// path, e.g. Serial1/0.10/10:0, GigabitEthernet0/1, Multilink7.
func isInterfaceName(s string) bool {
	if s == "" || !interfaceLeadByte[s[0]] {
		return false
	}
	for _, pre := range interfacePrefixes {
		if len(s) > len(pre) && strings.EqualFold(s[:len(pre)], pre) {
			rest := s[len(pre):]
			if rest[0] >= '0' && rest[0] <= '9' {
				// Remainder must be a path segment sequence.
				if isPortPath(rest) || isPathSegment(rest) {
					return true
				}
			}
		}
	}
	return false
}

// isNumberLike accepts integers, decimals, percentages and simple
// number+unit forms (95%, 3.2s, 42C, 71%,). Requires a leading digit.
func isNumberLike(s string) bool {
	if s == "" || s[0] < '0' || s[0] > '9' {
		return false
	}
	seenDot := false
	i := 0
	for i < len(s) {
		c := s[i]
		if c >= '0' && c <= '9' {
			i++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			i++
			continue
		}
		break
	}
	// Whatever remains must be a short unit suffix (letters or %). Two
	// characters covers the units routers emit (%, C, s, ms, dB); longer
	// tails (e.g. "0xZZ"-style identifiers) are not measurements.
	rest := s[i:]
	if len(rest) > 2 {
		return false
	}
	for j := 0; j < len(rest); j++ {
		c := rest[j]
		ok := c == '%' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		if !ok {
			return false
		}
	}
	return true
}

// InterfaceStem returns the interface-name stem (e.g. "Serial") and the
// trailing path (e.g. "1/0.10/10:0") when w is an interface name, with
// ok=false otherwise.
func InterfaceStem(w string) (stem, path string, ok bool) {
	if w == "" || !interfaceLeadByte[w[0]] {
		return "", "", false
	}
	for _, pre := range interfacePrefixes {
		if len(w) > len(pre) && strings.EqualFold(w[:len(pre)], pre) {
			rest := w[len(pre):]
			if rest[0] >= '0' && rest[0] <= '9' && (isPortPath(rest) || isPathSegment(rest)) {
				return pre, rest, true
			}
		}
	}
	return "", "", false
}
