package textutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("  Line protocol  on Interface Serial1/0,  changed ")
	want := []string{"Line", "protocol", "on", "Interface", "Serial1/0,", "changed"}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if toks := Tokenize("   "); len(toks) != 0 {
		t.Fatalf("whitespace-only input produced tokens: %v", toks)
	}
}

func TestTrimWord(t *testing.T) {
	cases := []struct {
		in, core, pre, suf string
	}{
		{"Serial1/0.10/20:0,", "Serial1/0.10/20:0", "", ","},
		{"(Total/Intr):", "Total/Intr", "(", "):"},
		{"plain", "plain", "", ""},
		{"...", "", "...", ""},
		{"", "", "", ""},
		{"\"quoted\"", "quoted", "\"", "\""},
	}
	for _, c := range cases {
		core, pre, suf := TrimWord(c.in)
		if core != c.core || pre != c.pre || suf != c.suf {
			t.Errorf("TrimWord(%q) = (%q, %q, %q), want (%q, %q, %q)",
				c.in, core, pre, suf, c.core, c.pre, c.suf)
		}
	}
}

// Property: TrimWord pieces always reassemble to the input.
func TestTrimWordReassembles(t *testing.T) {
	f := func(s string) bool {
		core, pre, suf := TrimWord(s)
		return pre+core+suf == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   string
		want TokenClass
	}{
		{"Interface", ClassWord},
		{"down", ClassWord},
		{"192.168.32.42", ClassIPv4},
		{"10.1.2.1/30", ClassIPv4},
		{"10.1.2.1:179", ClassIPv4},
		{"1.2.3", ClassWord},     // three octets is not an IP
		{"1.2.3.4.5", ClassWord}, // five octets is not an IP
		{"1000:1001", ClassVRF},
		{"0x1A2B", ClassHex},
		{"0xZZ", ClassWord},
		{"Serial1/0.10/10:0", ClassInterface},
		{"GigabitEthernet0/1", ClassInterface},
		{"Multilink7", ClassInterface},
		{"Loopback0", ClassInterface},
		{"Serial", ClassWord}, // stem without digits
		{"1/1/1", ClassPortPath},
		{"2/0", ClassPortPath},
		{"2/0.10/2:0", ClassPortPath},
		{"a/b", ClassWord},
		{"95%", ClassNumber},
		{"95%/1%", ClassWord}, // compound measurement, not a simple number
		{"3.2s", ClassNumber},
		{"42", ClassNumber},
		{"42C", ClassNumber},
		{"", ClassWord},
		{"state", ClassWord},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMaskWordPreservesPunctuation(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Serial1/0.10/20:0,", "*,"},
		{"192.168.32.42", "*"},
		{"down", "down"},
		{"state,", "state,"},
		// Numbers and measurements are NOT masked: frequency analysis
		// decides whether they are constants or variables.
		{"(95%)", "(95%)"},
		{"199", "199"},
		{"1,", "1,"},
		{"1000:1001", "*"},
		{"0x1A2B", "*"},
	}
	for _, c := range cases {
		if got := MaskWord(c.in); got != c.want {
			t.Errorf("MaskWord(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMaskTokensTable4(t *testing.T) {
	// The paper's Table 3 -> Table 4 example: masking neighbor IP and VRF id
	// leaves five distinct structures; check one of them.
	in := Tokenize("neighbor 192.168.32.42 vpn vrf 1000:1001 Up")
	got := strings.Join(MaskTokens(in), " ")
	want := "neighbor * vpn vrf * Up"
	if got != want {
		t.Fatalf("masked = %q, want %q", got, want)
	}
}

func TestMaskTokensFreshSlice(t *testing.T) {
	in := []string{"192.168.0.1"}
	out := MaskTokens(in)
	if in[0] != "192.168.0.1" {
		t.Fatal("MaskTokens mutated its input")
	}
	if out[0] != "*" {
		t.Fatalf("out[0] = %q, want *", out[0])
	}
}

func TestInterfaceStem(t *testing.T) {
	stem, path, ok := InterfaceStem("Serial1/0.10/10:0")
	if !ok || stem != "Serial" || path != "1/0.10/10:0" {
		t.Fatalf("InterfaceStem = (%q, %q, %v)", stem, path, ok)
	}
	if _, _, ok := InterfaceStem("NotAnInterface5"); ok {
		t.Fatal("unexpected interface match")
	}
	if _, _, ok := InterfaceStem("Serial"); ok {
		t.Fatal("bare stem should not match")
	}
	stem, path, ok = InterfaceStem("gigabitethernet0/1")
	if !ok || stem != "GigabitEthernet" || path != "0/1" {
		t.Fatalf("case-insensitive stem failed: (%q, %q, %v)", stem, path, ok)
	}
}

// Property: masking is idempotent — masking a masked token changes nothing.
func TestMaskIdempotent(t *testing.T) {
	words := []string{
		"Interface", "Serial1/0.10/10:0,", "192.168.32.42", "1000:1001",
		"95%", "state", "to", "down", "0x1A2B", "1/1/1",
	}
	once := MaskTokens(words)
	twice := MaskTokens(once)
	for i := range once {
		if once[i] != twice[i] {
			t.Fatalf("masking not idempotent at %q: %q vs %q", words[i], once[i], twice[i])
		}
	}
}
