package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
)

// ServerMetrics are a shard server's optional observability handles
// (nil-safe).
type ServerMetrics struct {
	Connections    *obs.Counter // sessions accepted
	Batches        *obs.Counter // batch frames processed
	Messages       *obs.Counter // messages stepped
	BytesIn        *obs.Counter
	BytesOut       *obs.Counter
	StateSnapshots *obs.Counter // state requests served
	Restores       *obs.Counter // restore frames applied
}

// ServerConfig configures a shard server. Dict is required; Rules may be
// nil (temporal-only configs).
type ServerConfig struct {
	Dict    *locdict.Dictionary
	Rules   *rules.RuleBase
	Metrics ServerMetrics
	// Logf receives session lifecycle and error lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server hosts RouterLocal shard sessions. Each accepted connection is one
// independent session owning one RouterLocal: the dispatcher opens one
// connection per shard, so pointing several `-shards` entries at the same
// server hosts that many locals in one process. Session state lives and
// dies with its connection — a dropped connection IS a shard restart, and
// the client re-seeds the replacement through the Restore/replay path.
type Server struct {
	cfg ServerConfig
	sig string
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve listens on addr (host:port, port 0 for ephemeral) and accepts
// shard sessions until Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Dict == nil {
		return nil, errors.New("cluster: server needs a location dictionary")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &Server{
		cfg:   cfg,
		sig:   Fingerprint(cfg.Dict, cfg.Rules),
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr is the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.cfg.Metrics.Connections.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.session(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// KillSessions drops every live session without stopping the listener —
// the shard-restart injection the differential tests use. Each dropped
// session loses its RouterLocal, exactly like a crashed shard process.
func (s *Server) KillSessions() {
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
}

// Close stops the listener and drops every session.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// countingWriter / countingReader feed the byte counters.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(uint64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

// session runs one shard connection to completion. Protocol errors are
// fatal for the session (the client reconnects and re-seeds); shard-side
// Step errors are reported in-band and the session stays up.
func (s *Server) session(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(countingReader{conn, s.cfg.Metrics.BytesIn}, 64<<10)
	bw := bufio.NewWriterSize(countingWriter{conn, s.cfg.Metrics.BytesOut}, 64<<10)

	fail := func(stage string, err error) {
		if err != io.EOF && !errors.Is(err, net.ErrClosed) {
			s.logf("cluster: session %s: %s: %v", conn.RemoteAddr(), stage, err)
		}
	}

	// Handshake.
	typ, payload, buf, err := readFrame(br, nil)
	if err != nil {
		fail("hello", err)
		return
	}
	var hello Hello
	if typ != FrameHello {
		fail("hello", fmt.Errorf("unexpected frame type %d", typ))
		return
	}
	if err := unmarshalJSONFrame(payload, &hello); err != nil {
		fail("hello", err)
		return
	}
	reject := func(msg string) {
		raw, _ := marshalJSONFrame(Welcome{Error: msg})
		writeFrame(bw, FrameWelcome, raw)
		bw.Flush()
		s.logf("cluster: session %s rejected: %s", conn.RemoteAddr(), msg)
	}
	if hello.KBSig != s.sig {
		reject(fmt.Sprintf("knowledge mismatch: client %q, server %q", hello.KBSig, s.sig))
		return
	}
	if hello.Shard < 0 || hello.Workers < 1 || hello.Shard >= hello.Workers {
		reject(fmt.Sprintf("bad shard identity %d/%d", hello.Shard, hello.Workers))
		return
	}
	shardable, err := grouping.NewShardable(s.cfg.Dict, s.cfg.Rules, grouping.IncrementalConfig{
		Config:     hello.Config.GroupingConfig(),
		MaxStreams: hello.MaxStreams,
	})
	if err != nil {
		reject(fmt.Sprintf("grouping config: %v", err))
		return
	}
	raw, err := marshalJSONFrame(Welcome{OK: true})
	if err != nil {
		fail("welcome", err)
		return
	}
	if err := writeFrame(bw, FrameWelcome, raw); err != nil {
		fail("welcome", err)
		return
	}
	if err := bw.Flush(); err != nil {
		fail("welcome", err)
		return
	}

	local := shardable.NewLocal(hello.MaxStreams)
	var (
		dd      decDict
		js      grouping.Joins
		items   []DecisionItem
		arena   []uint64
		outBuf  []byte
		frame   []byte
		stepErr string
	)

	for {
		typ, payload, buf, err = readFrame(br, buf)
		if err != nil {
			fail("read", err)
			return
		}
		switch typ {
		case FrameRestore:
			var res Restore
			if err := unmarshalJSONFrame(payload, &res); err != nil {
				fail("restore", err)
				return
			}
			rl, err := shardable.RestoreLocal(res.Part, hello.MaxStreams)
			if err != nil {
				fail("restore", err)
				return
			}
			local.DrainWindows() // release any pooled references the old local held
			local = rl
			dd.seed(res.Dict)
			s.cfg.Metrics.Restores.Inc()

		case FrameBatch:
			h, bd, err := decodeBatch(payload, &dd)
			if err != nil {
				fail("batch", err)
				return
			}
			items = items[:0]
			arena = arena[:0]
			stepErr = ""
			var m grouping.Message
			for {
				ok, err := bd.next(&m)
				if err != nil {
					fail("batch", err)
					return
				}
				if !ok {
					break
				}
				// GC-managed records, not the recycling pool: with no merger
				// on this side holding group references, a pooled predecessor
				// could hit zero references (and be cleared for reuse) during
				// a later Step in the same batch, before its Seq is read off
				// the join decision below. GC-managed records just decrement.
				p := grouping.NewPending(m)
				if err := local.Step(p, &js); err != nil {
					p.Release()
					stepErr = err.Error()
					break
				}
				it := DecisionItem{RS: int32(len(arena))}
				if js.Temporal != nil {
					it.Temporal = uint64(m.Seq - js.Temporal.Msg().Seq)
				}
				for _, mi := range js.Rules {
					arena = append(arena, uint64(m.Seq-mi.Msg().Seq))
				}
				it.RE = int32(len(arena))
				items = append(items, it)
				p.Release()
			}
			if h.Drain && stepErr == "" {
				local.DrainWindows()
			}
			s.cfg.Metrics.Batches.Inc()
			s.cfg.Metrics.Messages.Add(uint64(len(items)))
			outBuf = appendDecisions(outBuf[:0], h.Seq, items, arena, local.Stats(), stepErr)
			frame = appendFrame(frame[:0], FrameDecisions, outBuf)
			if _, err := bw.Write(frame); err != nil {
				fail("write", err)
				return
			}
			if err := bw.Flush(); err != nil {
				fail("write", err)
				return
			}

		case FrameStateReq:
			token, err := decodeStateReq(payload)
			if err != nil {
				fail("statereq", err)
				return
			}
			part := grouping.CaptureLocal(local)
			outBuf, err = appendState(outBuf[:0], token, &part)
			if err != nil {
				fail("state", err)
				return
			}
			frame = appendFrame(frame[:0], FrameState, outBuf)
			if _, err := bw.Write(frame); err != nil {
				fail("write", err)
				return
			}
			if err := bw.Flush(); err != nil {
				fail("write", err)
				return
			}

		default:
			fail("read", fmt.Errorf("unexpected frame type %d", typ))
			return
		}
	}
}
