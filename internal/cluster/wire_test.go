package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
)

func frameBytes(typ FrameType, payload []byte) []byte {
	return appendFrame(nil, typ, payload)
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := writeFrame(&buf, FrameBatch, p); err != nil {
			t.Fatal(err)
		}
		typ, got, _, err := readFrame(&buf, nil)
		if err != nil {
			t.Fatalf("payload %d bytes: %v", len(p), err)
		}
		if typ != FrameBatch || !bytes.Equal(got, p) {
			t.Fatalf("round trip: type %d, %d bytes", typ, len(got))
		}
	}
}

// TestFrameCorruption is the satellite contract: every corruption class is
// rejected with a classified error, never a panic, never a guess.
func TestFrameCorruption(t *testing.T) {
	good := frameBytes(FrameDecisions, []byte("payload-bytes"))
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic},
		{"future version", func(b []byte) []byte { b[4] = Version + 1; return b }, ErrVersion},
		{"oversize length", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[6:10], MaxFrameBytes+1)
			return b
		}, ErrFrameSize},
		{"bad crc", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrCRC},
		{"truncated header", func(b []byte) []byte { return b[:headerLen-3] }, io.ErrUnexpectedEOF},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-4] }, io.ErrUnexpectedEOF},
		{"empty", func(b []byte) []byte { return nil }, io.EOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			_, _, _, err := readFrame(bytes.NewReader(b), nil)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, FrameBatch, []byte("first-payload"))
	writeFrame(&buf, FrameBatch, []byte("2nd"))
	_, p1, scratch, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	backing := &p1[0]
	_, p2, _, err := readFrame(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if string(p2) != "2nd" {
		t.Fatalf("second payload %q", p2)
	}
	if &p2[0] != backing {
		t.Fatal("small payload did not reuse the buffer")
	}
}

func wireMessages() []grouping.Message {
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	l1 := locdict.IntfLoc("r1", "Serial1/0.10/10:0")
	l2 := locdict.IntfLoc("r2", "Serial1/0.20/20:0")
	return []grouping.Message{
		{Seq: 3, Time: base, Router: "r1", Template: 1, Loc: l1,
			AllLocs: []locdict.Location{l1, locdict.RouterLoc("r1")}, Peers: []string{"r2"}, Raw: 7},
		{Seq: 4, Time: base.Add(time.Second), Router: "r2", Template: -1, Loc: l2, Raw: 0},
		{Seq: 9, Time: base.Add(-3 * time.Second), Router: "r1", Template: 2, Loc: l1,
			Peers: []string{"r2", "r1"}},
	}
}

func sameMessage(a, b grouping.Message) bool {
	if a.Seq != b.Seq || !a.Time.Equal(b.Time) || a.Router != b.Router ||
		a.Template != b.Template || a.Loc != b.Loc || a.Raw != b.Raw {
		return false
	}
	if len(a.AllLocs) != len(b.AllLocs) || len(a.Peers) != len(b.Peers) {
		return false
	}
	for i := range a.AllLocs {
		if a.AllLocs[i] != b.AllLocs[i] {
			return false
		}
	}
	for i := range a.Peers {
		if a.Peers[i] != b.Peers[i] {
			return false
		}
	}
	return true
}

// TestBatchRoundTrip pins full message fidelity through the dictionary
// encoding — twice on one connection, so the second batch exercises the
// all-references path.
func TestBatchRoundTrip(t *testing.T) {
	msgs := wireMessages()
	ps := make([]*grouping.Pending, len(msgs))
	for i, m := range msgs {
		ps[i] = grouping.NewPending(m)
	}
	ed := newEncDict()
	var dd decDict
	for round := 1; round <= 2; round++ {
		payload := appendBatch(nil, ed, uint64(round), 1234567890, round == 2, ps)
		h, bd, err := decodeBatch(payload, &dd)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if h.Seq != uint64(round) || h.PunctNs != 1234567890 || h.Drain != (round == 2) || h.Count != len(msgs) {
			t.Fatalf("round %d: header %+v", round, h)
		}
		var m grouping.Message
		for i := 0; ; i++ {
			ok, err := bd.next(&m)
			if err != nil {
				t.Fatalf("round %d msg %d: %v", round, i, err)
			}
			if !ok {
				if i != len(msgs) {
					t.Fatalf("round %d: decoded %d of %d", round, i, len(msgs))
				}
				break
			}
			if !sameMessage(m, msgs[i]) {
				t.Fatalf("round %d msg %d:\n got %+v\nwant %+v", round, i, m, msgs[i])
			}
		}
	}
}

// TestBatchDictDesync: a fresh decoder seeing a reference-only batch (as
// after a lost replay) must fail with ErrDictDesync, not fabricate strings.
func TestBatchDictDesync(t *testing.T) {
	msgs := wireMessages()
	ps := make([]*grouping.Pending, len(msgs))
	for i, m := range msgs {
		ps[i] = grouping.NewPending(m)
	}
	ed := newEncDict()
	appendBatch(nil, ed, 1, 0, false, ps) // defines the symbols
	second := appendBatch(nil, ed, 2, 0, false, ps)

	var fresh decDict
	_, bd, err := decodeBatch(second, &fresh)
	if err == nil {
		var m grouping.Message
		for {
			ok, nerr := bd.next(&m)
			if nerr != nil {
				err = nerr
				break
			}
			if !ok {
				break
			}
		}
	}
	if !errors.Is(err, ErrDictDesync) {
		t.Fatalf("err = %v, want ErrDictDesync", err)
	}

	// A correctly seeded decoder accepts the same bytes.
	var seeded decDict
	seeded.seed(ed.prefix(ed.len()))
	_, bd, err = decodeBatch(second, &seeded)
	if err != nil {
		t.Fatal(err)
	}
	var m grouping.Message
	for {
		ok, err := bd.next(&m)
		if err != nil {
			t.Fatalf("seeded decode: %v", err)
		}
		if !ok {
			break
		}
	}
}

func TestDecisionsRoundTrip(t *testing.T) {
	items := []DecisionItem{
		{Temporal: 0, RS: 0, RE: 0},
		{Temporal: 5, RS: 0, RE: 2},
		{Temporal: 1, RS: 2, RE: 3},
	}
	arena := []uint64{4, 9, 1}
	stats := grouping.LocalStats{Streams: 12, Evictions: 3, RuleCandidates: 44, RulePairs: 7}
	payload := appendDecisions(nil, 17, items, arena, stats, "boom")
	var db DecisionBatch
	if err := decodeDecisions(payload, &db); err != nil {
		t.Fatal(err)
	}
	if db.Seq != 17 || db.Stats != stats || db.ShardErr != "boom" {
		t.Fatalf("decoded %+v", db)
	}
	if len(db.Items) != len(items) {
		t.Fatalf("items %d", len(db.Items))
	}
	for i, it := range db.Items {
		if it != items[i] {
			t.Fatalf("item %d: %+v != %+v", i, it, items[i])
		}
	}
	for i, d := range db.Rules {
		if d != arena[i] {
			t.Fatalf("arena %d: %d != %d", i, d, arena[i])
		}
	}
	// Truncation anywhere inside must error, never panic.
	for cut := 0; cut < len(payload); cut++ {
		var trunc DecisionBatch
		if err := decodeDecisions(payload[:cut], &trunc); err == nil {
			t.Fatalf("cut %d: no error", cut)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	req := appendStateReq(nil, 99)
	token, err := decodeStateReq(req)
	if err != nil || token != 99 {
		t.Fatalf("state req: token %d err %v", token, err)
	}
	part := grouping.LocalPartState{}
	payload, err := appendState(nil, 42, &part)
	if err != nil {
		t.Fatal(err)
	}
	token, _, err = decodeState(payload)
	if err != nil || token != 42 {
		t.Fatalf("state: token %d err %v", token, err)
	}
	if _, _, err := decodeState(payload[:1]); err == nil {
		t.Fatal("truncated state accepted")
	}
}

// drainBatch runs a decoder to exhaustion, for the fuzzers.
func drainBatch(payload []byte, dd *decDict) {
	_, bd, err := decodeBatch(payload, dd)
	if err != nil {
		return
	}
	var m grouping.Message
	for {
		ok, err := bd.next(&m)
		if err != nil || !ok {
			return
		}
	}
}

func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(FrameBatch, []byte("seed")))
	f.Add(frameBytes(FrameHello, nil))
	f.Add([]byte("SDW1 but not really a frame"))
	f.Add(bytes.Repeat([]byte{0xff}, headerLen+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			_, _, _, err := readFrame(r, nil)
			if err != nil {
				return
			}
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	ed := newEncDict()
	ps := make([]*grouping.Pending, 0, 3)
	for _, m := range wireMessages() {
		ps = append(ps, grouping.NewPending(m))
	}
	f.Add(appendBatch(nil, ed, 1, 99, true, ps))
	f.Add(appendBatch(nil, ed, 2, -5, false, ps)) // reference-only symbols
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var dd decDict
		drainBatch(data, &dd)
		// And against a decoder with prior state, as on a live connection.
		seeded := decDict{}
		seeded.seed(ed.prefix(ed.len()))
		drainBatch(data, &seeded)
	})
}

func FuzzDecodeDecisions(f *testing.F) {
	f.Add(appendDecisions(nil, 3,
		[]DecisionItem{{Temporal: 1, RS: 0, RE: 1}}, []uint64{2},
		grouping.LocalStats{Streams: 1}, ""))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var db DecisionBatch
		decodeDecisions(data, &db)
	})
}

func FuzzDecodeState(f *testing.F) {
	part := grouping.LocalPartState{}
	seed, _ := appendState(nil, 7, &part)
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeState(data)
		decodeStateReq(data)
	})
}
