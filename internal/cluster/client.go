package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/obs"
)

// ClientMetrics are a shard client's optional observability handles
// (nil-safe). All clients of one engine may share the same handles — the
// counters are engine-global.
type ClientMetrics struct {
	BytesOut       *obs.Counter
	BytesIn        *obs.Counter
	BatchesSent    *obs.Counter // batches enqueued toward a shard
	BatchesAcked   *obs.Counter // decision batches delivered to the merge
	Replayed       *obs.Counter // batch frames re-sent after a reconnect
	Reconnects     *obs.Counter // successful re-dials (the first dial is free)
	StateSnapshots *obs.Counter // state responses received
	RTT            *obs.Histogram
	Inflight       *obs.Gauge // batches sent and not yet acked
}

// ClientConfig configures one shard connection.
type ClientConfig struct {
	Addr       string
	Shard      int // this client's shard index
	Workers    int // total shard count
	MaxStreams int // per-shard temporal model cap
	KBSig      string
	Config     GroupConfig

	// StateEvery asks the shard for a state snapshot every N batches; the
	// snapshot becomes the reconnect seed and truncates the replay log.
	// <= 0 defaults to DefaultStateEvery.
	StateEvery int
	// MaxAttempts bounds consecutive failed dials before the client gives
	// up and fails the engine. <= 0 defaults to DefaultMaxAttempts.
	MaxAttempts int
	// Backoff is the initial retry delay, doubling per attempt up to 2s.
	// <= 0 defaults to 25ms.
	Backoff time.Duration

	Metrics ClientMetrics
	Logf    func(format string, args ...any)
}

const (
	// DefaultStateEvery bounds the replay log to at most this many batches
	// (plus whatever is in flight) per shard.
	DefaultStateEvery = 64
	// DefaultMaxAttempts bounds a reconnect storm before the engine fails.
	DefaultMaxAttempts = 10
	defaultBackoff     = 25 * time.Millisecond
	maxBackoff         = 2 * time.Second
	clientQueueDepth   = 4
	decQueueDepth      = 8
)

type reqKind uint8

const (
	reqBatch reqKind = iota
	reqState
)

type sendReq struct {
	kind  reqKind
	seq   uint64 // batch seq (>= 1), or state token
	frame []byte
}

type replayEntry struct {
	seq   uint64
	frame []byte
}

// seedState is the reconnect seed: the shard's state as of batch seq, the
// dictionary prefix that state was encoded against, and the part itself.
type seedState struct {
	seq  uint64
	dict []string
	part grouping.LocalPartState
}

type stateWait struct {
	token uint64
	ch    chan stateResult
}

type stateResult struct {
	part grouping.LocalPartState
	err  error
}

// Client drives one shard connection for the cluster engine.
//
// Threading: the dispatcher goroutine owns the symbol dictionary and
// encodes batches in SendBatch; a run goroutine owns the connection and
// all writes; one reader goroutine per connection decodes decision and
// state frames (at most one reader is ever alive — the run goroutine
// waits a dead connection's reader out before dialing again). Reconnects
// re-seed the session from the last state snapshot and replay the
// retained batch frames; batch sequence numbers start at 1 and the
// delivered cursor dedupes replay re-answers, so every batch reaches the
// merge exactly once and the shard steps every batch at most once per
// session state — see DESIGN "Cluster mode" for the soundness argument.
type Client struct {
	cfg ClientConfig
	met ClientMetrics

	ed      *encDict // dispatcher goroutine only
	lastSeq uint64   // dispatcher goroutine only: last batch seq enqueued

	sendCh   chan sendReq
	decCh    chan *DecisionBatch
	connLost chan net.Conn
	free     chan *DecisionBatch
	runDone  chan struct{}

	mu         sync.Mutex
	replay     []replayEntry
	seed       *seedState
	delivered  uint64 // highest batch seq pushed to decCh
	sendTimes  map[uint64]time.Time
	stateDicts map[uint64][]string // token → dict prefix at enqueue
	waiter     *stateWait
	err        error
	failed     bool

	sent  atomic.Uint64
	acked atomic.Uint64

	// run-goroutine connection state
	conn          net.Conn
	readerDone    chan struct{}
	lastWritten   uint64 // highest batch seq written into the current session
	everConnected bool
	decClosed     bool
}

// NewClient prepares a shard connection; the dial happens lazily on the
// first send. seed, when non-nil, re-seeds the remote shard from a
// checkpoint part before any batch is sent (the RestoreCluster path).
func NewClient(cfg ClientConfig, seed *grouping.LocalPartState) *Client {
	if cfg.StateEvery <= 0 {
		cfg.StateEvery = DefaultStateEvery
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = defaultBackoff
	}
	c := &Client{
		cfg:        cfg,
		met:        cfg.Metrics,
		ed:         newEncDict(),
		sendCh:     make(chan sendReq, clientQueueDepth),
		decCh:      make(chan *DecisionBatch, decQueueDepth),
		connLost:   make(chan net.Conn, 4),
		free:       make(chan *DecisionBatch, decQueueDepth),
		runDone:    make(chan struct{}),
		sendTimes:  make(map[uint64]time.Time),
		stateDicts: make(map[uint64][]string),
	}
	if seed != nil {
		c.seed = &seedState{part: *seed}
	}
	go c.run()
	return c
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Decisions is the stream of completed batches, in batch-seq order. The
// channel closes when the client fails permanently or is closed; Err
// reports why.
func (c *Client) Decisions() <-chan *DecisionBatch { return c.decCh }

// Err reports the permanent failure, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Recycle hands a fully-consumed decision batch back for reuse.
func (c *Client) Recycle(db *DecisionBatch) {
	select {
	case c.free <- db:
	default:
	}
}

func (c *Client) getDecBuf() *DecisionBatch {
	select {
	case db := <-c.free:
		return db
	default:
		return &DecisionBatch{}
	}
}

// SendBatch encodes one sub-batch (which may be empty — every batch gets
// one frame per shard, preserving the sync invariant), appends it to the
// replay log, and enqueues it. seq must start at 1 and increase by 1.
// Blocks when the pipe is full: the shard connection is the backpressure
// boundary. Dispatcher goroutine only.
func (c *Client) SendBatch(seq uint64, punctNs int64, drain bool, msgs []*grouping.Pending) {
	payload := appendBatch(nil, c.ed, seq, punctNs, drain, msgs)
	frame := appendFrame(nil, FrameBatch, payload)
	c.lastSeq = seq
	c.mu.Lock()
	failed := c.failed
	if !failed {
		c.replay = append(c.replay, replayEntry{seq: seq, frame: frame})
	}
	c.mu.Unlock()
	if failed {
		return // the engine is failing; drop quietly
	}
	c.met.BatchesSent.Inc()
	c.sent.Add(1)
	c.publishInflight()
	c.sendCh <- sendReq{kind: reqBatch, seq: seq, frame: frame}
	if seq%uint64(c.cfg.StateEvery) == 0 {
		c.enqueueStateReq(seq, nil)
	}
}

// FetchState asks the shard for its LocalPartState as of every batch sent
// so far. The caller must be quiescent with every outstanding batch acked
// (the engine's sync barrier guarantees both) — quiescence is what makes
// the token, the dictionary prefix, and a possible reconnect re-request
// agree on the same batch prefix. Dispatcher goroutine only.
func (c *Client) FetchState(timeout time.Duration) (grouping.LocalPartState, error) {
	ch := make(chan stateResult, 1)
	c.enqueueStateReq(c.lastSeq, ch)
	select {
	case res := <-ch:
		return res.part, res.err
	case <-time.After(timeout):
		return grouping.LocalPartState{}, fmt.Errorf("cluster: shard %d state fetch timed out after %v", c.cfg.Shard, timeout)
	}
}

func (c *Client) enqueueStateReq(token uint64, waiter chan stateResult) {
	prefix := c.ed.prefix(c.ed.len())
	c.mu.Lock()
	if c.failed {
		err := c.err
		c.mu.Unlock()
		if waiter != nil {
			waiter <- stateResult{err: err}
		}
		return
	}
	c.stateDicts[token] = prefix
	if waiter != nil {
		c.waiter = &stateWait{token: token, ch: waiter}
	}
	c.mu.Unlock()
	frame := appendFrame(nil, FrameStateReq, appendStateReq(nil, token))
	c.sendCh <- sendReq{kind: reqState, seq: token, frame: frame}
}

// Close tears the connection down. Callers stop consuming Decisions
// first; any undelivered decisions are discarded.
func (c *Client) Close() {
	close(c.sendCh)
	<-c.runDone
}

func (c *Client) publishInflight() {
	c.met.Inflight.Set(float64(c.sent.Load() - c.acked.Load()))
}

// run owns the connection: dials lazily, writes frames in order, and
// re-dials (seed + replay) when the connection drops.
func (c *Client) run() {
	defer close(c.runDone)
	for {
		select {
		case req, ok := <-c.sendCh:
			if !ok {
				c.teardown()
				return
			}
			c.handleSend(req)
		case lost := <-c.connLost:
			if lost == c.conn && c.conn != nil && !c.isFailed() {
				c.logf("cluster: shard %d connection lost, reconnecting", c.cfg.Shard)
				if err := c.redial(); err != nil {
					c.fail(err)
				}
			}
		}
	}
}

func (c *Client) isFailed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

func (c *Client) handleSend(req sendReq) {
	if c.isFailed() {
		return
	}
	for {
		if c.conn == nil {
			if err := c.redial(); err != nil {
				c.fail(err)
				return
			}
		}
		// A batch at or below the session's high-water mark was already
		// replayed into this session; writing it again would step the shard
		// twice. A state request strictly below the mark is stale the same
		// way: the session has advanced past its token, so the response
		// would bake later batches into a seed labeled with an earlier one.
		// (token == lastWritten is the normal case: state as of the batch
		// just written.)
		if req.kind == reqBatch && req.seq <= c.lastWritten {
			return
		}
		if req.kind == reqState && req.seq < c.lastWritten {
			return
		}
		if req.kind == reqBatch {
			c.mu.Lock()
			c.sendTimes[req.seq] = time.Now()
			c.mu.Unlock()
		}
		if err := c.writeConn(req.frame); err == nil {
			if req.kind == reqBatch {
				c.lastWritten = req.seq
			}
			return
		}
		c.logf("cluster: shard %d write failed, reconnecting", c.cfg.Shard)
		c.dropConn()
	}
}

func (c *Client) writeConn(frame []byte) error {
	if _, err := c.conn.Write(frame); err != nil {
		return err
	}
	c.met.BytesOut.Add(uint64(len(frame)))
	return nil
}

// dropConn closes the connection and waits its reader out, so at most one
// reader is ever alive. The wait is bounded: the reader may be blocked
// delivering into decCh, which the merge keeps draining.
func (c *Client) dropConn() {
	if c.conn == nil {
		return
	}
	c.conn.Close()
	if c.readerDone != nil {
		<-c.readerDone
		c.readerDone = nil
	}
	c.conn = nil
	c.lastWritten = 0
}

// redial establishes a fresh session with bounded exponential backoff.
func (c *Client) redial() error {
	hadConn := c.everConnected
	c.dropConn()
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		conn, err := net.Dial("tcp", c.cfg.Addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.setup(conn); err != nil {
			lastErr = err
			c.logf("cluster: shard %d session setup with %s: %v", c.cfg.Shard, c.cfg.Addr, err)
			// A structural rejection (knowledge mismatch, bad config) will
			// not heal with retries.
			var rej *rejectedError
			if errors.As(err, &rej) {
				return err
			}
			continue
		}
		if hadConn {
			c.met.Reconnects.Inc()
		}
		c.everConnected = true
		return nil
	}
	return fmt.Errorf("cluster: shard %d unreachable at %s after %d attempts: %w",
		c.cfg.Shard, c.cfg.Addr, c.cfg.MaxAttempts, lastErr)
}

// rejectedError marks a server-side Hello rejection: structural, no retry.
type rejectedError struct{ msg string }

func (e *rejectedError) Error() string { return "cluster: shard rejected session: " + e.msg }

// setup performs the handshake on a fresh connection, starts its reader,
// and replays the retained frames. On success c.conn/c.readerDone/
// c.lastWritten describe the new session; on failure the connection (and
// its reader, if started) are fully torn down.
func (c *Client) setup(conn net.Conn) (err error) {
	readerStarted := false
	defer func() {
		if err != nil {
			conn.Close()
			if readerStarted {
				<-c.readerDone
				c.readerDone = nil
			}
			c.conn = nil
		}
	}()

	hello, err := marshalJSONFrame(Hello{
		Shard:      c.cfg.Shard,
		Workers:    c.cfg.Workers,
		MaxStreams: c.cfg.MaxStreams,
		KBSig:      c.cfg.KBSig,
		Config:     c.cfg.Config,
	})
	if err != nil {
		return err
	}
	head := appendFrame(nil, FrameHello, hello)

	// Snapshot seed + replay under the lock (the previous connection's
	// reader may have been pruning); the frames themselves are immutable.
	// RTT stamps reset — an outage is not the shard's round trip.
	c.mu.Lock()
	seed := c.seed
	entries := make([]replayEntry, len(c.replay))
	copy(entries, c.replay)
	clear(c.sendTimes)
	pendingWaiter := c.waiter
	c.mu.Unlock()

	if seed != nil {
		raw, err := marshalJSONFrame(Restore{BatchSeq: seed.seq, Dict: seed.dict, Part: seed.part})
		if err != nil {
			return err
		}
		head = appendFrame(head, FrameRestore, raw)
	}
	if _, err := conn.Write(head); err != nil {
		return err
	}
	c.met.BytesOut.Add(uint64(len(head)))

	// The Welcome comes back before any reader exists.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, _, err := readFrame(conn, nil)
	if err != nil {
		return fmt.Errorf("cluster: welcome: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if typ != FrameWelcome {
		return fmt.Errorf("cluster: expected welcome, got frame type %d", typ)
	}
	var w Welcome
	if err := unmarshalJSONFrame(payload, &w); err != nil {
		return err
	}
	if !w.OK {
		return &rejectedError{msg: w.Error}
	}

	// Reader before replay: replay responses must be drained while we are
	// still writing, or a long replay could deadlock on full TCP buffers.
	c.conn = conn
	c.readerDone = make(chan struct{})
	readerStarted = true
	go c.reader(conn, c.readerDone)

	now := time.Now()
	written := uint64(0)
	for _, e := range entries {
		c.mu.Lock()
		c.sendTimes[e.seq] = now
		c.mu.Unlock()
		if err := c.writeConn(e.frame); err != nil {
			return fmt.Errorf("cluster: replay: %w", err)
		}
		c.met.Replayed.Inc()
		written = e.seq
	}
	// Re-issue an in-flight checkpoint state request: its response died
	// with the old connection, and the replayed session reaches the same
	// logical state (the engine is quiescent while it waits, so the token
	// still names the full batch prefix).
	if pendingWaiter != nil {
		frame := appendFrame(nil, FrameStateReq, appendStateReq(nil, pendingWaiter.token))
		if err := c.writeConn(frame); err != nil {
			return fmt.Errorf("cluster: replay state request: %w", err)
		}
	}
	c.lastWritten = written
	return nil
}

// reader decodes frames off one connection until it dies.
func (c *Client) reader(conn net.Conn, done chan struct{}) {
	defer close(done)
	br := bufio.NewReaderSize(countingReader{conn, c.met.BytesIn}, 64<<10)
	var buf []byte
	for {
		typ, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			c.noteConnLost(conn)
			return
		}
		switch typ {
		case FrameDecisions:
			db := c.getDecBuf()
			if err := decodeDecisions(payload, db); err != nil {
				c.logf("cluster: shard %d: bad decisions frame: %v", c.cfg.Shard, err)
				c.noteConnLost(conn)
				return
			}
			c.mu.Lock()
			if db.Seq <= c.delivered {
				c.mu.Unlock()
				c.Recycle(db) // a replay re-answer
				continue
			}
			c.delivered = db.Seq
			if t, ok := c.sendTimes[db.Seq]; ok {
				c.met.RTT.Observe(time.Since(t).Seconds())
				delete(c.sendTimes, db.Seq)
			}
			c.mu.Unlock()
			c.met.BatchesAcked.Inc()
			c.acked.Add(1)
			c.publishInflight()
			c.decCh <- db
		case FrameState:
			token, part, err := decodeState(payload)
			if err != nil {
				c.logf("cluster: shard %d: bad state frame: %v", c.cfg.Shard, err)
				c.noteConnLost(conn)
				return
			}
			c.met.StateSnapshots.Inc()
			c.mu.Lock()
			if dict, ok := c.stateDicts[token]; ok {
				c.seed = &seedState{seq: token, dict: dict, part: part}
				for t := range c.stateDicts {
					if t <= token {
						delete(c.stateDicts, t)
					}
				}
				// Truncate the replay log: batches at or below the seed are
				// baked into the snapshot.
				keep := c.replay[:0]
				for _, e := range c.replay {
					if e.seq > token {
						keep = append(keep, e)
					}
				}
				c.replay = keep
			}
			if c.waiter != nil && c.waiter.token == token {
				c.waiter.ch <- stateResult{part: part}
				c.waiter = nil
			}
			c.mu.Unlock()
		default:
			c.logf("cluster: shard %d: unexpected frame type %d", c.cfg.Shard, typ)
			c.noteConnLost(conn)
			return
		}
	}
}

func (c *Client) noteConnLost(conn net.Conn) {
	select {
	case c.connLost <- conn:
	default:
	}
}

// fail marks the client permanently broken and closes the decisions
// channel so the merge unblocks (a closed channel reads as a failed
// shard). Only the run goroutine calls it, always with no live reader.
func (c *Client) fail(err error) {
	c.logf("cluster: shard %d failed: %v", c.cfg.Shard, err)
	c.mu.Lock()
	already := c.failed
	c.failed = true
	if c.err == nil {
		c.err = err
	}
	w := c.waiter
	c.waiter = nil
	c.mu.Unlock()
	if w != nil {
		w.ch <- stateResult{err: err}
	}
	if !already {
		c.closeDec()
	}
}

func (c *Client) closeDec() {
	if !c.decClosed {
		c.decClosed = true
		close(c.decCh)
	}
}

// teardown runs when the send channel closes: drop the connection, wait
// the reader out (draining any last deliveries nobody will consume), and
// close the decision stream.
func (c *Client) teardown() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	for c.readerDone != nil {
		select {
		case <-c.readerDone:
			c.readerDone = nil
		case <-c.decCh:
		}
	}
	c.closeDec()
}
