package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/temporal"
)

// GroupConfig is the grouping configuration a Hello ships: everything a
// shard needs to build its RouterLocal identically to an in-process one.
// The knowledge itself (location dictionary, rule base) is NOT shipped —
// the shard loads the same KB file and the fingerprint check catches a
// mismatch.
type GroupConfig struct {
	Temporal      temporal.Params `json:"temporal"`
	RuleWindowNs  int64           `json:"rule_window_ns"`
	CrossWindowNs int64           `json:"cross_window_ns"`
	MaxScan       int             `json:"max_scan"`
	LinearScan    bool            `json:"linear_scan,omitempty"`
	OnlyTemporal  bool            `json:"only_temporal,omitempty"`
	TemporalRules bool            `json:"temporal_rules,omitempty"`
}

// ConfigFrom flattens a grouping.Config for the wire.
func ConfigFrom(cfg grouping.Config) GroupConfig {
	return GroupConfig{
		Temporal:      cfg.Temporal,
		RuleWindowNs:  int64(cfg.RuleWindow),
		CrossWindowNs: int64(cfg.CrossWindow),
		MaxScan:       cfg.MaxScan,
		LinearScan:    cfg.LinearScan,
		OnlyTemporal:  cfg.OnlyTemporal,
		TemporalRules: cfg.TemporalAndRules,
	}
}

// GroupingConfig rebuilds the grouping.Config on the shard side.
func (gc GroupConfig) GroupingConfig() grouping.Config {
	return grouping.Config{
		Temporal:         gc.Temporal,
		RuleWindow:       time.Duration(gc.RuleWindowNs),
		CrossWindow:      time.Duration(gc.CrossWindowNs),
		MaxScan:          gc.MaxScan,
		LinearScan:       gc.LinearScan,
		OnlyTemporal:     gc.OnlyTemporal,
		TemporalAndRules: gc.TemporalRules,
	}
}

// Fingerprint is a weak structural signature of the grouping knowledge:
// enough to catch a shard pointed at the wrong KB file, cheap enough to
// check on every Hello.
func Fingerprint(dict *locdict.Dictionary, rb *rules.RuleBase) string {
	nr := 0
	if rb != nil {
		nr = rb.Len()
	}
	nl, ns, np := 0, 0, 0
	if dict != nil {
		nl, ns, np = len(dict.Links()), len(dict.Sessions()), len(dict.Paths())
	}
	routers := 0
	if dict != nil {
		routers = dict.Routers()
	}
	return fmt.Sprintf("v1:r%d:l%d:s%d:p%d:rules%d", routers, nl, ns, np, nr)
}

// Hello opens a session.
type Hello struct {
	Shard      int         `json:"shard"`   // shard index, for logs/metrics
	Workers    int         `json:"workers"` // total shard count
	MaxStreams int         `json:"max_streams"`
	KBSig      string      `json:"kb_sig"`
	Config     GroupConfig `json:"config"`
}

// Welcome accepts or rejects a Hello.
type Welcome struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// Restore re-seeds a shard session before a replay: the dictionary prefix
// as of the seed snapshot, the RouterLocal part, and the batch sequence
// the seed reflects (replayed batches follow with higher sequences).
type Restore struct {
	BatchSeq uint64                  `json:"batch_seq"`
	Dict     []string                `json:"dict"`
	Part     grouping.LocalPartState `json:"part"`
}

// BatchHeader is the fixed head of a Batch frame.
type BatchHeader struct {
	Seq     uint64
	PunctNs int64
	Drain   bool
	Count   int
}

// appendBatch appends a Batch frame payload: header, then each message
// with Seq/time as deltas and strings as dictionary references.
func appendBatch(b []byte, d *encDict, seq uint64, punctNs int64, drain bool, msgs []*grouping.Pending) []byte {
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendVarint(b, punctNs)
	var flags byte
	if drain {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(len(msgs)))
	prevSeq, prevNs := uint64(0), int64(0)
	for _, p := range msgs {
		m := p.Msg()
		s := uint64(m.Seq)
		b = binary.AppendUvarint(b, s-prevSeq)
		prevSeq = s
		ns := m.Time.UnixNano()
		b = binary.AppendVarint(b, ns-prevNs)
		prevNs = ns
		b = d.appendSym(b, m.Router)
		b = binary.AppendVarint(b, int64(m.Template))
		b = appendLoc(b, d, m.Loc)
		b = binary.AppendUvarint(b, uint64(len(m.AllLocs)))
		for _, loc := range m.AllLocs {
			b = appendLoc(b, d, loc)
		}
		b = binary.AppendUvarint(b, uint64(len(m.Peers)))
		for _, peer := range m.Peers {
			b = d.appendSym(b, peer)
		}
		b = binary.AppendUvarint(b, m.Raw)
	}
	return b
}

func appendLoc(b []byte, d *encDict, loc locdict.Location) []byte {
	b = d.appendSym(b, loc.Router)
	b = binary.AppendUvarint(b, uint64(loc.Level))
	return d.appendSym(b, loc.Name)
}

// batchDecoder streams the messages of a Batch payload.
type batchDecoder struct {
	r       wireReader
	d       *decDict
	left    int
	prevSeq uint64
	prevNs  int64
}

// decodeBatch parses the header and positions a decoder at the first
// message. The decoder aliases payload; both are valid until the next
// frame read.
func decodeBatch(payload []byte, d *decDict) (BatchHeader, batchDecoder, error) {
	bd := batchDecoder{r: wireReader{b: payload}, d: d}
	var h BatchHeader
	var err error
	if h.Seq, err = bd.r.uvarint(); err != nil {
		return h, bd, err
	}
	if h.PunctNs, err = bd.r.varint(); err != nil {
		return h, bd, err
	}
	flags, err := bd.r.u8()
	if err != nil {
		return h, bd, err
	}
	h.Drain = flags&1 != 0
	n, err := bd.r.uvarint()
	if err != nil {
		return h, bd, err
	}
	if n > MaxFrameBytes {
		return h, bd, fmt.Errorf("%w: %d messages", ErrFrameSize, n)
	}
	h.Count = int(n)
	bd.left = h.Count
	return h, bd, nil
}

// next decodes one message into m. Returns false when the batch is
// exhausted. Strings alias the connection dictionary (interned once);
// AllLocs/Peers allocate only when present.
func (bd *batchDecoder) next(m *grouping.Message) (bool, error) {
	if bd.left == 0 {
		return false, nil
	}
	bd.left--
	ds, err := bd.r.uvarint()
	if err != nil {
		return false, err
	}
	bd.prevSeq += ds
	dns, err := bd.r.varint()
	if err != nil {
		return false, err
	}
	bd.prevNs += dns
	m.Seq = int(bd.prevSeq)
	m.Time = time.Unix(0, bd.prevNs).UTC()
	if m.Router, err = bd.d.readSym(&bd.r); err != nil {
		return false, err
	}
	tpl, err := bd.r.varint()
	if err != nil {
		return false, err
	}
	m.Template = int(tpl)
	if m.Loc, err = bd.readLoc(); err != nil {
		return false, err
	}
	nl, err := bd.r.uvarint()
	if err != nil {
		return false, err
	}
	if nl > uint64(len(bd.r.b)) {
		return false, ErrTruncated
	}
	m.AllLocs = nil
	if nl > 0 {
		m.AllLocs = make([]locdict.Location, nl)
		for i := range m.AllLocs {
			if m.AllLocs[i], err = bd.readLoc(); err != nil {
				return false, err
			}
		}
	}
	np, err := bd.r.uvarint()
	if err != nil {
		return false, err
	}
	if np > uint64(len(bd.r.b)) {
		return false, ErrTruncated
	}
	m.Peers = nil
	if np > 0 {
		m.Peers = make([]string, np)
		for i := range m.Peers {
			if m.Peers[i], err = bd.d.readSym(&bd.r); err != nil {
				return false, err
			}
		}
	}
	if m.Raw, err = bd.r.uvarint(); err != nil {
		return false, err
	}
	return true, nil
}

func (bd *batchDecoder) readLoc() (locdict.Location, error) {
	var loc locdict.Location
	var err error
	if loc.Router, err = bd.d.readSym(&bd.r); err != nil {
		return loc, err
	}
	lvl, err := bd.r.uvarint()
	if err != nil {
		return loc, err
	}
	loc.Level = locdict.Level(lvl)
	loc.Name, err = bd.d.readSym(&bd.r)
	return loc, err
}

// DecisionItem is one message's join decisions: the temporal predecessor
// as a Seq delta (0: none) and a range into the batch's rule-delta arena.
type DecisionItem struct {
	Temporal uint64
	RS, RE   int32
}

// DecisionBatch completes one batch: one item per message stepped (a
// prefix of the batch when the shard errored mid-batch), the shard's
// cumulative local stats, and the shard-side error if any. Err is set by
// the client on transport failure; it never crosses the wire.
type DecisionBatch struct {
	Seq      uint64
	Items    []DecisionItem
	Rules    []uint64
	Stats    grouping.LocalStats
	ShardErr string
	Err      error
}

// appendDecisions appends a Decisions frame payload.
func appendDecisions(b []byte, seq uint64, items []DecisionItem, ruleArena []uint64, stats grouping.LocalStats, shardErr string) []byte {
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(stats.Streams))
	b = binary.AppendUvarint(b, uint64(stats.Evictions))
	b = binary.AppendUvarint(b, stats.RuleCandidates)
	b = binary.AppendUvarint(b, stats.RulePairs)
	b = binary.AppendUvarint(b, uint64(len(shardErr)))
	b = append(b, shardErr...)
	b = binary.AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = binary.AppendUvarint(b, it.Temporal)
		b = binary.AppendUvarint(b, uint64(it.RE-it.RS))
		for _, d := range ruleArena[it.RS:it.RE] {
			b = binary.AppendUvarint(b, d)
		}
	}
	return b
}

// decodeDecisions parses a Decisions payload into db, reusing its slices.
func decodeDecisions(payload []byte, db *DecisionBatch) error {
	r := wireReader{b: payload}
	var err error
	if db.Seq, err = r.uvarint(); err != nil {
		return err
	}
	u, err := r.uvarint()
	if err != nil {
		return err
	}
	db.Stats.Streams = int(u)
	if u, err = r.uvarint(); err != nil {
		return err
	}
	db.Stats.Evictions = int(u)
	if db.Stats.RuleCandidates, err = r.uvarint(); err != nil {
		return err
	}
	if db.Stats.RulePairs, err = r.uvarint(); err != nil {
		return err
	}
	en, err := r.uvarint()
	if err != nil {
		return err
	}
	eb, err := r.bytes(en)
	if err != nil {
		return err
	}
	db.ShardErr = string(eb)
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(payload)) {
		return fmt.Errorf("%w: %d items", ErrFrameSize, n)
	}
	db.Items = db.Items[:0]
	db.Rules = db.Rules[:0]
	db.Err = nil
	for i := uint64(0); i < n; i++ {
		var it DecisionItem
		if it.Temporal, err = r.uvarint(); err != nil {
			return err
		}
		nr, err := r.uvarint()
		if err != nil {
			return err
		}
		if nr > uint64(len(payload)) {
			return fmt.Errorf("%w: %d rule joins", ErrFrameSize, nr)
		}
		it.RS = int32(len(db.Rules))
		for j := uint64(0); j < nr; j++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			db.Rules = append(db.Rules, d)
		}
		it.RE = int32(len(db.Rules))
		db.Items = append(db.Items, it)
	}
	return nil
}

// appendStateReq / decodeStateReq carry just the request token.
func appendStateReq(b []byte, token uint64) []byte {
	return binary.AppendUvarint(b, token)
}

func decodeStateReq(payload []byte) (uint64, error) {
	r := wireReader{b: payload}
	return r.uvarint()
}

// appendState appends a State payload: the echoed token, the dictionary
// length the snapshot reflects, then the JSON part.
func appendState(b []byte, token uint64, part *grouping.LocalPartState) ([]byte, error) {
	raw, err := json.Marshal(part)
	if err != nil {
		return b, err
	}
	b = binary.AppendUvarint(b, token)
	return append(b, raw...), nil
}

// decodeState parses a State payload.
func decodeState(payload []byte) (uint64, grouping.LocalPartState, error) {
	r := wireReader{b: payload}
	var part grouping.LocalPartState
	token, err := r.uvarint()
	if err != nil {
		return 0, part, err
	}
	if err := json.Unmarshal(r.rest(), &part); err != nil {
		return 0, part, fmt.Errorf("cluster: state payload: %w", err)
	}
	return token, part, nil
}

// marshalJSONFrame / unmarshalJSONFrame wrap the JSON control payloads.
func marshalJSONFrame(v any) ([]byte, error) { return json.Marshal(v) }

func unmarshalJSONFrame(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("cluster: control payload: %w", err)
	}
	return nil
}
