package cluster

import (
	"encoding/binary"
	"fmt"
)

// encDict is the sending side of the incremental symbol dictionary. Ids
// are assigned in first-appearance order and never change for the life of
// a connection; the entry list is append-only, so a prefix snapshot (for
// replay-on-reconnect seeding) is a cheap three-index subslice.
type encDict struct {
	ids  map[string]uint32
	syms []string
}

func newEncDict() *encDict {
	return &encDict{ids: make(map[string]uint32)}
}

// appendSym appends a symbol reference: a 1-based id for a known string,
// or 0 followed by the length-prefixed bytes (defining the next id) for a
// new one.
func (d *encDict) appendSym(b []byte, s string) []byte {
	if id, ok := d.ids[s]; ok {
		return binary.AppendUvarint(b, uint64(id)+1)
	}
	d.ids[s] = uint32(len(d.syms))
	d.syms = append(d.syms, s)
	b = binary.AppendUvarint(b, 0)
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// len is the number of defined symbols.
func (d *encDict) len() int { return len(d.syms) }

// prefix snapshots the first n entries. Entries are immutable and the list
// append-only, so the subslice stays valid as the dictionary grows.
func (d *encDict) prefix(n int) []string { return d.syms[:n:n] }

// decDict is the receiving side: it replays the definitions inline in the
// stream. A reference past the end of the table means the two sides have
// diverged (a replay gap, reordered frames, corruption) — that is fatal
// for the connection, never a guess.
type decDict struct {
	syms []string
}

// seed installs a prefix snapshot (Restore frame) before replay.
func (d *decDict) seed(syms []string) {
	d.syms = append(d.syms[:0], syms...)
}

// readSym decodes one symbol reference.
func (d *decDict) readSym(r *wireReader) (string, error) {
	u, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if u == 0 {
		n, err := r.uvarint()
		if err != nil {
			return "", err
		}
		raw, err := r.bytes(n)
		if err != nil {
			return "", err
		}
		s := string(raw)
		d.syms = append(d.syms, s)
		return s, nil
	}
	idx := u - 1
	if idx >= uint64(len(d.syms)) {
		return "", fmt.Errorf("%w: ref %d, table %d", ErrDictDesync, idx, len(d.syms))
	}
	return d.syms[idx], nil
}
