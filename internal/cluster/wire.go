// Package cluster is the shard wire protocol (PR 10): it distributes the
// router-local half of the sharded streaming engine across processes.
//
// The protocol is deliberately asymmetric, mirroring the PR 5 split. The
// dispatcher (merger process) streams message sub-batches to each shard
// process; a shard answers every batch — empty ones included, preserving
// the one-result-per-shard-per-batch sync invariant — with a decision
// batch: per message, the Seq of its temporal join predecessor and the
// Seqs of its rule-window join predecessors, as deltas. Decisions carry no
// state, so the merger replays the exact serial interleaving and the
// output is byte-identical to the in-process engine at any shard count.
//
// Framing: every frame is
//
//	magic(4) version(1) type(1) payloadLen(4) crc32(4) payload
//
// big-endian, CRC-32 (IEEE) over the payload. Control frames (Hello,
// Welcome, Restore, State) carry JSON payloads — once per connection or
// per checkpoint, robustness over bytes. Data frames (Batch, Decisions)
// are hand-rolled varint encodings with an incremental symbol dictionary:
// the first occurrence of a string on a connection defines the next
// dictionary id inline, every later occurrence is a 1-based varint
// reference, so interned router/location symbols survive the hop at ~2
// bytes each. A reference beyond the table is a desync and kills the
// connection — the decoder never guesses.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol version. A frame with a higher version is
// rejected (ErrVersion): no forward compatibility is promised.
const Version = 1

const (
	frameMagic = 0x53445731 // "SDW1"
	headerLen  = 14
	// MaxFrameBytes bounds a single frame; anything larger is corruption
	// (a full batch of maximal messages is far below this).
	MaxFrameBytes = 16 << 20
)

// FrameType discriminates the payload.
type FrameType uint8

const (
	// FrameHello opens a session: shard identity, grouping config, KB
	// fingerprint (JSON, client → server).
	FrameHello FrameType = 1
	// FrameWelcome acknowledges or rejects a Hello (JSON, server → client).
	FrameWelcome FrameType = 2
	// FrameRestore re-seeds the shard's RouterLocal and dictionary before a
	// replay (JSON, client → server).
	FrameRestore FrameType = 3
	// FrameBatch carries one message sub-batch with its punctuation
	// (binary, client → server).
	FrameBatch FrameType = 4
	// FrameDecisions carries one batch's join decisions, local stats, and
	// shard-side error, completing the batch (binary, server → client).
	FrameDecisions FrameType = 5
	// FrameStateReq asks for the shard's LocalPartState as of the batches
	// processed so far (binary, client → server).
	FrameStateReq FrameType = 6
	// FrameState answers a StateReq (binary envelope, JSON body,
	// server → client).
	FrameState FrameType = 7
)

// Decode errors. All corruption paths return wrapped sentinels so tests
// (and reconnect logic) can classify them; none panic.
var (
	ErrBadMagic   = errors.New("cluster: bad frame magic")
	ErrVersion    = errors.New("cluster: unsupported protocol version")
	ErrFrameSize  = errors.New("cluster: frame exceeds size bound")
	ErrCRC        = errors.New("cluster: frame crc mismatch")
	ErrTruncated  = errors.New("cluster: truncated payload")
	ErrDictDesync = errors.New("cluster: symbol dictionary desync")
)

// appendFrame appends a complete frame (header + payload) to dst.
func appendFrame(dst []byte, typ FrameType, payload []byte) []byte {
	var h [headerLen]byte
	binary.BigEndian.PutUint32(h[0:4], frameMagic)
	h[4] = Version
	h[5] = byte(typ)
	binary.BigEndian.PutUint32(h[6:10], uint32(len(payload)))
	binary.BigEndian.PutUint32(h[10:14], crc32.ChecksumIEEE(payload))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, typ FrameType, payload []byte) error {
	_, err := w.Write(appendFrame(nil, typ, payload))
	return err
}

// readFrame reads and validates one frame, reusing buf for the payload
// when it fits. The returned payload aliases the (possibly grown) buffer,
// which is also returned for reuse; it is valid until the next call.
func readFrame(r io.Reader, buf []byte) (FrameType, []byte, []byte, error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, buf, err
	}
	if binary.BigEndian.Uint32(h[0:4]) != frameMagic {
		return 0, nil, buf, ErrBadMagic
	}
	if h[4] > Version {
		return 0, nil, buf, fmt.Errorf("%w: %d > %d", ErrVersion, h[4], Version)
	}
	typ := FrameType(h[5])
	n := binary.BigEndian.Uint32(h[6:10])
	if n > MaxFrameBytes {
		return 0, nil, buf, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(h[10:14]) {
		return 0, nil, buf, ErrCRC
	}
	return typ, payload, buf, nil
}

// wireReader is a bounds-checked cursor over a frame payload.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *wireReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.b)-r.off) {
		return nil, ErrTruncated
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *wireReader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrTruncated
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

// rest returns the unread remainder (for embedded JSON bodies).
func (r *wireReader) rest() []byte { return r.b[r.off:] }
