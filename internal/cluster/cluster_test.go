package cluster

import (
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/netconf"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/temporal"
)

// testKnowledge mirrors the grouping package's toy topology: two routers
// with one connected serial link, rules over the four flap templates.
func testKnowledge(t *testing.T) (*locdict.Dictionary, *rules.RuleBase) {
	t.Helper()
	r1 := &netconf.Config{
		Hostname: "r1", Vendor: syslogmsg.VendorV1,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.1", PrefixLen: 32},
			{Name: "Serial1/0.10/10:0", IP: "10.0.0.1", PrefixLen: 30},
		},
	}
	r2 := &netconf.Config{
		Hostname: "r2", Vendor: syslogmsg.VendorV1,
		Interfaces: []netconf.Interface{
			{Name: "Loopback0", IP: "192.168.0.2", PrefixLen: 32},
			{Name: "Serial1/0.20/20:0", IP: "10.0.0.2", PrefixLen: 30},
		},
	}
	dict, err := locdict.Build([]*netconf.Config{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	rb := rules.NewRuleBase()
	rb.Add(rules.Rule{X: 1, Y: 2, Support: 0.1, Conf: 0.95})
	rb.Add(rules.Rule{X: 3, Y: 4, Support: 0.1, Conf: 0.95})
	rb.Add(rules.Rule{X: 1, Y: 3, Support: 0.1, Conf: 0.9})
	return dict, rb
}

func testGroupingConfig() grouping.Config {
	return grouping.Config{Temporal: temporal.DefaultParams()}
}

// testBatches cuts a sorted random message stream into batches of up to
// batchSize, Seq-stamped in stream order.
func testBatches(seed int64, n, batchSize int) [][]grouping.Message {
	rng := rand.New(rand.NewSource(seed))
	locs := []locdict.Location{
		locdict.IntfLoc("r1", "Serial1/0.10/10:0"),
		locdict.IntfLoc("r2", "Serial1/0.20/20:0"),
		locdict.RouterLoc("r1"),
		locdict.RouterLoc("r2"),
	}
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	msgs := make([]grouping.Message, n)
	for i := range msgs {
		loc := locs[rng.Intn(len(locs))]
		msgs[i] = grouping.Message{
			Time:     base.Add(time.Duration(rng.Intn(7200)) * time.Second),
			Router:   loc.Router,
			Template: 1 + rng.Intn(4),
			Loc:      loc,
		}
		if rng.Intn(4) == 0 {
			other := "r2"
			if loc.Router == "r2" {
				other = "r1"
			}
			msgs[i].Peers = []string{other}
		}
	}
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].Time.Before(msgs[j].Time) })
	for i := range msgs {
		msgs[i].Seq = i
	}
	var batches [][]grouping.Message
	for len(msgs) > 0 {
		k := batchSize
		if k > len(msgs) {
			k = len(msgs)
		}
		batches = append(batches, msgs[:k])
		msgs = msgs[k:]
	}
	return batches
}

func newTestServer(t *testing.T, dict *locdict.Dictionary, rb *rules.RuleBase) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", ServerConfig{Dict: dict, Rules: rb, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func testClientConfig(t *testing.T, addr string, dict *locdict.Dictionary, rb *rules.RuleBase) ClientConfig {
	t.Helper()
	return ClientConfig{
		Addr:    addr,
		Shard:   0,
		Workers: 1,
		KBSig:   Fingerprint(dict, rb),
		Config:  ConfigFrom(testGroupingConfig()),
		Logf:    t.Logf,
	}
}

func recvDecision(t *testing.T, c *Client) *DecisionBatch {
	t.Helper()
	select {
	case db, ok := <-c.Decisions():
		if !ok {
			t.Fatalf("decision stream closed: %v", c.Err())
		}
		return db
	case <-time.After(15 * time.Second):
		t.Fatal("timed out waiting for decisions")
		return nil
	}
}

// checkBatch steps batch through the reference local and compares the
// remote decisions item for item.
func checkBatch(t *testing.T, local *grouping.RouterLocal, batch []grouping.Message, db *DecisionBatch) {
	t.Helper()
	if db.ShardErr != "" {
		t.Fatalf("shard error: %s", db.ShardErr)
	}
	if len(db.Items) != len(batch) {
		t.Fatalf("batch %d: %d items, want %d", db.Seq, len(db.Items), len(batch))
	}
	var js grouping.Joins
	for i, m := range batch {
		p := grouping.NewPending(m)
		if err := local.Step(p, &js); err != nil {
			t.Fatal(err)
		}
		var wantT uint64
		if js.Temporal != nil {
			wantT = uint64(m.Seq - js.Temporal.Msg().Seq)
		}
		it := db.Items[i]
		if it.Temporal != wantT {
			t.Fatalf("batch %d msg %d (seq %d): temporal delta %d, want %d", db.Seq, i, m.Seq, it.Temporal, wantT)
		}
		got := db.Rules[it.RS:it.RE]
		if len(got) != len(js.Rules) {
			t.Fatalf("batch %d msg %d: %d rule joins, want %d", db.Seq, i, len(got), len(js.Rules))
		}
		for j, r := range js.Rules {
			if got[j] != uint64(m.Seq-r.Msg().Seq) {
				t.Fatalf("batch %d msg %d rule %d: delta %d, want %d", db.Seq, i, j, got[j], m.Seq-r.Msg().Seq)
			}
		}
	}
	if stats := local.Stats(); db.Stats != stats {
		t.Fatalf("batch %d: stats %+v, want %+v", db.Seq, db.Stats, stats)
	}
}

func sendPendings(c *Client, seq uint64, drain bool, batch []grouping.Message) {
	ps := make([]*grouping.Pending, len(batch))
	for i, m := range batch {
		ps[i] = grouping.NewPending(m)
	}
	var punct int64
	if n := len(batch); n > 0 {
		punct = batch[n-1].Time.UnixNano()
	}
	c.SendBatch(seq, punct, drain, ps)
}

// TestClientServerLoopback drives a full session over TCP loopback and
// checks every decision against an in-process RouterLocal stepping the
// same stream.
func TestClientServerLoopback(t *testing.T) {
	dict, rb := testKnowledge(t)
	srv := newTestServer(t, dict, rb)
	c := NewClient(testClientConfig(t, srv.Addr(), dict, rb), nil)
	defer c.Close()

	s, err := grouping.NewShardable(dict, rb, grouping.IncrementalConfig{Config: testGroupingConfig()})
	if err != nil {
		t.Fatal(err)
	}
	local := s.NewLocal(0)
	batches := testBatches(7, 120, 9)
	for bi, batch := range batches {
		drain := bi == len(batches)-1
		sendPendings(c, uint64(bi+1), drain, batch)
		db := recvDecision(t, c)
		if db.Seq != uint64(bi+1) {
			t.Fatalf("decision seq %d, want %d", db.Seq, bi+1)
		}
		checkBatch(t, local, batch, db)
		if drain {
			local.DrainWindows()
		}
		c.Recycle(db)
	}
}

// TestClientReconnect kills the server-side session at several points; the
// replay/restore path must keep the decision stream identical to the
// uninterrupted reference, and the reconnect counter must be exact.
func TestClientReconnect(t *testing.T) {
	dict, rb := testKnowledge(t)
	srv := newTestServer(t, dict, rb)
	reg := obs.NewRegistry()
	cfg := testClientConfig(t, srv.Addr(), dict, rb)
	cfg.StateEvery = 4 // force snapshot + Restore traffic across the kills
	cfg.Metrics = ClientMetrics{
		Reconnects:   reg.Counter("test.reconnects"),
		Replayed:     reg.Counter("test.replayed"),
		BatchesSent:  reg.Counter("test.sent"),
		BatchesAcked: reg.Counter("test.acked"),
	}
	c := NewClient(cfg, nil)
	defer c.Close()

	s, err := grouping.NewShardable(dict, rb, grouping.IncrementalConfig{Config: testGroupingConfig()})
	if err != nil {
		t.Fatal(err)
	}
	local := s.NewLocal(0)
	batches := testBatches(13, 150, 7)
	killAt := map[int]bool{2: true, 5: true, 9: true, 13: true, 18: true}
	kills := 0
	for bi, batch := range batches {
		if killAt[bi] {
			srv.KillSessions()
			kills++
		}
		drain := bi == len(batches)-1
		sendPendings(c, uint64(bi+1), drain, batch)
		db := recvDecision(t, c)
		if db.Seq != uint64(bi+1) {
			t.Fatalf("decision seq %d, want %d", db.Seq, bi+1)
		}
		checkBatch(t, local, batch, db)
		if drain {
			local.DrainWindows()
		}
		c.Recycle(db)
	}
	if got := cfg.Metrics.Reconnects.Value(); got != uint64(kills) {
		t.Fatalf("reconnects = %d, want %d", got, kills)
	}
	if cfg.Metrics.Replayed.Value() == 0 {
		t.Fatal("no batches replayed despite kills")
	}
	if sent, acked := cfg.Metrics.BatchesSent.Value(), cfg.Metrics.BatchesAcked.Value(); sent != acked {
		t.Fatalf("sent %d != acked %d at quiescence", sent, acked)
	}
}

// TestFetchStateMatchesLocalCapture: the shard's snapshot must be byte-
// identical to capturing the reference local directly.
func TestFetchStateMatchesLocalCapture(t *testing.T) {
	dict, rb := testKnowledge(t)
	srv := newTestServer(t, dict, rb)
	c := NewClient(testClientConfig(t, srv.Addr(), dict, rb), nil)
	defer c.Close()

	s, err := grouping.NewShardable(dict, rb, grouping.IncrementalConfig{Config: testGroupingConfig()})
	if err != nil {
		t.Fatal(err)
	}
	local := s.NewLocal(0)
	var js grouping.Joins
	batches := testBatches(29, 60, 8)
	for bi, batch := range batches {
		sendPendings(c, uint64(bi+1), false, batch)
		db := recvDecision(t, c)
		for _, m := range batch {
			if err := local.Step(grouping.NewPending(m), &js); err != nil {
				t.Fatal(err)
			}
		}
		c.Recycle(db)
	}
	part, err := c.FetchState(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(part)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(grouping.CaptureLocal(local))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("remote state diverged:\n got %s\nwant %s", got, want)
	}
}

// TestClientSeedRestore: a client born with a checkpoint part re-seeds the
// shard, and the continuation decisions match an uninterrupted local.
func TestClientSeedRestore(t *testing.T) {
	dict, rb := testKnowledge(t)
	srv := newTestServer(t, dict, rb)
	s, err := grouping.NewShardable(dict, rb, grouping.IncrementalConfig{Config: testGroupingConfig()})
	if err != nil {
		t.Fatal(err)
	}
	local := s.NewLocal(0)
	var js grouping.Joins
	batches := testBatches(43, 100, 10)
	cut := len(batches) / 2
	for _, batch := range batches[:cut] {
		for _, m := range batch {
			if err := local.Step(grouping.NewPending(m), &js); err != nil {
				t.Fatal(err)
			}
		}
	}
	part := grouping.CaptureLocal(local)
	c := NewClient(testClientConfig(t, srv.Addr(), dict, rb), &part)
	defer c.Close()
	for bi, batch := range batches[cut:] {
		sendPendings(c, uint64(bi+1), false, batch)
		db := recvDecision(t, c)
		checkBatch(t, local, batch, db)
		c.Recycle(db)
	}
}

// TestServerRejectsKnowledgeMismatch: a shard pointed at different
// knowledge must refuse the session, and the client must fail permanently
// rather than retry forever.
func TestServerRejectsKnowledgeMismatch(t *testing.T) {
	dict, rb := testKnowledge(t)
	srv := newTestServer(t, dict, rb)
	cfg := testClientConfig(t, srv.Addr(), dict, rb)
	cfg.KBSig = "v1:bogus"
	cfg.MaxAttempts = 3
	cfg.Backoff = time.Millisecond
	c := NewClient(cfg, nil)
	defer c.Close()
	sendPendings(c, 1, false, nil)
	if _, ok := <-c.Decisions(); ok {
		t.Fatal("got a decision from a rejected session")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v, want rejection", err)
	}
}

// TestClientFailsWhenUnreachable: bounded retries, then a permanent error.
func TestClientFailsWhenUnreachable(t *testing.T) {
	dict, rb := testKnowledge(t)
	cfg := testClientConfig(t, "127.0.0.1:1", dict, rb) // nothing listens here
	cfg.MaxAttempts = 2
	cfg.Backoff = time.Millisecond
	c := NewClient(cfg, nil)
	defer c.Close()
	sendPendings(c, 1, false, nil)
	if _, ok := <-c.Decisions(); ok {
		t.Fatal("got a decision with no server")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v, want unreachable", err)
	}
}
