package syslogmsg

import (
	"fmt"
	"sort"
	"time"
)

// Store retains raw messages for event drill-down: an event digest carries
// raw message indices (the paper's "index field that allows us to retrieve
// these raw syslog messages"), and the store answers those lookups plus
// time-range scans.
//
// Messages must be index-sorted with contiguous indices (the shape the
// reader and generator produce); lookups are then O(1) and range scans
// O(log n + k).
type Store struct {
	base uint64
	msgs []Message
}

// NewStore indexes a message batch. It validates that indices are
// contiguous and ascending so Get can be arithmetic.
func NewStore(msgs []Message) (*Store, error) {
	if len(msgs) == 0 {
		return &Store{}, nil
	}
	base := msgs[0].Index
	for i := range msgs {
		if msgs[i].Index != base+uint64(i) {
			return nil, fmt.Errorf("syslogmsg: store requires contiguous indices; message %d has index %d, want %d",
				i, msgs[i].Index, base+uint64(i))
		}
		if i > 0 && msgs[i].Time.Before(msgs[i-1].Time) {
			return nil, fmt.Errorf("syslogmsg: store requires time-sorted messages; index %d out of order", msgs[i].Index)
		}
	}
	return &Store{base: base, msgs: msgs}, nil
}

// Len returns the number of stored messages.
func (s *Store) Len() int { return len(s.msgs) }

// Get returns the message with the given raw index.
func (s *Store) Get(index uint64) (*Message, bool) {
	if len(s.msgs) == 0 || index < s.base || index >= s.base+uint64(len(s.msgs)) {
		return nil, false
	}
	return &s.msgs[index-s.base], true
}

// GetAll resolves a set of indices, silently skipping unknown ones (an
// event may reference messages rotated out of the store).
func (s *Store) GetAll(indices []uint64) []Message {
	out := make([]Message, 0, len(indices))
	for _, idx := range indices {
		if m, ok := s.Get(idx); ok {
			out = append(out, *m)
		}
	}
	return out
}

// Between returns the messages with Time in [start, end], in order.
func (s *Store) Between(start, end time.Time) []Message {
	if len(s.msgs) == 0 || end.Before(start) {
		return nil
	}
	lo := sort.Search(len(s.msgs), func(i int) bool { return !s.msgs[i].Time.Before(start) })
	hi := sort.Search(len(s.msgs), func(i int) bool { return s.msgs[i].Time.After(end) })
	if lo >= hi {
		return nil
	}
	return s.msgs[lo:hi]
}
